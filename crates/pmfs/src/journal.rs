//! Cacheline-granular metadata undo journal, after PMFS.
//!
//! The journal is a region of 64 B entries, each carrying up to 40 B of
//! *old* metadata content, a generation number, and a valid flag written
//! last (the paper leverages the architectural guarantee that stores to
//! one cacheline are not reordered, so a persistent valid flag implies a
//! complete entry).
//!
//! Like PMFS, the journal persists **no head or tail pointer** on the hot
//! path — that is the point of the valid flag + generation design. Entries
//! of the current generation are written contiguously from slot 0;
//! recovery simply scans from slot 0 while it sees valid current-generation
//! entries. When every transaction has resolved and the region is past
//! half full, the generation number is bumped (one 8-byte persist) which
//! retires every written entry at once.
//!
//! Transaction protocol (undo logging):
//!
//! 1. [`Journal::begin`] a transaction.
//! 2. [`Journal::log_range`] the *current* content of every metadata range
//!    about to change. Entries are flushed and fenced — only after that
//!    may the caller overwrite the metadata in place (durably).
//! 3. [`Journal::commit`] appends a commit entry. Until the commit entry is
//!    persistent, recovery undoes the transaction.
//!
//! HiNFS's ordered data mode relies on the gap between steps 2 and 3: a
//! lazy-persistent write logs and applies its metadata immediately but
//! holds the [`TxHandle`] open until the background writeback has persisted
//! the corresponding DRAM data blocks, and only then commits (paper §4.1).

use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};

use fskit::{FsError, Result};
use nvmm::{Cat, NvmmDevice, BLOCK_SIZE, CACHELINE};
use obsv::{Phase, Site, TraceEvent, TraceRing, TrackedMutex};

use crate::layout::Layout;

obsv::counter_set! {
    /// Hot-path journal activity counters.
    pub struct JournalStats, snapshot JournalSnapshot, prefix "pmfs_journal_" {
        /// Transactions opened.
        pub begins,
        /// Transactions committed.
        pub commits,
        /// Transactions aborted (rolled back immediately).
        pub aborts,
        /// Undo entries appended.
        pub undo_entries,
    }
}

/// Size of one log entry: one cacheline.
pub const ENTRY_SIZE: usize = CACHELINE;

/// Maximum undo payload per entry.
pub const PAYLOAD: usize = 40;

const KIND_UNDO: u8 = 1;
const KIND_COMMIT: u8 = 2;
const VALID_MAGIC: u8 = 0xA5;

/// A decoded log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    txid: u32,
    kind: u8,
    gen: u32,
    addr: u64,
    data: Vec<u8>,
}

fn checksum(buf: &[u8; ENTRY_SIZE]) -> u16 {
    // Fletcher-style sum over the entry with the csum field (bytes 6..8)
    // treated as zero.
    let mut a: u32 = 0;
    let mut b: u32 = 0;
    for (i, &byte) in buf.iter().enumerate() {
        let v = if (6..8).contains(&i) { 0 } else { byte as u32 };
        a = (a + v) % 255;
        b = (b + a) % 255;
    }
    ((b << 8) | a) as u16
}

fn encode(e: &Entry) -> [u8; ENTRY_SIZE] {
    debug_assert!(e.data.len() <= PAYLOAD);
    let mut buf = [0u8; ENTRY_SIZE];
    buf[0..4].copy_from_slice(&e.txid.to_le_bytes());
    buf[4] = e.kind;
    buf[5] = e.data.len() as u8;
    buf[8..16].copy_from_slice(&e.addr.to_le_bytes());
    buf[16..16 + e.data.len()].copy_from_slice(&e.data);
    buf[56..60].copy_from_slice(&e.gen.to_le_bytes());
    buf[63] = VALID_MAGIC;
    let c = checksum(&buf);
    buf[6..8].copy_from_slice(&c.to_le_bytes());
    buf
}

/// Decodes an entry slot; `Ok(None)` when the slot holds no valid entry
/// (zeroed or torn).
fn decode(buf: &[u8; ENTRY_SIZE]) -> Option<Entry> {
    if buf[63] != VALID_MAGIC {
        return None;
    }
    let mut copy = *buf;
    copy[6] = 0;
    copy[7] = 0;
    let stored = u16::from_le_bytes([buf[6], buf[7]]);
    if checksum(&copy) != stored {
        return None;
    }
    let len = buf[5] as usize;
    if len > PAYLOAD {
        return None;
    }
    Some(Entry {
        txid: u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]),
        kind: buf[4],
        gen: u32::from_le_bytes(buf[56..60].try_into().unwrap()),
        addr: u64::from_le_bytes(buf[8..16].try_into().unwrap()),
        data: buf[16..16 + len].to_vec(),
    })
}

/// An open transaction. Must be resolved with [`Journal::commit`] or
/// [`Journal::abort`]; dropping it leaks journal space until the next
/// quiesce.
#[must_use = "transactions must be committed or aborted"]
#[derive(Debug)]
pub struct TxHandle {
    txid: u32,
}

impl TxHandle {
    /// The transaction id (diagnostics).
    pub fn txid(&self) -> u32 {
        self.txid
    }
}

#[derive(Debug)]
struct TxRec {
    txid: u32,
    start: u64,
    committed: bool,
}

#[derive(Debug)]
struct JInner {
    /// First entry that may belong to an unresolved transaction.
    head: u64,
    /// Next free entry slot (entries fill `0..tail` within a generation).
    tail: u64,
    /// Current generation (mirrors the persisted header field).
    gen: u64,
    next_txid: u32,
    /// Open/uncollected transactions in begin order (txids ascend).
    txs: VecDeque<TxRec>,
}

/// One coherent reading of the journal region's occupancy (all fields
/// taken under a single lock hold; see [`Journal::usage`]). Every open
/// transaction reserves one commit-entry slot, so `reserved_entries`
/// equals `open_txs` by construction — the auditor checks the relation
/// anyway to catch accounting drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalUsage {
    /// Total undo-entry slots in the region.
    pub capacity_entries: u64,
    /// Entries logged in the current generation (the log tail).
    pub fill_entries: u64,
    /// Commit slots reserved by uncommitted transactions.
    pub reserved_entries: u64,
    /// Entries available to `begin`/`log_range`.
    pub free_entries: u64,
    /// Transactions begun and not yet committed or aborted.
    pub open_txs: u64,
    /// Current generation counter.
    pub generation: u64,
}

/// Statistics returned by [`Journal::recover`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryStats {
    /// Entries scanned in the live region.
    pub scanned: u64,
    /// Transactions that lacked a commit entry and were rolled back.
    pub txs_undone: u64,
    /// Undo entries applied.
    pub entries_undone: u64,
}

/// The metadata undo journal.
#[derive(Debug)]
pub struct Journal {
    dev: Arc<NvmmDevice>,
    /// Byte offset of the journal header block.
    hdr: u64,
    /// Byte offset of the first entry.
    area: u64,
    /// Region capacity in entries (one generation's budget).
    capacity: u64,
    inner: TrackedMutex<JInner>,
    stats: Arc<JournalStats>,
    /// Trace ring shared with the owning file system, installed after
    /// mount (commits then appear on the same timeline as writeback).
    trace: OnceLock<Arc<TraceRing>>,
}

impl Journal {
    /// Formats the journal region: generation 1, no entries.
    pub fn format(dev: &NvmmDevice, layout: &Layout) {
        let hdr = Layout::block_off(layout.journal_start);
        dev.write_u64_persist(Cat::Journal, hdr, 1);
        dev.sfence();
        // Invalidate slot 0 so a scan of a freshly formatted region stops
        // immediately.
        dev.write_persist(Cat::Journal, hdr + BLOCK_SIZE as u64, &[0u8; ENTRY_SIZE]);
        dev.sfence();
    }

    /// Opens the journal. Run [`Journal::recover`] first after any mount —
    /// it leaves the region quiesced (fresh generation, no live entries).
    pub fn open(dev: Arc<NvmmDevice>, layout: &Layout) -> Result<Journal> {
        assert!(layout.journal_blocks >= 2, "journal needs header + entries");
        let hdr = Layout::block_off(layout.journal_start);
        let gen = dev.read_u64(Cat::Journal, hdr);
        if gen == 0 {
            return Err(FsError::Corrupted("journal generation"));
        }
        let capacity = (layout.journal_blocks - 1) * (BLOCK_SIZE / ENTRY_SIZE) as u64;
        Ok(Journal {
            area: hdr + BLOCK_SIZE as u64,
            hdr,
            capacity,
            inner: TrackedMutex::attached(
                dev.contention(),
                Site::PmfsJournal,
                JInner {
                    head: 0,
                    tail: 0,
                    gen,
                    next_txid: 1,
                    txs: VecDeque::new(),
                },
            ),
            stats: Arc::new(JournalStats::new()),
            trace: OnceLock::new(),
            dev,
        })
    }

    /// Journal activity counters (registrable as an
    /// [`obsv::MetricSource`]).
    pub fn stats(&self) -> &Arc<JournalStats> {
        &self.stats
    }

    /// Installs the trace ring commits are reported into. Later calls are
    /// ignored (the first mounted owner wins).
    pub fn set_trace(&self, ring: Arc<TraceRing>) {
        let _ = self.trace.set(ring);
    }

    /// Scans the current generation's entries and rolls back every
    /// transaction without a commit entry, then bumps the generation
    /// (retiring all entries at once). Run at mount, before
    /// [`Journal::open`].
    pub fn recover(dev: &NvmmDevice, layout: &Layout) -> Result<RecoveryStats> {
        let hdr = Layout::block_off(layout.journal_start);
        let area = hdr + BLOCK_SIZE as u64;
        let capacity = (layout.journal_blocks - 1) * (BLOCK_SIZE / ENTRY_SIZE) as u64;
        let gen = dev.read_u64(Cat::Journal, hdr);
        if gen == 0 {
            return Err(FsError::Corrupted("journal generation"));
        }
        let mut stats = RecoveryStats::default();
        // Entries of the current generation are contiguous from slot 0;
        // stop at the first slot that is invalid or from an older
        // generation.
        let mut committed: Vec<u32> = Vec::new();
        let mut undo: Vec<(u32, u64, Vec<u8>)> = Vec::new();
        for idx in 0..capacity {
            let off = area + idx * ENTRY_SIZE as u64;
            let mut buf = [0u8; ENTRY_SIZE];
            dev.read(Cat::Journal, off, &mut buf);
            let Some(e) = decode(&buf) else { break };
            if e.gen as u64 != gen {
                break;
            }
            stats.scanned += 1;
            match e.kind {
                KIND_COMMIT => committed.push(e.txid),
                KIND_UNDO => undo.push((e.txid, e.addr, e.data)),
                _ => return Err(FsError::Corrupted("journal entry kind")),
            }
        }
        // Roll back uncommitted transactions: apply their undo entries in
        // reverse append order so the oldest logged image wins.
        for (txid, addr, data) in undo.iter().rev() {
            if committed.contains(txid) {
                continue;
            }
            dev.write_persist(Cat::Journal, *addr, data);
            stats.entries_undone += 1;
        }
        let mut undone: Vec<u32> = undo
            .iter()
            .map(|(t, _, _)| *t)
            .filter(|t| !committed.contains(t))
            .collect();
        undone.sort_unstable();
        undone.dedup();
        stats.txs_undone = undone.len() as u64;
        dev.sfence();
        // Retire every entry by bumping the generation (8-byte atomic).
        dev.write_u64_persist(Cat::Journal, hdr, gen + 1);
        dev.sfence();
        Ok(stats)
    }

    /// Opens a new transaction. Fails with [`FsError::JournalFull`] when the
    /// region cannot guarantee space for this transaction's commit entry.
    pub fn begin(&self) -> Result<TxHandle> {
        self.span(|| {
            if nvmm::fault::journal_blocked(&self.dev) {
                return Err(FsError::JournalFull);
            }
            let mut inner = self.inner.lock();
            if self.free_entries_locked(&inner) == 0 {
                return Err(FsError::JournalFull);
            }
            let txid = inner.next_txid;
            inner.next_txid = inner.next_txid.wrapping_add(1).max(1);
            let start = inner.tail;
            inner.txs.push_back(TxRec {
                txid,
                start,
                committed: false,
            });
            self.stats
                .begins
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Ok(TxHandle { txid })
        })
    }

    /// Runs `f` inside a [`Phase::Journal`] span on the device's span
    /// matrix (one relaxed load when spans are disabled).
    #[inline]
    fn span<R>(&self, f: impl FnOnce() -> R) -> R {
        self.dev
            .spans()
            .scope(Phase::Journal, || self.dev.env().now(), f)
    }

    fn free_entries_locked(&self, inner: &JInner) -> u64 {
        let reserved = inner.txs.iter().filter(|t| !t.committed).count() as u64;
        self.capacity.saturating_sub(inner.tail + reserved)
    }

    /// Entries currently available for new undo records.
    pub fn free_entries(&self) -> u64 {
        self.free_entries_locked(&self.inner.lock())
    }

    /// Number of transactions begun but not yet committed or aborted.
    pub fn open_txs(&self) -> usize {
        self.inner
            .lock()
            .txs
            .iter()
            .filter(|t| !t.committed)
            .count()
    }

    /// The current journal generation (diagnostics).
    pub fn generation(&self) -> u64 {
        self.inner.lock().gen
    }

    /// Point-in-time usage of the journal region, read under one lock hold
    /// so the fields are mutually consistent (introspection/audit).
    pub fn usage(&self) -> JournalUsage {
        let inner = self.inner.lock();
        let reserved = inner.txs.iter().filter(|t| !t.committed).count() as u64;
        JournalUsage {
            capacity_entries: self.capacity,
            fill_entries: inner.tail,
            reserved_entries: reserved,
            free_entries: self.capacity.saturating_sub(inner.tail + reserved),
            open_txs: reserved,
            generation: inner.gen,
        }
    }

    fn append_locked(&self, inner: &mut JInner, e: &Entry) -> Result<()> {
        if inner.tail >= self.capacity {
            return Err(FsError::JournalFull);
        }
        let off = self.area + inner.tail * ENTRY_SIZE as u64;
        let buf = encode(e);
        obsv::note_journaled(ENTRY_SIZE as u64);
        self.dev.write_cached(Cat::Journal, off, &buf);
        self.dev.clflush(Cat::Journal, off, ENTRY_SIZE);
        inner.tail += 1;
        Ok(())
    }

    /// Records the current content of `[addr, addr+len)` so it can be
    /// rolled back if the transaction does not commit. Must be called
    /// *before* the range is overwritten. On return the undo records are
    /// durable; the caller may then update the metadata in place (durably).
    pub fn log_range(&self, tx: &TxHandle, addr: u64, len: usize) -> Result<()> {
        if len == 0 {
            return Ok(());
        }
        self.span(|| self.log_range_inner(tx, addr, len))
    }

    fn log_range_inner(&self, tx: &TxHandle, addr: u64, len: usize) -> Result<()> {
        if nvmm::fault::journal_blocked(&self.dev) {
            return Err(FsError::JournalFull);
        }
        let mut inner = self.inner.lock();
        let needed = len.div_ceil(PAYLOAD) as u64;
        if self.free_entries_locked(&inner) < needed {
            return Err(FsError::JournalFull);
        }
        let gen = inner.gen as u32;
        let mut off = addr;
        let mut remaining = len;
        while remaining > 0 {
            let chunk = remaining.min(PAYLOAD);
            let mut data = vec![0u8; chunk];
            self.dev.read(Cat::Journal, off, &mut data);
            self.append_locked(
                &mut inner,
                &Entry {
                    txid: tx.txid,
                    kind: KIND_UNDO,
                    gen,
                    addr: off,
                    data,
                },
            )?;
            off += chunk as u64;
            remaining -= chunk;
        }
        self.stats
            .undo_entries
            .fetch_add(needed, std::sync::atomic::Ordering::Relaxed);
        // Entries durable (each slot was flushed) and ordered before the
        // caller's in-place updates.
        self.dev.sfence();
        Ok(())
    }

    /// Batched [`Journal::log_range`]: logs the current content of every
    /// `(addr, len)` range under **one** lock hold, **one** reservation
    /// check over the batch total, and **one** fence — the group-commit
    /// write path (NVLog-style batched persistence). Empty ranges are
    /// skipped; an empty batch is a no-op.
    pub fn log_ranges(&self, tx: &TxHandle, ranges: &[(u64, usize)]) -> Result<()> {
        if ranges.iter().all(|&(_, len)| len == 0) {
            return Ok(());
        }
        self.span(|| self.log_ranges_inner(tx, ranges))
    }

    fn log_ranges_inner(&self, tx: &TxHandle, ranges: &[(u64, usize)]) -> Result<()> {
        if nvmm::fault::journal_blocked(&self.dev) {
            return Err(FsError::JournalFull);
        }
        let mut inner = self.inner.lock();
        let needed: u64 = ranges
            .iter()
            .map(|&(_, len)| len.div_ceil(PAYLOAD) as u64)
            .sum();
        if self.free_entries_locked(&inner) < needed {
            return Err(FsError::JournalFull);
        }
        let gen = inner.gen as u32;
        for &(addr, len) in ranges {
            let mut off = addr;
            let mut remaining = len;
            while remaining > 0 {
                let chunk = remaining.min(PAYLOAD);
                let mut data = vec![0u8; chunk];
                self.dev.read(Cat::Journal, off, &mut data);
                self.append_locked(
                    &mut inner,
                    &Entry {
                        txid: tx.txid,
                        kind: KIND_UNDO,
                        gen,
                        addr: off,
                        data,
                    },
                )?;
                off += chunk as u64;
                remaining -= chunk;
            }
        }
        self.stats
            .undo_entries
            .fetch_add(needed, std::sync::atomic::Ordering::Relaxed);
        // One fence orders the whole batch before the caller's in-place
        // updates; the folded per-range ordering points stay accounted.
        self.dev.sfence_coalesced(ranges.len() as u64);
        Ok(())
    }

    fn resolve_locked(&self, inner: &mut JInner, txid: u32) {
        // Mark committed; txids ascend with begin order, so binary search.
        let idx = inner.txs.partition_point(|t| t.txid < txid);
        if idx < inner.txs.len() && inner.txs[idx].txid == txid {
            inner.txs[idx].committed = true;
        }
        // Retire the longest committed prefix.
        while inner.txs.front().is_some_and(|t| t.committed) {
            inner.txs.pop_front();
        }
        inner.head = inner.txs.front().map_or(inner.tail, |t| t.start);
        // Quiesce point: no live transactions and the region is past half
        // full — retire the whole generation with one 8-byte persist.
        if inner.txs.is_empty() && inner.tail > self.capacity / 2 {
            inner.gen += 1;
            inner.head = 0;
            inner.tail = 0;
            self.dev
                .write_u64_persist(Cat::Journal, self.hdr, inner.gen);
            self.dev.sfence();
        }
    }

    /// Commits `tx`: after the commit entry is durable, recovery will never
    /// roll the transaction back. The caller must have made its in-place
    /// metadata updates durable before calling (PMFS writes metadata with
    /// non-temporal stores, so this holds by construction).
    pub fn commit(&self, tx: TxHandle) {
        self.span(|| self.commit_inner(tx))
    }

    fn commit_inner(&self, tx: TxHandle) {
        let mut inner = self.inner.lock();
        self.dev.sfence();
        let gen = inner.gen as u32;
        // The commit-slot reservation in `begin`/`free_entries` guarantees
        // space for this entry.
        self.append_locked(
            &mut inner,
            &Entry {
                txid: tx.txid,
                kind: KIND_COMMIT,
                gen,
                addr: 0,
                data: Vec::new(),
            },
        )
        .expect("reserved commit slot");
        self.dev.sfence();
        self.stats
            .commits
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if let Some(ring) = self.trace.get() {
            let live = inner.tail;
            ring.emit(self.dev.env().now(), || TraceEvent::JournalCommit {
                txid: tx.txid as u64,
                log_entries: live,
            });
        }
        self.resolve_locked(&mut inner, tx.txid);
    }

    /// Group commit: commits a batch of transactions with **one** lock
    /// hold and **two** fences total (one ordering the in-place updates
    /// before the commit entries, one making the commit entries durable)
    /// instead of two fences per transaction. Each transaction still gets
    /// its own commit entry, so recovery semantics are identical to
    /// committing them one by one; only the fence count changes.
    pub fn commit_group(&self, txs: Vec<TxHandle>) {
        if txs.is_empty() {
            return;
        }
        self.span(|| self.commit_group_inner(txs))
    }

    fn commit_group_inner(&self, txs: Vec<TxHandle>) {
        let n = txs.len() as u64;
        obsv::note_batch(n as u32);
        let mut inner = self.inner.lock();
        // Order every caller's in-place metadata updates before any of the
        // batch's commit entries.
        self.dev.sfence_coalesced(n);
        let gen = inner.gen as u32;
        for tx in &txs {
            // Reservation in `begin` guarantees one commit slot per tx.
            self.append_locked(
                &mut inner,
                &Entry {
                    txid: tx.txid,
                    kind: KIND_COMMIT,
                    gen,
                    addr: 0,
                    data: Vec::new(),
                },
            )
            .expect("reserved commit slot");
        }
        self.dev.sfence_coalesced(n);
        self.stats
            .commits
            .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        if let Some(ring) = self.trace.get() {
            let live = inner.tail;
            for tx in &txs {
                ring.emit(self.dev.env().now(), || TraceEvent::JournalCommit {
                    txid: tx.txid as u64,
                    log_entries: live,
                });
            }
        }
        for tx in txs {
            self.resolve_locked(&mut inner, tx.txid);
        }
    }

    /// Aborts `tx`: rolls back its logged ranges immediately and then
    /// resolves it (a commit entry marks it resolved so recovery does not
    /// undo it again — later transactions may have touched the same
    /// ranges).
    pub fn abort(&self, tx: TxHandle) {
        self.span(|| self.abort_inner(tx))
    }

    fn abort_inner(&self, tx: TxHandle) {
        let mut inner = self.inner.lock();
        // Collect this tx's undo entries from the live region.
        let mut to_undo: Vec<(u64, Vec<u8>)> = Vec::new();
        let start = {
            let idx = inner.txs.partition_point(|t| t.txid < tx.txid);
            inner.txs.get(idx).map_or(inner.head, |t| t.start)
        };
        for idx in start..inner.tail {
            let off = self.area + idx * ENTRY_SIZE as u64;
            let mut buf = [0u8; ENTRY_SIZE];
            self.dev.read(Cat::Journal, off, &mut buf);
            if let Some(e) = decode(&buf) {
                if e.txid == tx.txid && e.kind == KIND_UNDO {
                    to_undo.push((e.addr, e.data));
                }
            }
        }
        for (addr, data) in to_undo.iter().rev() {
            self.dev.write_persist(Cat::Journal, *addr, data);
        }
        self.dev.sfence();
        let gen = inner.gen as u32;
        self.append_locked(
            &mut inner,
            &Entry {
                txid: tx.txid,
                kind: KIND_COMMIT,
                gen,
                addr: 0,
                data: Vec::new(),
            },
        )
        .expect("reserved commit slot");
        self.dev.sfence();
        self.stats
            .aborts
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.resolve_locked(&mut inner, tx.txid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmm::{CostModel, SimEnv};

    fn setup() -> (Arc<NvmmDevice>, Layout) {
        let dev =
            NvmmDevice::new_tracked(SimEnv::new_virtual(CostModel::default()), 4096 * BLOCK_SIZE);
        let layout = Layout::compute(4096, 64, 512).unwrap();
        Journal::format(&dev, &layout);
        (dev, layout)
    }

    fn data_off(layout: &Layout, blk: u64) -> u64 {
        Layout::block_off(layout.data_start + blk)
    }

    #[test]
    fn entry_encode_decode_roundtrip() {
        let e = Entry {
            txid: 7,
            kind: KIND_UNDO,
            gen: 3,
            addr: 0x1234,
            data: vec![9; 17],
        };
        let buf = encode(&e);
        assert_eq!(decode(&buf), Some(e));
    }

    #[test]
    fn corrupt_entry_rejected() {
        let e = Entry {
            txid: 7,
            kind: KIND_UNDO,
            gen: 1,
            addr: 0x1234,
            data: vec![9; 17],
        };
        let mut buf = encode(&e);
        buf[20] ^= 0xff;
        assert_eq!(decode(&buf), None);
        let mut buf2 = encode(&e);
        buf2[63] = 0;
        assert_eq!(decode(&buf2), None);
        assert_eq!(decode(&[0u8; ENTRY_SIZE]), None);
    }

    #[test]
    fn committed_tx_survives_crash() {
        let (dev, layout) = setup();
        let j = Journal::open(dev.clone(), &layout).unwrap();
        let target = data_off(&layout, 0);
        dev.write_persist(Cat::Meta, target, &[1u8; 32]);

        let tx = j.begin().unwrap();
        j.log_range(&tx, target, 32).unwrap();
        dev.write_persist(Cat::Meta, target, &[2u8; 32]);
        j.commit(tx);

        dev.crash();
        let stats = Journal::recover(&dev, &layout).unwrap();
        assert_eq!(stats.txs_undone, 0);
        let mut buf = [0u8; 32];
        dev.peek(target, &mut buf);
        assert_eq!(buf, [2u8; 32], "committed update survives");
    }

    #[test]
    fn uncommitted_tx_is_rolled_back() {
        let (dev, layout) = setup();
        let j = Journal::open(dev.clone(), &layout).unwrap();
        let target = data_off(&layout, 1);
        dev.write_persist(Cat::Meta, target, &[1u8; 100]);

        let tx = j.begin().unwrap();
        j.log_range(&tx, target, 100).unwrap();
        dev.write_persist(Cat::Meta, target, &[2u8; 100]);
        // No commit: crash.
        drop(tx);
        dev.crash();
        let stats = Journal::recover(&dev, &layout).unwrap();
        assert_eq!(stats.txs_undone, 1);
        assert!(stats.entries_undone >= 3, "100 B needs 3 entries");
        let mut buf = [0u8; 100];
        dev.peek(target, &mut buf);
        assert_eq!(buf, [1u8; 100], "uncommitted update rolled back");
    }

    #[test]
    fn interleaved_txs_roll_back_independently() {
        let (dev, layout) = setup();
        let j = Journal::open(dev.clone(), &layout).unwrap();
        let a_off = data_off(&layout, 2);
        let b_off = data_off(&layout, 3);
        dev.write_persist(Cat::Meta, a_off, &[0xa; 16]);
        dev.write_persist(Cat::Meta, b_off, &[0xb; 16]);

        let ta = j.begin().unwrap();
        let tb = j.begin().unwrap();
        j.log_range(&ta, a_off, 16).unwrap();
        j.log_range(&tb, b_off, 16).unwrap();
        dev.write_persist(Cat::Meta, a_off, &[0x1; 16]);
        dev.write_persist(Cat::Meta, b_off, &[0x2; 16]);
        j.commit(tb);
        drop(ta); // crash with ta open
        dev.crash();
        Journal::recover(&dev, &layout).unwrap();
        let mut a = [0u8; 16];
        let mut b = [0u8; 16];
        dev.peek(a_off, &mut a);
        dev.peek(b_off, &mut b);
        assert_eq!(a, [0xa; 16], "open tx rolled back");
        assert_eq!(b, [0x2; 16], "committed tx preserved");
    }

    #[test]
    fn abort_rolls_back_immediately() {
        let (dev, layout) = setup();
        let j = Journal::open(dev.clone(), &layout).unwrap();
        let target = data_off(&layout, 4);
        dev.write_persist(Cat::Meta, target, &[5u8; 40]);
        let tx = j.begin().unwrap();
        j.log_range(&tx, target, 40).unwrap();
        dev.write_persist(Cat::Meta, target, &[6u8; 40]);
        j.abort(tx);
        let mut buf = [0u8; 40];
        dev.peek(target, &mut buf);
        assert_eq!(buf, [5u8; 40]);
        // And recovery after a crash does not undo it again.
        dev.write_persist(Cat::Meta, target, &[7u8; 40]);
        dev.crash();
        Journal::recover(&dev, &layout).unwrap();
        dev.peek(target, &mut buf);
        assert_eq!(buf, [7u8; 40]);
    }

    #[test]
    fn generation_bump_reclaims_space() {
        let (dev, layout) = setup();
        let j = Journal::open(dev.clone(), &layout).unwrap();
        let target = data_off(&layout, 5);
        let initial = j.free_entries();
        let gen0 = j.generation();
        // Many sequential transactions must not exhaust the region: the
        // quiesce points bump the generation and reset the fill.
        for i in 0..initial * 2 {
            let tx = j.begin().unwrap();
            j.log_range(&tx, target + (i % 8) * 64, 40).unwrap();
            j.commit(tx);
        }
        assert_eq!(j.open_txs(), 0);
        assert!(j.generation() > gen0, "generation advanced at quiesce");
        assert!(j.free_entries() > initial / 4, "space reclaimed");
    }

    #[test]
    fn journal_full_reported() {
        let (dev, layout) = setup();
        let j = Journal::open(dev.clone(), &layout).unwrap();
        let target = data_off(&layout, 6);
        let tx = j.begin().unwrap();
        let mut filled = false;
        for i in 0.. {
            match j.log_range(&tx, target + (i % 32) * 64, 40) {
                Ok(()) => {}
                Err(FsError::JournalFull) => {
                    filled = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(filled, "open tx eventually fills the region");
        // Commit still succeeds thanks to the reserved slot, and the
        // quiesce point frees everything.
        j.commit(tx);
        assert!(j.free_entries() > 0);
    }

    #[test]
    fn stale_generation_entries_are_ignored() {
        let (dev, layout) = setup();
        {
            let j = Journal::open(dev.clone(), &layout).unwrap();
            let tx = j.begin().unwrap();
            j.log_range(&tx, data_off(&layout, 7), 8).unwrap();
            j.commit(tx);
        }
        // First recovery retires generation 1.
        let s1 = Journal::recover(&dev, &layout).unwrap();
        assert_eq!(s1.scanned, 2);
        // Second recovery sees only stale-generation entries: scans none.
        let s2 = Journal::recover(&dev, &layout).unwrap();
        assert_eq!(s2.scanned, 0);
        assert_eq!(s2.txs_undone, 0);
    }

    #[test]
    fn deferred_commit_matches_hinfs_ordered_mode() {
        // A transaction may stay open across other transactions' lifetimes
        // and commit later (HiNFS commits from the writeback path).
        let (dev, layout) = setup();
        let j = Journal::open(dev.clone(), &layout).unwrap();
        let a = data_off(&layout, 8);
        let b = data_off(&layout, 9);
        dev.write_persist(Cat::Meta, a, &[1u8; 8]);
        dev.write_persist(Cat::Meta, b, &[1u8; 8]);
        let lazy = j.begin().unwrap();
        j.log_range(&lazy, a, 8).unwrap();
        dev.write_persist(Cat::Meta, a, &[2u8; 8]);
        // An unrelated tx begins and commits while `lazy` is open.
        let other = j.begin().unwrap();
        j.log_range(&other, b, 8).unwrap();
        dev.write_persist(Cat::Meta, b, &[3u8; 8]);
        j.commit(other);
        assert_eq!(j.open_txs(), 1);
        // "Writeback finished": now commit the lazy tx.
        j.commit(lazy);
        dev.crash();
        let stats = Journal::recover(&dev, &layout).unwrap();
        assert_eq!(stats.txs_undone, 0);
        let mut buf = [0u8; 8];
        dev.peek(a, &mut buf);
        assert_eq!(buf, [2u8; 8]);
    }

    #[test]
    fn log_ranges_batches_one_fence() {
        let (dev, layout) = setup();
        let j = Journal::open(dev.clone(), &layout).unwrap();
        let offs: Vec<u64> = (0..3).map(|i| data_off(&layout, 11 + i)).collect();
        for &o in &offs {
            dev.write_persist(Cat::Meta, o, &[1u8; 24]);
        }
        let tx = j.begin().unwrap();
        let before = dev.stats().snapshot();
        j.log_ranges(&tx, &[(offs[0], 24), (offs[1], 24), (offs[2], 24)])
            .unwrap();
        let delta = dev.stats().snapshot().since(&before);
        assert_eq!(delta.fences, 1, "batch pays one fence");
        assert_eq!(delta.fences_coalesced, 2, "two ordering points folded");
        for &o in &offs {
            dev.write_persist(Cat::Meta, o, &[2u8; 24]);
        }
        // No commit: all three ranges roll back together.
        drop(tx);
        dev.crash();
        let stats = Journal::recover(&dev, &layout).unwrap();
        assert_eq!(stats.txs_undone, 1);
        for &o in &offs {
            let mut buf = [0u8; 24];
            dev.peek(o, &mut buf);
            assert_eq!(buf, [1u8; 24], "batched undo rolled back");
        }
    }

    #[test]
    fn group_commit_is_durable_and_batches_fences() {
        let (dev, layout) = setup();
        let j = Journal::open(dev.clone(), &layout).unwrap();
        let offs: Vec<u64> = (0..4).map(|i| data_off(&layout, 20 + i)).collect();
        for &o in &offs {
            dev.write_persist(Cat::Meta, o, &[1u8; 16]);
        }
        let mut txs = Vec::new();
        for &o in &offs {
            let tx = j.begin().unwrap();
            j.log_range(&tx, o, 16).unwrap();
            dev.write_persist(Cat::Meta, o, &[2u8; 16]);
            txs.push(tx);
        }
        let before = dev.stats().snapshot();
        j.commit_group(txs);
        let delta = dev.stats().snapshot().since(&before);
        assert_eq!(delta.fences, 2, "pre- and post-batch fence only");
        assert_eq!(delta.fences_coalesced, 6, "3 folded points per fence");
        assert_eq!(j.open_txs(), 0);
        dev.crash();
        let stats = Journal::recover(&dev, &layout).unwrap();
        assert_eq!(stats.txs_undone, 0, "the whole group committed");
        for &o in &offs {
            let mut buf = [0u8; 16];
            dev.peek(o, &mut buf);
            assert_eq!(buf, [2u8; 16]);
        }
    }

    #[test]
    fn group_commit_of_empty_batch_is_noop() {
        let (dev, layout) = setup();
        let j = Journal::open(dev.clone(), &layout).unwrap();
        let before = dev.stats().snapshot();
        j.commit_group(Vec::new());
        let delta = dev.stats().snapshot().since(&before);
        assert_eq!(delta.fences, 0);
        assert_eq!(delta.nvmm_bytes_written, 0);
    }

    #[test]
    fn commit_costs_no_pointer_persists() {
        // The hot path writes exactly: N undo entries + 1 commit entry (one
        // line each) and nothing else — no head/tail publishing.
        let (dev, layout) = setup();
        let j = Journal::open(dev.clone(), &layout).unwrap();
        let target = data_off(&layout, 10);
        let before = dev.stats().snapshot();
        let tx = j.begin().unwrap();
        j.log_range(&tx, target, 40).unwrap(); // 1 undo entry
        j.commit(tx);
        let delta = dev.stats().snapshot().since(&before);
        assert_eq!(
            delta.nvmm_bytes_written,
            2 * ENTRY_SIZE as u64,
            "one undo + one commit line only"
        );
    }
}
