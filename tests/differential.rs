//! Differential testing: the same operation sequence must produce the same
//! observable file system state on every system in the workspace — PMFS,
//! HiNFS (all variants), EXT4-DAX, and ext2/ext4 on NVMMBD all implement
//! the same VFS contract.

use hinfs_suite::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use workloads::setups::{build, SystemConfig, SystemKind};

const ALL: [SystemKind; 7] = [
    SystemKind::Pmfs,
    SystemKind::Hinfs,
    SystemKind::HinfsNclfw,
    SystemKind::HinfsWb,
    SystemKind::Ext4Dax,
    SystemKind::Ext2Bd,
    SystemKind::Ext4Bd,
];

fn cfg() -> SystemConfig {
    SystemConfig {
        device_bytes: 64 << 20,
        buffer_bytes: 2 << 20,
        cache_pages: 512,
        journal_blocks: 256,
        inode_count: 4096,
        ..SystemConfig::default()
    }
}

/// Drives one scripted mixed workload and returns the observable state:
/// every file's full contents plus the directory listing.
fn drive(fs: &dyn FileSystem) -> Vec<(String, Vec<u8>)> {
    let mut rng = SmallRng::seed_from_u64(0xD1FF);
    fs.mkdir("/a").unwrap();
    fs.mkdir("/a/b").unwrap();
    let mut files: Vec<(String, Fd)> = Vec::new();
    for i in 0..12 {
        let path = format!("/a/f{i}");
        let fd = fs.open(&path, OpenFlags::RDWR | OpenFlags::CREATE).unwrap();
        files.push((path, fd));
    }
    for step in 0..300 {
        let (path, fd) = &files[rng.gen_range(0..files.len())];
        let _ = path;
        match rng.gen_range(0..10) {
            0..=4 => {
                let off = rng.gen_range(0..96 * 1024u64);
                let len = rng.gen_range(1..9000usize);
                let val = (step % 251) as u8;
                fs.write(*fd, off, &vec![val; len]).unwrap();
            }
            5..=6 => {
                let data = vec![(step % 7) as u8; rng.gen_range(1..5000)];
                fs.append(*fd, &data).unwrap();
            }
            7 => {
                fs.fsync(*fd).unwrap();
            }
            8 => {
                let size = rng.gen_range(0..64 * 1024u64);
                fs.truncate(*fd, size).unwrap();
            }
            _ => {
                let mut buf = vec![0u8; 4096];
                let off = rng.gen_range(0..64 * 1024u64);
                let _ = fs.read(*fd, off, &mut buf).unwrap();
            }
        }
        fs.tick((step as u64 + 1) * 50_000);
    }
    // Rename and unlink a couple of files.
    fs.rename("/a/f0", "/a/b/renamed").unwrap();
    fs.unlink("/a/f1").unwrap();
    // Collect state.
    let mut state = Vec::new();
    let mut stack = vec!["".to_string()];
    while let Some(dir) = stack.pop() {
        let path = if dir.is_empty() {
            "/".into()
        } else {
            dir.clone()
        };
        let mut entries = fs.readdir(&path).unwrap();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        for e in entries {
            let child = format!("{dir}/{}", e.name);
            match e.ftype {
                FileType::Dir => stack.push(child),
                FileType::File => {
                    let st = fs.stat(&child).unwrap();
                    let fd = fs.open(&child, OpenFlags::READ).unwrap();
                    let mut content = vec![0u8; st.size as usize];
                    let n = fs.read(fd, 0, &mut content).unwrap();
                    assert_eq!(n as u64, st.size);
                    fs.close(fd).unwrap();
                    state.push((child, content));
                }
            }
        }
    }
    state.sort();
    state
}

#[test]
fn all_systems_agree_on_the_same_script() {
    let reference = {
        let sys = build(SystemKind::Pmfs, &cfg()).unwrap();
        let state = drive(&*sys.fs);
        sys.fs.unmount().unwrap();
        state
    };
    assert!(!reference.is_empty());
    for kind in ALL.into_iter().skip(1) {
        let sys = build(kind, &cfg()).unwrap();
        let state = drive(&*sys.fs);
        sys.fs.unmount().unwrap();
        assert_eq!(
            state.len(),
            reference.len(),
            "{}: file count differs",
            kind.label()
        );
        for (got, want) in state.iter().zip(&reference) {
            assert_eq!(got.0, want.0, "{}: path mismatch", kind.label());
            assert_eq!(
                got.1.len(),
                want.1.len(),
                "{}: size mismatch for {}",
                kind.label(),
                got.0
            );
            assert_eq!(
                got.1,
                want.1,
                "{}: content mismatch for {}",
                kind.label(),
                got.0
            );
        }
    }
}

#[test]
fn state_survives_remount_on_every_system() {
    for kind in ALL {
        let sys = build(kind, &cfg()).unwrap();
        let state = drive(&*sys.fs);
        sys.fs.unmount().unwrap();
        let sys2 = workloads::setups::remount_with(kind, sys.dev, sys.env, &cfg()).unwrap();
        // Re-collect and compare contents after a cold remount.
        for (path, want) in &state {
            let st = sys2.fs.stat(path).unwrap_or_else(|e| {
                panic!("{}: {} missing after remount: {e}", kind.label(), path)
            });
            assert_eq!(st.size as usize, want.len(), "{}: {}", kind.label(), path);
            let fd = sys2.fs.open(path, OpenFlags::READ).unwrap();
            let mut got = vec![0u8; want.len()];
            sys2.fs.read(fd, 0, &mut got).unwrap();
            sys2.fs.close(fd).unwrap();
            assert_eq!(
                &got,
                want,
                "{}: {} content after remount",
                kind.label(),
                path
            );
        }
        sys2.fs.unmount().unwrap();
    }
}
