//! Bench-regression attribution: diff two `BENCH_*.json` documents and
//! decompose a Δops_per_s or Δp99 into ranked span-phase, lock-site and
//! fence-count deltas — a machine-generated "blame table" instead of a
//! bare pass/fail gate.
//!
//! The parser reads only the flat one-key-per-line families the emitter
//! guarantees (`headline::`, `tail::`, `span::`, `lock::`, `fence::`,
//! and, since schema v4, `waf::` and `lag::`), so it needs no JSON
//! library and tolerates any schema's nested sections. An older baseline
//! (a v2 doc without `tail::`/`span::` keys, or a v3 doc without
//! `waf::`/`lag::` keys) still diffs cleanly: headline deltas always
//! print, and each missing family is reported as a note instead of a
//! blame ranking.
//!
//! Output is stable and greppable: human-readable `bench_diff:` lines
//! plus `blame::<cell>::<family> <rank> <name> <delta>` lines, ranked
//! worst-regression first — `verify.sh` plants a synthetic span-phase
//! regression and asserts the blame table names it at rank 1.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The flat key families the diff understands.
const FAMILIES: [&str; 7] = [
    "headline::",
    "tail::",
    "span::",
    "lock::",
    "fence::",
    "waf::",
    "lag::",
];

/// Span/lock deltas below this many ns per op are noise, not blame.
const MIN_NS_PER_OP: f64 = 0.05;

/// Blame rows printed per family per cell.
const TOP_BLAME: usize = 5;

/// A parsed flat-key document: key → numeric value, plus the scale's
/// thread count (for labeling) and total ops per cell (for per-op
/// normalization).
#[derive(Debug, Default)]
pub struct FlatDoc {
    /// Every `<family>::…` key with its numeric value.
    pub keys: BTreeMap<String, f64>,
    /// `schema_version`, when present.
    pub schema: Option<u32>,
}

impl FlatDoc {
    /// Parses the flat key families out of a BENCH document. Lines that
    /// are not `"key": number[,]` with a known family prefix are
    /// ignored, so nested sections never confuse the diff.
    pub fn parse(doc: &str) -> FlatDoc {
        let mut out = FlatDoc::default();
        for line in doc.lines() {
            let t = line.trim();
            if let Some(rest) = t.strip_prefix("\"schema_version\": ") {
                out.schema = rest.trim_end_matches(',').trim().parse().ok();
                continue;
            }
            let Some(rest) = t.strip_prefix('"') else {
                continue;
            };
            let Some((key, val)) = rest.split_once("\": ") else {
                continue;
            };
            if !FAMILIES.iter().any(|f| key.starts_with(f)) {
                continue;
            }
            if let Ok(v) = val.trim_end_matches(',').trim().parse::<f64>() {
                out.keys.insert(key.to_string(), v);
            }
        }
        out
    }

    fn get(&self, key: &str) -> Option<f64> {
        self.keys.get(key).copied()
    }

    /// The headline cells (`<workload>::<system>`) present in the doc.
    fn cells(&self) -> Vec<String> {
        self.keys
            .keys()
            .filter_map(|k| {
                let rest = k.strip_prefix("headline::")?;
                let cell = rest.strip_suffix("::ops_per_s")?;
                // A cell is `<workload>::<system>`; anything deeper is a
                // sweep key like `<cell>::threads=8`.
                if cell.matches("::").count() != 1 {
                    return None;
                }
                Some(cell.to_string())
            })
            .collect()
    }

    /// Whether the doc carries any key of `family` for `cell`.
    fn has_family(&self, family: &str, cell: &str) -> bool {
        let prefix = format!("{family}{cell}::");
        self.keys.keys().any(|k| k.starts_with(&prefix))
    }

    /// `(name, value)` pairs of `<family><cell>::…<suffix>` keys, with
    /// the name being the middle segment (e.g. the `phase=` or `site=`
    /// value).
    fn family_values(&self, family: &str, cell: &str, suffix: &str) -> Vec<(String, f64)> {
        let prefix = format!("{family}{cell}::");
        self.keys
            .iter()
            .filter_map(|(k, &v)| {
                let mid = k.strip_prefix(&prefix)?.strip_suffix(suffix)?;
                let name = mid
                    .split_once('=')
                    .map(|(_, n)| n)
                    .unwrap_or(mid)
                    .to_string();
                Some((name, v))
            })
            .collect()
    }
}

/// One ranked blame entry: a named component's per-op (or per-exemplar)
/// delta between baseline and candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Blame {
    /// Phase or site name.
    pub name: String,
    /// Candidate minus baseline, normalized ns (per op or per exemplar).
    pub delta: f64,
    /// Baseline normalized value.
    pub base: f64,
}

fn pct(base: f64, cand: f64) -> String {
    if base == 0.0 {
        return "n/a".to_string();
    }
    format!("{:+.2}%", (cand - base) / base * 100.0)
}

/// Joins baseline and candidate `(name, value)` lists into per-name
/// deltas, ranked largest increase first.
fn rank_deltas(
    base: &[(String, f64)],
    cand: &[(String, f64)],
    base_norm: f64,
    cand_norm: f64,
) -> Vec<Blame> {
    let mut names: Vec<&String> = base.iter().chain(cand.iter()).map(|(n, _)| n).collect();
    names.sort();
    names.dedup();
    let lookup = |set: &[(String, f64)], name: &str| -> f64 {
        set.iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0.0)
    };
    let mut out: Vec<Blame> = names
        .into_iter()
        .map(|name| {
            let b = lookup(base, name) / base_norm.max(1.0);
            let c = lookup(cand, name) / cand_norm.max(1.0);
            Blame {
                name: name.clone(),
                delta: c - b,
                base: b,
            }
        })
        .filter(|b| b.delta.abs() >= MIN_NS_PER_OP)
        .collect();
    out.sort_by(|a, b| {
        b.delta
            .partial_cmp(&a.delta)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(&b.name))
    });
    out
}

fn push_blame_family(out: &mut String, cell: &str, family: &str, unit: &str, ranked: &[Blame]) {
    for (i, b) in ranked.iter().take(TOP_BLAME).enumerate() {
        let _ = writeln!(
            out,
            "blame::{cell}::{family} {} {} {:+.1} {unit} ({})",
            i + 1,
            b.name,
            b.delta,
            pct(b.base, b.base + b.delta)
        );
    }
}

/// Renders the full diff of two parsed documents. Pure string-in /
/// string-out so the negative test in `verify.sh` (and the unit tests
/// here) can assert on exact blame lines.
pub fn render_diff(base: &FlatDoc, cand: &FlatDoc, base_name: &str, cand_name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench_diff: baseline {base_name} (schema {}) vs candidate {cand_name} (schema {})",
        base.schema.map_or("?".into(), |v| v.to_string()),
        cand.schema.map_or("?".into(), |v| v.to_string()),
    );
    let mut cells = base.cells();
    cells.retain(|c| cand.cells().contains(c));
    if cells.is_empty() {
        let _ = writeln!(
            out,
            "bench_diff: no common headline cells — nothing to diff"
        );
        return out;
    }
    for cell in &cells {
        let _ = writeln!(out, "bench_diff: cell {cell}");
        let b_ops = base
            .get(&format!("headline::{cell}::ops_per_s"))
            .unwrap_or(0.0);
        let c_ops = cand
            .get(&format!("headline::{cell}::ops_per_s"))
            .unwrap_or(0.0);
        let _ = writeln!(
            out,
            "bench_diff:   ops_per_s {b_ops:.1} -> {c_ops:.1} ({})",
            pct(b_ops, c_ops)
        );
        let b_total = base
            .get(&format!("headline::{cell}::total_ops"))
            .unwrap_or(0.0);
        let c_total = cand
            .get(&format!("headline::{cell}::total_ops"))
            .unwrap_or(0.0);
        // p99: prefer the schema-v3 tail key, fall back to the slowest
        // sweep point's p99 present in both docs.
        let p99_key = format!("tail::{cell}::p99::ns");
        match (base.get(&p99_key), cand.get(&p99_key)) {
            (Some(b), Some(c)) => {
                let _ = writeln!(out, "bench_diff:   p99_ns {b:.0} -> {c:.0} ({})", pct(b, c));
            }
            _ => {
                let _ = writeln!(
                    out,
                    "bench_diff:   note {cell}: no tail::p99 key in both docs (schema < 3 side); p99 delta from headline sweep only"
                );
            }
        }

        // Span-phase blame, normalized to ns per op.
        if base.has_family("span::", cell) && cand.has_family("span::", cell) {
            let ranked = rank_deltas(
                &base.family_values("span::", cell, "::ns"),
                &cand.family_values("span::", cell, "::ns"),
                b_total,
                c_total,
            );
            push_blame_family(&mut out, cell, "span", "ns/op", &ranked);
        } else {
            let _ = writeln!(
                out,
                "bench_diff:   note {cell}: span:: keys missing on one side; span blame skipped"
            );
        }

        // Lock-site blame, normalized to wait ns per op.
        if base.has_family("lock::", cell) && cand.has_family("lock::", cell) {
            let ranked = rank_deltas(
                &base.family_values("lock::", cell, "::wait_ns"),
                &cand.family_values("lock::", cell, "::wait_ns"),
                b_total,
                c_total,
            );
            push_blame_family(&mut out, cell, "lock", "wait-ns/op", &ranked);
        } else {
            let _ = writeln!(
                out,
                "bench_diff:   note {cell}: lock:: keys missing on one side; lock blame skipped"
            );
        }

        // Fence-count delta, per op.
        let fence_key = format!("fence::{cell}::count");
        match (base.get(&fence_key), cand.get(&fence_key)) {
            (Some(b), Some(c)) => {
                let b = b / b_total.max(1.0);
                let c = c / c_total.max(1.0);
                let _ = writeln!(
                    out,
                    "blame::{cell}::fence {:+.3} fences/op ({})",
                    c - b,
                    pct(b, c)
                );
            }
            _ => {
                let _ = writeln!(
                    out,
                    "bench_diff:   note {cell}: fence:: keys missing on one side; fence delta skipped"
                );
            }
        }

        // Write-amplification blame: per-layer bytes normalized to bytes
        // per logical KiB, so a candidate that moves more journal or
        // writeback traffic per unit of useful work is named by layer.
        if base.has_family("waf::", cell) && cand.has_family("waf::", cell) {
            let b_kib = base
                .get(&format!("waf::{cell}::logical::bytes"))
                .unwrap_or(0.0)
                / 1024.0;
            let c_kib = cand
                .get(&format!("waf::{cell}::logical::bytes"))
                .unwrap_or(0.0)
                / 1024.0;
            let ranked = rank_deltas(
                &base.family_values("waf::", cell, "::bytes"),
                &cand.family_values("waf::", cell, "::bytes"),
                b_kib,
                c_kib,
            );
            push_blame_family(&mut out, cell, "waf", "b/logical-kib", &ranked);
            let fpk_key = format!("waf::{cell}::fences_per_kib");
            if let (Some(b), Some(c)) = (base.get(&fpk_key), cand.get(&fpk_key)) {
                if b != c {
                    let _ = writeln!(
                        out,
                        "blame::{cell}::waf_fences {:+.3} fences/kib ({})",
                        c - b,
                        pct(b, c)
                    );
                }
            }
        } else {
            let _ = writeln!(
                out,
                "bench_diff:   note {cell}: waf:: keys missing on one side (schema < 4 side); waf blame skipped"
            );
        }

        // Durability-lag blame: the p50/p99/max quantile deltas in
        // absolute ns, worst growth first.
        if base.has_family("lag::", cell) && cand.has_family("lag::", cell) {
            let ranked = rank_deltas(
                &base.family_values("lag::", cell, "_ns"),
                &cand.family_values("lag::", cell, "_ns"),
                1.0,
                1.0,
            );
            push_blame_family(&mut out, cell, "lag", "ns", &ranked);
        } else {
            let _ = writeln!(
                out,
                "bench_diff:   note {cell}: lag:: keys missing on one side (schema < 4 side); lag blame skipped"
            );
        }

        // Tail-anatomy blame: Δp99 decomposed into per-exemplar phase
        // averages of the p99 cohort.
        if base.has_family("tail::", cell) && cand.has_family("tail::", cell) {
            let tcell = format!("{cell}::p99");
            let b_n = base.get(&format!("tail::{tcell}::count")).unwrap_or(0.0);
            let c_n = cand.get(&format!("tail::{tcell}::count")).unwrap_or(0.0);
            let ranked = rank_deltas(
                &base.family_values("tail::", &tcell, "::ns"),
                &cand.family_values("tail::", &tcell, "::ns"),
                b_n,
                c_n,
            );
            // family_values over "::ns" also captures the quantile key
            // itself (`tail::<cell>::p99::ns`, name "p99::ns" → "ns")
            // and wait keys; keep only phase names.
            let phase_only: Vec<Blame> = ranked
                .into_iter()
                .filter(|b| {
                    base.get(&format!("tail::{tcell}::phase={}::ns", b.name))
                        .is_some()
                        || cand
                            .get(&format!("tail::{tcell}::phase={}::ns", b.name))
                            .is_some()
                })
                .collect();
            push_blame_family(&mut out, cell, "tail_p99", "ns/exemplar", &phase_only);
        } else {
            let _ = writeln!(
                out,
                "bench_diff:   note {cell}: tail:: keys missing on one side; tail blame skipped"
            );
        }
    }
    let _ = writeln!(out, "bench_diff: done ({} cells)", cells.len());
    out
}

/// Diffs two documents by content; the names label the report only.
pub fn diff_docs(base_doc: &str, cand_doc: &str, base_name: &str, cand_name: &str) -> String {
    render_diff(
        &FlatDoc::parse(base_doc),
        &FlatDoc::parse(cand_doc),
        base_name,
        cand_name,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(extra: &str) -> String {
        format!(
            "{{\n  \"schema_version\": 4,\n  \
             \"headline::fileserver::hinfs::ops_per_s\": 1000.000,\n  \
             \"headline::fileserver::hinfs::total_ops\": 2000,\n  \
             \"tail::fileserver::hinfs::p99::ns\": 5000,\n  \
             \"tail::fileserver::hinfs::p99::count\": 10,\n  \
             \"tail::fileserver::hinfs::p99::phase=journal::ns\": 20000,\n  \
             \"tail::fileserver::hinfs::p99::phase=persist::ns\": 10000,\n  \
             \"span::fileserver::hinfs::phase=journal::ns\": 100000,\n  \
             \"span::fileserver::hinfs::phase=persist::ns\": 300000,\n  \
             \"lock::fileserver::hinfs::site=pmfs.journal::wait_ns\": 50000,\n  \
             \"fence::fileserver::hinfs::count\": 4000,\n  \
             \"waf::fileserver::hinfs::logical::bytes\": 1048576,\n  \
             \"waf::fileserver::hinfs::journal_logged::bytes\": 262144,\n  \
             \"waf::fileserver::hinfs::nvmm_persisted::bytes\": 2097152,\n  \
             \"waf::fileserver::hinfs::fences_per_kib\": 4,\n  \
             \"lag::fileserver::hinfs::count\": 500,\n  \
             \"lag::fileserver::hinfs::p50_ns\": 0,\n  \
             \"lag::fileserver::hinfs::p99_ns\": 40000,\n  \
             \"lag::fileserver::hinfs::max_ns\": 90000,\n{extra}  \
             \"end\": 0\n}}\n"
        )
    }

    #[test]
    fn parses_flat_families_only() {
        let d = FlatDoc::parse(&doc(""));
        assert_eq!(d.schema, Some(4));
        assert_eq!(d.cells(), vec!["fileserver::hinfs".to_string()]);
        assert_eq!(
            d.get("span::fileserver::hinfs::phase=journal::ns"),
            Some(100000.0)
        );
        assert!(d.get("end").is_none(), "unknown families are ignored");
    }

    #[test]
    fn planted_span_regression_is_blamed_first() {
        let base = doc("");
        // Journal span grows 10x while everything else is unchanged: the
        // span blame table must put journal at rank 1.
        let cand = base.replace(
            "\"span::fileserver::hinfs::phase=journal::ns\": 100000,",
            "\"span::fileserver::hinfs::phase=journal::ns\": 1000000,",
        );
        let report = diff_docs(&base, &cand, "a", "b");
        let rank1 = report
            .lines()
            .find(|l| l.starts_with("blame::fileserver::hinfs::span 1 "))
            .expect("span blame rank 1 line");
        assert!(
            rank1.starts_with("blame::fileserver::hinfs::span 1 journal "),
            "wrong blame: {rank1}"
        );
        // Delta is (1000000-100000)/2000 = +450 ns/op.
        assert!(rank1.contains("+450.0 ns/op"), "wrong delta: {rank1}");
    }

    #[test]
    fn schema_v2_baseline_degrades_to_notes_not_errors() {
        // A v2 baseline has headline keys only.
        let base = "{\n  \"schema_version\": 2,\n  \
                    \"headline::fileserver::hinfs::ops_per_s\": 900.000,\n  \
                    \"headline::fileserver::hinfs::total_ops\": 1800,\n}\n";
        let report = diff_docs(base, &doc(""), "pr7", "pr9");
        assert!(report.contains("bench_diff: cell fileserver::hinfs"));
        assert!(report.contains("ops_per_s 900.0 -> 1000.0"));
        assert!(report.contains("span blame skipped"));
        assert!(report.contains("lock blame skipped"));
        assert!(report.contains("bench_diff: done (1 cells)"));
        assert!(
            !report.lines().any(|l| l.starts_with("blame::")),
            "no blame lines without both sides:\n{report}"
        );
    }

    #[test]
    fn lock_and_fence_deltas_rank_and_normalize() {
        let base = doc("");
        let cand = doc("")
            .replace(
                "\"lock::fileserver::hinfs::site=pmfs.journal::wait_ns\": 50000,",
                "\"lock::fileserver::hinfs::site=pmfs.journal::wait_ns\": 250000,",
            )
            .replace(
                "\"fence::fileserver::hinfs::count\": 4000,",
                "\"fence::fileserver::hinfs::count\": 6000,",
            );
        let report = diff_docs(&base, &cand, "a", "b");
        assert!(
            report.contains("blame::fileserver::hinfs::lock 1 pmfs.journal +100.0 wait-ns/op"),
            "{report}"
        );
        assert!(
            report.contains("blame::fileserver::hinfs::fence +1.000 fences/op"),
            "{report}"
        );
    }

    #[test]
    fn tail_phase_blame_uses_per_exemplar_averages() {
        let base = doc("");
        let cand = doc("").replace(
            "\"tail::fileserver::hinfs::p99::phase=journal::ns\": 20000,",
            "\"tail::fileserver::hinfs::p99::phase=journal::ns\": 60000,",
        );
        let report = diff_docs(&base, &cand, "a", "b");
        // (60000-20000)/10 exemplars = +4000 ns/exemplar.
        assert!(
            report.contains("blame::fileserver::hinfs::tail_p99 1 journal +4000.0 ns/exemplar"),
            "{report}"
        );
    }

    #[test]
    fn identical_docs_produce_no_blame_rows() {
        let report = diff_docs(&doc(""), &doc(""), "a", "a");
        assert!(
            !report
                .lines()
                .any(|l| l.starts_with("blame::") && !l.contains("+0.000")),
            "unexpected blame:\n{report}"
        );
    }

    #[test]
    fn planted_waf_regression_is_blamed_by_layer() {
        let base = doc("");
        // NVMM-persisted bytes triple at constant logical traffic: the waf
        // blame must name the layer at rank 1, in bytes per logical KiB.
        let cand = base.replace(
            "\"waf::fileserver::hinfs::nvmm_persisted::bytes\": 2097152,",
            "\"waf::fileserver::hinfs::nvmm_persisted::bytes\": 6291456,",
        );
        let report = diff_docs(&base, &cand, "a", "b");
        let rank1 = report
            .lines()
            .find(|l| l.starts_with("blame::fileserver::hinfs::waf 1 "))
            .expect("waf blame rank 1 line");
        assert!(
            rank1.starts_with("blame::fileserver::hinfs::waf 1 nvmm_persisted "),
            "wrong blame: {rank1}"
        );
        // (6291456-2097152)/1024 logical KiB = +4096 b/logical-kib.
        assert!(
            rank1.contains("+4096.0 b/logical-kib"),
            "wrong delta: {rank1}"
        );
    }

    #[test]
    fn planted_lag_regression_is_blamed_by_quantile() {
        let base = doc("");
        let cand = base.replace(
            "\"lag::fileserver::hinfs::max_ns\": 90000,",
            "\"lag::fileserver::hinfs::max_ns\": 5090000,",
        );
        let report = diff_docs(&base, &cand, "a", "b");
        let rank1 = report
            .lines()
            .find(|l| l.starts_with("blame::fileserver::hinfs::lag 1 "))
            .expect("lag blame rank 1 line");
        assert!(
            rank1.starts_with("blame::fileserver::hinfs::lag 1 max "),
            "wrong blame: {rank1}"
        );
        assert!(rank1.contains("+5000000.0 ns"), "wrong delta: {rank1}");
    }

    #[test]
    fn schema_v3_baseline_degrades_waf_and_lag_to_notes() {
        // A v3 baseline has every family except waf::/lag::.
        let base = doc("")
            .lines()
            .filter(|l| !l.contains("\"waf::") && !l.contains("\"lag::"))
            .collect::<Vec<_>>()
            .join("\n")
            .replace("\"schema_version\": 4", "\"schema_version\": 3");
        let report = diff_docs(&base, &doc(""), "pr9", "pr10");
        assert!(report.contains("waf blame skipped"), "{report}");
        assert!(report.contains("lag blame skipped"), "{report}");
        // The older families still produce full diffs.
        assert!(report.contains("bench_diff: cell fileserver::hinfs"));
        assert!(
            !report
                .lines()
                .any(|l| l.starts_with("blame::fileserver::hinfs::waf")
                    || l.starts_with("blame::fileserver::hinfs::lag")),
            "no waf/lag blame without both sides:\n{report}"
        );
    }
}
