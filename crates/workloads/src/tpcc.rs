//! A TPC-C-style transaction workload (the paper ran DBT2 on PostgreSQL):
//! a WAL-based database emulator issuing the file I/O pattern an OLTP
//! engine produces — per-transaction WAL appends followed by fsync (over
//! 90 % of written bytes are synchronized, Fig 2), random table-page reads
//! and writes, and periodic checkpoints that flush the table file.

use fskit::{Fd, OpenFlags, Result};
use rand::Rng;

use crate::runner::{Actor, Ctx};

/// Parameters of the database emulator.
#[derive(Debug, Clone)]
pub struct TpccParams {
    /// Table file path ("the database heap").
    pub table_path: String,
    /// WAL file path.
    pub wal_path: String,
    /// Table size in bytes.
    pub table_size: u64,
    /// Mean WAL record size per transaction.
    pub wal_record: usize,
    /// Table pages read per transaction.
    pub reads_per_txn: usize,
    /// Table pages modified per transaction.
    pub writes_per_txn: usize,
    /// Transactions between checkpoints (table fsync).
    pub checkpoint_every: u64,
    /// CPU time the database spends per transaction outside the file
    /// system (query planning, executor, locking). TPC-C on PostgreSQL is
    /// database-bound, so file system deltas show up muted (Fig 13).
    pub think_ns: u64,
}

impl Default for TpccParams {
    fn default() -> Self {
        TpccParams {
            table_path: "/tpcc-table".into(),
            wal_path: "/tpcc-wal".into(),
            table_size: 16 << 20,
            wal_record: 400,
            reads_per_txn: 4,
            writes_per_txn: 2,
            checkpoint_every: 64,
            think_ns: 100_000,
        }
    }
}

/// One database worker.
pub struct Tpcc {
    params: TpccParams,
    table_fd: Option<Fd>,
    wal_fd: Option<Fd>,
    txns: u64,
    buf: Vec<u8>,
}

impl Tpcc {
    /// Creates a worker.
    pub fn new(params: TpccParams) -> Tpcc {
        Tpcc {
            params,
            table_fd: None,
            wal_fd: None,
            txns: 0,
            buf: Vec::new(),
        }
    }

    /// Materializes the table and WAL outside the measured run, so
    /// transaction metrics (Fig 2's > 90 % fsync share) are not diluted by
    /// the one-time setup writes.
    pub fn setup(fs: &dyn fskit::FileSystem, params: &TpccParams) -> Result<()> {
        let fd = fs.open(&params.table_path, OpenFlags::RDWR | OpenFlags::CREATE)?;
        let chunk = vec![0u8; 1 << 20];
        let mut off = fs.fstat(fd)?.size;
        while off < params.table_size {
            let n = ((params.table_size - off) as usize).min(chunk.len());
            fs.write(fd, off, &chunk[..n])?;
            off += n as u64;
        }
        fs.close(fd)?;
        let fd = fs.open(&params.wal_path, OpenFlags::RDWR | OpenFlags::CREATE)?;
        fs.close(fd)
    }
}

const PAGE: usize = 8 << 10; // PostgreSQL-style 8 KiB pages.

impl Actor for Tpcc {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        if self.table_fd.is_none() {
            let fd = ctx.open(&self.params.table_path, OpenFlags::RDWR | OpenFlags::CREATE)?;
            // Materialize whatever `setup` has not already.
            let chunk = vec![0u8; 1 << 20];
            let mut off = ctx.fstat(fd)?.size;
            while off < self.params.table_size {
                let n = ((self.params.table_size - off) as usize).min(chunk.len());
                ctx.write(fd, off, &chunk[..n])?;
                off += n as u64;
            }
            self.table_fd = Some(fd);
            self.wal_fd = Some(ctx.open(
                &self.params.wal_path,
                OpenFlags::RDWR | OpenFlags::CREATE | OpenFlags::APPEND,
            )?);
            return Ok(true);
        }
        let table = self.table_fd.unwrap();
        let wal = self.wal_fd.unwrap();
        let pages = self.params.table_size / PAGE as u64;
        // Database CPU work of the transaction.
        ctx.env.charge(nvmm::Cat::Other, self.params.think_ns);
        // Read phase.
        self.buf.resize(PAGE, 0);
        for _ in 0..self.params.reads_per_txn {
            let p = ctx.rng.gen_range(0..pages);
            ctx.read(table, p * PAGE as u64, &mut self.buf.clone())?;
        }
        // Modify phase: dirty table pages (buffered by the DB; reach the
        // file immediately in this emulator, synced at checkpoints).
        for _ in 0..self.params.writes_per_txn {
            let p = ctx.rng.gen_range(0..pages);
            ctx.write(table, p * PAGE as u64, &self.buf[..PAGE])?;
        }
        // Commit: WAL append + fsync (this is what makes TPC-C > 90 %
        // fsync bytes).
        let rec = crate::fileset::draw_size(&mut ctx.rng, self.params.wal_record).max(64);
        self.buf.resize(rec.max(PAGE), 0x88);
        ctx.append(wal, &self.buf[..rec])?;
        ctx.fsync(wal)?;
        self.txns += 1;
        if self.txns.is_multiple_of(self.params.checkpoint_every) {
            ctx.fsync(table)?;
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{RunLimit, Runner};
    use crate::OpKind;
    use nvmm::{CostModel, NvmmDevice, SimEnv, BLOCK_SIZE};
    use pmfs::{Pmfs, PmfsOptions};

    #[test]
    fn commits_are_synchronous() {
        let env = SimEnv::new_virtual(CostModel::default());
        let dev = NvmmDevice::new(env.clone(), 16384 * BLOCK_SIZE);
        let fs = Pmfs::mkfs(
            dev,
            PmfsOptions {
                journal_blocks: 128,
                inode_count: 64,
            },
        )
        .unwrap();
        env.rebase();
        let runner = Runner::new(env, fs);
        let params = TpccParams {
            table_size: 2 << 20,
            ..TpccParams::default()
        };
        let t = Tpcc::new(params);
        let r = runner.run(vec![Box::new(t)], RunLimit::steps(101), 17);
        // Step 1 materializes the table (not fsynced); 100 transactions.
        assert_eq!(r.op_count(OpKind::Fsync), 100 + 100 / 64);
        // The table prealloc dominates raw bytes; exclude it for the Fig 2
        // view by checking the sync fraction among post-setup writes: all
        // WAL bytes and checkpointed table pages are synced.
        assert!(r.metrics.fsync_bytes > 0);
    }
}
