#!/usr/bin/env bash
# Tier-1 verification gate: formatting, lints, build, tests.
#
# The workspace builds fully offline — every external-looking dependency
# (rand, proptest, criterion, parking_lot) resolves to an in-tree shim
# under shims/ via [workspace.dependencies] path entries, and Cargo.lock
# is committed. When a network registry is unreachable we pass --offline
# explicitly so cargo never stalls trying to reach crates.io.
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=""
if [[ "${1:-}" == "--offline" ]]; then
    OFFLINE="--offline"
elif ! cargo fetch --quiet 2>/dev/null; then
    echo "verify: registry unreachable, falling back to --offline" >&2
    OFFLINE="--offline"
fi

run() {
    echo "verify: $*"
    "$@"
}

run cargo fmt --all -- --check
run scripts/lint_locks.sh
run cargo clippy --workspace --all-targets $OFFLINE -- -D warnings
run cargo build --release $OFFLINE
run cargo test -q $OFFLINE
# faultfs smoke sweep: crash-point enumeration + durability oracle +
# fault injection across hinfs/pmfs/ext4 (fixed seed, capped points;
# exits non-zero on any oracle violation or panic).
run cargo run --release $OFFLINE --example crash_recovery

# Coverage-guided fuzz soak: a seed- and iteration-capped campaign that
# must (1) be byte-reproducible, (2) reach strictly more coverage than
# replaying the scripted seed corpus, with zero violations, and (3) catch
# a deliberately planted reference-model bug and shrink it to the exact
# committed fixture (the negative test proving the gate gates).
run scripts/fuzz_soak.sh $OFFLINE

# State introspection gate: run the quick-scale fileserver workload with
# the online invariant auditor on; exits non-zero on any audit violation
# or any snapshot-vs-registry disagreement. --lag also arms the lineage
# ledger so the agreement pass covers the obsv_lineage_* gauges and the
# durability-lag report renders.
run cargo run --release $OFFLINE --example fs_inspect -- --audit --lag

# Machine-readable perf pipeline: regenerate the BENCH document at the
# quick deterministic scale and gate it against the committed baseline.
# The virtual clock makes the run reproducible, so any drift here is a
# real behavior change, not noise.
bench_tmp=$(mktemp -t BENCH_check.XXXXXX.json)
trap 'rm -f "$bench_tmp" "$bench_tmp.bad" "$bench_tmp.blame" "$bench_tmp.waf"' EXIT
run cargo run --release $OFFLINE -p hinfs-bench --bin experiments -- \
    --quick --fig 101 --fig 112 --bench-json "$bench_tmp"
run scripts/bench_check.sh BENCH_pr10.json "$bench_tmp"
# The gate must also FAIL when a regression is injected — otherwise it
# gates nothing.
sed 's/\("headline::fileserver::hinfs::ops_per_s": \)\([0-9]*\)/\10/' \
    "$bench_tmp" >"$bench_tmp.bad"
if scripts/bench_check.sh BENCH_pr10.json "$bench_tmp.bad" >/dev/null 2>&1; then
    echo "verify: bench_check failed to flag an injected regression" >&2
    exit 1
fi
echo "verify: bench_check catches injected regressions"

# Regression ATTRIBUTION: bench_diff must run clean across the schema
# boundaries (v2 baseline vs v3 candidate, v3 vs v4) and against the
# committed v4 baseline. The v3→v4 pair must DEGRADE the waf::/lag::
# families to explicit notes rather than fail or stay silent.
run scripts/bench_diff.sh $OFFLINE BENCH_pr7.json BENCH_pr9.json
if ! scripts/bench_diff.sh $OFFLINE BENCH_pr9.json BENCH_pr10.json |
    grep -q 'waf:: keys missing on one side'; then
    echo "verify: bench_diff did not note the v3 side's missing waf:: family" >&2
    exit 1
fi
echo "verify: bench_diff degrades v3 baselines to waf/lag notes"
run scripts/bench_diff.sh $OFFLINE BENCH_pr10.json "$bench_tmp"
# And its blame table must NAME a planted regression: multiply the
# journal span-phase time by 10 and require the span blame to rank
# `journal` first for that cell.
awk '{
    if ($0 ~ /"span::fileserver::hinfs::phase=journal::ns": /) {
        match($0, /[0-9]+/); v = substr($0, RSTART, RLENGTH)
        sub(/[0-9]+/, sprintf("%d", v * 10))
    }
    print
}' "$bench_tmp" >"$bench_tmp.blame"
if ! scripts/bench_diff.sh $OFFLINE "$bench_tmp" "$bench_tmp.blame" |
    grep -q '^blame::fileserver::hinfs::span 1 journal +'; then
    echo "verify: bench_diff failed to blame the planted journal-phase regression" >&2
    exit 1
fi
# Same drill for the v4 lineage families: a 10x NVMM-persisted byte count
# must rank `nvmm_persisted` first in the waf blame, and a large max-lag
# bump must rank `max` first in the lag blame, each for exactly that cell.
awk '{
    if ($0 ~ /"waf::fileserver::hinfs::nvmm_persisted::bytes": /) {
        match($0, /[0-9]+/); v = substr($0, RSTART, RLENGTH)
        sub(/[0-9]+/, sprintf("%d", v * 10))
    }
    if ($0 ~ /"lag::fileserver::hinfs::max_ns": /) {
        match($0, /[0-9]+/); v = substr($0, RSTART, RLENGTH)
        sub(/[0-9]+/, sprintf("%d", v + 5000000))
    }
    print
}' "$bench_tmp" >"$bench_tmp.waf"
waf_diff=$(scripts/bench_diff.sh $OFFLINE "$bench_tmp" "$bench_tmp.waf")
if ! grep -q '^blame::fileserver::hinfs::waf 1 nvmm_persisted +' <<<"$waf_diff"; then
    echo "verify: bench_diff failed to blame the planted write-amplification regression" >&2
    exit 1
fi
if ! grep -q '^blame::fileserver::hinfs::lag 1 max +' <<<"$waf_diff"; then
    echo "verify: bench_diff failed to blame the planted durability-lag regression" >&2
    exit 1
fi
echo "verify: bench_diff blames planted regressions correctly"
echo "verify: OK"
