//! A PMFS-like NVMM-aware file system.
//!
//! This crate reproduces the baseline system of the paper (Dulloor et al.,
//! *System Software for Persistent Memory*, EuroSys 2014) to the level of
//! detail the HiNFS evaluation depends on:
//!
//! - **Direct access**: file reads and writes copy once, between the user
//!   buffer and NVMM, bypassing any page cache. Writes use the non-temporal
//!   path ([`nvmm::NvmmDevice::write_persist`]) so data is durable when the
//!   call returns, paying the NVMM write latency on the critical path —
//!   which is exactly the overhead HiNFS attacks.
//! - **Cacheline-granular metadata undo journal** with a valid flag written
//!   last in each 64 B log entry, 8-byte atomic in-place updates where
//!   possible, and `clflush`/`mfence` ordering.
//! - **Per-file block index**: a 512-ary radix B-tree of 4 KiB nodes, as in
//!   PMFS.
//! - **DRAM allocator state** rebuilt by walking the file system at
//!   recovery, persisted on clean unmount.
//! - **Direct mmap** of file data (PMFS's pivotal feature), where stores
//!   are volatile until `msync`.
//!
//! HiNFS (the `hinfs` crate) is implemented *on top of* this crate's
//! [`Pmfs`] type, mirroring how the paper built HiNFS inside PMFS: the
//! namespace, journal, allocator, and block trees are shared, while the
//! data path is replaced by the DRAM write buffer.

pub mod alloc;
pub mod dir;
pub mod file;
pub mod fs;
pub mod inode;
pub mod journal;
pub mod layout;
pub mod mmap;
pub mod tree;

pub use fs::{Pmfs, PmfsOptions};
pub use journal::{Journal, JournalUsage, TxHandle};
pub use layout::Layout;
