//! An intrusive doubly-linked recency list over pool slots.
//!
//! Used by HiNFS as the global **LRW** (least recently written) list and by
//! the block-based baselines as the page cache's **LRU** list. Links are
//! slot indices into a fixed pool, so every operation is O(1) and
//! allocation-free. The *tail* is the eviction end (least recent); the
//! *head* is the most recent.

/// Sentinel for "no slot".
pub const NIL: u32 = u32::MAX;

/// Intrusive doubly-linked recency list.
#[derive(Debug)]
pub struct RecencyList {
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
}

impl RecencyList {
    /// Creates a list over a pool of `capacity` slots, all unlinked.
    pub fn new(capacity: usize) -> RecencyList {
        RecencyList {
            prev: vec![NIL; capacity],
            next: vec![NIL; capacity],
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of linked slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slot is linked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The least-recent slot (eviction candidate), if any.
    pub fn tail(&self) -> Option<u32> {
        (self.tail != NIL).then_some(self.tail)
    }

    /// The most-recent slot, if any.
    pub fn head(&self) -> Option<u32> {
        (self.head != NIL).then_some(self.head)
    }

    fn assert_unlinked(&self, slot: u32) {
        debug_assert!(
            self.prev[slot as usize] == NIL
                && self.next[slot as usize] == NIL
                && self.head != slot
                && self.tail != slot,
            "slot {slot} already linked"
        );
    }

    /// Links `slot` at the most-recent end.
    pub fn push_head(&mut self, slot: u32) {
        self.assert_unlinked(slot);
        self.prev[slot as usize] = NIL;
        self.next[slot as usize] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
        self.len += 1;
    }

    /// Unlinks `slot` from wherever it is.
    pub fn unlink(&mut self, slot: u32) {
        let p = self.prev[slot as usize];
        let n = self.next[slot as usize];
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            debug_assert_eq!(self.head, slot, "unlinking a slot that is not linked");
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            debug_assert_eq!(self.tail, slot, "unlinking a slot that is not linked");
            self.tail = p;
        }
        self.prev[slot as usize] = NIL;
        self.next[slot as usize] = NIL;
        self.len -= 1;
    }

    /// Moves `slot` to the most-recent end (it must be linked).
    pub fn touch(&mut self, slot: u32) {
        if self.head == slot {
            return;
        }
        self.unlink(slot);
        self.push_head(slot);
    }

    /// Iterates slots from least-recent to most-recent.
    pub fn iter_from_tail(&self) -> RecencyIter<'_> {
        RecencyIter {
            list: self,
            cur: self.tail,
        }
    }

    /// The slot one step more recent than `slot`, if any.
    pub fn more_recent(&self, slot: u32) -> Option<u32> {
        let p = self.prev[slot as usize];
        (p != NIL).then_some(p)
    }
}

/// Iterator from the least-recent end towards the most-recent.
pub struct RecencyIter<'a> {
    list: &'a RecencyList,
    cur: u32,
}

impl Iterator for RecencyIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.cur == NIL {
            return None;
        }
        let out = self.cur;
        self.cur = self.list.prev[self.cur as usize];
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_order_is_recency_order() {
        let mut l = RecencyList::new(8);
        l.push_head(0);
        l.push_head(1);
        l.push_head(2);
        assert_eq!(l.tail(), Some(0));
        assert_eq!(l.head(), Some(2));
        assert_eq!(l.iter_from_tail().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn touch_moves_to_head() {
        let mut l = RecencyList::new(8);
        for s in 0..4 {
            l.push_head(s);
        }
        l.touch(0);
        assert_eq!(l.tail(), Some(1));
        assert_eq!(l.head(), Some(0));
        assert_eq!(l.iter_from_tail().collect::<Vec<_>>(), vec![1, 2, 3, 0]);
        l.touch(0);
        assert_eq!(l.len(), 4);
    }

    #[test]
    fn unlink_middle_head_tail() {
        let mut l = RecencyList::new(8);
        for s in 0..5 {
            l.push_head(s);
        }
        l.unlink(2);
        l.unlink(0);
        l.unlink(4);
        assert_eq!(l.iter_from_tail().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(l.len(), 2);
        l.push_head(0);
        assert_eq!(l.head(), Some(0));
    }

    #[test]
    fn single_element_lifecycle() {
        let mut l = RecencyList::new(2);
        assert!(l.is_empty());
        assert_eq!(l.tail(), None);
        l.push_head(1);
        assert_eq!(l.tail(), Some(1));
        assert_eq!(l.head(), Some(1));
        l.unlink(1);
        assert!(l.is_empty());
    }

    #[test]
    fn more_recent_walks_towards_head() {
        let mut l = RecencyList::new(4);
        l.push_head(3);
        l.push_head(1);
        l.push_head(2);
        assert_eq!(l.more_recent(3), Some(1));
        assert_eq!(l.more_recent(1), Some(2));
        assert_eq!(l.more_recent(2), None);
    }
}
