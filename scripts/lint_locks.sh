#!/usr/bin/env bash
# Lock-site lint for the storage crates.
#
# Every lock in the storage crates must go through the tracked wrappers
# (obsv::TrackedMutex / TrackedRwLock / TrackedCondvar) so the lock site
# is attributable in the contention profiler — a bare parking_lot or
# std::sync lock is invisible to `obsv_dump --contention` and the bench
# contention matrix. This check rejects new bare lock uses outside a
# small allowlist of per-object leaf locks where a static site id would
# conflate thousands of independent objects (per-inode state) or which
# are test-only control planes (fault injection).
set -euo pipefail
cd "$(dirname "$0")/.."

CRATES=(nvmm blockdev fskit pmfs extfs hinfs)
ALLOW=(
    "crates/nvmm/src/fault.rs"  # fault-injection control plane (test-only)
    "crates/pmfs/src/inode.rs"  # per-inode state/opens: per-object, not a site
    "crates/pmfs/src/mmap.rs"   # per-mapping dirty-line list
    "crates/extfs/src/inode.rs" # per-inode state/opens
)

allowed() {
    local f="$1"
    for a in "${ALLOW[@]}"; do
        [[ "$f" == "$a" ]] && return 0
    done
    return 1
}

PATTERN='use parking_lot|parking_lot::(Mutex|RwLock|Condvar)|use std::sync::(Mutex|RwLock|Condvar)|std::sync::(Mutex|RwLock|Condvar)::new'

fail=0
for crate in "${CRATES[@]}"; do
    dir="crates/$crate/src"
    [[ -d "$dir" ]] || continue
    while IFS=: read -r file line text; do
        [[ -z "$file" ]] && continue
        if ! allowed "$file"; then
            echo "lint_locks: $file:$line: bare lock use: ${text#"${text%%[![:space:]]*}"}"
            fail=1
        fi
    done < <(grep -rn --include='*.rs' -E "$PATTERN" "$dir" || true)
done

# ---- shard-array rule --------------------------------------------------
# A Vec/array of tracked locks fans one logical lock out into per-shard
# objects. Each such array must be registered here together with the
# shard-indexed Site family it constructs (Site::<family>(i)), so every
# shard reports under its own site id in the contention profiler. An
# unregistered array — or one built from a single static Site variant —
# would pass the bare-lock check above while folding all shards into one
# contention row, which is exactly the attribution loss the tracked
# wrappers exist to prevent.
SHARD_ARRAYS=(
    "crates/hinfs/src/fs.rs=hinfs_shard"        # DRAM pool / Block Index / LRW shards
    "crates/pmfs/src/alloc.rs=pmfs_alloc_shard" # free-list allocator shards
    "crates/pmfs/src/fs.rs=pmfs_ns_shard"       # namespace lock shards
    "crates/pmfs/src/inode.rs=pmfs_inode_shard" # inode-map shards
)

ARRAY_PATTERN='(Vec<|\[)Tracked(Mutex|RwLock)'
for crate in "${CRATES[@]}"; do
    dir="crates/$crate/src"
    [[ -d "$dir" ]] || continue
    while IFS=: read -r file line text; do
        [[ -z "$file" ]] && continue
        family=""
        for s in "${SHARD_ARRAYS[@]}"; do
            [[ "$file" == "${s%%=*}" ]] && family="${s##*=}"
        done
        if [[ -z "$family" ]]; then
            echo "lint_locks: $file:$line: unregistered shard array of tracked locks: ${text#"${text%%[![:space:]]*}"}"
            echo "lint_locks:   register it in SHARD_ARRAYS (in $0) with its Site::<family>(i) constructor"
            fail=1
        elif ! grep -qE "Site::${family}\(" "$file"; then
            echo "lint_locks: $file: shard array must construct each lock with Site::${family}(i) (one site per shard)"
            fail=1
        fi
    done < <(grep -rn --include='*.rs' -E "$ARRAY_PATTERN" "$dir" || true)
done

if [[ "$fail" -ne 0 ]]; then
    echo "lint_locks: storage-crate locks must use obsv::TrackedMutex/TrackedRwLock/TrackedCondvar" >&2
    echo "lint_locks: (or add a per-object leaf lock to the allowlist in $0)" >&2
    exit 1
fi
echo "lint_locks: OK (no bare lock uses outside the allowlist)"
