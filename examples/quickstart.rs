//! Quickstart: mount HiNFS on an emulated NVMM device, do file I/O, and
//! watch the write buffer at work.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hinfs_suite::prelude::*;

fn main() {
    // An emulated machine: NVMM writes cost 200 ns per cacheline behind a
    // 1 GB/s bandwidth cap; reads run at DRAM speed. Virtual time makes
    // the run fully deterministic.
    let env = SimEnv::new_virtual(CostModel::default());
    let dev = NvmmDevice::new(env.clone(), 256 << 20);

    // Format and mount HiNFS with a 16 MiB DRAM write buffer.
    let fs = Hinfs::mkfs(
        dev.clone(),
        PmfsOptions::default(),
        HinfsConfig::default().with_buffer_bytes(16 << 20),
    )
    .expect("mkfs");

    println!(
        "mounted hinfs on a {} MiB emulated NVMM device",
        dev.len() >> 20
    );

    // Lazy-persistent writes land in DRAM: no NVMM write traffic yet.
    fs.mkdir("/projects").expect("mkdir");
    let fd = fs
        .open("/projects/notes.txt", OpenFlags::RDWR | OpenFlags::CREATE)
        .expect("open");
    let before = dev.stats().snapshot();
    let t0 = env.now();
    fs.write(fd, 0, &vec![b'x'; 1 << 20]).expect("write");
    let write_ns = env.now() - t0;
    let mid = dev.stats().snapshot().since(&before);
    println!(
        "wrote 1 MiB in {} us of simulated time; NVMM saw only {} B (metadata journal)",
        write_ns / 1000,
        mid.nvmm_bytes_written
    );

    // Read-your-writes is served straight from the buffer.
    let mut buf = vec![0u8; 64];
    fs.read(fd, 0, &mut buf).expect("read");
    assert!(buf.iter().all(|&b| b == b'x'));

    // fsync makes it durable: the dirty cachelines flush to NVMM.
    let t0 = env.now();
    fs.fsync(fd).expect("fsync");
    let fsync_ns = env.now() - t0;
    let after = dev.stats().snapshot().since(&before);
    println!(
        "fsync took {} us and moved {} KiB to NVMM",
        fsync_ns / 1000,
        after.nvmm_bytes_written >> 10
    );

    let snap = fs.stats().snapshot();
    println!(
        "buffer: {} lazy writes, {} hits / {} misses, {} lines written back",
        snap.lazy_writes, snap.buffer_hits, snap.buffer_misses, snap.writeback_lines
    );

    fs.close(fd).expect("close");
    fs.unmount().expect("unmount");

    // The data survives a remount — through plain PMFS, even: HiNFS shares
    // its persistent format.
    let pm = Pmfs::mount(dev).expect("remount");
    let st = pm.stat("/projects/notes.txt").expect("stat");
    println!("after remount via pmfs: size = {} bytes", st.size);
    assert_eq!(st.size, 1 << 20);
    pm.unmount().expect("unmount");
    println!("ok");
}
