//! The durability oracle: what a file system **must**, **may**, and **must
//! not** show after a crash.
//!
//! The oracle shadows a replayed [`Script`](crate::script::Script) with a
//! model of every file's durability state, updated from each operation's
//! *observed* outcome:
//!
//! - **Acknowledged, synchronized** (`fsync`/`sync` returned `Ok`, or any
//!   acknowledged data op on an eager system like PMFS): the data **must**
//!   survive — recovered size is at least the synced size (`floor`) and
//!   every recovered byte below it equals the synced image or a later
//!   pending overwrite.
//! - **Acknowledged, lazy** (buffered writes not yet synced): the data
//!   **may** survive — each recovered byte must be zero (a hole), the last
//!   synced value, or the fill of some write covering it; recovered size
//!   never exceeds the largest size ever reached (`ceil`).
//! - **Namespace** operations must be all-or-nothing: on the eagerly
//!   journaled systems (PMFS, HiNFS) an acknowledged create/unlink/rename
//!   is durable on return (`MustExist`/`MustNotExist`); on EXT4 it is
//!   `MayExist` until a jbd commit point (fsync/sync) promotes it.
//! - An operation **in flight** at the crash, or one that failed with a
//!   clean error under fault injection, downgrades the affected state to
//!   its `may` form (and taints the file so later syncs stop asserting an
//!   exact image) — it never relaxes what was already guaranteed durable.
//!
//! [`Oracle::check`] walks the remounted file system and reports every
//! violation as a human-readable string; an empty list means the crash
//! schedule entry passed.

use std::collections::BTreeMap;

use fskit::{FileSystem, FileType, FsError, OpenFlags, Stat};

use crate::script::{dir_path, file_path, FsKind, Op, MAX_DIRS, MAX_FILES};

/// Durability class of a name after the operations so far.
// The shared `Exist` suffix is the domain language (must / must-not /
// may), not a naming accident.
#[allow(clippy::enum_variant_names)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NsState {
    /// The name must resolve after recovery.
    MustExist,
    /// The name must not resolve after recovery.
    MustNotExist,
    /// Either outcome is acceptable (operation not yet durable, or in
    /// flight at the crash).
    MayExist,
}

/// A write whose bytes may (but need not) have reached NVMM.
#[derive(Debug, Clone, Copy)]
struct WriteRec {
    off: u64,
    len: u64,
    fill: u8,
}

impl WriteRec {
    fn covers(&self, o: u64) -> bool {
        o >= self.off && o < self.off + self.len
    }
}

/// Durability model of one file slot.
#[derive(Debug, Clone)]
struct FileModel {
    /// Volatile truth: does the file exist right now (pre-crash)?
    live: bool,
    /// Volatile size right now.
    vsize: u64,
    /// Volatile content right now (trustworthy only while untainted).
    vimage: Vec<u8>,
    /// Durability of the name.
    ns: NsState,
    /// Last image known durable (`None`: never synchronized).
    synced: Option<Vec<u8>>,
    /// Recovered size must be at least this (when the file must exist).
    floor: u64,
    /// Recovered size must be at most this.
    ceil: u64,
    /// Writes since the last sync point: each byte they cover may hold
    /// their fill after recovery.
    pending: Vec<WriteRec>,
    /// A clean error touched this file: its volatile image is no longer
    /// exact, so syncs stop rebasing `synced` (bounds stay sound).
    tainted: bool,
    /// Alternative durable states (pre-rename/pre-recreate incarnations on
    /// lazily journaled systems). A `MayExist` file passes if any of the
    /// primary or alternative models accepts it.
    alts: Vec<FileModel>,
}

impl Default for FileModel {
    fn default() -> Self {
        FileModel {
            live: false,
            vsize: 0,
            vimage: Vec::new(),
            ns: NsState::MustNotExist,
            synced: None,
            floor: 0,
            ceil: 0,
            pending: Vec::new(),
            tainted: false,
            alts: Vec::new(),
        }
    }
}

impl FileModel {
    /// Is `b` an acceptable recovered value for byte `o`?
    fn byte_ok(&self, o: u64, b: u8) -> bool {
        if b == 0 {
            return true; // hole, or never-persisted region
        }
        if let Some(s) = &self.synced {
            if (o as usize) < s.len() && s[o as usize] == b {
                return true;
            }
        }
        self.pending.iter().any(|w| w.covers(o) && w.fill == b)
    }

    /// Marks the current volatile state durable (successful sync point).
    fn sync_point(&mut self) {
        self.floor = self.vsize;
        self.ceil = self.ceil.max(self.vsize);
        if !self.tainted {
            self.synced = Some(self.vimage.clone());
            self.pending.clear();
        }
    }

    /// Applies an acknowledged write of `len` bytes of `fill` at `off`.
    fn apply_write(&mut self, off: u64, len: u64, fill: u8, eager: bool) {
        let end = off + len;
        if end > self.vsize {
            self.vimage.resize(end as usize, 0);
            self.vsize = end;
        }
        self.vimage[off as usize..end as usize].fill(fill);
        self.pending.push(WriteRec { off, len, fill });
        self.ceil = self.ceil.max(self.vsize);
        if eager {
            self.sync_point();
        }
    }
}

/// Durability model of one directory slot.
#[derive(Debug, Clone, Copy)]
struct DirModel {
    live: bool,
    ns: NsState,
}

impl Default for DirModel {
    fn default() -> Self {
        DirModel {
            live: false,
            ns: NsState::MustNotExist,
        }
    }
}

/// Result of one post-recovery check.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Individual assertions evaluated.
    pub checks: u64,
    /// Human-readable violations (empty = pass).
    pub violations: Vec<String>,
}

/// The per-run durability oracle. Feed it every operation outcome with
/// [`Oracle::apply`] / [`Oracle::apply_crashed`], then [`Oracle::check`]
/// the remounted file system.
#[derive(Debug)]
pub struct Oracle {
    kind: FsKind,
    files: BTreeMap<u8, FileModel>,
    dirs: BTreeMap<u8, DirModel>,
}

impl Oracle {
    /// A fresh oracle for one run against `kind`.
    pub fn new(kind: FsKind) -> Oracle {
        Oracle {
            kind,
            files: BTreeMap::new(),
            dirs: BTreeMap::new(),
        }
    }

    /// The file-system kind this oracle models.
    pub fn kind(&self) -> FsKind {
        self.kind
    }

    /// Whether `op` failing is the *expected* outcome of the current
    /// volatile state (operating on a missing file, re-creating a live
    /// directory) rather than an injected fault.
    fn expected_failure(&self, op: &Op) -> bool {
        let file_live = |id: &u8| self.files.get(id).is_some_and(|f| f.live);
        let dir_live = |id: &u8| self.dirs.get(id).is_some_and(|d| d.live);
        match op {
            Op::Create { .. } | Op::Sync | Op::Tick => false,
            Op::Write { file, .. }
            | Op::Append { file, .. }
            | Op::Fsync { file }
            | Op::Truncate { file, .. }
            | Op::Unlink { file } => !file_live(file),
            Op::Rename { from, to } => !file_live(from) || from == to,
            Op::Mkdir { dir } => dir_live(dir),
            Op::Rmdir { dir } => !dir_live(dir),
        }
    }

    /// Updates the model from one completed (non-crashed) operation.
    pub fn apply(&mut self, op: &Op, result: &Result<(), FsError>) {
        match result {
            Ok(()) => self.apply_ok(op),
            Err(_) if self.expected_failure(op) => {}
            Err(_) => self.apply_clean_error(op),
        }
    }

    fn apply_ok(&mut self, op: &Op) {
        let eager = self.kind.write_sync_on_ack();
        let ns_sync = self.kind.ns_sync();
        match *op {
            Op::Create { file } => {
                let m = self.files.entry(file).or_default();
                if !m.live {
                    let old = std::mem::take(m);
                    m.live = true;
                    if ns_sync {
                        // Durable empty file; prior incarnations are gone.
                        m.ns = NsState::MustExist;
                        m.synced = Some(Vec::new());
                    } else {
                        // Not yet committed: the crash may land on nothing,
                        // the new empty file, or (if the old unlink was
                        // also uncommitted) the previous incarnation.
                        m.ns = NsState::MayExist;
                        if old.ns != NsState::MustNotExist {
                            let mut prior = old;
                            let mut alts = std::mem::take(&mut prior.alts);
                            alts.push(prior);
                            m.alts = alts;
                        }
                    }
                }
            }
            Op::Write {
                file,
                off,
                len,
                fill,
            } => {
                let m = self.files.entry(file).or_default();
                m.apply_write(off, len as u64, fill, eager);
            }
            Op::Append { file, len, fill } => {
                let m = self.files.entry(file).or_default();
                m.apply_write(m.vsize, len as u64, fill, eager);
            }
            Op::Fsync { file } => {
                let m = self.files.entry(file).or_default();
                m.sync_point();
                // On the jbd systems the fsync commit also makes this
                // file's acknowledged namespace state durable.
                m.ns = NsState::MustExist;
                m.alts.clear();
            }
            Op::Truncate { file, size } => {
                let m = self.files.entry(file).or_default();
                m.vimage.resize(size as usize, 0);
                m.vsize = size;
                m.ceil = m.ceil.max(size);
                m.floor = m.floor.min(size);
                if eager {
                    m.sync_point();
                }
            }
            Op::Unlink { file } => {
                let m = self.files.entry(file).or_default();
                m.live = false;
                if ns_sync {
                    m.ns = NsState::MustNotExist;
                    m.alts.clear();
                } else {
                    m.ns = NsState::MayExist;
                }
            }
            Op::Rename { from, to } => {
                if from == to {
                    return;
                }
                let mut src = self.files.remove(&from).unwrap_or_default();
                let old_dst = self.files.remove(&to).unwrap_or_default();
                if ns_sync {
                    // Atomic durable replace: destination is the source
                    // file, the source name is gone, the old destination
                    // can never resurface.
                    src.ns = NsState::MustExist;
                    src.alts.clear();
                    self.files.insert(to, src);
                    self.files.insert(
                        from,
                        FileModel {
                            ns: NsState::MustNotExist,
                            ..FileModel::default()
                        },
                    );
                } else {
                    // Uncommitted: the destination may be the moved file
                    // or still the old one; the source name may linger.
                    let mut ghost = src.clone();
                    ghost.live = false;
                    ghost.ns = NsState::MayExist;
                    src.ns = NsState::MayExist;
                    if old_dst.ns != NsState::MustNotExist {
                        let mut prior = old_dst;
                        src.alts.append(&mut prior.alts);
                        src.alts.push(prior);
                    }
                    self.files.insert(to, src);
                    self.files.insert(from, ghost);
                }
            }
            Op::Mkdir { dir } => {
                let d = self.dirs.entry(dir).or_default();
                d.live = true;
                d.ns = if ns_sync {
                    NsState::MustExist
                } else {
                    NsState::MayExist
                };
            }
            Op::Rmdir { dir } => {
                let d = self.dirs.entry(dir).or_default();
                d.live = false;
                d.ns = if ns_sync {
                    NsState::MustNotExist
                } else {
                    NsState::MayExist
                };
            }
            Op::Sync => {
                // Everything acknowledged so far is now durable.
                for m in self.files.values_mut() {
                    if m.live {
                        m.sync_point();
                        m.ns = NsState::MustExist;
                    } else {
                        m.ns = NsState::MustNotExist;
                    }
                    m.alts.clear();
                }
                for d in self.dirs.values_mut() {
                    d.ns = if d.live {
                        NsState::MustExist
                    } else {
                        NsState::MustNotExist
                    };
                }
            }
            Op::Tick => {}
        }
    }

    /// A clean error on an operation expected to succeed (fault
    /// injection): data ops may have partially applied; the hardened
    /// namespace paths are all-or-nothing, so their model is untouched.
    fn apply_clean_error(&mut self, op: &Op) {
        match *op {
            Op::Write {
                file,
                off,
                len,
                fill,
            } => {
                let m = self.files.entry(file).or_default();
                m.pending.push(WriteRec {
                    off,
                    len: len as u64,
                    fill,
                });
                m.ceil = m.ceil.max(off + len as u64);
                m.tainted = true;
            }
            Op::Append { file, len, fill } => {
                let m = self.files.entry(file).or_default();
                m.pending.push(WriteRec {
                    off: m.vsize,
                    len: len as u64,
                    fill,
                });
                m.ceil = m.ceil.max(m.vsize + len as u64);
                m.tainted = true;
            }
            Op::Truncate { file, size } => {
                let m = self.files.entry(file).or_default();
                m.floor = m.floor.min(size);
                m.ceil = m.ceil.max(size);
                m.tainted = true;
            }
            // Fsync/sync failures flush nothing new that `pending` does
            // not already allow; hardened namespace ops roll back cleanly.
            _ => {}
        }
    }

    /// Updates the model for the operation that was in flight when the
    /// crash fired: any prefix of its effects may be durable.
    pub fn apply_crashed(&mut self, op: &Op) {
        if self.expected_failure(op) {
            return; // would have failed before touching anything durable
        }
        match *op {
            Op::Create { file } => {
                let m = self.files.entry(file).or_default();
                if !m.live {
                    m.ns = NsState::MayExist;
                }
            }
            Op::Write {
                file,
                off,
                len,
                fill,
            } => {
                let m = self.files.entry(file).or_default();
                m.pending.push(WriteRec {
                    off,
                    len: len as u64,
                    fill,
                });
                m.ceil = m.ceil.max(off + len as u64);
            }
            Op::Append { file, len, fill } => {
                let m = self.files.entry(file).or_default();
                m.pending.push(WriteRec {
                    off: m.vsize,
                    len: len as u64,
                    fill,
                });
                m.ceil = m.ceil.max(m.vsize + len as u64);
            }
            Op::Fsync { .. } | Op::Sync | Op::Tick => {}
            Op::Truncate { file, size } => {
                let m = self.files.entry(file).or_default();
                m.floor = m.floor.min(size);
                m.ceil = m.ceil.max(size);
            }
            Op::Unlink { file } => {
                let m = self.files.entry(file).or_default();
                m.ns = NsState::MayExist;
            }
            Op::Rename { from, to } => {
                // Both names become uncertain; the destination may hold
                // either file's content.
                let src_model = self.files.get(&from).cloned().unwrap_or_default();
                let dst = self.files.entry(to).or_default();
                dst.ns = NsState::MayExist;
                dst.alts.push(src_model);
                let src = self.files.entry(from).or_default();
                src.ns = NsState::MayExist;
            }
            Op::Mkdir { dir } | Op::Rmdir { dir } => {
                let d = self.dirs.entry(dir).or_default();
                d.ns = NsState::MayExist;
            }
        }
    }

    /// Checks the remounted file system against the model.
    pub fn check(&self, fs: &dyn FileSystem) -> CheckReport {
        let mut rep = CheckReport::default();
        self.check_root_listing(fs, &mut rep);
        for (&id, m) in &self.files {
            self.check_file(fs, id, m, &mut rep);
        }
        for (&id, d) in &self.dirs {
            self.check_dir(fs, id, d, &mut rep);
        }
        rep
    }

    /// Every root dirent must be a name the script could have created, and
    /// must be statable (no dangling entries).
    fn check_root_listing(&self, fs: &dyn FileSystem, rep: &mut CheckReport) {
        rep.checks += 1;
        let ents = match fs.readdir("/") {
            Ok(e) => e,
            Err(e) => {
                rep.violations.push(format!("readdir / failed: {e:?}"));
                return;
            }
        };
        for ent in ents {
            rep.checks += 1;
            let known = match (ent.name.strip_prefix('f'), ent.name.strip_prefix('d')) {
                (Some(n), _) => n.parse::<u8>().is_ok_and(|i| i < MAX_FILES),
                (_, Some(n)) => n.parse::<u8>().is_ok_and(|i| i < MAX_DIRS),
                _ => false,
            };
            if !known {
                rep.violations
                    .push(format!("unexpected root entry {:?}", ent.name));
                continue;
            }
            if let Err(e) = fs.stat(&format!("/{}", ent.name)) {
                rep.violations
                    .push(format!("dangling dirent {:?}: {e:?}", ent.name));
            }
        }
    }

    fn check_file(&self, fs: &dyn FileSystem, id: u8, m: &FileModel, rep: &mut CheckReport) {
        let path = file_path(id);
        rep.checks += 1;
        match m.ns {
            NsState::MustExist => match fs.stat(&path) {
                Err(e) => rep
                    .violations
                    .push(format!("{path}: must exist, stat failed: {e:?}")),
                Ok(st) if st.ftype != FileType::File => rep
                    .violations
                    .push(format!("{path}: expected a file, found {:?}", st.ftype)),
                Ok(st) => {
                    rep.checks += 1;
                    if let Err(v) = content_ok(fs, &path, st, m, true) {
                        rep.violations.push(v);
                    }
                }
            },
            NsState::MustNotExist => match fs.stat(&path) {
                Ok(_) => rep
                    .violations
                    .push(format!("{path}: must not exist, but stat succeeded")),
                Err(FsError::NotFound) => {}
                Err(e) => rep
                    .violations
                    .push(format!("{path}: expected NotFound, got {e:?}")),
            },
            NsState::MayExist => match fs.stat(&path) {
                Err(FsError::NotFound) => {}
                Err(e) => rep
                    .violations
                    .push(format!("{path}: expected file or NotFound, got {e:?}")),
                Ok(st) => {
                    rep.checks += 1;
                    if st.ftype != FileType::File {
                        rep.violations
                            .push(format!("{path}: expected a file, found {:?}", st.ftype));
                        return;
                    }
                    let primary = content_ok(fs, &path, st, m, false);
                    let ok = primary.is_ok()
                        || m.alts
                            .iter()
                            .any(|alt| content_ok(fs, &path, st, alt, false).is_ok());
                    if let (Err(v), false) = (primary, ok) {
                        rep.violations
                            .push(format!("{v} (no alternative state matches)"));
                    }
                }
            },
        }
    }

    fn check_dir(&self, fs: &dyn FileSystem, id: u8, d: &DirModel, rep: &mut CheckReport) {
        let path = dir_path(id);
        rep.checks += 1;
        match d.ns {
            NsState::MustExist => match fs.stat(&path) {
                Err(e) => rep
                    .violations
                    .push(format!("{path}: must exist, stat failed: {e:?}")),
                Ok(st) if st.ftype != FileType::Dir => rep
                    .violations
                    .push(format!("{path}: expected a dir, found {:?}", st.ftype)),
                Ok(_) => {
                    if let Err(e) = fs.readdir(&path) {
                        rep.violations
                            .push(format!("{path}: readdir failed: {e:?}"));
                    }
                }
            },
            NsState::MustNotExist => match fs.stat(&path) {
                Ok(_) => rep
                    .violations
                    .push(format!("{path}: must not exist, but stat succeeded")),
                Err(FsError::NotFound) => {}
                Err(e) => rep
                    .violations
                    .push(format!("{path}: expected NotFound, got {e:?}")),
            },
            NsState::MayExist => match fs.stat(&path) {
                Ok(st) if st.ftype != FileType::Dir => rep
                    .violations
                    .push(format!("{path}: expected a dir, found {:?}", st.ftype)),
                _ => {}
            },
        }
    }
}

/// Validates a recovered file's size and bytes against one model.
fn content_ok(
    fs: &dyn FileSystem,
    path: &str,
    st: Stat,
    m: &FileModel,
    must: bool,
) -> Result<(), String> {
    if must && st.size < m.floor {
        return Err(format!(
            "{path}: recovered size {} below synced floor {}",
            st.size, m.floor
        ));
    }
    if st.size > m.ceil {
        return Err(format!(
            "{path}: recovered size {} above ceiling {}",
            st.size, m.ceil
        ));
    }
    let fd = fs
        .open(path, OpenFlags::READ)
        .map_err(|e| format!("{path}: open for check failed: {e:?}"))?;
    let mut buf = vec![0u8; st.size as usize];
    let n = fs
        .read(fd, 0, &mut buf)
        .map_err(|e| format!("{path}: read for check failed: {e:?}"))?;
    let _ = fs.close(fd);
    if n as u64 != st.size {
        return Err(format!("{path}: short read {} of stat size {}", n, st.size));
    }
    for (o, &b) in buf.iter().enumerate() {
        if !m.byte_ok(o as u64, b) {
            return Err(format!(
                "{path}: byte {o} = {b:#04x} matches neither the synced \
                 image, any pending write, nor a hole"
            ));
        }
    }
    Ok(())
}
