//! The cost model: every latency constant of the simulated machine.
//!
//! Defaults correspond to Table 2 of the paper (Intel Xeon E5-2620 with an
//! emulated NVMM whose write latency is 200 ns and whose sustained write
//! bandwidth is 1 GB/s, roughly 1/8 of the host DRAM bandwidth). The two
//! software-overhead constants (`syscall_ns` and `block_layer_ns`) are
//! calibration constants chosen so the Fig 1 time-breakdown proportions
//! match the paper; see `DESIGN.md`.

use crate::CACHELINE;

/// Latency and bandwidth constants of the simulated machine.
///
/// All file systems in the workspace charge their work through one shared
/// `CostModel`, so a parameter sweep (e.g. the Fig 11 NVMM write-latency
/// sweep) only has to change this struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Extra delay per persisted cacheline, in nanoseconds (paper: 200 ns,
    /// swept 50–800 ns in Fig 11). Applied after each `clflush` and for
    /// every non-temporal store line, exactly like the paper's emulator.
    pub nvmm_write_latency_ns: u64,
    /// Sustained NVMM write bandwidth in bytes per second (paper: 1 GB/s).
    /// Enforced by capping concurrent writer slots; see
    /// [`CostModel::writer_slots`].
    pub nvmm_write_bandwidth: u64,
    /// Extra latency per NVMM read, in nanoseconds. The paper assumes NVMM
    /// reads run at DRAM speed, so this defaults to zero.
    pub nvmm_read_extra_ns: u64,
    /// DRAM copy cost in nanoseconds per KiB moved (both directions).
    /// Default 128 ns/KiB ≈ 8 GB/s, 8× the default NVMM write bandwidth,
    /// matching the paper's "about 1/8 of the available DRAM bandwidth".
    pub dram_ns_per_kib: u64,
    /// Fixed software cost per file system call: user/kernel mode switch,
    /// fd lookup, file abstraction. Appears as "Others" in the Fig 1
    /// breakdown. Calibrated to 600 ns.
    pub syscall_ns: u64,
    /// Generic block layer + request queue + driver cost per 4 KiB block
    /// request (bio allocation, request queue, brd entry, completion). Only
    /// the NVMMBD-based file systems pay it. Calibrated to 6000 ns, in the
    /// range reported for the full 3.11-era single-queue block I/O path.
    pub block_layer_ns: u64,
    /// Page cache software cost per 4 KiB page access (radix-tree lookup,
    /// page locking, LRU bookkeeping). Paid by the cache-based file systems
    /// on hits and misses alike. Calibrated to 400 ns.
    pub page_cache_ns: u64,
    /// Cost of a store fence (`mfence`/`sfence`), in nanoseconds.
    pub fence_ns: u64,
    /// DRAM write latency used by the Buffer Benefit Model's inequality
    /// (`L_dram` in the paper), in nanoseconds per cacheline. 40 ns is a
    /// typical DDR random-write latency; it puts the lazy/eager boundary at
    /// `N_cf/N_cw < (L_nvmm − L_dram)/L_nvmm` (0.8 at the 200 ns default).
    pub dram_write_latency_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            nvmm_write_latency_ns: 200,
            nvmm_write_bandwidth: 1 << 30,
            nvmm_read_extra_ns: 0,
            dram_ns_per_kib: 128,
            syscall_ns: 600,
            block_layer_ns: 6000,
            page_cache_ns: 400,
            fence_ns: 15,
            dram_write_latency_ns: 40,
        }
    }
}

impl CostModel {
    /// Returns a cost model with a different NVMM write latency, keeping
    /// everything else at its current value. Convenience for the Fig 11
    /// latency sweep.
    pub fn with_write_latency(mut self, ns: u64) -> Self {
        self.nvmm_write_latency_ns = ns;
        self
    }

    /// Returns a cost model with a different NVMM write bandwidth.
    pub fn with_write_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.nvmm_write_bandwidth = bytes_per_sec;
        self
    }

    /// The maximum number of concurrent NVMM writers, `N_w`.
    ///
    /// The paper (§5.1) emulates bandwidth by queueing writer threads beyond
    /// `N_w = B_NVMM / (1/L_NVMM)` where the unit of work is one cacheline:
    /// a single thread persists one 64 B line per `L_NVMM`, so its
    /// throughput is `CACHELINE / L_NVMM` bytes/s and
    /// `N_w = B_NVMM · L_NVMM / CACHELINE`, rounded up and at least 1.
    ///
    /// # Examples
    ///
    /// ```
    /// // 1 GB/s at 200 ns/line: each writer sustains 320 MB/s, so 4 slots.
    /// let m = nvmm::CostModel::default();
    /// assert_eq!(m.writer_slots(), 4);
    /// ```
    pub fn writer_slots(&self) -> usize {
        let lat = self.nvmm_write_latency_ns.max(1);
        // Bytes/s a single writer can sustain.
        let per_writer = (CACHELINE as u128 * 1_000_000_000) / lat as u128;
        if per_writer == 0 {
            return 1;
        }
        let slots = (self.nvmm_write_bandwidth as u128).div_ceil(per_writer);
        slots.max(1) as usize
    }

    /// Cost of copying `bytes` through DRAM (either direction), in ns.
    pub fn dram_copy_ns(&self, bytes: usize) -> u64 {
        (bytes as u64 * self.dram_ns_per_kib) / 1024
    }

    /// Cost of persisting `lines` cachelines to NVMM, in ns, excluding any
    /// queueing delay imposed by the bandwidth gate.
    pub fn nvmm_persist_ns(&self, lines: usize) -> u64 {
        lines as u64 * self.nvmm_write_latency_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let m = CostModel::default();
        assert_eq!(m.nvmm_write_latency_ns, 200);
        assert_eq!(m.nvmm_write_bandwidth, 1 << 30);
        assert_eq!(m.nvmm_read_extra_ns, 0);
    }

    #[test]
    fn writer_slots_scale_with_latency() {
        // Longer latency -> lower per-writer throughput -> more slots to
        // reach the same bandwidth.
        let slow = CostModel::default().with_write_latency(800);
        let fast = CostModel::default().with_write_latency(50);
        assert!(slow.writer_slots() > CostModel::default().writer_slots());
        assert!(fast.writer_slots() <= CostModel::default().writer_slots());
        assert!(fast.writer_slots() >= 1);
    }

    #[test]
    fn writer_slots_never_zero() {
        let tiny = CostModel::default().with_write_bandwidth(1);
        assert_eq!(tiny.writer_slots(), 1);
    }

    #[test]
    fn dram_copy_cost_linear() {
        let m = CostModel::default();
        assert_eq!(m.dram_copy_ns(1024), 128);
        assert_eq!(m.dram_copy_ns(4096), 512);
        assert_eq!(m.dram_copy_ns(0), 0);
    }

    #[test]
    fn persist_cost_linear_in_lines() {
        let m = CostModel::default();
        assert_eq!(m.nvmm_persist_ns(1), 200);
        assert_eq!(m.nvmm_persist_ns(64), 12_800);
    }
}
