//! NVMM device emulation for the HiNFS reproduction.
//!
//! This crate is the substrate every file system in the workspace is built
//! on. It models the environment of the paper's evaluation (EuroSys 2016,
//! §5.1):
//!
//! - A byte-addressable **NVMM device** backed by host DRAM, where every
//!   persisted cacheline pays a configurable extra write latency (200 ns by
//!   default) and the sustained write bandwidth is capped (1 GB/s by
//!   default) by limiting the number of concurrent writer slots, exactly as
//!   the paper's `N_w = B_NVMM / (cacheline / L_NVMM)` model prescribes.
//! - Reads run at DRAM speed (the paper assumes symmetric read latency).
//! - A **volatile store buffer** stands in for the CPU cache: stores issued
//!   with [`NvmmDevice::write_cached`] are not durable until an explicit
//!   [`NvmmDevice::clflush`], while [`NvmmDevice::write_persist`] models the
//!   non-temporal (`*_nocache`) copy path used by PMFS. A crash-simulation
//!   API reverts the device to its persistent image so recovery logic can be
//!   tested for real.
//!
//! Two [`TimeMode`]s are supported:
//!
//! - [`TimeMode::Virtual`] advances a per-thread logical clock. It is
//!   deterministic and independent of the host CPU, which makes every
//!   experiment reproducible on a single-core container.
//! - [`TimeMode::Spin`] realizes each model cost as a calibrated busy-wait,
//!   which is the same technique the paper's emulator used (an RDTSCP spin
//!   loop after each `clflush`).
//!
//! Time spent is attributed to a [`Cat`] category in a thread-local
//! [`Ledger`], which is how the breakdown figures (Fig 1 and Fig 12) are
//! regenerated.

pub mod cost;
pub mod crash;
pub mod device;
pub mod fault;
pub mod gate;
pub mod ledger;
pub mod stats;
pub mod time;

pub use cost::CostModel;
pub use device::NvmmDevice;
pub use fault::{BoundaryKind, BoundaryRec, CrashSignal, FaultHook, FaultPlan, InjectedFault};
pub use ledger::{Cat, Ledger};
pub use stats::DeviceStats;
pub use time::{SimEnv, TimeMode};

/// Size of a processor cacheline in bytes; the granularity of persistence.
pub const CACHELINE: usize = 64;

/// Size of a file system block in bytes (the paper's default).
pub const BLOCK_SIZE: usize = 4096;

/// Number of cachelines in one block.
pub const LINES_PER_BLOCK: usize = BLOCK_SIZE / CACHELINE;

/// Returns the number of cachelines touched by the byte range `[off, off + len)`.
///
/// Zero-length ranges touch zero lines.
///
/// # Examples
///
/// ```
/// // A write of 112 bytes starting at byte 0 touches two cachelines.
/// assert_eq!(nvmm::lines_touched(0, 112), 2);
/// // An unaligned 1-byte write still dirties a whole line.
/// assert_eq!(nvmm::lines_touched(63, 1), 1);
/// assert_eq!(nvmm::lines_touched(63, 2), 2);
/// assert_eq!(nvmm::lines_touched(0, 0), 0);
/// ```
pub fn lines_touched(off: u64, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let first = off / CACHELINE as u64;
    let last = (off + len as u64 - 1) / CACHELINE as u64;
    (last - first + 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_touched_aligned() {
        assert_eq!(lines_touched(0, 64), 1);
        assert_eq!(lines_touched(0, 4096), 64);
        assert_eq!(lines_touched(64, 64), 1);
    }

    #[test]
    fn lines_touched_unaligned() {
        assert_eq!(lines_touched(1, 64), 2);
        assert_eq!(lines_touched(60, 8), 2);
        assert_eq!(lines_touched(127, 1), 1);
        assert_eq!(lines_touched(128, 1), 1);
    }

    #[test]
    fn block_constants_consistent() {
        assert_eq!(LINES_PER_BLOCK * CACHELINE, BLOCK_SIZE);
    }
}
