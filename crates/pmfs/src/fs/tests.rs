use std::sync::Arc;

use fskit::{FileSystem, FileType, FsError, OpenFlags};
use nvmm::{Cat, CostModel, NvmmDevice, SimEnv, BLOCK_SIZE};

use crate::fs::{Pmfs, PmfsOptions};

fn small_opts() -> PmfsOptions {
    PmfsOptions {
        journal_blocks: 64,
        inode_count: 512,
    }
}

fn fresh() -> (Arc<NvmmDevice>, Arc<Pmfs>) {
    let env = SimEnv::new_virtual(CostModel::default());
    let dev = NvmmDevice::new_tracked(env, 16384 * BLOCK_SIZE);
    let fs = Pmfs::mkfs(dev.clone(), small_opts()).unwrap();
    (dev, fs)
}

fn rw_create() -> OpenFlags {
    OpenFlags::RDWR | OpenFlags::CREATE
}

#[test]
fn create_write_read_roundtrip() {
    let (_d, fs) = fresh();
    let fd = fs.open("/hello.txt", rw_create()).unwrap();
    let data: Vec<u8> = (0..20_000u32).map(|i| (i % 256) as u8).collect();
    assert_eq!(fs.write(fd, 0, &data).unwrap(), data.len());
    let mut buf = vec![0u8; data.len()];
    assert_eq!(fs.read(fd, 0, &mut buf).unwrap(), data.len());
    assert_eq!(buf, data);
    fs.close(fd).unwrap();
    // Re-open and read again.
    let fd = fs.open("/hello.txt", OpenFlags::READ).unwrap();
    let mut buf2 = vec![0u8; data.len()];
    fs.read(fd, 0, &mut buf2).unwrap();
    assert_eq!(buf2, data);
    fs.close(fd).unwrap();
}

#[test]
fn open_flags_semantics() {
    let (_d, fs) = fresh();
    assert_eq!(fs.open("/nope", OpenFlags::READ), Err(FsError::NotFound));
    let fd = fs.open("/f", rw_create()).unwrap();
    fs.write(fd, 0, b"0123456789").unwrap();
    fs.close(fd).unwrap();
    assert_eq!(
        fs.open("/f", rw_create() | OpenFlags::EXCL),
        Err(FsError::AlreadyExists)
    );
    // O_TRUNC clears content.
    let fd = fs.open("/f", OpenFlags::RDWR | OpenFlags::TRUNC).unwrap();
    assert_eq!(fs.fstat(fd).unwrap().size, 0);
    fs.close(fd).unwrap();
    // Read-only descriptor cannot write.
    let fd = fs.open("/f", OpenFlags::READ).unwrap();
    assert_eq!(fs.write(fd, 0, b"x"), Err(FsError::BadFd));
    fs.close(fd).unwrap();
}

#[test]
fn append_mode_appends() {
    let (_d, fs) = fresh();
    let fd = fs.open("/log", rw_create() | OpenFlags::APPEND).unwrap();
    assert_eq!(fs.append(fd, b"one").unwrap(), 0);
    assert_eq!(fs.append(fd, b"two").unwrap(), 3);
    // write() on an APPEND descriptor appends regardless of offset.
    fs.write(fd, 0, b"three").unwrap();
    let mut buf = [0u8; 11];
    fs.read(fd, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"onetwothree");
    fs.close(fd).unwrap();
}

#[test]
fn directories_nest() {
    let (_d, fs) = fresh();
    fs.mkdir("/a").unwrap();
    fs.mkdir("/a/b").unwrap();
    fs.mkdir("/a/b/c").unwrap();
    let fd = fs.open("/a/b/c/file", rw_create()).unwrap();
    fs.write(fd, 0, b"deep").unwrap();
    fs.close(fd).unwrap();
    assert_eq!(fs.stat("/a/b/c/file").unwrap().size, 4);
    assert_eq!(fs.mkdir("/a"), Err(FsError::AlreadyExists));
    assert_eq!(fs.mkdir("/x/y"), Err(FsError::NotFound));
    let names: Vec<String> = fs
        .readdir("/a/b")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert_eq!(names, vec!["c"]);
}

#[test]
fn unlink_and_rmdir() {
    let (_d, fs) = fresh();
    fs.mkdir("/d").unwrap();
    let fd = fs.open("/d/f", rw_create()).unwrap();
    fs.write(fd, 0, &[1u8; 10_000]).unwrap();
    fs.close(fd).unwrap();
    let free_before = fs.free_blocks();
    assert_eq!(fs.rmdir("/d"), Err(FsError::DirectoryNotEmpty));
    fs.unlink("/d/f").unwrap();
    assert!(fs.free_blocks() > free_before, "blocks freed on unlink");
    assert_eq!(fs.stat("/d/f"), Err(FsError::NotFound));
    fs.rmdir("/d").unwrap();
    assert_eq!(fs.stat("/d"), Err(FsError::NotFound));
    assert_eq!(fs.unlink("/d/f"), Err(FsError::NotFound));
}

#[test]
fn unlinked_open_file_survives_until_close() {
    let (_d, fs) = fresh();
    let fd = fs.open("/tmpfile", rw_create()).unwrap();
    fs.write(fd, 0, b"still here").unwrap();
    fs.unlink("/tmpfile").unwrap();
    assert_eq!(fs.stat("/tmpfile"), Err(FsError::NotFound));
    let mut buf = [0u8; 10];
    assert_eq!(fs.read(fd, 0, &mut buf).unwrap(), 10);
    assert_eq!(&buf, b"still here");
    let free_before = fs.free_blocks();
    fs.close(fd).unwrap();
    assert!(fs.free_blocks() > free_before, "freed at last close");
}

#[test]
fn rename_moves_and_replaces() {
    let (_d, fs) = fresh();
    fs.mkdir("/src").unwrap();
    fs.mkdir("/dst").unwrap();
    let fd = fs.open("/src/a", rw_create()).unwrap();
    fs.write(fd, 0, b"payload").unwrap();
    fs.close(fd).unwrap();
    fs.rename("/src/a", "/dst/b").unwrap();
    assert_eq!(fs.stat("/src/a"), Err(FsError::NotFound));
    assert_eq!(fs.stat("/dst/b").unwrap().size, 7);
    // Replace an existing destination.
    let fd = fs.open("/dst/victim", rw_create()).unwrap();
    fs.write(fd, 0, b"old").unwrap();
    fs.close(fd).unwrap();
    fs.rename("/dst/b", "/dst/victim").unwrap();
    assert_eq!(fs.stat("/dst/victim").unwrap().size, 7);
    assert_eq!(fs.stat("/dst/b"), Err(FsError::NotFound));
    // Same-directory rename.
    fs.rename("/dst/victim", "/dst/final").unwrap();
    assert_eq!(fs.stat("/dst/final").unwrap().size, 7);
}

#[test]
fn stat_reports_metadata() {
    let (_d, fs) = fresh();
    let fd = fs.open("/s", rw_create()).unwrap();
    fs.write(fd, 0, &[0u8; 5000]).unwrap();
    fs.close(fd).unwrap();
    let st = fs.stat("/s").unwrap();
    assert_eq!(st.ftype, FileType::File);
    assert_eq!(st.size, 5000);
    assert_eq!(st.blocks, 2);
    assert_eq!(st.nlink, 1);
    let root = fs.stat("/").unwrap();
    assert_eq!(root.ftype, FileType::Dir);
}

#[test]
fn truncate_via_fd() {
    let (_d, fs) = fresh();
    let fd = fs.open("/t", rw_create()).unwrap();
    fs.write(fd, 0, &[7u8; 10_000]).unwrap();
    fs.truncate(fd, 100).unwrap();
    assert_eq!(fs.fstat(fd).unwrap().size, 100);
    fs.truncate(fd, 8000).unwrap();
    let mut buf = vec![0xffu8; 8000];
    fs.read(fd, 0, &mut buf).unwrap();
    assert!(buf[..100].iter().all(|&b| b == 7));
    assert!(buf[100..].iter().all(|&b| b == 0));
    fs.close(fd).unwrap();
}

#[test]
fn remount_after_clean_unmount() {
    let (dev, fs) = fresh();
    let fd = fs.open("/persisted", rw_create()).unwrap();
    fs.write(fd, 0, b"across remount").unwrap();
    fs.close(fd).unwrap();
    let free = fs.free_blocks();
    fs.unmount().unwrap();
    drop(fs);
    let fs2 = Pmfs::mount(dev).unwrap();
    assert_eq!(fs2.free_blocks(), free, "clean mount loads allocator image");
    let fd = fs2.open("/persisted", OpenFlags::READ).unwrap();
    let mut buf = [0u8; 14];
    fs2.read(fd, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"across remount");
    fs2.close(fd).unwrap();
}

#[test]
fn crash_recovery_preserves_committed_state() {
    let (dev, fs) = fresh();
    fs.mkdir("/dir").unwrap();
    let fd = fs.open("/dir/f", rw_create()).unwrap();
    fs.write(fd, 0, &[9u8; 12_000]).unwrap();
    fs.close(fd).unwrap();
    let free = fs.free_blocks();
    // Crash without unmount.
    dev.crash();
    drop(fs);
    let fs2 = Pmfs::mount(dev).unwrap();
    let st = fs2.stat("/dir/f").unwrap();
    assert_eq!(st.size, 12_000);
    let fd = fs2.open("/dir/f", OpenFlags::READ).unwrap();
    let mut buf = vec![0u8; 12_000];
    fs2.read(fd, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 9));
    fs2.close(fd).unwrap();
    assert_eq!(
        fs2.free_blocks(),
        free,
        "allocator rebuild matches pre-crash state"
    );
}

#[test]
fn allocator_rebuild_reclaims_leaks() {
    // Simulate a crash that leaves an allocated-but-unreachable block by
    // crashing right after mkfs and allocating behind the scenes.
    let (dev, fs) = fresh();
    let total_free = fs.free_blocks();
    // Leak: allocate a block in DRAM only (no tree linkage), then crash.
    let _leaked = fs.allocator().alloc().unwrap();
    dev.crash();
    drop(fs);
    let fs2 = Pmfs::mount(dev).unwrap();
    assert_eq!(fs2.free_blocks(), total_free, "leak reclaimed by rebuild");
}

#[test]
fn fsync_is_cheap_for_direct_writes() {
    let (_d, fs) = fresh();
    let env = fs.env().clone();
    let fd = fs.open("/f", rw_create()).unwrap();
    fs.write(fd, 0, &[1u8; 4096]).unwrap();
    env.set_now(1_000_000);
    let t0 = env.now();
    fs.fsync(fd).unwrap();
    let dt = env.now() - t0;
    // fsync costs only the syscall + a fence: data is already durable.
    assert!(dt < 2 * env.cost().syscall_ns, "fsync took {dt} ns");
    fs.close(fd).unwrap();
}

#[test]
fn write_charges_nvmm_latency_read_does_not() {
    let (_d, fs) = fresh();
    let env = fs.env().clone();
    let fd = fs.open("/f", rw_create()).unwrap();
    env.set_now(0);
    fs.write(fd, 0, &[1u8; BLOCK_SIZE]).unwrap();
    let write_time = env.now();
    // 64 lines of data at 200 ns plus overheads.
    assert!(write_time >= env.cost().nvmm_persist_ns(64));
    env.set_now(0);
    let mut buf = [0u8; BLOCK_SIZE];
    fs.read(fd, 0, &mut buf).unwrap();
    let read_time = env.now();
    assert!(
        read_time < write_time / 4,
        "read {read_time} ns vs write {write_time} ns: direct reads are DRAM-speed"
    );
    fs.close(fd).unwrap();
}

#[test]
fn many_files_in_one_directory() {
    let (_d, fs) = fresh();
    for i in 0..200 {
        let fd = fs.open(&format!("/file-{i:04}"), rw_create()).unwrap();
        fs.write(fd, 0, format!("content {i}").as_bytes()).unwrap();
        fs.close(fd).unwrap();
    }
    assert_eq!(fs.readdir("/").unwrap().len(), 200);
    for i in (0..200).step_by(7) {
        let st = fs.stat(&format!("/file-{i:04}")).unwrap();
        assert_eq!(st.size, format!("content {i}").len() as u64);
    }
    for i in 0..200 {
        fs.unlink(&format!("/file-{i:04}")).unwrap();
    }
    assert!(fs.readdir("/").unwrap().is_empty());
}

#[test]
fn inode_exhaustion() {
    let env = SimEnv::new_virtual(CostModel::default());
    let dev = NvmmDevice::new(env, 16384 * BLOCK_SIZE);
    let fs = Pmfs::mkfs(
        dev,
        PmfsOptions {
            journal_blocks: 64,
            inode_count: 16,
        },
    )
    .unwrap();
    let mut made = 0;
    loop {
        match fs.open(&format!("/f{made}"), rw_create()) {
            Ok(fd) => {
                fs.close(fd).unwrap();
                made += 1;
            }
            Err(FsError::NoInodes) => break,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert_eq!(made, 14, "16 slots minus reserved ino 0 and root");
    fs.unlink("/f0").unwrap();
    let fd = fs.open("/again", rw_create()).unwrap();
    fs.close(fd).unwrap();
}

#[test]
fn device_fills_up() {
    let env = SimEnv::new_virtual(CostModel::default());
    let dev = NvmmDevice::new(env, 512 * BLOCK_SIZE);
    let fs = Pmfs::mkfs(
        dev,
        PmfsOptions {
            journal_blocks: 16,
            inode_count: 64,
        },
    )
    .unwrap();
    let fd = fs.open("/big", rw_create()).unwrap();
    let chunk = vec![1u8; 64 * BLOCK_SIZE];
    let mut written = 0u64;
    let err = loop {
        match fs.write(fd, written, &chunk) {
            Ok(n) => written += n as u64,
            Err(e) => break e,
        }
    };
    assert_eq!(err, FsError::NoSpace);
    fs.close(fd).unwrap();
}

#[test]
fn mmap_load_store_msync() {
    let (dev, fs) = fresh();
    let fd = fs.open("/mapped", rw_create()).unwrap();
    fs.write(fd, 0, &[0xaau8; 2 * BLOCK_SIZE]).unwrap();
    let map = fs.mmap(fd, 0, 2 * BLOCK_SIZE).unwrap();
    let mut buf = [0u8; 16];
    map.load(100, &mut buf).unwrap();
    assert_eq!(buf, [0xaa; 16]);
    map.store(100, &[0x55; 16]).unwrap();
    map.load(100, &mut buf).unwrap();
    assert_eq!(buf, [0x55; 16], "store visible before msync");
    // Without msync the store is volatile.
    let pending_before = dev.pending_lines();
    assert!(pending_before > 0, "store left pending lines");
    map.msync(0, 2 * BLOCK_SIZE).unwrap();
    assert_eq!(dev.pending_lines(), 0, "msync flushed everything");
    fs.close(fd).unwrap();
}

#[test]
fn mmap_store_lost_without_msync() {
    let (dev, fs) = fresh();
    let fd = fs.open("/mapped", rw_create()).unwrap();
    fs.write(fd, 0, &[1u8; BLOCK_SIZE]).unwrap();
    let map = fs.mmap(fd, 0, BLOCK_SIZE).unwrap();
    map.store(0, &[2u8; 64]).unwrap();
    map.store(512, &[3u8; 64]).unwrap();
    map.msync(512, 64).unwrap(); // only the second store
    dev.crash();
    let mut buf = [0u8; 64];
    fs.read(fd, 0, &mut buf).unwrap();
    assert_eq!(buf, [1u8; 64], "unsynced store lost on crash");
    fs.read(fd, 512, &mut buf).unwrap();
    assert_eq!(buf, [3u8; 64], "synced store survives");
    fs.close(fd).unwrap();
}

#[test]
fn mmap_rejects_out_of_file_range() {
    let (_d, fs) = fresh();
    let fd = fs.open("/m", rw_create()).unwrap();
    fs.write(fd, 0, &[1u8; 100]).unwrap();
    assert!(fs.mmap(fd, 0, 200).is_err());
    let map = fs.mmap(fd, 0, 100).unwrap();
    let mut b = [0u8; 50];
    assert!(map.load(80, &mut b).is_err());
    fs.close(fd).unwrap();
}

#[test]
fn bad_fd_errors() {
    let (_d, fs) = fresh();
    let mut buf = [0u8; 4];
    assert_eq!(fs.read(99, 0, &mut buf), Err(FsError::BadFd));
    assert_eq!(fs.write(99, 0, &buf), Err(FsError::BadFd));
    assert_eq!(fs.fsync(99), Err(FsError::BadFd));
    assert_eq!(fs.close(99), Err(FsError::BadFd));
}

#[test]
fn open_directory_rejected() {
    let (_d, fs) = fresh();
    fs.mkdir("/dir").unwrap();
    assert_eq!(fs.open("/dir", OpenFlags::READ), Err(FsError::IsADirectory));
    assert_eq!(fs.unlink("/dir"), Err(FsError::IsADirectory));
    assert_eq!(
        fs.rmdir("/"),
        Err(FsError::InvalidArgument("root has no name"))
    );
}

#[test]
fn sparse_files_read_zero() {
    let (_d, fs) = fresh();
    let fd = fs.open("/sparse", rw_create()).unwrap();
    fs.write(fd, 10 * BLOCK_SIZE as u64, b"end").unwrap();
    let st = fs.fstat(fd).unwrap();
    assert_eq!(st.size, 10 * BLOCK_SIZE as u64 + 3);
    assert_eq!(st.blocks, 1);
    let mut buf = vec![0xffu8; BLOCK_SIZE];
    fs.read(fd, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0));
    fs.close(fd).unwrap();
}

#[test]
fn journal_time_shows_up_in_ledger() {
    let (_d, fs) = fresh();
    nvmm::ledger::reset();
    let fd = fs.open("/j", rw_create()).unwrap();
    fs.write(fd, 0, &[1u8; 64]).unwrap();
    fs.close(fd).unwrap();
    let snap = nvmm::ledger::snapshot();
    assert!(snap.get(Cat::Journal) > 0, "metadata writes were journaled");
    assert!(snap.get(Cat::UserWrite) > 0);
    assert!(snap.get(Cat::Syscall) > 0);
}
