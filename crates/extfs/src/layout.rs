//! On-disk layout of the ext-like baselines.
//!
//! ```text
//! block 0              superblock
//! blocks 1 .. 1+J      journal ring (reserved even in ext2 mode)
//! blocks .. +IB        inode bitmap
//! blocks .. +BB        block bitmap
//! blocks .. +IT        inode table (256 B slots)
//! blocks .. end        data area
//! ```

use fskit::{FsError, Result};
use nvmm::{Cat, BLOCK_SIZE};

use crate::cache::BufferCache;

/// Magic number identifying a formatted device ("EXTRS-16").
pub const MAGIC: u64 = 0x4558_5452_5331_3600;

/// Size of one inode slot in bytes.
pub const INODE_SLOT: usize = 256;

/// Inode slots per table block.
pub const INODES_PER_BLOCK: u64 = (BLOCK_SIZE / INODE_SLOT) as u64;

/// The root directory's inode number (inode 0 is reserved).
pub const ROOT_INO: u64 = 1;

/// Region map, all units 4 KiB blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtLayout {
    pub total_blocks: u64,
    pub journal_start: u64,
    pub journal_blocks: u64,
    pub ibitmap_start: u64,
    pub ibitmap_blocks: u64,
    pub bbitmap_start: u64,
    pub bbitmap_blocks: u64,
    pub itable_start: u64,
    pub itable_blocks: u64,
    pub inode_count: u64,
    pub data_start: u64,
}

impl ExtLayout {
    /// Computes the layout.
    pub fn compute(total_blocks: u64, journal_blocks: u64, inode_count: u64) -> Result<ExtLayout> {
        let ibitmap_blocks = inode_count.div_ceil(8 * BLOCK_SIZE as u64).max(1);
        let bbitmap_blocks = total_blocks.div_ceil(8 * BLOCK_SIZE as u64);
        let itable_blocks = inode_count.div_ceil(INODES_PER_BLOCK);
        let journal_start = 1;
        let ibitmap_start = journal_start + journal_blocks;
        let bbitmap_start = ibitmap_start + ibitmap_blocks;
        let itable_start = bbitmap_start + bbitmap_blocks;
        let data_start = itable_start + itable_blocks;
        if data_start + 8 > total_blocks {
            return Err(FsError::InvalidArgument("device too small for ext layout"));
        }
        Ok(ExtLayout {
            total_blocks,
            journal_start,
            journal_blocks,
            ibitmap_start,
            ibitmap_blocks,
            bbitmap_start,
            bbitmap_blocks,
            itable_start,
            itable_blocks,
            inode_count,
            data_start,
        })
    }

    /// `(table block, byte offset within it)` of inode slot `ino`.
    pub fn inode_loc(&self, ino: u64) -> (u64, usize) {
        debug_assert!(ino < self.inode_count);
        (
            self.itable_start + ino / INODES_PER_BLOCK,
            (ino % INODES_PER_BLOCK) as usize * INODE_SLOT,
        )
    }

    /// Number of data blocks.
    pub fn data_blocks(&self) -> u64 {
        self.total_blocks - self.data_start
    }
}

/// Superblock byte offsets within block 0.
mod sbo {
    pub const MAGIC: usize = 0;
    pub const TOTAL_BLOCKS: usize = 8;
    pub const JOURNAL_START: usize = 16;
    pub const JOURNAL_BLOCKS: usize = 24;
    pub const IBITMAP_START: usize = 32;
    pub const IBITMAP_BLOCKS: usize = 40;
    pub const BBITMAP_START: usize = 48;
    pub const BBITMAP_BLOCKS: usize = 56;
    pub const ITABLE_START: usize = 64;
    pub const ITABLE_BLOCKS: usize = 72;
    pub const INODE_COUNT: usize = 80;
    pub const DATA_START: usize = 88;
    pub const CLEAN: usize = 96;
}

/// Writes a fresh superblock through the cache and flushes it.
pub fn write_superblock(cache: &BufferCache, l: &ExtLayout, now: u64) {
    let mut block = vec![0u8; BLOCK_SIZE];
    let mut put = |off: usize, v: u64| {
        block[off..off + 8].copy_from_slice(&v.to_le_bytes());
    };
    put(sbo::MAGIC, MAGIC);
    put(sbo::TOTAL_BLOCKS, l.total_blocks);
    put(sbo::JOURNAL_START, l.journal_start);
    put(sbo::JOURNAL_BLOCKS, l.journal_blocks);
    put(sbo::IBITMAP_START, l.ibitmap_start);
    put(sbo::IBITMAP_BLOCKS, l.ibitmap_blocks);
    put(sbo::BBITMAP_START, l.bbitmap_start);
    put(sbo::BBITMAP_BLOCKS, l.bbitmap_blocks);
    put(sbo::ITABLE_START, l.itable_start);
    put(sbo::ITABLE_BLOCKS, l.itable_blocks);
    put(sbo::INODE_COUNT, l.inode_count);
    put(sbo::DATA_START, l.data_start);
    put(sbo::CLEAN, 1);
    cache.write(Cat::Meta, 0, 0, &block, now);
    cache.flush_block(0, obsv::DrainKind::Sync);
}

/// Reads and validates the superblock; returns the layout and clean flag.
pub fn read_superblock(cache: &BufferCache) -> Result<(ExtLayout, bool)> {
    let mut block = vec![0u8; BLOCK_SIZE];
    cache.read(Cat::Meta, 0, 0, &mut block);
    let get = |off: usize| u64::from_le_bytes(block[off..off + 8].try_into().unwrap());
    if get(sbo::MAGIC) != MAGIC {
        return Err(FsError::Corrupted("ext superblock magic"));
    }
    let layout = ExtLayout {
        total_blocks: get(sbo::TOTAL_BLOCKS),
        journal_start: get(sbo::JOURNAL_START),
        journal_blocks: get(sbo::JOURNAL_BLOCKS),
        ibitmap_start: get(sbo::IBITMAP_START),
        ibitmap_blocks: get(sbo::IBITMAP_BLOCKS),
        bbitmap_start: get(sbo::BBITMAP_START),
        bbitmap_blocks: get(sbo::BBITMAP_BLOCKS),
        itable_start: get(sbo::ITABLE_START),
        itable_blocks: get(sbo::ITABLE_BLOCKS),
        inode_count: get(sbo::INODE_COUNT),
        data_start: get(sbo::DATA_START),
    };
    if layout.data_start >= layout.total_blocks {
        return Err(FsError::Corrupted("ext superblock layout"));
    }
    Ok((layout, get(sbo::CLEAN) == 1))
}

/// Sets the clean flag and flushes the superblock.
pub fn set_clean(cache: &BufferCache, clean: bool, now: u64) {
    cache.write(Cat::Meta, 0, sbo::CLEAN, &(clean as u64).to_le_bytes(), now);
    cache.flush_block(0, obsv::DrainKind::Sync);
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::Nvmmbd;
    use nvmm::{CostModel, NvmmDevice, SimEnv};
    use std::sync::Arc;

    fn cache(blocks: u64) -> BufferCache {
        let env = SimEnv::new_virtual(CostModel::default());
        let dev = NvmmDevice::new(env, blocks as usize * BLOCK_SIZE);
        BufferCache::new(Arc::new(Nvmmbd::new(dev)), 64)
    }

    #[test]
    fn layout_regions_ordered() {
        let l = ExtLayout::compute(8192, 256, 2048).unwrap();
        assert!(l.journal_start < l.ibitmap_start);
        assert!(l.ibitmap_start < l.bbitmap_start);
        assert!(l.bbitmap_start < l.itable_start);
        assert!(l.itable_start < l.data_start);
        assert!(l.data_start < l.total_blocks);
    }

    #[test]
    fn inode_locations_do_not_overlap() {
        let l = ExtLayout::compute(8192, 64, 64).unwrap();
        let (b0, o0) = l.inode_loc(0);
        let (b1, o1) = l.inode_loc(1);
        let (b16, _) = l.inode_loc(16);
        assert_eq!(b0, b1);
        assert_eq!(o1 - o0, INODE_SLOT);
        assert_eq!(b16, b0 + 1);
    }

    #[test]
    fn superblock_roundtrip() {
        let c = cache(8192);
        let l = ExtLayout::compute(8192, 64, 512).unwrap();
        write_superblock(&c, &l, 0);
        let (got, clean) = read_superblock(&c).unwrap();
        assert_eq!(got, l);
        assert!(clean);
        set_clean(&c, false, 1);
        let (_, clean) = read_superblock(&c).unwrap();
        assert!(!clean);
    }

    #[test]
    fn unformatted_rejected() {
        let c = cache(64);
        assert!(read_superblock(&c).is_err());
    }

    #[test]
    fn too_small_rejected() {
        assert!(ExtLayout::compute(100, 64, 4096).is_err());
    }
}
