//! The emulated NVMM device.
//!
//! [`NvmmDevice`] is a flat byte array that charges model costs for every
//! access, mirroring the paper's DRAM-backed emulator:
//!
//! - [`NvmmDevice::read`] copies at DRAM speed (plus the optional NVMM read
//!   surcharge, zero by default).
//! - [`NvmmDevice::write_persist`] models a non-temporal (`*_nocache`) copy:
//!   the data is durable on return and every touched cacheline pays the
//!   NVMM write latency through the bandwidth gate.
//! - [`NvmmDevice::write_cached`] is a regular store: DRAM cost only, not
//!   durable until [`NvmmDevice::clflush`] persists the touched lines.
//!
//! Devices created with [`NvmmDevice::new_tracked`] also maintain a
//! persistent shadow image so tests can call [`NvmmDevice::crash`] and
//! exercise recovery paths against exactly the bytes that would have
//! survived a power failure.

use std::sync::Arc;

use obsv::{ContentionTable, Phase, Site, SpanTable, TrackedMutex, TrackedRwLock};

use crate::crash::Shadow;
use crate::fault::{self, BoundaryKind, FaultHook};
use crate::ledger::Cat;
use crate::stats::DeviceStats;
use crate::time::SimEnv;
use crate::{lines_touched, CACHELINE};

/// A byte-addressable emulated NVMM device.
#[derive(Debug)]
pub struct NvmmDevice {
    env: Arc<SimEnv>,
    mem: TrackedRwLock<Box<[u8]>>,
    shadow: Option<TrackedMutex<Shadow>>,
    stats: DeviceStats,
    fault: Arc<FaultHook>,
    spans: Arc<SpanTable>,
    len: usize,
}

/// Phase a device *read* charges, by traffic category: journal undo-image
/// reads stay in [`Phase::Journal`], metadata reads in [`Phase::Index`],
/// everything else (user reads, CLFW fetches, writeback reads) is an
/// NVMM→DRAM copy.
fn read_phase(cat: Cat) -> Phase {
    match cat {
        Cat::Journal => Phase::Journal,
        Cat::Meta => Phase::Index,
        _ => Phase::NvmmCopy,
    }
}

/// Phase a durable store (persist / flush) charges, by category.
fn persist_phase(cat: Cat) -> Phase {
    match cat {
        Cat::Journal => Phase::Journal,
        Cat::Meta => Phase::Index,
        _ => Phase::Persist,
    }
}

/// Phase a cached (volatile) store charges, by category.
fn cached_phase(cat: Cat) -> Phase {
    match cat {
        Cat::Journal => Phase::Journal,
        Cat::Meta => Phase::Index,
        _ => Phase::DramCopy,
    }
}

impl NvmmDevice {
    /// Creates an untracked device of `len` bytes (no crash simulation;
    /// `clflush` assumes every line in the range is dirty).
    pub fn new(env: Arc<SimEnv>, len: usize) -> Arc<Self> {
        Self::build(env, len, false)
    }

    /// Creates a device that tracks its persistence domain, enabling
    /// [`NvmmDevice::crash`]. Uses twice the memory of an untracked device.
    pub fn new_tracked(env: Arc<SimEnv>, len: usize) -> Arc<Self> {
        Self::build(env, len, true)
    }

    fn build(env: Arc<SimEnv>, len: usize, tracked: bool) -> Arc<Self> {
        assert!(len > 0, "device must not be empty");
        assert_eq!(len % CACHELINE, 0, "device length must be line-aligned");
        let contention = env.contention().clone();
        Arc::new(NvmmDevice {
            mem: TrackedRwLock::attached(
                &contention,
                Site::NvmmDevice,
                vec![0u8; len].into_boxed_slice(),
            ),
            shadow: tracked
                .then(|| TrackedMutex::attached(&contention, Site::NvmmShadow, Shadow::new(len))),
            env,
            stats: DeviceStats::new(),
            fault: FaultHook::new(),
            spans: Arc::new(SpanTable::new()),
            len,
        })
    }

    /// The lock-contention and stall profiler of this device's machine
    /// (the environment's table).
    pub fn contention(&self) -> &Arc<ContentionTable> {
        self.env.contention()
    }

    /// The per-op × per-phase span matrix every access to this device
    /// charges into. Disabled by default (one relaxed load per hook);
    /// file systems mounted on the device share this table so their
    /// software-side phases land in the same matrix.
    pub fn spans(&self) -> &Arc<SpanTable> {
        &self.spans
    }

    /// The fault-injection hook of this device. Installing a
    /// [`fault::FaultPlan`] turns every durable store into an observed
    /// persistence boundary; with no plan the hook costs one relaxed load.
    pub fn fault_hook(&self) -> &Arc<FaultHook> {
        &self.fault
    }

    /// Reports a persistence boundary to the installed fault plan, if any.
    /// Called after the store's effect (memory + shadow + cost) is applied,
    /// so a crash fired here models power loss *just after* the store.
    #[inline]
    fn fault_boundary(&self, kind: BoundaryKind, off: u64, lines: usize) {
        if let Some(plan) = self.fault.plan() {
            plan.on_boundary(kind, off, lines, self.env.now());
        }
    }

    /// Device capacity in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the device has zero capacity (never true; see [`Self::new`]).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The simulation environment this device charges time to.
    pub fn env(&self) -> &Arc<SimEnv> {
        &self.env
    }

    /// Traffic counters for this device.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Whether this device tracks its persistence domain.
    pub fn is_tracked(&self) -> bool {
        self.shadow.is_some()
    }

    fn check(&self, off: u64, len: usize) {
        assert!(
            (off as usize)
                .checked_add(len)
                .is_some_and(|end| end <= self.len),
            "device access out of bounds: off={off} len={len} cap={}",
            self.len
        );
    }

    /// Reads `buf.len()` bytes at `off` into `buf`, charging DRAM copy cost
    /// (and the NVMM read surcharge, zero by default) to `cat`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read(&self, cat: Cat, off: u64, buf: &mut [u8]) {
        self.spans.scope(
            read_phase(cat),
            || self.env.now(),
            || {
                self.check(off, buf.len());
                {
                    let mem = self.mem.read();
                    buf.copy_from_slice(&mem[off as usize..off as usize + buf.len()]);
                }
                self.stats.add_read(buf.len() as u64);
                self.env.charge_dram_copy(cat, buf.len());
                let extra = self.env.cost().nvmm_read_extra_ns;
                if extra > 0 {
                    self.env
                        .charge(cat, extra * lines_touched(off, buf.len()) as u64);
                }
            },
        )
    }

    /// Writes `data` at `off` with non-temporal stores: durable on return.
    /// Charges the DRAM copy plus the NVMM persist latency (through the
    /// bandwidth gate) to `cat`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write_persist(&self, cat: Cat, off: u64, data: &[u8]) {
        self.spans.scope(
            persist_phase(cat),
            || self.env.now(),
            || {
                self.check(off, data.len());
                {
                    let mut mem = self.mem.write();
                    mem[off as usize..off as usize + data.len()].copy_from_slice(data);
                    if let Some(shadow) = &self.shadow {
                        shadow.lock().persist_now(&mem, off, data.len());
                    }
                }
                let lines = lines_touched(off, data.len());
                self.stats.add_written((lines * CACHELINE) as u64);
                obsv::note_persisted((lines * CACHELINE) as u64);
                self.env.charge_dram_copy(cat, data.len());
                self.env.nvmm_persist(cat, lines);
                self.fault_boundary(BoundaryKind::Persist, off, lines);
            },
        )
    }

    /// Writes `data` at `off` with regular (cached) stores: *not* durable
    /// until the touched lines are flushed. Charges DRAM copy cost only.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write_cached(&self, cat: Cat, off: u64, data: &[u8]) {
        self.spans.scope(
            cached_phase(cat),
            || self.env.now(),
            || {
                self.check(off, data.len());
                {
                    let mut mem = self.mem.write();
                    mem[off as usize..off as usize + data.len()].copy_from_slice(data);
                    if let Some(shadow) = &self.shadow {
                        shadow.lock().mark_range(off, data.len());
                    }
                }
                self.stats.add_cached_store(data.len() as u64);
                self.env.charge_dram_copy(cat, data.len());
            },
        )
    }

    /// Flushes the cachelines covering `[off, off+len)` to the persistence
    /// domain. On a tracked device only the lines actually pending are
    /// persisted and charged; untracked devices charge every line in the
    /// range (callers flush exactly what they wrote).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn clflush(&self, cat: Cat, off: u64, len: usize) {
        self.check(off, len);
        if len == 0 {
            return;
        }
        self.spans.scope(
            persist_phase(cat),
            || self.env.now(),
            || {
                let lines = match &self.shadow {
                    Some(shadow) => {
                        let mem = self.mem.read();
                        shadow.lock().flush_range(&mem, off, len)
                    }
                    None => lines_touched(off, len),
                };
                if lines == 0 {
                    return;
                }
                self.stats.add_flush_lines(lines as u64);
                self.stats.add_written((lines * CACHELINE) as u64);
                obsv::note_persisted((lines * CACHELINE) as u64);
                self.env.nvmm_persist(cat, lines);
                self.fault_boundary(BoundaryKind::Flush, off, lines);
            },
        )
    }

    /// Issues a store fence (ordering point).
    pub fn sfence(&self) {
        self.spans.scope(
            Phase::Fence,
            || self.env.now(),
            || {
                self.stats.add_fence();
                obsv::note_fence(1);
                self.env.charge_fence();
                self.fault_boundary(BoundaryKind::Fence, 0, 0);
            },
        )
    }

    /// Issues one store fence standing in for `n` logical ordering points
    /// (group commit): the batch pays a single fence latency while the
    /// `n - 1` folded ordering points stay visible in the stats so fence
    /// accounting remains auditable.
    pub fn sfence_coalesced(&self, n: u64) {
        self.spans.scope(
            Phase::Fence,
            || self.env.now(),
            || {
                self.stats.add_fence();
                if n > 1 {
                    self.stats.add_fences_coalesced(n - 1);
                }
                obsv::note_fence(n.max(1));
                self.env.charge_fence();
                self.fault_boundary(BoundaryKind::Fence, 0, 0);
            },
        )
    }

    /// Writes zeroes over `[off, off+len)` with non-temporal stores.
    pub fn zero_persist(&self, cat: Cat, off: u64, len: usize) {
        self.check(off, len);
        if len == 0 {
            return;
        }
        self.spans.scope(
            persist_phase(cat),
            || self.env.now(),
            || {
                let mut mem = self.mem.write();
                mem[off as usize..off as usize + len].fill(0);
                if let Some(shadow) = &self.shadow {
                    shadow.lock().persist_now(&mem, off, len);
                }
                drop(mem);
                let lines = lines_touched(off, len);
                self.stats.add_written((lines * CACHELINE) as u64);
                obsv::note_persisted((lines * CACHELINE) as u64);
                self.env.charge_dram_copy(cat, len);
                self.env.nvmm_persist(cat, lines);
                self.fault_boundary(BoundaryKind::Persist, off, lines);
            },
        )
    }

    /// Reads a little-endian `u64` at `off` (must not straddle a cacheline,
    /// which is what makes the hardware access atomic).
    pub fn read_u64(&self, cat: Cat, off: u64) -> u64 {
        assert_eq!(off % 8, 0, "u64 access must be 8-byte aligned");
        let mut b = [0u8; 8];
        self.read(cat, off, &mut b);
        u64::from_le_bytes(b)
    }

    /// Atomically persists a little-endian `u64` at `off` (8-byte aligned,
    /// hence within one cacheline; the paper's 8-byte atomic update).
    pub fn write_u64_persist(&self, cat: Cat, off: u64, v: u64) {
        assert_eq!(off % 8, 0, "u64 access must be 8-byte aligned");
        self.write_persist(cat, off, &v.to_le_bytes());
    }

    /// Simulates power loss and restart: the volatile image is replaced by
    /// the persistent one.
    ///
    /// # Panics
    ///
    /// Panics if the device was not created with [`NvmmDevice::new_tracked`].
    pub fn crash(&self) {
        let shadow = self
            .shadow
            .as_ref()
            .expect("crash simulation requires a tracked device");
        let mut mem = self.mem.write();
        shadow.lock().crash_into(&mut mem);
    }

    /// Simulates power loss with a *partial* cache eviction: each pending
    /// cacheline independently survives (persists) or is lost, decided by a
    /// deterministic function of `seed` and the line number. Models the
    /// arbitrary order in which dirty cachelines leave a real cache before
    /// the power actually dies, producing torn multi-line states that a
    /// clean [`NvmmDevice::crash`] never shows. Returns how many pending
    /// lines survived.
    ///
    /// # Panics
    ///
    /// Panics if the device was not created with [`NvmmDevice::new_tracked`].
    pub fn crash_partial(&self, seed: u64) -> usize {
        let shadow = self
            .shadow
            .as_ref()
            .expect("crash simulation requires a tracked device");
        let mut mem = self.mem.write();
        shadow
            .lock()
            .crash_into_partial(&mut mem, |line| fault::mix(seed, line as u64) & 1 == 0)
    }

    /// Number of cachelines whose latest content has not been persisted.
    /// Zero for untracked devices.
    pub fn pending_lines(&self) -> usize {
        self.shadow.as_ref().map_or(0, |s| s.lock().pending_lines())
    }

    /// Cost-free read for tests and assertions.
    pub fn peek(&self, off: u64, buf: &mut [u8]) {
        self.check(off, buf.len());
        let mem = self.mem.read();
        buf.copy_from_slice(&mem[off as usize..off as usize + buf.len()]);
    }

    /// Cost-free durable write for test setup.
    pub fn poke(&self, off: u64, data: &[u8]) {
        self.check(off, data.len());
        let mut mem = self.mem.write();
        mem[off as usize..off as usize + data.len()].copy_from_slice(data);
        if let Some(shadow) = &self.shadow {
            shadow.lock().persist_now(&mem, off, data.len());
        }
    }
}

impl obsv::Introspect for NvmmDevice {
    fn snapshot(&self) -> obsv::FsSnapshot {
        let s = self.stats.snapshot();
        let led = crate::ledger::snapshot();
        obsv::FsSnapshot {
            system: "nvmm".into(),
            at_ns: self.env.now(),
            device: Some(obsv::DeviceSnap {
                capacity_bytes: self.len as u64,
                bytes_written: s.nvmm_bytes_written,
                bytes_read: s.nvmm_bytes_read,
                flush_lines: s.flush_lines,
                fences: s.fences,
                cached_store_bytes: s.cached_store_bytes,
                ledger_ns: crate::ledger::ALL_CATS
                    .iter()
                    .map(|&c| (c.label().to_string(), led.get(c)))
                    .collect(),
                ledger_total_ns: led.total(),
            }),
            ..obsv::FsSnapshot::default()
        }
    }

    fn audit(&self) -> obsv::AuditReport {
        let mut rep = obsv::AuditReport::new(self.env.now());
        let s = self.stats.snapshot();
        // device.accounting: the media only accepts whole cachelines, so the
        // persisted-byte counter must stay line-aligned.
        rep.check_eq(13, 0, 0, s.nvmm_bytes_written % CACHELINE as u64, 0);
        rep
    }
}

impl obsv::MetricSource for NvmmDevice {
    fn collect(&self, out: &mut dyn obsv::Visitor) {
        obsv::MetricSource::collect(&self.stats, out);
        out.gauge("nvmm_capacity_bytes", self.len as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::ledger;

    fn dev() -> Arc<NvmmDevice> {
        NvmmDevice::new_tracked(SimEnv::new_virtual(CostModel::default()), 1 << 16)
    }

    #[test]
    fn write_persist_roundtrip() {
        let d = dev();
        d.write_persist(Cat::UserWrite, 100, b"hello");
        let mut buf = [0u8; 5];
        d.read(Cat::UserRead, 100, &mut buf);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn cached_write_lost_on_crash_until_flushed() {
        let d = dev();
        d.write_cached(Cat::Journal, 0, b"volatile");
        d.write_cached(Cat::Journal, 4096, b"flushed");
        d.clflush(Cat::Journal, 4096, 7);
        d.crash();
        let mut buf = [0u8; 8];
        d.peek(0, &mut buf);
        assert_eq!(&buf, &[0u8; 8], "unflushed line must not survive");
        let mut buf = [0u8; 7];
        d.peek(4096, &mut buf);
        assert_eq!(&buf, b"flushed");
    }

    #[test]
    fn persist_survives_crash() {
        let d = dev();
        d.write_persist(Cat::UserWrite, 64, b"durable");
        d.crash();
        let mut buf = [0u8; 7];
        d.peek(64, &mut buf);
        assert_eq!(&buf, b"durable");
    }

    #[test]
    fn stats_count_line_granularity() {
        let d = dev();
        let before = d.stats().snapshot();
        // 5 bytes at offset 62 touch two lines -> 128 media bytes.
        d.write_persist(Cat::UserWrite, 62, &[1, 2, 3, 4, 5]);
        let delta = d.stats().snapshot().since(&before);
        assert_eq!(delta.nvmm_bytes_written, 128);
    }

    #[test]
    fn clflush_only_charges_pending_lines() {
        let d = dev();
        ledger::reset();
        d.env().set_now(0);
        d.write_cached(Cat::Journal, 0, &[1u8; 64]);
        // Flush a 4 KiB range: only the one dirty line persists.
        let before = d.stats().snapshot();
        d.clflush(Cat::Journal, 0, 4096);
        let delta = d.stats().snapshot().since(&before);
        assert_eq!(delta.flush_lines, 1);
        assert_eq!(delta.nvmm_bytes_written, 64);
        // Second flush is a no-op.
        d.clflush(Cat::Journal, 0, 4096);
        assert_eq!(d.stats().snapshot().since(&before).flush_lines, 1);
    }

    #[test]
    fn virtual_time_advances_with_persist() {
        let d = dev();
        d.env().set_now(0);
        d.write_persist(Cat::UserWrite, 0, &[0u8; 4096]);
        let cost = d.env().cost();
        let expect = cost.dram_copy_ns(4096) + cost.nvmm_persist_ns(64);
        assert_eq!(d.env().now(), expect);
    }

    #[test]
    fn read_does_not_pay_nvmm_latency() {
        let d = dev();
        d.env().set_now(0);
        let mut buf = [0u8; 4096];
        d.read(Cat::UserRead, 0, &mut buf);
        assert_eq!(d.env().now(), d.env().cost().dram_copy_ns(4096));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_read_panics() {
        let d = dev();
        let mut buf = [0u8; 8];
        d.read(Cat::UserRead, (1 << 16) - 4, &mut buf);
    }

    #[test]
    fn u64_atomic_roundtrip() {
        let d = dev();
        d.write_u64_persist(Cat::Meta, 128, 0xdead_beef_cafe_f00d);
        assert_eq!(d.read_u64(Cat::Meta, 128), 0xdead_beef_cafe_f00d);
        d.crash();
        assert_eq!(d.read_u64(Cat::Meta, 128), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn zero_persist_clears_range() {
        let d = dev();
        d.write_persist(Cat::UserWrite, 0, &[0xff; 256]);
        d.zero_persist(Cat::Meta, 0, 256);
        let mut buf = [0u8; 256];
        d.peek(0, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn spans_attribute_device_time_by_phase() {
        let d = dev();
        d.env().set_now(0);
        ledger::reset();
        d.spans().set_enabled(true);
        let t0 = d.env().now();
        d.write_persist(Cat::UserWrite, 0, &[7u8; 4096]);
        d.sfence();
        let mut buf = [0u8; 4096];
        d.read(Cat::UserRead, 0, &mut buf);
        d.write_persist(Cat::Journal, 8192, &[1u8; 64]);
        let elapsed = d.env().now() - t0;
        let s = d.spans().snapshot();
        // No op context -> the background row; every charged nanosecond
        // lands in exactly one phase and the matrix sums to elapsed time.
        assert!(s.ns[obsv::BG_ROW][Phase::Persist as usize] > 0);
        assert!(s.ns[obsv::BG_ROW][Phase::Fence as usize] > 0);
        assert!(s.ns[obsv::BG_ROW][Phase::NvmmCopy as usize] > 0);
        assert!(s.ns[obsv::BG_ROW][Phase::Journal as usize] > 0);
        assert_eq!(s.grand_total(), elapsed);
        // Disabled table stays silent.
        d.spans().set_enabled(false);
        let before = d.spans().snapshot();
        d.sfence();
        assert_eq!(d.spans().snapshot(), before);
    }

    #[test]
    fn untracked_device_charges_full_range() {
        let env = SimEnv::new_virtual(CostModel::default());
        let d = NvmmDevice::new(env, 1 << 16);
        assert!(!d.is_tracked());
        let before = d.stats().snapshot();
        d.clflush(Cat::Journal, 0, 4096);
        assert_eq!(d.stats().snapshot().since(&before).flush_lines, 64);
    }
}
