//! Path normalization and validation.
//!
//! Paths are absolute, `/`-separated UTF-8 strings. Components are limited
//! to 255 bytes like ext2/PMFS. `.` and `..` are resolved lexically.

use crate::error::{FsError, Result};

/// Maximum length of a single path component, in bytes.
pub const MAX_NAME: usize = 255;

/// Splits an absolute path into validated, normalized components.
///
/// The root path `/` yields an empty vector.
///
/// # Examples
///
/// ```
/// use fskit::path::components;
/// assert_eq!(components("/a/b/c").unwrap(), vec!["a", "b", "c"]);
/// assert_eq!(components("/a//b/./c/..").unwrap(), vec!["a", "b"]);
/// assert_eq!(components("/").unwrap(), Vec::<&str>::new());
/// assert!(components("relative").is_err());
/// ```
pub fn components(path: &str) -> Result<Vec<&str>> {
    if !path.starts_with('/') {
        return Err(FsError::InvalidArgument("path must be absolute"));
    }
    let mut out: Vec<&str> = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                // Lexical parent; `..` at root stays at root like POSIX.
                out.pop();
            }
            name => {
                if name.len() > MAX_NAME {
                    return Err(FsError::NameTooLong);
                }
                out.push(name);
            }
        }
    }
    Ok(out)
}

/// Splits a path into its parent's components and the final name.
///
/// Fails on the root path (it has no parent entry).
pub fn split_parent(path: &str) -> Result<(Vec<&str>, &str)> {
    let mut comps = components(path)?;
    let name = comps
        .pop()
        .ok_or(FsError::InvalidArgument("root has no name"))?;
    Ok((comps, name))
}

/// Validates a single component name (for rename targets etc.).
pub fn validate_name(name: &str) -> Result<()> {
    if name.is_empty() || name == "." || name == ".." {
        return Err(FsError::InvalidArgument("invalid name component"));
    }
    if name.contains('/') {
        return Err(FsError::InvalidArgument("name contains a slash"));
    }
    if name.len() > MAX_NAME {
        return Err(FsError::NameTooLong);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_dots_and_slashes() {
        assert_eq!(components("//x///y//").unwrap(), vec!["x", "y"]);
        assert_eq!(components("/x/../y").unwrap(), vec!["y"]);
        assert_eq!(components("/../x").unwrap(), vec!["x"]);
    }

    #[test]
    fn rejects_relative() {
        assert_eq!(
            components("a/b"),
            Err(FsError::InvalidArgument("path must be absolute"))
        );
    }

    #[test]
    fn rejects_long_names() {
        let long = format!("/{}", "a".repeat(MAX_NAME + 1));
        assert_eq!(components(&long), Err(FsError::NameTooLong));
        let ok = format!("/{}", "a".repeat(MAX_NAME));
        assert!(components(&ok).is_ok());
    }

    #[test]
    fn split_parent_works() {
        let (parent, name) = split_parent("/a/b/c").unwrap();
        assert_eq!(parent, vec!["a", "b"]);
        assert_eq!(name, "c");
        assert!(split_parent("/").is_err());
    }

    #[test]
    fn validate_name_cases() {
        assert!(validate_name("ok.txt").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name(".").is_err());
        assert!(validate_name("..").is_err());
        assert!(validate_name("a/b").is_err());
    }
}
