//! Latency explorer: how the HiNFS/PMFS gap moves with the NVMM write
//! latency (the paper's Fig 11, as an interactive-style sweep).
//!
//! ```text
//! cargo run --release --example latency_explorer [workload]
//! ```
//!
//! `workload` is one of `fileserver` (default), `webserver`, `webproxy`,
//! `varmail`.

use std::sync::Arc;

use hinfs_suite::prelude::*;
use hinfs_suite::workloads::filebench::{
    FilebenchParams, Fileserver, Varmail, Webproxy, Webserver,
};
use hinfs_suite::workloads::fileset::{Fileset, FilesetSpec};
use hinfs_suite::workloads::setups;

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "fileserver".into());
    println!("single-thread {which} throughput vs NVMM write latency\n");
    println!(
        "{:>8} {:>12} {:>12} {:>8}",
        "latency", "pmfs ops/s", "hinfs ops/s", "gap"
    );
    for lat in [50u64, 100, 200, 400, 800] {
        let mut tput = Vec::new();
        for kind in [SystemKind::Pmfs, SystemKind::Hinfs] {
            let cfg = SystemConfig {
                device_bytes: 256 << 20,
                buffer_bytes: 8 << 20,
                cost: CostModel::default().with_write_latency(lat),
                ..SystemConfig::default()
            };
            let sys = setups::build(kind, &cfg).expect("build");
            let set = Fileset::populate(&*sys.fs, FilesetSpec::new("/data", 128, 20, 32 << 10), 11)
                .expect("populate");
            sys.fs.sync().expect("sync");
            sys.env.rebase();
            let params = FilebenchParams {
                iosize: 256 << 10,
                append_size: 8 << 10,
            };
            let actor: Box<dyn Actor> = match which.as_str() {
                "webserver" => Box::new(Webserver::new(Arc::clone(&set), params, 0)),
                "webproxy" => Box::new(Webproxy::new(Arc::clone(&set), params, 0)),
                "varmail" => Box::new(Varmail::new(Arc::clone(&set), params)),
                _ => Box::new(Fileserver::new(Arc::clone(&set), params)),
            };
            let report = Runner::new(sys.env.clone(), sys.fs.clone()).run(
                vec![actor],
                RunLimit::duration_ms(400),
                5,
            );
            tput.push(report.throughput());
            sys.fs.unmount().expect("unmount");
        }
        println!(
            "{:>6}ns {:>12.0} {:>12.0} {:>7.2}x",
            lat,
            tput[0],
            tput[1],
            tput[1] / tput[0].max(1e-9)
        );
    }
    println!("\npaper Fig 11: the gap grows with latency; HiNFS never loses, even at 50 ns.");
}
