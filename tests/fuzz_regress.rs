//! Replays the fuzzer-discovered reproducers committed under
//! `tests/repro/` and self-tests the shrinker.
//!
//! Every `.repro` file is a violation the coverage-guided fuzzer
//! (`examples/fuzz_fs.rs`) found and delta-debugged down to a handful of
//! ops; committing them pins the fixes forever. Replay is deterministic:
//! the differential against the healthy reference model on the repro's
//! kind(s), then a crash-recover-oracle cycle at every recorded boundary
//! — all single-threaded on the virtual clock, even for cases discovered
//! under real threads (their boundary indices were recorded at discovery
//! time, the same record-then-replay scheme as `tests/concurrency.rs`).
//!
//! The `selftest_` fixture is different: it is the shrinker's own
//! regression. A seeded known-bad script must shrink, against a model
//! with a deliberately planted bug, to that exact byte-identical two-op
//! fixed point on every run.

use faultfs::fuzz::{known_bad_script, shrink_differential};
use faultfs::{exec_op, FsKind, Harness, ModelBug, Repro};
use nvmm::{FaultPlan, TimeMode};
use workloads::setups::{build, SystemConfig, SystemKind};

fn repro_dir() -> String {
    format!("{}/tests/repro", env!("CARGO_MANIFEST_DIR"))
}

fn load(name: &str) -> Repro {
    let path = format!("{}/{name}", repro_dir());
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    Repro::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Every committed fixture as `(file name, contents)`, sorted.
fn all_repro_files() -> Vec<(String, String)> {
    let dir = repro_dir();
    let mut out = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("tests/repro must exist") {
        let p = entry.expect("dirent").path();
        if p.extension().is_some_and(|e| e == "repro") {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            out.push((name, std::fs::read_to_string(&p).expect("read repro")));
        }
    }
    out.sort();
    assert!(!out.is_empty(), "no committed reproducers in {dir}");
    out
}

/// Every fixture must parse, and serialization must be a fixed point
/// (parse → to_text → parse gives the same repro), so a committed file is
/// exactly what the fuzzer would write for it.
#[test]
fn committed_repros_parse_and_round_trip() {
    for (name, text) in all_repro_files() {
        let r = Repro::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!r.script.ops.is_empty(), "{name}: empty script");
        let back = Repro::parse(&r.to_text()).unwrap_or_else(|e| panic!("{name} reser: {e}"));
        assert_eq!(back, r, "{name}: serialization round-trip");
    }
}

/// Every non-selftest fixture replays clean against the healthy model:
/// the bugs they pinned stay fixed.
#[test]
fn committed_repros_stay_fixed() {
    let h = Harness::new();
    for (name, text) in all_repro_files() {
        // The selftest fixture only violates a deliberately-bugged model;
        // it gets its own fixed-point test below.
        if name.starts_with("selftest_") {
            continue;
        }
        let r = Repro::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let vs = r.replay(&h);
        assert!(vs.is_empty(), "{name} regressed: {vs:#?}");
    }
}

/// The shrinker self-test (negative gate): with a planted model bug the
/// seeded known-bad script must (a) fail the differential, (b) shrink to
/// at most two ops, (c) hit a fixed point, and (d) serialize to exactly
/// the committed fixture — byte-identical across runs and machines.
#[test]
fn known_bad_script_shrinks_to_the_committed_fixture() {
    let bug = ModelBug::TruncateExtendLost { threshold: 16_384 };
    let h = Harness::new();
    let repro = shrink_differential(&h, FsKind::Pmfs, &known_bad_script(), Some(bug), 400)
        .expect("the known-bad script must fail against the planted bug");
    assert!(
        repro.script.ops.len() <= 2,
        "shrunk to {} ops: {:?}",
        repro.script.ops.len(),
        repro.script.ops
    );
    let again = shrink_differential(&h, FsKind::Pmfs, &repro.script.ops, Some(bug), 400)
        .expect("the shrunk script must still fail");
    assert_eq!(again.script.ops, repro.script.ops, "shrink fixed point");

    let path = format!("{}/selftest_truncate_extend.repro", repro_dir());
    let fixture = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    assert_eq!(
        repro.to_text(),
        fixture,
        "the shrinker no longer reproduces the committed fixture byte-for-byte"
    );

    // And against the *healthy* model the same fixture is clean — the
    // violation really was the planted bug, not the file system.
    let r = Repro::parse(&fixture).expect("fixture parses");
    let vs = r.replay(&h);
    assert!(vs.is_empty(), "fixture vs healthy model: {vs:#?}");
}

/// The four-thread fixture end to end: replay the committed recorded
/// boundaries, then record a *fresh* schedule by running the same script
/// partitioned round-robin over four real threads (spin mode) and replay
/// crashes at quartiles of that schedule too. Recording is inherently
/// nondeterministic; every replayed crash is deterministic.
#[test]
fn threaded_repro_replays_committed_and_fresh_schedules() {
    let r = load("fuzzed_threads4_appends.repro");
    assert_eq!(r.threads, 4);
    assert!(
        !r.boundaries.is_empty(),
        "fixture lost its recorded schedule"
    );
    let h = Harness::new();
    let vs = r.replay(&h);
    assert!(vs.is_empty(), "committed boundaries: {vs:#?}");

    // Fresh recording, the tests/concurrency.rs way.
    let cfg = SystemConfig {
        device_bytes: 64 << 20,
        mode: TimeMode::Spin,
        buffer_bytes: 2 << 20,
        ..SystemConfig::default()
    };
    let sys = build(SystemKind::Hinfs, &cfg).unwrap();
    let plan = FaultPlan::new();
    sys.dev.fault_hook().install(plan.clone());
    plan.start_recording();
    let threads = r.threads as usize;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let ops: Vec<_> = r
                .script
                .ops
                .iter()
                .skip(t)
                .step_by(threads)
                .copied()
                .collect();
            let fs = sys.fs.clone();
            let env = sys.env.clone();
            scope.spawn(move || {
                for op in &ops {
                    // Clean errors are legal under concurrency; panics not.
                    let _ = exec_op(&*fs, &env, op);
                }
            });
        }
    });
    let schedule = plan.stop_recording();
    sys.dev.fault_hook().clear();
    sys.fs.unmount().unwrap();

    let crash_points: Vec<u64> = schedule
        .iter()
        .filter(|b| b.index > 0)
        .map(|b| b.index)
        .collect();
    assert!(
        crash_points.len() >= 4,
        "4-thread run recorded only {} crash-eligible boundaries",
        crash_points.len()
    );
    for q in 0..=3 {
        let k = crash_points[(crash_points.len() - 1) * q / 3];
        let out = h.crash_run(FsKind::Hinfs, &r.script, k, None);
        assert!(
            out.violations.is_empty(),
            "crash at freshly recorded boundary {k}: {:#?}",
            out.violations
        );
        assert!(out.checks > 0, "boundary {k}: oracle checked nothing");
    }
}
