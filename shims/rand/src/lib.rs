//! A minimal, API-compatible stand-in for the `rand` crate, vendored so a
//! sandboxed (offline) build never needs the crates-io registry.
//!
//! Only the surface the workspace uses is provided: `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen_range, gen_bool}` over
//! integer `Range`/`RangeInclusive` bounds. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic per seed, which is all the
//! simulation needs (workloads derive per-actor seeds for reproducibility).

pub mod rngs {
    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding support (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed, per the xoshiro authors'
        // recommendation; guarantees a non-zero state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        rngs::SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    fn from_u64_mod(v: u64, lo: Self, hi_inclusive: Self) -> Self;
    /// `self - 1` (only called on a proven-nonempty exclusive upper bound).
    fn dec(self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_u64_mod(v: u64, lo: Self, hi_inclusive: Self) -> Self {
                // Modulo sampling: a negligible bias is fine for workload
                // generation, and it keeps the shim tiny.
                let span = (hi_inclusive as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (v as u128 % span) as i128) as $t
            }
            fn dec(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range forms accepted by [`Rng::gen_range`]. Blanket impls over `T` (not
/// per-type) so an integer-literal range unifies with the target type the
/// way real rand's does, e.g. `rng.gen_range(0..1000) < some_u32`.
pub trait SampleRange<T> {
    /// Inclusive `(low, high)` bounds; panics on an empty range.
    fn bounds(self) -> (T, T);
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn bounds(self) -> (T, T) {
        assert!(self.start < self.end, "cannot sample empty range");
        (self.start, self.end.dec())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn bounds(self) -> (T, T) {
        assert!(self.start() <= self.end(), "cannot sample empty range");
        (*self.start(), *self.end())
    }
}

/// The user-facing generator trait (the `gen_range`/`gen_bool` subset).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.bounds();
        T::from_u64_mod(self.next_u64(), lo, hi)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        // 53 uniform mantissa bits, like rand's Bernoulli.
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl Rng for rngs::SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::SmallRng::seed_from_u64(7);
        let mut b = rngs::SmallRng::seed_from_u64(7);
        let mut c = rngs::SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rngs::SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w: i32 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let u = r.gen_range(0..1usize);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn bool_probabilities_sane() {
        let mut r = rngs::SmallRng::seed_from_u64(1);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = rngs::SmallRng::seed_from_u64(1);
        let _ = r.gen_range(5u32..5);
    }
}
