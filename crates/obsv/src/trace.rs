//! A fixed-capacity lock-free ring of structured trace events.
//!
//! Writers never block and never allocate: a global ticket counter picks
//! the slot, a per-slot sequence word (seqlock-style, odd while a write is
//! in flight) makes torn slots detectable, and the event payload lives in
//! plain atomic words so readers copy it without undefined behaviour. Under
//! extreme wraparound contention an event can be dropped (counted in
//! [`TraceRing::dropped`]) rather than ever blocking the writer.
//!
//! When disabled — the default — [`TraceRing::emit`] is a single relaxed
//! load and the event-constructing closure is never run, so instrumented
//! hot paths cost nothing measurable.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Number of payload words per event.
const PAYLOAD: usize = 7;

/// One structured event. Every variant is `Copy` and encodes into a fixed
/// number of `u64` payload words, which is what lets the ring stay
/// lock-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A reclaim pass started: `free` blocks left, aiming for `target`.
    ReclaimBegin { free: u64, target: u64 },
    /// The pass ended after evicting `victims` blocks.
    ReclaimEnd { victims: u64, free: u64 },
    /// The pool crossed the `Low_f` watermark on the write path.
    WatermarkLow { free: u64, low: u64 },
    /// A foreground write had to reclaim a block itself.
    ForegroundStall { ino: u64 },
    /// The Buffer Benefit Model changed a block's state, with every
    /// Inequality-1 input that drove the decision: the epoch's cacheline
    /// writes (`n_cw`) and sync flushes (`n_cf`), the latencies the model
    /// compared (`l_dram`, `l_nvmm`), and the age of the epoch itself
    /// (`sync_age_ns`, time since the file's previous synchronization —
    /// the clock the Eager→Lazy decay runs on). Each decision is
    /// replayable from this one record.
    BbmFlip {
        ino: u64,
        iblk: u64,
        to_lazy: bool,
        n_cw: u64,
        n_cf: u64,
        l_dram: u64,
        l_nvmm: u64,
        sync_age_ns: u64,
    },
    /// A journal transaction committed; `log_entries` is the live entry
    /// count (log tail) at commit time.
    JournalCommit { txid: u64, log_entries: u64 },
    /// One periodic writeback pass; `age_flushed` blocks hit the 30 s
    /// dirty-age rule.
    PeriodicPass { age_flushed: u64 },
    /// Journal recovery started on a mount; `gen` is the journal
    /// generation being scanned.
    RecoveryBegin { gen: u64 },
    /// Journal recovery finished: `txs_undone` uncommitted transactions
    /// rolled back using `entries_undone` undo records.
    RecoveryEnd {
        txs_undone: u64,
        entries_undone: u64,
    },
    /// A fault-injection plan fired: `kind` 0 = crash (power loss), 1 =
    /// journal-full, 2 = ENOSPC, 3 = writeback stall; `at_boundary` is the
    /// persistence-boundary count when it fired.
    FaultInjected { kind: u64, at_boundary: u64 },
    /// The online invariant auditor found a broken invariant. `code`
    /// indexes [`crate::AUDIT_INVARIANTS`]; `ino`/`iblk` locate the
    /// offender when the invariant is per-block (0 otherwise); `got` and
    /// `want` are the two sides of the violated relation.
    AuditViolation {
        code: u64,
        ino: u64,
        iblk: u64,
        got: u64,
        want: u64,
    },
    /// A drain made stamped data durable: the causal link from a
    /// foreground op's ring events to the pass that persisted its data.
    /// `row` is the origin lineage row (op discriminant, or the
    /// background row); `seq_lo..=seq_hi` is the origin seq window — the
    /// ring ticket at the ack stamp through the ticket at the drain —
    /// so a dump can stitch the op's full life back together. `lazy`
    /// distinguishes background drains (real lag) from synchronous ones
    /// (lag asserted 0).
    LineageDrained {
        row: u64,
        lazy: bool,
        bytes: u64,
        lag_ns: u64,
        seq_lo: u64,
        seq_hi: u64,
    },
}

impl TraceEvent {
    /// `(tag, payload)` wire form. The tag's low byte is the variant, bit 8
    /// carries `BbmFlip::to_lazy`.
    fn encode(self) -> (u64, [u64; PAYLOAD]) {
        match self {
            TraceEvent::ReclaimBegin { free, target } => (0, [free, target, 0, 0, 0, 0, 0]),
            TraceEvent::ReclaimEnd { victims, free } => (1, [victims, free, 0, 0, 0, 0, 0]),
            TraceEvent::WatermarkLow { free, low } => (2, [free, low, 0, 0, 0, 0, 0]),
            TraceEvent::ForegroundStall { ino } => (3, [ino, 0, 0, 0, 0, 0, 0]),
            TraceEvent::BbmFlip {
                ino,
                iblk,
                to_lazy,
                n_cw,
                n_cf,
                l_dram,
                l_nvmm,
                sync_age_ns,
            } => (
                4 | (u64::from(to_lazy) << 8),
                [ino, iblk, n_cw, n_cf, l_dram, l_nvmm, sync_age_ns],
            ),
            TraceEvent::JournalCommit { txid, log_entries } => {
                (5, [txid, log_entries, 0, 0, 0, 0, 0])
            }
            TraceEvent::PeriodicPass { age_flushed } => (6, [age_flushed, 0, 0, 0, 0, 0, 0]),
            TraceEvent::RecoveryBegin { gen } => (7, [gen, 0, 0, 0, 0, 0, 0]),
            TraceEvent::RecoveryEnd {
                txs_undone,
                entries_undone,
            } => (8, [txs_undone, entries_undone, 0, 0, 0, 0, 0]),
            TraceEvent::FaultInjected { kind, at_boundary } => {
                (9, [kind, at_boundary, 0, 0, 0, 0, 0])
            }
            TraceEvent::AuditViolation {
                code,
                ino,
                iblk,
                got,
                want,
            } => (10, [code, ino, iblk, got, want, 0, 0]),
            TraceEvent::LineageDrained {
                row,
                lazy,
                bytes,
                lag_ns,
                seq_lo,
                seq_hi,
            } => (
                11 | (u64::from(lazy) << 8),
                [row, bytes, lag_ns, seq_lo, seq_hi, 0, 0],
            ),
        }
    }

    fn decode(tag: u64, p: [u64; PAYLOAD]) -> Option<TraceEvent> {
        Some(match tag & 0xff {
            0 => TraceEvent::ReclaimBegin {
                free: p[0],
                target: p[1],
            },
            1 => TraceEvent::ReclaimEnd {
                victims: p[0],
                free: p[1],
            },
            2 => TraceEvent::WatermarkLow {
                free: p[0],
                low: p[1],
            },
            3 => TraceEvent::ForegroundStall { ino: p[0] },
            4 => TraceEvent::BbmFlip {
                ino: p[0],
                iblk: p[1],
                to_lazy: tag & (1 << 8) != 0,
                n_cw: p[2],
                n_cf: p[3],
                l_dram: p[4],
                l_nvmm: p[5],
                sync_age_ns: p[6],
            },
            5 => TraceEvent::JournalCommit {
                txid: p[0],
                log_entries: p[1],
            },
            6 => TraceEvent::PeriodicPass { age_flushed: p[0] },
            7 => TraceEvent::RecoveryBegin { gen: p[0] },
            8 => TraceEvent::RecoveryEnd {
                txs_undone: p[0],
                entries_undone: p[1],
            },
            9 => TraceEvent::FaultInjected {
                kind: p[0],
                at_boundary: p[1],
            },
            10 => TraceEvent::AuditViolation {
                code: p[0],
                ino: p[1],
                iblk: p[2],
                got: p[3],
                want: p[4],
            },
            11 => TraceEvent::LineageDrained {
                row: p[0],
                lazy: tag & (1 << 8) != 0,
                bytes: p[1],
                lag_ns: p[2],
                seq_lo: p[3],
                seq_hi: p[4],
            },
            _ => return None,
        })
    }
}

impl TraceEvent {
    /// Stable dotted kind label, shared by the human dump and the JSONL
    /// export.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::ReclaimBegin { .. } => "reclaim.begin",
            TraceEvent::ReclaimEnd { .. } => "reclaim.end",
            TraceEvent::WatermarkLow { .. } => "watermark.low",
            TraceEvent::ForegroundStall { .. } => "foreground.stall",
            TraceEvent::BbmFlip { .. } => "bbm.flip",
            TraceEvent::JournalCommit { .. } => "journal.commit",
            TraceEvent::PeriodicPass { .. } => "writeback.periodic",
            TraceEvent::RecoveryBegin { .. } => "recovery.begin",
            TraceEvent::RecoveryEnd { .. } => "recovery.end",
            TraceEvent::FaultInjected { .. } => "fault.injected",
            TraceEvent::AuditViolation { .. } => "audit.violation",
            TraceEvent::LineageDrained { .. } => "lineage.drained",
        }
    }

    /// `(name, value)` payload fields in a stable order (`to_lazy` is
    /// 0/1).
    fn fields(&self) -> Vec<(&'static str, u64)> {
        match *self {
            TraceEvent::ReclaimBegin { free, target } => vec![("free", free), ("target", target)],
            TraceEvent::ReclaimEnd { victims, free } => vec![("victims", victims), ("free", free)],
            TraceEvent::WatermarkLow { free, low } => vec![("free", free), ("low", low)],
            TraceEvent::ForegroundStall { ino } => vec![("ino", ino)],
            TraceEvent::BbmFlip {
                ino,
                iblk,
                to_lazy,
                n_cw,
                n_cf,
                l_dram,
                l_nvmm,
                sync_age_ns,
            } => vec![
                ("ino", ino),
                ("iblk", iblk),
                ("to_lazy", u64::from(to_lazy)),
                ("n_cw", n_cw),
                ("n_cf", n_cf),
                ("l_dram", l_dram),
                ("l_nvmm", l_nvmm),
                ("sync_age_ns", sync_age_ns),
            ],
            TraceEvent::JournalCommit { txid, log_entries } => {
                vec![("txid", txid), ("log_entries", log_entries)]
            }
            TraceEvent::PeriodicPass { age_flushed } => vec![("age_flushed", age_flushed)],
            TraceEvent::RecoveryBegin { gen } => vec![("gen", gen)],
            TraceEvent::RecoveryEnd {
                txs_undone,
                entries_undone,
            } => vec![
                ("txs_undone", txs_undone),
                ("entries_undone", entries_undone),
            ],
            TraceEvent::FaultInjected { kind, at_boundary } => {
                vec![("kind", kind), ("at_boundary", at_boundary)]
            }
            TraceEvent::AuditViolation {
                code,
                ino,
                iblk,
                got,
                want,
            } => vec![
                ("code", code),
                ("ino", ino),
                ("iblk", iblk),
                ("got", got),
                ("want", want),
            ],
            TraceEvent::LineageDrained {
                row,
                lazy,
                bytes,
                lag_ns,
                seq_lo,
                seq_hi,
            } => vec![
                ("row", row),
                ("lazy", u64::from(lazy)),
                ("bytes", bytes),
                ("lag_ns", lag_ns),
                ("seq_lo", seq_lo),
                ("seq_hi", seq_hi),
            ],
        }
    }

    /// Rebuilds an event from its kind label and named fields (the
    /// inverse of [`TraceEvent::fields`]).
    fn from_fields(kind: &str, get: impl Fn(&str) -> Option<u64>) -> Option<TraceEvent> {
        Some(match kind {
            "reclaim.begin" => TraceEvent::ReclaimBegin {
                free: get("free")?,
                target: get("target")?,
            },
            "reclaim.end" => TraceEvent::ReclaimEnd {
                victims: get("victims")?,
                free: get("free")?,
            },
            "watermark.low" => TraceEvent::WatermarkLow {
                free: get("free")?,
                low: get("low")?,
            },
            "foreground.stall" => TraceEvent::ForegroundStall { ino: get("ino")? },
            "bbm.flip" => TraceEvent::BbmFlip {
                ino: get("ino")?,
                iblk: get("iblk")?,
                to_lazy: get("to_lazy")? != 0,
                n_cw: get("n_cw")?,
                n_cf: get("n_cf")?,
                l_dram: get("l_dram")?,
                l_nvmm: get("l_nvmm")?,
                sync_age_ns: get("sync_age_ns")?,
            },
            "journal.commit" => TraceEvent::JournalCommit {
                txid: get("txid")?,
                log_entries: get("log_entries")?,
            },
            "writeback.periodic" => TraceEvent::PeriodicPass {
                age_flushed: get("age_flushed")?,
            },
            "recovery.begin" => TraceEvent::RecoveryBegin { gen: get("gen")? },
            "recovery.end" => TraceEvent::RecoveryEnd {
                txs_undone: get("txs_undone")?,
                entries_undone: get("entries_undone")?,
            },
            "fault.injected" => TraceEvent::FaultInjected {
                kind: get("kind")?,
                at_boundary: get("at_boundary")?,
            },
            "audit.violation" => TraceEvent::AuditViolation {
                code: get("code")?,
                ino: get("ino")?,
                iblk: get("iblk")?,
                got: get("got")?,
                want: get("want")?,
            },
            "lineage.drained" => TraceEvent::LineageDrained {
                row: get("row")?,
                lazy: get("lazy")? != 0,
                bytes: get("bytes")?,
                lag_ns: get("lag_ns")?,
                seq_lo: get("seq_lo")?,
                seq_hi: get("seq_hi")?,
            },
            _ => return None,
        })
    }
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            TraceEvent::ReclaimBegin { free, target } => {
                write!(f, "reclaim.begin free={free} target={target}")
            }
            TraceEvent::ReclaimEnd { victims, free } => {
                write!(f, "reclaim.end victims={victims} free={free}")
            }
            TraceEvent::WatermarkLow { free, low } => {
                write!(f, "watermark.low free={free} low={low}")
            }
            TraceEvent::ForegroundStall { ino } => write!(f, "foreground.stall ino={ino}"),
            TraceEvent::BbmFlip {
                ino,
                iblk,
                to_lazy,
                n_cw,
                n_cf,
                l_dram,
                l_nvmm,
                sync_age_ns,
            } => write!(
                f,
                "bbm.flip ino={ino} iblk={iblk} to={} n_cw={n_cw} n_cf={n_cf} \
                 l_dram={l_dram} l_nvmm={l_nvmm} sync_age_ns={sync_age_ns}",
                if to_lazy { "lazy" } else { "eager" }
            ),
            TraceEvent::JournalCommit { txid, log_entries } => {
                write!(f, "journal.commit txid={txid} log_entries={log_entries}")
            }
            TraceEvent::PeriodicPass { age_flushed } => {
                write!(f, "writeback.periodic age_flushed={age_flushed}")
            }
            TraceEvent::RecoveryBegin { gen } => write!(f, "recovery.begin gen={gen}"),
            TraceEvent::RecoveryEnd {
                txs_undone,
                entries_undone,
            } => write!(
                f,
                "recovery.end txs_undone={txs_undone} entries_undone={entries_undone}"
            ),
            TraceEvent::FaultInjected { kind, at_boundary } => {
                let label = match kind {
                    0 => "crash",
                    1 => "journal_full",
                    2 => "enospc",
                    3 => "writeback_stall",
                    _ => "unknown",
                };
                write!(f, "fault.injected kind={label} at_boundary={at_boundary}")
            }
            TraceEvent::AuditViolation {
                code,
                ino,
                iblk,
                got,
                want,
            } => write!(
                f,
                "audit.violation invariant={} ino={ino} iblk={iblk} got={got} want={want}",
                crate::snapshot::invariant_label(code)
            ),
            TraceEvent::LineageDrained {
                row,
                lazy,
                bytes,
                lag_ns,
                seq_lo,
                seq_hi,
            } => write!(
                f,
                "lineage.drained origin={} kind={} bytes={bytes} lag_ns={lag_ns} seq=[{seq_lo}, {seq_hi}]",
                crate::span::row_label((row as usize).min(crate::BG_ROW)),
                if lazy { "lazy" } else { "sync" }
            ),
        }
    }
}

/// An event as read back from the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Global emit order (0-based ticket).
    pub seq: u64,
    /// Simulated time the event was emitted at.
    pub at_ns: u64,
    /// The event itself.
    pub ev: TraceEvent,
}

impl std::fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:>12} ns] #{:<6} {}", self.at_ns, self.seq, self.ev)
    }
}

impl TraceRecord {
    /// One flat JSON object: `{"seq":..,"at_ns":..,"kind":"..",<fields>}`.
    /// All values are unsigned integers except `kind`; `to_lazy` is 0/1.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"seq\":{},\"at_ns\":{},\"kind\":\"{}\"",
            self.seq,
            self.at_ns,
            self.ev.kind()
        );
        for (k, v) in self.ev.fields() {
            out.push_str(&format!(",\"{k}\":{v}"));
        }
        out.push('}');
        out
    }

    /// Parses a line produced by [`TraceRecord::to_json`]. Returns `None`
    /// on malformed input or an unknown kind.
    pub fn from_json(line: &str) -> Option<TraceRecord> {
        let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
        let mut kind = None;
        let mut nums: Vec<(String, u64)> = Vec::new();
        for part in body.split(',') {
            let (k, v) = part.split_once(':')?;
            let k = k.trim().strip_prefix('"')?.strip_suffix('"')?;
            let v = v.trim();
            if let Some(s) = v.strip_prefix('"') {
                if k == "kind" {
                    kind = Some(s.strip_suffix('"')?.to_string());
                }
            } else {
                nums.push((k.to_string(), v.parse().ok()?));
            }
        }
        let get = |name: &str| nums.iter().find(|(k, _)| k == name).map(|&(_, v)| v);
        Some(TraceRecord {
            seq: get("seq")?,
            at_ns: get("at_ns")?,
            ev: TraceEvent::from_fields(&kind?, get)?,
        })
    }
}

/// One ring slot. `seq == 0` means never written; an odd value means a
/// write is in flight; `2 * (ticket + 1)` means the slot holds the event
/// emitted with that ticket.
struct Slot {
    seq: AtomicU64,
    tag: AtomicU64,
    at_ns: AtomicU64,
    payload: [AtomicU64; PAYLOAD],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            tag: AtomicU64::new(0),
            at_ns: AtomicU64::new(0),
            payload: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// One per-thread-shard ring segment: its own slot cursor, so threads in
/// different segments never race on slot placement.
struct Segment {
    cursor: AtomicU64,
    slots: Box<[Slot]>,
}

impl Segment {
    fn new(capacity: usize) -> Segment {
        Segment {
            cursor: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Slot::new()).collect(),
        }
    }
}

/// The ring. See the module docs for the concurrency protocol.
///
/// Storage is split into [`crate::COLLECTION_SHARDS`] per-thread-shard
/// segments, each holding `capacity` slots: a writer picks its segment
/// by thread ordinal and a slot by the segment's own cursor, so
/// concurrent writers on different threads never contend for a slot.
/// Global emit order is still a single ticket counter, stored in each
/// slot's sequence word — [`TraceRing::tail`] merges the segments by
/// sequence at read time. A single-threaded writer always lands in
/// segment 0, making its retention behaviour identical to an unsharded
/// ring of the same capacity.
pub struct TraceRing {
    enabled: AtomicBool,
    next: AtomicU64,
    dropped: AtomicU64,
    segments: Box<[Segment]>,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("enabled", &self.enabled())
            .field("capacity", &self.capacity())
            .field("segments", &self.segments.len())
            .field("emitted", &self.emitted())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl TraceRing {
    /// A disabled ring holding up to `capacity` events *per segment*.
    pub fn new(capacity: usize) -> TraceRing {
        assert!(capacity > 0, "trace ring needs at least one slot");
        TraceRing {
            enabled: AtomicBool::new(false),
            next: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            segments: (0..crate::COLLECTION_SHARDS)
                .map(|_| Segment::new(capacity))
                .collect(),
        }
    }

    /// Turns event capture on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether events are being captured. Use to gate work that only
    /// exists to build an event (e.g. taking a lock to read a gauge).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Emits an event if capture is on. `ev` is only evaluated when it is,
    /// so a disabled ring costs one relaxed load per call site.
    #[inline]
    pub fn emit(&self, at_ns: u64, ev: impl FnOnce() -> TraceEvent) {
        if self.enabled() {
            self.push(at_ns, ev());
        }
    }

    /// Unconditionally records an event (even while disabled).
    pub fn push(&self, at_ns: u64, ev: TraceEvent) {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let seg = &self.segments[crate::thread_ordinal() % self.segments.len()];
        let idx = seg.cursor.fetch_add(1, Ordering::Relaxed) % seg.slots.len() as u64;
        let slot = &seg.slots[idx as usize];
        let cur = slot.seq.load(Ordering::Relaxed);
        if cur % 2 == 1
            || slot
                .seq
                .compare_exchange(cur, cur + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            // Another writer lapped us onto the same slot mid-write; a
            // trace ring prefers dropping one event over ever blocking.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let (tag, payload) = ev.encode();
        slot.tag.store(tag, Ordering::Relaxed);
        slot.at_ns.store(at_ns, Ordering::Relaxed);
        for (w, v) in slot.payload.iter().zip(payload) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(2 * (ticket + 1), Ordering::Release);
    }

    /// Total events offered to the ring (including dropped ones).
    pub fn emitted(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Events lost to slot contention.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Slot count per segment (the retention window of one thread
    /// shard).
    pub fn capacity(&self) -> usize {
        self.segments[0].slots.len()
    }

    /// The most recent `n` retained events as JSONL, oldest first: one
    /// [`TraceRecord::to_json`] object per line.
    pub fn tail_jsonl(&self, n: usize) -> String {
        let mut out = String::new();
        for rec in self.tail(n) {
            out.push_str(&rec.to_json());
            out.push('\n');
        }
        out
    }

    /// The most recent `n` events, oldest first, merged across every
    /// segment by global sequence. Concurrent writers may cause
    /// individual slots to be skipped, never torn reads.
    pub fn tail(&self, n: usize) -> Vec<TraceRecord> {
        let mut out: Vec<TraceRecord> = Vec::with_capacity(self.capacity());
        for slot in self.segments.iter().flat_map(|seg| seg.slots.iter()) {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue;
            }
            let tag = slot.tag.load(Ordering::Relaxed);
            let at_ns = slot.at_ns.load(Ordering::Relaxed);
            let payload = std::array::from_fn(|i| slot.payload[i].load(Ordering::Relaxed));
            std::sync::atomic::fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue; // overwritten while reading
            }
            if let Some(ev) = TraceEvent::decode(tag, payload) {
                out.push(TraceRecord {
                    seq: s1 / 2 - 1,
                    at_ns,
                    ev,
                });
            }
        }
        out.sort_by_key(|r| r.seq);
        if out.len() > n {
            out.drain(..out.len() - n);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<TraceEvent> {
        vec![
            TraceEvent::ReclaimBegin {
                free: 3,
                target: 51,
            },
            TraceEvent::ReclaimEnd {
                victims: 48,
                free: 51,
            },
            TraceEvent::WatermarkLow { free: 11, low: 12 },
            TraceEvent::ForegroundStall { ino: 42 },
            TraceEvent::BbmFlip {
                ino: 7,
                iblk: 9,
                to_lazy: true,
                n_cw: 120,
                n_cf: 8,
                l_dram: 40,
                l_nvmm: 200,
                sync_age_ns: 1_500_000,
            },
            TraceEvent::BbmFlip {
                ino: 7,
                iblk: 9,
                to_lazy: false,
                n_cw: 8,
                n_cf: 8,
                l_dram: 40,
                l_nvmm: 200,
                sync_age_ns: 9_000_000_000,
            },
            TraceEvent::JournalCommit {
                txid: 77,
                log_entries: 5,
            },
            TraceEvent::PeriodicPass { age_flushed: 2 },
            TraceEvent::RecoveryBegin { gen: 4 },
            TraceEvent::RecoveryEnd {
                txs_undone: 1,
                entries_undone: 3,
            },
            TraceEvent::FaultInjected {
                kind: 2,
                at_boundary: 17,
            },
            TraceEvent::AuditViolation {
                code: 2,
                ino: 0,
                iblk: 0,
                got: 63,
                want: 64,
            },
            TraceEvent::LineageDrained {
                row: 3,
                lazy: true,
                bytes: 4096,
                lag_ns: 5_000_000_000,
                seq_lo: 17,
                seq_hi: 29,
            },
            TraceEvent::LineageDrained {
                row: 4,
                lazy: false,
                bytes: 64,
                lag_ns: 0,
                seq_lo: 30,
                seq_hi: 30,
            },
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for ev in all_variants() {
            let (tag, payload) = ev.encode();
            assert_eq!(TraceEvent::decode(tag, payload), Some(ev));
        }
        assert_eq!(TraceEvent::decode(0xff, [0; PAYLOAD]), None);
    }

    #[test]
    fn disabled_ring_skips_closure() {
        let ring = TraceRing::new(4);
        let mut called = false;
        ring.emit(0, || {
            called = true;
            TraceEvent::ForegroundStall { ino: 1 }
        });
        assert!(!called);
        assert_eq!(ring.emitted(), 0);
        assert!(ring.tail(10).is_empty());
    }

    #[test]
    fn wraparound_keeps_the_newest_events() {
        let ring = TraceRing::new(8);
        ring.set_enabled(true);
        for i in 0..20u64 {
            ring.emit(i * 10, || TraceEvent::ForegroundStall { ino: i });
        }
        let tail = ring.tail(8);
        assert_eq!(tail.len(), 8);
        let seqs: Vec<u64> = tail.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<_>>());
        for r in &tail {
            assert_eq!(r.ev, TraceEvent::ForegroundStall { ino: r.seq });
            assert_eq!(r.at_ns, r.seq * 10);
        }
        // A shorter tail keeps only the newest.
        assert_eq!(ring.tail(3).first().unwrap().seq, 17);
        assert_eq!(ring.emitted(), 20);
    }

    #[test]
    fn jsonl_roundtrips_every_variant() {
        // Through the ring end-to-end, covering the PR 2 fault/recovery
        // events alongside the writeback/BBM ones.
        let ring = TraceRing::new(32);
        ring.set_enabled(true);
        let evs = all_variants();
        assert!(evs.iter().any(|e| e.kind() == "fault.injected"));
        assert!(evs.iter().any(|e| e.kind() == "recovery.begin"));
        assert!(evs.iter().any(|e| e.kind() == "recovery.end"));
        for (i, ev) in evs.iter().enumerate() {
            ring.push(i as u64 * 100, *ev);
        }
        let jsonl = ring.tail_jsonl(evs.len());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), evs.len());
        for (i, line) in lines.iter().enumerate() {
            // Structurally flat JSON: one object, no nesting, kind field.
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert_eq!(line.matches('{').count(), 1);
            let rec =
                TraceRecord::from_json(line).unwrap_or_else(|| panic!("unparseable line {line}"));
            assert_eq!(rec.seq, i as u64);
            assert_eq!(rec.at_ns, i as u64 * 100);
            assert_eq!(rec.ev, evs[i], "round-trip mismatch on {line}");
        }
        // Malformed input is rejected, not mis-parsed.
        for bad in [
            "",
            "{}",
            "not json",
            "{\"seq\":1,\"at_ns\":2,\"kind\":\"no.such.kind\"}",
            "{\"seq\":1,\"at_ns\":2,\"kind\":\"foreground.stall\"}",
        ] {
            assert!(TraceRecord::from_json(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn display_renders_every_variant() {
        for ev in all_variants() {
            let s = format!("{ev}");
            assert!(!s.is_empty());
        }
        let rec = TraceRecord {
            seq: 3,
            at_ns: 1234,
            ev: TraceEvent::PeriodicPass { age_flushed: 0 },
        };
        let s = format!("{rec}");
        assert!(
            s.contains("1234") && s.contains("writeback.periodic"),
            "{s}"
        );
    }
}
