//! Shared experiment plumbing: scaling, system construction, population
//! and measured runs.

use std::sync::Arc;

use nvmm::CostModel;
use workloads::filebench::{FilebenchParams, Fileserver, Varmail, Webproxy, Webserver};
use workloads::fileset::{Fileset, FilesetSpec};
use workloads::runner::{Actor, RunLimit, Runner};
use workloads::setups::{build, remount_with, System, SystemConfig, SystemKind};
use workloads::RunReport;

/// Experiment scaling. The paper ran 5 GB datasets for 60 s on a 16 GB
/// machine; the defaults here shrink everything by ~100× while keeping the
/// ratios that drive the results (buffer ≈ 0.4× dataset like 2 GB/5 GB,
/// page cache ≈ 0.6× dataset like 3 GB/5 GB).
#[derive(Debug, Clone)]
pub struct Scale {
    /// Files in the preallocated set.
    pub nfiles: usize,
    /// Mean file size in bytes.
    pub mean_file: usize,
    /// Files per directory.
    pub dir_width: usize,
    /// Measured run length in virtual milliseconds.
    pub duration_ms: u64,
    /// Device capacity.
    pub device_bytes: usize,
    /// HiNFS DRAM buffer as a fraction of the dataset.
    pub buffer_frac: f64,
    /// ext page cache as a fraction of the dataset.
    pub cache_frac: f64,
    /// Workload threads (actors) unless the figure sweeps them.
    pub threads: usize,
    /// Mean I/O (chunk) size.
    pub iosize: usize,
    /// Mean append size.
    pub append: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            nfiles: 384,
            mean_file: 64 << 10,
            dir_width: 20,
            duration_ms: 800,
            device_bytes: 256 << 20,
            buffer_frac: 0.4,
            cache_frac: 0.6,
            // Two worker threads: the regime of the paper's headline Fig 7
            // ratios. (At 4+ threads PMFS is already NVMM-bandwidth-bound —
            // 4 × 320 MB/s > 1 GB/s — and every system converges toward the
            // bandwidth ceiling, which is what Fig 8's 10-thread points
            // show.)
            threads: 2,
            iosize: 1 << 20,
            append: 16 << 10,
        }
    }
}

impl Scale {
    /// A much smaller scale for smoke tests.
    pub fn quick() -> Scale {
        Scale {
            nfiles: 64,
            mean_file: 16 << 10,
            duration_ms: 120,
            device_bytes: 96 << 20,
            // The DRAM buffer is sharded by inode (ino % NSHARDS), so a
            // single file can only ever occupy its shard's 1/8 slice of
            // the pool. At this tiny dataset the paper's 0.4 fraction
            // would leave a slice smaller than one iosize write and every
            // large write would stall on writeback; 2.0 keeps each slice
            // comfortably above the per-op working set. The default scale
            // keeps the paper's 0.4 ratio — its slices are big enough.
            buffer_frac: 2.0,
            threads: 2,
            iosize: 64 << 10,
            append: 4 << 10,
            ..Scale::default()
        }
    }

    /// Dataset bytes of the filebench set.
    pub fn dataset_bytes(&self) -> usize {
        self.nfiles * self.mean_file
    }

    /// HiNFS buffer bytes at `buffer_frac`.
    pub fn buffer_bytes(&self) -> usize {
        ((self.dataset_bytes() as f64 * self.buffer_frac) as usize).max(256 << 10)
    }

    /// ext page cache pages at `cache_frac`.
    pub fn cache_pages(&self) -> usize {
        (((self.dataset_bytes() as f64 * self.cache_frac) as usize) / 4096).max(64)
    }

    /// Filebench parameters at this scale.
    pub fn filebench_params(&self) -> FilebenchParams {
        FilebenchParams {
            iosize: self.iosize,
            append_size: self.append,
        }
    }

    /// System sizing at this scale for the given cost model.
    pub fn system_config(&self, cost: CostModel) -> SystemConfig {
        SystemConfig {
            device_bytes: self.device_bytes,
            cost,
            buffer_bytes: self.buffer_bytes(),
            cache_pages: self.cache_pages(),
            journal_blocks: 2048,
            inode_count: 65536,
            ..SystemConfig::default()
        }
    }

    /// The set specification (under `/data`).
    pub fn fileset_spec(&self) -> FilesetSpec {
        FilesetSpec::new("/data", self.nfiles, self.dir_width, self.mean_file)
    }
}

/// The four filebench personalities by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Personality {
    Fileserver,
    Webserver,
    Webproxy,
    Varmail,
}

impl Personality {
    /// All four, in the paper's order.
    pub const ALL: [Personality; 4] = [
        Personality::Fileserver,
        Personality::Webserver,
        Personality::Webproxy,
        Personality::Varmail,
    ];

    /// Label.
    pub fn label(self) -> &'static str {
        match self {
            Personality::Fileserver => "fileserver",
            Personality::Webserver => "webserver",
            Personality::Webproxy => "webproxy",
            Personality::Varmail => "varmail",
        }
    }

    /// Builds `threads` actors of this personality over a shared set.
    pub fn actors(
        self,
        set: &Arc<Fileset>,
        params: FilebenchParams,
        threads: usize,
    ) -> Vec<Box<dyn Actor>> {
        (0..threads)
            .map(|i| -> Box<dyn Actor> {
                match self {
                    Personality::Fileserver => Box::new(Fileserver::new(set.clone(), params)),
                    Personality::Webserver => Box::new(Webserver::new(set.clone(), params, i)),
                    Personality::Webproxy => Box::new(Webproxy::new(set.clone(), params, i)),
                    Personality::Varmail => Box::new(Varmail::new(set.clone(), params)),
                }
            })
            .collect()
    }
}

/// Builds a system, populates the filebench set through it, remounts (cold
/// caches, like clearing the OS page cache) and rebases the timeline.
pub fn prepared_system(kind: SystemKind, scale: &Scale, cost: CostModel) -> (System, Arc<Fileset>) {
    let cfg = scale.system_config(cost);
    let sys = build(kind, &cfg).expect("build system");
    let set = Fileset::populate(&*sys.fs, scale.fileset_spec(), 0xF11E).expect("populate fileset");
    sys.fs.unmount().expect("unmount after populate");
    let System { kind, dev, env, .. } = sys;
    let sys = remount_with(kind, dev, env, &cfg).expect("remount");
    sys.env.rebase();
    (sys, set)
}

/// Runs `threads` actors of a personality for the scaled duration.
pub fn run_personality(
    sys: &System,
    set: &Arc<Fileset>,
    p: Personality,
    threads: usize,
    scale: &Scale,
) -> RunReport {
    let actors = p.actors(set, scale.filebench_params(), threads);
    Runner::new(sys.env.clone(), sys.fs.clone())
        .with_device(sys.dev.clone())
        .run(actors, RunLimit::duration_ms(scale.duration_ms), 0xBEEF)
}

/// Convenience: build + populate + run one personality, returning the
/// report (used by Fig 7/10/11 sweeps).
pub fn filebench_once(
    kind: SystemKind,
    p: Personality,
    threads: usize,
    scale: &Scale,
    cost: CostModel,
) -> RunReport {
    let (sys, set) = prepared_system(kind, scale, cost);
    let report = run_personality(&sys, &set, p, threads, scale);
    let _ = sys.fs.unmount();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_ratios() {
        let s = Scale::default();
        assert_eq!(s.dataset_bytes(), 384 * (64 << 10));
        assert!(s.buffer_bytes() < s.dataset_bytes());
        assert!(s.cache_pages() * 4096 < s.dataset_bytes());
    }

    #[test]
    fn quick_filebench_on_two_systems() {
        let scale = Scale::quick();
        let r_pmfs = filebench_once(
            SystemKind::Pmfs,
            Personality::Fileserver,
            1,
            &scale,
            CostModel::default(),
        );
        let r_hinfs = filebench_once(
            SystemKind::Hinfs,
            Personality::Fileserver,
            1,
            &scale,
            CostModel::default(),
        );
        assert!(r_pmfs.metrics.steps > 0);
        assert!(r_hinfs.metrics.steps > 0);
        assert!(
            r_hinfs.throughput() > r_pmfs.throughput(),
            "HiNFS beats PMFS on fileserver ({:.0} vs {:.0} ops/s)",
            r_hinfs.throughput(),
            r_pmfs.throughput()
        );
    }
}
