//! Coverage-guided scenario fuzzer over every file system in the suite:
//!
//! ```text
//! cargo run --release --example fuzz_fs -- [--seed N] [--iters N] \
//!     [--crash-points N] [--self-test] [--write-repros DIR]
//! ```
//!
//! The campaign seeds a corpus of scripted runs (the same shape the
//! `tests/` sweeps replay), then mutates it under coverage feedback:
//! every case runs the three-way differential (HiNFS, PMFS, EXT4 against
//! the shared reference model in `faultfs::model`), and cases that earn
//! new coverage points — trace-ring event kinds, contention-site first
//! hits, invariant-auditor state classes, crash shapes, per-op outcome
//! classes — also get a bounded crash-schedule sweep judged by the
//! durability oracle. Any violation is auto-shrunk (delta-debugging over
//! ops, then crash points) into a replayable reproducer.
//!
//! Everything is derived from `--seed` on the virtual clock, so stdout is
//! byte-identical across runs with the same flags — `scripts/fuzz_soak.sh`
//! diffs two runs to prove it. The campaign must also reach strictly more
//! distinct coverage points than replaying the seed corpus alone; the
//! process exits non-zero otherwise.
//!
//! `--self-test` is the negative gate: it plants a deliberate bug in the
//! reference model (`ModelBug::TruncateExtendLost`), demands the campaign
//! catch it within the iteration budget, and prints the shrunk fixed-point
//! reproducer of a seeded known-bad script so the soak script can diff it
//! against the committed fixture in `tests/repro/`.
//!
//! Exit codes: 0 clean, 1 usage/self-test failure, 2 real violations
//! found (reproducers printed and, with `--write-repros`, written out).

use faultfs::fuzz::{known_bad_script, shrink_differential};
use faultfs::{FsKind, FuzzConfig, Fuzzer, Harness, ModelBug, Repro};

fn usage() -> ! {
    eprintln!(
        "usage: fuzz_fs [--seed N] [--iters N] [--crash-points N] [--self-test] \
         [--write-repros DIR]"
    );
    std::process::exit(1);
}

fn main() {
    let mut cfg = FuzzConfig::default();
    let mut self_test = false;
    let mut repro_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let num = |a: Option<String>| -> u64 {
            a.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
        };
        match arg.as_str() {
            "--seed" => cfg.seed = num(args.next()),
            "--iters" => cfg.iterations = num(args.next()) as usize,
            "--crash-points" => cfg.crash_points = num(args.next()) as usize,
            "--self-test" => self_test = true,
            "--write-repros" => repro_dir = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    if self_test {
        run_self_test(cfg);
        return;
    }

    println!(
        "== fuzz campaign: seed={:#x} seeds={} iters={} crash_points<={} ==",
        cfg.seed, cfg.seed_scripts, cfg.iterations, cfg.crash_points
    );
    let out = Fuzzer::new(cfg).run();
    println!("baseline (seed corpus replay): {}", out.baseline.summary());
    println!("campaign: {}", out.coverage.summary());
    println!(
        "corpus={} diff_legs={} crash_runs={} oracle_checks={}",
        out.corpus_size, out.diff_legs, out.crash_runs, out.oracle_checks
    );
    println!("coverage digest: {:016x}", out.coverage.digest());
    let gained = out.coverage.len() - out.baseline.len();
    println!(
        "coverage gain: +{gained} points over the scripted baseline ({} -> {})",
        out.baseline.len(),
        out.coverage.len()
    );
    if gained == 0 {
        eprintln!("FAIL: the campaign earned no coverage beyond the seed corpus");
        std::process::exit(1);
    }
    if out.repros.is_empty() {
        println!("no violations: every case agreed with the model and the oracle");
        return;
    }
    eprintln!("FOUND {} violation reproducer(s):", out.repros.len());
    for r in &out.repros {
        eprintln!("---\n{}", r.to_text());
        if let Some(dir) = &repro_dir {
            let path = format!("{dir}/{}.repro", r.name);
            std::fs::write(&path, r.to_text()).expect("write repro");
            eprintln!("wrote {path}");
        }
    }
    std::process::exit(2);
}

fn run_self_test(mut cfg: FuzzConfig) {
    let bug = ModelBug::TruncateExtendLost { threshold: 16_384 };
    cfg.bug = Some(bug);
    println!(
        "== negative self-test: planted {:?}, seed={:#x}, budget {} iters ==",
        bug, cfg.seed, cfg.iterations
    );

    // 1. The campaign itself must catch the planted model bug within its
    //    iteration budget and shrink it to committed-quality reproducers.
    let out = Fuzzer::new(cfg).run();
    if out.repros.is_empty() {
        eprintln!("FAIL: campaign did not catch the planted model bug in budget");
        std::process::exit(1);
    }
    println!(
        "campaign caught the planted bug: {} reproducer(s), largest {} ops",
        out.repros.len(),
        out.repros.iter().map(|r| r.script.ops.len()).max().unwrap()
    );
    for r in &out.repros {
        if r.script.ops.len() > 3 {
            eprintln!(
                "FAIL: reproducer {} did not shrink (still {} ops)",
                r.name,
                r.script.ops.len()
            );
            std::process::exit(1);
        }
    }

    // 2. Shrinker fixed point: the seeded known-bad script must reduce to
    //    the same byte-identical reproducer every run — the soak script
    //    diffs the text below against tests/repro/selftest_truncate_extend.repro.
    let h = Harness::new();
    let ops = known_bad_script();
    let repro: Repro = shrink_differential(&h, FsKind::Pmfs, &ops, Some(bug), 400)
        .expect("the known-bad script must fail the differential");
    if repro.script.ops.len() > 2 {
        eprintln!(
            "FAIL: known-bad script shrank to {} ops, want <= 2",
            repro.script.ops.len()
        );
        std::process::exit(1);
    }
    let again = shrink_differential(&h, FsKind::Pmfs, &repro.script.ops, Some(bug), 400)
        .expect("the shrunk script must still fail");
    if again.script.ops != repro.script.ops {
        eprintln!("FAIL: shrinking is not a fixed point");
        std::process::exit(1);
    }
    println!(
        "shrunk fixed-point reproducer ({} ops):",
        repro.script.ops.len()
    );
    println!("--- repro ---");
    print!("{}", repro.to_text());
    println!("--- end repro ---");
    println!("self-test OK");
}
