//! A web-proxy cache server on three file systems.
//!
//! The paper's motivating scenario: a service with strong access locality
//! and many short-lived files. HiNFS absorbs the writes in DRAM and most
//! deleted objects never touch NVMM at all.
//!
//! ```text
//! cargo run --release --example webproxy_sim
//! ```

use std::sync::Arc;

use hinfs_suite::prelude::*;
use hinfs_suite::workloads::filebench::{FilebenchParams, Webproxy};
use hinfs_suite::workloads::fileset::{Fileset, FilesetSpec};
use hinfs_suite::workloads::setups;

fn main() {
    println!("webproxy: 1 s simulated, 2 worker threads, 12 MiB object set\n");
    println!(
        "{:<14} {:>12} {:>14} {:>16}",
        "system", "requests/s", "NVMM-write-MiB", "dropped-dirty-blk"
    );
    for kind in [SystemKind::Pmfs, SystemKind::Ext4Bd, SystemKind::Hinfs] {
        let cfg = SystemConfig {
            device_bytes: 256 << 20,
            buffer_bytes: 6 << 20,
            cache_pages: 2048,
            ..SystemConfig::default()
        };
        let sys = setups::build(kind, &cfg).expect("build");
        let set = Fileset::populate(&*sys.fs, FilesetSpec::new("/cache", 384, 32, 32 << 10), 7)
            .expect("populate");
        sys.fs.sync().expect("sync");
        sys.env.rebase();

        let params = FilebenchParams {
            iosize: 256 << 10,
            append_size: 8 << 10,
        };
        let actors: Vec<Box<dyn Actor>> = (0..2)
            .map(|i| Box::new(Webproxy::new(Arc::clone(&set), params, i)) as Box<dyn Actor>)
            .collect();
        let report = Runner::new(sys.env.clone(), sys.fs.clone())
            .with_device(sys.dev.clone())
            .run(actors, RunLimit::duration_ms(1000), 99);

        let dropped = sys
            .hinfs
            .as_ref()
            .map(|h| h.stats().snapshot().dropped_dirty_blocks)
            .unwrap_or(0);
        println!(
            "{:<14} {:>12.0} {:>14.1} {:>16}",
            kind.label(),
            report.throughput(),
            report.device.nvmm_bytes_written as f64 / (1 << 20) as f64,
            dropped,
        );
        sys.fs.unmount().expect("unmount");
    }
    println!("\nHiNFS serves more requests while writing less to NVMM: short-lived");
    println!("objects die in the DRAM buffer before writeback (paper §5.2, Fig 7/10).");
}
