//! The OS page cache model: an LRU buffer cache keyed by device block.
//!
//! This is what produces the *double-copy overheads* the paper measures for
//! the NVMMBD systems (§2, Fig 3(a)):
//!
//! - a read miss fetches the block from the device into the cache (copy 1 +
//!   block layer) and then copies it to the user buffer (copy 2);
//! - a partial-write miss performs *fetch-before-write* (copy 1) before the
//!   user data is copied into the page (copy 2); a later writeback adds the
//!   third device copy;
//! - `fsync` writes the file's dirty pages through the block layer.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use blockdev::Nvmmbd;
use fskit::lrulist::RecencyList;
use nvmm::{Cat, BLOCK_SIZE};
use obsv::{DrainKind, FsObs, Site, TraceEvent, TrackedMutex};

#[derive(Debug, Clone, Copy)]
struct PageMeta {
    blk: u64,
    dirty: bool,
    /// When the page was first dirtied (for age-based writeback).
    dirtied_ns: u64,
    /// Pinned pages belong to a running journal transaction and must not
    /// reach the device in place before the transaction commits.
    pinned: bool,
    /// Lineage ack stamp taken at the clean→dirty transition.
    stamp: obsv::Stamp,
    /// Whether `stamp` still awaits its durability drain. Cleared by the
    /// drain that retires it (in-place writeback or journal commit), so a
    /// post-commit checkpoint never double-counts the lag.
    stamped: bool,
}

#[derive(Debug)]
struct Inner {
    map: HashMap<u64, u32>,
    data: Vec<u8>,
    meta: Vec<PageMeta>,
    free: Vec<u32>,
    lru: RecencyList,
    dirty_count: usize,
    hits: u64,
    misses: u64,
}

/// An LRU page/buffer cache over a block device.
#[derive(Debug)]
pub struct BufferCache {
    bd: Arc<Nvmmbd>,
    inner: TrackedMutex<Inner>,
    capacity: usize,
    /// Attached at mount for lineage stamps and drain provenance; absent
    /// during mkfs, where the cache is torn down before the real mount.
    obs: OnceLock<Arc<FsObs>>,
}

impl BufferCache {
    /// Creates a cache of `pages` 4 KiB pages over `bd`.
    pub fn new(bd: Arc<Nvmmbd>, pages: usize) -> BufferCache {
        let pages = pages.max(8);
        let contention = bd.byte_device().contention().clone();
        BufferCache {
            bd,
            inner: TrackedMutex::attached(
                &contention,
                Site::ExtfsCache,
                Inner {
                    map: HashMap::new(),
                    data: vec![0u8; pages * BLOCK_SIZE],
                    meta: vec![
                        PageMeta {
                            blk: 0,
                            dirty: false,
                            dirtied_ns: 0,
                            pinned: false,
                            stamp: obsv::Stamp::default(),
                            stamped: false,
                        };
                        pages
                    ],
                    free: (0..pages as u32).rev().collect(),
                    lru: RecencyList::new(pages),
                    dirty_count: 0,
                    hits: 0,
                    misses: 0,
                },
            ),
            capacity: pages,
            obs: OnceLock::new(),
        }
    }

    /// Attaches the observability hub; page writes stamp lineage and
    /// writebacks record drains from here on. Idempotent.
    pub fn attach_obs(&self, obs: Arc<FsObs>) {
        let _ = self.obs.set(obs);
    }

    /// Cache capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `(hits, misses)` since creation.
    pub fn hit_miss(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }

    /// Pages currently holding a cached block.
    pub fn cached_pages(&self) -> usize {
        self.capacity - self.inner.lock().free.len()
    }

    /// `(cached_pages, dirty_pages, hits, misses)` read under one lock hold,
    /// so the four values are mutually consistent for snapshots and audits.
    pub fn usage(&self) -> (usize, usize, u64, u64) {
        let inner = self.inner.lock();
        (
            self.capacity - inner.free.len(),
            inner.dirty_count,
            inner.hits,
            inner.misses,
        )
    }

    /// Number of dirty pages.
    pub fn dirty_pages(&self) -> usize {
        self.inner.lock().dirty_count
    }

    /// The underlying block device.
    pub fn device(&self) -> &Arc<Nvmmbd> {
        &self.bd
    }

    fn page(inner: &Inner, slot: u32) -> &[u8] {
        let b = slot as usize * BLOCK_SIZE;
        &inner.data[b..b + BLOCK_SIZE]
    }

    fn page_mut(inner: &mut Inner, slot: u32) -> &mut [u8] {
        let b = slot as usize * BLOCK_SIZE;
        &mut inner.data[b..b + BLOCK_SIZE]
    }

    /// Writes a dirty slot back to the device, retiring its lineage stamp
    /// (if still pending) as a drain of the given kind.
    fn writeback_slot(&self, inner: &mut Inner, slot: u32, kind: DrainKind) {
        let meta = inner.meta[slot as usize];
        if !meta.dirty || meta.pinned {
            return;
        }
        let b = slot as usize * BLOCK_SIZE;
        // Borrow the page out of `inner.data` for the device call.
        let page: Vec<u8> = inner.data[b..b + BLOCK_SIZE].to_vec();
        self.bd.write_block(Cat::Writeback, meta.blk, &page);
        inner.meta[slot as usize].dirty = false;
        inner.dirty_count -= 1;
        if meta.stamped {
            inner.meta[slot as usize].stamped = false;
            self.record_drain(&meta.stamp, kind);
        }
    }

    /// Records a stamp retirement: the lag sample, the drained bytes on
    /// the stamp's origin row, and a causal trace event.
    fn record_drain(&self, stamp: &obsv::Stamp, kind: DrainKind) {
        let Some(obs) = self.obs.get() else { return };
        let lin = obs.lineage();
        if !lin.enabled() {
            return;
        }
        let now = self.bd.byte_device().env().now();
        let lag = lin.record_drain(stamp, kind, now, BLOCK_SIZE as u64);
        let seq_hi = obs.trace.emitted();
        let (row, seq_lo) = (stamp.row, stamp.seq);
        obs.trace.emit(now, || TraceEvent::LineageDrained {
            row: row as u64,
            lazy: kind == DrainKind::Lazy,
            bytes: BLOCK_SIZE as u64,
            lag_ns: lag,
            seq_lo,
            seq_hi,
        });
    }

    /// Retires the stamps of `blks` whose durability was just met by a
    /// journal commit: the journal copy makes the page content
    /// recoverable, so the lag drains *here* — the later checkpoint
    /// writeback moves bytes but retires nothing.
    pub fn note_committed(&self, blks: &[u64], kind: DrainKind) {
        let Some(obs) = self.obs.get() else { return };
        if !obs.lineage().enabled() {
            return;
        }
        let mut stamps = Vec::new();
        {
            let mut inner = self.inner.lock();
            for &blk in blks {
                if let Some(&slot) = inner.map.get(&blk) {
                    let meta = &mut inner.meta[slot as usize];
                    if meta.stamped {
                        meta.stamped = false;
                        stamps.push(meta.stamp);
                    }
                }
            }
        }
        for stamp in stamps {
            self.record_drain(&stamp, kind);
        }
    }

    /// Gets (or fetches) the slot caching `blk`. `fill` controls whether a
    /// miss reads the block from the device (reads and partial writes) or
    /// may leave the page uninitialized (full-block overwrite).
    fn get_slot(&self, inner: &mut Inner, blk: u64, fill: bool) -> u32 {
        if let Some(&slot) = inner.map.get(&blk) {
            inner.hits += 1;
            inner.lru.touch(slot);
            return slot;
        }
        inner.misses += 1;
        let slot = match inner.free.pop() {
            Some(s) => s,
            None => {
                // Evict the least-recent unpinned page, writing it back
                // first if dirty.
                let victim = inner
                    .lru
                    .iter_from_tail()
                    .find(|&s| !inner.meta[s as usize].pinned)
                    .expect("page cache exhausted by pinned journal pages");
                // Eviction drains behind the owner's back: lazy.
                self.writeback_slot(inner, victim, DrainKind::Lazy);
                let old = inner.meta[victim as usize].blk;
                inner.map.remove(&old);
                inner.lru.unlink(victim);
                victim
            }
        };
        inner.meta[slot as usize] = PageMeta {
            blk,
            dirty: false,
            dirtied_ns: 0,
            pinned: false,
            stamp: obsv::Stamp::default(),
            stamped: false,
        };
        inner.map.insert(blk, slot);
        inner.lru.push_head(slot);
        if fill {
            let b = slot as usize * BLOCK_SIZE;
            let mut page = vec![0u8; BLOCK_SIZE];
            self.bd.read_block(Cat::Fetch, blk, &mut page);
            inner.data[b..b + BLOCK_SIZE].copy_from_slice(&page);
        }
        slot
    }

    /// Reads `buf.len()` bytes from byte `off` of block `blk` through the
    /// cache; the page→user copy is charged to `cat`.
    pub fn read(&self, cat: Cat, blk: u64, off: usize, buf: &mut [u8]) {
        assert!(off + buf.len() <= BLOCK_SIZE);
        let mut inner = self.inner.lock();
        let slot = self.get_slot(&mut inner, blk, true);
        let page = Self::page(&inner, slot);
        buf.copy_from_slice(&page[off..off + buf.len()]);
        let env = self.bd.byte_device().env();
        env.charge(Cat::Other, env.cost().page_cache_ns);
        env.charge_dram_copy(cat, buf.len());
    }

    /// Writes `data` at byte `off` of block `blk` through the cache
    /// (fetch-before-write on a partial miss); the user→page copy is
    /// charged to `cat`.
    pub fn write(&self, cat: Cat, blk: u64, off: usize, data: &[u8], now: u64) {
        assert!(off + data.len() <= BLOCK_SIZE);
        let mut inner = self.inner.lock();
        let full = off == 0 && data.len() == BLOCK_SIZE;
        let slot = self.get_slot(&mut inner, blk, !full);
        Self::page_mut(&mut inner, slot)[off..off + data.len()].copy_from_slice(data);
        let env = self.bd.byte_device().env();
        env.charge(Cat::Other, env.cost().page_cache_ns);
        env.charge_dram_copy(cat, data.len());
        obsv::note_buffered(data.len() as u64);
        if !inner.meta[slot as usize].dirty {
            let stamp = self
                .obs
                .get()
                .map(|obs| obs.lineage().stamp(now, obs.trace.emitted()));
            let meta = &mut inner.meta[slot as usize];
            meta.dirty = true;
            meta.dirtied_ns = now;
            if let Some(stamp) = stamp {
                meta.stamp = stamp;
                meta.stamped = self.obs.get().is_some_and(|o| o.lineage().enabled());
            }
            inner.dirty_count += 1;
        }
        inner.lru.touch(slot);
    }

    /// Flushes `blk` if it is cached and dirty, draining it as `kind`.
    pub fn flush_block(&self, blk: u64, kind: DrainKind) {
        let mut inner = self.inner.lock();
        if let Some(&slot) = inner.map.get(&blk) {
            self.writeback_slot(&mut inner, slot, kind);
        }
    }

    /// Flushes every unpinned dirty page, then issues a device barrier.
    /// Pinned pages belong to an uncommitted journal transaction and stay
    /// behind (the journal commits them first).
    pub fn flush_all(&self, kind: DrainKind) {
        let mut inner = self.inner.lock();
        let slots: Vec<u32> = inner
            .meta
            .iter()
            .enumerate()
            .filter(|(_, m)| m.dirty && !m.pinned)
            .map(|(i, _)| i as u32)
            .collect();
        for slot in slots {
            self.writeback_slot(&mut inner, slot, kind);
        }
        drop(inner);
        self.bd.flush();
    }

    /// Flushes dirty pages older than `age_ns` (background writeback).
    pub fn flush_older_than(&self, now: u64, age_ns: u64) {
        let mut inner = self.inner.lock();
        let slots: Vec<u32> = inner
            .meta
            .iter()
            .enumerate()
            .filter(|(_, m)| m.dirty && !m.pinned && m.dirtied_ns + age_ns <= now)
            .map(|(i, _)| i as u32)
            .collect();
        for slot in slots {
            self.writeback_slot(&mut inner, slot, DrainKind::Lazy);
        }
    }

    /// Pins `blk`: it will not be evicted or written back in place until
    /// unpinned. The page must be cached (writing it dirty first pins the
    /// actual content).
    pub fn pin(&self, blk: u64) {
        let mut inner = self.inner.lock();
        if let Some(&slot) = inner.map.get(&blk) {
            inner.meta[slot as usize].pinned = true;
        }
    }

    /// Unpins `blk` (after its journal transaction committed).
    pub fn unpin(&self, blk: u64) {
        let mut inner = self.inner.lock();
        if let Some(&slot) = inner.map.get(&blk) {
            inner.meta[slot as usize].pinned = false;
        }
    }

    /// Drops `blk` from the cache without writeback (block freed).
    pub fn invalidate(&self, blk: u64) {
        let mut inner = self.inner.lock();
        if let Some(slot) = inner.map.remove(&blk) {
            if inner.meta[slot as usize].dirty {
                inner.meta[slot as usize].dirty = false;
                inner.dirty_count -= 1;
            }
            // The block was freed before its data ever became durable;
            // the stamp is abandoned, not drained.
            inner.meta[slot as usize].stamped = false;
            inner.lru.unlink(slot);
            inner.free.push(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmm::{CostModel, NvmmDevice, SimEnv};

    fn cache(pages: usize) -> BufferCache {
        let env = SimEnv::new_virtual(CostModel::default());
        let dev = NvmmDevice::new_tracked(env, 512 * BLOCK_SIZE);
        BufferCache::new(Arc::new(Nvmmbd::new(dev)), pages)
    }

    #[test]
    fn read_write_roundtrip_through_cache() {
        let c = cache(16);
        c.write(Cat::UserWrite, 3, 100, b"hello", 0);
        let mut buf = [0u8; 5];
        c.read(Cat::UserRead, 3, 100, &mut buf);
        assert_eq!(&buf, b"hello");
        let (hits, misses) = c.hit_miss();
        assert_eq!(misses, 1, "one fetch-before-write miss");
        assert_eq!(hits, 1, "the read hit");
    }

    #[test]
    fn dirty_pages_reach_device_only_on_flush() {
        let c = cache(16);
        c.write(Cat::UserWrite, 7, 0, &[9u8; BLOCK_SIZE], 0);
        assert_eq!(c.dirty_pages(), 1);
        let mut direct = vec![0u8; BLOCK_SIZE];
        c.device()
            .byte_device()
            .peek(7 * BLOCK_SIZE as u64, &mut direct);
        assert!(direct.iter().all(|&b| b == 0), "not on device yet");
        c.flush_all(DrainKind::Sync);
        assert_eq!(c.dirty_pages(), 0);
        c.device()
            .byte_device()
            .peek(7 * BLOCK_SIZE as u64, &mut direct);
        assert!(direct.iter().all(|&b| b == 9));
    }

    #[test]
    fn eviction_writes_back_and_refetches() {
        let c = cache(8);
        for blk in 0..8u64 {
            c.write(Cat::UserWrite, blk, 0, &[blk as u8; BLOCK_SIZE], 0);
        }
        // Touch one more block: the LRU (block 0) is evicted with writeback.
        c.write(Cat::UserWrite, 100, 0, &[0xff; BLOCK_SIZE], 0);
        let mut buf = [0u8; 4];
        c.read(Cat::UserRead, 0, 0, &mut buf);
        assert_eq!(buf, [0u8; 4], "evicted block refetched with its data");
        let (_, misses) = c.hit_miss();
        assert!(misses >= 2);
    }

    #[test]
    fn full_block_overwrite_skips_fetch() {
        let c = cache(8);
        let (r0, _, _) = c.device().request_counts();
        c.write(Cat::UserWrite, 5, 0, &[1u8; BLOCK_SIZE], 0);
        let (r1, _, _) = c.device().request_counts();
        assert_eq!(r1, r0, "no fetch for a full-block overwrite");
        // A partial write does fetch.
        c.write(Cat::UserWrite, 6, 10, &[1u8; 100], 0);
        let (r2, _, _) = c.device().request_counts();
        assert_eq!(r2, r1 + 1, "fetch-before-write for a partial miss");
    }

    #[test]
    fn age_based_flush() {
        let c = cache(8);
        c.write(Cat::UserWrite, 1, 0, &[1u8; 64], 100);
        c.write(Cat::UserWrite, 2, 0, &[2u8; 64], 5_000);
        c.flush_older_than(6_000, 3_000);
        assert_eq!(c.dirty_pages(), 1, "only the old page flushed");
    }

    #[test]
    fn invalidate_drops_without_writeback() {
        let c = cache(8);
        c.write(Cat::UserWrite, 4, 0, &[3u8; BLOCK_SIZE], 0);
        let (_, w0, _) = c.device().request_counts();
        c.invalidate(4);
        assert_eq!(c.dirty_pages(), 0);
        let (_, w1, _) = c.device().request_counts();
        assert_eq!(w1, w0, "invalidate never writes");
    }

    #[test]
    fn lineage_stamps_retire_once_with_the_drain_kind() {
        let c = cache(8);
        let obs = Arc::new(FsObs::default());
        obs.lineage().set_enabled(true);
        c.attach_obs(obs.clone());
        let env = c.device().byte_device().env().clone();
        // Dirty at t=1000, sync flush: lag asserted 0.
        env.set_now(1_000);
        c.write(Cat::UserWrite, 3, 0, &[1u8; 64], 1_000);
        c.flush_block(3, DrainKind::Sync);
        assert_eq!(obs.lineage().max_lag_ns(), 0);
        // Dirty again (acked at t=2000), lazy age flush much later: the
        // drain records the real age against the wall clock, which the
        // device charges keep advancing.
        env.set_now(9_000);
        c.write(Cat::UserWrite, 3, 0, &[2u8; 64], 2_000);
        c.flush_older_than(env.now(), 1_000);
        let lag = obs.lineage().max_lag_ns();
        assert_eq!(lag, env.now() - 2_000);
        assert!(lag >= 7_000, "{lag}");
        let snap = obs.lineage().snap();
        assert_eq!(snap.stamps, 2);
        assert_eq!(snap.drains_sync, 1);
        assert_eq!(snap.drains_lazy, 1);
        // A re-flush without a re-dirty drains nothing more.
        c.flush_all(DrainKind::Sync);
        assert_eq!(obs.lineage().snap().drains_sync, 1);
    }

    #[test]
    fn double_copy_costs_are_charged() {
        let c = cache(8);
        let env = c.device().byte_device().env().clone();
        nvmm::ledger::reset();
        env.set_now(0);
        let mut buf = vec![0u8; BLOCK_SIZE];
        c.read(Cat::UserRead, 9, 0, &mut buf); // miss
        let snap = nvmm::ledger::snapshot();
        // Copy 1: device -> page (Fetch); copy 2: page -> user (UserRead);
        // plus one block-layer request.
        assert_eq!(snap.get(Cat::UserRead), env.cost().dram_copy_ns(BLOCK_SIZE));
        assert_eq!(snap.get(Cat::Fetch), env.cost().dram_copy_ns(BLOCK_SIZE));
        assert_eq!(snap.get(Cat::BlockLayer), env.cost().block_layer_ns);
    }
}
