//! Lock-contention and stall profiler: tracked lock wrappers and the
//! per-site wait/hold accounting behind the bench's contention matrix.
//!
//! Every coarse lock in the storage crates (nvmm device/gate, pmfs
//! journal/allocator/namespace, hinfs buffer pool, extfs jbd/cache,
//! fskit fd table) is declared as a [`TrackedMutex`] / [`TrackedRwLock`]
//! carrying one static [`Site`] id. Acquisitions record into a shared
//! [`ContentionTable`]:
//!
//! - **wait time**: how long an acquirer blocked behind another holder
//!   (sampled only on the contended path — the wait histogram's count
//!   equals the contended count);
//! - **hold time**: how long each guard lived, minus any time parked in
//!   a [`TrackedCondvar`] wait (which is booked as wait, not hold);
//! - **site × op attribution**: waits and holds are also charged to the
//!   caller's current [`crate::OpKind`] row (the span layer's
//!   thread-local current-op), yielding a site × op matrix alongside the
//!   span matrix.
//!
//! Blocking that happens *without* a lock — a foreground write paying
//! for a writeback reclaim, a journal-full flush, bandwidth-gate
//! throttling — is attributed through [`ContentionTable::stall`] against
//! the dedicated `stall.*` sites, so "where do threads wait" has one
//! answer covering both lock and non-lock stalls.
//!
//! Cost rules, matching the rest of `obsv`:
//!
//! - **Unattached or [`Level::Off`]**: a tracked lock is a plain
//!   `std::sync` lock plus one `OnceLock` load and one relaxed load.
//! - **[`Level::Counts`]**: the uncontended fast path is exactly one
//!   relaxed increment (then a bare `try_lock`); no clock is read.
//! - **[`Level::Full`]**: adds clock reads and histogram records —
//!   three relaxed RMWs per sample, never a lock.
//!
//! The table's clock is injected (the simulation environment passes its
//! virtual or wall clock), is only *read*, and never advances simulated
//! time — profiling must not perturb the timeline it profiles. In
//! virtual time mode all logical actors share one host thread, so lock
//! waits are structurally zero there: hold-time occupancy and the
//! `stall.*` sites carry the story, and the wait histograms light up in
//! spin mode (stress tests, Criterion).

use crate::histo::{Histo, HistoSnapshot};
use crate::span::{current_row, row_label, SPAN_ROWS};
use crate::{MetricSource, Visitor};
use std::sync;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// A static lock or stall site. One id per lock *declaration*, named
/// `<crate>.<structure>`; `stall.*` sites are not locks but explicit
/// blocking points on the write path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Site {
    /// `nvmm::NvmmDevice::mem` — the device byte array.
    NvmmDevice = 0,
    /// `nvmm::NvmmDevice::shadow` — the crash-consistency shadow.
    NvmmShadow = 1,
    /// `nvmm::BandwidthGate` — calendar and writer-slot semaphore.
    NvmmGate = 2,
    /// `fskit::FdTable` — the descriptor table.
    FskitFdtable = 3,
    /// `pmfs::Journal` — the undo-journal ring.
    PmfsJournal = 4,
    /// `pmfs::Allocator` — the block/inode allocator.
    PmfsAlloc = 5,
    /// `pmfs::Pmfs::ns` — the namespace (directory tree) lock.
    PmfsNamespace = 6,
    /// `pmfs::InodeCache` — the in-memory inode map.
    PmfsInodeMap = 7,
    /// `hinfs::Hinfs::shared` — the DRAM buffer pool and block index.
    HinfsBufferPool = 8,
    /// `hinfs::WbCtl` — writeback kick flag and thread registry.
    HinfsWriteback = 9,
    /// `extfs::Jbd` — the JBD2-style journal.
    ExtfsJbd = 10,
    /// `extfs::Allocator` — the block/inode allocator.
    ExtfsAlloc = 11,
    /// `extfs::Extfs::ns` — the namespace lock.
    ExtfsNamespace = 12,
    /// `extfs::Extfs::dirty_data` — the ordered-mode dirty-data set.
    ExtfsDirtyData = 13,
    /// `extfs::Cache` — the page cache.
    ExtfsCache = 14,
    /// `extfs::InodeCache` — the in-memory inode map.
    ExtfsInodeMap = 15,
    /// A foreground write paying for a buffer-pool reclaim itself.
    StallWriteback = 16,
    /// Journal-pressure relief: flushing open transactions to free ring
    /// space before (or inside) `begin_tx`.
    StallJournalFull = 17,
    /// NVMM write-bandwidth throttling: queueing delay charged by the
    /// bandwidth gate beyond pure service time.
    StallThrottle = 18,
    /// `hinfs::Hinfs::shards[0]` — one shard of the DRAM buffer pool.
    HinfsShard0 = 19,
    /// `hinfs::Hinfs::shards[1]`.
    HinfsShard1 = 20,
    /// `hinfs::Hinfs::shards[2]`.
    HinfsShard2 = 21,
    /// `hinfs::Hinfs::shards[3]`.
    HinfsShard3 = 22,
    /// `hinfs::Hinfs::shards[4]`.
    HinfsShard4 = 23,
    /// `hinfs::Hinfs::shards[5]`.
    HinfsShard5 = 24,
    /// `hinfs::Hinfs::shards[6]`.
    HinfsShard6 = 25,
    /// `hinfs::Hinfs::shards[7]`.
    HinfsShard7 = 26,
    /// `pmfs::Allocator::shards[0]` — one shard of the block allocator.
    PmfsAllocShard0 = 27,
    /// `pmfs::Allocator::shards[1]`.
    PmfsAllocShard1 = 28,
    /// `pmfs::Allocator::shards[2]`.
    PmfsAllocShard2 = 29,
    /// `pmfs::Allocator::shards[3]`.
    PmfsAllocShard3 = 30,
    /// `pmfs::Allocator::shards[4]`.
    PmfsAllocShard4 = 31,
    /// `pmfs::Allocator::shards[5]`.
    PmfsAllocShard5 = 32,
    /// `pmfs::Allocator::shards[6]`.
    PmfsAllocShard6 = 33,
    /// `pmfs::Allocator::shards[7]`.
    PmfsAllocShard7 = 34,
    /// `pmfs::Pmfs::ns_shards[0]` — one shard of the namespace lock.
    PmfsNsShard0 = 35,
    /// `pmfs::Pmfs::ns_shards[1]`.
    PmfsNsShard1 = 36,
    /// `pmfs::Pmfs::ns_shards[2]`.
    PmfsNsShard2 = 37,
    /// `pmfs::Pmfs::ns_shards[3]`.
    PmfsNsShard3 = 38,
    /// `pmfs::Pmfs::ns_shards[4]`.
    PmfsNsShard4 = 39,
    /// `pmfs::Pmfs::ns_shards[5]`.
    PmfsNsShard5 = 40,
    /// `pmfs::Pmfs::ns_shards[6]`.
    PmfsNsShard6 = 41,
    /// `pmfs::Pmfs::ns_shards[7]`.
    PmfsNsShard7 = 42,
    /// `pmfs::InodeCache::shards[0]` — one shard of the inode map.
    PmfsInodeShard0 = 43,
    /// `pmfs::InodeCache::shards[1]`.
    PmfsInodeShard1 = 44,
    /// `pmfs::InodeCache::shards[2]`.
    PmfsInodeShard2 = 45,
    /// `pmfs::InodeCache::shards[3]`.
    PmfsInodeShard3 = 46,
    /// `pmfs::InodeCache::shards[4]`.
    PmfsInodeShard4 = 47,
    /// `pmfs::InodeCache::shards[5]`.
    PmfsInodeShard5 = 48,
    /// `pmfs::InodeCache::shards[6]`.
    PmfsInodeShard6 = 49,
    /// `pmfs::InodeCache::shards[7]`.
    PmfsInodeShard7 = 50,
}

/// Number of [`Site`] variants.
pub const NSITES: usize = 51;

/// Shard fan-out of the sharded subsystems. Every shard-indexed site
/// family below has exactly this many members, so `Site::hinfs_shard(i)`
/// and friends are total for any `i` (reduced mod `NSHARDS`).
pub const NSHARDS: usize = 8;

/// All sites in discriminant order.
pub const ALL_SITES: [Site; NSITES] = [
    Site::NvmmDevice,
    Site::NvmmShadow,
    Site::NvmmGate,
    Site::FskitFdtable,
    Site::PmfsJournal,
    Site::PmfsAlloc,
    Site::PmfsNamespace,
    Site::PmfsInodeMap,
    Site::HinfsBufferPool,
    Site::HinfsWriteback,
    Site::ExtfsJbd,
    Site::ExtfsAlloc,
    Site::ExtfsNamespace,
    Site::ExtfsDirtyData,
    Site::ExtfsCache,
    Site::ExtfsInodeMap,
    Site::StallWriteback,
    Site::StallJournalFull,
    Site::StallThrottle,
    Site::HinfsShard0,
    Site::HinfsShard1,
    Site::HinfsShard2,
    Site::HinfsShard3,
    Site::HinfsShard4,
    Site::HinfsShard5,
    Site::HinfsShard6,
    Site::HinfsShard7,
    Site::PmfsAllocShard0,
    Site::PmfsAllocShard1,
    Site::PmfsAllocShard2,
    Site::PmfsAllocShard3,
    Site::PmfsAllocShard4,
    Site::PmfsAllocShard5,
    Site::PmfsAllocShard6,
    Site::PmfsAllocShard7,
    Site::PmfsNsShard0,
    Site::PmfsNsShard1,
    Site::PmfsNsShard2,
    Site::PmfsNsShard3,
    Site::PmfsNsShard4,
    Site::PmfsNsShard5,
    Site::PmfsNsShard6,
    Site::PmfsNsShard7,
    Site::PmfsInodeShard0,
    Site::PmfsInodeShard1,
    Site::PmfsInodeShard2,
    Site::PmfsInodeShard3,
    Site::PmfsInodeShard4,
    Site::PmfsInodeShard5,
    Site::PmfsInodeShard6,
    Site::PmfsInodeShard7,
];

/// The hinfs buffer-pool shard sites, in shard order.
pub const HINFS_SHARD_SITES: [Site; NSHARDS] = [
    Site::HinfsShard0,
    Site::HinfsShard1,
    Site::HinfsShard2,
    Site::HinfsShard3,
    Site::HinfsShard4,
    Site::HinfsShard5,
    Site::HinfsShard6,
    Site::HinfsShard7,
];

/// The pmfs allocator shard sites, in shard order.
pub const PMFS_ALLOC_SHARD_SITES: [Site; NSHARDS] = [
    Site::PmfsAllocShard0,
    Site::PmfsAllocShard1,
    Site::PmfsAllocShard2,
    Site::PmfsAllocShard3,
    Site::PmfsAllocShard4,
    Site::PmfsAllocShard5,
    Site::PmfsAllocShard6,
    Site::PmfsAllocShard7,
];

/// The pmfs namespace shard sites, in shard order.
pub const PMFS_NS_SHARD_SITES: [Site; NSHARDS] = [
    Site::PmfsNsShard0,
    Site::PmfsNsShard1,
    Site::PmfsNsShard2,
    Site::PmfsNsShard3,
    Site::PmfsNsShard4,
    Site::PmfsNsShard5,
    Site::PmfsNsShard6,
    Site::PmfsNsShard7,
];

/// The pmfs inode-map shard sites, in shard order.
pub const PMFS_INODE_SHARD_SITES: [Site; NSHARDS] = [
    Site::PmfsInodeShard0,
    Site::PmfsInodeShard1,
    Site::PmfsInodeShard2,
    Site::PmfsInodeShard3,
    Site::PmfsInodeShard4,
    Site::PmfsInodeShard5,
    Site::PmfsInodeShard6,
    Site::PmfsInodeShard7,
];

impl Site {
    /// Stable dotted label for reports and the bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            Site::NvmmDevice => "nvmm.device",
            Site::NvmmShadow => "nvmm.shadow",
            Site::NvmmGate => "nvmm.gate",
            Site::FskitFdtable => "fskit.fdtable",
            Site::PmfsJournal => "pmfs.journal",
            Site::PmfsAlloc => "pmfs.alloc",
            Site::PmfsNamespace => "pmfs.ns",
            Site::PmfsInodeMap => "pmfs.inode_map",
            Site::HinfsBufferPool => "hinfs.buffer_pool",
            Site::HinfsWriteback => "hinfs.writeback",
            Site::ExtfsJbd => "extfs.jbd",
            Site::ExtfsAlloc => "extfs.alloc",
            Site::ExtfsNamespace => "extfs.ns",
            Site::ExtfsDirtyData => "extfs.dirty_data",
            Site::ExtfsCache => "extfs.cache",
            Site::ExtfsInodeMap => "extfs.inode_map",
            Site::StallWriteback => "stall.writeback",
            Site::StallJournalFull => "stall.journal_full",
            Site::StallThrottle => "stall.throttle",
            Site::HinfsShard0 => "hinfs.shard0",
            Site::HinfsShard1 => "hinfs.shard1",
            Site::HinfsShard2 => "hinfs.shard2",
            Site::HinfsShard3 => "hinfs.shard3",
            Site::HinfsShard4 => "hinfs.shard4",
            Site::HinfsShard5 => "hinfs.shard5",
            Site::HinfsShard6 => "hinfs.shard6",
            Site::HinfsShard7 => "hinfs.shard7",
            Site::PmfsAllocShard0 => "pmfs.alloc_shard0",
            Site::PmfsAllocShard1 => "pmfs.alloc_shard1",
            Site::PmfsAllocShard2 => "pmfs.alloc_shard2",
            Site::PmfsAllocShard3 => "pmfs.alloc_shard3",
            Site::PmfsAllocShard4 => "pmfs.alloc_shard4",
            Site::PmfsAllocShard5 => "pmfs.alloc_shard5",
            Site::PmfsAllocShard6 => "pmfs.alloc_shard6",
            Site::PmfsAllocShard7 => "pmfs.alloc_shard7",
            Site::PmfsNsShard0 => "pmfs.ns_shard0",
            Site::PmfsNsShard1 => "pmfs.ns_shard1",
            Site::PmfsNsShard2 => "pmfs.ns_shard2",
            Site::PmfsNsShard3 => "pmfs.ns_shard3",
            Site::PmfsNsShard4 => "pmfs.ns_shard4",
            Site::PmfsNsShard5 => "pmfs.ns_shard5",
            Site::PmfsNsShard6 => "pmfs.ns_shard6",
            Site::PmfsNsShard7 => "pmfs.ns_shard7",
            Site::PmfsInodeShard0 => "pmfs.inode_shard0",
            Site::PmfsInodeShard1 => "pmfs.inode_shard1",
            Site::PmfsInodeShard2 => "pmfs.inode_shard2",
            Site::PmfsInodeShard3 => "pmfs.inode_shard3",
            Site::PmfsInodeShard4 => "pmfs.inode_shard4",
            Site::PmfsInodeShard5 => "pmfs.inode_shard5",
            Site::PmfsInodeShard6 => "pmfs.inode_shard6",
            Site::PmfsInodeShard7 => "pmfs.inode_shard7",
        }
    }

    /// The buffer-pool shard site for shard index `i` (mod [`NSHARDS`]).
    pub fn hinfs_shard(i: usize) -> Site {
        HINFS_SHARD_SITES[i % NSHARDS]
    }

    /// The allocator shard site for shard index `i` (mod [`NSHARDS`]).
    pub fn pmfs_alloc_shard(i: usize) -> Site {
        PMFS_ALLOC_SHARD_SITES[i % NSHARDS]
    }

    /// The namespace shard site for shard index `i` (mod [`NSHARDS`]).
    pub fn pmfs_ns_shard(i: usize) -> Site {
        PMFS_NS_SHARD_SITES[i % NSHARDS]
    }

    /// The inode-map shard site for shard index `i` (mod [`NSHARDS`]).
    pub fn pmfs_inode_shard(i: usize) -> Site {
        PMFS_INODE_SHARD_SITES[i % NSHARDS]
    }

    /// Snake-case form of [`Site::label`] for metric names.
    fn metric_suffix(self) -> String {
        self.label().replace('.', "_")
    }
}

/// How much a [`ContentionTable`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Level {
    /// Nothing: tracked locks behave like bare locks (one relaxed load).
    Off = 0,
    /// Acquisition and contention counters only; no clock reads.
    Counts = 1,
    /// Counters plus wait/hold histograms and the site × op matrix.
    Full = 2,
}

/// Per-site accumulator. ~8 KiB each (two histograms plus the op rows).
struct SiteStats {
    acquisitions: AtomicU64,
    contended: AtomicU64,
    wait: Histo,
    hold: Histo,
    wait_by_op: [AtomicU64; SPAN_ROWS],
    hold_by_op: [AtomicU64; SPAN_ROWS],
}

impl SiteStats {
    fn new() -> SiteStats {
        SiteStats {
            acquisitions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            wait: Histo::new(),
            hold: Histo::new(),
            wait_by_op: std::array::from_fn(|_| AtomicU64::new(0)),
            hold_by_op: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn reset(&self) {
        self.acquisitions.store(0, Ordering::Relaxed);
        self.contended.store(0, Ordering::Relaxed);
        self.wait.reset();
        self.hold.reset();
        for c in &self.wait_by_op {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.hold_by_op {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// The shared contention accumulator of one simulated machine. One table
/// exists per `SimEnv`; every tracked lock on that machine attaches to
/// it. Disabled ([`Level::Off`]) by default.
pub struct ContentionTable {
    level: AtomicU8,
    clock: Box<dyn Fn() -> u64 + Send + Sync>,
    sites: [SiteStats; NSITES],
}

impl std::fmt::Debug for ContentionTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContentionTable")
            .field("level", &self.level())
            .finish_non_exhaustive()
    }
}

impl ContentionTable {
    /// A disabled table reading time from `clock` (simulated ns). The
    /// clock is only read, never advanced.
    pub fn new(clock: impl Fn() -> u64 + Send + Sync + 'static) -> ContentionTable {
        ContentionTable {
            level: AtomicU8::new(Level::Off as u8),
            clock: Box::new(clock),
            sites: std::array::from_fn(|_| SiteStats::new()),
        }
    }

    /// The current recording level — one relaxed load.
    #[inline]
    pub fn level(&self) -> Level {
        match self.level.load(Ordering::Relaxed) {
            0 => Level::Off,
            1 => Level::Counts,
            _ => Level::Full,
        }
    }

    /// Switches the recording level.
    pub fn set_level(&self, level: Level) {
        self.level.store(level as u8, Ordering::Relaxed);
    }

    /// Whether anything is being recorded. Gates caller-side work (e.g.
    /// reading a clock to time a stall).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.level() != Level::Off
    }

    /// The injected clock's current time.
    #[inline]
    fn now(&self) -> u64 {
        (self.clock)()
    }

    /// Records a non-lock blocking interval (`wait_ns` already measured
    /// by the caller on the simulation clock) against a `stall.*` site.
    /// At [`Level::Counts`] only the contended counter ticks.
    pub fn stall(&self, site: Site, wait_ns: u64) {
        match self.level() {
            Level::Off => {}
            Level::Counts => {
                self.sites[site as usize]
                    .contended
                    .fetch_add(1, Ordering::Relaxed);
                crate::flight::note_wait(site, wait_ns);
            }
            Level::Full => self.record_wait(site, wait_ns),
        }
    }

    /// Zeroes every site (used when re-basing a timeline, alongside the
    /// bandwidth-gate reset). Callers quiesce first; concurrent records
    /// during a reset are neither torn nor fatal, merely attributed to
    /// one side.
    pub fn reset(&self) {
        for s in &self.sites {
            s.reset();
        }
    }

    /// Point-in-time copy of every site.
    pub fn snapshot(&self) -> ContentionSnapshot {
        ContentionSnapshot {
            sites: ALL_SITES
                .iter()
                .map(|&site| {
                    let s = &self.sites[site as usize];
                    SiteSnapshot {
                        site,
                        acquisitions: s.acquisitions.load(Ordering::Relaxed),
                        contended: s.contended.load(Ordering::Relaxed),
                        wait: s.wait.snapshot(),
                        hold: s.hold.snapshot(),
                        wait_by_op: std::array::from_fn(|r| {
                            s.wait_by_op[r].load(Ordering::Relaxed)
                        }),
                        hold_by_op: std::array::from_fn(|r| {
                            s.hold_by_op[r].load(Ordering::Relaxed)
                        }),
                    }
                })
                .collect(),
        }
    }

    #[inline]
    fn note_acquisition(&self, site: Site) {
        self.sites[site as usize]
            .acquisitions
            .fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn note_contended(&self, site: Site) {
        self.sites[site as usize]
            .contended
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Books a contended acquisition: counter, wait histogram, and the
    /// current op's matrix cell.
    fn record_wait(&self, site: Site, wait_ns: u64) {
        self.note_contended(site);
        self.record_wait_sample(site, wait_ns);
    }

    /// Books a wait sample whose contended tick was already taken (the
    /// lock paths tick *before* blocking, so a stalled thread is visible
    /// while it waits).
    fn record_wait_sample(&self, site: Site, wait_ns: u64) {
        let s = &self.sites[site as usize];
        s.wait.record(wait_ns);
        s.wait_by_op[current_row()].fetch_add(wait_ns, Ordering::Relaxed);
        crate::flight::note_wait(site, wait_ns);
    }

    fn record_hold(&self, site: Site, hold_ns: u64) {
        let s = &self.sites[site as usize];
        s.hold.record(hold_ns);
        s.hold_by_op[current_row()].fetch_add(hold_ns, Ordering::Relaxed);
    }
}

impl MetricSource for ContentionTable {
    fn collect(&self, out: &mut dyn Visitor) {
        for snap in self.snapshot().sites {
            if snap.acquisitions == 0 && snap.contended == 0 {
                continue;
            }
            let base = format!("obsv_site_{}", snap.site.metric_suffix());
            out.counter(&format!("{base}_acquisitions"), snap.acquisitions);
            out.counter(&format!("{base}_contended"), snap.contended);
            if snap.wait.count() > 0 {
                out.histo(&format!("{base}_wait_ns"), snap.wait);
            }
            if snap.hold.count() > 0 {
                out.histo(&format!("{base}_hold_ns"), snap.hold);
            }
        }
    }
}

/// A frozen copy of one site's accumulators.
#[derive(Debug, Clone)]
pub struct SiteSnapshot {
    /// The site.
    pub site: Site,
    /// Total lock acquisitions (meaningless for `stall.*` sites).
    pub acquisitions: u64,
    /// Acquisitions that blocked, condvar waits, and stall events.
    pub contended: u64,
    /// Wait-time distribution; its count equals `contended` at
    /// [`Level::Full`] (waits are sampled only on the contended path).
    pub wait: HistoSnapshot,
    /// Guard-lifetime distribution, condvar wait time excluded.
    pub hold: HistoSnapshot,
    /// Wait ns per span-matrix row (op kinds plus the background row).
    pub wait_by_op: [u64; SPAN_ROWS],
    /// Hold ns per span-matrix row.
    pub hold_by_op: [u64; SPAN_ROWS],
}

impl SiteSnapshot {
    /// Whether the site saw any activity.
    pub fn touched(&self) -> bool {
        self.acquisitions > 0 || self.contended > 0
    }
}

/// A frozen copy of a [`ContentionTable`] — all sites, in [`ALL_SITES`]
/// order.
#[derive(Debug, Clone)]
pub struct ContentionSnapshot {
    /// One entry per [`Site`], in discriminant order.
    pub sites: Vec<SiteSnapshot>,
}

impl ContentionSnapshot {
    /// One site's snapshot.
    pub fn site(&self, site: Site) -> &SiteSnapshot {
        &self.sites[site as usize]
    }

    /// Sites that saw activity, in discriminant order.
    pub fn touched(&self) -> impl Iterator<Item = &SiteSnapshot> {
        self.sites.iter().filter(|s| s.touched())
    }

    /// The `n` most contended sites: by total wait time descending, then
    /// total hold time, then site order — a deterministic ranking.
    pub fn top_by_wait(&self, n: usize) -> Vec<&SiteSnapshot> {
        let mut v: Vec<&SiteSnapshot> = self.touched().collect();
        v.sort_by(|a, b| {
            b.wait
                .sum()
                .cmp(&a.wait.sum())
                .then(b.hold.sum().cmp(&a.hold.sum()))
                .then((a.site as usize).cmp(&(b.site as usize)))
        });
        v.truncate(n);
        v
    }

    /// Label of a site × op matrix row (re-exported span row labels).
    pub fn op_label(row: usize) -> &'static str {
        row_label(row)
    }
}

/// parking_lot-style poison stripping: a panic while holding a tracked
/// lock leaves the data as-is.
fn unpoison<G>(r: Result<G, sync::PoisonError<G>>) -> G {
    r.unwrap_or_else(sync::PoisonError::into_inner)
}

/// Open hold-time measurement carried by a guard at [`Level::Full`].
/// Dropping it books the hold sample, so it is declared *before* the
/// inner guard in each tracked guard struct (fields drop in declaration
/// order: the sample is taken while the lock is still held).
struct Hold<'a> {
    table: &'a ContentionTable,
    site: Site,
    acquired_at: u64,
    /// Time parked in condvar waits while this guard was open; deducted
    /// from the hold (it is booked as wait instead).
    deduct: u64,
}

impl Drop for Hold<'_> {
    fn drop(&mut self) {
        let held = self
            .table
            .now()
            .saturating_sub(self.acquired_at)
            .saturating_sub(self.deduct);
        self.table.record_hold(self.site, held);
    }
}

/// A [`Site`]-tagged mutex recording into an attached
/// [`ContentionTable`]. Construction is `const`-friendly and detached —
/// a lock built before its simulation environment exists (allocators,
/// caches) behaves as a bare lock until [`TrackedMutex::attach`].
#[derive(Debug)]
pub struct TrackedMutex<T: ?Sized> {
    site: Site,
    table: OnceLock<Arc<ContentionTable>>,
    inner: sync::Mutex<T>,
}

/// Guard for [`TrackedMutex`]. The inner `Option` is only ever `None`
/// transiently inside [`TrackedCondvar::wait`].
pub struct TrackedMutexGuard<'a, T: ?Sized> {
    hold: Option<Hold<'a>>,
    g: Option<sync::MutexGuard<'a, T>>,
}

impl<T> TrackedMutex<T> {
    /// An untracked-until-attached mutex.
    pub const fn new(site: Site, t: T) -> TrackedMutex<T> {
        TrackedMutex {
            site,
            table: OnceLock::new(),
            inner: sync::Mutex::new(t),
        }
    }

    /// A mutex born attached to `table`.
    pub fn attached(table: &Arc<ContentionTable>, site: Site, t: T) -> TrackedMutex<T> {
        let m = TrackedMutex::new(site, t);
        m.attach(table);
        m
    }

    /// Consumes the mutex, returning the data.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> TrackedMutex<T> {
    /// Connects this lock to a table. First caller wins; later calls are
    /// no-ops (mirrors `FsObs::set_spans`).
    pub fn attach(&self, table: &Arc<ContentionTable>) {
        let _ = self.table.set(table.clone());
    }

    /// This lock's site id.
    pub fn site(&self) -> Site {
        self.site
    }

    /// Acquires the lock, recording per the attached table's level.
    pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
        let Some(table) = self.table.get() else {
            return TrackedMutexGuard {
                hold: None,
                g: Some(unpoison(self.inner.lock())),
            };
        };
        match table.level() {
            Level::Off => TrackedMutexGuard {
                hold: None,
                g: Some(unpoison(self.inner.lock())),
            },
            Level::Counts => {
                table.note_acquisition(self.site);
                let g = match self.inner.try_lock() {
                    Ok(g) => g,
                    Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
                    Err(sync::TryLockError::WouldBlock) => {
                        table.note_contended(self.site);
                        unpoison(self.inner.lock())
                    }
                };
                TrackedMutexGuard {
                    hold: None,
                    g: Some(g),
                }
            }
            Level::Full => {
                table.note_acquisition(self.site);
                let g = match self.inner.try_lock() {
                    Ok(g) => g,
                    Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
                    Err(sync::TryLockError::WouldBlock) => {
                        // Contended tick first: a thread is visibly
                        // stalled *while* it waits, not only after.
                        table.note_contended(self.site);
                        let t0 = table.now();
                        let g = unpoison(self.inner.lock());
                        table.record_wait_sample(self.site, table.now().saturating_sub(t0));
                        g
                    }
                };
                TrackedMutexGuard {
                    hold: Some(Hold {
                        table,
                        site: self.site,
                        acquired_at: table.now(),
                        deduct: 0,
                    }),
                    g: Some(g),
                }
            }
        }
    }

    /// Non-blocking acquire. Counts as an acquisition (never contended —
    /// a failed try is a caller decision, not a blocked thread).
    pub fn try_lock(&self) -> Option<TrackedMutexGuard<'_, T>> {
        let g = match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        let hold = self.table.get().and_then(|table| match table.level() {
            Level::Off => None,
            Level::Counts => {
                table.note_acquisition(self.site);
                None
            }
            Level::Full => {
                table.note_acquisition(self.site);
                Some(Hold {
                    table,
                    site: self.site,
                    acquired_at: table.now(),
                    deduct: 0,
                })
            }
        });
        Some(TrackedMutexGuard { hold, g: Some(g) })
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: ?Sized> std::ops::Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.g.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.g.as_deref_mut().expect("guard present outside wait")
    }
}

/// Result of [`TrackedCondvar::wait_for`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than a notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable operating on [`TrackedMutexGuard`] in place.
/// Time parked in a wait is booked as *wait* against the guard's site
/// (and counted as contended) and deducted from the guard's hold time.
#[derive(Debug, Default)]
pub struct TrackedCondvar(sync::Condvar);

impl TrackedCondvar {
    /// A fresh condvar.
    pub const fn new() -> TrackedCondvar {
        TrackedCondvar(sync::Condvar::new())
    }

    fn book_wait<T: ?Sized>(guard: &mut TrackedMutexGuard<'_, T>, t0: Option<u64>) {
        if let (Some(h), Some(t0)) = (guard.hold.as_mut(), t0) {
            let waited = h.table.now().saturating_sub(t0);
            h.table.record_wait(h.site, waited);
            h.deduct = h.deduct.saturating_add(waited);
        }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut TrackedMutexGuard<'_, T>) {
        let t0 = guard.hold.as_ref().map(|h| h.table.now());
        let g = guard.g.take().expect("guard present");
        guard.g = Some(unpoison(self.0.wait(g)));
        Self::book_wait(guard, t0);
    }

    /// Blocks until notified or `timeout` elapses (wall time).
    pub fn wait_for<T>(
        &self,
        guard: &mut TrackedMutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let t0 = guard.hold.as_ref().map(|h| h.table.now());
        let g = guard.g.take().expect("guard present");
        let (g, res) = match self.0.wait_timeout(g, timeout) {
            Ok(pair) => pair,
            Err(p) => p.into_inner(),
        };
        guard.g = Some(g);
        Self::book_wait(guard, t0);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A [`Site`]-tagged reader-writer lock; same attachment and recording
/// rules as [`TrackedMutex`]. Reads and writes record into the same
/// site (each guard books its own hold).
#[derive(Debug)]
pub struct TrackedRwLock<T: ?Sized> {
    site: Site,
    table: OnceLock<Arc<ContentionTable>>,
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`TrackedRwLock`].
pub struct TrackedReadGuard<'a, T: ?Sized> {
    _hold: Option<Hold<'a>>,
    g: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`TrackedRwLock`].
pub struct TrackedWriteGuard<'a, T: ?Sized> {
    _hold: Option<Hold<'a>>,
    g: sync::RwLockWriteGuard<'a, T>,
}

impl<T> TrackedRwLock<T> {
    /// An untracked-until-attached rwlock.
    pub const fn new(site: Site, t: T) -> TrackedRwLock<T> {
        TrackedRwLock {
            site,
            table: OnceLock::new(),
            inner: sync::RwLock::new(t),
        }
    }

    /// An rwlock born attached to `table`.
    pub fn attached(table: &Arc<ContentionTable>, site: Site, t: T) -> TrackedRwLock<T> {
        let l = TrackedRwLock::new(site, t);
        l.attach(table);
        l
    }

    /// Consumes the lock, returning the data.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> TrackedRwLock<T> {
    /// Connects this lock to a table (first caller wins).
    pub fn attach(&self, table: &Arc<ContentionTable>) {
        let _ = self.table.set(table.clone());
    }

    /// This lock's site id.
    pub fn site(&self) -> Site {
        self.site
    }

    /// The table and an open hold, per the current level, for a guard
    /// acquired via `acquire` (which runs between the counter tick and
    /// the hold-open clock read).
    fn run<G>(
        &self,
        try_acquire: impl FnOnce() -> Option<G>,
        acquire: impl FnOnce() -> G,
    ) -> (Option<Hold<'_>>, G) {
        let Some(table) = self.table.get() else {
            return (None, acquire());
        };
        match table.level() {
            Level::Off => (None, acquire()),
            Level::Counts => {
                table.note_acquisition(self.site);
                let g = try_acquire().unwrap_or_else(|| {
                    table.note_contended(self.site);
                    acquire()
                });
                (None, g)
            }
            Level::Full => {
                table.note_acquisition(self.site);
                let g = try_acquire().unwrap_or_else(|| {
                    table.note_contended(self.site);
                    let t0 = table.now();
                    let g = acquire();
                    table.record_wait_sample(self.site, table.now().saturating_sub(t0));
                    g
                });
                (
                    Some(Hold {
                        table,
                        site: self.site,
                        acquired_at: table.now(),
                        deduct: 0,
                    }),
                    g,
                )
            }
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> TrackedReadGuard<'_, T> {
        let (hold, g) = self.run(
            || match self.inner.try_read() {
                Ok(g) => Some(g),
                Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
                Err(sync::TryLockError::WouldBlock) => None,
            },
            || unpoison(self.inner.read()),
        );
        TrackedReadGuard { _hold: hold, g }
    }

    /// Acquires the exclusive write guard.
    pub fn write(&self) -> TrackedWriteGuard<'_, T> {
        let (hold, g) = self.run(
            || match self.inner.try_write() {
                Ok(g) => Some(g),
                Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
                Err(sync::TryLockError::WouldBlock) => None,
            },
            || unpoison(self.inner.write()),
        );
        TrackedWriteGuard { _hold: hold, g }
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: ?Sized> std::ops::Deref for TrackedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.g
    }
}

impl<T: ?Sized> std::ops::Deref for TrackedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.g
    }
}

impl<T: ?Sized> std::ops::DerefMut for TrackedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetricsRegistry, BG_ROW};
    use std::sync::atomic::AtomicU64;
    use std::sync::{Arc, Barrier};

    /// A manually-advanced shared clock.
    fn fake_clock() -> (Arc<AtomicU64>, Arc<ContentionTable>) {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = c.clone();
        let t = Arc::new(ContentionTable::new(move || c2.load(Ordering::Relaxed)));
        (c, t)
    }

    #[test]
    fn unattached_lock_is_a_plain_lock() {
        let m = TrackedMutex::new(Site::PmfsJournal, 1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        let l = TrackedRwLock::new(Site::NvmmDevice, 7);
        assert_eq!(*l.read(), 7);
        *l.write() = 8;
        assert_eq!(l.into_inner(), 8);
    }

    #[test]
    fn off_level_records_nothing() {
        let (_, t) = fake_clock();
        let m = TrackedMutex::attached(&t, Site::PmfsJournal, 0);
        *m.lock() += 1;
        let snap = t.snapshot();
        assert_eq!(snap.site(Site::PmfsJournal).acquisitions, 0);
        assert!(snap.touched().next().is_none());
    }

    #[test]
    fn counts_level_ticks_only_counters() {
        let (c, t) = fake_clock();
        t.set_level(Level::Counts);
        let m = TrackedMutex::attached(&t, Site::HinfsBufferPool, 0);
        for _ in 0..5 {
            c.fetch_add(100, Ordering::Relaxed);
            *m.lock() += 1;
        }
        let s = t.snapshot();
        let site = s.site(Site::HinfsBufferPool);
        assert_eq!(site.acquisitions, 5);
        assert_eq!(site.contended, 0);
        assert_eq!(site.wait.count(), 0, "counts level reads no clock");
        assert_eq!(site.hold.count(), 0);
    }

    #[test]
    fn full_level_books_hold_time_by_op_row() {
        let (c, t) = fake_clock();
        t.set_level(Level::Full);
        let m = TrackedMutex::attached(&t, Site::PmfsNamespace, ());
        {
            let _g = m.lock();
            c.fetch_add(50, Ordering::Relaxed);
        }
        let s = t.snapshot();
        let site = s.site(Site::PmfsNamespace);
        assert_eq!(site.acquisitions, 1);
        assert_eq!(site.contended, 0);
        assert_eq!(
            site.wait.count(),
            0,
            "uncontended acquire takes no wait sample"
        );
        assert_eq!(site.hold.count(), 1);
        assert_eq!(site.hold.sum(), 50);
        assert_eq!(site.hold_by_op[BG_ROW], 50, "no op scope: background row");
        assert!(site.touched());
    }

    #[test]
    fn rwlock_read_and_write_hold_separately() {
        let (c, t) = fake_clock();
        t.set_level(Level::Full);
        let l = TrackedRwLock::attached(&t, Site::NvmmDevice, 0u64);
        {
            let _r = l.read();
            c.fetch_add(10, Ordering::Relaxed);
        }
        {
            let mut w = l.write();
            *w += 1;
            c.fetch_add(30, Ordering::Relaxed);
        }
        let site = t.snapshot();
        let site = site.site(Site::NvmmDevice);
        assert_eq!(site.acquisitions, 2);
        assert_eq!(site.hold.count(), 2);
        assert_eq!(site.hold.sum(), 40);
    }

    #[test]
    fn stall_records_wait_without_a_lock() {
        let (_, t) = fake_clock();
        t.set_level(Level::Full);
        t.stall(Site::StallThrottle, 1234);
        t.stall(Site::StallThrottle, 766);
        let s = t.snapshot();
        let site = s.site(Site::StallThrottle);
        assert_eq!(site.contended, 2);
        assert_eq!(site.wait.count(), 2);
        assert_eq!(site.wait.sum(), 2000);
        assert_eq!(site.wait_by_op[BG_ROW], 2000);
        // Counts level ticks the counter only.
        t.reset();
        t.set_level(Level::Counts);
        t.stall(Site::StallWriteback, 999);
        let s = t.snapshot();
        assert_eq!(s.site(Site::StallWriteback).contended, 1);
        assert_eq!(s.site(Site::StallWriteback).wait.count(), 0);
    }

    #[test]
    fn contended_acquire_samples_wait() {
        let (c, t) = fake_clock();
        t.set_level(Level::Full);
        let m = Arc::new(TrackedMutex::attached(&t, Site::PmfsJournal, ()));
        let gate = Arc::new(Barrier::new(2));
        let holder = {
            let (m, t, c, gate) = (m.clone(), t.clone(), c.clone(), gate.clone());
            std::thread::spawn(move || {
                let g = m.lock();
                gate.wait();
                // Wait until the main thread is provably blocked behind
                // us (it books contended *before* the blocking lock),
                // then advance the clock it will read on wake-up.
                while t.snapshot().site(Site::PmfsJournal).contended == 0 {
                    std::hint::spin_loop();
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
                c.fetch_add(640, Ordering::Relaxed);
                drop(g);
            })
        };
        gate.wait();
        let g = m.lock();
        drop(g);
        holder.join().unwrap();
        let s = t.snapshot();
        let site = s.site(Site::PmfsJournal);
        assert_eq!(site.acquisitions, 2);
        assert_eq!(site.contended, 1);
        assert_eq!(site.wait.count(), site.contended);
        assert_eq!(site.wait.sum(), 640);
    }

    #[test]
    fn condvar_wait_books_wait_not_hold() {
        let (c, t) = fake_clock();
        t.set_level(Level::Full);
        let pair = Arc::new((
            TrackedMutex::attached(&t, Site::HinfsWriteback, false),
            TrackedCondvar::new(),
        ));
        // Ordering: the waiter must be parked in cv.wait before the
        // notifier advances the clock. The waiter holds the mutex until
        // it waits, so once `ready` is up the notifier's lock() only
        // succeeds after the waiter has released it inside cv.wait.
        let ready = Arc::new(AtomicU64::new(0));
        let notifier = {
            let (pair, c, ready) = (pair.clone(), c.clone(), ready.clone());
            std::thread::spawn(move || {
                while ready.load(Ordering::Acquire) == 0 {
                    std::hint::spin_loop();
                }
                let (m, cv) = &*pair;
                let mut flag = m.lock();
                *flag = true;
                c.fetch_add(500, Ordering::Relaxed);
                drop(flag);
                cv.notify_all();
            })
        };
        {
            let (m, cv) = &*pair;
            let mut flag = m.lock();
            ready.store(1, Ordering::Release);
            while !*flag {
                cv.wait(&mut flag);
            }
            c.fetch_add(100, Ordering::Relaxed);
        }
        notifier.join().unwrap();
        let s = t.snapshot();
        let site = s.site(Site::HinfsWriteback);
        // The main thread's condvar waits sum to exactly the 500 ns the
        // notifier advanced while holding; that time is wait, not hold.
        assert_eq!(site.wait.sum(), 500);
        assert_eq!(site.hold.count(), 2);
        assert_eq!(site.hold.sum(), 600, "notifier held 500, waiter held 100");
    }

    #[test]
    fn reset_zeroes_everything() {
        let (c, t) = fake_clock();
        t.set_level(Level::Full);
        let m = TrackedMutex::attached(&t, Site::ExtfsJbd, ());
        {
            let _g = m.lock();
            c.fetch_add(9, Ordering::Relaxed);
        }
        t.stall(Site::StallJournalFull, 77);
        assert!(t.snapshot().touched().count() == 2);
        t.reset();
        let s = t.snapshot();
        assert!(s.touched().next().is_none());
        assert_eq!(s.site(Site::ExtfsJbd).hold.count(), 0);
    }

    #[test]
    fn top_by_wait_ranks_deterministically() {
        let (_, t) = fake_clock();
        t.set_level(Level::Full);
        t.stall(Site::StallThrottle, 10);
        t.stall(Site::StallWriteback, 500);
        t.stall(Site::StallJournalFull, 100);
        let s = t.snapshot();
        let top: Vec<Site> = s.top_by_wait(2).iter().map(|x| x.site).collect();
        assert_eq!(top, vec![Site::StallWriteback, Site::StallJournalFull]);
        assert_eq!(s.top_by_wait(10).len(), 3);
    }

    #[test]
    fn metrics_expose_touched_sites_with_prefixed_names() {
        let (c, t) = fake_clock();
        t.set_level(Level::Full);
        let m = TrackedMutex::attached(&t, Site::HinfsBufferPool, ());
        {
            let _g = m.lock();
            c.fetch_add(25, Ordering::Relaxed);
        }
        let reg = MetricsRegistry::new();
        reg.register("", t.clone());
        let snap = reg.snapshot();
        assert_eq!(snap.counter("obsv_site_hinfs_buffer_pool_acquisitions"), 1);
        assert_eq!(snap.counter("obsv_site_hinfs_buffer_pool_contended"), 0);
        assert_eq!(
            snap.histo("obsv_site_hinfs_buffer_pool_hold_ns")
                .unwrap()
                .sum(),
            25
        );
        assert!(
            !snap.to_prometheus().contains("obsv_site_pmfs_journal"),
            "untouched sites stay out of the exposition"
        );
    }

    #[test]
    fn labels_unique_and_ordered() {
        let mut seen = std::collections::HashSet::new();
        for (i, s) in ALL_SITES.iter().enumerate() {
            assert_eq!(*s as usize, i);
            assert!(seen.insert(s.label()));
            assert!(s.label().contains('.'), "{} is not dotted", s.label());
        }
        assert_eq!(ALL_SITES.len(), NSITES);
    }
}
