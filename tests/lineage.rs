//! Data-lifecycle provenance: the lineage ledger's durability-lag
//! contract, checked end to end on real mounts.
//!
//! 1. Synchronous acks are exact: after `fsync` returns, nothing that op
//!    acked may still be volatile — every drain is lag-0 and the max-lag
//!    gauge stays at zero, on all four systems.
//! 2. The ledger is a crash oracle: once it reports a write's bytes as
//!    writeback-drained, a power failure at that instant (no unmount, no
//!    fsync) must not lose them.
//! 3. HiNFS's own staleness promise (30 s dirty-age + periodic-pass
//!    slack) is audited online against the measured max lag (audit
//!    code 14), and a driven run stays inside the bound.

use std::sync::Arc;

use hinfs_suite::prelude::*;
use workloads::filebench::{FilebenchParams, Fileserver};
use workloads::fileset::{Fileset, FilesetSpec};
use workloads::setups::{build, remount_with, ObsvOptions, SystemConfig, SystemKind};

/// Distinct from anything the allocator zero-fills.
const FILL: u8 = 0x5C;
/// Large enough that metadata-page drains alone can never account for it.
const PAYLOAD: usize = 256 << 10;

fn cfg() -> SystemConfig {
    SystemConfig {
        tracked: true,
        device_bytes: 64 << 20,
        buffer_bytes: 2 << 20,
        cache_pages: 512,
        journal_blocks: 256,
        inode_count: 4096,
        obsv: ObsvOptions {
            lineage: true,
            ..ObsvOptions::none()
        },
        ..SystemConfig::default()
    }
}

/// After `fsync` returns, the acked data is durable *now*: the ledger
/// must show only lag-0 (sync-contract) drains and a zero max-lag gauge.
#[test]
fn fsync_acked_data_has_zero_lag_on_every_system() {
    for kind in [
        SystemKind::Pmfs,
        SystemKind::Hinfs,
        SystemKind::Ext4Bd,
        SystemKind::Ext4Dax,
    ] {
        let sys = build(kind, &cfg()).unwrap();
        let obs = sys.obs.as_ref().expect("lineage-armed mount");
        let fd = sys
            .fs
            .open("/sync.log", OpenFlags::RDWR | OpenFlags::CREATE)
            .unwrap();
        for round in 0..8u64 {
            sys.fs
                .write(fd, round * 16 * 1024, &vec![FILL; 16 * 1024])
                .unwrap();
            sys.fs.fsync(fd).unwrap();
        }
        sys.fs.close(fd).unwrap();

        let snap = obs.lineage().snap();
        let label = kind.label();
        assert_eq!(snap.max_lag_ns, 0, "{label}: fsync'd data lagged its ack");
        assert_eq!(snap.drains_lazy, 0, "{label}: no lazy pass ran");
        assert!(
            snap.drains_sync > 0,
            "{label}: the fsyncs must retire stamps or persist inline"
        );
        assert_eq!(snap.lag.quantile(0.99), 0, "{label}: lag histogram");
        assert_eq!(
            snap.layer(obsv::Layer::Logical),
            8 * 16 * 1024,
            "{label}: logical bytes ledger"
        );
        assert!(
            snap.layer(obsv::Layer::NvmmPersisted) >= 8 * 16 * 1024,
            "{label}: acked bytes reached NVMM"
        );
        sys.fs.unmount().unwrap();
    }
}

/// The ledger as a crash oracle: drive background drains (no fsync, no
/// unmount) until `writeback_drained` covers a buffered write's bytes,
/// then power-fail the device at that exact instant. Recovery must find
/// the payload intact — if the ledger ever reported bytes drained that
/// were still volatile, this is where it burns.
#[test]
fn crash_after_reported_drain_finds_the_data() {
    for kind in [SystemKind::Hinfs, SystemKind::Pmfs, SystemKind::Ext4Bd] {
        let sys = build(kind, &cfg()).unwrap();
        let obs = Arc::clone(sys.obs.as_ref().expect("lineage-armed mount"));
        let payload: Vec<u8> = (0..PAYLOAD).map(|i| (i % 251) as u8).collect();
        let fd = sys
            .fs
            .open("/oracle.dat", OpenFlags::RDWR | OpenFlags::CREATE)
            .unwrap();
        sys.fs.write(fd, 0, &payload).unwrap();

        // Tick virtual time forward in periodic-pass steps until the
        // ledger claims our bytes hit NVMM via writeback (PMFS reports
        // them inline-drained immediately; HiNFS needs the 30 s
        // dirty-age rule to pass; ext4 needs a periodic jbd commit).
        let mut reported = false;
        for _ in 0..40 {
            if obs.lineage().snap().layer(obsv::Layer::WritebackDrained) >= PAYLOAD as u64 {
                reported = true;
                break;
            }
            sys.env.set_now(sys.env.now() + 5_000_000_000);
            sys.fs.tick(sys.env.now());
        }
        let label = kind.label();
        assert!(
            reported,
            "{label}: background drains never covered the payload"
        );

        // Power-fail with the mount live: open descriptor, no fsync.
        sys.dev.crash();
        let dev = Arc::clone(&sys.dev);
        let env = Arc::clone(&sys.env);
        drop(sys);

        let sys2 = remount_with(kind, dev, env, &cfg())
            .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));
        let st = sys2
            .fs
            .stat("/oracle.dat")
            .unwrap_or_else(|e| panic!("{label}: file lost after reported drain: {e}"));
        assert!(
            st.size as usize >= PAYLOAD,
            "{label}: size {} lost bytes the ledger reported drained",
            st.size
        );
        let fd = sys2.fs.open("/oracle.dat", OpenFlags::READ).unwrap();
        let mut got = vec![0u8; PAYLOAD];
        sys2.fs.read(fd, 0, &mut got).unwrap();
        sys2.fs.close(fd).unwrap();
        assert_eq!(
            got, payload,
            "{label}: drained bytes did not survive the crash"
        );
        sys2.fs.unmount().unwrap();
    }
}

/// HiNFS promises acked data is never more than `dirty_age_ns` plus two
/// periodic-pass periods from durability. A driven run with real lazy
/// drains must measure a non-zero max lag that the online auditor
/// (check 14, `lineage.sync_decay_bound`) confirms is inside the bound.
#[test]
fn hinfs_max_lag_stays_inside_the_sync_decay_bound() {
    let mut c = cfg();
    c.obsv.audit = true;
    let sys = build(SystemKind::Hinfs, &c).unwrap();
    let obs = Arc::clone(sys.obs.as_ref().expect("lineage-armed mount"));
    let set = Fileset::populate(&*sys.fs, FilesetSpec::new("/d", 48, 10, 16 << 10), 7).unwrap();
    let actors: Vec<Box<dyn Actor>> =
        vec![Box::new(Fileserver::new(set, FilebenchParams::default()))];
    Runner::new(sys.env.clone(), sys.fs.clone())
        .with_device(sys.dev.clone())
        .run(actors, RunLimit::duration_ms(200), 42);
    // Park past the dirty-age horizon so the periodic passes measurably
    // drain aged blocks (real, non-zero lag) before the audit runs.
    for _ in 0..8 {
        sys.env.set_now(sys.env.now() + 5_000_000_000);
        sys.fs.tick(sys.env.now());
    }

    let snap = obs.lineage().snap();
    assert!(snap.drains_lazy > 0, "run produced no lazy drains to bound");
    assert!(snap.max_lag_ns > 0, "lazy drains must measure real lag");
    let hc = HinfsConfig::default();
    let bound = hc.dirty_age_ns + 2 * hc.periodic_wb_ns;
    assert!(
        snap.max_lag_ns <= bound,
        "max lag {} exceeds the sync-decay bound {}",
        snap.max_lag_ns,
        bound
    );
    let rep = sys.introspect.as_ref().expect("hinfs introspects").audit();
    assert!(rep.is_clean(), "audit violations: {:?}", rep.violations);
    sys.fs.unmount().unwrap();
}
