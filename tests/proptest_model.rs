//! Property-based model testing: random operation sequences against the
//! shared in-memory reference model (`faultfs::RefModel` — the same model
//! the coverage-guided fuzzer checks differentially), on HiNFS and the
//! ext4 baseline. Catches read-consistency bugs in the DRAM/NVMM
//! stitching and the page cache.

use std::collections::HashMap;

use faultfs::RefModel;
use hinfs_suite::prelude::*;
use proptest::prelude::*;
use workloads::setups::{build, SystemConfig, SystemKind};

#[derive(Debug, Clone)]
enum Op {
    Write {
        file: u8,
        off: u16,
        len: u16,
        val: u8,
    },
    Append {
        file: u8,
        len: u16,
        val: u8,
    },
    Read {
        file: u8,
        off: u16,
        len: u16,
    },
    Truncate {
        file: u8,
        size: u16,
    },
    Fsync {
        file: u8,
    },
    Tick,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..4, 0u16..16000, 1u16..4000, any::<u8>())
            .prop_map(|(file, off, len, val)| Op::Write { file, off, len, val }),
        2 => (0u8..4, 1u16..4000, any::<u8>())
            .prop_map(|(file, len, val)| Op::Append { file, len, val }),
        3 => (0u8..4, 0u16..20000, 1u16..4000)
            .prop_map(|(file, off, len)| Op::Read { file, off, len }),
        1 => (0u8..4, 0u16..16000).prop_map(|(file, size)| Op::Truncate { file, size }),
        1 => (0u8..4).prop_map(|file| Op::Fsync { file }),
        1 => Just(Op::Tick),
    ]
}

fn check_ops(kind: SystemKind, ops: &[Op]) {
    let cfg = SystemConfig {
        device_bytes: 32 << 20,
        // Tiny buffer/cache so eviction and refetch paths run constantly.
        buffer_bytes: 64 << 12,
        cache_pages: 64,
        journal_blocks: 256,
        inode_count: 512,
        ..SystemConfig::default()
    };
    let sys = build(kind, &cfg).unwrap();
    let fs = &sys.fs;
    let mut model = RefModel::new();
    let mut fds = HashMap::new();
    for file in 0u8..4 {
        let fd = fs
            .open(&format!("/p{file}"), OpenFlags::RDWR | OpenFlags::CREATE)
            .unwrap();
        fds.insert(file, fd);
        model.create(file);
    }
    let mut now = 0u64;
    for op in ops {
        now += 100_000;
        match *op {
            Op::Write {
                file,
                off,
                len,
                val,
            } => {
                let data = vec![val; len as usize];
                fs.write(fds[&file], off as u64, &data).unwrap();
                model.write(file, off as usize, &data);
            }
            Op::Append { file, len, val } => {
                let data = vec![val; len as usize];
                let off = fs.append(fds[&file], &data).unwrap();
                let end = model.size(file).unwrap_or(0) as usize;
                assert_eq!(off as usize, end, "{}: append offset", kind.label());
                model.write(file, end, &data);
            }
            Op::Read { file, off, len } => {
                let mut buf = vec![0xAAu8; len as usize];
                let n = fs.read(fds[&file], off as u64, &mut buf).unwrap();
                let want = model.read(file, off as usize, len as usize);
                assert_eq!(n, want.len(), "{}: read length", kind.label());
                assert_eq!(&buf[..n], &want[..], "{}: read content", kind.label());
            }
            Op::Truncate { file, size } => {
                fs.truncate(fds[&file], size as u64).unwrap();
                model.truncate(file, size as usize);
            }
            Op::Fsync { file } => {
                fs.fsync(fds[&file]).unwrap();
            }
            Op::Tick => fs.tick(now),
        }
        // Size invariant after every op.
        for (file, fd) in &fds {
            let want = model.size(*file).unwrap_or(0);
            assert_eq!(
                fs.fstat(*fd).unwrap().size,
                want,
                "{}: size of /p{file}",
                kind.label()
            );
        }
    }
    // Full-content check at the end.
    for (file, fd) in &fds {
        let want = model.content(*file).unwrap_or(&[]).to_vec();
        let mut got = vec![0u8; want.len()];
        fs.read(*fd, 0, &mut got).unwrap();
        assert_eq!(got, want, "{}: final content of /p{file}", kind.label());
        fs.close(*fd).unwrap();
    }
    fs.unmount().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, ..ProptestConfig::default()
    })]

    #[test]
    fn hinfs_matches_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        check_ops(SystemKind::Hinfs, &ops);
    }

    #[test]
    fn hinfs_nclfw_matches_model(ops in prop::collection::vec(op_strategy(), 1..40)) {
        check_ops(SystemKind::HinfsNclfw, &ops);
    }

    #[test]
    fn ext4_matches_model(ops in prop::collection::vec(op_strategy(), 1..40)) {
        check_ops(SystemKind::Ext4Bd, &ops);
    }

    #[test]
    fn pmfs_matches_model(ops in prop::collection::vec(op_strategy(), 1..40)) {
        check_ops(SystemKind::Pmfs, &ops);
    }
}
