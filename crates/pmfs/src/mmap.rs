//! Direct memory-mapped I/O (PMFS-style).
//!
//! A mapping translates loads and stores straight to the NVMM blocks of the
//! file — one copy, no page cache. Stores go through the volatile (cached)
//! path and are *not* durable until `msync`, which flushes exactly the
//! dirtied cachelines, mirroring how CPU caches treat mapped NVMM.

use std::collections::BTreeSet;
use std::sync::Arc;

use fskit::{FsError, MmapHandle, Result};
use nvmm::{Cat, NvmmDevice, BLOCK_SIZE, CACHELINE};
use parking_lot::Mutex;

use crate::fs::{OpenFile, Pmfs};
use crate::layout::Layout;
use crate::tree;

/// A live mapping of a file region.
pub struct PmfsMmap {
    dev: Arc<NvmmDevice>,
    /// Physical block of each file block covering the mapping.
    blocks: Vec<u64>,
    /// Offset of the mapping start within the first block.
    first_off: usize,
    len: usize,
    /// Absolute device cacheline indices dirtied since the last msync.
    dirty: Mutex<BTreeSet<u64>>,
}

impl PmfsMmap {
    /// Builds a mapping of `[off, off+len)` of the open file, allocating
    /// (zeroed) blocks for any holes in the range. The range must lie
    /// within the file.
    pub fn new(fs: &Pmfs, of: &OpenFile, off: u64, len: usize) -> Result<PmfsMmap> {
        if len == 0 {
            return Err(FsError::InvalidArgument("empty mapping"));
        }
        let dev = fs.device().clone();
        let mut state = of.handle.state.write();
        if off + len as u64 > state.size {
            return Err(FsError::InvalidArgument("mapping beyond end of file"));
        }
        let first_iblk = off / BLOCK_SIZE as u64;
        let last_iblk = (off + len as u64 - 1) / BLOCK_SIZE as u64;
        let mut blocks = Vec::with_capacity((last_iblk - first_iblk + 1) as usize);
        let tx = fs.journal().begin()?;
        let mut meta_changed = false;
        for iblk in first_iblk..=last_iblk {
            let pblk = match tree::lookup(&dev, &state, iblk) {
                Some(p) => p,
                None => {
                    let p = fs.allocator().alloc()?;
                    dev.zero_persist(Cat::Meta, Layout::block_off(p), BLOCK_SIZE);
                    tree::insert(&dev, fs.allocator(), &mut state, iblk, p)?;
                    state.blocks += 1;
                    meta_changed = true;
                    p
                }
            };
            blocks.push(pblk);
        }
        if meta_changed {
            let snap = *state;
            drop(state);
            fs.log_write_inode(&tx, of.ino, &snap)?;
        }
        fs.journal().commit(tx);
        Ok(PmfsMmap {
            dev,
            blocks,
            first_off: (off % BLOCK_SIZE as u64) as usize,
            len,
            dirty: Mutex::new(BTreeSet::new()),
        })
    }

    fn check(&self, off: usize, len: usize) -> Result<()> {
        if off.checked_add(len).is_none_or(|end| end > self.len) {
            return Err(FsError::InvalidArgument("mmap access out of range"));
        }
        Ok(())
    }

    /// Iterates `(device_offset, start, len)` segments covering the range.
    fn segments(&self, off: usize, len: usize) -> Vec<(u64, usize, usize)> {
        let mut out = Vec::new();
        let mut done = 0;
        while done < len {
            let pos = self.first_off + off + done;
            let bidx = pos / BLOCK_SIZE;
            let in_blk = pos % BLOCK_SIZE;
            let chunk = (BLOCK_SIZE - in_blk).min(len - done);
            let dev_off = Layout::block_off(self.blocks[bidx]) + in_blk as u64;
            out.push((dev_off, done, chunk));
            done += chunk;
        }
        out
    }
}

impl MmapHandle for PmfsMmap {
    fn len(&self) -> usize {
        self.len
    }

    fn load(&self, off: usize, buf: &mut [u8]) -> Result<()> {
        self.check(off, buf.len())?;
        for (dev_off, start, len) in self.segments(off, buf.len()) {
            self.dev
                .read(Cat::UserRead, dev_off, &mut buf[start..start + len]);
        }
        Ok(())
    }

    fn store(&self, off: usize, data: &[u8]) -> Result<()> {
        self.check(off, data.len())?;
        let mut dirty = self.dirty.lock();
        for (dev_off, start, len) in self.segments(off, data.len()) {
            self.dev
                .write_cached(Cat::UserWrite, dev_off, &data[start..start + len]);
            let first = dev_off / CACHELINE as u64;
            let last = (dev_off + len as u64 - 1) / CACHELINE as u64;
            for line in first..=last {
                dirty.insert(line);
            }
        }
        Ok(())
    }

    fn msync(&self, off: usize, len: usize) -> Result<()> {
        self.check(off, len)?;
        let mut dirty = self.dirty.lock();
        // Collect the dirty lines that fall inside the synced range.
        let mut in_range: Vec<u64> = Vec::new();
        for (dev_off, _, seg_len) in self.segments(off, len) {
            let first = dev_off / CACHELINE as u64;
            let last = (dev_off + seg_len as u64 - 1) / CACHELINE as u64;
            for line in dirty.range(first..=last) {
                in_range.push(*line);
            }
        }
        // Flush coalesced runs of consecutive lines.
        let mut i = 0;
        while i < in_range.len() {
            let start = in_range[i];
            let mut end = start;
            while i + 1 < in_range.len() && in_range[i + 1] == end + 1 {
                i += 1;
                end = in_range[i];
            }
            self.dev.clflush(
                Cat::UserWrite,
                start * CACHELINE as u64,
                ((end - start + 1) as usize) * CACHELINE,
            );
            i += 1;
        }
        for line in &in_range {
            dirty.remove(line);
        }
        self.dev.sfence();
        Ok(())
    }
}
