//! HiNFS runtime counters (feed the experiment harness and Fig 6/9).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of one HiNFS mount.
#[derive(Debug, Default)]
pub struct HinfsStats {
    /// Lazy-persistent writes that hit an already-buffered block.
    pub buffer_hits: AtomicU64,
    /// Lazy-persistent writes that allocated a new buffer block.
    pub buffer_misses: AtomicU64,
    /// Writes routed to the DRAM buffer.
    pub lazy_writes: AtomicU64,
    /// Writes that bypassed the buffer via the Buffer Benefit Model
    /// (case 2 of §3.3.2).
    pub eager_writes: AtomicU64,
    /// Writes that were synchronous by flag/mount (case 1 of §3.3.2).
    pub sync_writes: AtomicU64,
    /// Cachelines fetched from NVMM into the buffer (CLFW fetch).
    pub fetch_lines: AtomicU64,
    /// Cachelines written back from the buffer to NVMM.
    pub writeback_lines: AtomicU64,
    /// Buffer blocks flushed.
    pub writeback_blocks: AtomicU64,
    /// Times a foreground write had to flush a victim itself because the
    /// pool was exhausted (the stall the paper's `Low_f` tries to avoid).
    pub foreground_stalls: AtomicU64,
    /// Buffer Benefit Model evaluations at synchronization points.
    pub bbm_evals: AtomicU64,
    /// Evaluations whose decision matched the block's previous decision
    /// (the Fig 6 accuracy numerator).
    pub bbm_accurate: AtomicU64,
    /// Lazy transactions opened / committed.
    pub txs_opened: AtomicU64,
    pub txs_committed: AtomicU64,
    /// Dirty buffered blocks dropped without writeback because their file
    /// was deleted (the short-lived-file win of Fig 10/13).
    pub dropped_dirty_blocks: AtomicU64,
}

/// Point-in-time copy of [`HinfsStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub buffer_hits: u64,
    pub buffer_misses: u64,
    pub lazy_writes: u64,
    pub eager_writes: u64,
    pub sync_writes: u64,
    pub fetch_lines: u64,
    pub writeback_lines: u64,
    pub writeback_blocks: u64,
    pub foreground_stalls: u64,
    pub bbm_evals: u64,
    pub bbm_accurate: u64,
    pub txs_opened: u64,
    pub txs_committed: u64,
    pub dropped_dirty_blocks: u64,
}

impl HinfsStats {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn bump(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            buffer_hits: g(&self.buffer_hits),
            buffer_misses: g(&self.buffer_misses),
            lazy_writes: g(&self.lazy_writes),
            eager_writes: g(&self.eager_writes),
            sync_writes: g(&self.sync_writes),
            fetch_lines: g(&self.fetch_lines),
            writeback_lines: g(&self.writeback_lines),
            writeback_blocks: g(&self.writeback_blocks),
            foreground_stalls: g(&self.foreground_stalls),
            bbm_evals: g(&self.bbm_evals),
            bbm_accurate: g(&self.bbm_accurate),
            txs_opened: g(&self.txs_opened),
            txs_committed: g(&self.txs_committed),
            dropped_dirty_blocks: g(&self.dropped_dirty_blocks),
        }
    }
}

impl StatsSnapshot {
    /// The Fig 6 metric: fraction of Buffer Benefit Model evaluations whose
    /// decision matched the block's previous decision.
    pub fn bbm_accuracy(&self) -> f64 {
        if self.bbm_evals == 0 {
            return 1.0;
        }
        self.bbm_accurate as f64 / self.bbm_evals as f64
    }

    /// Buffer write hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.buffer_hits + self.buffer_misses;
        if total == 0 {
            return 0.0;
        }
        self.buffer_hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = HinfsStats::new();
        HinfsStats::bump(&s.lazy_writes, 3);
        HinfsStats::bump(&s.eager_writes, 1);
        let snap = s.snapshot();
        assert_eq!(snap.lazy_writes, 3);
        assert_eq!(snap.eager_writes, 1);
    }

    #[test]
    fn derived_ratios() {
        let mut snap = StatsSnapshot::default();
        assert_eq!(snap.bbm_accuracy(), 1.0);
        assert_eq!(snap.hit_ratio(), 0.0);
        snap.bbm_evals = 10;
        snap.bbm_accurate = 9;
        assert!((snap.bbm_accuracy() - 0.9).abs() < 1e-9);
        snap.buffer_hits = 3;
        snap.buffer_misses = 1;
        assert!((snap.hit_ratio() - 0.75).abs() < 1e-9);
    }
}
