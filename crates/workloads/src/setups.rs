//! System-under-test factory: builds each of the evaluated file systems
//! (Table 3 plus the HiNFS ablation variants) on a fresh emulated device.

use std::sync::Arc;

use extfs::{ExtMode, ExtOptions, Extfs};
use fskit::{FileSystem, Result};
use hinfs::{Hinfs, HinfsConfig};
use nvmm::{CostModel, NvmmDevice, SimEnv, TimeMode, BLOCK_SIZE};
use pmfs::{Pmfs, PmfsOptions};

/// The systems of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// PMFS: NVMM-aware, direct access (the normalization baseline).
    Pmfs,
    /// EXT4 with the DAX patch.
    Ext4Dax,
    /// ext2 on the NVMMBD block device (no journal).
    Ext2Bd,
    /// ext4 on the NVMMBD block device (ordered journal).
    Ext4Bd,
    /// HiNFS.
    Hinfs,
    /// HiNFS without CLFW (Fig 9 ablation).
    HinfsNclfw,
    /// HiNFS with the Eager-Persistent Write Checker disabled (Fig 12/13
    /// ablation: every write buffered).
    HinfsWb,
}

impl SystemKind {
    /// Report label (matches the paper's names).
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Pmfs => "pmfs",
            SystemKind::Ext4Dax => "ext4-dax",
            SystemKind::Ext2Bd => "ext2-nvmmbd",
            SystemKind::Ext4Bd => "ext4-nvmmbd",
            SystemKind::Hinfs => "hinfs",
            SystemKind::HinfsNclfw => "hinfs-nclfw",
            SystemKind::HinfsWb => "hinfs-wb",
        }
    }

    /// The five systems of the overall comparison (Fig 7/8/10/11).
    pub const FIG7: [SystemKind; 5] = [
        SystemKind::Pmfs,
        SystemKind::Ext4Dax,
        SystemKind::Ext2Bd,
        SystemKind::Ext4Bd,
        SystemKind::Hinfs,
    ];

    /// The six systems of the trace/macro comparison (Fig 12/13).
    pub const FIG12: [SystemKind; 6] = [
        SystemKind::Pmfs,
        SystemKind::Ext4Dax,
        SystemKind::Ext2Bd,
        SystemKind::Ext4Bd,
        SystemKind::HinfsWb,
        SystemKind::Hinfs,
    ];
}

/// Sizing and model parameters of a system build.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Device capacity in bytes.
    pub device_bytes: usize,
    /// Cost model (latency sweeps replace this).
    pub cost: CostModel,
    /// Virtual (deterministic) or spin (busy-wait) time.
    pub mode: TimeMode,
    /// HiNFS DRAM buffer size in bytes.
    pub buffer_bytes: usize,
    /// ext page cache size in pages.
    pub cache_pages: usize,
    /// Journal region blocks (both families).
    pub journal_blocks: u64,
    /// Inode slots.
    pub inode_count: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            device_bytes: 512 << 20,
            cost: CostModel::default(),
            mode: TimeMode::Virtual,
            buffer_bytes: 64 << 20,
            cache_pages: 16384,
            journal_blocks: 2048,
            inode_count: 65536,
        }
    }
}

impl SystemConfig {
    /// Scales the config to a small test footprint.
    pub fn small() -> SystemConfig {
        SystemConfig {
            device_bytes: 128 << 20,
            buffer_bytes: 8 << 20,
            cache_pages: 2048,
            journal_blocks: 512,
            inode_count: 16384,
            ..SystemConfig::default()
        }
    }
}

/// A built system under test.
pub struct System {
    /// Which system this is.
    pub kind: SystemKind,
    /// The mounted file system.
    pub fs: Arc<dyn FileSystem>,
    /// The backing device (for traffic counters and crash tests).
    pub dev: Arc<NvmmDevice>,
    /// The simulation environment.
    pub env: Arc<SimEnv>,
    /// The concrete HiNFS handle when `kind` is a HiNFS variant (for
    /// policy statistics such as the Fig 6 accuracy counters).
    pub hinfs: Option<Arc<Hinfs>>,
}

/// Builds (formats and mounts) a system of the given kind.
pub fn build(kind: SystemKind, cfg: &SystemConfig) -> Result<System> {
    let env = SimEnv::new(cfg.mode, cfg.cost.clone());
    let dev = NvmmDevice::new(env.clone(), cfg.device_bytes);
    let popts = PmfsOptions {
        journal_blocks: cfg.journal_blocks,
        inode_count: cfg.inode_count,
    };
    let eopts = ExtOptions {
        journal_blocks: cfg.journal_blocks,
        inode_count: cfg.inode_count,
        cache_pages: cfg.cache_pages,
        ..ExtOptions::default()
    };
    let (fs, hinfs): (Arc<dyn FileSystem>, Option<Arc<Hinfs>>) = match kind {
        SystemKind::Pmfs => (Pmfs::mkfs(dev.clone(), popts)?, None),
        SystemKind::Ext4Dax => (Extfs::mkfs(dev.clone(), ExtMode::Ext4Dax, eopts)?, None),
        SystemKind::Ext2Bd => (Extfs::mkfs(dev.clone(), ExtMode::Ext2, eopts)?, None),
        SystemKind::Ext4Bd => (Extfs::mkfs(dev.clone(), ExtMode::Ext4, eopts)?, None),
        SystemKind::Hinfs | SystemKind::HinfsNclfw | SystemKind::HinfsWb => {
            let mut hcfg = HinfsConfig::default().with_buffer_bytes(cfg.buffer_bytes);
            if kind == SystemKind::HinfsNclfw {
                hcfg = hcfg.nclfw();
            }
            if kind == SystemKind::HinfsWb {
                hcfg = hcfg.wb_only();
            }
            let h = Hinfs::mkfs(dev.clone(), popts, hcfg)?;
            (h.clone(), Some(h))
        }
    };
    Ok(System {
        kind,
        fs,
        dev,
        env,
        hinfs,
    })
}

/// Unmounts a system and mounts it again on the same device — the
/// equivalent of the paper's "after clearing the contents of the OS page
/// cache": every volatile cache (HiNFS DRAM buffer, ext page cache) starts
/// cold while the persistent state survives.
pub fn remount(sys: System) -> Result<System> {
    sys.fs.unmount()?;
    let System { kind, dev, env, .. } = sys;
    // Reconstruct mount-time options from the device-independent defaults;
    // sizes that matter post-mount (buffer/cache) are re-derived by the
    // caller through `build`-time config, so carry them via remount_with.
    remount_with(kind, dev, env, &SystemConfig::default())
}

/// Remounts with explicit sizing (buffer bytes / cache pages).
pub fn remount_with(
    kind: SystemKind,
    dev: Arc<NvmmDevice>,
    env: Arc<SimEnv>,
    cfg: &SystemConfig,
) -> Result<System> {
    let eopts = ExtOptions {
        journal_blocks: cfg.journal_blocks,
        inode_count: cfg.inode_count,
        cache_pages: cfg.cache_pages,
        ..ExtOptions::default()
    };
    let (fs, hinfs): (Arc<dyn FileSystem>, Option<Arc<Hinfs>>) = match kind {
        SystemKind::Pmfs => (Pmfs::mount(dev.clone())?, None),
        SystemKind::Ext4Dax => (Extfs::mount(dev.clone(), ExtMode::Ext4Dax, eopts)?, None),
        SystemKind::Ext2Bd => (Extfs::mount(dev.clone(), ExtMode::Ext2, eopts)?, None),
        SystemKind::Ext4Bd => (Extfs::mount(dev.clone(), ExtMode::Ext4, eopts)?, None),
        SystemKind::Hinfs | SystemKind::HinfsNclfw | SystemKind::HinfsWb => {
            let mut hcfg = HinfsConfig::default().with_buffer_bytes(cfg.buffer_bytes);
            if kind == SystemKind::HinfsNclfw {
                hcfg = hcfg.nclfw();
            }
            if kind == SystemKind::HinfsWb {
                hcfg = hcfg.wb_only();
            }
            let h = Hinfs::mount(dev.clone(), hcfg)?;
            (h.clone(), Some(h))
        }
    };
    Ok(System {
        kind,
        fs,
        dev,
        env,
        hinfs,
    })
}

/// Convenience: bytes-per-page constant used when sizing caches relative
/// to a dataset.
pub const PAGE_BYTES: usize = BLOCK_SIZE;

#[cfg(test)]
mod tests {
    use super::*;
    use fskit::OpenFlags;

    #[test]
    fn every_system_builds_and_works() {
        for kind in [
            SystemKind::Pmfs,
            SystemKind::Ext4Dax,
            SystemKind::Ext2Bd,
            SystemKind::Ext4Bd,
            SystemKind::Hinfs,
            SystemKind::HinfsNclfw,
            SystemKind::HinfsWb,
        ] {
            let sys = build(kind, &SystemConfig::small()).unwrap();
            let fd = sys
                .fs
                .open("/smoke", OpenFlags::RDWR | OpenFlags::CREATE)
                .unwrap();
            sys.fs.write(fd, 0, b"hello world").unwrap();
            let mut buf = [0u8; 11];
            sys.fs.read(fd, 0, &mut buf).unwrap();
            assert_eq!(&buf, b"hello world", "{}", kind.label());
            sys.fs.fsync(fd).unwrap();
            sys.fs.close(fd).unwrap();
            sys.fs.unmount().unwrap();
            assert_eq!(
                sys.hinfs.is_some(),
                matches!(
                    kind,
                    SystemKind::Hinfs | SystemKind::HinfsNclfw | SystemKind::HinfsWb
                )
            );
        }
    }
}
