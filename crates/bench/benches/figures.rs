//! Criterion wrappers: one bench group per figure, running a scaled-down
//! slice of each experiment on the spin-mode (busy-wait) emulator — the
//! same technique the paper's testbed used. The full deterministic
//! experiments live in the `experiments` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use nvmm::{CostModel, TimeMode};
use workloads::filebench::{FilebenchParams, Fileserver, Varmail};
use workloads::fileset::{Fileset, FilesetSpec};
use workloads::runner::{RunLimit, Runner};
use workloads::setups::{build, SystemConfig, SystemKind};

fn spin_config() -> SystemConfig {
    SystemConfig {
        device_bytes: 64 << 20,
        mode: TimeMode::Spin,
        buffer_bytes: 4 << 20,
        cache_pages: 1024,
        journal_blocks: 256,
        inode_count: 8192,
        cost: CostModel {
            // Scaled-down delays keep the busy-wait benches fast while
            // preserving the write/read asymmetry.
            nvmm_write_latency_ns: 200,
            ..CostModel::default()
        },
        ..SystemConfig::default()
    }
}

fn bench_personality(c: &mut Criterion, group: &str, kinds: &[SystemKind], varmail: bool) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    for &kind in kinds {
        let sys = build(kind, &spin_config()).expect("build");
        let set = Fileset::populate(&*sys.fs, FilesetSpec::new("/data", 48, 10, 16 << 10), 1)
            .expect("populate");
        let params = FilebenchParams {
            iosize: 64 << 10,
            append_size: 4 << 10,
        };
        let runner = Runner::new(sys.env.clone(), sys.fs.clone());
        g.bench_function(kind.label(), |b| {
            b.iter(|| {
                let actors: Vec<Box<dyn workloads::Actor>> = if varmail {
                    vec![Box::new(Varmail::new(set.clone(), params))]
                } else {
                    vec![Box::new(Fileserver::new(set.clone(), params))]
                };
                runner.run(actors, RunLimit::steps(5), 3)
            })
        });
        sys.fs.unmount().expect("unmount");
    }
    g.finish();
}

/// Fig 7 headline: fileserver loops across the five systems.
fn fig07_overall(c: &mut Criterion) {
    bench_personality(c, "fig07_fileserver_loops", &SystemKind::FIG7, false);
}

/// Varmail (eager-persistent writes): HiNFS must not lose to PMFS.
fn fig07_varmail(c: &mut Criterion) {
    bench_personality(
        c,
        "fig07_varmail_loops",
        &[SystemKind::Pmfs, SystemKind::Hinfs, SystemKind::HinfsWb],
        true,
    );
}

/// Fig 9 ablation: CLFW vs NCLFW on small unaligned writes.
fn fig09_clfw(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09_small_writes");
    g.sample_size(10);
    for kind in [SystemKind::Hinfs, SystemKind::HinfsNclfw, SystemKind::Pmfs] {
        let sys = build(kind, &spin_config()).expect("build");
        let fd = sys
            .fs
            .open("/small", fskit::OpenFlags::RDWR | fskit::OpenFlags::CREATE)
            .expect("open");
        sys.fs.write(fd, 0, &vec![0u8; 1 << 20]).expect("prime");
        sys.fs.fsync(fd).expect("fsync");
        let mut off = 0u64;
        g.bench_function(kind.label(), |b| {
            b.iter(|| {
                off = (off + 100) % ((1 << 20) - 200);
                sys.fs.write(fd, off, &[7u8; 100]).expect("write");
            })
        });
        sys.fs.fsync(fd).expect("fsync");
        sys.fs.close(fd).expect("close");
        sys.fs.unmount().expect("unmount");
    }
    g.finish();
}

/// Fig 11 flavor: a durable (fsync'd) append at two NVMM latencies.
fn fig11_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_sync_append");
    g.sample_size(10);
    for lat in [50u64, 800] {
        let mut cfg = spin_config();
        cfg.cost = cfg.cost.with_write_latency(lat);
        let sys = build(SystemKind::Hinfs, &cfg).expect("build");
        let fd = sys
            .fs
            .open("/wal", fskit::OpenFlags::RDWR | fskit::OpenFlags::CREATE)
            .expect("open");
        g.bench_function(format!("hinfs-{lat}ns"), |b| {
            b.iter(|| {
                // Rotate like a real WAL so millions of Criterion
                // iterations cannot fill the device.
                if sys.fs.fstat(fd).expect("fstat").size > 1 << 20 {
                    sys.fs.truncate(fd, 0).expect("rotate");
                }
                sys.fs.append(fd, &[1u8; 256]).expect("append");
                sys.fs.fsync(fd).expect("fsync");
            })
        });
        sys.fs.close(fd).expect("close");
        sys.fs.unmount().expect("unmount");
    }
    g.finish();
}

criterion_group!(
    figures,
    fig07_overall,
    fig07_varmail,
    fig09_clfw,
    fig11_latency
);
criterion_main!(figures);
