//! Experiment harness for the HiNFS reproduction.
//!
//! Each `figNN` function in [`figs`] regenerates one figure of the paper's
//! evaluation (see `DESIGN.md` for the index) and returns a [`table::Table`]
//! with the same rows/series the paper reports. The `experiments` binary
//! prints them and can emit the `EXPERIMENTS.md` data sections.
//!
//! All experiments run in deterministic virtual time; the Criterion
//! benches under `benches/` exercise the same code on the spin-mode
//! (busy-wait) emulator.

pub mod benchjson;
pub mod common;
pub mod diff;
pub mod figs;
pub mod table;

pub use common::Scale;
pub use table::Table;
