use std::sync::Arc;

use fskit::{FileSystem, FsError, OpenFlags};
use nvmm::{CostModel, NvmmDevice, SimEnv, BLOCK_SIZE};
use pmfs::{Pmfs, PmfsOptions};

use crate::fs::Hinfs;
use crate::HinfsConfig;

fn opts() -> PmfsOptions {
    PmfsOptions {
        journal_blocks: 128,
        inode_count: 512,
    }
}

fn small_cfg() -> HinfsConfig {
    HinfsConfig::default().with_buffer_bytes(64 * BLOCK_SIZE)
}

fn fresh_with(cfg: HinfsConfig) -> (Arc<NvmmDevice>, Arc<Hinfs>) {
    let env = SimEnv::new_virtual(CostModel::default());
    env.set_now(0);
    let dev = NvmmDevice::new_tracked(env, 16384 * BLOCK_SIZE);
    let fs = Hinfs::mkfs(dev.clone(), opts(), cfg).unwrap();
    (dev, fs)
}

fn fresh() -> (Arc<NvmmDevice>, Arc<Hinfs>) {
    fresh_with(small_cfg())
}

fn rw_create() -> OpenFlags {
    OpenFlags::RDWR | OpenFlags::CREATE
}

#[test]
fn buffered_write_read_roundtrip() {
    let (_d, fs) = fresh();
    let fd = fs.open("/f", rw_create()).unwrap();
    let data: Vec<u8> = (0..30_000u32).map(|i| (i % 253) as u8).collect();
    assert_eq!(fs.write(fd, 0, &data).unwrap(), data.len());
    let mut buf = vec![0u8; data.len()];
    assert_eq!(fs.read(fd, 0, &mut buf).unwrap(), data.len());
    assert_eq!(buf, data, "read-your-writes through the DRAM buffer");
    assert!(fs.stats().snapshot().lazy_writes > 0);
    assert_eq!(fs.stats().snapshot().eager_writes, 0);
    fs.close(fd).unwrap();
}

#[test]
fn lazy_writes_stay_off_nvmm_until_fsync() {
    // One file lives in one shard: size the pool so that shard holds the
    // whole 8-block write without reclaiming.
    let (dev, fs) = fresh_with(small_cfg().with_buffer_bytes(512 * BLOCK_SIZE));
    let fd = fs.open("/f", rw_create()).unwrap();
    let before = dev.stats().snapshot();
    fs.write(fd, 0, &vec![7u8; 8 * BLOCK_SIZE]).unwrap();
    let mid = dev.stats().snapshot().since(&before);
    // Only journal/inode metadata reached NVMM, not the 32 KiB of data.
    assert!(
        mid.nvmm_bytes_written < 2048,
        "lazy write persisted {} bytes",
        mid.nvmm_bytes_written
    );
    fs.fsync(fd).unwrap();
    let after = dev.stats().snapshot().since(&before);
    assert!(
        after.nvmm_bytes_written >= 8 * BLOCK_SIZE as u64,
        "fsync flushed the data ({} bytes)",
        after.nvmm_bytes_written
    );
    fs.close(fd).unwrap();
}

#[test]
fn buffered_write_is_much_faster_than_direct() {
    let env = SimEnv::new_virtual(CostModel::default());
    let dev_h = NvmmDevice::new(env.clone(), 8192 * BLOCK_SIZE);
    // 16 blocks go to a single file (one shard): give that shard headroom.
    let hin = Hinfs::mkfs(
        dev_h,
        opts(),
        small_cfg().with_buffer_bytes(512 * BLOCK_SIZE),
    )
    .unwrap();
    let dev_p = NvmmDevice::new(env.clone(), 8192 * BLOCK_SIZE);
    let pm = Pmfs::mkfs(dev_p, opts()).unwrap();

    let data = vec![1u8; 16 * BLOCK_SIZE];
    let fd = hin.open("/f", rw_create()).unwrap();
    env.rebase();
    hin.write(fd, 0, &data).unwrap();
    let t_hinfs = env.now();
    hin.close(fd).unwrap();

    let fd = pm.open("/f", rw_create()).unwrap();
    env.rebase();
    pm.write(fd, 0, &data).unwrap();
    let t_pmfs = env.now();
    pm.close(fd).unwrap();

    assert!(
        t_hinfs * 3 < t_pmfs,
        "buffered write {t_hinfs} ns should be well under direct {t_pmfs} ns"
    );
}

#[test]
fn ordered_mode_crash_without_fsync_reverts_metadata() {
    let (dev, fs) = fresh();
    let fd = fs.open("/f", rw_create()).unwrap();
    fs.write(fd, 0, &[1u8; 4096]).unwrap();
    fs.fsync(fd).unwrap();
    // Extend lazily, no fsync: the size-extension transaction stays open.
    fs.write(fd, 4096, &[2u8; 8192]).unwrap();
    dev.crash();
    drop((fd, fs));
    let fs2 = Pmfs::mount(dev).unwrap();
    assert!(fs2.recovery_stats().txs_undone >= 1, "open tx rolled back");
    let st = fs2.stat("/f").unwrap();
    assert_eq!(st.size, 4096, "unsynced extension must not survive");
    let fd = fs2.open("/f", OpenFlags::READ).unwrap();
    let mut buf = [0u8; 4096];
    fs2.read(fd, 0, &mut buf).unwrap();
    assert_eq!(buf, [1u8; 4096], "synced data intact");
    fs2.close(fd).unwrap();
}

#[test]
fn fsynced_data_survives_crash() {
    let (dev, fs) = fresh();
    let fd = fs.open("/f", rw_create()).unwrap();
    let data: Vec<u8> = (0..12_345u32).map(|i| (i % 251) as u8).collect();
    fs.write(fd, 0, &data).unwrap();
    fs.fsync(fd).unwrap();
    dev.crash();
    drop((fd, fs));
    let fs2 = Pmfs::mount(dev).unwrap();
    let fd = fs2.open("/f", OpenFlags::READ).unwrap();
    let mut buf = vec![0u8; data.len()];
    assert_eq!(fs2.read(fd, 0, &mut buf).unwrap(), data.len());
    assert_eq!(buf, data);
    fs2.close(fd).unwrap();
}

#[test]
fn o_sync_writes_are_durable_without_fsync() {
    let (dev, fs) = fresh();
    let fd = fs.open("/f", rw_create() | OpenFlags::SYNC).unwrap();
    fs.write(fd, 0, &[5u8; 6000]).unwrap();
    assert!(fs.stats().snapshot().sync_writes > 0);
    dev.crash();
    drop((fd, fs));
    let fs2 = Pmfs::mount(dev).unwrap();
    assert_eq!(fs2.stat("/f").unwrap().size, 6000);
    let fd = fs2.open("/f", OpenFlags::READ).unwrap();
    let mut buf = vec![0u8; 6000];
    fs2.read(fd, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 5));
    fs2.close(fd).unwrap();
}

#[test]
fn bbm_turns_uncoalesced_blocks_eager() {
    // Varmail-like pattern: append then fsync, block after block. N_cf
    // equals N_cw, so buffering never wins and blocks go eager.
    let (_d, fs) = fresh();
    let fd = fs.open("/mail", rw_create()).unwrap();
    for _ in 0..20 {
        fs.append(fd, &[9u8; BLOCK_SIZE]).unwrap();
        fs.fsync(fd).unwrap();
    }
    let s = fs.stats().snapshot();
    assert!(s.bbm_evals > 0);
    // Re-writing an eager block now bypasses the buffer.
    let lazy_before = fs.stats().snapshot().lazy_writes;
    fs.write(fd, 0, &[1u8; BLOCK_SIZE]).unwrap();
    let s = fs.stats().snapshot();
    assert!(s.eager_writes > 0, "eager-persistent write went direct");
    assert_eq!(s.lazy_writes, lazy_before);
    // And the data is still correct.
    let mut buf = vec![0u8; BLOCK_SIZE];
    fs.read(fd, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 1));
    fs.close(fd).unwrap();
}

#[test]
fn coalesced_blocks_stay_lazy() {
    // Many overwrites of one block between fsyncs: N_cf << N_cw.
    let (_d, fs) = fresh();
    let fd = fs.open("/db", rw_create()).unwrap();
    for round in 0..3 {
        for _ in 0..50 {
            fs.write(fd, 0, &[round as u8; BLOCK_SIZE]).unwrap();
        }
        fs.fsync(fd).unwrap();
    }
    let s = fs.stats().snapshot();
    assert_eq!(s.eager_writes, 0, "heavily coalesced block stays lazy");
    assert!(s.bbm_accuracy() > 0.9);
    fs.close(fd).unwrap();
}

#[test]
fn eager_state_decays_after_five_seconds() {
    let (_d, fs) = fresh();
    let env = fs.env().clone();
    let fd = fs.open("/f", rw_create()).unwrap();
    // Make block 0 eager.
    for _ in 0..3 {
        fs.write(fd, 0, &[1u8; BLOCK_SIZE]).unwrap();
        fs.fsync(fd).unwrap();
    }
    fs.write(fd, 0, &[2u8; BLOCK_SIZE]).unwrap();
    let eager_count = fs.stats().snapshot().eager_writes;
    assert!(eager_count > 0);
    // 5+ virtual seconds without a sync: the state decays to lazy.
    env.set_now(env.now() + fs.config().eager_decay_ns + 1);
    let lazy_before = fs.stats().snapshot().lazy_writes;
    fs.write(fd, 0, &[3u8; BLOCK_SIZE]).unwrap();
    let s = fs.stats().snapshot();
    assert_eq!(s.eager_writes, eager_count, "no new eager writes");
    assert!(s.lazy_writes > lazy_before);
    fs.close(fd).unwrap();
}

#[test]
fn hinfs_wb_variant_never_goes_eager() {
    let (_d, fs) = fresh_with(small_cfg().wb_only());
    assert_eq!(fs.name(), "hinfs-wb");
    let fd = fs.open("/mail", rw_create()).unwrap();
    for _ in 0..10 {
        fs.append(fd, &[9u8; BLOCK_SIZE]).unwrap();
        fs.fsync(fd).unwrap();
    }
    fs.write(fd, 0, &[1u8; BLOCK_SIZE]).unwrap();
    let s = fs.stats().snapshot();
    assert_eq!(s.eager_writes, 0, "HiNFS-WB buffers everything");
    fs.close(fd).unwrap();
}

#[test]
fn clfw_flushes_only_dirty_lines() {
    // The WB variant keeps the checker out of the way so the block stays
    // buffered across both fsyncs and the flush granularity is isolated.
    let (dev, fs) = fresh_with(small_cfg().wb_only());
    let fd = fs.open("/f", rw_create()).unwrap();
    // Prime a full block so later writes hit an existing NVMM block.
    fs.write(fd, 0, &[0u8; BLOCK_SIZE]).unwrap();
    fs.fsync(fd).unwrap();
    // Dirty a single 64 B line.
    fs.write(fd, 128, &[1u8; 64]).unwrap();
    let before = dev.stats().snapshot();
    fs.fsync(fd).unwrap();
    let delta = dev.stats().snapshot().since(&before);
    assert!(
        delta.nvmm_bytes_written <= 4 * 64,
        "CLFW should flush ~1 line, wrote {} bytes",
        delta.nvmm_bytes_written
    );
    fs.close(fd).unwrap();
}

#[test]
fn nclfw_flushes_whole_blocks() {
    let (dev, fs) = fresh_with(small_cfg().nclfw().wb_only());
    assert_eq!(fs.name(), "hinfs-wb");
    let fd = fs.open("/f", rw_create()).unwrap();
    fs.write(fd, 0, &[0u8; BLOCK_SIZE]).unwrap();
    fs.fsync(fd).unwrap();
    fs.write(fd, 128, &[1u8; 64]).unwrap();
    let before = dev.stats().snapshot();
    fs.fsync(fd).unwrap();
    let delta = dev.stats().snapshot().since(&before);
    assert!(
        delta.nvmm_bytes_written >= BLOCK_SIZE as u64,
        "NCLFW writes back the whole block, wrote {} bytes",
        delta.nvmm_bytes_written
    );
    fs.close(fd).unwrap();
}

#[test]
fn clfw_fetches_only_partial_lines() {
    let (_d, fs) = fresh();
    let fd = fs.open("/f", rw_create()).unwrap();
    fs.write(fd, 0, &[3u8; BLOCK_SIZE]).unwrap();
    fs.fsync(fd).unwrap();
    // Evict so the block leaves the buffer, then write 0..112 (the paper's
    // example): only the second line is partially covered and fetched.
    fs.sync().unwrap();
    let of = fs.pmfs().open_file(fd).unwrap();
    {
        let _guard = of.handle.state.write();
        fs.drop_buffers(of.ino);
    }
    let fetch_before = fs.stats().snapshot().fetch_lines;
    fs.write(fd, 0, &[9u8; 112]).unwrap();
    let fetched = fs.stats().snapshot().fetch_lines - fetch_before;
    assert_eq!(fetched, 1, "only the partially covered line is fetched");
    // Stitched read: bytes 0..112 new, rest old.
    let mut buf = vec![0u8; 256];
    fs.read(fd, 0, &mut buf).unwrap();
    assert!(buf[..112].iter().all(|&b| b == 9));
    assert!(buf[112..].iter().all(|&b| b == 3));
    fs.close(fd).unwrap();
}

#[test]
fn deleted_files_skip_writeback() {
    // 16 dirty blocks of one file must all still be buffered at unlink.
    let (dev, fs) = fresh_with(small_cfg().with_buffer_bytes(512 * BLOCK_SIZE));
    let fd = fs.open("/tmp1", rw_create()).unwrap();
    fs.write(fd, 0, &vec![1u8; 16 * BLOCK_SIZE]).unwrap();
    fs.close(fd).unwrap();
    let before = dev.stats().snapshot();
    fs.unlink("/tmp1").unwrap();
    let s = fs.stats().snapshot();
    assert!(
        s.dropped_dirty_blocks >= 16,
        "dirty buffers dropped, got {}",
        s.dropped_dirty_blocks
    );
    let delta = dev.stats().snapshot().since(&before);
    assert!(
        delta.nvmm_bytes_written < 4096,
        "unlink must not write the dead data back ({} bytes)",
        delta.nvmm_bytes_written
    );
    assert_eq!(fs.pmfs().journal().open_txs(), 0);
}

#[test]
fn pool_pressure_reclaims_and_stays_correct() {
    // Buffer of 64 blocks, write 200 blocks: reclaim must kick in.
    let (_d, fs) = fresh();
    let fd = fs.open("/big", rw_create()).unwrap();
    let blockful = vec![0xabu8; BLOCK_SIZE];
    for i in 0..200u64 {
        fs.write(fd, i * BLOCK_SIZE as u64, &blockful).unwrap();
        fs.tick(fs.env().now());
    }
    let s = fs.stats().snapshot();
    assert!(s.writeback_blocks > 0, "background writeback ran");
    // All data readable (some from NVMM, some from buffer).
    let mut buf = vec![0u8; BLOCK_SIZE];
    for i in [0u64, 63, 64, 150, 199] {
        fs.read(fd, i * BLOCK_SIZE as u64, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xab), "block {i} corrupt");
    }
    // Watermark respected after a tick.
    assert!(fs.free_buffer_blocks() >= fs.config().low_blocks());
    fs.close(fd).unwrap();
}

#[test]
fn foreground_stall_when_background_cannot_keep_up() {
    let (_d, fs) = fresh(); // 64-block pool
    let fd = fs.open("/big", rw_create()).unwrap();
    // One write of 100 blocks: the background kick only happens between
    // calls, so the pool exhausts mid-operation and the foreground must
    // reclaim a victim itself.
    let huge = vec![0x11u8; 100 * BLOCK_SIZE];
    fs.write(fd, 0, &huge).unwrap();
    assert!(fs.stats().snapshot().foreground_stalls > 0);
    let mut buf = vec![0u8; BLOCK_SIZE];
    fs.read(fd, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0x11));
    fs.read(fd, 99 * BLOCK_SIZE as u64, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0x11));
    fs.close(fd).unwrap();
}

#[test]
fn periodic_tick_flushes_old_dirty_blocks() {
    let (_d, fs) = fresh();
    let env = fs.env().clone();
    let fd = fs.open("/f", rw_create()).unwrap();
    fs.write(fd, 0, &[1u8; BLOCK_SIZE]).unwrap();
    assert_eq!(fs.dirty_blocks(), 1);
    // Before the dirty-age threshold nothing is flushed.
    env.set_now(env.now() + fs.config().periodic_wb_ns + 1);
    fs.tick(env.now());
    assert_eq!(fs.dirty_blocks(), 1, "young dirty block stays");
    // After 30 s the periodic pass flushes it.
    env.set_now(env.now() + fs.config().dirty_age_ns);
    fs.tick(env.now());
    assert_eq!(fs.dirty_blocks(), 0, "aged dirty block flushed");
    assert_eq!(fs.pmfs().journal().open_txs(), 0, "ordered tx committed");
    fs.close(fd).unwrap();
}

#[test]
fn unmount_flushes_everything() {
    let (dev, fs) = fresh();
    let fd = fs.open("/f", rw_create()).unwrap();
    let data: Vec<u8> = (0..20_000u32).map(|i| (i % 7) as u8).collect();
    fs.write(fd, 0, &data).unwrap();
    fs.close(fd).unwrap();
    fs.unmount().unwrap();
    drop(fs);
    // Remount with plain PMFS: everything must be on NVMM.
    let fs2 = Pmfs::mount(dev).unwrap();
    let fd = fs2.open("/f", OpenFlags::READ).unwrap();
    let mut buf = vec![0u8; data.len()];
    assert_eq!(fs2.read(fd, 0, &mut buf).unwrap(), data.len());
    assert_eq!(buf, data);
    fs2.close(fd).unwrap();
}

#[test]
fn truncate_through_buffer() {
    let (_d, fs) = fresh();
    let fd = fs.open("/t", rw_create()).unwrap();
    fs.write(fd, 0, &[7u8; 3 * BLOCK_SIZE]).unwrap();
    fs.truncate(fd, 100).unwrap();
    assert_eq!(fs.fstat(fd).unwrap().size, 100);
    let mut buf = vec![0u8; 200];
    assert_eq!(fs.read(fd, 0, &mut buf).unwrap(), 100);
    assert!(buf[..100].iter().all(|&b| b == 7));
    // Extend again: zeroes beyond the cut.
    fs.truncate(fd, BLOCK_SIZE as u64).unwrap();
    let mut buf = vec![0xffu8; BLOCK_SIZE];
    fs.read(fd, 0, &mut buf).unwrap();
    assert!(buf[100..].iter().all(|&b| b == 0));
    fs.close(fd).unwrap();
}

#[test]
fn o_trunc_discards_buffers() {
    let (_d, fs) = fresh();
    let fd = fs.open("/t", rw_create()).unwrap();
    fs.write(fd, 0, &[1u8; 2 * BLOCK_SIZE]).unwrap();
    fs.close(fd).unwrap();
    let fd = fs.open("/t", OpenFlags::RDWR | OpenFlags::TRUNC).unwrap();
    assert_eq!(fs.fstat(fd).unwrap().size, 0);
    let mut buf = [0u8; 64];
    assert_eq!(fs.read(fd, 0, &mut buf).unwrap(), 0);
    fs.close(fd).unwrap();
}

#[test]
fn rename_replace_discards_target_buffers() {
    let (_d, fs) = fresh();
    let a = fs.open("/a", rw_create()).unwrap();
    fs.write(a, 0, b"source").unwrap();
    fs.close(a).unwrap();
    let b = fs.open("/b", rw_create()).unwrap();
    fs.write(b, 0, &[9u8; BLOCK_SIZE]).unwrap();
    fs.close(b).unwrap();
    fs.rename("/a", "/b").unwrap();
    assert_eq!(fs.stat("/b").unwrap().size, 6);
    assert_eq!(fs.stat("/a"), Err(FsError::NotFound));
    let fd = fs.open("/b", OpenFlags::READ).unwrap();
    let mut buf = [0u8; 6];
    fs.read(fd, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"source");
    fs.close(fd).unwrap();
}

#[test]
fn mmap_pins_blocks_eager() {
    let (_d, fs) = fresh();
    let fd = fs.open("/m", rw_create()).unwrap();
    fs.write(fd, 0, &[1u8; 2 * BLOCK_SIZE]).unwrap();
    let map = fs.mmap(fd, 0, BLOCK_SIZE).unwrap();
    let mut buf = [0u8; 64];
    map.load(0, &mut buf).unwrap();
    assert_eq!(buf, [1u8; 64], "mapping sees flushed buffer content");
    // Writes after mmap bypass the buffer (pinned eager).
    let lazy_before = fs.stats().snapshot().lazy_writes;
    fs.write(fd, BLOCK_SIZE as u64, &[2u8; BLOCK_SIZE]).unwrap();
    let s = fs.stats().snapshot();
    assert_eq!(s.lazy_writes, lazy_before);
    assert!(s.eager_writes > 0);
    // The file-I/O write is immediately visible through the mapping's
    // sibling block? (Different block; check via read instead.)
    let mut big = vec![0u8; BLOCK_SIZE];
    fs.read(fd, BLOCK_SIZE as u64, &mut big).unwrap();
    assert!(big.iter().all(|&b| b == 2));
    fs.close(fd).unwrap();
}

#[test]
fn sync_flushes_all_files() {
    let (dev, fs) = fresh();
    let mut fds = Vec::new();
    for i in 0..5 {
        let fd = fs.open(&format!("/f{i}"), rw_create()).unwrap();
        fs.write(fd, 0, &[i as u8; 2 * BLOCK_SIZE]).unwrap();
        fds.push(fd);
    }
    assert!(fs.dirty_blocks() > 0);
    fs.sync().unwrap();
    assert_eq!(fs.dirty_blocks(), 0);
    assert_eq!(fs.pmfs().journal().open_txs(), 0);
    dev.crash();
    for fd in fds {
        let _ = fd;
    }
    drop(fs);
    let fs2 = Pmfs::mount(dev).unwrap();
    for i in 0..5 {
        assert_eq!(
            fs2.stat(&format!("/f{i}")).unwrap().size,
            2 * BLOCK_SIZE as u64
        );
    }
}

#[test]
fn read_write_mix_across_eviction_boundaries() {
    // Deterministic pseudo-random op mix compared against an in-memory
    // model, with a tiny pool to force constant eviction and re-fetch.
    let (_d, fs) = fresh_with(HinfsConfig::default().with_buffer_bytes(16 * BLOCK_SIZE));
    let fd = fs.open("/model", rw_create()).unwrap();
    let file_len = 40 * BLOCK_SIZE;
    let mut model = vec![0u8; file_len];
    fs.write(fd, 0, &model).unwrap();
    let mut seed = 0x12345678u64;
    let mut rnd = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for step in 0..400 {
        let off = (rnd() as usize) % (file_len - 600);
        let len = 1 + (rnd() as usize) % 600;
        if rnd() % 3 == 0 {
            let mut got = vec![0u8; len];
            assert_eq!(fs.read(fd, off as u64, &mut got).unwrap(), len);
            assert_eq!(got, model[off..off + len], "step {step} read mismatch");
        } else {
            let val = (rnd() % 256) as u8;
            let data = vec![val; len];
            fs.write(fd, off as u64, &data).unwrap();
            model[off..off + len].copy_from_slice(&data);
        }
        if step % 37 == 0 {
            fs.tick(fs.env().now());
        }
        if step % 97 == 0 {
            fs.fsync(fd).unwrap();
        }
    }
    fs.fsync(fd).unwrap();
    let mut all = vec![0u8; file_len];
    fs.read(fd, 0, &mut all).unwrap();
    assert_eq!(all, model);
    fs.close(fd).unwrap();
}

#[test]
fn append_interleaved_with_fsync_keeps_sizes() {
    let (_d, fs) = fresh();
    let fd = fs.open("/log", rw_create() | OpenFlags::APPEND).unwrap();
    let mut expect = 0u64;
    for i in 0..50 {
        let n = 100 + (i * 37) % 5000;
        let off = fs.append(fd, &vec![i as u8; n]).unwrap();
        assert_eq!(off, expect);
        expect += n as u64;
        if i % 7 == 0 {
            fs.fsync(fd).unwrap();
        }
    }
    assert_eq!(fs.fstat(fd).unwrap().size, expect);
    fs.close(fd).unwrap();
}

#[test]
fn journal_pressure_is_relieved_by_flushing() {
    // A tiny journal fills with open lazy transactions; writes must make
    // progress by flushing and committing instead of failing.
    let env = SimEnv::new_virtual(CostModel::default());
    let dev = NvmmDevice::new(env, 16384 * BLOCK_SIZE);
    let fs = Hinfs::mkfs(
        dev,
        PmfsOptions {
            journal_blocks: 3, // 2 entry blocks = 128 entries
            inode_count: 64,
        },
        small_cfg(),
    )
    .unwrap();
    let fd = fs.open("/f", rw_create()).unwrap();
    for i in 0..200u64 {
        fs.append(fd, &vec![i as u8; 700]).unwrap();
    }
    assert_eq!(fs.fstat(fd).unwrap().size, 200 * 700);
    fs.close(fd).unwrap();
    fs.unmount().unwrap();
}

#[test]
fn unlinked_open_file_drops_buffers_at_close() {
    let (dev, fs) = fresh();
    let fd = fs.open("/tmp", rw_create()).unwrap();
    fs.write(fd, 0, &vec![4u8; 8 * BLOCK_SIZE]).unwrap();
    fs.unlink("/tmp").unwrap();
    // Still readable through the fd.
    let mut buf = [0u8; 64];
    assert_eq!(fs.read(fd, 0, &mut buf).unwrap(), 64);
    assert_eq!(buf, [4u8; 64]);
    let before = dev.stats().snapshot();
    fs.close(fd).unwrap();
    let delta = dev.stats().snapshot().since(&before);
    assert!(
        delta.nvmm_bytes_written < 4096,
        "final close must not flush dead data ({} bytes)",
        delta.nvmm_bytes_written
    );
    assert_eq!(fs.pmfs().journal().open_txs(), 0);
}

#[test]
fn stat_reflects_buffered_size() {
    let (_d, fs) = fresh();
    let fd = fs.open("/s", rw_create()).unwrap();
    fs.write(fd, 0, &[1u8; 5000]).unwrap();
    // Size is visible through stat before any flush.
    assert_eq!(fs.stat("/s").unwrap().size, 5000);
    assert_eq!(fs.fstat(fd).unwrap().size, 5000);
    fs.close(fd).unwrap();
}

#[test]
fn spin_mode_smoke() {
    // Real busy-wait mode with real background threads, scaled-down costs.
    let cost = CostModel {
        nvmm_write_latency_ns: 50,
        ..CostModel::default()
    };
    let env = SimEnv::new_spin(cost);
    let dev = NvmmDevice::new(env, 4096 * BLOCK_SIZE);
    let cfg = HinfsConfig {
        buffer_bytes: 32 * BLOCK_SIZE,
        periodic_wb_ns: 2_000_000, // 2 ms
        dirty_age_ns: 1_000_000,
        wb_threads: 1,
        ..HinfsConfig::default()
    };
    let fs = Hinfs::mkfs(dev, opts(), cfg).unwrap();
    let fd = fs.open("/spin", rw_create()).unwrap();
    let data = vec![3u8; BLOCK_SIZE];
    for i in 0..100u64 {
        fs.write(fd, i * BLOCK_SIZE as u64, &data).unwrap();
    }
    fs.fsync(fd).unwrap();
    let mut buf = vec![0u8; BLOCK_SIZE];
    for i in [0u64, 50, 99] {
        fs.read(fd, i * BLOCK_SIZE as u64, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 3));
    }
    fs.close(fd).unwrap();
    fs.unmount().unwrap();
}
