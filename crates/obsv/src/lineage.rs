//! Data-lifecycle provenance: follows logical writes from ack to
//! durability across every system in the suite.
//!
//! The per-op histograms stop at the syscall boundary, but the systems
//! under test deliberately *defer* durability — HiNFS buffers lazy
//! writes in DRAM, its tracker defers journal commits into group
//! batches, the ext family parks dirty pages in the page cache until
//! fsync or the periodic commit. A [`LineageTable`] measures the cost of
//! that bet on two axes:
//!
//! - **Durability lag** — simulated time from a write's acknowledgement
//!   (the clean→dirty stamp on its DRAM block/page) to the drain that
//!   made it durable on NVMM. Synchronous drains (fsync, O_SYNC, eager
//!   in-op persists, in-op journal commits) record lag 0 by definition:
//!   the durability contract is met at the op's return. Lazy drains
//!   (writeback passes, reclaim evictions, deferred group commits,
//!   periodic jbd commits, cache evictions) record the real age of the
//!   stamped data. A max-lag gauge feeds the online auditor, which
//!   checks it against the mount's sync-decay bound.
//! - **Per-layer write amplification** — logical bytes vs DRAM-buffered
//!   vs journal-logged vs NVMM-persisted vs writeback-drained bytes,
//!   plus fences, per [`OpKind`] row (background work gets its own row,
//!   like the span matrix). `fences per logical KiB` and
//!   `persisted/logical` fall straight out of the ledger.
//!
//! Cost rules, matching the rest of `obsv`:
//!
//! - **Off by default.** [`LineageTable::op_scope`] checks one relaxed
//!   `AtomicBool` and returns an inert guard when disabled; every
//!   `note_*` hook checks a thread-local flag that is only ever set
//!   inside an enabled scope, so the off path is one TLS bool read.
//! - **Allocation-free when on.** The in-flight accumulation lives in a
//!   fixed-size thread-local frame, flushed into the table's relaxed
//!   atomics when the outermost scope closes.
//! - **Reads clocks, never advances them.** Stamps and drains reuse
//!   timestamps the callers already hold, so enabling lineage changes no
//!   result bit (proven by `tests/determinism.rs`).

use crate::histo::{Histo, HistoSnapshot};
use crate::{OpKind, ALL_OPS, NOPS};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The layers a logical byte moves through on its way to durability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Layer {
    /// Bytes the application handed to the file system.
    Logical = 0,
    /// Bytes staged in DRAM (HiNFS buffer slots, ext page cache).
    DramBuffered = 1,
    /// Bytes written to a journal region (undo entries, jbd blocks).
    JournalLogged = 2,
    /// Bytes persisted to NVMM media (cacheline granularity, all paths).
    NvmmPersisted = 3,
    /// Bytes drained out of a volatile staging layer to NVMM — the
    /// subset of persisted traffic that retired a stamp.
    WritebackDrained = 4,
}

/// Number of [`Layer`] variants.
pub const NLAYERS: usize = 5;

/// All layers in discriminant order.
pub const ALL_LAYERS: [Layer; NLAYERS] = [
    Layer::Logical,
    Layer::DramBuffered,
    Layer::JournalLogged,
    Layer::NvmmPersisted,
    Layer::WritebackDrained,
];

impl Layer {
    /// Stable label for reports and metric names.
    pub fn label(self) -> &'static str {
        match self {
            Layer::Logical => "logical",
            Layer::DramBuffered => "dram_buffered",
            Layer::JournalLogged => "journal_logged",
            Layer::NvmmPersisted => "nvmm_persisted",
            Layer::WritebackDrained => "writeback_drained",
        }
    }
}

/// Rows in the lineage ledger: one per [`OpKind`] plus the background
/// row (index [`crate::BG_ROW`], label `bg`), mirroring the span matrix.
pub const LINEAGE_ROWS: usize = NOPS + 1;

/// How a drain met the durability contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainKind {
    /// The drain happened inside a synchronization the caller asked for
    /// (fsync, sync, O_SYNC, eager in-op persist, in-op journal commit):
    /// the ack-to-durable contract is met at op return, lag is 0.
    Sync,
    /// The drain happened behind the caller's back (writeback pass,
    /// reclaim eviction, deferred group commit, periodic jbd commit,
    /// cache eviction): the stamped data was acked but not durable for
    /// the recorded lag.
    Lazy,
}

/// An ack stamp carried by a buffered block / page / deferred
/// transaction: when the data was acknowledged and where the trace ring
/// stood at that moment (the start of the op's causal seq window).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stamp {
    /// Simulated time of the clean→dirty transition (the ack).
    pub ack_ns: u64,
    /// Trace-ring seq ticket at the ack.
    pub seq: u64,
    /// Origin row: the [`OpKind`] discriminant of the op that stamped,
    /// or [`crate::BG_ROW`] when no op was in flight.
    pub row: u8,
}

impl Stamp {
    /// The origin op kind, when the stamp was made inside an op.
    pub fn origin(&self) -> Option<OpKind> {
        ALL_OPS.get(self.row as usize).copied()
    }
}

/// The thread-local in-flight accumulation. `active` mirrors into the
/// cheap [`LACTIVE`] cell every `note_*` hook checks first; `owner` pins
/// the frame to the table that opened it, so a nested scope on a second
/// enabled table neither steals nor flushes the outer frame.
struct LinFrame {
    active: bool,
    owner: u64,
    depth: u32,
    row: usize,
    bytes: [u64; NLAYERS],
    fences: u64,
}

const EMPTY_FRAME: LinFrame = LinFrame {
    active: false,
    owner: 0,
    depth: 0,
    row: 0,
    bytes: [0; NLAYERS],
    fences: 0,
};

thread_local! {
    /// Fast gate for the `note_*` hooks: true only inside an enabled
    /// scope on this thread.
    static LACTIVE: Cell<bool> = const { Cell::new(false) };
    static LFRAME: RefCell<LinFrame> = const { RefCell::new(EMPTY_FRAME) };
}

/// Process-unique table ids (Arc addresses can be reused; a counter
/// cannot).
static TABLE_IDS: AtomicU64 = AtomicU64::new(1);

/// Adds `bytes` to `layer` in the calling thread's in-flight frame.
#[inline]
fn frame_add(layer: Layer, bytes: u64) {
    if !LACTIVE.get() {
        return;
    }
    LFRAME.with(|f| f.borrow_mut().bytes[layer as usize] += bytes);
}

/// Books logical bytes the application handed to the file system.
#[inline]
pub fn note_logical(bytes: u64) {
    frame_add(Layer::Logical, bytes);
}

/// Books bytes staged into a DRAM layer (buffer slot, page cache).
#[inline]
pub fn note_buffered(bytes: u64) {
    frame_add(Layer::DramBuffered, bytes);
}

/// Books bytes written into a journal region.
#[inline]
pub fn note_journaled(bytes: u64) {
    frame_add(Layer::JournalLogged, bytes);
}

/// Books bytes persisted to NVMM media. Called by the flight recorder's
/// `note_persisted` fan-out, so the device instrumentation needs no
/// second hook.
#[inline]
pub(crate) fn frame_note_persisted(bytes: u64) {
    frame_add(Layer::NvmmPersisted, bytes);
}

/// Books one store fence. Called by the flight recorder's `note_fence`
/// fan-out.
#[inline]
pub(crate) fn frame_note_fence() {
    if !LACTIVE.get() {
        return;
    }
    LFRAME.with(|f| f.borrow_mut().fences += 1);
}

/// The lineage row of the op currently in flight on this thread
/// ([`crate::BG_ROW`] inside a background scope), or `None` when no
/// enabled scope is open. Stamp sites use this to record provenance.
#[inline]
pub fn current_row() -> Option<usize> {
    if !LACTIVE.get() {
        return None;
    }
    Some(LFRAME.with(|f| f.borrow().row))
}

/// Per-file-system data-lifecycle ledger: a bytes matrix of
/// [`LINEAGE_ROWS`] × [`NLAYERS`], per-row fence counts, per-origin-op
/// durability-lag histograms and the max-lag gauge.
#[derive(Debug)]
pub struct LineageTable {
    enabled: AtomicBool,
    id: u64,
    bytes: Box<[[AtomicU64; NLAYERS]]>,
    fences: Box<[AtomicU64]>,
    lag: [Histo; NOPS],
    max_lag_ns: AtomicU64,
    stamps: AtomicU64,
    drains_sync: AtomicU64,
    drains_lazy: AtomicU64,
}

impl Default for LineageTable {
    fn default() -> Self {
        LineageTable::new()
    }
}

/// RAII guard closing a lineage scope; flushes the thread frame into the
/// owning table when the outermost enabled scope ends.
pub struct LineageScope<'a> {
    table: Option<&'a LineageTable>,
}

impl Drop for LineageScope<'_> {
    fn drop(&mut self) {
        let Some(table) = self.table else {
            return;
        };
        LFRAME.with(|f| {
            let mut f = f.borrow_mut();
            if !f.active || f.owner != table.id {
                return;
            }
            f.depth -= 1;
            if f.depth > 0 {
                return;
            }
            let row = f.row;
            for (layer, &b) in f.bytes.iter().enumerate() {
                if b > 0 {
                    table.bytes[row][layer].fetch_add(b, Ordering::Relaxed);
                }
            }
            if f.fences > 0 {
                table.fences[row].fetch_add(f.fences, Ordering::Relaxed);
            }
            *f = EMPTY_FRAME;
            LACTIVE.set(false);
        });
    }
}

impl LineageTable {
    /// A disabled table.
    pub fn new() -> LineageTable {
        LineageTable {
            enabled: AtomicBool::new(false),
            id: TABLE_IDS.fetch_add(1, Ordering::Relaxed),
            bytes: (0..LINEAGE_ROWS)
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect(),
            fences: (0..LINEAGE_ROWS).map(|_| AtomicU64::new(0)).collect(),
            lag: std::array::from_fn(|_| Histo::new()),
            max_lag_ns: AtomicU64::new(0),
            stamps: AtomicU64::new(0),
            drains_sync: AtomicU64::new(0),
            drains_lazy: AtomicU64::new(0),
        }
    }

    /// Switches provenance recording.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether provenance recording is on (one relaxed load).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Opens a scope attributing hook traffic on this thread to `row`.
    /// Inert when disabled. A nested scope on the same table keeps the
    /// outer row (an O_SYNC write's internal fsync stays a write); a
    /// scope while another table owns the frame is inert.
    fn scope(&self, row: usize) -> LineageScope<'_> {
        if !self.enabled() {
            return LineageScope { table: None };
        }
        let opened = LFRAME.with(|f| {
            let mut f = f.borrow_mut();
            if f.active {
                if f.owner != self.id {
                    return false;
                }
                f.depth += 1;
                return true;
            }
            *f = LinFrame {
                active: true,
                owner: self.id,
                depth: 1,
                row,
                ..EMPTY_FRAME
            };
            LACTIVE.set(true);
            true
        });
        LineageScope {
            table: opened.then_some(self),
        }
    }

    /// Opens an op-row scope (the `timed()` wrappers call this).
    #[inline]
    pub fn op_scope(&self, op: OpKind) -> LineageScope<'_> {
        self.scope(op as usize)
    }

    /// Opens a background-row scope (writeback passes, periodic ticks,
    /// deferred commit drains running outside any op).
    #[inline]
    pub fn bg_scope(&self) -> LineageScope<'_> {
        self.scope(crate::BG_ROW)
    }

    /// Creates an ack stamp for data entering a volatile staging layer:
    /// captures the current row (op provenance), `now`, and the trace
    /// ring's seq ticket. Returns the default stamp when disabled —
    /// stamps are pure observation, so callers store it unconditionally.
    pub fn stamp(&self, now_ns: u64, trace_seq: u64) -> Stamp {
        if !self.enabled() {
            return Stamp::default();
        }
        self.stamps.fetch_add(1, Ordering::Relaxed);
        Stamp {
            ack_ns: now_ns,
            seq: trace_seq,
            row: current_row().unwrap_or(crate::BG_ROW) as u8,
        }
    }

    /// Records one drain retiring a stamp: `bytes` drained to NVMM on
    /// behalf of the stamp's origin row, with the durability lag
    /// ([`DrainKind::Sync`] asserts 0; [`DrainKind::Lazy`] records
    /// `now - ack`). Returns the recorded lag so call sites can put it
    /// on the trace ring.
    pub fn record_drain(&self, stamp: &Stamp, kind: DrainKind, now_ns: u64, bytes: u64) -> u64 {
        if !self.enabled() {
            return 0;
        }
        let lag = match kind {
            DrainKind::Sync => {
                self.drains_sync.fetch_add(1, Ordering::Relaxed);
                0
            }
            DrainKind::Lazy => {
                self.drains_lazy.fetch_add(1, Ordering::Relaxed);
                now_ns.saturating_sub(stamp.ack_ns)
            }
        };
        let row = (stamp.row as usize).min(crate::BG_ROW);
        self.bytes[row][Layer::WritebackDrained as usize].fetch_add(bytes, Ordering::Relaxed);
        let op_row = if row < NOPS {
            row
        } else {
            OpKind::Write as usize
        };
        self.lag[op_row].record(lag);
        self.max_lag_ns.fetch_max(lag, Ordering::Relaxed);
        lag
    }

    /// Records an in-op synchronous persist that never touched a staging
    /// layer (PMFS data writes, HiNFS eager writes, DAX stores): a drain
    /// with lag 0 attributed to the current row.
    pub fn record_inline_drain(&self, bytes: u64) {
        if !self.enabled() {
            return;
        }
        let row = current_row().unwrap_or(crate::BG_ROW);
        let stamp = Stamp {
            ack_ns: 0,
            seq: 0,
            row: row as u8,
        };
        self.record_drain(&stamp, DrainKind::Sync, 0, bytes);
    }

    /// The exact largest durability lag recorded so far, ns.
    pub fn max_lag_ns(&self) -> u64 {
        self.max_lag_ns.load(Ordering::Relaxed)
    }

    /// Stamps created (blocks/pages/transactions entering a staging
    /// layer while enabled).
    pub fn stamps(&self) -> u64 {
        self.stamps.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the whole ledger.
    pub fn snap(&self) -> LineageSnap {
        let row_bytes: Vec<[u64; NLAYERS]> = self
            .bytes
            .iter()
            .map(|row| std::array::from_fn(|l| row[l].load(Ordering::Relaxed)))
            .collect();
        let mut layer_bytes = [0u64; NLAYERS];
        for row in &row_bytes {
            for (l, &b) in row.iter().enumerate() {
                layer_bytes[l] += b;
            }
        }
        let lag_by_op: Vec<HistoSnapshot> = self.lag.iter().map(|h| h.snapshot()).collect();
        let mut lag = HistoSnapshot::default();
        for s in &lag_by_op {
            lag.merge(s);
        }
        LineageSnap {
            row_bytes,
            layer_bytes,
            fences: self.fences.iter().map(|f| f.load(Ordering::Relaxed)).sum(),
            row_fences: self
                .fences
                .iter()
                .map(|f| f.load(Ordering::Relaxed))
                .collect(),
            lag_by_op,
            lag,
            max_lag_ns: self.max_lag_ns(),
            stamps: self.stamps(),
            drains_sync: self.drains_sync.load(Ordering::Relaxed),
            drains_lazy: self.drains_lazy.load(Ordering::Relaxed),
        }
    }
}

/// A frozen copy of a [`LineageTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageSnap {
    /// Bytes per row × layer ([`LINEAGE_ROWS`] rows, `bg` last).
    pub row_bytes: Vec<[u64; NLAYERS]>,
    /// Bytes per layer summed over all rows.
    pub layer_bytes: [u64; NLAYERS],
    /// Fences summed over all rows.
    pub fences: u64,
    /// Fences per row.
    pub row_fences: Vec<u64>,
    /// Durability-lag distribution per origin [`OpKind`].
    pub lag_by_op: Vec<HistoSnapshot>,
    /// Durability-lag distribution merged over all origins.
    pub lag: HistoSnapshot,
    /// Exact largest lag recorded, ns.
    pub max_lag_ns: u64,
    /// Ack stamps created.
    pub stamps: u64,
    /// Drains recorded with the sync (lag-0) contract.
    pub drains_sync: u64,
    /// Drains recorded with real (lazy) lag.
    pub drains_lazy: u64,
}

impl Default for LineageSnap {
    fn default() -> Self {
        LineageSnap {
            row_bytes: vec![[0; NLAYERS]; LINEAGE_ROWS],
            layer_bytes: [0; NLAYERS],
            fences: 0,
            row_fences: vec![0; LINEAGE_ROWS],
            lag_by_op: vec![HistoSnapshot::default(); NOPS],
            lag: HistoSnapshot::default(),
            max_lag_ns: 0,
            stamps: 0,
            drains_sync: 0,
            drains_lazy: 0,
        }
    }
}

impl LineageSnap {
    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.stamps == 0
            && self.drains_sync == 0
            && self.drains_lazy == 0
            && self.layer_bytes.iter().all(|&b| b == 0)
            && self.fences == 0
    }

    /// Bytes in one layer (all rows).
    pub fn layer(&self, layer: Layer) -> u64 {
        self.layer_bytes[layer as usize]
    }

    /// Fences per logical KiB (rounded), or 0 with no logical bytes.
    pub fn fences_per_kib(&self) -> u64 {
        let logical = self.layer(Layer::Logical);
        if logical == 0 {
            return 0;
        }
        self.fences.saturating_mul(1024) / logical
    }

    /// Write amplification of `layer` against logical bytes, as a float
    /// (0.0 with no logical traffic).
    pub fn amplification(&self, layer: Layer) -> f64 {
        let logical = self.layer(Layer::Logical);
        if logical == 0 {
            return 0.0;
        }
        self.layer(layer) as f64 / logical as f64
    }

    /// The rows with the most NVMM-persisted + drained bytes, largest
    /// first: `(row, persisted + drained bytes)`, zero rows skipped.
    pub fn top_amplifiers(&self, k: usize) -> Vec<(usize, u64)> {
        let mut v: Vec<(usize, u64)> = self
            .row_bytes
            .iter()
            .enumerate()
            .map(|(row, b)| {
                (
                    row,
                    b[Layer::NvmmPersisted as usize] + b[Layer::WritebackDrained as usize],
                )
            })
            .filter(|&(_, b)| b > 0)
            .collect();
        v.sort_by_key(|&(row, b)| (std::cmp::Reverse(b), row));
        v.truncate(k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_table_is_inert() {
        let t = LineageTable::new();
        {
            let _s = t.op_scope(OpKind::Write);
            note_logical(4096);
            note_buffered(4096);
        }
        let stamp = t.stamp(100, 5);
        assert_eq!(stamp, Stamp::default());
        t.record_drain(&stamp, DrainKind::Lazy, 900, 4096);
        t.record_inline_drain(64);
        let s = t.snap();
        assert!(s.is_empty(), "{s:?}");
        assert_eq!(s.max_lag_ns, 0);
        assert!(current_row().is_none());
    }

    #[test]
    fn scope_attributes_bytes_to_the_op_row() {
        let t = LineageTable::new();
        t.set_enabled(true);
        {
            let _s = t.op_scope(OpKind::Write);
            assert_eq!(current_row(), Some(OpKind::Write as usize));
            note_logical(100);
            note_buffered(4096);
            note_journaled(128);
            frame_note_persisted(64);
            frame_note_fence();
        }
        assert!(current_row().is_none(), "frame closed with the scope");
        {
            let _s = t.bg_scope();
            assert_eq!(current_row(), Some(crate::BG_ROW));
            frame_note_persisted(4096);
        }
        let s = t.snap();
        let w = &s.row_bytes[OpKind::Write as usize];
        assert_eq!(w[Layer::Logical as usize], 100);
        assert_eq!(w[Layer::DramBuffered as usize], 4096);
        assert_eq!(w[Layer::JournalLogged as usize], 128);
        assert_eq!(w[Layer::NvmmPersisted as usize], 64);
        assert_eq!(s.row_fences[OpKind::Write as usize], 1);
        assert_eq!(
            s.row_bytes[crate::BG_ROW][Layer::NvmmPersisted as usize],
            4096
        );
        assert_eq!(s.layer(Layer::NvmmPersisted), 64 + 4096);
        assert_eq!(s.fences, 1);
    }

    #[test]
    fn nested_scopes_keep_the_outer_row() {
        let t = LineageTable::new();
        t.set_enabled(true);
        {
            let _outer = t.op_scope(OpKind::Write);
            {
                let _inner = t.op_scope(OpKind::Fsync);
                note_logical(10);
            }
            // The frame survives the inner scope's close.
            assert_eq!(current_row(), Some(OpKind::Write as usize));
            note_logical(5);
        }
        let s = t.snap();
        assert_eq!(
            s.row_bytes[OpKind::Write as usize][Layer::Logical as usize],
            15
        );
        assert_eq!(
            s.row_bytes[OpKind::Fsync as usize][Layer::Logical as usize],
            0
        );
    }

    #[test]
    fn second_enabled_table_neither_steals_nor_flushes() {
        let a = LineageTable::new();
        let b = LineageTable::new();
        a.set_enabled(true);
        b.set_enabled(true);
        {
            let _outer = a.op_scope(OpKind::Write);
            {
                let _inner = b.op_scope(OpKind::Read);
                note_logical(7);
            }
            assert_eq!(current_row(), Some(OpKind::Write as usize));
        }
        assert_eq!(a.snap().layer(Layer::Logical), 7, "owner keeps the bytes");
        assert!(b.snap().is_empty(), "interloper books nothing");
    }

    #[test]
    fn stamps_and_drains_track_lag() {
        let t = LineageTable::new();
        t.set_enabled(true);
        let stamp = {
            let _s = t.op_scope(OpKind::Write);
            t.stamp(1_000, 42)
        };
        assert_eq!(stamp.origin(), Some(OpKind::Write));
        assert_eq!(stamp.ack_ns, 1_000);
        assert_eq!(stamp.seq, 42);
        // A lazy drain 9µs later records the real age...
        let lag = t.record_drain(&stamp, DrainKind::Lazy, 10_000, 4096);
        assert_eq!(lag, 9_000);
        // ...a sync drain of a second stamp asserts 0.
        let stamp2 = {
            let _s = t.op_scope(OpKind::Write);
            t.stamp(2_000, 50)
        };
        assert_eq!(t.record_drain(&stamp2, DrainKind::Sync, 99_000, 4096), 0);
        let s = t.snap();
        assert_eq!(s.stamps, 2);
        assert_eq!(s.drains_lazy, 1);
        assert_eq!(s.drains_sync, 1);
        assert_eq!(s.max_lag_ns, 9_000);
        assert_eq!(s.lag.count(), 2);
        assert_eq!(s.lag.max(), 9_000);
        assert_eq!(s.lag_by_op[OpKind::Write as usize].count(), 2);
        assert_eq!(
            s.row_bytes[OpKind::Write as usize][Layer::WritebackDrained as usize],
            8192
        );
    }

    #[test]
    fn inline_drains_are_lag_zero_on_the_current_row() {
        let t = LineageTable::new();
        t.set_enabled(true);
        {
            let _s = t.op_scope(OpKind::Truncate);
            t.record_inline_drain(4096);
        }
        let s = t.snap();
        assert_eq!(s.drains_sync, 1);
        assert_eq!(s.max_lag_ns, 0);
        assert_eq!(s.lag_by_op[OpKind::Truncate as usize].count(), 1);
        assert_eq!(s.lag_by_op[OpKind::Truncate as usize].max(), 0);
        assert_eq!(
            s.row_bytes[OpKind::Truncate as usize][Layer::WritebackDrained as usize],
            4096
        );
    }

    #[test]
    fn bg_stamps_fold_into_the_write_lag_histogram() {
        let t = LineageTable::new();
        t.set_enabled(true);
        let stamp = t.stamp(500, 0); // no scope: bg provenance
        assert_eq!(stamp.row as usize, crate::BG_ROW);
        assert_eq!(stamp.origin(), None);
        t.record_drain(&stamp, DrainKind::Lazy, 700, 64);
        let s = t.snap();
        assert_eq!(
            s.row_bytes[crate::BG_ROW][Layer::WritebackDrained as usize],
            64
        );
        assert_eq!(s.lag_by_op[OpKind::Write as usize].count(), 1);
        assert_eq!(s.max_lag_ns, 200);
    }

    #[test]
    fn snap_derives_amplification_and_fence_rate() {
        let t = LineageTable::new();
        t.set_enabled(true);
        {
            let _s = t.op_scope(OpKind::Write);
            note_logical(2048);
            frame_note_persisted(8192);
            frame_note_fence();
            frame_note_fence();
        }
        {
            let _s = t.bg_scope();
            frame_note_persisted(100);
        }
        let s = t.snap();
        assert_eq!(s.amplification(Layer::NvmmPersisted), 8292.0 / 2048.0);
        assert_eq!(s.fences_per_kib(), 2 * 1024 / 2048);
        let top = s.top_amplifiers(4);
        assert_eq!(top[0], (OpKind::Write as usize, 8192));
        assert_eq!(top[1], (crate::BG_ROW, 100));
        // Empty table divides to zero, not a panic.
        let empty = LineageTable::new().snap();
        assert_eq!(empty.amplification(Layer::NvmmPersisted), 0.0);
        assert_eq!(empty.fences_per_kib(), 0);
        assert!(empty.top_amplifiers(3).is_empty());
    }
}
