//! Multicore stress tests for the sharded subsystems (PR 7).
//!
//! - the sharded PMFS block allocator keeps exact accounting under an
//!   8-thread alloc/free storm that drains shards through the
//!   steal-on-empty path: no lost blocks, no double allocations;
//! - an 8-thread HiNFS run in spin mode leaves every online invariant
//!   green and all data readable;
//! - a crash schedule recorded while four threads hammer HiNFS replays
//!   through the faultfs harness with the durability oracle clean at
//!   every sampled boundary.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use faultfs::{FsKind, Harness, Script};
use fskit::OpenFlags;
use nvmm::{FaultPlan, TimeMode};
use pmfs::alloc::Allocator;
use pmfs::Layout;
use workloads::filebench::{FilebenchParams, Fileserver, Varmail};
use workloads::fileset::{Fileset, FilesetSpec};
use workloads::setups::{build, ObsvOptions, SystemConfig, SystemKind};
use workloads::{Actor, RunLimit, Runner};

/// Eight threads alloc/free against one sharded allocator sized so that
/// every thread's demand exceeds a single shard's segment — the tail of
/// each burst is served by steal-on-empty. Afterwards the books must be
/// exact: every block handed out at most once at any instant, and
/// nothing leaked.
#[test]
fn eight_thread_steal_stress_no_lost_or_double_blocks() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 40;

    let layout = Layout::compute(1024, 16, 256).expect("layout");
    let alloc = Arc::new(Allocator::new_empty(&layout));
    let total = alloc.free_blocks();
    // Each thread's burst is larger than one shard's segment, so draining
    // the preferred shard and stealing from neighbours is guaranteed.
    let burst = (total as usize / THREADS).max(obsv::NSHARDS * 2);
    let stolen_proof = total as usize / obsv::NSHARDS;
    assert!(
        burst > stolen_proof / 2,
        "burst {burst} too small to force steals (shard segment ≈ {stolen_proof})"
    );

    let still_held: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let double_allocs = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let alloc = Arc::clone(&alloc);
            let still_held = &still_held;
            let double_allocs = &double_allocs;
            scope.spawn(move || {
                let mut mine: Vec<u64> = Vec::new();
                for round in 0..ROUNDS {
                    while mine.len() < burst {
                        match alloc.alloc() {
                            Ok(b) => mine.push(b),
                            Err(_) => break, // pool exhausted: all shards drained
                        }
                    }
                    // A duplicate inside one thread's live set means two
                    // shards handed out the same block.
                    let set: HashSet<u64> = mine.iter().copied().collect();
                    if set.len() != mine.len() {
                        double_allocs.fetch_add(1, Ordering::Relaxed);
                    }
                    // Free an uneven slice (threads desynchronize, keeping
                    // shard occupancies skewed so steals keep happening).
                    let keep = (t + round) % mine.len().max(1);
                    for b in mine.drain(keep..) {
                        alloc.free(b);
                    }
                }
                still_held.lock().unwrap().extend(mine.drain(..));
            });
        }
    });

    assert_eq!(
        double_allocs.load(Ordering::Relaxed),
        0,
        "double allocation"
    );
    let held = still_held.into_inner().unwrap();
    let distinct: HashSet<u64> = held.iter().copied().collect();
    assert_eq!(
        distinct.len(),
        held.len(),
        "two threads hold the same block"
    );
    assert_eq!(
        alloc.free_blocks() + held.len() as u64,
        total,
        "blocks lost or conjured: free {} held {} total {total}",
        alloc.free_blocks(),
        held.len()
    );
    // Returning everything restores the empty-image free count exactly
    // (free panics on double free, so this also proves ownership).
    for b in held {
        alloc.free(b);
    }
    assert_eq!(alloc.free_blocks(), total);
}

/// Eight fileserver actors on real threads (spin mode) against a sharded
/// HiNFS mount with the online auditor enabled: the run must finish with
/// every invariant green and the mount must unmount cleanly (which
/// flushes every shard).
#[test]
fn eight_thread_hinfs_run_keeps_invariants_green() {
    let cfg = SystemConfig {
        device_bytes: 128 << 20,
        mode: TimeMode::Spin,
        buffer_bytes: 4 << 20,
        obsv: ObsvOptions::none().with_audit().with_contention(),
        ..SystemConfig::default()
    };
    let sys = build(SystemKind::Hinfs, &cfg).unwrap();
    let set = Fileset::populate(&*sys.fs, FilesetSpec::new("/d", 64, 6, 16 << 10), 3).unwrap();
    let params = FilebenchParams {
        iosize: 16 << 10,
        append_size: 8 << 10,
    };
    // Half fileserver (buffered churn), half varmail (fsync-heavy, so the
    // in-band auditor fires throughout the run).
    let actors: Vec<Box<dyn Actor>> = (0..8)
        .map(|i| {
            if i % 2 == 0 {
                Box::new(Fileserver::new(Arc::clone(&set), params)) as Box<dyn Actor>
            } else {
                Box::new(Varmail::new(Arc::clone(&set), params)) as Box<dyn Actor>
            }
        })
        .collect();
    Runner::new(sys.env.clone(), sys.fs.clone())
        .with_device(sys.dev.clone())
        .run(actors, RunLimit::steps(25), 42);

    let rep = sys.introspect.as_ref().unwrap().audit();
    assert!(rep.is_clean(), "post-run audit: {rep:?}");
    let obs = sys.obs.as_ref().unwrap();
    assert!(obs.audit_checks() > 0, "the auditor actually ran");
    assert_eq!(obs.audit_violations(), 0);
    sys.fs.unmount().unwrap();
}

/// Records the persistence-boundary schedule of a four-thread HiNFS run
/// (spin mode, real concurrency), then replays crashes at boundaries
/// sampled from that schedule through the faultfs harness: recovery must
/// come up clean and the durability oracle must accept the recovered
/// tree — fsync-acknowledged data survives, no invariant breaks.
#[test]
fn crash_schedule_recorded_under_four_threads_replays_clean() {
    // Phase 1: record. A live FaultPlan counts every persist/flush the
    // four writer threads push through the device, giving the density of
    // crash-eligible boundaries a concurrent run produces.
    let cfg = SystemConfig {
        device_bytes: 64 << 20,
        mode: TimeMode::Spin,
        buffer_bytes: 2 << 20,
        ..SystemConfig::default()
    };
    let sys = build(SystemKind::Hinfs, &cfg).unwrap();
    let plan = FaultPlan::new();
    sys.dev.fault_hook().install(plan.clone());
    plan.start_recording();
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let fs = sys.fs.clone();
            scope.spawn(move || {
                let path = format!("/t{t}");
                let fd = fs.open(&path, OpenFlags::RDWR | OpenFlags::CREATE).unwrap();
                for i in 0..12u64 {
                    fs.append(fd, &[(t * 16 + i) as u8; 2048]).unwrap();
                    if i % 3 == 0 {
                        fs.fsync(fd).unwrap();
                    }
                }
                fs.close(fd).unwrap();
            });
        }
    });
    let schedule = plan.stop_recording();
    sys.dev.fault_hook().clear();
    sys.fs.unmount().unwrap();

    let crash_points: Vec<u64> = schedule
        .iter()
        .filter(|b| b.index > 0) // fences are not crash-eligible
        .map(|b| b.index)
        .collect();
    assert!(
        crash_points.len() >= 8,
        "4-thread run recorded only {} crash-eligible boundaries",
        crash_points.len()
    );

    // Phase 2: replay. Crash at a spread of the recorded boundary numbers
    // (first, last, and quartiles) and let the oracle judge recovery.
    let h = Harness::new();
    let script = Script::random(0xC0FFEE, 12);
    for q in 0..=4 {
        let k = crash_points[(crash_points.len() - 1) * q / 4];
        let out = h.crash_run(FsKind::Hinfs, &script, k, None);
        assert!(
            out.violations.is_empty(),
            "crash at recorded boundary {k}: {:#?}",
            out.violations
        );
        assert!(out.checks > 0, "boundary {k}: oracle checked nothing");
    }
}
