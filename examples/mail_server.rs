//! A mail server (varmail) and the Eager-Persistent Write Checker.
//!
//! Mail delivery appends a message and fsyncs it immediately — writes that
//! "cannot be coalesced in the DRAM buffer before the arrival of a
//! synchronization operation" (paper §5.2.1). Watch the Buffer Benefit
//! Model learn that and route subsequent writes straight to NVMM.
//!
//! ```text
//! cargo run --release --example mail_server
//! ```

use hinfs_suite::prelude::*;

fn main() {
    let env = SimEnv::new_virtual(CostModel::default());
    let dev = NvmmDevice::new(env.clone(), 128 << 20);
    let fs = Hinfs::mkfs(
        dev,
        PmfsOptions::default(),
        HinfsConfig::default().with_buffer_bytes(8 << 20),
    )
    .expect("mkfs");

    fs.mkdir("/spool").expect("mkdir");
    println!("delivering 200 messages to 8 mailboxes (append + fsync each)...\n");

    let mut fds = Vec::new();
    for m in 0..8 {
        let fd = fs
            .open(
                &format!("/spool/user{m}.mbox"),
                OpenFlags::RDWR | OpenFlags::CREATE,
            )
            .expect("open mailbox");
        fds.push(fd);
    }

    let mut checkpoints = vec![25usize, 100, 200];
    for i in 0..200usize {
        let fd = fds[i % fds.len()];
        let msg = vec![b'm'; 4096 + (i * 257) % 8192];
        fs.append(fd, &msg).expect("append");
        fs.fsync(fd).expect("fsync");
        if Some(&(i + 1)) == checkpoints.first() {
            checkpoints.remove(0);
            let s = fs.stats().snapshot();
            println!(
                "after {:>3} messages: lazy={:<5} eager={:<5} bbm-evals={:<5} accuracy={:.1}%",
                i + 1,
                s.lazy_writes,
                s.eager_writes,
                s.bbm_evals,
                s.bbm_accuracy() * 100.0
            );
        }
    }

    let s = fs.stats().snapshot();
    println!(
        "\nthe checker learned: {:.0}% of deliveries ended up eager-persistent",
        100.0 * s.eager_writes as f64 / (s.eager_writes + s.lazy_writes).max(1) as f64
    );
    println!(
        "accuracy of the most-recent-sync predictor: {:.1}% (paper Fig 6: ~90%+)",
        s.bbm_accuracy() * 100.0
    );

    // A bulk reindexing pass (no fsync) flows back through the buffer: the
    // Eager state decays 5 s after the last synchronization.
    env.set_now(env.now() + 6_000_000_000);
    let lazy_before = fs.stats().snapshot().lazy_writes;
    for fd in &fds {
        fs.write(*fd, 0, &vec![0u8; 4096]).expect("rewrite header");
    }
    let s = fs.stats().snapshot();
    println!(
        "after 6 idle seconds, {} header rewrites went lazy again (decay rule)",
        s.lazy_writes - lazy_before
    );

    for fd in fds {
        fs.close(fd).expect("close");
    }
    fs.unmount().expect("unmount");
    println!("ok");
}
