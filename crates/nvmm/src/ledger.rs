//! Per-thread time accounting, used to regenerate the paper's breakdown
//! figures.
//!
//! Every model cost charged through [`crate::SimEnv`] is attributed to a
//! [`Cat`] in a thread-local [`Ledger`]. The experiment runner snapshots the
//! ledger around each file system call; the difference tells it where the
//! time of that call went. Fig 1 groups these categories into *Read Access*
//! ([`Cat::UserRead`]), *Write Access* ([`Cat::UserWrite`]) and *Others*
//! (everything else).

use std::cell::RefCell;

/// Where a unit of simulated time was spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Cat {
    /// Copying file data from DRAM/NVMM to the user buffer (read path).
    UserRead = 0,
    /// Copying file data from the user buffer to DRAM/NVMM, including the
    /// NVMM persist latency on the direct path (write path).
    UserWrite = 1,
    /// Fetching data from NVMM into a buffer/page cache (fetch-before-write
    /// and read-miss fills).
    Fetch = 2,
    /// Writing dirty buffer/page-cache data back to NVMM.
    Writeback = 3,
    /// Journal (undo log) writes, commits and recovery work.
    Journal = 4,
    /// Metadata reads/writes outside the journal: inodes, bitmaps,
    /// directories, block index trees.
    Meta = 5,
    /// Fixed per-call software overhead (mode switch, fd lookup, ...).
    Syscall = 6,
    /// Store fences.
    Fence = 7,
    /// Generic block layer / request queue / driver overhead.
    BlockLayer = 8,
    /// Anything else.
    Other = 9,
}

/// Number of [`Cat`] variants.
pub const NCATS: usize = 10;

/// All categories, in discriminant order.
pub const ALL_CATS: [Cat; NCATS] = [
    Cat::UserRead,
    Cat::UserWrite,
    Cat::Fetch,
    Cat::Writeback,
    Cat::Journal,
    Cat::Meta,
    Cat::Syscall,
    Cat::Fence,
    Cat::BlockLayer,
    Cat::Other,
];

impl Cat {
    /// Short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Cat::UserRead => "read-access",
            Cat::UserWrite => "write-access",
            Cat::Fetch => "fetch",
            Cat::Writeback => "writeback",
            Cat::Journal => "journal",
            Cat::Meta => "meta",
            Cat::Syscall => "syscall",
            Cat::Fence => "fence",
            Cat::BlockLayer => "block-layer",
            Cat::Other => "other",
        }
    }
}

/// Accumulated nanoseconds per category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ledger {
    ns: [u64; NCATS],
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `ns` nanoseconds to `cat`.
    pub fn add(&mut self, cat: Cat, ns: u64) {
        self.ns[cat as usize] += ns;
    }

    /// Nanoseconds accumulated for `cat`.
    pub fn get(&self, cat: Cat) -> u64 {
        self.ns[cat as usize]
    }

    /// Total nanoseconds across all categories.
    pub fn total(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Nanoseconds in every category other than `UserRead` and `UserWrite`;
    /// the paper's "Others" bucket in Fig 1.
    pub fn others(&self) -> u64 {
        self.total() - self.get(Cat::UserRead) - self.get(Cat::UserWrite)
    }

    /// Per-category difference `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &Ledger) -> Ledger {
        let mut out = Ledger::new();
        for i in 0..NCATS {
            out.ns[i] = self.ns[i].saturating_sub(earlier.ns[i]);
        }
        out
    }

    /// Merges `other` into `self`.
    pub fn merge(&mut self, other: &Ledger) {
        for i in 0..NCATS {
            self.ns[i] += other.ns[i];
        }
    }
}

thread_local! {
    static LEDGER: RefCell<Ledger> = RefCell::new(Ledger::new());
}

/// Adds `ns` to `cat` in the current thread's ledger.
pub fn add(cat: Cat, ns: u64) {
    LEDGER.with(|l| l.borrow_mut().add(cat, ns));
}

/// Returns a copy of the current thread's ledger.
pub fn snapshot() -> Ledger {
    LEDGER.with(|l| *l.borrow())
}

/// Resets the current thread's ledger to empty.
pub fn reset() {
    LEDGER.with(|l| *l.borrow_mut() = Ledger::new());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut l = Ledger::new();
        l.add(Cat::UserWrite, 100);
        l.add(Cat::UserWrite, 50);
        l.add(Cat::Syscall, 7);
        assert_eq!(l.get(Cat::UserWrite), 150);
        assert_eq!(l.get(Cat::Syscall), 7);
        assert_eq!(l.total(), 157);
        assert_eq!(l.others(), 7);
    }

    #[test]
    fn since_computes_delta() {
        let mut a = Ledger::new();
        a.add(Cat::UserRead, 10);
        let mut b = a;
        b.add(Cat::UserRead, 5);
        b.add(Cat::Journal, 3);
        let d = b.since(&a);
        assert_eq!(d.get(Cat::UserRead), 5);
        assert_eq!(d.get(Cat::Journal), 3);
        assert_eq!(d.total(), 8);
    }

    #[test]
    fn thread_local_roundtrip() {
        reset();
        add(Cat::Fence, 15);
        add(Cat::Fence, 15);
        assert_eq!(snapshot().get(Cat::Fence), 30);
        reset();
        assert_eq!(snapshot().total(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Ledger::new();
        a.add(Cat::Meta, 1);
        let mut b = Ledger::new();
        b.add(Cat::Meta, 2);
        b.add(Cat::Other, 4);
        a.merge(&b);
        assert_eq!(a.get(Cat::Meta), 3);
        assert_eq!(a.get(Cat::Other), 4);
    }

    #[test]
    fn labels_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in ALL_CATS {
            assert!(seen.insert(c.label()));
        }
    }
}
