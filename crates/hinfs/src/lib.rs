//! HiNFS — a high performance file system for non-volatile main memory.
//!
//! Reproduction of Ou, Shu & Lu, *HiNFS: A High Performance File System for
//! Non-Volatile Main Memory* (EuroSys 2016), built — like the original — on
//! top of PMFS's persistent structures (the [`pmfs`] crate).
//!
//! The paper's mechanisms map to this crate's modules as follows:
//!
//! | Paper concept | Module |
//! |---|---|
//! | NVMM-aware Write Buffer (LRW, `Low_f`/`High_f`, 5 s / 30 s flushes) | [`buffer`], [`writeback`] |
//! | DRAM Block Index (per-file B-tree in DRAM) | [`index`] |
//! | Cacheline Bitmap + CLFW (fine-grained fetch/writeback) | [`buffer`] |
//! | Eager-Persistent Write Checker + Buffer Benefit Model + ghost buffer | [`checker`] |
//! | Ordered-mode journaling with deferred commits | [`tracker`] (FIFO per-file transactions over the PMFS undo journal) |
//! | Direct reads stitched from DRAM and NVMM | [`fs`] read path |
//! | Direct mmap with eager pinning | [`fs`] |
//!
//! Ablation variants from the evaluation are configuration switches:
//! [`HinfsConfig::clfw`] `= false` gives **HiNFS-NCLFW** (block-granular
//! fetch/writeback, Fig 9) and [`HinfsConfig::checker`] `= false` gives
//! **HiNFS-WB** (every write buffered, Fig 12/13).

pub mod buffer;
pub mod checker;
pub mod fs;
pub mod index;
pub mod introspect;
pub mod lrw;
pub mod stats;
pub mod tracker;
pub mod writeback;

pub use fs::Hinfs;
pub use stats::HinfsStats;

/// Configuration of a HiNFS mount.
#[derive(Debug, Clone)]
pub struct HinfsConfig {
    /// DRAM write buffer capacity in bytes (paper default: 2 GiB for the
    /// filebench runs; experiments scale it relative to the working set).
    pub buffer_bytes: usize,
    /// `Low_f`: background reclaim starts when the free fraction of DRAM
    /// blocks drops below this (paper: 5 %).
    pub low_watermark: f64,
    /// `High_f`: reclaim stops once the free fraction exceeds this
    /// (paper: 20 %).
    pub high_watermark: f64,
    /// Period of the background writeback wake-up (paper: 5 s).
    pub periodic_wb_ns: u64,
    /// Dirty blocks older than this are flushed by the periodic pass
    /// (paper: 30 s).
    pub dirty_age_ns: u64,
    /// Eager→Lazy decay: a block drops its Eager-Persistent state if its
    /// file saw no synchronization for this long (paper: 5 s).
    pub eager_decay_ns: u64,
    /// Cacheline Level Fetch/Writeback. `false` reproduces HiNFS-NCLFW:
    /// whole-block fetch-before-write and whole-block writeback.
    pub clfw: bool,
    /// The Eager-Persistent Write Checker. `false` reproduces HiNFS-WB:
    /// every write is buffered in DRAM first.
    pub checker: bool,
    /// Mount-wide sync option: every write is eager-persistent (case 1).
    pub sync_mount: bool,
    /// Number of background writeback threads in spin mode (paper mounts
    /// "multiple independent kernel threads"; virtual mode uses one
    /// deterministic writeback actor regardless).
    pub wb_threads: usize,
    /// Online invariant auditor: when set, every fsync and every periodic
    /// writeback pass runs [`obsv::Introspect::audit`] and records
    /// violations on the trace ring and the `obsv_audit_violations`
    /// counter. Off by default (the audit walks the whole buffer pool).
    pub audit: bool,
    /// Number of buffer-pool shards. The DRAM block pool, the per-file
    /// index, and the LRW list are split into this many independent
    /// instances keyed by `ino % shards`, each behind its own lock, so
    /// writers to different files do not serialize on one buffer mutex.
    pub shards: usize,
}

impl Default for HinfsConfig {
    fn default() -> Self {
        HinfsConfig {
            buffer_bytes: 64 << 20,
            low_watermark: 0.05,
            high_watermark: 0.20,
            periodic_wb_ns: 5_000_000_000,
            dirty_age_ns: 30_000_000_000,
            eager_decay_ns: 5_000_000_000,
            clfw: true,
            checker: true,
            sync_mount: false,
            wb_threads: 2,
            audit: false,
            shards: obsv::NSHARDS,
        }
    }
}

impl HinfsConfig {
    /// Variant without CLFW (HiNFS-NCLFW in Fig 9).
    pub fn nclfw(mut self) -> Self {
        self.clfw = false;
        self
    }

    /// Variant without the Eager-Persistent Write Checker (HiNFS-WB in
    /// Fig 12/13).
    pub fn wb_only(mut self) -> Self {
        self.checker = false;
        self
    }

    /// Sets the buffer size.
    pub fn with_buffer_bytes(mut self, bytes: usize) -> Self {
        self.buffer_bytes = bytes;
        self
    }

    /// Enables the online invariant auditor.
    pub fn with_audit(mut self) -> Self {
        self.audit = true;
        self
    }

    /// Sets the buffer-pool shard count (clamped to at least 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Number of buffer blocks this configuration provides. At least two
    /// blocks per shard so every shard's pool can hold a victim and a
    /// newcomer.
    pub fn buffer_blocks(&self) -> usize {
        (self.buffer_bytes / nvmm::BLOCK_SIZE)
            .max(8)
            .max(2 * self.shards.max(1))
    }

    /// Capacity of shard `i`'s pool. The global block budget is split
    /// evenly with the remainder spread over the low shards, so the
    /// per-shard capacities always sum to [`Self::buffer_blocks`].
    pub fn shard_blocks(&self, i: usize) -> usize {
        let n = self.shards.max(1);
        let total = self.buffer_blocks();
        total / n + usize::from(i < total % n)
    }

    /// Reclaim trigger threshold in blocks (`Low_f`).
    pub fn low_blocks(&self) -> usize {
        ((self.buffer_blocks() as f64 * self.low_watermark) as usize).max(1)
    }

    /// Reclaim stop threshold in blocks (`High_f`).
    pub fn high_blocks(&self) -> usize {
        ((self.buffer_blocks() as f64 * self.high_watermark) as usize).max(2)
    }

    /// `Low_f` applied to one shard's capacity.
    pub fn low_blocks_of(&self, cap: usize) -> usize {
        ((cap as f64 * self.low_watermark) as usize).max(1)
    }

    /// `High_f` applied to one shard's capacity.
    pub fn high_blocks_of(&self, cap: usize) -> usize {
        ((cap as f64 * self.high_watermark) as usize).max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let c = HinfsConfig::default();
        assert_eq!(c.low_watermark, 0.05);
        assert_eq!(c.high_watermark, 0.20);
        assert_eq!(c.periodic_wb_ns, 5_000_000_000);
        assert_eq!(c.dirty_age_ns, 30_000_000_000);
        assert_eq!(c.eager_decay_ns, 5_000_000_000);
        assert!(c.clfw);
        assert!(c.checker);
    }

    #[test]
    fn variants_flip_switches() {
        assert!(!HinfsConfig::default().nclfw().clfw);
        assert!(!HinfsConfig::default().wb_only().checker);
    }

    #[test]
    fn watermarks_ordered() {
        let c = HinfsConfig::default().with_buffer_bytes(1 << 20);
        assert!(c.low_blocks() < c.high_blocks());
        assert!(c.high_blocks() < c.buffer_blocks());
    }

    #[test]
    fn shard_capacities_sum_to_buffer_blocks() {
        for blocks in [8usize, 64, 67, 256, 16384] {
            let c = HinfsConfig::default().with_buffer_bytes(blocks * nvmm::BLOCK_SIZE);
            let sum: usize = (0..c.shards).map(|i| c.shard_blocks(i)).sum();
            assert_eq!(sum, c.buffer_blocks(), "blocks={blocks}");
            for i in 0..c.shards {
                assert!(c.shard_blocks(i) >= 2, "shard {i} too small");
            }
        }
    }

    #[test]
    fn single_shard_keeps_legacy_capacity() {
        let c = HinfsConfig::default()
            .with_shards(1)
            .with_buffer_bytes(64 * nvmm::BLOCK_SIZE);
        assert_eq!(c.shards, 1);
        assert_eq!(c.shard_blocks(0), c.buffer_blocks());
        assert_eq!(c.buffer_blocks(), 64);
    }
}
