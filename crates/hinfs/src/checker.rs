//! The Eager-Persistent Write Checker and the Buffer Benefit Model
//! (paper §3.3.2).
//!
//! HiNFS routes a write either to the DRAM buffer (lazy-persistent) or
//! straight to NVMM (eager-persistent). Case 1 — `O_SYNC` descriptors or a
//! sync mount — is checked trivially. Case 2 — asynchronous writes whose
//! fsync arrives before enough coalescing happens — is predicted per data
//! block by the Buffer Benefit Model: at each synchronization the block's
//! history decides its state for subsequent writes, using
//!
//! ```text
//! N_cw · L_dram + N_cf · L_nvmm  <  N_cw · L_nvmm        (Inequality 1)
//! ```
//!
//! where `N_cw` counts cacheline writes since the previous sync and `N_cf`
//! the cacheline flushes the sync itself must perform. For blocks that
//! bypass the buffer, `N_cf` comes from the *ghost buffer*: index metadata
//! that pretends every write was buffered.

use nvmm::CostModel;
use obsv::{TraceEvent, TraceRing};

use crate::buffer::FileBuf;
use crate::stats::HinfsStats;
use crate::HinfsConfig;

/// Evaluates Inequality (1): is buffering beneficial for a block with
/// these counters?
///
/// # Examples
///
/// ```
/// let cost = nvmm::CostModel::default();
/// // Heavy coalescing: 100 line writes, only 10 flushed at sync.
/// assert!(hinfs::checker::buffering_wins(&cost, 100, 10));
/// // No coalescing (append-then-fsync): every written line flushes.
/// assert!(!hinfs::checker::buffering_wins(&cost, 64, 64));
/// ```
pub fn buffering_wins(cost: &CostModel, n_cw: u64, n_cf: u64) -> bool {
    let lazy = n_cw * cost.dram_write_latency_ns + n_cf * cost.nvmm_write_latency_ns;
    let eager = n_cw * cost.nvmm_write_latency_ns;
    lazy < eager
}

/// Whether a write to `(file, iblk)` at `now` must take the eager path
/// under case 2 (block in the Eager-Persistent state, not yet decayed).
///
/// The decay rule (paper): the state falls back to Lazy-Persistent when the
/// block "has not met a synchronization operation for 5 seconds", decided
/// lazily at write time from the file's last synchronization time.
pub fn is_eager_block(cfg: &HinfsConfig, file: &FileBuf, iblk: u64, now: u64) -> bool {
    if !cfg.checker {
        // HiNFS-WB: the checker is disabled, every write is buffered.
        return false;
    }
    if file.mmap_pinned {
        return true;
    }
    if !file.eager.contains_key(&iblk) {
        return false;
    }
    now.saturating_sub(file.last_sync_ns) <= cfg.eager_decay_ns
}

/// Records a write's cacheline activity for the model. `buffered` selects
/// between the real buffer (dirty bits live on the block) and the ghost
/// buffer (`ghost_dirty` here).
pub fn record_write(file: &mut FileBuf, iblk: u64, line_mask: u64, buffered: bool) {
    let st = file.bbm.entry(iblk).or_default();
    st.n_cw += line_mask.count_ones() as u64;
    if !buffered {
        st.ghost_dirty |= line_mask;
    }
}

/// The pieces of mount state a synchronization-point evaluation reads:
/// configuration, cost model, counters, trace ring, plus the sync's
/// timestamp and the inode being synced.
pub struct EvalCtx<'a> {
    pub cfg: &'a HinfsConfig,
    pub cost: &'a CostModel,
    pub stats: &'a HinfsStats,
    pub trace: &'a TraceRing,
    /// Simulated time of the synchronization.
    pub now: u64,
    /// Inode being synchronized (trace payload only).
    pub ino: u64,
}

/// Runs the model for one block at a synchronization point.
///
/// `n_cf` is the number of cacheline flushes this synchronization performs
/// for the block (real dirty lines for buffered blocks, ghost lines for
/// bypassed ones). Updates the block's state, the accuracy counters
/// (Fig 6), and resets the per-epoch counters. Returns `true` if the block
/// is now Lazy-Persistent.
pub fn evaluate_at_sync(ctx: &EvalCtx<'_>, file: &mut FileBuf, iblk: u64, n_cf: u64) -> bool {
    // Age of the epoch being closed (time since the previous sync) — the
    // same quantity the decay rule compares against `eager_decay_ns`.
    // Captured before the bitmap entry borrow.
    let sync_age_ns = ctx.now.saturating_sub(file.last_sync_ns);
    let st = file.bbm.entry(iblk).or_default();
    if st.n_cw == 0 && n_cf == 0 {
        // Nothing happened to this block this epoch; keep its state.
        return !file.eager.contains_key(&iblk);
    }
    let n_cw = st.n_cw;
    let lazy = buffering_wins(ctx.cost, n_cw, n_cf);
    HinfsStats::bump(&ctx.stats.bbm_evals, 1);
    let flipped = match st.prev_lazy {
        Some(prev) => prev != lazy,
        // First evaluation: the paper measures prediction stability between
        // consecutive syncs, so the first one has no basis — count it as
        // accurate (it cannot have mispredicted anything yet). It still
        // traces as a flip when it leaves the default lazy state.
        None => !lazy,
    };
    if !flipped || st.prev_lazy.is_none() {
        HinfsStats::bump(&ctx.stats.bbm_accurate, 1);
    }
    if flipped {
        ctx.trace.emit(ctx.now, || TraceEvent::BbmFlip {
            ino: ctx.ino,
            iblk,
            to_lazy: lazy,
            n_cw,
            n_cf,
            l_dram: ctx.cost.dram_write_latency_ns,
            l_nvmm: ctx.cost.nvmm_write_latency_ns,
            sync_age_ns,
        });
    }
    st.prev_lazy = Some(lazy);
    st.n_cw = 0;
    st.ghost_dirty = 0;
    if lazy || !ctx.cfg.checker {
        file.eager.remove(&iblk);
    } else {
        file.eager.insert(iblk, ctx.now);
    }
    lazy
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmm::CostModel;

    fn cfg() -> HinfsConfig {
        HinfsConfig::default()
    }

    #[test]
    fn inequality_matches_paper_intuition() {
        let cost = CostModel::default(); // L_dram=40, L_nvmm=200
                                         // Full coalescing: one flush for many writes.
        assert!(buffering_wins(&cost, 1000, 1));
        // Zero coalescing: appends synced immediately.
        assert!(!buffering_wins(&cost, 10, 10));
        // Boundary: N_cf/N_cw < (L_nvmm - L_dram)/L_nvmm = 0.8.
        assert!(buffering_wins(&cost, 100, 79));
        assert!(!buffering_wins(&cost, 100, 80));
    }

    #[test]
    fn short_latency_shrinks_the_lazy_region() {
        // At 50 ns NVMM writes, buffering rarely wins: (50-40)/50 = 0.2.
        let cost = CostModel::default().with_write_latency(50);
        assert!(!buffering_wins(&cost, 100, 30));
        assert!(buffering_wins(&cost, 100, 10));
    }

    #[test]
    fn eager_state_with_decay() {
        let c = cfg();
        let mut f = FileBuf::new();
        assert!(!is_eager_block(&c, &f, 0, 0), "blocks start lazy");
        f.eager.insert(0, 1_000);
        f.last_sync_ns = 1_000;
        assert!(is_eager_block(&c, &f, 0, 2_000));
        // 5 s after the last sync the state decays back to lazy.
        let decayed = 1_000 + c.eager_decay_ns + 1;
        assert!(!is_eager_block(&c, &f, 0, decayed));
    }

    #[test]
    fn wb_variant_disables_checker() {
        let c = cfg().wb_only();
        let mut f = FileBuf::new();
        f.eager.insert(0, 0);
        assert!(!is_eager_block(&c, &f, 0, 100));
    }

    #[test]
    fn mmap_pin_forces_eager() {
        let c = cfg();
        let mut f = FileBuf::new();
        f.mmap_pinned = true;
        assert!(is_eager_block(&c, &f, 42, 0));
    }

    #[test]
    fn evaluation_flips_state_and_tracks_accuracy() {
        let c = cfg();
        let cost = CostModel::default();
        let stats = HinfsStats::new();
        let trace = TraceRing::new(16);
        trace.set_enabled(true);
        let ctx = |now| EvalCtx {
            cfg: &c,
            cost: &cost,
            stats: &stats,
            trace: &trace,
            now,
            ino: 9,
        };
        let mut f = FileBuf::new();
        // Epoch 1: no coalescing -> eager.
        record_write(&mut f, 0, 0xff, true);
        assert!(!evaluate_at_sync(&ctx(100), &mut f, 0, 8));
        assert!(f.eager.contains_key(&0));
        // Epoch 2: same behaviour -> still eager, and accurate.
        record_write(&mut f, 0, 0xff, false);
        assert!(!evaluate_at_sync(&ctx(200), &mut f, 0, 8));
        let s = stats.snapshot();
        assert_eq!(s.bbm_evals, 2);
        assert_eq!(s.bbm_accurate, 2);
        // Epoch 3: heavy coalescing -> flips to lazy, inaccurate.
        for _ in 0..100 {
            record_write(&mut f, 0, 0xff, false);
        }
        assert!(evaluate_at_sync(&ctx(300), &mut f, 0, 8));
        assert!(!f.eager.contains_key(&0));
        let s = stats.snapshot();
        assert_eq!(s.bbm_evals, 3);
        assert_eq!(s.bbm_accurate, 2, "the flip was a misprediction");
        // Both state changes (lazy->eager at epoch 1, eager->lazy at
        // epoch 3) traced; the accurate epoch-2 eval did not.
        let flips: Vec<_> = trace
            .tail(16)
            .into_iter()
            .map(|r| match r.ev {
                TraceEvent::BbmFlip {
                    ino,
                    iblk,
                    to_lazy,
                    l_dram,
                    l_nvmm,
                    ..
                } => {
                    assert_eq!((ino, iblk), (9, 0));
                    // Decisions are replayable: the model's latency inputs
                    // ride along with each flip.
                    assert_eq!(l_dram, cost.dram_write_latency_ns);
                    assert_eq!(l_nvmm, cost.nvmm_write_latency_ns);
                    to_lazy
                }
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(flips, vec![false, true]);
    }

    #[test]
    fn idle_blocks_keep_state_without_evaluation() {
        let c = cfg();
        let cost = CostModel::default();
        let stats = HinfsStats::new();
        let trace = TraceRing::new(4);
        let mut f = FileBuf::new();
        f.eager.insert(7, 50);
        let ctx = EvalCtx {
            cfg: &c,
            cost: &cost,
            stats: &stats,
            trace: &trace,
            now: 100,
            ino: 1,
        };
        assert!(!evaluate_at_sync(&ctx, &mut f, 7, 0));
        assert_eq!(stats.snapshot().bbm_evals, 0);
    }

    #[test]
    fn ghost_buffer_accumulates_for_bypassed_blocks() {
        let mut f = FileBuf::new();
        record_write(&mut f, 3, 0b111, false);
        record_write(&mut f, 3, 0b100, false);
        let st = f.bbm.get(&3).unwrap();
        assert_eq!(st.n_cw, 4);
        assert_eq!(st.ghost_dirty, 0b111, "ghost coalesces like a real buffer");
    }
}
