//! The persistence domain: tracking which stores would survive a crash.
//!
//! Real NVMM sits behind volatile CPU caches; a store is durable only once
//! its cacheline has been flushed (`clflush`) or was written with a
//! non-temporal instruction. [`Shadow`] models this by keeping a second,
//! *persistent* image of the device and a bitmap of cachelines whose latest
//! content has not yet reached it. Crashing the device throws the pending
//! lines away, exactly what power loss does to dirty cache contents.

/// Volatile/persistent split of a tracked device.
#[derive(Debug)]
pub struct Shadow {
    /// The durable image of the device.
    persistent: Box<[u8]>,
    /// Bit per cacheline: set if the volatile image is newer than the
    /// persistent one for that line.
    pending: Vec<u64>,
    pending_count: usize,
}

use crate::CACHELINE;

impl Shadow {
    /// Creates a shadow for a device of `len` bytes (must be a multiple of
    /// the cacheline size).
    pub fn new(len: usize) -> Self {
        assert_eq!(len % CACHELINE, 0, "device length must be line-aligned");
        let lines = len / CACHELINE;
        Shadow {
            persistent: vec![0u8; len].into_boxed_slice(),
            pending: vec![0u64; lines.div_ceil(64)],
            pending_count: 0,
        }
    }

    /// Number of cachelines currently pending (volatile-only).
    pub fn pending_lines(&self) -> usize {
        self.pending_count
    }

    fn is_pending(&self, line: usize) -> bool {
        self.pending[line / 64] & (1 << (line % 64)) != 0
    }

    fn set_pending(&mut self, line: usize) {
        let w = &mut self.pending[line / 64];
        let bit = 1u64 << (line % 64);
        if *w & bit == 0 {
            *w |= bit;
            self.pending_count += 1;
        }
    }

    fn clear_pending(&mut self, line: usize) {
        let w = &mut self.pending[line / 64];
        let bit = 1u64 << (line % 64);
        if *w & bit != 0 {
            *w &= !bit;
            self.pending_count -= 1;
        }
    }

    /// Marks every line touched by `[off, off+len)` as pending.
    pub fn mark_range(&mut self, off: u64, len: usize) {
        if len == 0 {
            return;
        }
        let first = off as usize / CACHELINE;
        let last = (off as usize + len - 1) / CACHELINE;
        for line in first..=last {
            self.set_pending(line);
        }
    }

    /// Persists every *pending* line in `[off, off+len)` by copying it from
    /// the volatile image `mem`. Returns the number of lines persisted.
    pub fn flush_range(&mut self, mem: &[u8], off: u64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        let first = off as usize / CACHELINE;
        let last = (off as usize + len - 1) / CACHELINE;
        let mut flushed = 0;
        for line in first..=last {
            if self.is_pending(line) {
                let b = line * CACHELINE;
                self.persistent[b..b + CACHELINE].copy_from_slice(&mem[b..b + CACHELINE]);
                self.clear_pending(line);
                flushed += 1;
            }
        }
        flushed
    }

    /// Persists `[off, off+len)` immediately (non-temporal store path).
    pub fn persist_now(&mut self, mem: &[u8], off: u64, len: usize) {
        if len == 0 {
            return;
        }
        // NT stores persist whole lines; copy line-aligned covering range so
        // the persistent image never holds a torn line.
        let first = (off as usize / CACHELINE) * CACHELINE;
        let last = ((off as usize + len - 1) / CACHELINE + 1) * CACHELINE;
        self.persistent[first..last].copy_from_slice(&mem[first..last]);
        for line in first / CACHELINE..last / CACHELINE {
            self.clear_pending(line);
        }
    }

    /// Simulates power loss where a subset of the pending lines made it out
    /// of the cache first: every pending line for which `keep` returns true
    /// is persisted from `mem` before the crash, the rest are discarded.
    /// Returns the number of lines kept. Whole lines survive or die — there
    /// are no sub-line tears, matching real cacheline-granular eviction.
    pub fn crash_into_partial(
        &mut self,
        mem: &mut [u8],
        mut keep: impl FnMut(usize) -> bool,
    ) -> usize {
        let mut kept = 0;
        for line in 0..self.persistent.len() / CACHELINE {
            if self.is_pending(line) && keep(line) {
                let b = line * CACHELINE;
                self.persistent[b..b + CACHELINE].copy_from_slice(&mem[b..b + CACHELINE]);
                kept += 1;
            }
        }
        self.crash_into(mem);
        kept
    }

    /// Simulates power loss: copies the persistent image over the volatile
    /// one, discarding every pending line.
    pub fn crash_into(&mut self, mem: &mut [u8]) {
        mem.copy_from_slice(&self.persistent);
        for w in &mut self.pending {
            *w = 0;
        }
        self.pending_count = 0;
    }

    /// Read-only view of the persistent image (test helper).
    pub fn persistent_image(&self) -> &[u8] {
        &self.persistent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_until_flushed() {
        let mut mem = vec![0u8; 256];
        let mut sh = Shadow::new(256);
        mem[0..4].copy_from_slice(&[1, 2, 3, 4]);
        sh.mark_range(0, 4);
        assert_eq!(sh.pending_lines(), 1);
        assert_eq!(sh.persistent_image()[0], 0);
        assert_eq!(sh.flush_range(&mem, 0, 4), 1);
        assert_eq!(sh.pending_lines(), 0);
        assert_eq!(sh.persistent_image()[0..4], [1, 2, 3, 4]);
    }

    #[test]
    fn crash_discards_pending() {
        let mut mem = vec![0u8; 256];
        let mut sh = Shadow::new(256);
        mem[64] = 9;
        sh.mark_range(64, 1);
        mem[128] = 7;
        sh.mark_range(128, 1);
        sh.flush_range(&mem, 128, 1);
        sh.crash_into(&mut mem);
        assert_eq!(mem[64], 0, "unflushed store lost");
        assert_eq!(mem[128], 7, "flushed store survives");
        assert_eq!(sh.pending_lines(), 0);
    }

    #[test]
    fn persist_now_is_immediately_durable() {
        let mut mem = vec![0u8; 256];
        let mut sh = Shadow::new(256);
        mem[10..20].fill(5);
        sh.persist_now(&mem, 10, 10);
        sh.crash_into(&mut mem);
        assert!(mem[10..20].iter().all(|&b| b == 5));
    }

    #[test]
    fn persist_now_clears_prior_pending() {
        let mut mem = vec![0u8; 256];
        let mut sh = Shadow::new(256);
        mem[0] = 1;
        sh.mark_range(0, 1);
        mem[1] = 2;
        sh.persist_now(&mem, 0, 2);
        assert_eq!(sh.pending_lines(), 0);
    }

    #[test]
    fn partial_crash_keeps_chosen_lines_only() {
        let mut mem = vec![0u8; 512];
        let mut sh = Shadow::new(512);
        for line in 0..8 {
            mem[line * 64] = line as u8 + 1;
            sh.mark_range((line * 64) as u64, 1);
        }
        // Keep even lines, lose odd ones.
        let kept = sh.crash_into_partial(&mut mem, |line| line % 2 == 0);
        assert_eq!(kept, 4);
        assert_eq!(sh.pending_lines(), 0);
        for line in 0..8 {
            let want = if line % 2 == 0 { line as u8 + 1 } else { 0 };
            assert_eq!(mem[line * 64], want, "line {line}");
        }
    }

    #[test]
    fn flush_counts_only_pending_lines() {
        let mem = vec![0u8; 512];
        let mut sh = Shadow::new(512);
        sh.mark_range(0, 1);
        sh.mark_range(256, 1);
        // Flushing the whole device persists exactly the two pending lines.
        assert_eq!(sh.flush_range(&mem, 0, 512), 2);
        assert_eq!(sh.flush_range(&mem, 0, 512), 0);
    }
}
