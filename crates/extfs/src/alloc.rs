//! On-disk bitmap allocators (block and inode bitmaps).
//!
//! Unlike PMFS (whose allocator lives in DRAM and is rebuilt at recovery),
//! ext keeps its bitmaps on disk: every allocation dirties a bitmap page in
//! the buffer cache and, in the journaled modes, adds it to the running
//! transaction. A full in-memory mirror avoids rescanning pages on every
//! allocation; the cache write keeps the on-disk image in sync.

use fskit::{FsError, Result};
use nvmm::{Cat, BLOCK_SIZE};
use obsv::{ContentionTable, Site, TrackedMutex};

use crate::cache::BufferCache;
use crate::jbd::Jbd;

#[derive(Debug)]
struct State {
    bits: Vec<u64>,
    free: u64,
    hint: u64,
}

/// A bitmap allocator stored in device blocks `[start_blk, ...)`.
#[derive(Debug)]
pub struct DiskBitmap {
    start_blk: u64,
    nbits: u64,
    state: TrackedMutex<State>,
}

impl DiskBitmap {
    /// Loads the bitmap from disk (through the cache).
    pub fn load(cache: &BufferCache, start_blk: u64, nbits: u64) -> DiskBitmap {
        let words = (nbits as usize).div_ceil(64);
        let mut bits = vec![0u64; words];
        let mut buf = vec![0u8; BLOCK_SIZE];
        let nblocks = (words * 8).div_ceil(BLOCK_SIZE);
        for b in 0..nblocks {
            cache.read(Cat::Meta, start_blk + b as u64, 0, &mut buf);
            for (i, chunk) in buf.chunks_exact(8).enumerate() {
                let w = b * (BLOCK_SIZE / 8) + i;
                if w < words {
                    bits[w] = u64::from_le_bytes(chunk.try_into().unwrap());
                }
            }
        }
        let mut used = 0u64;
        for (w, word) in bits.iter().enumerate() {
            for bit in 0..64 {
                let idx = (w * 64 + bit) as u64;
                if idx < nbits && word & (1 << bit) != 0 {
                    used += 1;
                }
            }
        }
        DiskBitmap {
            start_blk,
            nbits,
            state: TrackedMutex::new(
                Site::ExtfsAlloc,
                State {
                    bits,
                    free: nbits - used,
                    hint: 0,
                },
            ),
        }
    }

    /// Wires the bitmap's lock to a contention profiler (first caller
    /// wins). The file system calls this at mount.
    pub fn attach_contention(&self, table: &std::sync::Arc<ContentionTable>) {
        self.state.attach(table);
    }

    /// Number of free bits.
    pub fn free_count(&self) -> u64 {
        self.state.lock().free
    }

    /// Whether `idx` is currently set (test helper).
    pub fn is_set(&self, idx: u64) -> bool {
        let s = self.state.lock();
        s.bits[(idx / 64) as usize] & (1 << (idx % 64)) != 0
    }

    /// Persists the word holding `idx` through the cache and journals the
    /// bitmap block.
    fn write_word(&self, cache: &BufferCache, jbd: &Jbd, idx: u64, word: u64, now: u64) {
        let byte = (idx / 64) * 8;
        let blk = self.start_blk + byte / BLOCK_SIZE as u64;
        let off = (byte % BLOCK_SIZE as u64) as usize;
        cache.write(Cat::Meta, blk, off, &word.to_le_bytes(), now);
        jbd.add(cache, blk);
    }

    /// Allocates one bit, returning its index.
    pub fn alloc(&self, cache: &BufferCache, jbd: &Jbd, now: u64) -> Result<u64> {
        let mut s = self.state.lock();
        if s.free == 0 {
            return Err(FsError::NoSpace);
        }
        let start = s.hint.min(self.nbits - 1);
        let mut idx = start;
        loop {
            let w = (idx / 64) as usize;
            let bit = idx % 64;
            if s.bits[w] & (1 << bit) == 0 {
                s.bits[w] |= 1 << bit;
                s.free -= 1;
                s.hint = if idx + 1 < self.nbits { idx + 1 } else { 0 };
                let word = s.bits[w];
                drop(s);
                self.write_word(cache, jbd, idx, word, now);
                return Ok(idx);
            }
            idx += 1;
            if idx >= self.nbits {
                idx = 0;
            }
            if idx == start {
                return Err(FsError::Corrupted("bitmap free count"));
            }
        }
    }

    /// Marks `idx` used (mkfs pre-marking of metadata blocks).
    pub fn set(&self, cache: &BufferCache, jbd: &Jbd, idx: u64, now: u64) {
        let mut s = self.state.lock();
        let w = (idx / 64) as usize;
        let bit = idx % 64;
        if s.bits[w] & (1 << bit) == 0 {
            s.bits[w] |= 1 << bit;
            s.free -= 1;
            let word = s.bits[w];
            drop(s);
            self.write_word(cache, jbd, idx, word, now);
        }
    }

    /// Frees `idx`.
    ///
    /// # Panics
    ///
    /// Panics on double free (corruption should fail loudly).
    pub fn release(&self, cache: &BufferCache, jbd: &Jbd, idx: u64, now: u64) {
        let mut s = self.state.lock();
        let w = (idx / 64) as usize;
        let bit = idx % 64;
        assert!(s.bits[w] & (1 << bit) != 0, "double free of bit {idx}");
        s.bits[w] &= !(1 << bit);
        s.free += 1;
        s.hint = s.hint.min(idx);
        let word = s.bits[w];
        drop(s);
        self.write_word(cache, jbd, idx, word, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::Nvmmbd;
    use nvmm::{CostModel, NvmmDevice, SimEnv};
    use std::sync::Arc;

    fn setup() -> (BufferCache, Jbd) {
        let env = SimEnv::new_virtual(CostModel::default());
        let dev = NvmmDevice::new(env, 512 * BLOCK_SIZE);
        let bd = Arc::new(Nvmmbd::new(dev));
        let cache = BufferCache::new(bd.clone(), 32);
        (cache, Jbd::open(bd, 1, 16, false))
    }

    #[test]
    fn alloc_release_roundtrip() {
        let (cache, jbd) = setup();
        let bm = DiskBitmap::load(&cache, 20, 1000);
        assert_eq!(bm.free_count(), 1000);
        let a = bm.alloc(&cache, &jbd, 0).unwrap();
        let b = bm.alloc(&cache, &jbd, 0).unwrap();
        assert_ne!(a, b);
        assert!(bm.is_set(a));
        bm.release(&cache, &jbd, a, 0);
        assert!(!bm.is_set(a));
        assert_eq!(bm.free_count(), 999);
    }

    #[test]
    fn persists_through_cache_reload() {
        let (cache, jbd) = setup();
        let bm = DiskBitmap::load(&cache, 20, 500);
        let mut got = Vec::new();
        for _ in 0..10 {
            got.push(bm.alloc(&cache, &jbd, 0).unwrap());
        }
        bm.release(&cache, &jbd, got[3], 0);
        cache.flush_all(obsv::DrainKind::Sync);
        // Reload from the (cached/fetched) on-disk image.
        let bm2 = DiskBitmap::load(&cache, 20, 500);
        assert_eq!(bm2.free_count(), 500 - 9);
        for (i, idx) in got.iter().enumerate() {
            assert_eq!(bm2.is_set(*idx), i != 3);
        }
    }

    #[test]
    fn exhaustion() {
        let (cache, jbd) = setup();
        let bm = DiskBitmap::load(&cache, 20, 64);
        for _ in 0..64 {
            bm.alloc(&cache, &jbd, 0).unwrap();
        }
        assert_eq!(bm.alloc(&cache, &jbd, 0), Err(FsError::NoSpace));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let (cache, jbd) = setup();
        let bm = DiskBitmap::load(&cache, 20, 64);
        let a = bm.alloc(&cache, &jbd, 0).unwrap();
        bm.release(&cache, &jbd, a, 0);
        bm.release(&cache, &jbd, a, 0);
    }

    #[test]
    fn spans_multiple_blocks() {
        let (cache, jbd) = setup();
        // 40000 bits ≈ 1.2 bitmap blocks.
        let bm = DiskBitmap::load(&cache, 20, 40_000);
        bm.set(&cache, &jbd, 39_999, 0);
        cache.flush_all(obsv::DrainKind::Sync);
        let bm2 = DiskBitmap::load(&cache, 20, 40_000);
        assert!(bm2.is_set(39_999));
        assert_eq!(bm2.free_count(), 39_999);
    }
}
