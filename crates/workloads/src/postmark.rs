//! Postmark (Katcher '97): small-file transactions of an e-mail/web
//! service — a pool of small files churned by read/append and
//! create/delete transactions. Like the paper observes, many files are
//! short-lived, which is exactly what HiNFS's drop-on-delete buffering
//! exploits (Fig 13).

use std::sync::Arc;

use fskit::{OpenFlags, Result};
use rand::Rng;

use crate::fileset::{draw_size, Fileset};
use crate::runner::{Actor, Ctx};

/// Postmark parameters.
#[derive(Debug, Clone, Copy)]
pub struct PostmarkParams {
    /// Smallest file/append size.
    pub min_size: usize,
    /// Largest file/append size.
    pub max_size: usize,
    /// Read transfer size.
    pub read_size: usize,
}

impl Default for PostmarkParams {
    fn default() -> Self {
        PostmarkParams {
            min_size: 512,
            max_size: 10 << 10,
            read_size: 4096,
        }
    }
}

/// One postmark worker over a shared pool.
pub struct Postmark {
    set: Arc<Fileset>,
    params: PostmarkParams,
    buf: Vec<u8>,
}

impl Postmark {
    /// Creates a worker.
    pub fn new(set: Arc<Fileset>, params: PostmarkParams) -> Postmark {
        Postmark {
            set,
            params,
            buf: Vec::new(),
        }
    }

    fn draw(&self, ctx: &mut Ctx<'_>) -> usize {
        ctx.rng
            .gen_range(self.params.min_size..=self.params.max_size)
    }
}

impl Actor for Postmark {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        // Transaction pair 1: read or append a random file.
        if let Some(p) = self.set.pick(&mut ctx.rng) {
            if ctx.rng.gen_bool(0.5) {
                if let Ok(fd) = ctx.open(&p, OpenFlags::READ) {
                    self.buf.resize(self.params.read_size, 0);
                    let size = ctx.fstat(fd)?.size;
                    let off = if size > self.params.read_size as u64 {
                        ctx.rng.gen_range(0..=size - self.params.read_size as u64)
                    } else {
                        0
                    };
                    ctx.read(fd, off, &mut self.buf.clone())?;
                    ctx.close(fd)?;
                }
            } else if let Ok(fd) = ctx.open(&p, OpenFlags::RDWR | OpenFlags::APPEND) {
                let n = self.draw(ctx);
                self.buf.resize(n, 0x66);
                ctx.append(fd, &self.buf[..n])?;
                ctx.close(fd)?;
            }
        }
        // Transaction pair 2: create or delete.
        if ctx.rng.gen_bool(0.5) || self.set.len() < 3 {
            let path = self.set.fresh(&mut ctx.rng);
            let fd = ctx.open(&path, OpenFlags::RDWR | OpenFlags::CREATE)?;
            let n = draw_size(
                &mut ctx.rng,
                (self.params.min_size + self.params.max_size) / 2,
            );
            self.buf.resize(n.max(1), 0x67);
            ctx.write(fd, 0, &self.buf[..n.max(1)])?;
            ctx.close(fd)?;
        } else if let Some(p) = self.set.take(&mut ctx.rng) {
            let _ = ctx.unlink(&p);
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fileset::FilesetSpec;
    use crate::runner::{RunLimit, Runner};
    use crate::OpKind;
    use nvmm::{CostModel, NvmmDevice, SimEnv, BLOCK_SIZE};
    use pmfs::{Pmfs, PmfsOptions};

    #[test]
    fn churns_files_without_fsync() {
        let env = SimEnv::new_virtual(CostModel::default());
        let dev = NvmmDevice::new(env.clone(), 32768 * BLOCK_SIZE);
        let fs = Pmfs::mkfs(
            dev,
            PmfsOptions {
                journal_blocks: 128,
                inode_count: 4096,
            },
        )
        .unwrap();
        let set = Fileset::populate(&*fs, FilesetSpec::new("/mail", 100, 20, 2048), 4).unwrap();
        env.rebase();
        let runner = Runner::new(env, fs);
        let pm = Postmark::new(set, PostmarkParams::default());
        let r = runner.run(vec![Box::new(pm)], RunLimit::steps(200), 21);
        assert_eq!(r.metrics.steps, 200);
        assert!(r.op_count(OpKind::Unlink) > 20, "deletes happen");
        assert!(r.op_count(OpKind::Open) > 200);
        assert_eq!(r.op_count(OpKind::Fsync), 0);
        assert!(r.metrics.bytes_written > 0 && r.metrics.bytes_read > 0);
    }
}
