//! Crash-consistency matrix: power-fail the NVMM-aware systems at random
//! points of a random workload and check the recovery invariants:
//!
//! 1. Recovery always succeeds (the journal never leaves broken metadata).
//! 2. Everything fsync'd (data and size) survives exactly.
//! 3. Ordered data mode: no garbage — every recovered byte was either
//!    written by the workload or is zero.

use hinfs_suite::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

const MARKERS: [u8; 4] = [0x11, 0x22, 0x33, 0x44];

struct Harness {
    /// Last-fsynced image per file (must survive exactly as a prefix
    /// invariant: fsynced size + content survive).
    synced: HashMap<String, Vec<u8>>,
}

fn run_crash_round(seed: u64, use_hinfs: bool) {
    let env = SimEnv::new_virtual(CostModel::default());
    let dev = NvmmDevice::new_tracked(env.clone(), 64 << 20);
    let popts = PmfsOptions {
        journal_blocks: 256,
        inode_count: 2048,
    };
    let fs: std::sync::Arc<dyn FileSystem> = if use_hinfs {
        Hinfs::mkfs(
            dev.clone(),
            popts,
            HinfsConfig::default().with_buffer_bytes(1 << 20),
        )
        .unwrap()
    } else {
        Pmfs::mkfs(dev.clone(), popts).unwrap()
    };

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut h = Harness {
        synced: HashMap::new(),
    };
    let mut shadow: HashMap<String, Vec<u8>> = HashMap::new();
    let nfiles = 6;
    let mut fds = Vec::new();
    for i in 0..nfiles {
        let path = format!("/c{i}");
        let fd = fs.open(&path, OpenFlags::RDWR | OpenFlags::CREATE).unwrap();
        fds.push((path, fd));
    }
    let steps = rng.gen_range(20..120);
    for step in 0..steps {
        let i = rng.gen_range(0..nfiles);
        let (path, fd) = &fds[i];
        match rng.gen_range(0..5) {
            0..=2 => {
                let off = rng.gen_range(0..48 * 1024u64) as usize;
                let len = rng.gen_range(1..12_000usize);
                let data = vec![MARKERS[step % MARKERS.len()]; len];
                fs.write(*fd, off as u64, &data).unwrap();
                let img = shadow.entry(path.clone()).or_default();
                if img.len() < off + len {
                    img.resize(off + len, 0);
                }
                img[off..off + len].copy_from_slice(&data);
            }
            3 => {
                fs.fsync(*fd).unwrap();
                h.synced
                    .insert(path.clone(), shadow.get(path).cloned().unwrap_or_default());
            }
            _ => {
                fs.tick(env.now());
            }
        }
    }
    // Crash at an arbitrary point (no unmount, descriptors open, buffer
    // dirty, transactions in flight).
    dev.crash();
    drop(fds);
    drop(fs);

    // Invariant 1: recovery succeeds.
    let fs2 = Pmfs::mount(dev).unwrap_or_else(|e| panic!("seed {seed}: recovery failed: {e}"));
    for i in 0..nfiles {
        let path = format!("/c{i}");
        let st = fs2
            .stat(&path)
            .unwrap_or_else(|e| panic!("seed {seed}: {path} lost: {e}"));
        let fd = fs2.open(&path, OpenFlags::READ).unwrap();
        let mut got = vec![0u8; st.size as usize];
        fs2.read(fd, 0, &mut got).unwrap();
        fs2.close(fd).unwrap();
        // Invariant 2: the fsynced image survives exactly.
        if let Some(synced) = h.synced.get(&path) {
            assert!(
                st.size as usize >= synced.len(),
                "seed {seed}: {path} lost fsynced size ({} < {})",
                st.size,
                synced.len()
            );
            // Bytes the last fsync covered must match unless a later
            // (possibly persisted) write overwrote them — so each byte is
            // either the synced value or some later-written marker/zero.
            for (pos, (&g, &s)) in got.iter().zip(synced).enumerate() {
                assert!(
                    g == s || MARKERS.contains(&g) || g == 0,
                    "seed {seed}: {path}[{pos}] = {g:#x}, synced {s:#x}"
                );
            }
        }
        // Invariant 3: no garbage anywhere.
        for (pos, &b) in got.iter().enumerate() {
            assert!(
                b == 0 || MARKERS.contains(&b),
                "seed {seed}: {path}[{pos}] holds garbage byte {b:#x}"
            );
        }
    }
    fs2.unmount().unwrap();
}

#[test]
fn hinfs_crash_rounds() {
    for seed in 0..25 {
        run_crash_round(1000 + seed, true);
    }
}

#[test]
fn pmfs_crash_rounds() {
    for seed in 0..25 {
        run_crash_round(2000 + seed, false);
    }
}

#[test]
fn crash_mid_namespace_churn_recovers() {
    // Creates/unlinks in flight when the power fails.
    for seed in 0..10u64 {
        let env = SimEnv::new_virtual(CostModel::default());
        let dev = NvmmDevice::new_tracked(env, 64 << 20);
        let fs = Hinfs::mkfs(
            dev.clone(),
            PmfsOptions {
                journal_blocks: 256,
                inode_count: 2048,
            },
            HinfsConfig::default().with_buffer_bytes(1 << 20),
        )
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        fs.mkdir("/dir").unwrap();
        for i in 0..rng.gen_range(5..60) {
            let path = format!("/dir/n{i}");
            let fd = fs.open(&path, OpenFlags::RDWR | OpenFlags::CREATE).unwrap();
            fs.write(fd, 0, &[0x11; 600]).unwrap();
            fs.close(fd).unwrap();
            if rng.gen_bool(0.4) {
                fs.unlink(&path).unwrap();
            }
        }
        dev.crash();
        drop(fs);
        let fs2 = Pmfs::mount(dev).unwrap();
        // The namespace parses and every listed file opens and reads.
        for e in fs2.readdir("/dir").unwrap() {
            let p = format!("/dir/{}", e.name);
            let st = fs2.stat(&p).unwrap();
            let fd = fs2.open(&p, OpenFlags::READ).unwrap();
            let mut buf = vec![0u8; st.size as usize];
            fs2.read(fd, 0, &mut buf).unwrap();
            fs2.close(fd).unwrap();
            assert!(buf.iter().all(|&b| b == 0x11 || b == 0));
        }
        fs2.unmount().unwrap();
    }
}
