//! Measures the real-time cost of the data-lifecycle lineage tracker.
//!
//! Three angles: the raw `op_scope` + `note_*` hooks in isolation
//! (disabled vs enabled — the disabled side must sit in the same
//! one-relaxed-load regime as every other obsv hook), the stamp +
//! drain pair that the buffered write paths pay per clean→dirty
//! transition, and a full 4 KiB write path through HiNFS in spin mode
//! with lineage off vs on top of the flight preset (the honest
//! marginal cost of turning provenance on for a run).

use criterion::{criterion_group, criterion_main, Criterion};
use fskit::OpenFlags;
use nvmm::TimeMode;
use obsv::{DrainKind, LineageTable, OpKind};
use workloads::setups::{build, ObsvOptions, SystemConfig, SystemKind};

fn cfg(lineage: bool) -> SystemConfig {
    SystemConfig {
        device_bytes: 64 << 20,
        mode: TimeMode::Spin,
        buffer_bytes: 8 << 20,
        cache_pages: 2048,
        journal_blocks: 256,
        inode_count: 8192,
        obsv: if lineage {
            ObsvOptions::flight().with_lineage()
        } else {
            ObsvOptions::flight()
        },
        ..SystemConfig::default()
    }
}

/// The bare hook set: an op scope around logical/buffered notes, with
/// the table disabled (production default — `op_scope` is one relaxed
/// load, each `note_*` one TLS bool read) and enabled (TLS frame
/// accumulation, flushed to relaxed atomics on scope close).
fn raw_scope_and_notes(c: &mut Criterion) {
    let mut g = c.benchmark_group("lineage_raw");
    g.sample_size(20);
    for (label, enabled) in [("disabled", false), ("enabled", true)] {
        let t = LineageTable::new();
        t.set_enabled(enabled);
        g.bench_function(label, |b| {
            b.iter(|| {
                let _s = t.op_scope(OpKind::Write);
                obsv::note_logical(std::hint::black_box(4096));
                obsv::note_buffered(4096);
            })
        });
    }
    // The per-block cost of the buffered write paths: one ack stamp at
    // clean→dirty plus one drain when writeback retires it.
    let t = LineageTable::new();
    t.set_enabled(true);
    let mut clock = 0u64;
    g.bench_function("stamp_and_drain", |b| {
        b.iter(|| {
            clock += 2;
            let _s = t.op_scope(OpKind::Write);
            let stamp = t.stamp(clock, clock);
            t.record_drain(&stamp, DrainKind::Lazy, clock + 1, 4096);
        })
    });
    g.finish();
}

/// End-to-end: a 4 KiB HiNFS write in spin mode, flight preset with
/// lineage off vs on — the marginal cost of provenance over the already
/// armed timing + spans + contention + flight stack.
fn write_4k(c: &mut Criterion) {
    let mut g = c.benchmark_group("lineage_write_4k");
    g.sample_size(20);
    for (label, lineage) in [("lineage_off", false), ("lineage_on", true)] {
        let sys = build(SystemKind::Hinfs, &cfg(lineage)).expect("build");
        let fd = sys
            .fs
            .open("/f", OpenFlags::RDWR | OpenFlags::CREATE)
            .expect("open");
        let data = vec![0xabu8; 4096];
        let mut i = 0u64;
        g.bench_function(label, |b| {
            b.iter(|| {
                sys.fs.write(fd, (i % 1024) * 4096, &data).expect("write");
                i += 1;
            })
        });
        sys.fs.close(fd).expect("close");
        sys.fs.unmount().expect("unmount");
    }
    g.finish();
}

criterion_group!(lineage_overhead, raw_scope_and_notes, write_4k);
criterion_main!(lineage_overhead);
