//! faultfs: crash-point enumeration with a durability oracle and fault
//! injection, across every file system in the workspace.
//!
//! The paper's central claim — that HiNFS hides NVMM write latency behind
//! a DRAM buffer *without giving up the consistency of PMFS* — is only
//! testable by crashing the stack on purpose. This crate makes that a
//! first-class, deterministic operation:
//!
//! - [`script`]: tiny replayable operation sequences (and a seeded random
//!   generator) over a flat namespace;
//! - [`oracle`]: the durability judgment — what **must**, **may**, and
//!   **must not** survive a crash, per file system semantics (eager PMFS,
//!   lazy HiNFS data, jbd-committed EXT4 namespace);
//! - [`harness`]: records the numbered *crash schedule* of persistence
//!   boundaries a replay crosses, then re-runs it crashing at each one
//!   (plus torn-store variants and soft-fault injections), remounting and
//!   oracle-checking every time.
//!
//! ```
//! use faultfs::{FsKind, Harness, Script, SweepConfig};
//!
//! let h = Harness::new();
//! let script = Script::random(7, 6);
//! let cfg = SweepConfig { max_points: 8, ..SweepConfig::default() };
//! let out = h.sweep(FsKind::Pmfs, &script, cfg);
//! assert!(out.violations.is_empty(), "{:?}", out.violations);
//! ```

pub mod fuzz;
pub mod harness;
pub mod model;
pub mod oracle;
pub mod script;

pub use fuzz::{differential, shrink_differential, FuzzConfig, FuzzOutcome, Fuzzer, Repro};
pub use harness::{exec_op, Harness, RunOutcome, SweepConfig, SweepOutcome};
pub use model::{ModelBug, RefModel};
pub use nvmm::InjectedFault;
pub use oracle::{CheckReport, Oracle};
pub use script::{dir_path, file_path, FsKind, Op, Script};

obsv::counter_set! {
    /// Counters exported by the fault-injection harness.
    pub struct FaultStats, snapshot FaultSnapshot, prefix "faultfs_" {
        /// Simulated power failures injected (clean and torn).
        pub crashes_injected,
        /// Soft faults injected (journal-full, ENOSPC, writeback stalls).
        pub faults_injected,
        /// Undo transactions rolled back during recoveries.
        pub txs_undone,
        /// Journal entries undone (undo) or replayed (redo) in recoveries.
        pub entries_undone,
        /// Individual durability-oracle assertions evaluated.
        pub oracle_checks,
        /// Oracle violations detected (must stay zero).
        pub oracle_violations,
        /// Successful remount + recovery cycles.
        pub recoveries,
    }
}
