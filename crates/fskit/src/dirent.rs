//! The shared on-media directory entry format (ext2-style variable-length
//! records), used by both the PMFS-family and the ext-family file systems.
//!
//! Entry layout (byte offsets within an entry):
//!
//! ```text
//! 0..8   ino      (0 = free space)
//! 8..10  rec_len  (multiple of 4; entries tile the block exactly)
//! 10     name_len
//! 11     ftype
//! 12..   name bytes, padded to rec_len
//! ```

use crate::error::{FsError, Result};

/// Fixed header bytes of an entry.
pub const HDR: usize = 12;

fn align4(n: usize) -> usize {
    (n + 3) & !3
}

/// Bytes an entry with an `n`-byte name occupies at minimum.
pub fn entry_len(n: usize) -> usize {
    align4(HDR + n)
}

/// A decoded directory entry record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawEntry {
    /// Target inode; 0 marks free space.
    pub ino: u64,
    /// Total record length including padding.
    pub rec_len: usize,
    /// On-media file type byte.
    pub ftype: u8,
    /// Name bytes (empty for free records).
    pub name: Vec<u8>,
}

/// Encodes an entry header.
pub fn encode_header(ino: u64, rec_len: usize, name_len: usize, ftype: u8) -> [u8; HDR] {
    let mut h = [0u8; HDR];
    h[0..8].copy_from_slice(&ino.to_le_bytes());
    h[8..10].copy_from_slice(&(rec_len as u16).to_le_bytes());
    h[10] = name_len as u8;
    h[11] = ftype;
    h
}

/// Parses one directory block into `(offset, entry)` pairs, validating the
/// record chain tiles the block exactly.
pub fn parse_block(buf: &[u8]) -> Result<Vec<(usize, RawEntry)>> {
    let block_size = buf.len();
    let mut out = Vec::new();
    let mut off = 0;
    while off < block_size {
        if off + HDR > block_size {
            return Err(FsError::Corrupted("dirent header past block end"));
        }
        let ino = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
        let rec_len = u16::from_le_bytes(buf[off + 8..off + 10].try_into().unwrap()) as usize;
        let name_len = buf[off + 10] as usize;
        let ftype = buf[off + 11];
        if rec_len < HDR || !rec_len.is_multiple_of(4) || off + rec_len > block_size {
            return Err(FsError::Corrupted("dirent rec_len"));
        }
        if ino != 0 && HDR + name_len > rec_len {
            return Err(FsError::Corrupted("dirent name_len"));
        }
        let name = if ino != 0 {
            buf[off + HDR..off + HDR + name_len].to_vec()
        } else {
            Vec::new()
        };
        out.push((
            off,
            RawEntry {
                ino,
                rec_len,
                ftype,
                name,
            },
        ));
        off += rec_len;
    }
    Ok(out)
}

/// Builds a fresh directory block containing one entry followed by a free
/// record covering the remainder.
pub fn init_block(block_size: usize, ino: u64, name: &str, ftype: u8) -> Vec<u8> {
    let need = entry_len(name.len());
    debug_assert!(need + HDR <= block_size);
    let mut block = vec![0u8; block_size];
    block[0..HDR].copy_from_slice(&encode_header(ino, need, name.len(), ftype));
    block[HDR..HDR + name.len()].copy_from_slice(name.as_bytes());
    block[need..need + HDR].copy_from_slice(&encode_header(0, block_size - need, 0, 0));
    block
}

/// Builds an empty directory block (one free record).
pub fn empty_block(block_size: usize) -> Vec<u8> {
    let mut block = vec![0u8; block_size];
    block[0..HDR].copy_from_slice(&encode_header(0, block_size, 0, 0));
    block
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_len_alignment() {
        assert_eq!(entry_len(0), 12);
        assert_eq!(entry_len(1), 16);
        assert_eq!(entry_len(4), 16);
        assert_eq!(entry_len(5), 20);
        assert_eq!(entry_len(255), align4(267));
    }

    #[test]
    fn parse_init_block() {
        let b = init_block(4096, 7, "hello", 1);
        let entries = parse_block(&b).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].1.ino, 7);
        assert_eq!(entries[0].1.name, b"hello");
        assert_eq!(entries[1].1.ino, 0);
        assert_eq!(entries[0].1.rec_len + entries[1].1.rec_len, 4096);
    }

    #[test]
    fn parse_empty_block() {
        let b = empty_block(4096);
        let entries = parse_block(&b).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].1.ino, 0);
        assert_eq!(entries[0].1.rec_len, 4096);
    }

    #[test]
    fn corrupt_chain_rejected() {
        let mut b = empty_block(4096);
        // rec_len 0.
        b[8] = 0;
        b[9] = 0;
        assert!(parse_block(&b).is_err());
        // rec_len unaligned.
        let mut b = empty_block(4096);
        b[8..10].copy_from_slice(&13u16.to_le_bytes());
        assert!(parse_block(&b).is_err());
        // name_len beyond rec_len.
        let mut b = init_block(4096, 1, "ab", 1);
        b[10] = 200;
        assert!(parse_block(&b).is_err());
    }
}
