#!/usr/bin/env bash
# Bounded coverage-guided fuzz soak (a verify.sh tier).
#
# Three gates, all seed- and iteration-capped so the whole tier runs in
# seconds and behaves identically on every machine:
#
#  1. Determinism: two campaigns with the same seed must produce
#     byte-identical output (everything runs on the virtual clock from
#     one seeded RNG).
#  2. Coverage: the campaign must reach strictly more distinct coverage
#     points than replaying the scripted seed corpus alone — the printed
#     summary shows both — and must find no violations (any reproducer it
#     prints is a real differential/oracle bug).
#  3. Negative self-test: with a deliberately planted reference-model bug
#     the campaign must catch it within the same budget and the shrinker
#     must reduce the seeded known-bad script to the exact committed
#     fixture (tests/repro/selftest_truncate_extend.repro), proving the
#     whole find-shrink-commit pipeline still bites.
#
# Usage: scripts/fuzz_soak.sh [--offline] [seed] [iters]
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=""
if [[ "${1:-}" == "--offline" ]]; then
    OFFLINE="--offline"
    shift
fi
SEED="${1:-61455}" # 0xF00F
ITERS="${2:-48}"

cargo build --release $OFFLINE --example fuzz_fs

run_fuzz() {
    ./target/release/examples/fuzz_fs "$@"
}

tmpdir=$(mktemp -d -t fuzz_soak.XXXXXX)
trap 'rm -rf "$tmpdir"' EXIT

echo "fuzz_soak: campaign 1/2 (seed $SEED, $ITERS iters)"
run_fuzz --seed "$SEED" --iters "$ITERS" | tee "$tmpdir/run1.txt"
echo "fuzz_soak: campaign 2/2 (determinism check)"
run_fuzz --seed "$SEED" --iters "$ITERS" >"$tmpdir/run2.txt"
if ! diff -u "$tmpdir/run1.txt" "$tmpdir/run2.txt"; then
    echo "fuzz_soak: FAIL — same seed produced different campaigns" >&2
    exit 1
fi
echo "fuzz_soak: byte-identical across runs"

# The example already exits non-zero when coverage does not strictly beat
# the baseline or when a violation is found; make the gate explicit too.
if ! grep -q "^coverage gain: +" "$tmpdir/run1.txt"; then
    echo "fuzz_soak: FAIL — no coverage gain over the scripted baseline" >&2
    exit 1
fi

echo "fuzz_soak: negative self-test (planted model bug)"
# The self-test always runs on the example's default seed: whether a
# random campaign trips the planted truncate bug within the budget
# depends on the seed, and the default is pinned (and regression-tested)
# to catch it. The shrinker fixed-point half is seed-independent.
run_fuzz --iters "$ITERS" --self-test | tee "$tmpdir/selftest.txt"
sed -n '/^--- repro ---$/,/^--- end repro ---$/p' "$tmpdir/selftest.txt" \
    | sed '1d;$d' >"$tmpdir/shrunk.repro"
if ! diff -u tests/repro/selftest_truncate_extend.repro "$tmpdir/shrunk.repro"; then
    echo "fuzz_soak: FAIL — shrunk reproducer differs from the committed fixture" >&2
    exit 1
fi
echo "fuzz_soak: shrunk reproducer matches the committed fixture"
echo "fuzz_soak: OK"
