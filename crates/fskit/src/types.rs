//! Common identifier and metadata types.

/// A file descriptor handed out by a [`crate::FileSystem`].
pub type Fd = u64;

/// An inode number.
pub type Ino = u64;

/// The type of a directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileType {
    /// A regular file.
    File,
    /// A directory.
    Dir,
}

impl FileType {
    /// On-media encoding.
    pub fn as_u8(self) -> u8 {
        match self {
            FileType::File => 1,
            FileType::Dir => 2,
        }
    }

    /// Decodes the on-media byte, if valid.
    pub fn from_u8(v: u8) -> Option<FileType> {
        match v {
            1 => Some(FileType::File),
            2 => Some(FileType::Dir),
            _ => None,
        }
    }
}

/// File metadata, as returned by `stat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// Inode number.
    pub ino: Ino,
    /// File type.
    pub ftype: FileType,
    /// Size in bytes.
    pub size: u64,
    /// Number of data blocks allocated.
    pub blocks: u64,
    /// Hard link count.
    pub nlink: u32,
    /// Last modification time, simulated nanoseconds.
    pub mtime_ns: u64,
}

/// One entry returned by `readdir`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (a single path component).
    pub name: String,
    /// Inode the entry points at.
    pub ino: Ino,
    /// Type of the target.
    pub ftype: FileType,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filetype_roundtrip() {
        for t in [FileType::File, FileType::Dir] {
            assert_eq!(FileType::from_u8(t.as_u8()), Some(t));
        }
        assert_eq!(FileType::from_u8(0), None);
        assert_eq!(FileType::from_u8(3), None);
    }
}
