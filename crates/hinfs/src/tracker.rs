//! Ordered-mode transaction tracking (paper §4.1).
//!
//! A lazy-persistent write journals and applies its metadata immediately
//! but must not write the commit record "until the related DRAM data
//! blocks are persisted to NVMM". Each file keeps its open transactions in
//! a FIFO ([`FileBuf::txs`]); a transaction commits only when
//!
//! 1. every data block it covers has been flushed (its `pending` set is
//!    empty), **and**
//! 2. it is the oldest open transaction of the file.
//!
//! Rule 2 is essential for undo-log correctness: transactions of one file
//! all journal the same inode core, and undo records are only safe to leave
//! behind if commits happen in logging order — otherwise recovery of an
//! older open transaction would roll back a newer committed one.

use std::collections::HashSet;

use pmfs::{Journal, TxHandle};

use crate::buffer::{FileBuf, LocalTx};
use crate::stats::HinfsStats;

/// Enqueues a transaction with the blocks whose flush it awaits. Pass an
/// empty set for transactions with no buffered data (they still wait their
/// FIFO turn).
pub fn enqueue(file: &mut FileBuf, tx: TxHandle, pending: HashSet<u64>, stats: &HinfsStats) {
    HinfsStats::bump(&stats.txs_opened, 1);
    file.txs.push_back(LocalTx { tx, pending });
}

/// Records that `(file, iblk)` reached NVMM: clears it from every open
/// transaction and commits the ready prefix.
pub fn note_flushed(file: &mut FileBuf, journal: &Journal, iblk: u64, stats: &HinfsStats) {
    for t in &mut file.txs {
        t.pending.remove(&iblk);
    }
    drain_ready(file, journal, stats);
}

/// Commits transactions from the front of the FIFO while they are ready —
/// as one group commit, so a drain of N transactions costs one journal
/// lock hold and two fences instead of two fences per transaction.
pub fn drain_ready(file: &mut FileBuf, journal: &Journal, stats: &HinfsStats) {
    let ready = file.txs.iter().take_while(|t| t.pending.is_empty()).count();
    if ready == 0 {
        return;
    }
    let batch: Vec<_> = file.txs.drain(..ready).map(|t| t.tx).collect();
    HinfsStats::bump(&stats.txs_committed, ready as u64);
    journal.commit_group(batch);
}

/// Force-commits every open transaction of the file, dropping pending-block
/// requirements. Used when the file's buffered data is discarded (unlink of
/// a file whose writes will never be performed — with allocate-on-flush the
/// unflushed blocks are holes, so committing early exposes zeroes at worst,
/// never garbage).
pub fn force_commit_all(file: &mut FileBuf, journal: &Journal, stats: &HinfsStats) {
    let batch: Vec<_> = file.txs.drain(..).map(|t| t.tx).collect();
    HinfsStats::bump(&stats.txs_committed, batch.len() as u64);
    journal.commit_group(batch);
}

/// Number of open transactions across every file (diagnostics).
pub fn open_count(file: &FileBuf) -> usize {
    file.txs.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmm::{CostModel, NvmmDevice, SimEnv, BLOCK_SIZE};
    use pmfs::{Journal, Layout};
    use std::sync::Arc;

    fn journal() -> (Arc<NvmmDevice>, Journal, Layout) {
        let dev = NvmmDevice::new(SimEnv::new_virtual(CostModel::default()), 1024 * BLOCK_SIZE);
        let layout = Layout::compute(1024, 32, 64).unwrap();
        Journal::format(&dev, &layout);
        let j = Journal::open(dev.clone(), &layout).unwrap();
        (dev, j, layout)
    }

    fn pending(iblks: &[u64]) -> HashSet<u64> {
        iblks.iter().copied().collect()
    }

    #[test]
    fn fifo_commit_order_is_preserved() {
        let (_d, j, _l) = journal();
        let stats = HinfsStats::new();
        let mut f = FileBuf::new();
        let t1 = j.begin().unwrap();
        let t2 = j.begin().unwrap();
        enqueue(&mut f, t1, pending(&[1]), &stats);
        enqueue(&mut f, t2, pending(&[2]), &stats);
        // Block 2 flushes first: t2 is ready but t1 blocks the FIFO.
        note_flushed(&mut f, &j, 2, &stats);
        assert_eq!(f.txs.len(), 2, "t2 must wait for t1");
        assert_eq!(j.open_txs(), 2);
        // Block 1 flushes: both drain in order.
        note_flushed(&mut f, &j, 1, &stats);
        assert!(f.txs.is_empty());
        assert_eq!(j.open_txs(), 0);
        assert_eq!(stats.snapshot().txs_committed, 2);
    }

    #[test]
    fn shared_block_across_transactions() {
        let (_d, j, _l) = journal();
        let stats = HinfsStats::new();
        let mut f = FileBuf::new();
        let t1 = j.begin().unwrap();
        let t2 = j.begin().unwrap();
        enqueue(&mut f, t1, pending(&[5]), &stats);
        enqueue(&mut f, t2, pending(&[5, 6]), &stats);
        note_flushed(&mut f, &j, 5, &stats);
        assert_eq!(f.txs.len(), 1, "t1 committed, t2 still waits on 6");
        note_flushed(&mut f, &j, 6, &stats);
        assert!(f.txs.is_empty());
    }

    #[test]
    fn empty_pending_still_waits_its_turn() {
        let (_d, j, _l) = journal();
        let stats = HinfsStats::new();
        let mut f = FileBuf::new();
        let t1 = j.begin().unwrap();
        let t2 = j.begin().unwrap();
        enqueue(&mut f, t1, pending(&[9]), &stats);
        enqueue(&mut f, t2, HashSet::new(), &stats);
        drain_ready(&mut f, &j, &stats);
        assert_eq!(f.txs.len(), 2, "ready t2 must not jump over t1");
        note_flushed(&mut f, &j, 9, &stats);
        assert!(f.txs.is_empty());
    }

    #[test]
    fn force_commit_clears_everything() {
        let (_d, j, _l) = journal();
        let stats = HinfsStats::new();
        let mut f = FileBuf::new();
        for i in 0..5u64 {
            let t = j.begin().unwrap();
            enqueue(&mut f, t, pending(&[i]), &stats);
        }
        force_commit_all(&mut f, &j, &stats);
        assert!(f.txs.is_empty());
        assert_eq!(j.open_txs(), 0);
        assert_eq!(stats.snapshot().txs_committed, 5);
    }
}
