//! Per-file block index: a 512-ary radix B-tree of 4 KiB nodes, as in PMFS.
//!
//! Every node is one device block holding 512 little-endian `u64` slots; a
//! slot is an absolute block number or 0 for absent. A tree of height `h`
//! maps file block indices `0 .. 512^h`. Pointer updates are 8-byte atomic
//! persists, so linking a (fully written) new node or leaf block into the
//! tree never needs journaling; only the inode's `tree_root`/`tree_height`
//! fields do, and those ride in the caller's inode transaction.
//!
//! Crash windows leak at most *unreachable* blocks, which the mount-time
//! allocator rebuild walk reclaims (see [`crate::alloc`]).

use fskit::{FsError, Result};
use nvmm::{Cat, NvmmDevice, BLOCK_SIZE};

use crate::alloc::Allocator;
use crate::inode::InodeMem;
use crate::layout::Layout;

/// Pointers per node.
pub const FANOUT: u64 = (BLOCK_SIZE / 8) as u64;

/// Number of file blocks addressable by a tree of `height`.
pub fn capacity(height: u32) -> u64 {
    FANOUT.saturating_pow(height)
}

fn slot_off(node: u64, slot: u64) -> u64 {
    Layout::block_off(node) + slot * 8
}

/// Index of the slot for `iblk` at `level`, where `level == height` is the
/// root and `level == 1` is the leaf.
fn slot_at(iblk: u64, level: u32) -> u64 {
    (iblk >> (9 * (level - 1))) & (FANOUT - 1)
}

/// Looks up the physical block for file block `iblk`, or `None` for a hole.
pub fn lookup(dev: &NvmmDevice, mem: &InodeMem, iblk: u64) -> Option<u64> {
    if mem.tree_root == 0 || iblk >= capacity(mem.tree_height) {
        return None;
    }
    let mut node = mem.tree_root;
    for level in (1..=mem.tree_height).rev() {
        let p = dev.read_u64(Cat::Meta, slot_off(node, slot_at(iblk, level)));
        if p == 0 {
            return None;
        }
        node = p;
    }
    Some(node)
}

fn new_node(dev: &NvmmDevice, alloc: &Allocator) -> Result<u64> {
    let b = alloc.alloc()?;
    dev.zero_persist(Cat::Meta, Layout::block_off(b), BLOCK_SIZE);
    Ok(b)
}

/// Maps file block `iblk` to physical block `pblk`, growing the tree as
/// needed. Updates `mem.tree_root`/`mem.tree_height` in memory; the caller
/// persists the inode core through its journal transaction.
///
/// Fails with [`FsError::AlreadyExists`] if the slot is occupied (callers
/// overwrite in place instead of remapping).
pub fn insert(
    dev: &NvmmDevice,
    alloc: &Allocator,
    mem: &mut InodeMem,
    iblk: u64,
    pblk: u64,
) -> Result<()> {
    debug_assert_ne!(pblk, 0);
    // Grow the tree until iblk fits.
    while mem.tree_root == 0 || iblk >= capacity(mem.tree_height) {
        let root = new_node(dev, alloc)?;
        if mem.tree_root != 0 {
            // Old tree becomes child 0 of the new root.
            dev.write_u64_persist(Cat::Meta, slot_off(root, 0), mem.tree_root);
            dev.sfence();
        }
        mem.tree_root = root;
        mem.tree_height += 1;
    }
    let mut node = mem.tree_root;
    for level in (2..=mem.tree_height).rev() {
        let off = slot_off(node, slot_at(iblk, level));
        let mut child = dev.read_u64(Cat::Meta, off);
        if child == 0 {
            child = new_node(dev, alloc)?;
            dev.write_u64_persist(Cat::Meta, off, child);
            dev.sfence();
        }
        node = child;
    }
    let off = slot_off(node, slot_at(iblk, 1));
    if dev.read_u64(Cat::Meta, off) != 0 {
        return Err(FsError::AlreadyExists);
    }
    dev.write_u64_persist(Cat::Meta, off, pblk);
    dev.sfence();
    Ok(())
}

/// Calls `f(iblk, pblk)` for every mapped block, ascending.
pub fn for_each(dev: &NvmmDevice, mem: &InodeMem, f: &mut impl FnMut(u64, u64)) {
    if mem.tree_root != 0 {
        walk(dev, mem.tree_root, mem.tree_height, 0, f);
    }
}

fn walk(dev: &NvmmDevice, node: u64, level: u32, base: u64, f: &mut impl FnMut(u64, u64)) {
    let span = capacity(level - 1);
    for slot in 0..FANOUT {
        let p = dev.read_u64(Cat::Meta, slot_off(node, slot));
        if p == 0 {
            continue;
        }
        if level == 1 {
            f(base + slot, p);
        } else {
            walk(dev, p, level - 1, base + slot * span, f);
        }
    }
}

/// Calls `mark(pblk)` for every block owned by the tree: interior nodes,
/// the root, and data blocks. Used by the allocator rebuild walk.
pub fn mark_all(dev: &NvmmDevice, mem: &InodeMem, mark: &mut impl FnMut(u64)) {
    if mem.tree_root == 0 {
        return;
    }
    mark_walk(dev, mem.tree_root, mem.tree_height, mark);
}

fn mark_walk(dev: &NvmmDevice, node: u64, level: u32, mark: &mut impl FnMut(u64)) {
    mark(node);
    if level == 0 {
        return;
    }
    if level == 1 {
        // `node` is a leaf node: mark its data blocks.
        for slot in 0..FANOUT {
            let p = dev.read_u64(Cat::Meta, slot_off(node, slot));
            if p != 0 {
                mark(p);
            }
        }
        return;
    }
    for slot in 0..FANOUT {
        let p = dev.read_u64(Cat::Meta, slot_off(node, slot));
        if p != 0 {
            mark_walk(dev, p, level - 1, mark);
        }
    }
}

/// Unmaps and frees every data block with file index `>= from_iblk`,
/// freeing interior nodes that become empty. Returns the number of *data*
/// blocks freed and updates `mem` (root/height may drop to zero).
pub fn remove_from(dev: &NvmmDevice, alloc: &Allocator, mem: &mut InodeMem, from_iblk: u64) -> u64 {
    if mem.tree_root == 0 {
        return 0;
    }
    let mut freed = 0;
    let root_empty = prune(
        dev,
        alloc,
        mem.tree_root,
        mem.tree_height,
        0,
        from_iblk,
        &mut freed,
    );
    if root_empty {
        alloc.free(mem.tree_root);
        mem.tree_root = 0;
        mem.tree_height = 0;
    }
    freed
}

/// Prunes `node` (at `level`, covering file blocks starting at `base`);
/// returns true if the node is now empty and should be freed by the caller.
fn prune(
    dev: &NvmmDevice,
    alloc: &Allocator,
    node: u64,
    level: u32,
    base: u64,
    from: u64,
    freed: &mut u64,
) -> bool {
    let span = capacity(level - 1);
    let mut any_left = false;
    for slot in 0..FANOUT {
        let off = slot_off(node, slot);
        let p = dev.read_u64(Cat::Meta, off);
        if p == 0 {
            continue;
        }
        let lo = base + slot * span;
        let hi = lo + span; // exclusive
        if hi <= from {
            any_left = true;
            continue;
        }
        if level == 1 {
            // Data block at index `lo` >= from: free it.
            dev.write_u64_persist(Cat::Meta, off, 0);
            alloc.free(p);
            *freed += 1;
        } else if lo >= from {
            // Whole subtree goes.
            drop_subtree(dev, alloc, p, level - 1, freed);
            dev.write_u64_persist(Cat::Meta, off, 0);
            alloc.free(p);
        } else {
            // Straddles the boundary: recurse.
            if prune(dev, alloc, p, level - 1, lo, from, freed) {
                dev.write_u64_persist(Cat::Meta, off, 0);
                alloc.free(p);
            } else {
                any_left = true;
            }
        }
    }
    dev.sfence();
    !any_left
}

fn drop_subtree(dev: &NvmmDevice, alloc: &Allocator, node: u64, level: u32, freed: &mut u64) {
    for slot in 0..FANOUT {
        let p = dev.read_u64(Cat::Meta, slot_off(node, slot));
        if p == 0 {
            continue;
        }
        if level == 1 {
            alloc.free(p);
            *freed += 1;
        } else {
            drop_subtree(dev, alloc, p, level - 1, freed);
            alloc.free(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;
    use fskit::FileType;
    use nvmm::{CostModel, SimEnv};
    use std::sync::Arc;

    fn setup() -> (Arc<NvmmDevice>, Allocator, InodeMem) {
        let blocks = 8192u64;
        let dev = NvmmDevice::new(
            SimEnv::new_virtual(CostModel::default()),
            blocks as usize * BLOCK_SIZE,
        );
        let layout = Layout::compute(blocks, 16, 128).unwrap();
        let alloc = Allocator::new_empty(&layout);
        let mem = InodeMem::new(FileType::File, 0);
        (dev, alloc, mem)
    }

    #[test]
    fn empty_tree_lookups_are_holes() {
        let (dev, _alloc, mem) = setup();
        assert_eq!(lookup(&dev, &mem, 0), None);
        assert_eq!(lookup(&dev, &mem, 12345), None);
    }

    #[test]
    fn insert_lookup_single_level() {
        let (dev, alloc, mut mem) = setup();
        let b = alloc.alloc().unwrap();
        insert(&dev, &alloc, &mut mem, 0, b).unwrap();
        assert_eq!(mem.tree_height, 1);
        assert_eq!(lookup(&dev, &mem, 0), Some(b));
        assert_eq!(lookup(&dev, &mem, 1), None);
    }

    #[test]
    fn tree_grows_to_multiple_levels() {
        let (dev, alloc, mut mem) = setup();
        let b0 = alloc.alloc().unwrap();
        insert(&dev, &alloc, &mut mem, 0, b0).unwrap();
        // Block 600 needs height 2; block 300000 needs height 3.
        let b1 = alloc.alloc().unwrap();
        insert(&dev, &alloc, &mut mem, 600, b1).unwrap();
        assert_eq!(mem.tree_height, 2);
        let b2 = alloc.alloc().unwrap();
        insert(&dev, &alloc, &mut mem, 300_000, b2).unwrap();
        assert_eq!(mem.tree_height, 3);
        assert_eq!(
            lookup(&dev, &mem, 0),
            Some(b0),
            "old mapping survives growth"
        );
        assert_eq!(lookup(&dev, &mem, 600), Some(b1));
        assert_eq!(lookup(&dev, &mem, 300_000), Some(b2));
        assert_eq!(lookup(&dev, &mem, 300_001), None);
    }

    #[test]
    fn double_insert_rejected() {
        let (dev, alloc, mut mem) = setup();
        let b = alloc.alloc().unwrap();
        insert(&dev, &alloc, &mut mem, 7, b).unwrap();
        let b2 = alloc.alloc().unwrap();
        assert_eq!(
            insert(&dev, &alloc, &mut mem, 7, b2),
            Err(FsError::AlreadyExists)
        );
    }

    #[test]
    fn for_each_ascending() {
        let (dev, alloc, mut mem) = setup();
        let idxs = [0u64, 3, 511, 512, 1024, 5000];
        for &i in &idxs {
            let b = alloc.alloc().unwrap();
            insert(&dev, &alloc, &mut mem, i, b).unwrap();
        }
        let mut seen = Vec::new();
        for_each(&dev, &mem, &mut |iblk, pblk| {
            assert_ne!(pblk, 0);
            seen.push(iblk);
        });
        assert_eq!(seen, idxs);
    }

    #[test]
    fn remove_from_truncates_and_frees() {
        let (dev, alloc, mut mem) = setup();
        let before = alloc.free_blocks();
        for i in 0..600u64 {
            let b = alloc.alloc().unwrap();
            insert(&dev, &alloc, &mut mem, i, b).unwrap();
        }
        let freed = remove_from(&dev, &alloc, &mut mem, 100);
        assert_eq!(freed, 500);
        assert_eq!(lookup(&dev, &mem, 99), lookup(&dev, &mem, 99));
        assert!(lookup(&dev, &mem, 99).is_some());
        assert_eq!(lookup(&dev, &mem, 100), None);
        assert_eq!(lookup(&dev, &mem, 599), None);
        // Full removal returns every block (data + nodes).
        let freed2 = remove_from(&dev, &alloc, &mut mem, 0);
        assert_eq!(freed2, 100);
        assert_eq!(mem.tree_root, 0);
        assert_eq!(mem.tree_height, 0);
        assert_eq!(alloc.free_blocks(), before, "no leaked blocks");
    }

    #[test]
    fn mark_all_covers_nodes_and_data() {
        let (dev, alloc, mut mem) = setup();
        let before = alloc.free_blocks();
        for i in [0u64, 513, 1025] {
            let b = alloc.alloc().unwrap();
            insert(&dev, &alloc, &mut mem, i, b).unwrap();
        }
        let allocated = before - alloc.free_blocks();
        let mut marked = 0u64;
        mark_all(&dev, &mem, &mut |_p| marked += 1);
        assert_eq!(marked, allocated, "walk sees exactly the allocated blocks");
    }

    #[test]
    fn remove_from_middle_of_subtree() {
        let (dev, alloc, mut mem) = setup();
        for i in 0..1024u64 {
            let b = alloc.alloc().unwrap();
            insert(&dev, &alloc, &mut mem, i, b).unwrap();
        }
        let freed = remove_from(&dev, &alloc, &mut mem, 700);
        assert_eq!(freed, 324);
        assert!(lookup(&dev, &mem, 699).is_some());
        assert_eq!(lookup(&dev, &mem, 700), None);
        // Height unchanged (lazy shrink) but mappings correct.
        assert!(lookup(&dev, &mem, 0).is_some());
    }
}
