#!/usr/bin/env bash
# Bench-regression attribution over two BENCH_*.json documents.
#
#   scripts/bench_diff.sh [--offline] BASELINE.json CANDIDATE.json
#
# Where bench_check.sh answers "did throughput regress?", this answers
# "what changed?": it decomposes the delta between two documents into
# ranked span-phase (ns/op), lock-site (wait-ns/op), fence-count
# (fences/op) and p99-tail-anatomy (ns/exemplar) blame lines, worst
# regression first. Output is greppable:
#
#   blame::<workload>::<system>::span 1 journal +123.4 ns/op (+85.00%)
#
# A schema-v2 baseline (no span::/tail:: keys) still diffs: headline
# deltas print and each missing family becomes a note. Exit 0 whenever
# both files parse — this is an explainer, not a gate.
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=""
if [[ "${1:-}" == "--offline" ]]; then
    OFFLINE="--offline"
    shift
fi

if [[ $# -ne 2 ]]; then
    echo "usage: $0 [--offline] BASELINE.json CANDIDATE.json" >&2
    exit 2
fi

exec cargo run --release $OFFLINE -q -p hinfs-bench --bin bench_diff -- "$@"
