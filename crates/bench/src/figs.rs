//! One function per figure of the paper's evaluation. See `DESIGN.md` for
//! the experiment index and the expected shapes.

use nvmm::{Cat, CostModel};
use workloads::fileset::{Fileset, FilesetSpec};
use workloads::fio::{Fio, FioParams};
use workloads::kernel::{KernelGrep, KernelMake, SourceTree, TreeParams};
use workloads::postmark::{Postmark, PostmarkParams};
use workloads::runner::{Actor, RunLimit, Runner};
use workloads::setups::{remount_with, System, SystemKind};
use workloads::tpcc::{Tpcc, TpccParams};
use workloads::traces::{TraceReplay, ALL_TRACES};
use workloads::{OpKind, RunReport};

use crate::common::{filebench_once, prepared_system, run_personality, Personality, Scale};
use crate::table::{fmt2, mib, pct, Table};

/// Runs one figure by number (1, 2, 6, 7, ..., 13).
pub fn fig(n: u32, scale: &Scale) -> Option<Table> {
    match n {
        1 => Some(fig01(scale)),
        2 => Some(fig02(scale)),
        6 => Some(fig06(scale)),
        7 => Some(fig07(scale)),
        8 => Some(fig08(scale)),
        9 => Some(fig09(scale)),
        10 => Some(fig10(scale)),
        11 => Some(fig11(scale)),
        12 => Some(fig12(scale)),
        13 => Some(fig13(scale)),
        // Span-recomputed variants: the same breakdowns derived from the
        // live Phase spans instead of the cost ledger / runner accounting.
        101 => Some(fig01_spans(scale)),
        112 => Some(fig12_spans(scale)),
        _ => None,
    }
}

/// All figure numbers with experiments.
pub const ALL_FIGS: [u32; 10] = [1, 2, 6, 7, 8, 9, 10, 11, 12, 13];

fn run_actors(sys: &System, actors: Vec<Box<dyn Actor>>, limit: RunLimit, seed: u64) -> RunReport {
    Runner::new(sys.env.clone(), sys.fs.clone())
        .with_device(sys.dev.clone())
        .run(actors, limit, seed)
}

// ---------------------------------------------------------------- Fig 1

/// Fig 1: time breakdown of the fio benchmark on PMFS across I/O sizes
/// (read:write = 1:2). Expected shape: Write Access dominates (> 80 %) at
/// I/O sizes ≥ 4 KiB and still exceeds ~16 % at 64 B.
pub fn fig01(scale: &Scale) -> Table {
    let mut t = Table::new(
        "fig01",
        "fio on PMFS: time breakdown vs I/O size (r:w = 1:2)",
        &["iosize", "read-access", "write-access", "others"],
    );
    for &iosize in &[64usize, 1 << 10, 4 << 10, 16 << 10, 64 << 10] {
        let cfg = scale.system_config(CostModel::default());
        let sys = workloads::setups::build(SystemKind::Pmfs, &cfg).expect("build pmfs");
        let params = FioParams::new("/fio-job", 16 << 20, iosize);
        Fio::setup(&*sys.fs, &params).expect("fio setup");
        sys.fs.sync().expect("sync");
        sys.env.rebase();
        let report = run_actors(
            &sys,
            vec![Box::new(Fio::new(params))],
            RunLimit::duration_ms(scale.duration_ms / 2),
            1,
        );
        let ledger = &report.ledger;
        let total = ledger.total().max(1);
        t.row(vec![
            format!("{iosize}B"),
            pct(ledger.get(Cat::UserRead) as f64 / total as f64),
            pct(ledger.get(Cat::UserWrite) as f64 / total as f64),
            pct(ledger.others() as f64 / total as f64),
        ]);
    }
    t.note("paper: write access ≥ 80% at ≥ 4KiB; ≥ 16% at 64B");
    t
}

/// Fig 1 recomputed from spans: the ledger's read-/write-access shares
/// next to the same shares derived from the live phase matrix
/// ([`obsv::Phase::NvmmCopy`] ≈ read access, `Persist` + `DramCopy` ≈
/// write access). The two disagree only by time charged outside any
/// device scope (syscall software overhead lands in `Other`), so the
/// columns track within ~5 percentage points.
pub fn fig01_spans(scale: &Scale) -> Table {
    use obsv::Phase;
    let mut t = Table::new(
        "fig01s",
        "fio on PMFS: ledger vs span-derived time shares",
        &[
            "iosize",
            "read-ledger",
            "read-spans",
            "write-ledger",
            "write-spans",
        ],
    );
    for &iosize in &[64usize, 4 << 10, 64 << 10] {
        let mut cfg = scale.system_config(CostModel::default());
        cfg.obsv = workloads::ObsvOptions::none().with_spans();
        let sys = workloads::setups::build(SystemKind::Pmfs, &cfg).expect("build pmfs");
        let params = FioParams::new("/fio-job", 16 << 20, iosize);
        Fio::setup(&*sys.fs, &params).expect("fio setup");
        sys.fs.sync().expect("sync");
        sys.env.rebase();
        let s0 = sys.dev.spans().snapshot();
        let report = run_actors(
            &sys,
            vec![Box::new(Fio::new(params))],
            RunLimit::duration_ms(scale.duration_ms / 2),
            1,
        );
        let spans = sys.dev.spans().snapshot().since(&s0);
        let ledger = &report.ledger;
        let ltotal = ledger.total().max(1) as f64;
        let stotal = spans.grand_total().max(1) as f64;
        let read_spans = spans.phase_total(Phase::NvmmCopy) as f64 / stotal;
        let write_spans = (spans.phase_total(Phase::Persist) + spans.phase_total(Phase::DramCopy))
            as f64
            / stotal;
        t.row(vec![
            format!("{iosize}B"),
            pct(ledger.get(Cat::UserRead) as f64 / ltotal),
            pct(read_spans),
            pct(ledger.get(Cat::UserWrite) as f64 / ltotal),
            pct(write_spans),
        ]);
    }
    t.note("ledger and span shares agree within ~5pp (documented tolerance)");
    t
}

// ---------------------------------------------------------------- Fig 2

/// Fig 2: percentage of fsync bytes per workload (with total written bytes
/// atop each bar). Expected: TPC-C > 90 %, LASR = 0 %, varmail/facebook
/// high, filebench fileserver/webserver/webproxy ≈ 0 %.
pub fn fig02(scale: &Scale) -> Table {
    let mut t = Table::new(
        "fig02",
        "fsync bytes as a share of written bytes, per workload",
        &["workload", "written-MiB", "fsync-bytes"],
    );
    let cost = CostModel::default;
    // Filebench personalities.
    for p in Personality::ALL {
        let (sys, set) = prepared_system(SystemKind::Pmfs, scale, cost());
        let r = run_personality(&sys, &set, p, scale.threads, scale);
        t.row(vec![
            p.label().into(),
            mib(r.metrics.bytes_written),
            pct(r.fsync_byte_fraction()),
        ]);
    }
    // Postmark.
    {
        let (sys, _set) = prepared_system(SystemKind::Pmfs, scale, cost());
        let pool = Fileset::populate(&*sys.fs, FilesetSpec::new("/mail", 128, 20, 2 << 10), 3)
            .expect("pool");
        sys.env.rebase();
        let r = run_actors(
            &sys,
            vec![Box::new(Postmark::new(pool, PostmarkParams::default()))],
            RunLimit::steps(1500),
            2,
        );
        t.row(vec![
            "postmark".into(),
            mib(r.metrics.bytes_written),
            pct(r.fsync_byte_fraction()),
        ]);
    }
    // TPC-C.
    {
        let (sys, _set) = prepared_system(SystemKind::Pmfs, scale, cost());
        let params = TpccParams {
            table_size: 16 << 20,
            ..TpccParams::default()
        };
        Tpcc::setup(&*sys.fs, &params).expect("tpcc setup");
        sys.env.rebase();
        let r = run_actors(
            &sys,
            vec![Box::new(Tpcc::new(params))],
            RunLimit::steps(400),
            2,
        );
        t.row(vec![
            "tpcc".into(),
            mib(r.metrics.bytes_written),
            pct(r.fsync_byte_fraction()),
        ]);
    }
    // Traces.
    for profile in ALL_TRACES {
        let (sys, set) = prepared_system(SystemKind::Pmfs, scale, cost());
        sys.env.rebase();
        let r = run_actors(
            &sys,
            vec![Box::new(TraceReplay::new(set, profile, 5))],
            RunLimit::steps(1500),
            2,
        );
        t.row(vec![
            profile.name.into(),
            mib(r.metrics.bytes_written),
            pct(r.fsync_byte_fraction()),
        ]);
    }
    t.note("paper: TPC-C > 90%, LASR = 0%, desktops in between");
    t
}

// ---------------------------------------------------------------- Fig 6

/// Fig 6: accuracy of the Buffer Benefit Model's use of the most recent
/// synchronization information, per workload. Expected: ≈ 90 %+ even in
/// the worst case.
pub fn fig06(scale: &Scale) -> Table {
    let mut t = Table::new(
        "fig06",
        "Buffer Benefit Model prediction accuracy (HiNFS)",
        &["workload", "evaluations", "accuracy"],
    );
    let mut record = |name: &str, sys: &System, evals: u64, acc: f64| {
        let _ = sys;
        t.row(vec![name.into(), evals.to_string(), pct(acc)]);
    };
    // Varmail.
    {
        let (sys, set) = prepared_system(SystemKind::Hinfs, scale, CostModel::default());
        let _ = run_personality(&sys, &set, Personality::Varmail, scale.threads, scale);
        let s = sys.hinfs.as_ref().expect("hinfs").stats().snapshot();
        record("varmail", &sys, s.bbm_evals, s.bbm_accuracy());
    }
    // TPC-C.
    {
        let (sys, _set) = prepared_system(SystemKind::Hinfs, scale, CostModel::default());
        let params = TpccParams {
            table_size: 16 << 20,
            ..TpccParams::default()
        };
        Tpcc::setup(&*sys.fs, &params).expect("tpcc setup");
        sys.env.rebase();
        let _ = run_actors(
            &sys,
            vec![Box::new(Tpcc::new(params))],
            RunLimit::steps(400),
            6,
        );
        let s = sys.hinfs.as_ref().expect("hinfs").stats().snapshot();
        record("tpcc", &sys, s.bbm_evals, s.bbm_accuracy());
    }
    // Usr0, Usr1, Facebook.
    for profile in [
        workloads::traces::USR0,
        workloads::traces::USR1,
        workloads::traces::FACEBOOK,
    ] {
        let (sys, set) = prepared_system(SystemKind::Hinfs, scale, CostModel::default());
        sys.env.rebase();
        let _ = run_actors(
            &sys,
            vec![Box::new(TraceReplay::new(set, profile, 5))],
            RunLimit::steps(1500),
            6,
        );
        let s = sys.hinfs.as_ref().expect("hinfs").stats().snapshot();
        record(profile.name, &sys, s.bbm_evals, s.bbm_accuracy());
    }
    t.note("paper: close to 90% even in the worst case (Usr0)");
    t
}

// ---------------------------------------------------------------- Fig 7

/// Fig 7: overall filebench throughput of the five systems, normalized to
/// PMFS. Expected: HiNFS best everywhere (up to ~2.8× on fileserver),
/// ≈ PMFS on webserver/varmail; NVMMBD systems worst except webproxy.
pub fn fig07(scale: &Scale) -> Table {
    let mut t = Table::new(
        "fig07",
        "filebench throughput normalized to PMFS (multi-thread)",
        &[
            "workload",
            "pmfs",
            "ext4-dax",
            "ext2-nvmmbd",
            "ext4-nvmmbd",
            "hinfs",
        ],
    );
    for p in Personality::ALL {
        let mut row = vec![p.label().to_string()];
        let base = filebench_once(
            SystemKind::Pmfs,
            p,
            scale.threads,
            scale,
            CostModel::default(),
        )
        .throughput();
        row.push(fmt2(1.0));
        for kind in [
            SystemKind::Ext4Dax,
            SystemKind::Ext2Bd,
            SystemKind::Ext4Bd,
            SystemKind::Hinfs,
        ] {
            let tput =
                filebench_once(kind, p, scale.threads, scale, CostModel::default()).throughput();
            row.push(fmt2(tput / base.max(1e-9)));
        }
        t.row(row);
    }
    t.note("paper: HiNFS up to 2.84x PMFS on fileserver; ~1x on webserver/varmail");
    t
}

// ---------------------------------------------------------------- Fig 8

/// Fig 8: throughput (ops/s) for 1–10 threads, per workload and system.
pub fn fig08(scale: &Scale) -> Table {
    let mut t = Table::new(
        "fig08",
        "throughput (ops/s) vs thread count",
        &["workload", "system", "1", "2", "4", "6", "8", "10"],
    );
    let thread_counts = [1usize, 2, 4, 6, 8, 10];
    let scale = Scale {
        duration_ms: scale.duration_ms / 2,
        ..scale.clone()
    };
    for p in Personality::ALL {
        for kind in SystemKind::FIG7 {
            let mut row = vec![p.label().to_string(), kind.label().to_string()];
            for &threads in &thread_counts {
                let r = filebench_once(kind, p, threads, &scale, CostModel::default());
                row.push(format!("{:.0}", r.throughput()));
            }
            t.row(row);
        }
    }
    t.note("paper: HiNFS scales best; PMFS/DAX are bandwidth-limited; HiNFS >= 1.5x PMFS at 10 threads on fileserver");
    t
}

// ---------------------------------------------------------------- Fig 9

/// Fig 9: (a) fileserver throughput vs I/O size for HiNFS, HiNFS-NCLFW and
/// PMFS; (b) total NVMM write bytes. Expected: CLFW wins (~30 %) below the
/// 4 KiB block size and slashes the write traffic; parity at ≥ 4 KiB.
pub fn fig09(scale: &Scale) -> Table {
    let mut t = Table::new(
        "fig09",
        "fileserver vs I/O size: throughput (ops/s) and NVMM write MiB",
        &[
            "iosize",
            "pmfs",
            "hinfs-nclfw",
            "hinfs",
            "wrMiB-nclfw",
            "wrMiB-hinfs",
        ],
    );
    for &iosize in &[64usize, 512, 1 << 10, 4 << 10, 16 << 10] {
        // Small files and a tight buffer keep the writeback path under
        // real pressure — the regime the paper's Fig 9 probes.
        let s = Scale {
            nfiles: scale.nfiles.max(256),
            mean_file: 8 << 10,
            iosize,
            append: iosize,
            buffer_frac: 0.08,
            duration_ms: scale.duration_ms / 2,
            ..scale.clone()
        };
        let mut row = vec![format!("{iosize}B")];
        let mut wb = Vec::new();
        for kind in [SystemKind::Pmfs, SystemKind::HinfsNclfw, SystemKind::Hinfs] {
            let (sys, set) = prepared_system(kind, &s, CostModel::default());
            let r = run_personality(&sys, &set, Personality::Fileserver, 1, &s);
            row.push(format!("{:.0}", r.throughput()));
            // Buffer writeback traffic, per 1000 workload loops (the
            // "NVMM write size" of Fig 9b, isolated from journal traffic).
            let lines = sys
                .hinfs
                .as_ref()
                .map(|h| h.stats().snapshot().writeback_lines)
                .unwrap_or(0);
            wb.push(lines * 64 * 1000 / r.metrics.steps.max(1));
            let _ = sys.fs.unmount();
        }
        row.push(mib(wb[1]));
        row.push(mib(wb[2]));
        t.row(row);
    }
    t.note("write MiB columns: buffer writeback traffic per 1000 loops; paper: CLFW far less traffic below 4KiB, parity at/above it");
    t
}

// ---------------------------------------------------------------- Fig 10

/// Fig 10: throughput as a function of the DRAM buffer (and page cache)
/// size relative to the dataset. Expected: fileserver improves with the
/// ratio; webproxy is flat (locality + short-lived files).
pub fn fig10(scale: &Scale) -> Table {
    let mut t = Table::new(
        "fig10",
        "throughput (ops/s) vs buffer-size/dataset ratio",
        &[
            "workload", "system", "0.1", "0.2", "0.4", "0.6", "0.8", "1.0",
        ],
    );
    let ratios = [0.1f64, 0.2, 0.4, 0.6, 0.8, 1.0];
    for p in [Personality::Fileserver, Personality::Webproxy] {
        for kind in [
            SystemKind::Pmfs,
            SystemKind::Ext2Bd,
            SystemKind::Ext4Bd,
            SystemKind::Hinfs,
        ] {
            let mut row = vec![p.label().to_string(), kind.label().to_string()];
            for &ratio in &ratios {
                let s = Scale {
                    buffer_frac: ratio,
                    cache_frac: ratio,
                    duration_ms: scale.duration_ms / 2,
                    ..scale.clone()
                };
                let r = filebench_once(kind, p, scale.threads, &s, CostModel::default());
                row.push(format!("{:.0}", r.throughput()));
            }
            t.row(row);
        }
    }
    t.note("paper: fileserver grows with the ratio; webproxy flat; NVMMBD << PMFS even at 1.0");
    t
}

// ---------------------------------------------------------------- Fig 11

/// Fig 11: single-thread throughput across NVMM write latencies
/// (50–800 ns). Expected: the HiNFS/PMFS gap grows with latency (~6× at
/// 800 ns on webproxy) and HiNFS is never worse, even at 50 ns.
pub fn fig11(scale: &Scale) -> Table {
    let mut t = Table::new(
        "fig11",
        "throughput (ops/s) vs NVMM write latency, 1 thread",
        &[
            "workload", "system", "50ns", "100ns", "200ns", "400ns", "800ns",
        ],
    );
    let lats = [50u64, 100, 200, 400, 800];
    let s = Scale {
        duration_ms: scale.duration_ms / 2,
        ..scale.clone()
    };
    for p in Personality::ALL {
        for kind in SystemKind::FIG7 {
            let mut row = vec![p.label().to_string(), kind.label().to_string()];
            for &lat in &lats {
                let cost = CostModel::default().with_write_latency(lat);
                let r = filebench_once(kind, p, 1, &s, cost);
                row.push(format!("{:.0}", r.throughput()));
            }
            t.row(row);
        }
    }
    t.note("paper: HiNFS/PMFS gap grows with latency; HiNFS no worse than PMFS even at 50ns");
    t
}

// ---------------------------------------------------------------- Fig 12

/// Fig 12: trace-replay execution time, broken down into read / write /
/// unlink / fsync, normalized to PMFS's total. Expected: HiNFS cuts
/// Usr0/Usr1/LASR by ~35–38 % vs PMFS (mostly write time), ties on
/// Facebook; HiNFS-WB is 14–32 % slower than HiNFS on sync-heavy traces.
pub fn fig12(scale: &Scale) -> Table {
    let mut t = Table::new(
        "fig12",
        "trace replay: per-op time breakdown normalized to PMFS total",
        &[
            "trace", "system", "read", "write", "unlink", "fsync", "total",
        ],
    );
    let steps = 2500u64;
    let tscale = Scale {
        nfiles: 128,
        mean_file: 32 << 10,
        ..scale.clone()
    };
    for profile in ALL_TRACES {
        let mut base_total = 0u64;
        for kind in SystemKind::FIG12 {
            let (sys, set) = prepared_system(kind, &tscale, CostModel::default());
            sys.env.rebase();
            let r = run_actors(
                &sys,
                vec![Box::new(TraceReplay::new(set, profile, 5))],
                RunLimit::steps(steps),
                12,
            );
            let _ = sys.fs.unmount();
            let read = r.op_ns(OpKind::Read);
            let write = r.op_ns(OpKind::Write);
            let unlink = r.op_ns(OpKind::Unlink);
            let fsync = r.op_ns(OpKind::Fsync);
            let total = r.syscall_ns();
            if kind == SystemKind::Pmfs {
                base_total = total.max(1);
            }
            let norm = |v: u64| fmt2(v as f64 / base_total as f64);
            t.row(vec![
                profile.name.into(),
                kind.label().into(),
                norm(read),
                norm(write),
                norm(unlink),
                norm(fsync),
                norm(total),
            ]);
        }
    }
    t.note("paper: HiNFS total ~0.62-0.65 of PMFS on usr0/usr1/lasr; ~1.0 on facebook; HiNFS-WB 14-32% above HiNFS on sync-heavy traces");
    t
}

/// Fig 12 recomputed from spans: per-op totals from the OpKind × Phase
/// matrix next to the runner's own per-op accounting for the same trace
/// replay. `op_scope` books an op's full instrumented time into its row
/// (the remainder under `Phase::Other`), so the two columns agree almost
/// exactly — the span layer and the runner read the same virtual clock
/// around the same call boundary.
pub fn fig12_spans(scale: &Scale) -> Table {
    let mut t = Table::new(
        "fig12s",
        "trace replay: runner per-op ns vs span row totals",
        &["trace", "system", "op", "runner-ns", "span-ns", "ratio"],
    );
    let steps = 2500u64;
    let tscale = Scale {
        nfiles: 128,
        mean_file: 32 << 10,
        ..scale.clone()
    };
    let profile = workloads::traces::USR0;
    for kind in [SystemKind::Pmfs, SystemKind::Hinfs] {
        let mut cfg = tscale.system_config(CostModel::default());
        cfg.obsv = workloads::ObsvOptions::none().with_spans();
        let sys = workloads::setups::build(kind, &cfg).expect("build");
        let set = workloads::fileset::Fileset::populate(&*sys.fs, tscale.fileset_spec(), 0xF11E)
            .expect("populate");
        sys.fs.unmount().expect("unmount");
        let workloads::setups::System { kind, dev, env, .. } = sys;
        let sys = remount_with(kind, dev, env, &cfg).expect("remount");
        sys.env.rebase();
        let s0 = sys.dev.spans().snapshot();
        let r = run_actors(
            &sys,
            vec![Box::new(TraceReplay::new(set, profile, 5))],
            RunLimit::steps(steps),
            12,
        );
        let spans = sys.dev.spans().snapshot().since(&s0);
        let _ = sys.fs.unmount();
        for op in [OpKind::Read, OpKind::Write, OpKind::Unlink, OpKind::Fsync] {
            let runner_ns = r.op_ns(op);
            let span_ns = spans.row_total(op as usize);
            let ratio = span_ns as f64 / runner_ns.max(1) as f64;
            t.row(vec![
                profile.name.into(),
                kind.label().into(),
                format!("{:?}", op).to_lowercase(),
                runner_ns.to_string(),
                span_ns.to_string(),
                fmt2(ratio),
            ]);
        }
    }
    t.note("span row totals track the runner accounting (ratio ~1.00)");
    t
}

// ---------------------------------------------------------------- Fig 13

/// Fig 13: macrobenchmark elapsed time normalized to PMFS. Expected: HiNFS
/// −60 % on postmark and −64 % on kernel-make vs PMFS; ≈ PMFS on TPC-C and
/// kernel-grep; every NVMM-aware system far below EXT*/NVMMBD; EXT2 faster
/// than EXT4 (no journal).
pub fn fig13(scale: &Scale) -> Table {
    let mut t = Table::new(
        "fig13",
        "macrobenchmark elapsed time normalized to PMFS",
        &[
            "benchmark",
            "pmfs",
            "ext4-dax",
            "ext2-nvmmbd",
            "ext4-nvmmbd",
            "hinfs-wb",
            "hinfs",
        ],
    );
    #[derive(Clone, Copy)]
    enum Macro {
        Postmark,
        Tpcc,
        Grep,
        Make,
    }
    let benchmarks = [
        ("postmark", Macro::Postmark),
        ("tpcc", Macro::Tpcc),
        ("kernel-grep", Macro::Grep),
        ("kernel-make", Macro::Make),
    ];
    for (name, m) in benchmarks {
        let mut elapsed = Vec::new();
        for kind in SystemKind::FIG12 {
            let cfg = scale.system_config(CostModel::default());
            let sys = workloads::setups::build(kind, &cfg).expect("build");
            let r = match m {
                Macro::Postmark => {
                    let pool =
                        Fileset::populate(&*sys.fs, FilesetSpec::new("/mail", 192, 20, 2 << 10), 3)
                            .expect("pool");
                    let sys = remount_and_rebase(sys, &cfg);
                    let r = run_actors(
                        &sys,
                        vec![Box::new(Postmark::new(pool, PostmarkParams::default()))],
                        RunLimit::steps(2000),
                        13,
                    );
                    let _ = sys.fs.unmount();
                    r
                }
                Macro::Tpcc => {
                    let params = TpccParams {
                        table_size: 16 << 20,
                        ..TpccParams::default()
                    };
                    Tpcc::setup(&*sys.fs, &params).expect("setup");
                    let sys = remount_and_rebase(sys, &cfg);
                    let r = run_actors(
                        &sys,
                        vec![Box::new(Tpcc::new(params))],
                        RunLimit::steps(400),
                        13,
                    );
                    let _ = sys.fs.unmount();
                    r
                }
                Macro::Grep => {
                    let tree = SourceTree::build(&*sys.fs, "/linux", TreeParams::default(), 5)
                        .expect("tree");
                    let sys = remount_and_rebase(sys, &cfg);
                    let r = run_actors(
                        &sys,
                        vec![Box::new(KernelGrep::new(tree))],
                        RunLimit::default(),
                        13,
                    );
                    let _ = sys.fs.unmount();
                    r
                }
                Macro::Make => {
                    let tree = SourceTree::build(&*sys.fs, "/linux", TreeParams::default(), 5)
                        .expect("tree");
                    let sys = remount_and_rebase(sys, &cfg);
                    let r = run_actors(
                        &sys,
                        vec![Box::new(KernelMake::new(tree))],
                        RunLimit::default(),
                        13,
                    );
                    let _ = sys.fs.unmount();
                    r
                }
            };
            elapsed.push(r.elapsed_ns.max(1));
        }
        let base = elapsed[0] as f64;
        let mut row = vec![name.to_string()];
        for e in &elapsed {
            row.push(fmt2(*e as f64 / base));
        }
        t.row(row);
    }
    t.note("paper: HiNFS ~0.40 of PMFS on postmark, ~0.36 on kernel-make, ~1.0 on tpcc/kernel-grep; ext2 < ext4");
    t
}

fn remount_and_rebase(sys: System, cfg: &workloads::setups::SystemConfig) -> System {
    let System {
        kind, dev, env, fs, ..
    } = sys;
    fs.unmount().expect("unmount");
    drop(fs);
    let sys = remount_with(kind, dev, env, cfg).expect("remount");
    sys.env.rebase();
    sys
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Scale {
        Scale::quick()
    }

    #[test]
    fn fig01_breakdown_shape() {
        let t = fig01(&quick());
        assert_eq!(t.rows.len(), 5);
        // Largest I/O size: write access dominates.
        let last = t.rows.last().unwrap();
        let write_pct: f64 = last[2].trim_end_matches('%').parse().unwrap();
        assert!(write_pct > 60.0, "write access {write_pct}% at 64KiB");
        // Smallest: others significant but write still >= 10%.
        let first = &t.rows[0];
        let write_pct0: f64 = first[2].trim_end_matches('%').parse().unwrap();
        assert!(write_pct0 > 10.0, "write access {write_pct0}% at 64B");
        assert!(write_pct0 < write_pct);
    }

    #[test]
    fn fig06_accuracy_is_high() {
        let t = fig06(&quick());
        for row in &t.rows {
            let acc: f64 = row[2].trim_end_matches('%').parse().unwrap();
            assert!(acc > 75.0, "{} accuracy {acc}%", row[0]);
        }
    }

    #[test]
    fn fig01_spans_agree_with_ledger() {
        let t = fig01_spans(&quick());
        for row in &t.rows {
            let v = |i: usize| -> f64 { row[i].trim_end_matches('%').parse().unwrap() };
            assert!(
                (v(1) - v(2)).abs() <= 5.0,
                "{}: read ledger {} vs spans {}",
                row[0],
                row[1],
                row[2]
            );
            assert!(
                (v(3) - v(4)).abs() <= 5.0,
                "{}: write ledger {} vs spans {}",
                row[0],
                row[3],
                row[4]
            );
        }
    }

    #[test]
    fn fig12_spans_match_runner_accounting() {
        let t = fig12_spans(&quick());
        for row in &t.rows {
            let runner: u64 = row[3].parse().unwrap();
            if runner < 10_000 {
                continue; // too small for a meaningful ratio
            }
            let ratio: f64 = row[5].parse().unwrap();
            assert!(
                (0.95..=1.05).contains(&ratio),
                "{} {} {}: ratio {ratio}",
                row[0],
                row[1],
                row[2]
            );
        }
    }

    #[test]
    fn fig09_clfw_reduces_traffic_at_small_io() {
        let t = fig09(&quick());
        // 64 B row: NCLFW writes far more NVMM bytes than CLFW.
        let row = &t.rows[0];
        let nclfw: f64 = row[4].parse().unwrap();
        let clfw: f64 = row[5].parse().unwrap();
        assert!(
            nclfw > clfw * 1.3,
            "64B writeback traffic: nclfw {nclfw} MiB vs clfw {clfw} MiB"
        );
    }
}
