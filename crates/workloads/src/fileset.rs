//! Filebench-style file sets: a directory tree populated with files of a
//! given mean size, shared by the workload actors.

use std::sync::Arc;

use fskit::{FileSystem, OpenFlags, Result};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Specification of a file set.
#[derive(Debug, Clone)]
pub struct FilesetSpec {
    /// Root directory of the set.
    pub root: String,
    /// Number of files to preallocate.
    pub nfiles: usize,
    /// Files per directory (filebench `meandirwidth`).
    pub dir_width: usize,
    /// Mean file size in bytes (sizes are drawn uniformly from
    /// 0.5×..1.5× the mean, a flat stand-in for filebench's gamma).
    pub mean_size: usize,
}

impl FilesetSpec {
    /// A spec with the given population and sizes.
    pub fn new(root: &str, nfiles: usize, dir_width: usize, mean_size: usize) -> FilesetSpec {
        FilesetSpec {
            root: root.to_string(),
            nfiles,
            dir_width: dir_width.max(1),
            mean_size,
        }
    }

    /// Total bytes the populated set holds (the mean estimate).
    pub fn dataset_bytes(&self) -> usize {
        self.nfiles * self.mean_size
    }
}

/// Shared, mutable state of a live file set.
#[derive(Debug)]
pub struct Fileset {
    spec: FilesetSpec,
    /// Live file paths.
    files: Mutex<Vec<String>>,
    /// Monotonic counter for fresh names.
    next_id: Mutex<u64>,
    ndirs: usize,
}

/// Draws a file size around the mean.
pub fn draw_size(rng: &mut SmallRng, mean: usize) -> usize {
    if mean == 0 {
        return 0;
    }
    let half = (mean / 2).max(1);
    mean - half + rng.gen_range(0..=2 * half)
}

impl Fileset {
    /// Creates the directory tree and preallocates `nfiles` files with
    /// content, returning the shared set. Deterministic for a given seed.
    pub fn populate(fs: &dyn FileSystem, spec: FilesetSpec, seed: u64) -> Result<Arc<Fileset>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ndirs = spec.nfiles.div_ceil(spec.dir_width).max(1);
        if fs.stat(&spec.root).is_err() {
            fs.mkdir(&spec.root)?;
        }
        for d in 0..ndirs {
            let dir = format!("{}/d{d:04}", spec.root);
            if fs.stat(&dir).is_err() {
                fs.mkdir(&dir)?;
            }
        }
        let mut files = Vec::with_capacity(spec.nfiles);
        let payload = vec![0xa5u8; spec.mean_size * 3 / 2 + 1];
        for i in 0..spec.nfiles {
            let path = format!("{}/d{:04}/f{i:06}", spec.root, i % ndirs);
            let fd = fs.open(&path, OpenFlags::RDWR | OpenFlags::CREATE)?;
            let size = draw_size(&mut rng, spec.mean_size);
            if size > 0 {
                fs.write(fd, 0, &payload[..size])?;
            }
            fs.close(fd)?;
            files.push(path);
        }
        Ok(Arc::new(Fileset {
            spec,
            files: Mutex::new(files),
            next_id: Mutex::new(0),
            ndirs,
        }))
    }

    /// The specification this set was built from.
    pub fn spec(&self) -> &FilesetSpec {
        &self.spec
    }

    /// Number of live files.
    pub fn len(&self) -> usize {
        self.files.lock().len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A uniformly random live file path.
    pub fn pick(&self, rng: &mut SmallRng) -> Option<String> {
        let files = self.files.lock();
        if files.is_empty() {
            return None;
        }
        Some(files[rng.gen_range(0..files.len())].clone())
    }

    /// A random path biased to the most recently created `frac` of the
    /// set (temporal locality, e.g. webproxy's hot working set).
    pub fn pick_recent(&self, rng: &mut SmallRng, frac: f64) -> Option<String> {
        let files = self.files.lock();
        if files.is_empty() {
            return None;
        }
        let window = ((files.len() as f64 * frac) as usize).clamp(1, files.len());
        let start = files.len() - window;
        Some(files[start + rng.gen_range(0..window)].clone())
    }

    /// Removes and returns a random live path (the caller unlinks it).
    pub fn take(&self, rng: &mut SmallRng) -> Option<String> {
        let mut files = self.files.lock();
        if files.is_empty() {
            return None;
        }
        let i = rng.gen_range(0..files.len());
        // `remove` keeps creation order intact for the recency helpers.
        Some(files.remove(i))
    }

    /// Removes a path biased to the most recently created `frac` of the
    /// set — webproxy-style *short-lived* files that die before their data
    /// is ever written back.
    pub fn take_recent(&self, rng: &mut SmallRng, frac: f64) -> Option<String> {
        let mut files = self.files.lock();
        if files.is_empty() {
            return None;
        }
        let window = ((files.len() as f64 * frac) as usize).clamp(1, files.len());
        let start = files.len() - window;
        let i = start + rng.gen_range(0..window);
        Some(files.remove(i))
    }

    /// Generates a fresh path in a random directory and registers it.
    pub fn fresh(&self, rng: &mut SmallRng) -> String {
        let mut id = self.next_id.lock();
        *id += 1;
        let d = rng.gen_range(0..self.ndirs);
        let path = format!("{}/d{d:04}/n{:08}", self.spec.root, *id);
        self.files.lock().push(path.clone());
        path
    }

    /// Draws a file size from the set's distribution.
    pub fn draw_size(&self, rng: &mut SmallRng) -> usize {
        draw_size(rng, self.spec.mean_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmm::{CostModel, NvmmDevice, SimEnv, BLOCK_SIZE};
    use pmfs::{Pmfs, PmfsOptions};

    fn fs() -> Arc<Pmfs> {
        let env = SimEnv::new_virtual(CostModel::default());
        let dev = NvmmDevice::new(env, 16384 * BLOCK_SIZE);
        Pmfs::mkfs(
            dev,
            PmfsOptions {
                journal_blocks: 64,
                inode_count: 1024,
            },
        )
        .unwrap()
    }

    #[test]
    fn populate_creates_population() {
        let fs = fs();
        let set = Fileset::populate(&*fs, FilesetSpec::new("/data", 50, 8, 8192), 1).unwrap();
        assert_eq!(set.len(), 50);
        let mut rng = SmallRng::seed_from_u64(2);
        let path = set.pick(&mut rng).unwrap();
        let st = fs.stat(&path).unwrap();
        assert!(
            st.size >= 4096 && st.size <= 12288,
            "size {} near mean",
            st.size
        );
        // Directory structure exists.
        assert!(fs.stat("/data/d0000").is_ok());
    }

    #[test]
    fn take_and_fresh_track_population() {
        let fs = fs();
        let set = Fileset::populate(&*fs, FilesetSpec::new("/d", 10, 4, 100), 1).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let victim = set.take(&mut rng).unwrap();
        assert_eq!(set.len(), 9);
        assert!(fs.stat(&victim).is_ok(), "take does not unlink by itself");
        let fresh = set.fresh(&mut rng);
        assert_eq!(set.len(), 10);
        assert!(fresh.starts_with("/d/d"));
    }

    #[test]
    fn sizes_are_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        let sa: Vec<usize> = (0..10).map(|_| draw_size(&mut a, 1000)).collect();
        let sb: Vec<usize> = (0..10).map(|_| draw_size(&mut b, 1000)).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().all(|&s| (500..=1500).contains(&s)));
    }
}
