//! Crash-point enumeration with the durability oracle — the single
//! documented command for the robustness gate:
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```
//!
//! For each file system (HiNFS, PMFS, EXT4) the harness records the
//! numbered crash schedule of a scripted run — every flush/fence/persist
//! boundary the NVMM device crossed — then replays the script once per
//! boundary, power-failing there (plus seeded torn-store variants),
//! remounting through journal recovery, and checking the durability
//! oracle: fsync-acknowledged data must survive, lazily buffered data may
//! survive (per-byte: synced image, later write, or hole — never
//! garbage), and namespace operations are all-or-nothing.
//!
//! A second pass injects soft faults (journal-full backpressure, ENOSPC,
//! writeback stalls) and demands graceful degradation: clean errors, no
//! panics, and a clean crash + recovery afterwards.
//!
//! The process exits non-zero on any oracle violation, so this doubles as
//! the `scripts/verify.sh` smoke sweep.

use faultfs::Op;
use hinfs_suite::prelude::*;

fn main() {
    let h = Harness::new();
    let mut violations: Vec<String> = Vec::new();

    // -- Pass 1: crash-point enumeration (fixed seed, capped points) --
    let script = Script::random(2016, 12);
    let cfg = SweepConfig {
        seed: 0xFA17,
        max_points: 32,
        torn_every: 4,
    };
    println!(
        "== crash-point enumeration: {} ops, <= {} points/fs ==",
        script.ops.len(),
        cfg.max_points
    );
    for kind in FsKind::ALL {
        let out = h.sweep(kind, &script, cfg);
        println!(
            "  {:<6} {:>4} boundaries | {:>3} crashes (+{} torn) | {:>4} oracle checks | \
             {:>2} txs undone, {:>3} entries undone/replayed | {} violations",
            out.kind.label(),
            out.boundaries,
            out.runs,
            out.torn_runs,
            out.checks,
            out.txs_undone,
            out.entries_undone,
            out.violations.len()
        );
        violations.extend(out.violations);
    }

    // -- Pass 2: soft-fault injection over a journal-heavy script tail --
    let faulty = Script {
        ops: vec![
            Op::Create { file: 0 },
            Op::Append {
                file: 0,
                len: 4096,
                fill: 0x5a,
            },
            Op::Fsync { file: 0 },
            Op::Append {
                file: 0,
                len: 8192,
                fill: 0x6b,
            },
            Op::Fsync { file: 0 },
            Op::Mkdir { dir: 0 },
            Op::Unlink { file: 0 },
            Op::Create { file: 1 },
        ],
    };
    println!(
        "\n== fault injection (window: ops 3..{}) ==",
        faulty.ops.len()
    );
    for kind in FsKind::ALL {
        for fault in [
            InjectedFault::JournalFull,
            InjectedFault::Enospc,
            InjectedFault::WritebackStall,
        ] {
            let out = h.fault_run(kind, &faulty, fault, 3..faulty.ops.len());
            println!(
                "  {:<6} {:<15} -> {:>2} clean errors, {} oracle checks, {} violations",
                kind.label(),
                fault.label(),
                out.clean_errors.len(),
                out.checks,
                out.violations.len()
            );
            for (i, e) in &out.clean_errors {
                println!("           op {i}: {e}");
            }
            violations.extend(out.violations);
        }
    }

    // -- Summary through the obsv counters --
    let s = h.stats.snapshot();
    println!(
        "\ntotal: {} crashes injected, {} soft faults, {} recoveries, {} txs undone, \
         {} entries undone/replayed, {} oracle checks, {} violations",
        s.crashes_injected,
        s.faults_injected,
        s.recoveries,
        s.txs_undone,
        s.entries_undone,
        s.oracle_checks,
        s.oracle_violations
    );

    if !violations.is_empty() {
        eprintln!("\nDURABILITY ORACLE VIOLATIONS:");
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
    println!("crash_recovery: OK (zero violations, zero panics)");
}
