//! Device traffic counters.
//!
//! [`DeviceStats`] counts the bytes actually moved to and from the NVMM
//! media. Fig 9(b) of the paper ("NVMM write size") is regenerated directly
//! from the device's written-bytes counter. Persisted bytes are counted at
//! cacheline granularity because a cacheline is the unit in which the media
//! is written — this is exactly what makes CLFW's fine-grained writeback
//! visible in the counter.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters for one device.
#[derive(Debug, Default)]
pub struct DeviceStats {
    nvmm_bytes_written: AtomicU64,
    nvmm_bytes_read: AtomicU64,
    flush_lines: AtomicU64,
    fences: AtomicU64,
    cached_store_bytes: AtomicU64,
}

/// A point-in-time copy of [`DeviceStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Bytes persisted to the NVMM media (cacheline granularity).
    pub nvmm_bytes_written: u64,
    /// Bytes read from the device.
    pub nvmm_bytes_read: u64,
    /// Number of cachelines persisted via `clflush`.
    pub flush_lines: u64,
    /// Number of store fences issued.
    pub fences: u64,
    /// Bytes stored into the volatile (cached) domain, durable or not.
    pub cached_store_bytes: u64,
}

impl DeviceStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn add_written(&self, bytes: u64) {
        self.nvmm_bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn add_read(&self, bytes: u64) {
        self.nvmm_bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn add_flush_lines(&self, lines: u64) {
        self.flush_lines.fetch_add(lines, Ordering::Relaxed);
    }

    pub(crate) fn add_fence(&self) {
        self.fences.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_cached_store(&self, bytes: u64) {
        self.cached_store_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Copies the current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            nvmm_bytes_written: self.nvmm_bytes_written.load(Ordering::Relaxed),
            nvmm_bytes_read: self.nvmm_bytes_read.load(Ordering::Relaxed),
            flush_lines: self.flush_lines.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            cached_store_bytes: self.cached_store_bytes.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// Per-counter difference `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            nvmm_bytes_written: self
                .nvmm_bytes_written
                .saturating_sub(earlier.nvmm_bytes_written),
            nvmm_bytes_read: self.nvmm_bytes_read.saturating_sub(earlier.nvmm_bytes_read),
            flush_lines: self.flush_lines.saturating_sub(earlier.flush_lines),
            fences: self.fences.saturating_sub(earlier.fences),
            cached_store_bytes: self
                .cached_store_bytes
                .saturating_sub(earlier.cached_store_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = DeviceStats::new();
        s.add_written(64);
        s.add_written(128);
        s.add_read(10);
        s.add_fence();
        let snap = s.snapshot();
        assert_eq!(snap.nvmm_bytes_written, 192);
        assert_eq!(snap.nvmm_bytes_read, 10);
        assert_eq!(snap.fences, 1);
    }

    #[test]
    fn since_is_a_delta() {
        let s = DeviceStats::new();
        s.add_written(100);
        let a = s.snapshot();
        s.add_written(50);
        s.add_flush_lines(2);
        let d = s.snapshot().since(&a);
        assert_eq!(d.nvmm_bytes_written, 50);
        assert_eq!(d.flush_lines, 2);
        assert_eq!(d.nvmm_bytes_read, 0);
    }
}
