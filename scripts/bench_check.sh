#!/usr/bin/env bash
# Throughput regression gate over two BENCH_*.json documents.
#
#   scripts/bench_check.sh BASELINE.json CANDIDATE.json [max_regress_pct]
#
# Compares every flat "headline::<workload>::<system>::ops_per_s" key and
# fails (exit 1) when the candidate is more than max_regress_pct percent
# (default 10) BELOW the baseline, or when a baseline headline key is
# missing from the candidate. Improvements never fail. `git_rev` and every
# non-headline section are ignored, so two runs of the same build compare
# clean even across commits.
#
# Forward compatibility: only keys present in the BASELINE are gated.
# Candidate keys absent from the baseline (a new sweep dimension, a new
# cell) WARN but never fail — they become gated once a baseline carrying
# them is committed.
#
# Deliberately plain grep/awk: the documents keep one headline key per
# line exactly so this gate has no JSON-parser dependency.
set -euo pipefail

if [[ $# -lt 2 || $# -gt 3 ]]; then
    echo "usage: $0 BASELINE.json CANDIDATE.json [max_regress_pct]" >&2
    exit 2
fi

base="$1"
cand="$2"
max_pct="${3:-10}"

for f in "$base" "$cand"; do
    if [[ ! -r "$f" ]]; then
        echo "bench_check: cannot read $f" >&2
        exit 2
    fi
done

# "  \"headline::fileserver::pmfs::ops_per_s\": 1234.567,"  ->  key value
extract() {
    grep -o '"headline::[^"]*::ops_per_s": *[0-9.]*' "$1" |
        sed 's/"\(headline::[^"]*\)": */\1 /'
}

base_keys=$(extract "$base")
if [[ -z "$base_keys" ]]; then
    echo "bench_check: no headline throughput keys in $base" >&2
    exit 2
fi

fail=0
while read -r key bval; do
    cval=$(extract "$cand" | awk -v k="$key" '$1 == k { print $2 }')
    if [[ -z "$cval" ]]; then
        echo "bench_check: FAIL $key missing from $cand"
        fail=1
        continue
    fi
    verdict=$(awk -v b="$bval" -v c="$cval" -v m="$max_pct" 'BEGIN {
        if (b <= 0) { print "ok 0.0"; exit }
        delta = (c - b) * 100.0 / b
        if (delta < -m) printf "fail %.1f\n", delta
        else printf "ok %.1f\n", delta
    }')
    status=${verdict%% *}
    delta=${verdict##* }
    if [[ "$status" == "fail" ]]; then
        echo "bench_check: FAIL $key ${bval} -> ${cval} (${delta}%, limit -${max_pct}%)"
        fail=1
    else
        echo "bench_check: ok   $key ${bval} -> ${cval} (${delta}%)"
    fi
done <<<"$base_keys"

# Scaling-ratio pass: threads=8 ÷ threads=1 per headline cell must not
# drop more than max_regress_pct below the baseline's ratio. Absolute
# throughput can hold steady while the multicore win quietly evaporates
# (e.g. a new global lock that slows only the 8-thread cell); the
# per-key pass above would report each cell within limits while the
# scaling curve flattens. Only cells where the baseline carries both
# thread endpoints are gated.
cells=$(awk '{ if (sub(/::threads=1::ops_per_s$/, "", $1)) print $1 }' <<<"$base_keys" | sort -u)
for cell in $cells; do
    bt1=$(awk -v k="$cell::threads=1::ops_per_s" '$1 == k { print $2 }' <<<"$base_keys")
    bt8=$(awk -v k="$cell::threads=8::ops_per_s" '$1 == k { print $2 }' <<<"$base_keys")
    ct1=$(extract "$cand" | awk -v k="$cell::threads=1::ops_per_s" '$1 == k { print $2 }')
    ct8=$(extract "$cand" | awk -v k="$cell::threads=8::ops_per_s" '$1 == k { print $2 }')
    # Missing candidate keys already FAILed in the per-key pass; missing
    # baseline endpoints mean the sweep predates this gate.
    [[ -z "$bt1" || -z "$bt8" || -z "$ct1" || -z "$ct8" ]] && continue
    verdict=$(awk -v b1="$bt1" -v b8="$bt8" -v c1="$ct1" -v c8="$ct8" -v m="$max_pct" 'BEGIN {
        if (b1 <= 0 || c1 <= 0) { print "ok 0.0 0.0 0.0"; exit }
        br = b8 / b1; cr = c8 / c1
        delta = (cr - br) * 100.0 / br
        if (delta < -m) printf "fail %.2f %.2f %.1f\n", br, cr, delta
        else printf "ok %.2f %.2f %.1f\n", br, cr, delta
    }')
    read -r status br cr delta <<<"$verdict"
    if [[ "$status" == "fail" ]]; then
        echo "bench_check: FAIL $cell scaling t8/t1 ${br}x -> ${cr}x (${delta}%, limit -${max_pct}%)"
        fail=1
    else
        echo "bench_check: ok   $cell scaling t8/t1 ${br}x -> ${cr}x (${delta}%)"
    fi
done

# New-key pass: candidate keys the baseline does not carry are reported
# but never gated (the baseline predates them).
while read -r key _cval; do
    if ! awk -v k="$key" '$1 == k { found = 1 } END { exit !found }' <<<"$base_keys"; then
        echo "bench_check: warn $key is new (not in baseline; not gated)"
    fi
done < <(extract "$cand")

if [[ "$fail" -ne 0 ]]; then
    echo "bench_check: throughput regression beyond ${max_pct}%"
    exit 1
fi
echo "bench_check: OK (all baseline headline throughputs within ${max_pct}%)"
