//! Coverage accounting for the scenario fuzzer.
//!
//! A [`CoverageMap`] is a deterministic set of *coverage points* — small
//! integers encoding "this run reached a state the observability layer
//! can name". The fuzzer keeps one global map and evolves its corpus
//! toward inputs that add points no earlier input produced. Everything a
//! point encodes is something the repo already observes:
//!
//! - **Trace** ([`CoverageDomain::Trace`]): trace-ring event kinds with
//!   their interesting payload fields log₂-bucketed — a `bbm.flip` to
//!   Lazy at a different write-count magnitude, a `watermark.low`
//!   crossing at a different free level, a recovery that undid a
//!   different number of journal entries all count as distinct points.
//! - **Site** ([`CoverageDomain::Site`]): contention-site first-hits — a
//!   lock or stall identity acquired (and separately, contended) for the
//!   first time, so shard-colliding inode choices score.
//! - **State** ([`CoverageDomain::State`]): invariant-auditor /
//!   introspection state classes derived from an [`FsSnapshot`] —
//!   watermark region, journal fill bucket, Eager/Lazy/ghost population
//!   flags, dirty-cacheline and LRW-age histogram occupancy.
//! - **Crash** ([`CoverageDomain::Crash`]): crash-schedule shape — how
//!   many persistence boundaries a script crosses, which boundary a
//!   crash landed on, whether it fired mid-operation or tore the store
//!   buffer, and how much recovery had to undo.
//! - **Op** ([`CoverageDomain::Op`]): operation outcomes — which op kind
//!   produced which result class on which system.
//!
//! Points carry an 8-bit caller-supplied context (the fuzzer uses the
//! file-system kind) so "watermark crossing on hinfs" and "on pmfs" are
//! separate corpus targets. The map is a `BTreeSet`, so iteration order,
//! summaries, and [`CoverageMap::digest`] are bit-stable — a fixed seed
//! replays to an identical coverage report.

use std::collections::BTreeSet;

use crate::contention::ContentionSnapshot;
use crate::snapshot::FsSnapshot;
use crate::trace::TraceEvent;

/// Which observability source a coverage point came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum CoverageDomain {
    /// Trace-ring event kinds with bucketed payloads.
    Trace = 0,
    /// Contention-site first-hits.
    Site = 1,
    /// Introspection-state classes (watermark region, journal fill, …).
    State = 2,
    /// Crash-schedule shape and recovery depth.
    Crash = 3,
    /// Per-operation outcome classes.
    Op = 4,
}

/// Every domain, in tag order.
pub const COVERAGE_DOMAINS: [CoverageDomain; 5] = [
    CoverageDomain::Trace,
    CoverageDomain::Site,
    CoverageDomain::State,
    CoverageDomain::Crash,
    CoverageDomain::Op,
];

impl CoverageDomain {
    /// Stable label for summaries.
    pub fn label(self) -> &'static str {
        match self {
            CoverageDomain::Trace => "trace",
            CoverageDomain::Site => "site",
            CoverageDomain::State => "state",
            CoverageDomain::Crash => "crash",
            CoverageDomain::Op => "op",
        }
    }
}

/// Log₂ magnitude bucket: 0 for 0, else `ilog2(v) + 1` (1 for 1, 2 for
/// 2–3, 3 for 4–7, …). Collapses raw counters into ~65 classes so a
/// coverage point means "a different order of magnitude", not "a
/// different number".
pub fn mag_bucket(v: u64) -> u64 {
    match v {
        0 => 0,
        _ => u64::from(v.ilog2()) + 1,
    }
}

/// Packs a point: domain tag in the top byte, caller context below it,
/// feature payload in the low 48 bits.
fn point(domain: CoverageDomain, ctx: u8, feature: u64) -> u64 {
    ((domain as u64) << 56) | ((ctx as u64) << 48) | (feature & 0xFFFF_FFFF_FFFF)
}

/// Stable index of a trace-event kind (mirrors the ring's wire tags).
fn trace_kind_idx(ev: &TraceEvent) -> u64 {
    match ev {
        TraceEvent::ReclaimBegin { .. } => 0,
        TraceEvent::ReclaimEnd { .. } => 1,
        TraceEvent::WatermarkLow { .. } => 2,
        TraceEvent::ForegroundStall { .. } => 3,
        TraceEvent::BbmFlip { .. } => 4,
        TraceEvent::JournalCommit { .. } => 5,
        TraceEvent::PeriodicPass { .. } => 6,
        TraceEvent::RecoveryBegin { .. } => 7,
        TraceEvent::RecoveryEnd { .. } => 8,
        TraceEvent::FaultInjected { .. } => 9,
        TraceEvent::AuditViolation { .. } => 10,
        TraceEvent::LineageDrained { .. } => 11,
    }
}

/// The bucketed sub-feature of one trace event: which payload magnitudes
/// make this occurrence of the kind "new".
fn trace_sub_feature(ev: &TraceEvent) -> u64 {
    match *ev {
        TraceEvent::ReclaimBegin { free, .. } => mag_bucket(free),
        TraceEvent::ReclaimEnd { victims, .. } => mag_bucket(victims),
        TraceEvent::WatermarkLow { free, .. } => mag_bucket(free),
        TraceEvent::ForegroundStall { .. } => 0,
        TraceEvent::BbmFlip {
            to_lazy,
            n_cw,
            n_cf,
            ..
        } => (u64::from(to_lazy) << 16) | (mag_bucket(n_cw) << 8) | mag_bucket(n_cf),
        TraceEvent::JournalCommit { log_entries, .. } => mag_bucket(log_entries),
        TraceEvent::PeriodicPass { age_flushed } => mag_bucket(age_flushed),
        TraceEvent::RecoveryBegin { .. } => 0,
        TraceEvent::RecoveryEnd {
            txs_undone,
            entries_undone,
        } => (mag_bucket(txs_undone) << 8) | mag_bucket(entries_undone),
        TraceEvent::FaultInjected { kind, .. } => kind,
        TraceEvent::AuditViolation { code, .. } => code,
        TraceEvent::LineageDrained {
            row, lazy, lag_ns, ..
        } => (row << 16) | (u64::from(lazy) << 8) | mag_bucket(lag_ns),
    }
}

/// A deterministic set of coverage points.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMap {
    points: BTreeSet<u64>,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    /// Inserts one raw point; `true` when it is new.
    pub fn insert(&mut self, domain: CoverageDomain, ctx: u8, feature: u64) -> bool {
        self.points.insert(point(domain, ctx, feature))
    }

    /// Folds one trace event in. Returns the number of new points (0–1).
    pub fn add_trace(&mut self, ctx: u8, ev: &TraceEvent) -> usize {
        let feature = (trace_kind_idx(ev) << 24) | (trace_sub_feature(ev) & 0xFF_FFFF);
        usize::from(self.insert(CoverageDomain::Trace, ctx, feature))
    }

    /// Folds a contention snapshot in: one point per site first acquired,
    /// a second per site first *contended*. Returns new points.
    pub fn add_contention(&mut self, ctx: u8, snap: &ContentionSnapshot) -> usize {
        let mut new = 0;
        for s in snap.touched() {
            new += usize::from(self.insert(CoverageDomain::Site, ctx, (s.site as u64) << 1));
            if s.contended > 0 {
                new +=
                    usize::from(self.insert(CoverageDomain::Site, ctx, ((s.site as u64) << 1) | 1));
            }
        }
        new
    }

    /// Folds an introspection snapshot into state-class points. Returns
    /// new points.
    pub fn add_state(&mut self, ctx: u8, snap: &FsSnapshot) -> usize {
        let mut new = 0;
        let mut put = |sub: u64, val: u64| {
            usize::from(self.insert(CoverageDomain::State, ctx, (sub << 16) | (val & 0xFFFF)))
        };
        if let Some(b) = &snap.buffer {
            // Watermark region: 2 = under Low_f (reclaim pressure),
            // 1 = between the watermarks, 0 = above High_f.
            let region = if b.free_blocks <= b.low_blocks {
                2
            } else if b.free_blocks < b.high_blocks {
                1
            } else {
                0
            };
            new += put(0, region);
            new += put(1, mag_bucket(b.dirty_blocks));
            new += put(2, u64::from(b.eager_blocks > 0));
            new += put(3, u64::from(b.ghost_blocks > 0));
            new += put(4, mag_bucket(b.open_txs));
            for (i, &c) in b.dirty_line_histo.iter().enumerate() {
                if c > 0 {
                    new += put(5, i as u64);
                }
            }
            for (i, &c) in b.lrw_age_histo.iter().enumerate() {
                if c > 0 {
                    new += put(6, i as u64);
                }
            }
        }
        if let Some(j) = &snap.journal {
            new += put(7, mag_bucket(j.fill_entries));
            new += put(8, mag_bucket(j.reserved_entries));
            new += put(9, u64::from(j.open_txs > 0));
        }
        if let Some(c) = &snap.cache {
            new += put(10, mag_bucket(c.dirty_pages));
        }
        new
    }

    /// Folds the shape of one recorded crash schedule: the magnitude of
    /// persistence boundaries the script crosses. Returns new points.
    pub fn add_schedule_depth(&mut self, ctx: u8, boundaries: u64) -> usize {
        usize::from(self.insert(CoverageDomain::Crash, ctx, mag_bucket(boundaries)))
    }

    /// Folds one crash-recover cycle: which boundary magnitude the crash
    /// landed on, whether it fired mid-op / tore the store buffer, and
    /// the recovery depth. Returns new points.
    pub fn add_crash_run(
        &mut self,
        ctx: u8,
        boundary: u64,
        mid_op: bool,
        torn: bool,
        entries_undone: u64,
    ) -> usize {
        let feature = (1 << 24)
            | (mag_bucket(boundary) << 16)
            | (u64::from(mid_op) << 15)
            | (u64::from(torn) << 14)
            | mag_bucket(entries_undone);
        usize::from(self.insert(CoverageDomain::Crash, ctx, feature))
    }

    /// Folds one operation outcome: `op_idx` is the script op class,
    /// `outcome` a small result class (0 = ok, else an error class).
    /// Returns new points.
    pub fn add_op_outcome(&mut self, ctx: u8, op_idx: u64, outcome: u64) -> usize {
        usize::from(self.insert(CoverageDomain::Op, ctx, (op_idx << 8) | (outcome & 0xFF)))
    }

    /// Merges `other` in, returning how many of its points were new.
    pub fn merge(&mut self, other: &CoverageMap) -> usize {
        let before = self.points.len();
        self.points.extend(other.points.iter().copied());
        self.points.len() - before
    }

    /// Total distinct points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Distinct points per domain, in [`COVERAGE_DOMAINS`] order.
    pub fn domain_counts(&self) -> [usize; COVERAGE_DOMAINS.len()] {
        let mut out = [0usize; COVERAGE_DOMAINS.len()];
        for &p in &self.points {
            let tag = (p >> 56) as usize;
            if tag < out.len() {
                out[tag] += 1;
            }
        }
        out
    }

    /// One-line deterministic summary:
    /// `points=N trace=a site=b state=c crash=d op=e`.
    pub fn summary(&self) -> String {
        let counts = self.domain_counts();
        let mut s = format!("points={}", self.len());
        for (d, c) in COVERAGE_DOMAINS.iter().zip(counts) {
            s.push_str(&format!(" {}={c}", d.label()));
        }
        s
    }

    /// Order-independent FNV-1a digest of the point set — two maps with
    /// the same points always digest identically.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &p in &self.points {
            for b in p.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mag_bucket_classes() {
        assert_eq!(mag_bucket(0), 0);
        assert_eq!(mag_bucket(1), 1);
        assert_eq!(mag_bucket(2), 2);
        assert_eq!(mag_bucket(3), 2);
        assert_eq!(mag_bucket(4), 3);
        assert_eq!(mag_bucket(1023), 10);
        assert_eq!(mag_bucket(1024), 11);
    }

    #[test]
    fn trace_events_bucket_not_collapse() {
        let mut m = CoverageMap::new();
        // Same kind, same magnitude: one point.
        assert_eq!(
            m.add_trace(0, &TraceEvent::WatermarkLow { free: 10, low: 12 }),
            1
        );
        assert_eq!(
            m.add_trace(0, &TraceEvent::WatermarkLow { free: 11, low: 12 }),
            0
        );
        // Different magnitude: new point.
        assert_eq!(
            m.add_trace(
                0,
                &TraceEvent::WatermarkLow {
                    free: 100,
                    low: 120
                }
            ),
            1
        );
        // Different context (file system): new point.
        assert_eq!(
            m.add_trace(1, &TraceEvent::WatermarkLow { free: 10, low: 12 }),
            1
        );
        // BBM flip direction is part of the feature.
        let flip = |to_lazy| TraceEvent::BbmFlip {
            ino: 1,
            iblk: 0,
            to_lazy,
            n_cw: 8,
            n_cf: 2,
            l_dram: 40,
            l_nvmm: 200,
            sync_age_ns: 0,
        };
        assert_eq!(m.add_trace(0, &flip(true)), 1);
        assert_eq!(m.add_trace(0, &flip(false)), 1);
        assert_eq!(m.add_trace(0, &flip(true)), 0);
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn merge_counts_new_points_and_digest_is_stable() {
        let mut a = CoverageMap::new();
        a.add_op_outcome(0, 1, 0);
        a.add_op_outcome(0, 2, 0);
        let mut b = CoverageMap::new();
        b.add_op_outcome(0, 2, 0);
        b.add_op_outcome(0, 3, 1);
        // Insert in the other order: digests must agree (order-free).
        let mut b2 = CoverageMap::new();
        b2.add_op_outcome(0, 3, 1);
        b2.add_op_outcome(0, 2, 0);
        assert_eq!(b.digest(), b2.digest());
        assert_eq!(a.merge(&b), 1);
        assert_eq!(a.len(), 3);
        assert_eq!(a.merge(&b), 0);
    }

    #[test]
    fn crash_and_summary() {
        let mut m = CoverageMap::new();
        assert_eq!(m.add_schedule_depth(2, 37), 1);
        assert_eq!(m.add_schedule_depth(2, 63), 0, "same magnitude");
        assert_eq!(m.add_crash_run(2, 5, true, false, 3), 1);
        assert_eq!(m.add_crash_run(2, 5, false, false, 3), 1);
        assert_eq!(m.add_crash_run(2, 4, true, false, 2), 0, "same buckets");
        let s = m.summary();
        assert!(s.starts_with("points=3"), "{s}");
        assert!(s.contains("crash=3") && s.contains("trace=0"), "{s}");
        let counts = m.domain_counts();
        assert_eq!(counts[CoverageDomain::Crash as usize], 3);
    }

    #[test]
    fn state_features_cover_watermark_regions() {
        use crate::snapshot::{BufferSnap, FsSnapshot};
        let snap = |free| FsSnapshot {
            buffer: Some(BufferSnap {
                capacity_blocks: 64,
                free_blocks: free,
                low_blocks: 8,
                high_blocks: 16,
                ..BufferSnap::default()
            }),
            ..FsSnapshot::default()
        };
        let mut m = CoverageMap::new();
        let above = m.add_state(0, &snap(32));
        assert!(above > 0);
        // Same region again: nothing new.
        assert_eq!(m.add_state(0, &snap(40)), 0);
        // Crossing under Low_f is a new state class.
        assert!(m.add_state(0, &snap(4)) > 0);
        assert!(m.add_state(0, &snap(12)) > 0, "between the watermarks");
    }
}
