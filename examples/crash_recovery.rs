//! Crash consistency demo: HiNFS's ordered data mode over the PMFS undo
//! journal.
//!
//! The device tracks its persistence domain, so `crash()` drops exactly
//! the stores that never reached NVMM — like pulling the power cord. After
//! the crash we remount, let journal recovery run, and check the paper's
//! §4.1 guarantee: *metadata never points at data that was not persisted*.
//!
//! ```text
//! cargo run --example crash_recovery
//! ```

use hinfs_suite::prelude::*;

fn main() {
    let env = SimEnv::new_virtual(CostModel::default());
    // `new_tracked` keeps a shadow persistent image for crash simulation.
    let dev = NvmmDevice::new_tracked(env.clone(), 128 << 20);
    let fs = Hinfs::mkfs(
        dev.clone(),
        PmfsOptions::default(),
        HinfsConfig::default().with_buffer_bytes(8 << 20),
    )
    .expect("mkfs");

    let fd = fs
        .open("/journal.db", OpenFlags::RDWR | OpenFlags::CREATE)
        .expect("open");

    // Phase 1: durable prefix — written and fsynced.
    fs.write(fd, 0, &vec![1u8; 8192]).expect("write");
    fs.fsync(fd).expect("fsync");
    println!("phase 1: 8 KiB written and fsynced (durable)");

    // Phase 2: lazy extension — buffered in DRAM, never synced.
    fs.write(fd, 8192, &vec![2u8; 16384]).expect("write");
    println!(
        "phase 2: 16 KiB more written, NOT fsynced; file size now {} B, {} dirty buffer blocks",
        fs.fstat(fd).expect("fstat").size,
        fs.dirty_blocks(),
    );

    // Power failure.
    dev.crash();
    println!("-- crash --");

    // Remount: PMFS journal recovery rolls back the uncommitted
    // size-extension transaction (its commit record was waiting for the
    // buffered data that never reached NVMM).
    let fs2 = Pmfs::mount(dev.clone()).expect("recover + mount");
    let stats = fs2.recovery_stats();
    println!(
        "recovery: scanned {} journal entries, rolled back {} transaction(s)",
        stats.scanned, stats.txs_undone
    );

    let st = fs2.stat("/journal.db").expect("stat");
    println!("after recovery: size = {} B", st.size);
    assert_eq!(
        st.size, 8192,
        "ordered mode: the unsynced extension must not survive"
    );
    let fd = fs2.open("/journal.db", OpenFlags::READ).expect("open");
    let mut buf = vec![0u8; 8192];
    fs2.read(fd, 0, &mut buf).expect("read");
    assert!(buf.iter().all(|&b| b == 1), "fsynced data intact");
    fs2.close(fd).expect("close");
    fs2.unmount().expect("unmount");
    println!("ok: fsynced data survived, unsynced metadata rolled back cleanly");
}
