//! The metrics registry: one place every subsystem's counters, gauges and
//! histograms funnel through.
//!
//! Subsystems keep their own cheap atomic counter structs and implement
//! [`MetricSource`]; the registry holds `Arc`s to them and materialises a
//! [`RegistrySnapshot`] on demand. Snapshots support deltas (`since`),
//! Prometheus-style text exposition and a JSON rendering, so one mechanism
//! serves interactive dumps, per-phase workload reports and tests.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histo::HistoSnapshot;

/// Receives one subsystem's metrics during collection.
pub trait Visitor {
    /// A monotonically increasing counter.
    fn counter(&mut self, name: &str, value: u64);
    /// A point-in-time level (may go down).
    fn gauge(&mut self, name: &str, value: u64);
    /// A sample distribution.
    fn histo(&mut self, name: &str, snap: HistoSnapshot);
}

/// Anything that can report metrics into a [`Visitor`].
pub trait MetricSource: Send + Sync {
    /// Reports every metric this source owns. Must be cheap enough to call
    /// at phase boundaries (no heavy locks, no I/O).
    fn collect(&self, out: &mut dyn Visitor);
}

/// A handle to a registry-owned counter (for code without its own stats
/// struct, e.g. experiment drivers marking phases).
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The registry. Cloneable via `Arc`; all methods take `&self`.
#[derive(Default)]
pub struct MetricsRegistry {
    sources: Mutex<Vec<(String, Arc<dyn MetricSource>)>>,
    owned: Mutex<Vec<(String, Counter)>>,
    help: Mutex<BTreeMap<String, String>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("sources", &self.sources.lock().unwrap().len())
            .field("owned", &self.owned.lock().unwrap().len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers a source. `scope` is prepended to every metric name the
    /// source reports (use `""` for sources whose names are already
    /// prefixed; a non-empty scope disambiguates multiple instances).
    pub fn register(&self, scope: &str, source: Arc<dyn MetricSource>) {
        self.sources
            .lock()
            .unwrap()
            .push((scope.to_string(), source));
    }

    /// Returns the registry-owned counter named `name`, creating it at
    /// zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut owned = self.owned.lock().unwrap();
        if let Some((_, c)) = owned.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter(Arc::new(AtomicU64::new(0)));
        owned.push((name.to_string(), c.clone()));
        c
    }

    /// Attaches `# HELP` text to a metric family for the Prometheus
    /// exposition. Last call per name wins.
    pub fn describe(&self, name: &str, help: &str) {
        self.help
            .lock()
            .unwrap()
            .insert(name.to_string(), help.to_string());
    }

    /// Collects every source into a snapshot. Metrics reported under the
    /// same final name are summed (counters, histograms) or last-wins
    /// (gauges).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut snap = RegistrySnapshot {
            help: self.help.lock().unwrap().clone(),
            ..RegistrySnapshot::default()
        };
        for (name, c) in self.owned.lock().unwrap().iter() {
            *snap.counters.entry(name.clone()).or_insert(0) += c.get();
        }
        for (scope, source) in self.sources.lock().unwrap().iter() {
            let mut v = ScopedVisitor {
                scope,
                snap: &mut snap,
            };
            source.collect(&mut v);
        }
        snap
    }
}

struct ScopedVisitor<'a> {
    scope: &'a str,
    snap: &'a mut RegistrySnapshot,
}

impl ScopedVisitor<'_> {
    fn name(&self, name: &str) -> String {
        format!("{}{}", self.scope, name)
    }
}

impl Visitor for ScopedVisitor<'_> {
    fn counter(&mut self, name: &str, value: u64) {
        *self.snap.counters.entry(self.name(name)).or_insert(0) += value;
    }

    fn gauge(&mut self, name: &str, value: u64) {
        self.snap.gauges.insert(self.name(name), value);
    }

    fn histo(&mut self, name: &str, snap: HistoSnapshot) {
        match self.snap.histos.entry(self.name(name)) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(snap);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(&snap),
        }
    }
}

/// All metrics at one instant, keyed by final (scoped) name.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Levels.
    pub gauges: BTreeMap<String, u64>,
    /// Distributions.
    pub histos: BTreeMap<String, HistoSnapshot>,
    /// `# HELP` text per family, from [`MetricsRegistry::describe`].
    pub help: BTreeMap<String, String>,
}

impl RegistrySnapshot {
    /// A counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// A histogram by name.
    pub fn histo(&self, name: &str) -> Option<&HistoSnapshot> {
        self.histos.get(name)
    }

    /// The delta from `earlier` to `self`: counters and histograms are
    /// diffed (a name absent earlier counts from zero), gauges keep their
    /// later value.
    pub fn since(&self, earlier: &RegistrySnapshot) -> RegistrySnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
            .collect();
        let histos = self
            .histos
            .iter()
            .map(|(k, v)| {
                let d = match earlier.histos.get(k) {
                    Some(e) => v.since(e),
                    None => v.clone(),
                };
                (k.clone(), d)
            })
            .collect();
        RegistrySnapshot {
            counters,
            gauges: self.gauges.clone(),
            histos,
            help: self.help.clone(),
        }
    }

    /// Prometheus text exposition, conforming to the text-format grammar:
    /// per family exactly one `# TYPE` (and one `# HELP` when registered
    /// via [`MetricsRegistry::describe`]) immediately before its samples,
    /// label values escaped per the spec. Histograms render as summaries
    /// with `quantile` labels plus a separate `<name>_max` gauge family
    /// (`_max` is not part of the summary grammar).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let header = |out: &mut String, name: &str, kind: &str| {
            if let Some(h) = self.help.get(name) {
                out.push_str(&format!("# HELP {name} {}\n", escape_help(h)));
            }
            out.push_str(&format!("# TYPE {name} {kind}\n"));
        };
        for (name, v) in &self.counters {
            header(&mut out, name, "counter");
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            header(&mut out, name, "gauge");
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, h) in &self.histos {
            let (p50, p90, p99, p999) = h.percentiles();
            header(&mut out, name, "summary");
            for (q, v) in [("0.5", p50), ("0.9", p90), ("0.99", p99), ("0.999", p999)] {
                out.push_str(&format!(
                    "{name}{{quantile=\"{}\"}} {v}\n",
                    escape_label_value(q)
                ));
            }
            out.push_str(&format!("{name}_sum {}\n", h.sum()));
            out.push_str(&format!("{name}_count {}\n", h.count()));
            let max_name = format!("{name}_max");
            header(&mut out, &max_name, "gauge");
            out.push_str(&format!("{max_name} {}\n", h.max()));
        }
        out
    }

    /// JSON rendering (stable key order; histograms as percentile
    /// summaries).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_map(
            &mut out,
            self.counters.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\"gauges\":{");
        push_map(
            &mut out,
            self.gauges.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\"histos\":{");
        push_map(
            &mut out,
            self.histos.iter().map(|(k, h)| {
                let (p50, p90, p99, p999) = h.percentiles();
                (
                    k,
                    format!(
                        "{{\"count\":{},\"sum\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"max\":{}}}",
                        h.count(),
                        h.sum(),
                        h.mean(),
                        p50,
                        p90,
                        p99,
                        p999,
                        h.max()
                    ),
                )
            }),
        );
        out.push_str("}}");
        out
    }
}

fn push_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a String, String)>) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{}\":{}", escape_json(k), v));
    }
}

/// Escapes a label value per the exposition format: backslash, double
/// quote and line feed.
fn escape_label_value(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '\\' => "\\\\".chars().collect::<Vec<_>>(),
            '"' => "\\\"".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Escapes `# HELP` text per the exposition format: backslash and line
/// feed only.
fn escape_help(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '\\' => "\\\\".chars().collect::<Vec<_>>(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histo::Histo;

    struct FakeSource {
        hits: AtomicU64,
    }

    impl MetricSource for FakeSource {
        fn collect(&self, out: &mut dyn Visitor) {
            out.counter("hits", self.hits.load(Ordering::Relaxed));
            out.gauge("level", 3);
            let h = Histo::new();
            h.record(10);
            h.record(20);
            out.histo("lat_ns", h.snapshot());
        }
    }

    #[test]
    fn scoped_collection_and_lookup() {
        let reg = MetricsRegistry::new();
        let src = Arc::new(FakeSource {
            hits: AtomicU64::new(5),
        });
        reg.register("fs0_", src.clone());
        reg.register("fs1_", src.clone());
        let snap = reg.snapshot();
        assert_eq!(snap.counter("fs0_hits"), 5);
        assert_eq!(snap.counter("fs1_hits"), 5);
        assert_eq!(snap.counter("absent"), 0);
        assert_eq!(snap.gauge("fs0_level"), 3);
        assert_eq!(snap.histo("fs0_lat_ns").unwrap().count(), 2);
    }

    #[test]
    fn same_name_sources_sum() {
        let reg = MetricsRegistry::new();
        let a = Arc::new(FakeSource {
            hits: AtomicU64::new(2),
        });
        let b = Arc::new(FakeSource {
            hits: AtomicU64::new(3),
        });
        reg.register("", a);
        reg.register("", b);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("hits"), 5);
        assert_eq!(snap.histo("lat_ns").unwrap().count(), 4);
    }

    #[test]
    fn owned_counters_and_snapshot_monotonicity() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("phases_done");
        let c2 = reg.counter("phases_done");
        c.inc();
        c2.add(2);
        assert_eq!(c.get(), 3, "same-name handles share the cell");
        let s1 = reg.snapshot();
        c.inc();
        let s2 = reg.snapshot();
        // Every counter is monotone across snapshots...
        for (name, v1) in &s1.counters {
            assert!(s2.counter(name) >= *v1, "{name} went backwards");
        }
        // ...and since() reports exactly the growth.
        let d = s2.since(&s1);
        assert_eq!(d.counter("phases_done"), 1);
    }

    #[test]
    fn since_diffs_histograms_and_keeps_gauges() {
        let reg = MetricsRegistry::new();
        let src = Arc::new(FakeSource {
            hits: AtomicU64::new(1),
        });
        reg.register("", src.clone());
        let s1 = reg.snapshot();
        src.hits.store(11, Ordering::Relaxed);
        let s2 = reg.snapshot();
        let d = s2.since(&s1);
        assert_eq!(d.counter("hits"), 10);
        assert_eq!(d.gauge("level"), 3, "gauges carry the later value");
        assert_eq!(d.histo("lat_ns").unwrap().count(), 0, "histo unchanged");
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = MetricsRegistry::new();
        reg.register(
            "",
            Arc::new(FakeSource {
                hits: AtomicU64::new(7),
            }),
        );
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE hits counter\nhits 7\n"), "{text}");
        assert!(text.contains("# TYPE level gauge\nlevel 3\n"), "{text}");
        assert!(text.contains("# TYPE lat_ns summary\n"), "{text}");
        assert!(text.contains("lat_ns{quantile=\"0.5\"}"), "{text}");
        assert!(text.contains("lat_ns_count 2\n"), "{text}");
        assert!(text.contains("lat_ns_max 20\n"), "{text}");
    }

    #[test]
    fn exposition_conforms_to_the_text_format_grammar() {
        let reg = MetricsRegistry::new();
        reg.register(
            "",
            Arc::new(FakeSource {
                hits: AtomicU64::new(7),
            }),
        );
        reg.describe("hits", "total cache hits, with \\ and\nnewline");
        reg.describe("lat_ns", "operation latency");
        let text = reg.snapshot().to_prometheus();

        // Line-by-line parse against the exposition grammar.
        let name_ok = |n: &str| {
            !n.is_empty()
                && n.chars().next().unwrap().is_ascii_alphabetic()
                && n.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        };
        let mut type_of: BTreeMap<String, String> = BTreeMap::new();
        let mut help_seen: BTreeMap<String, u32> = BTreeMap::new();
        let mut current_family: Option<String> = None;
        for line in text.lines() {
            assert!(!line.is_empty(), "blank line in exposition");
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, help) = rest.split_once(' ').expect("HELP has text");
                assert!(name_ok(name), "bad family name {name:?}");
                assert!(!help.contains('\n'));
                *help_seen.entry(name.to_string()).or_insert(0) += 1;
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest.split_once(' ').expect("TYPE has kind");
                assert!(name_ok(name), "bad family name {name:?}");
                assert!(
                    ["counter", "gauge", "summary", "histogram", "untyped"].contains(&kind),
                    "bad TYPE {kind:?}"
                );
                assert!(
                    type_of.insert(name.to_string(), kind.to_string()).is_none(),
                    "# TYPE {name} declared twice"
                );
                current_family = Some(name.to_string());
                continue;
            }
            assert!(!line.starts_with('#'), "unknown comment {line:?}");
            // A sample: name[{labels}] value — and it must belong to the
            // family whose TYPE line is in force.
            let (name_labels, value) = line.rsplit_once(' ').expect("sample has value");
            assert!(value.parse::<f64>().is_ok(), "bad value {value:?}");
            let name = match name_labels.split_once('{') {
                Some((n, labels)) => {
                    let labels = labels.strip_suffix('}').expect("labels close");
                    for pair in labels.split(',') {
                        let (k, v) = pair.split_once('=').expect("label pair");
                        assert!(name_ok(k), "bad label name {k:?}");
                        assert!(v.starts_with('"') && v.ends_with('"'), "unquoted {v:?}");
                    }
                    n
                }
                None => name_labels,
            };
            let fam = current_family.as_deref().expect("sample before any TYPE");
            let base = match type_of.get(fam).map(String::as_str) {
                Some("summary") => name
                    .strip_suffix("_sum")
                    .or_else(|| name.strip_suffix("_count"))
                    .unwrap_or(name),
                _ => name,
            };
            assert_eq!(base, fam, "sample {name} outside its family block");
        }
        for (name, n) in help_seen {
            assert_eq!(n, 1, "# HELP {name} repeated");
            assert!(type_of.contains_key(&name), "HELP without TYPE for {name}");
        }
        // The registered help text came through, escaped.
        assert!(
            text.contains("# HELP hits total cache hits, with \\\\ and\\nnewline"),
            "{text}"
        );
        // Label values pass through the escaper.
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_is_wellformed_enough() {
        let reg = MetricsRegistry::new();
        reg.register(
            "",
            Arc::new(FakeSource {
                hits: AtomicU64::new(1),
            }),
        );
        let json = reg.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"hits\":1"), "{json}");
        assert!(json.contains("\"p50\":"), "{json}");
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }
}
