//! PMFS direct-access data path.
//!
//! Reads copy straight from NVMM to the user buffer; writes copy straight
//! from the user buffer to NVMM with non-temporal stores, so data is
//! durable when the write returns. This is the single-copy behaviour of
//! Fig 3(b) — and the reason every write pays NVMM's long write latency on
//! the critical path, which Fig 1 quantifies.
//!
//! All functions operate on an inode's in-memory state; the caller holds
//! the inode lock and persists inode-core changes through its journal
//! transaction afterwards.

use fskit::{FsError, Result};
use nvmm::{Cat, NvmmDevice, BLOCK_SIZE};

use crate::alloc::Allocator;
use crate::inode::InodeMem;
use crate::layout::Layout;
use crate::tree;

/// Maximum file size (1 TiB; well within a height-3 tree).
pub const MAX_FILE_SIZE: u64 = 1 << 40;

/// Reads up to `buf.len()` bytes at `off`. Returns bytes read (short at
/// EOF). Holes read as zeroes.
pub fn read_at(dev: &NvmmDevice, mem: &InodeMem, off: u64, buf: &mut [u8]) -> usize {
    if off >= mem.size {
        return 0;
    }
    let n = buf.len().min((mem.size - off) as usize);
    let mut done = 0;
    while done < n {
        let pos = off + done as u64;
        let iblk = pos / BLOCK_SIZE as u64;
        let in_blk = (pos % BLOCK_SIZE as u64) as usize;
        let chunk = (BLOCK_SIZE - in_blk).min(n - done);
        match tree::lookup(dev, mem, iblk) {
            Some(pblk) => {
                dev.read(
                    Cat::UserRead,
                    Layout::block_off(pblk) + in_blk as u64,
                    &mut buf[done..done + chunk],
                );
            }
            None => {
                // Hole: zero-fill at DRAM copy cost.
                buf[done..done + chunk].fill(0);
                dev.env().charge_dram_copy(Cat::UserRead, chunk);
            }
        }
        done += chunk;
    }
    n
}

/// Writes `data` at `off` with direct, durable stores. Allocates blocks as
/// needed (zeroing the uncovered parts of fresh blocks) and updates
/// `mem.size`/`mem.blocks`/`mem.mtime` in memory. Always returns `true`:
/// `mtime` advances, so the caller must journal the inode core.
pub fn write_at(
    dev: &NvmmDevice,
    alloc: &Allocator,
    mem: &mut InodeMem,
    off: u64,
    data: &[u8],
    now: u64,
) -> Result<bool> {
    if data.is_empty() {
        return Ok(false);
    }
    let end = off
        .checked_add(data.len() as u64)
        .filter(|&e| e <= MAX_FILE_SIZE)
        .ok_or(FsError::FileTooLarge)?;
    let mut done = 0;
    while done < data.len() {
        let pos = off + done as u64;
        let iblk = pos / BLOCK_SIZE as u64;
        let in_blk = (pos % BLOCK_SIZE as u64) as usize;
        let chunk = (BLOCK_SIZE - in_blk).min(data.len() - done);
        let pblk = match tree::lookup(dev, mem, iblk) {
            Some(p) => p,
            None => {
                let p = alloc.alloc()?;
                let base = Layout::block_off(p);
                // Zero the parts of the fresh block the write leaves
                // uncovered so holes and later extensions read as zeroes.
                if in_blk > 0 {
                    dev.zero_persist(Cat::UserWrite, base, in_blk);
                }
                let tail = in_blk + chunk;
                if tail < BLOCK_SIZE {
                    dev.zero_persist(Cat::UserWrite, base + tail as u64, BLOCK_SIZE - tail);
                }
                tree::insert(dev, alloc, mem, iblk, p)?;
                mem.blocks += 1;
                p
            }
        };
        dev.write_persist(
            Cat::UserWrite,
            Layout::block_off(pblk) + in_blk as u64,
            &data[done..done + chunk],
        );
        done += chunk;
    }
    dev.sfence();
    if end > mem.size {
        mem.size = end;
    }
    mem.mtime = now;
    Ok(true)
}

/// Truncates (or extends with a hole) to `size`. Updates `mem` in memory;
/// returns `true` when the inode core changed.
pub fn truncate(
    dev: &NvmmDevice,
    alloc: &Allocator,
    mem: &mut InodeMem,
    size: u64,
    now: u64,
) -> Result<bool> {
    if size > MAX_FILE_SIZE {
        return Err(FsError::FileTooLarge);
    }
    if size == mem.size {
        return Ok(false);
    }
    if size < mem.size {
        let keep_blocks = size.div_ceil(BLOCK_SIZE as u64);
        let freed = tree::remove_from(dev, alloc, mem, keep_blocks);
        mem.blocks -= freed;
        // Zero the tail of the new last block so a later extension reads
        // zeroes, not stale bytes.
        let in_blk = (size % BLOCK_SIZE as u64) as usize;
        if in_blk != 0 {
            if let Some(pblk) = tree::lookup(dev, mem, size / BLOCK_SIZE as u64) {
                dev.zero_persist(
                    Cat::UserWrite,
                    Layout::block_off(pblk) + in_blk as u64,
                    BLOCK_SIZE - in_blk,
                );
            }
        }
        dev.sfence();
    }
    mem.size = size;
    mem.mtime = now;
    Ok(true)
}

/// Frees every data block and tree node of the file (unlink path).
pub fn free_all(dev: &NvmmDevice, alloc: &Allocator, mem: &mut InodeMem) {
    let freed = tree::remove_from(dev, alloc, mem, 0);
    mem.blocks -= freed;
    debug_assert_eq!(mem.blocks, 0, "block accounting drift");
    mem.size = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use fskit::FileType;
    use nvmm::{CostModel, SimEnv};
    use std::sync::Arc;

    fn setup() -> (Arc<NvmmDevice>, Allocator, InodeMem) {
        let blocks = 8192u64;
        let dev = NvmmDevice::new(
            SimEnv::new_virtual(CostModel::default()),
            blocks as usize * BLOCK_SIZE,
        );
        let layout = Layout::compute(blocks, 16, 128).unwrap();
        (
            dev,
            Allocator::new_empty(&layout),
            InodeMem::new(FileType::File, 0),
        )
    }

    #[test]
    fn write_read_roundtrip() {
        let (dev, alloc, mut mem) = setup();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        write_at(&dev, &alloc, &mut mem, 0, &data, 1).unwrap();
        assert_eq!(mem.size, 10_000);
        assert_eq!(mem.blocks, 3);
        let mut buf = vec![0u8; 10_000];
        assert_eq!(read_at(&dev, &mem, 0, &mut buf), 10_000);
        assert_eq!(buf, data);
    }

    #[test]
    fn unaligned_overwrite() {
        let (dev, alloc, mut mem) = setup();
        write_at(&dev, &alloc, &mut mem, 0, &[1u8; 8192], 1).unwrap();
        write_at(&dev, &alloc, &mut mem, 1000, &[2u8; 3000], 2).unwrap();
        let mut buf = vec![0u8; 8192];
        read_at(&dev, &mem, 0, &mut buf);
        assert!(buf[..1000].iter().all(|&b| b == 1));
        assert!(buf[1000..4000].iter().all(|&b| b == 2));
        assert!(buf[4000..].iter().all(|&b| b == 1));
        assert_eq!(mem.size, 8192, "overwrite does not grow");
    }

    #[test]
    fn sparse_write_reads_zero_holes() {
        let (dev, alloc, mut mem) = setup();
        write_at(&dev, &alloc, &mut mem, 3 * 4096 + 100, b"tail", 1).unwrap();
        assert_eq!(mem.size, 3 * 4096 + 104);
        assert_eq!(mem.blocks, 1, "only the written block is allocated");
        let mut buf = vec![0xffu8; 4096];
        assert_eq!(read_at(&dev, &mem, 0, &mut buf), 4096);
        assert!(buf.iter().all(|&b| b == 0), "hole reads zero");
        let mut tail = [0u8; 4];
        read_at(&dev, &mem, 3 * 4096 + 100, &mut tail);
        assert_eq!(&tail, b"tail");
    }

    #[test]
    fn fresh_partial_block_is_zero_padded() {
        let (dev, alloc, mut mem) = setup();
        write_at(&dev, &alloc, &mut mem, 100, b"mid", 1).unwrap();
        // Bytes 0..100 of the block were never written but are allocated.
        let mut head = [0xffu8; 100];
        read_at(&dev, &mem, 0, &mut head);
        assert!(head.iter().all(|&b| b == 0));
    }

    #[test]
    fn read_past_eof_is_short() {
        let (dev, alloc, mut mem) = setup();
        write_at(&dev, &alloc, &mut mem, 0, &[7u8; 100], 1).unwrap();
        let mut buf = [0u8; 200];
        assert_eq!(read_at(&dev, &mem, 0, &mut buf), 100);
        assert_eq!(read_at(&dev, &mem, 100, &mut buf), 0);
        assert_eq!(read_at(&dev, &mem, 5000, &mut buf), 0);
    }

    #[test]
    fn truncate_shrink_frees_and_zeroes() {
        let (dev, alloc, mut mem) = setup();
        let free0 = alloc.free_blocks();
        write_at(&dev, &alloc, &mut mem, 0, &[9u8; 3 * 4096], 1).unwrap();
        truncate(&dev, &alloc, &mut mem, 4096 + 50, 2).unwrap();
        assert_eq!(mem.size, 4096 + 50);
        assert_eq!(mem.blocks, 2);
        // Extend again: the region beyond the old cut must read zero.
        truncate(&dev, &alloc, &mut mem, 3 * 4096, 3).unwrap();
        let mut buf = vec![0xffu8; 4096];
        read_at(&dev, &mem, 4096, &mut buf);
        assert!(buf[..50].iter().all(|&b| b == 9));
        assert!(buf[50..].iter().all(|&b| b == 0), "stale tail zeroed");
        // Full free returns all blocks.
        free_all(&dev, &alloc, &mut mem);
        assert_eq!(mem.size, 0);
        assert_eq!(alloc.free_blocks(), free0);
    }

    #[test]
    fn write_too_large_rejected() {
        let (dev, alloc, mut mem) = setup();
        assert_eq!(
            write_at(&dev, &alloc, &mut mem, MAX_FILE_SIZE, b"x", 1),
            Err(FsError::FileTooLarge)
        );
    }

    #[test]
    fn writes_are_durable_without_fsync() {
        let blocks = 4096u64;
        let dev = NvmmDevice::new_tracked(
            SimEnv::new_virtual(CostModel::default()),
            blocks as usize * BLOCK_SIZE,
        );
        let layout = Layout::compute(blocks, 16, 128).unwrap();
        let alloc = Allocator::new_empty(&layout);
        let mut mem = InodeMem::new(FileType::File, 0);
        write_at(&dev, &alloc, &mut mem, 0, &[3u8; 5000], 1).unwrap();
        dev.crash();
        let mut buf = vec![0u8; 5000];
        assert_eq!(read_at(&dev, &mem, 0, &mut buf), 5000);
        assert!(buf.iter().all(|&b| b == 3), "direct writes survive a crash");
    }
}
