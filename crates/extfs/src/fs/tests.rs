use std::sync::Arc;

use fskit::{FileSystem, FsError, OpenFlags};
use nvmm::{Cat, CostModel, NvmmDevice, SimEnv, BLOCK_SIZE};

use crate::fs::{ExtOptions, Extfs};
use crate::ExtMode;

fn small_opts() -> ExtOptions {
    ExtOptions {
        journal_blocks: 64,
        inode_count: 512,
        cache_pages: 256,
        ..ExtOptions::default()
    }
}

fn fresh(mode: ExtMode) -> (Arc<NvmmDevice>, Arc<Extfs>) {
    let env = SimEnv::new_virtual(CostModel::default());
    let dev = NvmmDevice::new_tracked(env, 16384 * BLOCK_SIZE);
    let fs = Extfs::mkfs(dev.clone(), mode, small_opts()).unwrap();
    (dev, fs)
}

fn rw_create() -> OpenFlags {
    OpenFlags::RDWR | OpenFlags::CREATE
}

fn all_modes() -> [ExtMode; 3] {
    [ExtMode::Ext2, ExtMode::Ext4, ExtMode::Ext4Dax]
}

#[test]
fn write_read_roundtrip_all_modes() {
    for mode in all_modes() {
        let (_d, fs) = fresh(mode);
        let fd = fs.open("/f", rw_create()).unwrap();
        let data: Vec<u8> = (0..25_000u32).map(|i| (i % 249) as u8).collect();
        assert_eq!(fs.write(fd, 0, &data).unwrap(), data.len());
        let mut buf = vec![0u8; data.len()];
        assert_eq!(fs.read(fd, 0, &mut buf).unwrap(), data.len());
        assert_eq!(buf, data, "{mode:?}");
        fs.close(fd).unwrap();
    }
}

#[test]
fn namespace_operations_all_modes() {
    for mode in all_modes() {
        let (_d, fs) = fresh(mode);
        fs.mkdir("/a").unwrap();
        fs.mkdir("/a/b").unwrap();
        let fd = fs.open("/a/b/f", rw_create()).unwrap();
        fs.write(fd, 0, b"x").unwrap();
        fs.close(fd).unwrap();
        assert_eq!(fs.stat("/a/b/f").unwrap().size, 1);
        assert_eq!(fs.rmdir("/a"), Err(FsError::DirectoryNotEmpty));
        fs.rename("/a/b/f", "/a/g").unwrap();
        assert_eq!(fs.stat("/a/g").unwrap().size, 1);
        fs.rmdir("/a/b").unwrap();
        fs.unlink("/a/g").unwrap();
        fs.rmdir("/a").unwrap();
        assert!(fs.readdir("/").unwrap().is_empty());
    }
}

#[test]
fn data_goes_through_page_cache_in_block_modes() {
    let (dev, fs) = fresh(ExtMode::Ext4);
    let fd = fs.open("/f", rw_create()).unwrap();
    let before = dev.stats().snapshot();
    fs.write(fd, 0, &vec![5u8; 8 * BLOCK_SIZE]).unwrap();
    let mid = dev.stats().snapshot().since(&before);
    assert!(
        mid.nvmm_bytes_written == 0,
        "writes parked in the page cache ({} bytes hit the device)",
        mid.nvmm_bytes_written
    );
    fs.fsync(fd).unwrap();
    let after = dev.stats().snapshot().since(&before);
    assert!(after.nvmm_bytes_written >= 8 * BLOCK_SIZE as u64);
    fs.close(fd).unwrap();
}

#[test]
fn dax_writes_hit_nvmm_immediately() {
    let (dev, fs) = fresh(ExtMode::Ext4Dax);
    let fd = fs.open("/f", rw_create()).unwrap();
    let before = dev.stats().snapshot();
    fs.write(fd, 0, &vec![5u8; 2 * BLOCK_SIZE]).unwrap();
    let delta = dev.stats().snapshot().since(&before);
    assert!(delta.nvmm_bytes_written >= 2 * BLOCK_SIZE as u64);
    // Survives a crash even without fsync (journal holds only metadata,
    // which was not yet committed — so re-mount, replay, and the *data*
    // must be there while size metadata may lag; fsync first to be exact).
    fs.fsync(fd).unwrap();
    dev.crash();
    drop((fd, fs));
    let fs2 = Extfs::mount(dev, ExtMode::Ext4Dax, small_opts()).unwrap();
    assert_eq!(fs2.stat("/f").unwrap().size, 2 * BLOCK_SIZE as u64);
    let fd = fs2.open("/f", OpenFlags::READ).unwrap();
    let mut buf = vec![0u8; BLOCK_SIZE];
    fs2.read(fd, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 5));
    fs2.close(fd).unwrap();
}

#[test]
fn double_copy_read_costs_more_than_dax() {
    let env = SimEnv::new_virtual(CostModel::default());
    let dev_blk = NvmmDevice::new(env.clone(), 8192 * BLOCK_SIZE);
    let ext = Extfs::mkfs(dev_blk, ExtMode::Ext4, small_opts()).unwrap();
    let dev_dax = NvmmDevice::new(env.clone(), 8192 * BLOCK_SIZE);
    let dax = Extfs::mkfs(dev_dax, ExtMode::Ext4Dax, small_opts()).unwrap();

    let data = vec![1u8; 64 * BLOCK_SIZE];
    let fd_e = ext.open("/f", rw_create()).unwrap();
    ext.write(fd_e, 0, &data).unwrap();
    ext.sync().unwrap();
    let fd_d = dax.open("/f", rw_create()).unwrap();
    dax.write(fd_d, 0, &data).unwrap();

    // Cold-cache read on ext4: fetch + copy-out (+ block layer). To make it
    // cold, use a fresh mount.
    ext.unmount().unwrap();
    let dev_blk = ext.device().byte_device().clone();
    drop(ext);
    let ext = Extfs::mount(dev_blk, ExtMode::Ext4, small_opts()).unwrap();
    let fd_e = ext.open("/f", OpenFlags::READ).unwrap();

    let mut buf = vec![0u8; 64 * BLOCK_SIZE];
    env.rebase();
    ext.read(fd_e, 0, &mut buf).unwrap();
    let t_ext = env.now();
    env.rebase();
    dax.read(fd_d, 0, &mut buf).unwrap();
    let t_dax = env.now();
    assert!(
        t_ext > t_dax * 2,
        "double copy + block layer ({t_ext} ns) should dwarf DAX ({t_dax} ns)"
    );
}

#[test]
fn ext4_fsync_metadata_survives_crash() {
    let (dev, fs) = fresh(ExtMode::Ext4);
    let fd = fs.open("/dir-survives", rw_create()).unwrap();
    fs.write(fd, 0, &[7u8; 5000]).unwrap();
    fs.fsync(fd).unwrap();
    dev.crash();
    drop((fd, fs));
    let fs2 = Extfs::mount(dev, ExtMode::Ext4, small_opts()).unwrap();
    let st = fs2.stat("/dir-survives").unwrap();
    assert_eq!(st.size, 5000);
    let fd = fs2.open("/dir-survives", OpenFlags::READ).unwrap();
    let mut buf = vec![0u8; 5000];
    fs2.read(fd, 0, &mut buf).unwrap();
    assert!(
        buf.iter().all(|&b| b == 7),
        "ordered mode: data before commit"
    );
    fs2.close(fd).unwrap();
}

#[test]
fn ext4_unsynced_create_lost_cleanly_on_crash() {
    let (dev, fs) = fresh(ExtMode::Ext4);
    // Establish a synced baseline file.
    let fd = fs.open("/base", rw_create()).unwrap();
    fs.fsync(fd).unwrap();
    fs.close(fd).unwrap();
    // Unsynced create: may vanish, but the fs must stay consistent.
    let fd = fs.open("/ghost", rw_create()).unwrap();
    fs.write(fd, 0, &[1u8; 100]).unwrap();
    dev.crash();
    drop((fd, fs));
    let fs2 = Extfs::mount(dev, ExtMode::Ext4, small_opts()).unwrap();
    assert!(fs2.stat("/base").is_ok());
    assert_eq!(fs2.stat("/ghost"), Err(FsError::NotFound));
    // And the namespace still works.
    let fd = fs2.open("/new", rw_create()).unwrap();
    fs2.close(fd).unwrap();
}

#[test]
fn remount_after_clean_unmount_all_modes() {
    for mode in all_modes() {
        let (dev, fs) = fresh(mode);
        let fd = fs.open("/keep", rw_create()).unwrap();
        fs.write(fd, 0, b"persistent data").unwrap();
        fs.close(fd).unwrap();
        let free = fs.free_blocks();
        fs.unmount().unwrap();
        drop(fs);
        let fs2 = Extfs::mount(dev, mode, small_opts()).unwrap();
        assert_eq!(fs2.free_blocks(), free, "{mode:?} bitmap persisted");
        let fd = fs2.open("/keep", OpenFlags::READ).unwrap();
        let mut buf = [0u8; 15];
        fs2.read(fd, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"persistent data");
        fs2.close(fd).unwrap();
    }
}

#[test]
fn unlink_frees_blocks_and_inode() {
    let (_d, fs) = fresh(ExtMode::Ext4);
    // Force the root directory block allocation first; it stays allocated.
    let fd = fs.open("/sibling", rw_create()).unwrap();
    fs.close(fd).unwrap();
    let free0 = fs.free_blocks();
    let fd = fs.open("/big", rw_create()).unwrap();
    fs.write(fd, 0, &vec![1u8; 100 * BLOCK_SIZE]).unwrap();
    fs.close(fd).unwrap();
    assert!(fs.free_blocks() < free0);
    fs.unlink("/big").unwrap();
    assert_eq!(fs.free_blocks(), free0, "data and indirect blocks freed");
    assert_eq!(fs.stat("/big"), Err(FsError::NotFound));
}

#[test]
fn large_file_uses_indirect_blocks() {
    let (_d, fs) = fresh(ExtMode::Ext4);
    let fd = fs.open("/large", rw_create()).unwrap();
    // 600 blocks: direct + single-indirect + into double-indirect.
    let chunk = vec![0xcdu8; 50 * BLOCK_SIZE];
    for i in 0..12u64 {
        fs.write(fd, i * chunk.len() as u64, &chunk).unwrap();
    }
    let st = fs.fstat(fd).unwrap();
    assert_eq!(st.size, 600 * BLOCK_SIZE as u64);
    assert_eq!(st.blocks, 600);
    let mut buf = vec![0u8; 100];
    fs.read(fd, 599 * BLOCK_SIZE as u64, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0xcd));
    fs.close(fd).unwrap();
}

#[test]
fn sparse_files_read_zero() {
    for mode in all_modes() {
        let (_d, fs) = fresh(mode);
        let fd = fs.open("/sparse", rw_create()).unwrap();
        fs.write(fd, 20 * BLOCK_SIZE as u64, b"end").unwrap();
        let st = fs.fstat(fd).unwrap();
        assert_eq!(st.blocks, 1, "{mode:?}");
        let mut buf = vec![0xffu8; BLOCK_SIZE];
        fs.read(fd, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "{mode:?} hole reads zero");
        fs.close(fd).unwrap();
    }
}

#[test]
fn fresh_partial_block_zero_padded() {
    for mode in all_modes() {
        let (_d, fs) = fresh(mode);
        let fd = fs.open("/p", rw_create()).unwrap();
        fs.write(fd, 100, b"mid").unwrap();
        let mut head = [0xffu8; 100];
        fs.read(fd, 0, &mut head).unwrap();
        assert!(head.iter().all(|&b| b == 0), "{mode:?}");
        fs.close(fd).unwrap();
    }
}

#[test]
fn truncate_shrink_and_regrow() {
    for mode in all_modes() {
        let (_d, fs) = fresh(mode);
        let fd = fs.open("/t", rw_create()).unwrap();
        fs.write(fd, 0, &[9u8; 3 * BLOCK_SIZE]).unwrap();
        fs.truncate(fd, BLOCK_SIZE as u64 + 50).unwrap();
        assert_eq!(fs.fstat(fd).unwrap().size, BLOCK_SIZE as u64 + 50);
        fs.truncate(fd, 3 * BLOCK_SIZE as u64).unwrap();
        let mut buf = vec![0xffu8; BLOCK_SIZE];
        fs.read(fd, BLOCK_SIZE as u64, &mut buf).unwrap();
        assert!(buf[..50].iter().all(|&b| b == 9), "{mode:?}");
        assert!(
            buf[50..].iter().all(|&b| b == 0),
            "{mode:?} stale tail zeroed"
        );
        fs.close(fd).unwrap();
    }
}

#[test]
fn cache_thrashing_preserves_data() {
    // Cache of 256 pages, working set of 600 blocks: constant eviction.
    let (_d, fs) = fresh(ExtMode::Ext2);
    let fd = fs.open("/thrash", rw_create()).unwrap();
    for i in 0..600u64 {
        let val = (i % 251) as u8;
        fs.write(fd, i * BLOCK_SIZE as u64, &vec![val; BLOCK_SIZE])
            .unwrap();
    }
    let (_, misses0) = fs.cache().hit_miss();
    let mut buf = vec![0u8; BLOCK_SIZE];
    for i in (0..600u64).step_by(37) {
        fs.read(fd, i * BLOCK_SIZE as u64, &mut buf).unwrap();
        let val = (i % 251) as u8;
        assert!(buf.iter().all(|&b| b == val), "block {i}");
    }
    let (_, misses1) = fs.cache().hit_miss();
    assert!(misses1 > misses0, "reads missed and refetched");
    fs.close(fd).unwrap();
}

#[test]
fn o_sync_forces_durability() {
    let (dev, fs) = fresh(ExtMode::Ext4);
    let fd = fs.open("/s", rw_create() | OpenFlags::SYNC).unwrap();
    fs.write(fd, 0, &[3u8; 1000]).unwrap();
    dev.crash();
    drop((fd, fs));
    let fs2 = Extfs::mount(dev, ExtMode::Ext4, small_opts()).unwrap();
    assert_eq!(fs2.stat("/s").unwrap().size, 1000);
}

#[test]
fn periodic_tick_commits_and_flushes() {
    let (_d, fs) = fresh(ExtMode::Ext4);
    let env = fs.env().clone();
    let fd = fs.open("/f", rw_create()).unwrap();
    fs.write(fd, 0, &[1u8; BLOCK_SIZE]).unwrap();
    assert!(fs.cache().dirty_pages() > 0);
    // Past the periodic commit and the dirty age: everything flushes.
    env.set_now(env.now() + 31_000_000_000);
    fs.tick(env.now());
    env.set_now(env.now() + 31_000_000_000);
    fs.tick(env.now());
    assert_eq!(fs.cache().dirty_pages(), 0);
    fs.close(fd).unwrap();
}

#[test]
fn read_only_fd_rejects_writes() {
    let (_d, fs) = fresh(ExtMode::Ext2);
    let fd = fs.open("/r", rw_create()).unwrap();
    fs.close(fd).unwrap();
    let fd = fs.open("/r", OpenFlags::READ).unwrap();
    assert_eq!(fs.write(fd, 0, b"x"), Err(FsError::BadFd));
    assert_eq!(fs.truncate(fd, 0), Err(FsError::BadFd));
    fs.close(fd).unwrap();
}

#[test]
fn metadata_ops_charge_block_layer_on_miss() {
    let (_d, fs) = fresh(ExtMode::Ext2);
    nvmm::ledger::reset();
    let fd = fs.open("/m", rw_create()).unwrap();
    fs.close(fd).unwrap();
    let snap = nvmm::ledger::snapshot();
    assert!(
        snap.get(Cat::BlockLayer) > 0,
        "metadata misses go through the block layer"
    );
}
