//! The classic ext2 block map: 12 direct pointers, one single-indirect and
//! one double-indirect block (512 pointers each), all accessed through the
//! buffer cache and journaled when modified.

use fskit::{FsError, Result};
use nvmm::{Cat, BLOCK_SIZE};

use crate::alloc::DiskBitmap;
use crate::cache::BufferCache;
use crate::inode::{ExtInodeMem, DOUBLE, NDIRECT, SINGLE};
use crate::jbd::Jbd;

/// Pointers per indirect block.
pub const PTRS: u64 = (BLOCK_SIZE / 8) as u64;

/// Largest mappable file block index + 1.
pub fn max_blocks() -> u64 {
    NDIRECT as u64 + PTRS + PTRS * PTRS
}

fn read_ptr(cache: &BufferCache, blk: u64, idx: u64) -> u64 {
    let mut b = [0u8; 8];
    cache.read(Cat::Meta, blk, (idx * 8) as usize, &mut b);
    u64::from_le_bytes(b)
}

fn write_ptr(cache: &BufferCache, jbd: &Jbd, blk: u64, idx: u64, v: u64, now: u64) {
    cache.write(Cat::Meta, blk, (idx * 8) as usize, &v.to_le_bytes(), now);
    jbd.add(cache, blk);
}

fn new_indirect(cache: &BufferCache, jbd: &Jbd, balloc: &DiskBitmap, now: u64) -> Result<u64> {
    let blk = balloc.alloc(cache, jbd, now)?;
    // Full-block zero write: no fetch, becomes journaled metadata.
    cache.write(Cat::Meta, blk, 0, &vec![0u8; BLOCK_SIZE], now);
    jbd.add(cache, blk);
    Ok(blk)
}

/// Resolves file block `iblk` to a device block, or `None` for a hole.
pub fn lookup(cache: &BufferCache, mem: &ExtInodeMem, iblk: u64) -> Option<u64> {
    if iblk < NDIRECT as u64 {
        let p = mem.ptrs[iblk as usize];
        return (p != 0).then_some(p);
    }
    let iblk = iblk - NDIRECT as u64;
    if iblk < PTRS {
        let ind = mem.ptrs[SINGLE];
        if ind == 0 {
            return None;
        }
        let p = read_ptr(cache, ind, iblk);
        return (p != 0).then_some(p);
    }
    let iblk = iblk - PTRS;
    if iblk < PTRS * PTRS {
        let dbl = mem.ptrs[DOUBLE];
        if dbl == 0 {
            return None;
        }
        let ind = read_ptr(cache, dbl, iblk / PTRS);
        if ind == 0 {
            return None;
        }
        let p = read_ptr(cache, ind, iblk % PTRS);
        return (p != 0).then_some(p);
    }
    None
}

/// Maps `iblk` to a (possibly fresh) device block, allocating indirect
/// blocks as needed. Returns `(device_block, freshly_allocated)`; the
/// caller journals the inode if `mem` changed.
pub fn ensure(
    cache: &BufferCache,
    jbd: &Jbd,
    balloc: &DiskBitmap,
    mem: &mut ExtInodeMem,
    iblk: u64,
    now: u64,
) -> Result<(u64, bool)> {
    if iblk >= max_blocks() {
        return Err(FsError::FileTooLarge);
    }
    if let Some(p) = lookup(cache, mem, iblk) {
        return Ok((p, false));
    }
    let data = balloc.alloc(cache, jbd, now)?;
    if iblk < NDIRECT as u64 {
        mem.ptrs[iblk as usize] = data;
        mem.blocks += 1;
        return Ok((data, true));
    }
    let rel = iblk - NDIRECT as u64;
    if rel < PTRS {
        if mem.ptrs[SINGLE] == 0 {
            mem.ptrs[SINGLE] = new_indirect(cache, jbd, balloc, now)?;
        }
        write_ptr(cache, jbd, mem.ptrs[SINGLE], rel, data, now);
        mem.blocks += 1;
        return Ok((data, true));
    }
    let rel = rel - PTRS;
    if mem.ptrs[DOUBLE] == 0 {
        mem.ptrs[DOUBLE] = new_indirect(cache, jbd, balloc, now)?;
    }
    let dbl = mem.ptrs[DOUBLE];
    let mut ind = read_ptr(cache, dbl, rel / PTRS);
    if ind == 0 {
        ind = new_indirect(cache, jbd, balloc, now)?;
        write_ptr(cache, jbd, dbl, rel / PTRS, ind, now);
    }
    write_ptr(cache, jbd, ind, rel % PTRS, data, now);
    mem.blocks += 1;
    Ok((data, true))
}

/// Calls `f(iblk, device_block)` for every mapped block, ascending.
pub fn for_each(cache: &BufferCache, mem: &ExtInodeMem, f: &mut impl FnMut(u64, u64)) {
    for (i, &p) in mem.ptrs[..NDIRECT].iter().enumerate() {
        if p != 0 {
            f(i as u64, p);
        }
    }
    if mem.ptrs[SINGLE] != 0 {
        for i in 0..PTRS {
            let p = read_ptr(cache, mem.ptrs[SINGLE], i);
            if p != 0 {
                f(NDIRECT as u64 + i, p);
            }
        }
    }
    if mem.ptrs[DOUBLE] != 0 {
        for j in 0..PTRS {
            let ind = read_ptr(cache, mem.ptrs[DOUBLE], j);
            if ind == 0 {
                continue;
            }
            for i in 0..PTRS {
                let p = read_ptr(cache, ind, i);
                if p != 0 {
                    f(NDIRECT as u64 + PTRS + j * PTRS + i, p);
                }
            }
        }
    }
}

/// Frees every data block with index `>= from`, plus indirect blocks that
/// empty out. Returns the number of data blocks freed; updates `mem`.
pub fn free_from(
    cache: &BufferCache,
    jbd: &Jbd,
    balloc: &DiskBitmap,
    mem: &mut ExtInodeMem,
    from: u64,
    now: u64,
) -> u64 {
    let mut freed = 0;
    for i in 0..NDIRECT as u64 {
        if i >= from && mem.ptrs[i as usize] != 0 {
            let p = mem.ptrs[i as usize];
            jbd.forget(cache, p);
            cache.invalidate(p);
            balloc.release(cache, jbd, p, now);
            mem.ptrs[i as usize] = 0;
            freed += 1;
        }
    }
    // Single indirect.
    if mem.ptrs[SINGLE] != 0 {
        let ind = mem.ptrs[SINGLE];
        let mut any_left = false;
        for i in 0..PTRS {
            let file_idx = NDIRECT as u64 + i;
            let p = read_ptr(cache, ind, i);
            if p == 0 {
                continue;
            }
            if file_idx >= from {
                jbd.forget(cache, p);
                cache.invalidate(p);
                balloc.release(cache, jbd, p, now);
                write_ptr(cache, jbd, ind, i, 0, now);
                freed += 1;
            } else {
                any_left = true;
            }
        }
        if !any_left {
            jbd.forget(cache, ind);
            cache.invalidate(ind);
            balloc.release(cache, jbd, ind, now);
            mem.ptrs[SINGLE] = 0;
        }
    }
    // Double indirect.
    if mem.ptrs[DOUBLE] != 0 {
        let dbl = mem.ptrs[DOUBLE];
        let mut any_ind_left = false;
        for j in 0..PTRS {
            let ind = read_ptr(cache, dbl, j);
            if ind == 0 {
                continue;
            }
            let mut any_left = false;
            for i in 0..PTRS {
                let file_idx = NDIRECT as u64 + PTRS + j * PTRS + i;
                let p = read_ptr(cache, ind, i);
                if p == 0 {
                    continue;
                }
                if file_idx >= from {
                    jbd.forget(cache, p);
                    cache.invalidate(p);
                    balloc.release(cache, jbd, p, now);
                    write_ptr(cache, jbd, ind, i, 0, now);
                    freed += 1;
                } else {
                    any_left = true;
                }
            }
            if !any_left {
                jbd.forget(cache, ind);
                cache.invalidate(ind);
                balloc.release(cache, jbd, ind, now);
                write_ptr(cache, jbd, dbl, j, 0, now);
            } else {
                any_ind_left = true;
            }
        }
        if !any_ind_left {
            jbd.forget(cache, dbl);
            cache.invalidate(dbl);
            balloc.release(cache, jbd, dbl, now);
            mem.ptrs[DOUBLE] = 0;
        }
    }
    mem.blocks -= freed;
    freed
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::Nvmmbd;
    use fskit::FileType;
    use nvmm::{CostModel, NvmmDevice, SimEnv};
    use std::sync::Arc;

    fn setup() -> (BufferCache, Jbd, DiskBitmap, ExtInodeMem) {
        let env = SimEnv::new_virtual(CostModel::default());
        let dev = NvmmDevice::new(env, 8192 * BLOCK_SIZE);
        let bd = Arc::new(Nvmmbd::new(dev));
        let cache = BufferCache::new(bd.clone(), 256);
        let jbd = Jbd::open(bd, 1, 32, false);
        let balloc = DiskBitmap::load(&cache, 40, 8192);
        // Pre-mark the metadata region.
        for b in 0..64 {
            balloc.set(&cache, &jbd, b, 0);
        }
        (cache, jbd, balloc, ExtInodeMem::new(FileType::File, 0))
    }

    #[test]
    fn direct_range() {
        let (cache, jbd, balloc, mut mem) = setup();
        let (p, fresh) = ensure(&cache, &jbd, &balloc, &mut mem, 3, 0).unwrap();
        assert!(fresh);
        assert_eq!(lookup(&cache, &mem, 3), Some(p));
        assert_eq!(lookup(&cache, &mem, 4), None);
        let (p2, fresh2) = ensure(&cache, &jbd, &balloc, &mut mem, 3, 0).unwrap();
        assert_eq!(p2, p);
        assert!(!fresh2);
        assert_eq!(mem.blocks, 1);
    }

    #[test]
    fn single_and_double_indirect() {
        let (cache, jbd, balloc, mut mem) = setup();
        let idxs = [
            0u64,
            NDIRECT as u64,               // first single-indirect
            NDIRECT as u64 + PTRS - 1,    // last single-indirect
            NDIRECT as u64 + PTRS,        // first double-indirect
            NDIRECT as u64 + PTRS + 1234, // middle of double
        ];
        let mut got = Vec::new();
        for &i in &idxs {
            let (p, fresh) = ensure(&cache, &jbd, &balloc, &mut mem, i, 0).unwrap();
            assert!(fresh);
            got.push(p);
        }
        for (i, &idx) in idxs.iter().enumerate() {
            assert_eq!(lookup(&cache, &mem, idx), Some(got[i]));
        }
        assert_eq!(mem.blocks, idxs.len() as u64);
        // for_each visits in ascending order.
        let mut seen = Vec::new();
        for_each(&cache, &mem, &mut |i, _| seen.push(i));
        assert_eq!(seen, idxs);
    }

    #[test]
    fn free_from_releases_everything() {
        let (cache, jbd, balloc, mut mem) = setup();
        let before = balloc.free_count();
        for i in 0..600u64 {
            ensure(&cache, &jbd, &balloc, &mut mem, i, 0).unwrap();
        }
        let freed = free_from(&cache, &jbd, &balloc, &mut mem, 100, 0);
        assert_eq!(freed, 500);
        assert!(lookup(&cache, &mem, 99).is_some());
        assert_eq!(lookup(&cache, &mem, 100), None);
        let freed2 = free_from(&cache, &jbd, &balloc, &mut mem, 0, 0);
        assert_eq!(freed2, 100);
        assert_eq!(mem.blocks, 0);
        assert_eq!(balloc.free_count(), before, "indirect blocks also freed");
    }

    #[test]
    fn too_large_rejected() {
        let (cache, jbd, balloc, mut mem) = setup();
        assert_eq!(
            ensure(&cache, &jbd, &balloc, &mut mem, max_blocks(), 0),
            Err(FsError::FileTooLarge)
        );
    }
}
