//! A minimal, API-compatible stand-in for the `criterion` crate, vendored
//! so `cargo bench` runs in a sandboxed (offline) build.
//!
//! It keeps criterion's bench-authoring surface — `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_function`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!`, `black_box` — but replaces the
//! statistics engine with a plain fixed-count timing loop: per benchmark it
//! runs one warm-up sample plus `sample_size` timed samples of
//! [`ITERS_PER_SAMPLE`] iterations each and prints mean/min/max ns per
//! iteration. Good enough to spot order-of-magnitude regressions without
//! the dependency tree.

use std::time::Instant;

pub use std::hint::black_box;

/// Iterations timed per sample. Low on purpose: the spin-mode benches
/// busy-wait real nanoseconds per modelled operation.
pub const ITERS_PER_SAMPLE: u64 = 8;

/// Top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _c: self,
        }
    }

    /// Sets the default sample count for subsequent groups.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.default_sample_size = n.max(1);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its per-iteration timing.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        // Warm-up sample (not reported).
        let mut b = Bencher::default();
        f(&mut b);
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher::default();
            f(&mut b);
            if b.iters > 0 {
                per_iter.push(b.elapsed_ns as f64 / b.iters as f64);
            }
        }
        let (mean, min, max) = summarize(&per_iter);
        println!(
            "bench {}/{}: {:>12.1} ns/iter (min {:.1}, max {:.1}, {} samples)",
            self.name,
            id,
            mean,
            min,
            max,
            per_iter.len()
        );
        self
    }

    /// Ends the group (all reporting already happened inline).
    pub fn finish(self) {}
}

fn summarize(samples: &[f64]) -> (f64, f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0f64, f64::max);
    (mean, min, max)
}

/// Timing handle passed to the closure of `bench_function`.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let t0 = Instant::now();
        for _ in 0..ITERS_PER_SAMPLE {
            black_box(f());
        }
        self.elapsed_ns += t0.elapsed().as_nanos();
        self.iters += ITERS_PER_SAMPLE;
    }
}

/// Bundles benchmark functions into one named runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// The bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("selftest");
        g.sample_size(3);
        let mut calls = 0u64;
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        // 1 warm-up + 3 samples, ITERS_PER_SAMPLE iterations each.
        assert_eq!(calls, 4 * ITERS_PER_SAMPLE);
    }

    #[test]
    fn summary_math() {
        let (mean, min, max) = summarize(&[1.0, 2.0, 3.0]);
        assert_eq!(mean, 2.0);
        assert_eq!(min, 1.0);
        assert_eq!(max, 3.0);
    }

    criterion_group!(self_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.benchmark_group("noop")
            .bench_function("nothing", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn macros_compose() {
        self_group();
    }
}
