//! Inodes: on-NVMM format, in-memory handles, and the inode cache.
//!
//! Each inode occupies a 256 B slot in the inode table; the fields live in
//! the slot's first cacheline so an inode update journals and persists a
//! single 64 B line. In-memory state is an [`InodeHandle`] with a `RwLock`,
//! shared by every open descriptor of the file.

use std::collections::HashMap;
use std::sync::Arc;

use fskit::{FileType, FsError, Result};
use nvmm::{Cat, NvmmDevice};
use obsv::{Site, TrackedMutex};
use parking_lot::{Mutex, RwLock};

use crate::layout::Layout;

/// Size of the journaled/persisted inode core, one cacheline.
pub const INODE_CORE: usize = 64;

/// In-memory mirror of an inode's persistent core plus volatile state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InodeMem {
    /// File type.
    pub ftype: FileType,
    /// Hard link count.
    pub nlink: u32,
    /// File size in bytes.
    pub size: u64,
    /// Allocated data blocks (excluding tree nodes).
    pub blocks: u64,
    /// Root block of the block tree (0 = none).
    pub tree_root: u64,
    /// Height of the block tree (0 = no blocks).
    pub tree_height: u32,
    /// Last modification, simulated ns.
    pub mtime: u64,
    /// Last synchronization (fsync) time, simulated ns. Used by HiNFS's
    /// Buffer Benefit Model decay rule (paper §3.3.2).
    pub last_sync: u64,
}

impl InodeMem {
    /// A fresh inode of the given type.
    pub fn new(ftype: FileType, now: u64) -> InodeMem {
        InodeMem {
            ftype,
            nlink: 1,
            size: 0,
            blocks: 0,
            tree_root: 0,
            tree_height: 0,
            mtime: now,
            last_sync: 0,
        }
    }

    /// Encodes the persistent core (valid flag set).
    pub fn encode(&self) -> [u8; INODE_CORE] {
        let mut b = [0u8; INODE_CORE];
        b[0] = 1; // valid
        b[1] = self.ftype.as_u8();
        b[4..8].copy_from_slice(&self.nlink.to_le_bytes());
        b[8..16].copy_from_slice(&self.size.to_le_bytes());
        b[16..24].copy_from_slice(&self.blocks.to_le_bytes());
        b[24..32].copy_from_slice(&self.tree_root.to_le_bytes());
        b[32..36].copy_from_slice(&self.tree_height.to_le_bytes());
        b[40..48].copy_from_slice(&self.mtime.to_le_bytes());
        b[48..56].copy_from_slice(&self.last_sync.to_le_bytes());
        b
    }

    /// Decodes a persistent core. Returns `Ok(None)` for a free slot.
    pub fn decode(b: &[u8; INODE_CORE]) -> Result<Option<InodeMem>> {
        if b[0] == 0 {
            return Ok(None);
        }
        if b[0] != 1 {
            return Err(FsError::Corrupted("inode valid flag"));
        }
        let ftype = FileType::from_u8(b[1]).ok_or(FsError::Corrupted("inode type"))?;
        Ok(Some(InodeMem {
            ftype,
            nlink: u32::from_le_bytes(b[4..8].try_into().unwrap()),
            size: u64::from_le_bytes(b[8..16].try_into().unwrap()),
            blocks: u64::from_le_bytes(b[16..24].try_into().unwrap()),
            tree_root: u64::from_le_bytes(b[24..32].try_into().unwrap()),
            tree_height: u32::from_le_bytes(b[32..36].try_into().unwrap()),
            mtime: u64::from_le_bytes(b[40..48].try_into().unwrap()),
            last_sync: u64::from_le_bytes(b[48..56].try_into().unwrap()),
        }))
    }
}

/// Shared in-memory inode state.
#[derive(Debug)]
pub struct InodeHandle {
    /// The inode number.
    pub ino: u64,
    /// The mutable inode state. Lock order: namespace lock before inode
    /// locks; never hold two inode locks except parent-then-child in
    /// rename, which the namespace lock serializes.
    pub state: RwLock<InodeMem>,
    /// Open descriptor count (volatile); freed inodes are reaped when it
    /// reaches zero.
    pub opens: Mutex<u32>,
}

/// Cache of in-memory inode handles plus the free-slot list.
///
/// The handle map is sharded by `ino % NSHARDS` so concurrent lookups of
/// different inodes don't collide on one lock; the free-slot list stays a
/// single stack (allocation order matters for low-numbers-first tests and
/// deterministic replays) under the legacy `pmfs.inode_map` site.
#[derive(Debug)]
pub struct InodeCache {
    shards: Vec<TrackedMutex<HashMap<u64, Arc<InodeHandle>>>>,
    free_slots: TrackedMutex<Vec<u64>>,
}

impl InodeCache {
    /// Builds the cache by scanning the inode table: free slots become
    /// allocatable, used slots are decodable on demand.
    pub fn scan(dev: &NvmmDevice, layout: &Layout) -> Result<InodeCache> {
        let mut free = Vec::new();
        let mut buf = [0u8; INODE_CORE];
        // Descending so that allocation (pop) hands out low numbers first.
        for ino in (1..layout.inode_count).rev() {
            dev.read(Cat::Meta, layout.inode_off(ino), &mut buf);
            if InodeMem::decode(&buf)?.is_none() {
                free.push(ino);
            }
        }
        let contention = dev.contention();
        let shards = (0..obsv::NSHARDS)
            .map(|i| TrackedMutex::attached(contention, Site::pmfs_inode_shard(i), HashMap::new()))
            .collect();
        Ok(InodeCache {
            shards,
            free_slots: TrackedMutex::attached(contention, Site::PmfsInodeMap, free),
        })
    }

    fn shard(&self, ino: u64) -> &TrackedMutex<HashMap<u64, Arc<InodeHandle>>> {
        &self.shards[(ino % obsv::NSHARDS as u64) as usize]
    }

    /// Loads (or returns the cached) handle for a used inode.
    pub fn get(&self, dev: &NvmmDevice, layout: &Layout, ino: u64) -> Result<Arc<InodeHandle>> {
        if ino == 0 || ino >= layout.inode_count {
            return Err(FsError::Corrupted("inode number out of range"));
        }
        let mut map = self.shard(ino).lock();
        if let Some(h) = map.get(&ino) {
            return Ok(h.clone());
        }
        let mut buf = [0u8; INODE_CORE];
        dev.read(Cat::Meta, layout.inode_off(ino), &mut buf);
        let mem = InodeMem::decode(&buf)?.ok_or(FsError::Corrupted("reference to free inode"))?;
        let h = Arc::new(InodeHandle {
            ino,
            state: RwLock::new(mem),
            opens: Mutex::new(0),
        });
        map.insert(ino, h.clone());
        Ok(h)
    }

    /// Installs a handle for a just-created inode.
    pub fn install(&self, ino: u64, mem: InodeMem) -> Arc<InodeHandle> {
        let h = Arc::new(InodeHandle {
            ino,
            state: RwLock::new(mem),
            opens: Mutex::new(0),
        });
        self.shard(ino).lock().insert(ino, h.clone());
        h
    }

    /// Allocates a free inode slot number.
    pub fn alloc_slot(&self) -> Result<u64> {
        self.free_slots.lock().pop().ok_or(FsError::NoInodes)
    }

    /// Returns a slot to the free list and drops the cached handle.
    pub fn free_slot(&self, ino: u64) {
        self.shard(ino).lock().remove(&ino);
        self.free_slots.lock().push(ino);
    }

    /// Number of free inode slots.
    pub fn free_count(&self) -> usize {
        self.free_slots.lock().len()
    }

    /// Every inode number that currently has a cached handle, in
    /// ascending order (shards are walked in index order, then sorted so
    /// callers see a shard-count-independent listing).
    pub fn cached_inos(&self) -> Vec<u64> {
        let mut inos: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().keys().copied().collect::<Vec<u64>>())
            .collect();
        inos.sort_unstable();
        inos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmm::{CostModel, SimEnv, BLOCK_SIZE};

    fn setup() -> (Arc<NvmmDevice>, Layout) {
        let dev = NvmmDevice::new(SimEnv::new_virtual(CostModel::default()), 1024 * BLOCK_SIZE);
        let layout = Layout::compute(1024, 16, 128).unwrap();
        (dev, layout)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = InodeMem {
            ftype: FileType::File,
            nlink: 2,
            size: 123_456,
            blocks: 31,
            tree_root: 777,
            tree_height: 2,
            mtime: 42,
            last_sync: 41,
        };
        let decoded = InodeMem::decode(&m.encode()).unwrap().unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn free_slot_decodes_as_none() {
        let zero = [0u8; INODE_CORE];
        assert_eq!(InodeMem::decode(&zero).unwrap(), None);
    }

    #[test]
    fn bad_valid_flag_is_corruption() {
        let mut b = [0u8; INODE_CORE];
        b[0] = 7;
        assert!(InodeMem::decode(&b).is_err());
    }

    #[test]
    fn scan_finds_free_slots_low_first() {
        let (dev, layout) = setup();
        let cache = InodeCache::scan(&dev, &layout).unwrap();
        // All slots 1..inode_count free on a zeroed device.
        assert_eq!(cache.free_count(), layout.inode_count as usize - 1);
        assert_eq!(cache.alloc_slot().unwrap(), 1);
        assert_eq!(cache.alloc_slot().unwrap(), 2);
    }

    #[test]
    fn scan_skips_used_slots() {
        let (dev, layout) = setup();
        let mem = InodeMem::new(FileType::Dir, 0);
        dev.poke(layout.inode_off(1), &mem.encode());
        let cache = InodeCache::scan(&dev, &layout).unwrap();
        assert_eq!(cache.free_count(), layout.inode_count as usize - 2);
        assert_eq!(cache.alloc_slot().unwrap(), 2);
        let h = cache.get(&dev, &layout, 1).unwrap();
        assert_eq!(h.state.read().ftype, FileType::Dir);
    }

    #[test]
    fn get_caches_handles() {
        let (dev, layout) = setup();
        let mem = InodeMem::new(FileType::File, 9);
        dev.poke(layout.inode_off(3), &mem.encode());
        let cache = InodeCache::scan(&dev, &layout).unwrap();
        let a = cache.get(&dev, &layout, 3).unwrap();
        let b = cache.get(&dev, &layout, 3).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn get_rejects_free_and_invalid() {
        let (dev, layout) = setup();
        let cache = InodeCache::scan(&dev, &layout).unwrap();
        assert!(cache.get(&dev, &layout, 5).is_err(), "free slot");
        assert!(cache.get(&dev, &layout, 0).is_err(), "ino 0 reserved");
        assert!(
            cache.get(&dev, &layout, layout.inode_count).is_err(),
            "out of range"
        );
    }

    #[test]
    fn free_slot_recycles() {
        let (dev, layout) = setup();
        let cache = InodeCache::scan(&dev, &layout).unwrap();
        let ino = cache.alloc_slot().unwrap();
        cache.install(ino, InodeMem::new(FileType::File, 0));
        cache.free_slot(ino);
        assert_eq!(cache.alloc_slot().unwrap(), ino);
    }
}
