//! The crash-point enumeration harness.
//!
//! One [`Harness`] drives the full cycle for any [`FsKind`]:
//!
//! 1. **Record** — replay a script on a fresh image with the device's
//!    [`FaultPlan`] recording, producing the numbered *crash schedule* of
//!    every persistence boundary (non-temporal store, cacheline flush)
//!    the run crossed.
//! 2. **Enumerate** — for each scheduled boundary `k`, rebuild the image,
//!    replay the same script with a crash armed at boundary `k`
//!    (optionally tearing the volatile store buffer with a seeded partial
//!    drop), catch the [`CrashSignal`], revert the device to its
//!    persistent image, remount (running journal recovery), and run the
//!    [`Oracle`] over the recovered tree.
//! 3. **Inject** — replay with a soft fault (journal-full, ENOSPC,
//!    writeback stall) switched on for a window of operations, asserting
//!    clean errors (never panics), then crash + recover + oracle-check.
//!
//! Everything runs on the virtual clock, so a schedule recorded once is
//! bit-identical on every replay.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Once};

use extfs::{ExtMode, ExtOptions, Extfs};
use fskit::{FileSystem, FsError, OpenFlags};
use hinfs::{Hinfs, HinfsConfig};
use nvmm::{BoundaryRec, CostModel, CrashSignal, FaultPlan, InjectedFault, NvmmDevice, SimEnv};
use obsv::{AuditReport, FsObs, Introspect, TraceEvent, TraceRing};
use pmfs::{Pmfs, PmfsOptions};

use crate::oracle::Oracle;
use crate::script::{dir_path, file_path, FsKind, Op, Script};
use crate::FaultStats;

/// Backing device size for harness images.
pub(crate) const DEV_BYTES: usize = 8 << 20;

/// How far one [`Op::Tick`] advances the background clock (comfortably
/// past the 5 s periodic writeback/commit interval).
const TICK_ADVANCE_NS: u64 = 6_000_000_000;

/// Small-format options so journal-pressure paths are reachable.
pub(crate) fn pmfs_opts() -> PmfsOptions {
    PmfsOptions {
        journal_blocks: 64,
        inode_count: 128,
    }
}

fn ext_opts() -> ExtOptions {
    ExtOptions {
        journal_blocks: 64,
        inode_count: 128,
        cache_pages: 256,
        ..ExtOptions::default()
    }
}

pub(crate) fn hinfs_cfg() -> HinfsConfig {
    HinfsConfig {
        buffer_bytes: 1 << 20,
        ..HinfsConfig::default()
    }
}

/// A freshly formatted instance plus the handles the harness needs. The
/// concrete observability and introspection handles are captured before
/// the file system is erased to `dyn FileSystem`, so the fuzzer can read
/// trace/state coverage off any kind uniformly.
pub(crate) struct Built {
    pub(crate) fs: Arc<dyn FileSystem>,
    pub(crate) dev: Arc<NvmmDevice>,
    pub(crate) env: Arc<SimEnv>,
    pub(crate) obs: Arc<FsObs>,
    pub(crate) intro: Arc<dyn Introspect>,
}

/// Outcome of one crash-recover-check cycle.
#[derive(Debug, Default)]
pub struct RunOutcome {
    /// The armed 1-based boundary (0 for fault-injection runs).
    pub boundary: u64,
    /// Whether the volatile store buffer was torn (partial drop).
    pub torn: bool,
    /// Whether the crash fired mid-operation (vs. power loss after the
    /// last operation because the armed boundary was never reached).
    pub crashed_mid_op: bool,
    /// Undo transactions rolled back (PMFS/HiNFS) at remount.
    pub txs_undone: u64,
    /// Journal entries undone (PMFS/HiNFS) or replayed (EXT4) at remount.
    pub entries_undone: u64,
    /// Oracle assertions evaluated.
    pub checks: u64,
    /// Clean errors observed while a fault was injected (`op index`,
    /// rendered error).
    pub clean_errors: Vec<(usize, String)>,
    /// Oracle violations (empty = pass).
    pub violations: Vec<String>,
}

/// Aggregate of a whole enumeration sweep over one file system.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Which file system was swept.
    pub kind: FsKind,
    /// Total persistence boundaries the recording pass observed.
    pub boundaries: u64,
    /// Clean-crash runs executed.
    pub runs: u64,
    /// Torn-crash runs executed.
    pub torn_runs: u64,
    /// Oracle assertions evaluated across all runs.
    pub checks: u64,
    /// Undo transactions rolled back across all recoveries.
    pub txs_undone: u64,
    /// Journal entries undone/replayed across all recoveries.
    pub entries_undone: u64,
    /// All violations, prefixed with run context (empty = pass).
    pub violations: Vec<String>,
}

/// Knobs for [`Harness::sweep`].
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Seed for torn-crash line selection.
    pub seed: u64,
    /// Cap on enumerated crash points (evenly strided when the schedule
    /// is longer; the first and last boundary are always included).
    pub max_points: usize,
    /// Run a torn-store variant on every n-th enumerated point
    /// (0 disables torn runs).
    pub torn_every: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seed: 0xFA17,
            max_points: 64,
            torn_every: 4,
        }
    }
}

/// Suppress the default panic banner for [`CrashSignal`] unwinds: a sweep
/// fires hundreds of intentional crashes. Foreign panics still print.
fn install_quiet_crash_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashSignal>().is_none() {
                prev(info);
            }
        }));
    });
}

/// The crash/fault harness. Clone-free: share it by reference.
#[derive(Debug)]
pub struct Harness {
    /// Counters exported through the obsv registry.
    pub stats: Arc<FaultStats>,
    /// Trace ring receiving recovery and fault-injection events.
    pub trace: Arc<TraceRing>,
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness {
    /// A fresh harness with tracing enabled.
    pub fn new() -> Harness {
        install_quiet_crash_hook();
        let trace = Arc::new(TraceRing::new(4096));
        trace.set_enabled(true);
        Harness {
            stats: Arc::new(FaultStats::new()),
            trace,
        }
    }

    /// Formats a fresh image of `kind` on a new virtual-time device.
    pub(crate) fn build(&self, kind: FsKind) -> Built {
        let env = SimEnv::new_virtual(CostModel::default());
        let dev = NvmmDevice::new_tracked(env.clone(), DEV_BYTES);
        let (fs, obs, intro): (Arc<dyn FileSystem>, Arc<FsObs>, Arc<dyn Introspect>) = match kind {
            FsKind::Hinfs => {
                let fs = Hinfs::mkfs(dev.clone(), pmfs_opts(), hinfs_cfg())
                    .expect("hinfs mkfs on a fresh device");
                (fs.clone(), fs.obs().clone(), fs)
            }
            FsKind::Pmfs => {
                let fs = Pmfs::mkfs(dev.clone(), pmfs_opts()).expect("pmfs mkfs on a fresh device");
                (fs.clone(), fs.obs().clone(), fs)
            }
            FsKind::Ext4 => {
                let fs = Extfs::mkfs(dev.clone(), ExtMode::Ext4, ext_opts())
                    .expect("ext4 mkfs on a fresh device");
                (fs.clone(), fs.obs().clone(), fs)
            }
        };
        Built {
            fs,
            dev,
            env,
            obs,
            intro,
        }
    }

    /// Remounts `dev` after a crash, returning the file system, the
    /// `(txs_undone, entries_undone)` recovery counts, and the invariant
    /// auditor's report over the freshly recovered state — a crash must
    /// never leave the remounted system with inconsistent volatile
    /// structures, journal accounting, or device counters.
    fn remount(
        &self,
        kind: FsKind,
        dev: Arc<NvmmDevice>,
    ) -> Result<(Arc<dyn FileSystem>, u64, u64, AuditReport), FsError> {
        match kind {
            FsKind::Hinfs => {
                let fs = Hinfs::mount(dev, hinfs_cfg())?;
                let r = fs.pmfs().recovery_stats();
                let rep = Introspect::audit(fs.as_ref());
                Ok((fs, r.txs_undone, r.entries_undone, rep))
            }
            FsKind::Pmfs => {
                let fs = Pmfs::mount(dev)?;
                let r = fs.recovery_stats();
                let rep = Introspect::audit(fs.as_ref());
                Ok((fs, r.txs_undone, r.entries_undone, rep))
            }
            FsKind::Ext4 => {
                let fs = Extfs::mount(dev, ExtMode::Ext4, ext_opts())?;
                let replayed = fs.recovery_replayed();
                let rep = Introspect::audit(fs.as_ref());
                Ok((fs, 0, replayed, rep))
            }
        }
    }

    /// Folds a post-recovery audit report into a run outcome: checks are
    /// counted, violations are surfaced (with their invariant label) and
    /// pushed onto the trace ring.
    fn absorb_audit(&self, out: &mut RunOutcome, rep: AuditReport, at_ns: u64) {
        out.checks += rep.checks;
        for v in &rep.violations {
            self.trace.emit(at_ns, || v.event());
            out.violations.push(format!("post-recovery audit: {v}"));
        }
    }

    /// Records the crash schedule of `script` on a fresh `kind` image:
    /// every persistence boundary the replay crosses, in order.
    pub fn record_schedule(&self, kind: FsKind, script: &Script) -> Vec<BoundaryRec> {
        let b = self.build(kind);
        let plan = FaultPlan::new();
        b.dev.fault_hook().install(plan.clone());
        plan.start_recording();
        for op in &script.ops {
            // Expected clean errors (ops on missing files) are part of the
            // script's semantics; replay continues regardless.
            let _ = exec_op(&*b.fs, &b.env, op);
        }
        let schedule = plan.stop_recording();
        b.dev.fault_hook().clear();
        schedule
    }

    /// Replays `script` on a fresh `kind` image, crashes at 1-based
    /// boundary `k` (or after the last operation if the replay never
    /// reaches it), remounts, and oracle-checks the recovered tree.
    ///
    /// `torn_seed` additionally drops a seeded subset of the volatile
    /// store buffer's pending cachelines instead of all of them,
    /// simulating a torn flush in flight at the power failure.
    pub fn crash_run(
        &self,
        kind: FsKind,
        script: &Script,
        k: u64,
        torn_seed: Option<u64>,
    ) -> RunOutcome {
        let b = self.build(kind);
        let plan = FaultPlan::new();
        plan.set_trace(self.trace.clone());
        b.dev.fault_hook().install(plan.clone());
        plan.arm_crash(k);

        let mut oracle = Oracle::new(kind);
        let mut out = RunOutcome {
            boundary: k,
            torn: torn_seed.is_some(),
            ..RunOutcome::default()
        };
        for op in &script.ops {
            match panic::catch_unwind(AssertUnwindSafe(|| exec_op(&*b.fs, &b.env, op))) {
                Ok(res) => oracle.apply(op, &res),
                Err(payload) => {
                    if payload.downcast_ref::<CrashSignal>().is_some() {
                        oracle.apply_crashed(op);
                        out.crashed_mid_op = true;
                        break;
                    }
                    // A foreign panic is a harness bug or a real FS bug;
                    // surface it unchanged.
                    panic::resume_unwind(payload);
                }
            }
        }
        b.dev.fault_hook().clear();
        drop(b.fs);

        // Power loss: revert to the persistent image, optionally keeping a
        // seeded subset of pending (volatile) cachelines.
        match torn_seed {
            Some(seed) => {
                b.dev.crash_partial(seed);
            }
            None => b.dev.crash(),
        }
        self.stats.crashes_injected.fetch_add(1, Ordering::Relaxed);

        self.trace
            .emit(b.env.now(), || TraceEvent::RecoveryBegin { gen: k });
        match self.remount(kind, b.dev.clone()) {
            Err(e) => {
                out.violations
                    .push(format!("remount after crash at boundary {k} failed: {e:?}"));
            }
            Ok((fs2, txs, entries, audit)) => {
                out.txs_undone = txs;
                out.entries_undone = entries;
                self.trace.emit(b.env.now(), || TraceEvent::RecoveryEnd {
                    txs_undone: txs,
                    entries_undone: entries,
                });
                self.absorb_audit(&mut out, audit, b.env.now());
                let rep = oracle.check(&*fs2);
                out.checks = rep.checks;
                out.violations.extend(rep.violations);
                if let Err(e) = fs2.unmount() {
                    out.violations
                        .push(format!("unmount after recovery failed: {e:?}"));
                }
                self.stats.recoveries.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.record_run_stats(&out);
        out
    }

    /// Replays `script` with `fault` injected for the operations whose
    /// indices fall in `window`, asserting graceful degradation: clean
    /// errors only, no panics, and a clean crash-recover-check afterwards.
    pub fn fault_run(
        &self,
        kind: FsKind,
        script: &Script,
        fault: InjectedFault,
        window: std::ops::Range<usize>,
    ) -> RunOutcome {
        let b = self.build(kind);
        let plan = FaultPlan::new();
        plan.set_trace(self.trace.clone());
        b.dev.fault_hook().install(plan.clone());

        let set = |on: bool| match fault {
            InjectedFault::JournalFull => plan.set_journal_unavailable(on),
            InjectedFault::Enospc => plan.set_fail_alloc(on),
            InjectedFault::WritebackStall => plan.set_stall_writeback(on),
        };

        let mut oracle = Oracle::new(kind);
        let mut out = RunOutcome::default();
        for (i, op) in script.ops.iter().enumerate() {
            set(window.contains(&i));
            match panic::catch_unwind(AssertUnwindSafe(|| exec_op(&*b.fs, &b.env, op))) {
                Ok(res) => {
                    if window.contains(&i) {
                        if let Err(e) = &res {
                            out.clean_errors.push((i, format!("{e:?}")));
                        }
                    }
                    oracle.apply(op, &res);
                }
                Err(_) => {
                    // Injected soft faults must never panic the FS.
                    out.violations.push(format!(
                        "panic during {op:?} with injected {}",
                        fault.label()
                    ));
                    break;
                }
            }
        }
        set(false);
        self.stats
            .faults_injected
            .fetch_add(plan.faults_injected(), Ordering::Relaxed);

        if out.violations.is_empty() {
            // With the fault lifted the FS must fully synchronize...
            let tick = Op::Tick;
            let _ = exec_op(&*b.fs, &b.env, &tick);
            oracle.apply(&tick, &Ok(()));
            let sync_res = b.fs.sync();
            oracle.apply(&Op::Sync, &sync_res);
            if let Err(e) = &sync_res {
                out.violations.push(format!(
                    "sync after lifting {} failed: {e:?}",
                    fault.label()
                ));
            }
            // ...and survive a crash on top of the degraded history.
            b.dev.fault_hook().clear();
            drop(b.fs);
            b.dev.crash();
            self.stats.crashes_injected.fetch_add(1, Ordering::Relaxed);
            self.trace
                .emit(b.env.now(), || TraceEvent::RecoveryBegin { gen: 0 });
            match self.remount(kind, b.dev.clone()) {
                Err(e) => out
                    .violations
                    .push(format!("remount after {} run failed: {e:?}", fault.label())),
                Ok((fs2, txs, entries, audit)) => {
                    out.txs_undone = txs;
                    out.entries_undone = entries;
                    self.trace.emit(b.env.now(), || TraceEvent::RecoveryEnd {
                        txs_undone: txs,
                        entries_undone: entries,
                    });
                    self.absorb_audit(&mut out, audit, b.env.now());
                    let rep = oracle.check(&*fs2);
                    out.checks = rep.checks;
                    out.violations.extend(rep.violations);
                    if let Err(e) = fs2.unmount() {
                        out.violations
                            .push(format!("unmount after recovery failed: {e:?}"));
                    }
                    self.stats.recoveries.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.record_run_stats(&out);
        out
    }

    /// Enumerates crash points of `script` on `kind`: records the
    /// schedule, then runs a crash-recover-check cycle at (up to
    /// `max_points`) boundaries, with periodic torn-store variants.
    pub fn sweep(&self, kind: FsKind, script: &Script, cfg: SweepConfig) -> SweepOutcome {
        let schedule = self.record_schedule(kind, script);
        let total = schedule.len() as u64;
        let points = pick_points(total, cfg.max_points);
        let mut out = SweepOutcome {
            kind,
            boundaries: total,
            runs: 0,
            torn_runs: 0,
            checks: 0,
            txs_undone: 0,
            entries_undone: 0,
            violations: Vec::new(),
        };
        for (i, &k) in points.iter().enumerate() {
            let run = self.crash_run(kind, script, k, None);
            out.absorb(&run);
            out.runs += 1;
            if cfg.torn_every > 0 && i % cfg.torn_every == 0 {
                let torn = self.crash_run(kind, script, k, Some(cfg.seed ^ k));
                out.absorb(&torn);
                out.torn_runs += 1;
            }
        }
        out
    }

    fn record_run_stats(&self, out: &RunOutcome) {
        self.stats
            .txs_undone
            .fetch_add(out.txs_undone, Ordering::Relaxed);
        self.stats
            .entries_undone
            .fetch_add(out.entries_undone, Ordering::Relaxed);
        self.stats
            .oracle_checks
            .fetch_add(out.checks, Ordering::Relaxed);
        self.stats
            .oracle_violations
            .fetch_add(out.violations.len() as u64, Ordering::Relaxed);
    }
}

impl SweepOutcome {
    fn absorb(&mut self, run: &RunOutcome) {
        self.checks += run.checks;
        self.txs_undone += run.txs_undone;
        self.entries_undone += run.entries_undone;
        for v in &run.violations {
            self.violations.push(format!(
                "[{} k={}{}] {v}",
                self.kind.label(),
                run.boundary,
                if run.torn { " torn" } else { "" }
            ));
        }
    }
}

/// Evenly strided selection of 1-based crash points: all of them when the
/// schedule fits under `cap`, else `cap` points including both ends.
pub(crate) fn pick_points(total: u64, cap: usize) -> Vec<u64> {
    if total == 0 {
        // Fully volatile replay (possible on the buffered systems): a
        // single run whose armed boundary never fires still power-fails
        // after the last op and checks the oracle.
        return vec![1];
    }
    let cap = cap.max(2) as u64;
    if total <= cap {
        return (1..=total).collect();
    }
    let mut points: Vec<u64> = (0..cap)
        .map(|i| 1 + (i * (total - 1)) / (cap - 1))
        .collect();
    points.dedup();
    points
}

/// Executes one scripted operation against `fs`, opening and closing a
/// descriptor around data operations. Data ops open *without* `CREATE`,
/// so operating on a missing file yields the expected `NotFound`.
pub fn exec_op(fs: &dyn FileSystem, env: &SimEnv, op: &Op) -> Result<(), FsError> {
    match *op {
        Op::Create { file } => {
            let fd = fs.open(&file_path(file), OpenFlags::CREATE | OpenFlags::RDWR)?;
            fs.close(fd)
        }
        Op::Write {
            file,
            off,
            len,
            fill,
        } => with_fd(fs, file, |fs, fd| {
            fs.write(fd, off, &vec![fill; len]).map(|_| ())
        }),
        Op::Append { file, len, fill } => with_fd(fs, file, |fs, fd| {
            fs.append(fd, &vec![fill; len]).map(|_| ())
        }),
        Op::Fsync { file } => with_fd(fs, file, |fs, fd| fs.fsync(fd)),
        Op::Truncate { file, size } => with_fd(fs, file, |fs, fd| fs.truncate(fd, size)),
        Op::Unlink { file } => fs.unlink(&file_path(file)),
        Op::Rename { from, to } => fs.rename(&file_path(from), &file_path(to)),
        Op::Mkdir { dir } => fs.mkdir(&dir_path(dir)),
        Op::Rmdir { dir } => fs.rmdir(&dir_path(dir)),
        Op::Sync => fs.sync(),
        Op::Tick => {
            fs.tick(env.now().saturating_add(TICK_ADVANCE_NS));
            Ok(())
        }
    }
}

fn with_fd(
    fs: &dyn FileSystem,
    file: u8,
    f: impl FnOnce(&dyn FileSystem, fskit::Fd) -> Result<(), FsError>,
) -> Result<(), FsError> {
    let fd = fs.open(&file_path(file), OpenFlags::RDWR)?;
    let res = f(fs, fd);
    let closed = fs.close(fd);
    res.and(closed)
}
