//! Scripted operation sequences replayed by the crash enumerator.
//!
//! A [`Script`] is a flat list of [`Op`]s over a tiny namespace: files
//! `/f0../f3` and (always empty) directories `/d0../d1`. Keeping the
//! namespace flat keeps the durability oracle exact while still exercising
//! every journaled code path: creation, deletion, rename (including
//! overwrite), truncation, data writes, fsync and whole-FS sync.

use rand::{Rng, SeedableRng};

/// Number of distinct file slots a script may address.
pub const MAX_FILES: u8 = 4;
/// Number of distinct directory slots a script may address.
pub const MAX_DIRS: u8 = 2;
/// Per-operation payload cap in bytes.
pub const MAX_IO: usize = 12 * 1024;

/// Which file system a run targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsKind {
    /// HiNFS: DRAM write buffer over PMFS (lazy data, eager metadata).
    Hinfs,
    /// PMFS: direct in-place data, undo-journaled metadata.
    Pmfs,
    /// EXT4 over the NVMMBD block device (jbd2-style redo journal).
    Ext4,
}

impl FsKind {
    /// Every kind, for sweeps.
    pub const ALL: [FsKind; 3] = [FsKind::Hinfs, FsKind::Pmfs, FsKind::Ext4];

    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FsKind::Hinfs => "hinfs",
            FsKind::Pmfs => "pmfs",
            FsKind::Ext4 => "ext4",
        }
    }

    /// Whether an acknowledged data operation (write/append/truncate) is
    /// already durable when the call returns — the *eager* judgment. True
    /// for PMFS (in-place non-temporal stores plus a committed metadata
    /// transaction before return); false for the buffered systems.
    pub fn write_sync_on_ack(self) -> bool {
        matches!(self, FsKind::Pmfs)
    }

    /// Whether an acknowledged namespace operation (create/unlink/mkdir/
    /// rmdir/rename) is durable when the call returns. True for PMFS and
    /// HiNFS (the undo-journal transaction commits before the syscall
    /// returns); false for EXT4, where namespace changes only become
    /// durable at a jbd commit point.
    pub fn ns_sync(self) -> bool {
        !matches!(self, FsKind::Ext4)
    }
}

/// One scripted operation. File and directory ids are slot numbers mapped
/// to paths by [`file_path`] / [`dir_path`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `open(O_CREAT|O_RDWR)` + `close`.
    Create { file: u8 },
    /// Positional write of `len` bytes of `fill` at `off`.
    Write {
        file: u8,
        off: u64,
        len: usize,
        fill: u8,
    },
    /// Append `len` bytes of `fill`.
    Append { file: u8, len: usize, fill: u8 },
    /// `fsync` the file.
    Fsync { file: u8 },
    /// Truncate (or zero-extend) to `size`.
    Truncate { file: u8, size: u64 },
    /// Remove the file's name.
    Unlink { file: u8 },
    /// Rename `from` onto `to` (replacing `to` if it exists).
    Rename { from: u8, to: u8 },
    /// Create a directory.
    Mkdir { dir: u8 },
    /// Remove a directory (always empty in these scripts).
    Rmdir { dir: u8 },
    /// Whole-FS `sync`.
    Sync,
    /// Advance simulated time past the periodic writeback/commit interval
    /// and let background machinery run.
    Tick,
}

impl Op {
    /// Draws one random operation with the sweep distribution (favouring
    /// writes and fsyncs, reaching every kind). Shared by
    /// [`Script::random`] and the fuzzer's insertion mutator, so both
    /// sample the same op space.
    pub fn random(rng: &mut rand::rngs::SmallRng) -> Op {
        let file = rng.gen_range(0..MAX_FILES);
        let fill = rng.gen_range(1u8..=255);
        match rng.gen_range(0u32..23) {
            0..=2 => Op::Create { file },
            3..=8 => Op::Write {
                file,
                off: rng.gen_range(0u64..32 * 1024),
                len: rng.gen_range(1..=MAX_IO),
                fill,
            },
            9..=11 => Op::Append {
                file,
                len: rng.gen_range(1..=MAX_IO),
                fill,
            },
            12..=15 => Op::Fsync { file },
            16 => Op::Truncate {
                file,
                size: rng.gen_range(0u64..40 * 1024),
            },
            17 => Op::Unlink { file },
            18 => Op::Rename {
                from: file,
                to: rng.gen_range(0..MAX_FILES),
            },
            19 => Op::Mkdir {
                dir: rng.gen_range(0..MAX_DIRS),
            },
            20 => Op::Rmdir {
                dir: rng.gen_range(0..MAX_DIRS),
            },
            21 => Op::Sync,
            _ => Op::Tick,
        }
    }

    /// One-line text form, the unit of the committed repro scripts:
    /// `write f1 4096 512 7` is a 512-byte write of fill `7` at offset
    /// 4096 into `/f1`. [`Op::parse`] round-trips it.
    pub fn to_text(&self) -> String {
        match *self {
            Op::Create { file } => format!("create f{file}"),
            Op::Write {
                file,
                off,
                len,
                fill,
            } => format!("write f{file} {off} {len} {fill}"),
            Op::Append { file, len, fill } => format!("append f{file} {len} {fill}"),
            Op::Fsync { file } => format!("fsync f{file}"),
            Op::Truncate { file, size } => format!("truncate f{file} {size}"),
            Op::Unlink { file } => format!("unlink f{file}"),
            Op::Rename { from, to } => format!("rename f{from} f{to}"),
            Op::Mkdir { dir } => format!("mkdir d{dir}"),
            Op::Rmdir { dir } => format!("rmdir d{dir}"),
            Op::Sync => "sync".to_string(),
            Op::Tick => "tick".to_string(),
        }
    }

    /// Parses the [`Op::to_text`] form. `None` on any malformed input.
    pub fn parse(line: &str) -> Option<Op> {
        fn slot(tok: &str, prefix: char, max: u8) -> Option<u8> {
            let id: u8 = tok.strip_prefix(prefix)?.parse().ok()?;
            (id < max).then_some(id)
        }
        let mut t = line.split_whitespace();
        let op = match t.next()? {
            "create" => Op::Create {
                file: slot(t.next()?, 'f', MAX_FILES)?,
            },
            "write" => Op::Write {
                file: slot(t.next()?, 'f', MAX_FILES)?,
                off: t.next()?.parse().ok()?,
                len: t.next()?.parse().ok()?,
                fill: t.next()?.parse().ok()?,
            },
            "append" => Op::Append {
                file: slot(t.next()?, 'f', MAX_FILES)?,
                len: t.next()?.parse().ok()?,
                fill: t.next()?.parse().ok()?,
            },
            "fsync" => Op::Fsync {
                file: slot(t.next()?, 'f', MAX_FILES)?,
            },
            "truncate" => Op::Truncate {
                file: slot(t.next()?, 'f', MAX_FILES)?,
                size: t.next()?.parse().ok()?,
            },
            "unlink" => Op::Unlink {
                file: slot(t.next()?, 'f', MAX_FILES)?,
            },
            "rename" => Op::Rename {
                from: slot(t.next()?, 'f', MAX_FILES)?,
                to: slot(t.next()?, 'f', MAX_FILES)?,
            },
            "mkdir" => Op::Mkdir {
                dir: slot(t.next()?, 'd', MAX_DIRS)?,
            },
            "rmdir" => Op::Rmdir {
                dir: slot(t.next()?, 'd', MAX_DIRS)?,
            },
            "sync" => Op::Sync,
            "tick" => Op::Tick,
            _ => return None,
        };
        t.next().is_none().then_some(op)
    }
}

/// Path of file slot `id`.
pub fn file_path(id: u8) -> String {
    format!("/f{id}")
}

/// Path of directory slot `id`.
pub fn dir_path(id: u8) -> String {
    format!("/d{id}")
}

/// A replayable operation sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Script {
    /// The operations, executed in order.
    pub ops: Vec<Op>,
}

impl Script {
    /// Generates a deterministic random script of `n_ops` operations.
    ///
    /// The distribution favours writes and fsyncs (the interesting
    /// crash-consistency interleavings) but reaches every op kind. Invalid
    /// ops (writing an unlinked file, re-creating a live directory) are
    /// allowed on purpose: replay treats their clean errors as no-ops, so
    /// they double as error-path coverage.
    pub fn random(seed: u64, n_ops: usize) -> Script {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut ops = Vec::with_capacity(n_ops + 1);
        // Always start with one file so early crash points land on a
        // non-trivial namespace.
        ops.push(Op::Create { file: 0 });
        while ops.len() < n_ops + 1 {
            ops.push(Op::random(&mut rng));
        }
        Script { ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_scripts_are_deterministic() {
        let a = Script::random(42, 20);
        let b = Script::random(42, 20);
        let c = Script::random(43, 20);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.ops.len(), 21);
        assert_eq!(a.ops[0], Op::Create { file: 0 });
    }

    #[test]
    fn op_text_round_trips() {
        for op in Script::random(0xBEEF, 200).ops {
            let line = op.to_text();
            assert_eq!(Op::parse(&line), Some(op), "round-trip of {line:?}");
        }
        assert_eq!(Op::parse("sync"), Some(Op::Sync));
        assert_eq!(Op::parse("  tick  "), Some(Op::Tick));
        for bad in [
            "",
            "write f0 1",
            "create f9",
            "create d0",
            "mkdir d5",
            "sync extra",
            "chmod f0",
        ] {
            assert_eq!(Op::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn kind_labels_and_judgments() {
        assert_eq!(FsKind::Pmfs.label(), "pmfs");
        assert!(FsKind::Pmfs.write_sync_on_ack());
        assert!(!FsKind::Hinfs.write_sync_on_ack());
        assert!(FsKind::Hinfs.ns_sync());
        assert!(!FsKind::Ext4.ns_sync());
    }
}
