//! Latency explorer: how the HiNFS/PMFS gap moves with the NVMM write
//! latency (the paper's Fig 11, as an interactive-style sweep) — now
//! with the per-op flight recorder on, so every latency point also
//! prints the *anatomy* of its p99 tail: which span phases and lock
//! sites the slowest-op exemplars actually spent their time in.
//!
//! ```text
//! cargo run --release --example latency_explorer [workload]
//! ```
//!
//! `workload` is one of `fileserver` (default), `webserver`, `webproxy`,
//! `varmail`.

use std::sync::Arc;

use hinfs_suite::prelude::*;
use hinfs_suite::workloads::filebench::{
    FilebenchParams, Fileserver, Varmail, Webproxy, Webserver,
};
use hinfs_suite::workloads::fileset::{Fileset, FilesetSpec};
use hinfs_suite::workloads::setups::{self, ObsvOptions};
use obsv::{FsObs, HistoSnapshot, TailAnatomy, ALL_OPS};

/// p99 across every op kind (all op histograms merged).
fn overall_p99(obs: &FsObs) -> u64 {
    let mut merged: Option<HistoSnapshot> = None;
    for op in ALL_OPS {
        let snap = obs.op_histo(op).snapshot();
        if snap.count() == 0 {
            continue;
        }
        match &mut merged {
            Some(m) => m.merge(&snap),
            None => merged = Some(snap),
        }
    }
    merged.map(|m| m.quantile(0.99)).unwrap_or(0)
}

/// One compact tail-anatomy line: p99 plus the top phases (and top wait
/// site, when any) of the exemplars in the p99 cohort.
fn tail_line(sys_label: &str, obs: &FsObs) -> String {
    let p99 = overall_p99(obs);
    let snap = obs.flight().snapshot();
    let anatomy = TailAnatomy::aggregate(snap.cohort(p99));
    if anatomy.count == 0 {
        return format!("  {sys_label:>5} p99 {p99:>8}ns  (no exemplars in cohort)");
    }
    let phases: Vec<String> = anatomy
        .top_phases(3)
        .into_iter()
        .map(|(p, ns)| format!("{}={}ns", p.label(), ns / anatomy.count))
        .collect();
    let waits: Vec<String> = anatomy
        .top_waits(1)
        .into_iter()
        .map(|(s, ns)| format!("wait[{}]={}ns", s.label(), ns / anatomy.count))
        .collect();
    format!(
        "  {sys_label:>5} p99 {p99:>8}ns  {} exemplars, {:.1} fences/op: {}{}{}",
        anatomy.count,
        anatomy.fences as f64 / anatomy.count as f64,
        phases.join(" "),
        if waits.is_empty() { "" } else { " " },
        waits.join(" "),
    )
}

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "fileserver".into());
    println!("single-thread {which} throughput vs NVMM write latency\n");
    println!(
        "{:>8} {:>12} {:>12} {:>8}",
        "latency", "pmfs ops/s", "hinfs ops/s", "gap"
    );
    for lat in [50u64, 100, 200, 400, 800] {
        let mut tput = Vec::new();
        let mut anatomies = Vec::new();
        for kind in [SystemKind::Pmfs, SystemKind::Hinfs] {
            let cfg = SystemConfig {
                device_bytes: 256 << 20,
                buffer_bytes: 8 << 20,
                cost: CostModel::default().with_write_latency(lat),
                obsv: ObsvOptions::flight(),
                ..SystemConfig::default()
            };
            let sys = setups::build(kind, &cfg).expect("build");
            let set = Fileset::populate(&*sys.fs, FilesetSpec::new("/data", 128, 20, 32 << 10), 11)
                .expect("populate");
            sys.fs.sync().expect("sync");
            sys.env.rebase();
            // Drop the populate phase's exemplars so the anatomy shows
            // the steady-state workload, not fileset creation.
            if let Some(obs) = &sys.obs {
                obs.flight().reset();
            }
            let params = FilebenchParams {
                iosize: 256 << 10,
                append_size: 8 << 10,
            };
            let actor: Box<dyn Actor> = match which.as_str() {
                "webserver" => Box::new(Webserver::new(Arc::clone(&set), params, 0)),
                "webproxy" => Box::new(Webproxy::new(Arc::clone(&set), params, 0)),
                "varmail" => Box::new(Varmail::new(Arc::clone(&set), params)),
                _ => Box::new(Fileserver::new(Arc::clone(&set), params)),
            };
            let report = Runner::new(sys.env.clone(), sys.fs.clone()).run(
                vec![actor],
                RunLimit::duration_ms(400),
                5,
            );
            tput.push(report.throughput());
            if let Some(obs) = &sys.obs {
                let label = match kind {
                    SystemKind::Pmfs => "pmfs",
                    _ => "hinfs",
                };
                anatomies.push(tail_line(label, obs));
            }
            sys.fs.unmount().expect("unmount");
        }
        println!(
            "{:>6}ns {:>12.0} {:>12.0} {:>7.2}x",
            lat,
            tput[0],
            tput[1],
            tput[1] / tput[0].max(1e-9)
        );
        for line in &anatomies {
            println!("{line}");
        }
    }
    println!("\npaper Fig 11: the gap grows with latency; HiNFS never loses, even at 50 ns.");
    println!("tail anatomy: per point, avg phase/wait split of the p99-cohort exemplars.");
}
