//! The PMFS file system object: mount/mkfs/recovery, the namespace, and the
//! [`FileSystem`] implementation.
//!
//! Locking model (documented order):
//!
//! 1. `ns_shards` — namespace mutations (create, unlink, mkdir, rmdir,
//!    rename) lock the shard keyed by the *(parent inode, entry name)*
//!    pair they mutate, so racing operations on the same entry serialize
//!    while operations on different entries proceed in parallel. Rename
//!    locks its two shards in ascending index order. Cross-entry races
//!    (creating inside a directory that is concurrently removed) are
//!    resolved by the directory's own inode lock: `rmdir` holds the dead
//!    directory's write lock from the emptiness check through
//!    `nlink = 0`, and every entry mutation re-checks `nlink` under the
//!    parent's lock.
//! 2. per-inode `RwLock` — protects file size, block tree and data I/O.
//!    Never hold two except child-then-parent in `rmdir`, which always
//!    follows tree depth upward (no cycles).
//! 3. journal internal mutex — leaf lock, taken inside transactions.

use std::sync::Arc;

use fskit::{
    DirEntry, Fd, FdTable, FileSystem, FileType, FsError, MmapHandle, OpenFlags, Result, Stat,
};
use nvmm::{Cat, NvmmDevice, SimEnv};
use obsv::{FsObs, OpKind, Site, TrackedMutex};

use crate::alloc::Allocator;
use crate::dir;
use crate::file;
use crate::inode::{InodeCache, InodeHandle, InodeMem, INODE_CORE};
use crate::journal::{Journal, RecoveryStats, TxHandle};
use crate::layout::{self, Layout, ROOT_INO};
use crate::mmap::PmfsMmap;
use crate::tree;

/// Format-time parameters.
#[derive(Debug, Clone, Copy)]
pub struct PmfsOptions {
    /// Journal region size in blocks (header + entries).
    pub journal_blocks: u64,
    /// Number of inode slots.
    pub inode_count: u64,
}

impl Default for PmfsOptions {
    fn default() -> Self {
        PmfsOptions {
            journal_blocks: 1024,
            inode_count: 16384,
        }
    }
}

/// Per-open state.
#[derive(Debug)]
pub struct OpenFile {
    /// Inode number of the open file.
    pub ino: u64,
    /// Flags the file was opened with.
    pub flags: OpenFlags,
    /// Shared inode state.
    pub handle: Arc<InodeHandle>,
}

/// A mounted PMFS instance.
pub struct Pmfs {
    dev: Arc<NvmmDevice>,
    env: Arc<SimEnv>,
    layout: Layout,
    journal: Journal,
    alloc: Allocator,
    icache: InodeCache,
    fds: FdTable<OpenFile>,
    ns_shards: Vec<TrackedMutex<()>>,
    recovery: RecoveryStats,
    obs: Arc<FsObs>,
}

impl Pmfs {
    /// Formats `dev` and mounts the fresh file system.
    pub fn mkfs(dev: Arc<NvmmDevice>, opts: PmfsOptions) -> Result<Arc<Pmfs>> {
        let total_blocks = (dev.len() / nvmm::BLOCK_SIZE) as u64;
        let l = Layout::compute(total_blocks, opts.journal_blocks, opts.inode_count)?;
        // Zero the metadata regions.
        dev.zero_persist(
            Cat::Meta,
            Layout::block_off(l.journal_start),
            ((l.data_start - l.journal_start) * nvmm::BLOCK_SIZE as u64) as usize,
        );
        Journal::format(&dev, &l);
        // Root directory inode.
        let root = InodeMem::new(FileType::Dir, 0);
        dev.write_persist(Cat::Meta, l.inode_off(ROOT_INO), &root.encode());
        dev.sfence();
        // Fresh allocator image so a clean mount can load it.
        Allocator::new_empty(&l).persist(&dev, &l);
        layout::write_superblock(&dev, &l);
        Self::mount(dev)
    }

    /// Mounts an existing file system, running journal recovery and (after
    /// an unclean shutdown) the allocator rebuild walk.
    pub fn mount(dev: Arc<NvmmDevice>) -> Result<Arc<Pmfs>> {
        let (l, clean) = layout::read_superblock(&dev)?;
        let recovery = Journal::recover(&dev, &l)?;
        let icache = InodeCache::scan(&dev, &l)?;
        let alloc = if clean {
            Allocator::load(&dev, &l)
        } else {
            Self::rebuild_allocator(&dev, &l)?
        };
        alloc.attach_fault_device(dev.clone());
        layout::set_clean(&dev, false);
        let journal = Journal::open(dev.clone(), &l)?;
        let env = dev.env().clone();
        let obs = Arc::new(FsObs::default());
        obs.set_spans(dev.spans().clone());
        let fds = FdTable::new();
        fds.attach_contention(dev.contention());
        let ns_shards = (0..obsv::NSHARDS)
            .map(|i| TrackedMutex::attached(dev.contention(), Site::pmfs_ns_shard(i), ()))
            .collect();
        Ok(Arc::new(Pmfs {
            dev,
            env,
            layout: l,
            journal,
            alloc,
            icache,
            fds,
            ns_shards,
            recovery,
            obs,
        }))
    }

    fn rebuild_allocator(dev: &NvmmDevice, l: &Layout) -> Result<Allocator> {
        let alloc = Allocator::new_empty(l);
        let mut buf = [0u8; INODE_CORE];
        for ino in 1..l.inode_count {
            dev.read(Cat::Meta, l.inode_off(ino), &mut buf);
            if let Some(mem) = InodeMem::decode(&buf)? {
                tree::mark_all(dev, &mem, &mut |pblk| alloc.mark_used(pblk));
            }
        }
        Ok(alloc)
    }

    /// Journal recovery statistics from mount (diagnostics).
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// This instance's observability bundle (per-op histograms, slow log,
    /// trace ring, span matrix). Timing is off by default; HiNFS wraps
    /// PMFS with its own bundle, so this one is only enabled when PMFS is
    /// the system under test.
    pub fn obs(&self) -> &Arc<FsObs> {
        &self.obs
    }

    /// Wraps one syscall: attributes nested span phases to `op` (and the
    /// un-phased remainder to `Phase::Other`), and records the whole-op
    /// latency when timing is on. Both gates are single relaxed loads
    /// when their instrument is disabled.
    fn timed<T>(&self, op: OpKind, f: impl FnOnce() -> Result<T>) -> Result<T> {
        self.dev.spans().op_scope(
            op,
            || self.env.now(),
            || {
                let _lin = self.obs.lineage().op_scope(op);
                if !self.obs.timing_enabled() {
                    return f();
                }
                let t0 = self.env.now();
                let flight = self.obs.flight();
                flight.begin(op, t0, self.obs.trace.emitted());
                let r = f();
                let total = self.env.now() - t0;
                flight.finish(total, self.obs.trace.emitted());
                self.obs.record_op(op, total, t0);
                r
            },
        )
    }

    // ----- layering API (used by HiNFS, which is built on these
    // structures exactly as the paper built HiNFS inside PMFS) -----

    /// The backing device.
    pub fn device(&self) -> &Arc<NvmmDevice> {
        &self.dev
    }

    /// The simulation environment.
    pub fn env(&self) -> &Arc<SimEnv> {
        &self.env
    }

    /// The metadata journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The block allocator.
    pub fn allocator(&self) -> &Allocator {
        &self.alloc
    }

    /// The on-device layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Looks up the per-open state of a descriptor.
    pub fn open_file(&self, fd: Fd) -> Result<Arc<OpenFile>> {
        self.fds.get(fd)
    }

    /// Returns the shared handle of an inode.
    pub fn inode(&self, ino: u64) -> Result<Arc<InodeHandle>> {
        self.icache.get(&self.dev, &self.layout, ino)
    }

    /// Resolves a path to its inode handle.
    pub fn resolve_path(&self, path: &str) -> Result<Arc<InodeHandle>> {
        let comps = fskit::path::components(path)?;
        self.resolve(&comps)
    }

    /// Journals the inode core's old image and persists the new one.
    /// The change becomes crash-durable when the transaction commits.
    pub fn log_write_inode(&self, tx: &TxHandle, ino: u64, mem: &InodeMem) -> Result<()> {
        let off = self.layout.inode_off(ino);
        self.journal.log_range(tx, off, INODE_CORE)?;
        self.dev.write_persist(Cat::Meta, off, &mem.encode());
        self.dev.sfence();
        Ok(())
    }

    /// Free data blocks (for HiNFS's `Low_f`/`High_f` style policies and
    /// workload sizing).
    pub fn free_blocks(&self) -> u64 {
        self.alloc.free_blocks()
    }

    // ----- namespace internals -----

    /// Namespace shard index for entry `name` under directory
    /// `parent_ino` (FNV-style fold; any deterministic spread works).
    fn ns_shard(&self, parent_ino: u64, name: &str) -> usize {
        let mut h = parent_ino ^ 0x9E37_79B9_7F4A_7C15;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        (h % self.ns_shards.len() as u64) as usize
    }

    /// Locks the namespace shard guarding `(parent_ino, name)`.
    fn lock_ns<'a>(&'a self, parent_ino: u64, name: &str) -> obsv::TrackedMutexGuard<'a, ()> {
        self.ns_shards[self.ns_shard(parent_ino, name)].lock()
    }

    fn resolve(&self, comps: &[&str]) -> Result<Arc<InodeHandle>> {
        let mut h = self.inode(ROOT_INO)?;
        for comp in comps {
            let next = {
                let state = h.state.read();
                if state.ftype != FileType::Dir {
                    return Err(FsError::NotADirectory);
                }
                dir::lookup(&self.dev, &state, comp)?
                    .ok_or(FsError::NotFound)?
                    .0
            };
            h = self.inode(next)?;
        }
        Ok(h)
    }

    fn resolve_parent<'p>(&self, path: &'p str) -> Result<(Arc<InodeHandle>, &'p str)> {
        let (parent_comps, name) = fskit::path::split_parent(path)?;
        let parent = self.resolve(&parent_comps)?;
        if parent.state.read().ftype != FileType::Dir {
            return Err(FsError::NotADirectory);
        }
        Ok((parent, name))
    }

    /// Creates a file or directory entry under `parent` (ns lock held).
    fn create_node(
        &self,
        parent: &Arc<InodeHandle>,
        name: &str,
        ftype: FileType,
    ) -> Result<Arc<InodeHandle>> {
        let ino = self.icache.alloc_slot()?;
        let tx = self.journal.begin()?;
        let mem = InodeMem::new(ftype, self.env.now());
        let res = (|| -> Result<()> {
            self.log_write_inode(&tx, ino, &mem)?;
            let mut pstate = parent.state.write();
            if pstate.ftype != FileType::Dir || pstate.nlink == 0 {
                // The parent was removed between resolution and the
                // shard lock (different entries, different shards).
                return Err(FsError::NotFound);
            }
            dir::add(
                &self.dev,
                &self.journal,
                &tx,
                &self.alloc,
                &mut pstate,
                name,
                ino,
                ftype,
            )?;
            pstate.mtime = self.env.now();
            let p = *pstate;
            drop(pstate);
            self.log_write_inode(&tx, parent.ino, &p)?;
            Ok(())
        })();
        match res {
            Ok(()) => {
                self.journal.commit(tx);
                Ok(self.icache.install(ino, mem))
            }
            Err(e) => {
                self.journal.abort(tx);
                self.icache.free_slot(ino);
                Err(e)
            }
        }
    }

    /// Frees an unlinked inode once its last descriptor closes.
    fn reap(&self, h: &Arc<InodeHandle>) -> Result<()> {
        let tx = self.journal.begin()?;
        let res = (|| -> Result<()> {
            let mut state = h.state.write();
            self.journal
                .log_range(&tx, self.layout.inode_off(h.ino), INODE_CORE)?;
            file::free_all(&self.dev, &self.alloc, &mut state);
            self.dev
                .write_persist(Cat::Meta, self.layout.inode_off(h.ino), &[0u8; INODE_CORE]);
            self.dev.sfence();
            Ok(())
        })();
        match res {
            Ok(()) => {
                self.journal.commit(tx);
                self.icache.free_slot(h.ino);
                Ok(())
            }
            Err(e) => {
                self.journal.abort(tx);
                Err(e)
            }
        }
    }

    /// Append implementation shared by `append` and APPEND-flagged
    /// `write` (both wrap it in the op scope / syscall charge).
    fn append_inner(&self, fd: Fd, data: &[u8]) -> Result<u64> {
        let of = self.fds.get(fd)?;
        if !of.flags.writable() {
            return Err(FsError::BadFd);
        }
        obsv::note_logical(data.len() as u64);
        let tx = self.journal.begin()?;
        let res = (|| -> Result<u64> {
            let mut state = of.handle.state.write();
            let off = state.size;
            file::write_at(
                &self.dev,
                &self.alloc,
                &mut state,
                off,
                data,
                self.env.now(),
            )?;
            let snap = *state;
            drop(state);
            self.log_write_inode(&tx, of.ino, &snap)?;
            Ok(off)
        })();
        match res {
            Ok(off) => {
                self.journal.commit(tx);
                // Direct access: the data is durable before the ack.
                self.obs.lineage().record_inline_drain(data.len() as u64);
                Ok(off)
            }
            Err(e) => {
                self.journal.abort(tx);
                Err(e)
            }
        }
    }

    /// Unlink of `name` under `parent`, with the entry's namespace shard
    /// already held (also used by rename's replace path).
    fn unlink_at(&self, parent: &Arc<InodeHandle>, name: &str) -> Result<()> {
        let (ino, ftype) = {
            let pstate = parent.state.read();
            if pstate.nlink == 0 {
                return Err(FsError::NotFound);
            }
            dir::lookup(&self.dev, &pstate, name)?.ok_or(FsError::NotFound)?
        };
        if ftype != FileType::File {
            return Err(FsError::IsADirectory);
        }
        let child = self.inode(ino)?;
        let tx = self.journal.begin()?;
        // Fallible steps run before the volatile nlink/cache mutations so an
        // abort leaves the in-memory state matching the rolled-back bytes.
        let res = (|| -> Result<bool> {
            {
                let mut pstate = parent.state.write();
                dir::remove(&self.dev, &self.journal, &tx, &pstate, name)?;
                pstate.mtime = self.env.now();
                let p = *pstate;
                drop(pstate);
                self.log_write_inode(&tx, parent.ino, &p)?;
            }
            let mut cstate = child.state.write();
            let freeable = cstate.nlink == 1 && *child.opens.lock() == 0;
            if freeable {
                // Free data and the inode slot in the same transaction.
                self.journal
                    .log_range(&tx, self.layout.inode_off(ino), INODE_CORE)?;
                cstate.nlink = 0;
                file::free_all(&self.dev, &self.alloc, &mut cstate);
                self.dev
                    .write_persist(Cat::Meta, self.layout.inode_off(ino), &[0u8; INODE_CORE]);
                self.dev.sfence();
            } else {
                let mut snap = *cstate;
                snap.nlink -= 1;
                self.log_write_inode(&tx, ino, &snap)?;
                cstate.nlink -= 1;
            }
            Ok(freeable)
        })();
        match res {
            Ok(freeable) => {
                self.journal.commit(tx);
                if freeable {
                    self.icache.free_slot(ino);
                }
                Ok(())
            }
            Err(e) => {
                self.journal.abort(tx);
                Err(e)
            }
        }
    }

    /// Rmdir of `name` under `parent`, with the entry's namespace shard
    /// already held.
    fn rmdir_at(&self, parent: &Arc<InodeHandle>, name: &str) -> Result<()> {
        let (ino, ftype) = {
            let pstate = parent.state.read();
            if pstate.nlink == 0 {
                return Err(FsError::NotFound);
            }
            dir::lookup(&self.dev, &pstate, name)?.ok_or(FsError::NotFound)?
        };
        if ftype != FileType::Dir {
            return Err(FsError::NotADirectory);
        }
        let child = self.inode(ino)?;
        let tx = self.journal.begin()?;
        let res = (|| -> Result<()> {
            // Hold the dying directory's write lock from the emptiness
            // check through `nlink = 0`: a concurrent create into it
            // either lands first (seen here as DirectoryNotEmpty) or
            // observes the dead directory under its own parent lock.
            // Child-then-parent nesting always follows tree depth upward,
            // so it cannot deadlock against another rmdir.
            let mut cstate = child.state.write();
            if cstate.nlink == 0 {
                return Err(FsError::NotFound);
            }
            if !dir::is_empty(&self.dev, &cstate)? {
                return Err(FsError::DirectoryNotEmpty);
            }
            {
                let mut pstate = parent.state.write();
                dir::remove(&self.dev, &self.journal, &tx, &pstate, name)?;
                pstate.mtime = self.env.now();
                let p = *pstate;
                drop(pstate);
                self.log_write_inode(&tx, parent.ino, &p)?;
            }
            self.journal
                .log_range(&tx, self.layout.inode_off(ino), INODE_CORE)?;
            cstate.nlink = 0;
            file::free_all(&self.dev, &self.alloc, &mut cstate);
            self.dev
                .write_persist(Cat::Meta, self.layout.inode_off(ino), &[0u8; INODE_CORE]);
            self.dev.sfence();
            Ok(())
        })();
        match res {
            Ok(()) => {
                self.journal.commit(tx);
                self.icache.free_slot(ino);
                Ok(())
            }
            Err(e) => {
                self.journal.abort(tx);
                Err(e)
            }
        }
    }
}

impl FileSystem for Pmfs {
    fn name(&self) -> &'static str {
        "pmfs"
    }

    fn open(&self, path: &str, flags: OpenFlags) -> Result<Fd> {
        self.timed(OpKind::Open, || {
            self.env.charge_syscall();
            let (parent, name) = self.resolve_parent(path)?;
            fskit::path::validate_name(name)?;
            let _ns = self.lock_ns(parent.ino, name);
            let existing = {
                let pstate = parent.state.read();
                if pstate.ftype != FileType::Dir {
                    return Err(FsError::NotADirectory);
                }
                if pstate.nlink == 0 {
                    return Err(FsError::NotFound);
                }
                dir::lookup(&self.dev, &pstate, name)?
            };
            let handle = match existing {
                Some((_, FileType::Dir)) => return Err(FsError::IsADirectory),
                Some((ino, FileType::File)) => {
                    if flags.contains(OpenFlags::CREATE) && flags.contains(OpenFlags::EXCL) {
                        return Err(FsError::AlreadyExists);
                    }
                    self.inode(ino)?
                }
                None => {
                    if !flags.contains(OpenFlags::CREATE) {
                        return Err(FsError::NotFound);
                    }
                    self.create_node(&parent, name, FileType::File)?
                }
            };
            if flags.contains(OpenFlags::TRUNC) && flags.writable() {
                let tx = self.journal.begin()?;
                let res = (|| -> Result<()> {
                    let mut state = handle.state.write();
                    if file::truncate(&self.dev, &self.alloc, &mut state, 0, self.env.now())? {
                        let snap = *state;
                        drop(state);
                        self.log_write_inode(&tx, handle.ino, &snap)?;
                    }
                    Ok(())
                })();
                match res {
                    Ok(()) => self.journal.commit(tx),
                    Err(e) => {
                        self.journal.abort(tx);
                        return Err(e);
                    }
                }
            }
            *handle.opens.lock() += 1;
            Ok(self.fds.insert(OpenFile {
                ino: handle.ino,
                flags,
                handle,
            }))
        })
    }

    fn close(&self, fd: Fd) -> Result<()> {
        self.timed(OpKind::Close, || {
            self.env.charge_syscall();
            let of = self.fds.remove(fd)?;
            let orphan = {
                let mut opens = of.handle.opens.lock();
                *opens -= 1;
                *opens == 0 && of.handle.state.read().nlink == 0
            };
            if orphan {
                self.reap(&of.handle)?;
            }
            Ok(())
        })
    }

    fn read(&self, fd: Fd, off: u64, buf: &mut [u8]) -> Result<usize> {
        self.timed(OpKind::Read, || {
            self.env.charge_syscall();
            let of = self.fds.get(fd)?;
            if !of.flags.readable() {
                return Err(FsError::BadFd);
            }
            let state = of.handle.state.read();
            Ok(file::read_at(&self.dev, &state, off, buf))
        })
    }

    fn write(&self, fd: Fd, off: u64, data: &[u8]) -> Result<usize> {
        self.timed(OpKind::Write, || {
            self.env.charge_syscall();
            let of = self.fds.get(fd)?;
            if !of.flags.writable() {
                return Err(FsError::BadFd);
            }
            if of.flags.contains(OpenFlags::APPEND) {
                return self.append_inner(fd, data).map(|_| data.len());
            }
            obsv::note_logical(data.len() as u64);
            let tx = self.journal.begin()?;
            let res = (|| -> Result<()> {
                let mut state = of.handle.state.write();
                file::write_at(
                    &self.dev,
                    &self.alloc,
                    &mut state,
                    off,
                    data,
                    self.env.now(),
                )?;
                let snap = *state;
                drop(state);
                self.log_write_inode(&tx, of.ino, &snap)
            })();
            match res {
                Ok(()) => {
                    self.journal.commit(tx);
                    // Direct access: the data is durable before the ack.
                    self.obs.lineage().record_inline_drain(data.len() as u64);
                    Ok(data.len())
                }
                Err(e) => {
                    self.journal.abort(tx);
                    Err(e)
                }
            }
        })
    }

    fn write_vectored(&self, fd: Fd, off: u64, iovs: &[&[u8]]) -> Result<usize> {
        self.timed(OpKind::Write, || {
            self.env.charge_syscall();
            let of = self.fds.get(fd)?;
            if !of.flags.writable() {
                return Err(FsError::BadFd);
            }
            // One journal transaction, one inode lock hold and one logged
            // inode core cover the whole gather list — per-slice the only
            // repeated cost is the data copy itself.
            obsv::note_logical(iovs.iter().map(|s| s.len() as u64).sum());
            let tx = self.journal.begin()?;
            let res = (|| -> Result<usize> {
                let mut state = of.handle.state.write();
                let mut cur = if of.flags.contains(OpenFlags::APPEND) {
                    state.size
                } else {
                    off
                };
                let start = cur;
                for iov in iovs {
                    file::write_at(&self.dev, &self.alloc, &mut state, cur, iov, self.env.now())?;
                    cur += iov.len() as u64;
                }
                let snap = *state;
                drop(state);
                self.log_write_inode(&tx, of.ino, &snap)?;
                Ok((cur - start) as usize)
            })();
            match res {
                Ok(n) => {
                    self.journal.commit(tx);
                    // Direct access: the data is durable before the ack.
                    self.obs.lineage().record_inline_drain(n as u64);
                    Ok(n)
                }
                Err(e) => {
                    self.journal.abort(tx);
                    Err(e)
                }
            }
        })
    }

    fn append(&self, fd: Fd, data: &[u8]) -> Result<u64> {
        self.timed(OpKind::Write, || {
            self.env.charge_syscall();
            self.append_inner(fd, data)
        })
    }

    fn fsync(&self, fd: Fd) -> Result<()> {
        self.timed(OpKind::Fsync, || {
            self.env.charge_syscall();
            let of = self.fds.get(fd)?;
            // Direct-access writes are already durable; fsync only fences and
            // records the synchronization time.
            of.handle.state.write().last_sync = self.env.now();
            self.dev.sfence();
            Ok(())
        })
    }

    fn truncate(&self, fd: Fd, size: u64) -> Result<()> {
        self.timed(OpKind::Truncate, || {
            self.env.charge_syscall();
            let of = self.fds.get(fd)?;
            if !of.flags.writable() {
                return Err(FsError::BadFd);
            }
            let tx = self.journal.begin()?;
            let res = (|| -> Result<()> {
                let mut state = of.handle.state.write();
                if file::truncate(&self.dev, &self.alloc, &mut state, size, self.env.now())? {
                    let snap = *state;
                    drop(state);
                    self.log_write_inode(&tx, of.ino, &snap)?;
                }
                Ok(())
            })();
            match res {
                Ok(()) => {
                    self.journal.commit(tx);
                    Ok(())
                }
                Err(e) => {
                    self.journal.abort(tx);
                    Err(e)
                }
            }
        })
    }

    fn unlink(&self, path: &str) -> Result<()> {
        self.timed(OpKind::Unlink, || {
            self.env.charge_syscall();
            let (parent, name) = self.resolve_parent(path)?;
            let _ns = self.lock_ns(parent.ino, name);
            self.unlink_at(&parent, name)
        })
    }

    fn mkdir(&self, path: &str) -> Result<()> {
        self.env.charge_syscall();
        let (parent, name) = self.resolve_parent(path)?;
        fskit::path::validate_name(name)?;
        let _ns = self.lock_ns(parent.ino, name);
        {
            let pstate = parent.state.read();
            if pstate.nlink == 0 {
                return Err(FsError::NotFound);
            }
            if dir::lookup(&self.dev, &pstate, name)?.is_some() {
                return Err(FsError::AlreadyExists);
            }
        }
        self.create_node(&parent, name, FileType::Dir)?;
        Ok(())
    }

    fn rmdir(&self, path: &str) -> Result<()> {
        self.env.charge_syscall();
        let (parent, name) = self.resolve_parent(path)?;
        let _ns = self.lock_ns(parent.ino, name);
        self.rmdir_at(&parent, name)
    }

    fn readdir(&self, path: &str) -> Result<Vec<DirEntry>> {
        self.env.charge_syscall();
        let comps = fskit::path::components(path)?;
        let h = self.resolve(&comps)?;
        let state = h.state.read();
        if state.ftype != FileType::Dir {
            return Err(FsError::NotADirectory);
        }
        dir::list(&self.dev, &state)
    }

    fn stat(&self, path: &str) -> Result<Stat> {
        self.env.charge_syscall();
        let comps = fskit::path::components(path)?;
        let h = self.resolve(&comps)?;
        let s = h.state.read();
        Ok(Stat {
            ino: h.ino,
            ftype: s.ftype,
            size: s.size,
            blocks: s.blocks,
            nlink: s.nlink,
            mtime_ns: s.mtime,
        })
    }

    fn fstat(&self, fd: Fd) -> Result<Stat> {
        self.env.charge_syscall();
        let of = self.fds.get(fd)?;
        let s = of.handle.state.read();
        Ok(Stat {
            ino: of.ino,
            ftype: s.ftype,
            size: s.size,
            blocks: s.blocks,
            nlink: s.nlink,
            mtime_ns: s.mtime,
        })
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.env.charge_syscall();
        let (src_parent, src_name) = self.resolve_parent(from)?;
        let (dst_parent, dst_name) = self.resolve_parent(to)?;
        fskit::path::validate_name(dst_name)?;
        // Lock both entries' shards in ascending index order (one lock
        // when they collide) so concurrent renames cannot deadlock.
        let si = self.ns_shard(src_parent.ino, src_name);
        let di = self.ns_shard(dst_parent.ino, dst_name);
        let (lo, hi) = (si.min(di), si.max(di));
        let _ns_lo = self.ns_shards[lo].lock();
        let _ns_hi = (hi != lo).then(|| self.ns_shards[hi].lock());
        let (ino, ftype) = {
            let pstate = src_parent.state.read();
            if pstate.nlink == 0 {
                return Err(FsError::NotFound);
            }
            dir::lookup(&self.dev, &pstate, src_name)?.ok_or(FsError::NotFound)?
        };
        // Replace semantics for an existing destination.
        let dst_existing = {
            let pstate = dst_parent.state.read();
            dir::lookup(&self.dev, &pstate, dst_name)?
        };
        if let Some((dino, dftype)) = dst_existing {
            if dino == ino {
                return Ok(());
            }
            match (ftype, dftype) {
                (FileType::File, FileType::File) => self.unlink_at(&dst_parent, dst_name)?,
                (FileType::Dir, FileType::Dir) => self.rmdir_at(&dst_parent, dst_name)?,
                (FileType::File, FileType::Dir) => return Err(FsError::IsADirectory),
                (FileType::Dir, FileType::File) => return Err(FsError::NotADirectory),
            }
        }
        let tx = self.journal.begin()?;
        let same_parent = Arc::ptr_eq(&src_parent, &dst_parent);
        let res = (|| -> Result<()> {
            {
                let mut pstate = src_parent.state.write();
                dir::remove(&self.dev, &self.journal, &tx, &pstate, src_name)?;
                if same_parent {
                    dir::add(
                        &self.dev,
                        &self.journal,
                        &tx,
                        &self.alloc,
                        &mut pstate,
                        dst_name,
                        ino,
                        ftype,
                    )?;
                }
                pstate.mtime = self.env.now();
                let p = *pstate;
                drop(pstate);
                self.log_write_inode(&tx, src_parent.ino, &p)?;
            }
            if !same_parent {
                let mut pstate = dst_parent.state.write();
                dir::add(
                    &self.dev,
                    &self.journal,
                    &tx,
                    &self.alloc,
                    &mut pstate,
                    dst_name,
                    ino,
                    ftype,
                )?;
                pstate.mtime = self.env.now();
                let p = *pstate;
                drop(pstate);
                self.log_write_inode(&tx, dst_parent.ino, &p)?;
            }
            Ok(())
        })();
        match res {
            Ok(()) => {
                self.journal.commit(tx);
                Ok(())
            }
            Err(e) => {
                self.journal.abort(tx);
                Err(e)
            }
        }
    }

    fn sync(&self) -> Result<()> {
        self.env.charge_syscall();
        self.dev.sfence();
        Ok(())
    }

    fn unmount(&self) -> Result<()> {
        self.env.charge_syscall();
        debug_assert_eq!(self.journal.open_txs(), 0, "unmount with open transactions");
        self.alloc.persist(&self.dev, &self.layout);
        layout::set_clean(&self.dev, true);
        Ok(())
    }

    fn mmap(&self, fd: Fd, off: u64, len: usize) -> Result<Arc<dyn MmapHandle>> {
        self.env.charge_syscall();
        let of = self.fds.get(fd)?;
        let handle = PmfsMmap::new(self, &of, off, len)?;
        Ok(Arc::new(handle))
    }
}

impl obsv::Introspect for Pmfs {
    fn snapshot(&self) -> obsv::FsSnapshot {
        let u = self.journal.usage();
        obsv::FsSnapshot {
            system: "pmfs".into(),
            at_ns: self.env.now(),
            journal: Some(obsv::JournalSnap {
                capacity_entries: u.capacity_entries,
                fill_entries: u.fill_entries,
                reserved_entries: u.reserved_entries,
                free_entries: u.free_entries,
                open_txs: u.open_txs,
                generation: u.generation,
            }),
            lineage: self
                .obs
                .lineage()
                .enabled()
                .then(|| self.obs.lineage().snap()),
            ..obsv::FsSnapshot::default()
        }
    }

    fn audit(&self) -> obsv::AuditReport {
        let mut rep = obsv::AuditReport::new(self.env.now());
        let u = self.journal.usage();
        // journal.reserved: every open transaction reserves one commit slot.
        rep.check_eq(9, 0, 0, u.reserved_entries, u.open_txs);
        // journal.capacity: logged plus reserved entries fit the region.
        rep.check_le(
            10,
            0,
            0,
            u.fill_entries + u.reserved_entries,
            u.capacity_entries,
        );
        // journal.stats: the activity counters agree with the live count.
        // (Counters and usage are read under different locks, so this can
        // only be relied on when no transaction is concurrently in flight —
        // which holds everywhere the auditor runs.)
        let s = self.journal.stats().snapshot();
        rep.check_eq(
            11,
            0,
            0,
            s.begins.saturating_sub(s.commits + s.aborts),
            u.open_txs,
        );
        rep
    }
}

impl obsv::MetricSource for Pmfs {
    fn collect(&self, out: &mut dyn obsv::Visitor) {
        obsv::Introspect::snapshot(self).visit_gauges("pmfs_", out);
    }
}

#[cfg(test)]
mod tests;
