//! Shared file system kit for the HiNFS reproduction workspace.
//!
//! Every file system in the workspace (PMFS, EXT2/EXT4 on NVMMBD, EXT4-DAX
//! and HiNFS itself) implements the same [`FileSystem`] trait, so workloads
//! and experiments are written once and run against any of them. The crate
//! also provides the building blocks those implementations share: the error
//! type, open flags, path handling and a file descriptor table.

pub mod dirent;
pub mod error;
pub mod fdtable;
pub mod flags;
pub mod lrulist;
pub mod path;
pub mod types;
pub mod vfs;

pub use error::{FsError, Result};
pub use fdtable::FdTable;
pub use flags::OpenFlags;
pub use types::{DirEntry, Fd, FileType, Ino, Stat};
pub use vfs::{FileSystem, MmapHandle};
