//! System-under-test factory: builds each of the evaluated file systems
//! (Table 3 plus the HiNFS ablation variants) on a fresh emulated device.

use std::sync::Arc;

use extfs::{ExtMode, ExtOptions, Extfs};
use fskit::{FileSystem, Result};
use hinfs::{Hinfs, HinfsConfig};
use nvmm::{CostModel, NvmmDevice, SimEnv, TimeMode, BLOCK_SIZE};
use obsv::{FsObs, Level, MetricsRegistry};
use pmfs::{Pmfs, PmfsOptions};

/// The systems of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// PMFS: NVMM-aware, direct access (the normalization baseline).
    Pmfs,
    /// EXT4 with the DAX patch.
    Ext4Dax,
    /// ext2 on the NVMMBD block device (no journal).
    Ext2Bd,
    /// ext4 on the NVMMBD block device (ordered journal).
    Ext4Bd,
    /// HiNFS.
    Hinfs,
    /// HiNFS without CLFW (Fig 9 ablation).
    HinfsNclfw,
    /// HiNFS with the Eager-Persistent Write Checker disabled (Fig 12/13
    /// ablation: every write buffered).
    HinfsWb,
}

impl SystemKind {
    /// Report label (matches the paper's names).
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Pmfs => "pmfs",
            SystemKind::Ext4Dax => "ext4-dax",
            SystemKind::Ext2Bd => "ext2-nvmmbd",
            SystemKind::Ext4Bd => "ext4-nvmmbd",
            SystemKind::Hinfs => "hinfs",
            SystemKind::HinfsNclfw => "hinfs-nclfw",
            SystemKind::HinfsWb => "hinfs-wb",
        }
    }

    /// The five systems of the overall comparison (Fig 7/8/10/11).
    pub const FIG7: [SystemKind; 5] = [
        SystemKind::Pmfs,
        SystemKind::Ext4Dax,
        SystemKind::Ext2Bd,
        SystemKind::Ext4Bd,
        SystemKind::Hinfs,
    ];

    /// The six systems of the trace/macro comparison (Fig 12/13).
    pub const FIG12: [SystemKind; 6] = [
        SystemKind::Pmfs,
        SystemKind::Ext4Dax,
        SystemKind::Ext2Bd,
        SystemKind::Ext4Bd,
        SystemKind::HinfsWb,
        SystemKind::Hinfs,
    ];
}

/// The observability switches of a system build, collapsed into one
/// value. Every switch is off by default (each enabled layer costs at
/// least one extra atomic load per hook); [`ObsvOptions::all`] turns the
/// whole stack on for debugging and introspection runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObsvOptions {
    /// Record per-op latency histograms (experiments that only need
    /// throughput skip the two extra clock reads per syscall).
    pub timing: bool,
    /// Record structured trace events into the ring.
    pub trace: bool,
    /// Attribute device/FS time to per-op phase spans.
    pub spans: bool,
    /// Run the online invariant auditor at every fsync and writeback pass
    /// (HiNFS only — it walks the whole buffer pool).
    pub audit: bool,
    /// Record lock wait/hold times and stall attribution in the machine's
    /// contention profiler.
    pub contention: bool,
    /// Record per-op flight anatomies (tail-latency exemplars). Implies
    /// `timing`, and only composes full records when `spans` and
    /// `contention` are also on — use the [`ObsvOptions::flight`]
    /// preset.
    pub flight: bool,
    /// Track data lifecycle: durability-lag histograms, per-layer write
    /// amplification, and causal `lineage.drained` trace events.
    pub lineage: bool,
}

impl ObsvOptions {
    /// Everything off — the benchmark default.
    pub fn none() -> ObsvOptions {
        ObsvOptions::default()
    }

    /// Everything on — full instrumentation.
    pub fn all() -> ObsvOptions {
        ObsvOptions {
            timing: true,
            trace: true,
            spans: true,
            audit: true,
            contention: true,
            flight: true,
            lineage: true,
        }
    }

    /// The tail-anatomy preset: everything the flight recorder composes
    /// (timing, trace seq ranges, phase spans, contention waits) plus
    /// the recorder itself — but not the auditor, which adds work to the
    /// timeline being profiled.
    pub fn flight() -> ObsvOptions {
        ObsvOptions {
            timing: true,
            trace: true,
            spans: true,
            audit: false,
            contention: true,
            flight: true,
            lineage: false,
        }
    }

    /// Enables per-op latency histograms.
    pub fn with_timing(mut self) -> Self {
        self.timing = true;
        self
    }

    /// Enables the structured trace ring.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Enables per-op phase span attribution.
    pub fn with_spans(mut self) -> Self {
        self.spans = true;
        self
    }

    /// Enables the online invariant auditor.
    pub fn with_audit(mut self) -> Self {
        self.audit = true;
        self
    }

    /// Enables the lock-contention profiler.
    pub fn with_contention(mut self) -> Self {
        self.contention = true;
        self
    }

    /// Enables the per-op flight recorder (and the timing it implies).
    pub fn with_flight(mut self) -> Self {
        self.flight = true;
        self.timing = true;
        self
    }

    /// Enables data-lifecycle provenance (durability lag + write
    /// amplification + drain trace events).
    pub fn with_lineage(mut self) -> Self {
        self.lineage = true;
        self
    }
}

/// Sizing and model parameters of a system build.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Device capacity in bytes.
    pub device_bytes: usize,
    /// Cost model (latency sweeps replace this).
    pub cost: CostModel,
    /// Virtual (deterministic) or spin (busy-wait) time.
    pub mode: TimeMode,
    /// HiNFS DRAM buffer size in bytes.
    pub buffer_bytes: usize,
    /// ext page cache size in pages.
    pub cache_pages: usize,
    /// Journal region blocks (both families).
    pub journal_blocks: u64,
    /// Inode slots.
    pub inode_count: u64,
    /// Observability switches (all off by default).
    pub obsv: ObsvOptions,
    /// Build the device with cacheline-granularity persistence tracking
    /// so crash simulation (`NvmmDevice::crash`) is available.
    pub tracked: bool,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            device_bytes: 512 << 20,
            cost: CostModel::default(),
            mode: TimeMode::Virtual,
            buffer_bytes: 64 << 20,
            cache_pages: 16384,
            journal_blocks: 2048,
            inode_count: 65536,
            obsv: ObsvOptions::none(),
            tracked: false,
        }
    }
}

impl SystemConfig {
    /// Scales the config to a small test footprint.
    pub fn small() -> SystemConfig {
        SystemConfig {
            device_bytes: 128 << 20,
            buffer_bytes: 8 << 20,
            cache_pages: 2048,
            journal_blocks: 512,
            inode_count: 16384,
            ..SystemConfig::default()
        }
    }
}

/// A built system under test.
pub struct System {
    /// Which system this is.
    pub kind: SystemKind,
    /// The mounted file system.
    pub fs: Arc<dyn FileSystem>,
    /// The backing device (for traffic counters and crash tests).
    pub dev: Arc<NvmmDevice>,
    /// The simulation environment.
    pub env: Arc<SimEnv>,
    /// The concrete HiNFS handle when `kind` is a HiNFS variant (for
    /// policy statistics such as the Fig 6 accuracy counters).
    pub hinfs: Option<Arc<Hinfs>>,
    /// Metrics registry with the device, file system and journal sources
    /// already registered; hand it to `Runner::with_registry` for
    /// per-phase deltas.
    pub registry: Arc<MetricsRegistry>,
    /// The file system's observability bundle (histograms, slow log,
    /// trace ring) when the mounted system has one (HiNFS and the ext
    /// family; PMFS only exposes journal counters).
    pub obs: Option<Arc<FsObs>>,
    /// State-introspection handle (snapshots + invariant audit) for the
    /// mounted system; all current kinds provide one.
    pub introspect: Option<Arc<dyn obsv::Introspect>>,
}

/// What a mount produces: the trait object, the concrete HiNFS handle
/// when applicable, the observability bundle when one exists, and the
/// introspection handle.
type Mounted = (
    Arc<dyn FileSystem>,
    Option<Arc<Hinfs>>,
    Option<Arc<FsObs>>,
    Option<Arc<dyn obsv::Introspect>>,
);

/// Builds (formats and mounts) a system of the given kind.
pub fn build(kind: SystemKind, cfg: &SystemConfig) -> Result<System> {
    let env = SimEnv::new(cfg.mode, cfg.cost.clone());
    let dev = if cfg.tracked {
        NvmmDevice::new_tracked(env.clone(), cfg.device_bytes)
    } else {
        NvmmDevice::new(env.clone(), cfg.device_bytes)
    };
    let popts = PmfsOptions {
        journal_blocks: cfg.journal_blocks,
        inode_count: cfg.inode_count,
    };
    let eopts = ExtOptions {
        journal_blocks: cfg.journal_blocks,
        inode_count: cfg.inode_count,
        cache_pages: cfg.cache_pages,
        ..ExtOptions::default()
    };
    let registry = Arc::new(MetricsRegistry::new());
    registry.register("", dev.clone());
    let (fs, hinfs, obs, introspect): Mounted = match kind {
        SystemKind::Pmfs => {
            let p = Pmfs::mkfs(dev.clone(), popts)?;
            registry.register("", p.clone());
            registry.register("", p.journal().stats().clone());
            let obs = p.obs().clone();
            registry.register("", obs.clone());
            (p.clone(), None, Some(obs), Some(p as _))
        }
        SystemKind::Ext4Dax => {
            let e = Extfs::mkfs(dev.clone(), ExtMode::Ext4Dax, eopts)?;
            registry.register("", e.clone());
            let obs = e.obs().clone();
            (e.clone(), None, Some(obs), Some(e as _))
        }
        SystemKind::Ext2Bd => {
            let e = Extfs::mkfs(dev.clone(), ExtMode::Ext2, eopts)?;
            registry.register("", e.clone());
            let obs = e.obs().clone();
            (e.clone(), None, Some(obs), Some(e as _))
        }
        SystemKind::Ext4Bd => {
            let e = Extfs::mkfs(dev.clone(), ExtMode::Ext4, eopts)?;
            registry.register("", e.clone());
            let obs = e.obs().clone();
            (e.clone(), None, Some(obs), Some(e as _))
        }
        SystemKind::Hinfs | SystemKind::HinfsNclfw | SystemKind::HinfsWb => {
            let mut hcfg = HinfsConfig::default().with_buffer_bytes(cfg.buffer_bytes);
            if kind == SystemKind::HinfsNclfw {
                hcfg = hcfg.nclfw();
            }
            if kind == SystemKind::HinfsWb {
                hcfg = hcfg.wb_only();
            }
            if cfg.obsv.audit {
                hcfg = hcfg.with_audit();
            }
            let h = Hinfs::mkfs(dev.clone(), popts, hcfg)?;
            registry.register("", h.clone());
            registry.register("", h.pmfs().journal().stats().clone());
            let obs = h.obs().clone();
            (h.clone(), Some(h.clone()), Some(obs), Some(h as _))
        }
    };
    apply_obsv(&env, &dev, &registry, obs.as_deref(), cfg);
    Ok(System {
        kind,
        fs,
        dev,
        env,
        hinfs,
        registry,
        obs,
        introspect,
    })
}

/// Wires a mounted system's observability layers to the build's
/// [`ObsvOptions`]: per-op timing and trace ring on the FS observer,
/// span attribution on the device, and the contention profiler level on
/// the simulation environment. Both [`build`] and [`remount_with`] end
/// with this so the switch semantics cannot drift between first mount
/// and remount.
fn apply_obsv(
    env: &Arc<SimEnv>,
    dev: &Arc<NvmmDevice>,
    registry: &Arc<MetricsRegistry>,
    obs: Option<&FsObs>,
    cfg: &SystemConfig,
) {
    if let Some(obs) = obs {
        // Flight records ride the timed() wrappers, so flight implies
        // timing.
        obs.set_timing(cfg.obsv.timing || cfg.obsv.flight);
        obs.set_tracing(cfg.obsv.trace);
        obs.flight().set_enabled(cfg.obsv.flight);
        obs.lineage().set_enabled(cfg.obsv.lineage);
    }
    dev.spans().set_enabled(cfg.obsv.spans);
    env.contention().set_level(if cfg.obsv.contention {
        Level::Full
    } else {
        Level::Off
    });
    registry.register("", env.contention().clone());
}

/// Unmounts a system and mounts it again on the same device — the
/// equivalent of the paper's "after clearing the contents of the OS page
/// cache": every volatile cache (HiNFS DRAM buffer, ext page cache) starts
/// cold while the persistent state survives.
pub fn remount(sys: System) -> Result<System> {
    sys.fs.unmount()?;
    let System { kind, dev, env, .. } = sys;
    // Reconstruct mount-time options from the device-independent defaults;
    // sizes that matter post-mount (buffer/cache) are re-derived by the
    // caller through `build`-time config, so carry them via remount_with.
    remount_with(kind, dev, env, &SystemConfig::default())
}

/// Remounts with explicit sizing (buffer bytes / cache pages).
pub fn remount_with(
    kind: SystemKind,
    dev: Arc<NvmmDevice>,
    env: Arc<SimEnv>,
    cfg: &SystemConfig,
) -> Result<System> {
    let eopts = ExtOptions {
        journal_blocks: cfg.journal_blocks,
        inode_count: cfg.inode_count,
        cache_pages: cfg.cache_pages,
        ..ExtOptions::default()
    };
    let registry = Arc::new(MetricsRegistry::new());
    registry.register("", dev.clone());
    let (fs, hinfs, obs, introspect): Mounted = match kind {
        SystemKind::Pmfs => {
            let p = Pmfs::mount(dev.clone())?;
            registry.register("", p.clone());
            registry.register("", p.journal().stats().clone());
            let obs = p.obs().clone();
            registry.register("", obs.clone());
            (p.clone(), None, Some(obs), Some(p as _))
        }
        SystemKind::Ext4Dax => {
            let e = Extfs::mount(dev.clone(), ExtMode::Ext4Dax, eopts)?;
            registry.register("", e.clone());
            let obs = e.obs().clone();
            (e.clone(), None, Some(obs), Some(e as _))
        }
        SystemKind::Ext2Bd => {
            let e = Extfs::mount(dev.clone(), ExtMode::Ext2, eopts)?;
            registry.register("", e.clone());
            let obs = e.obs().clone();
            (e.clone(), None, Some(obs), Some(e as _))
        }
        SystemKind::Ext4Bd => {
            let e = Extfs::mount(dev.clone(), ExtMode::Ext4, eopts)?;
            registry.register("", e.clone());
            let obs = e.obs().clone();
            (e.clone(), None, Some(obs), Some(e as _))
        }
        SystemKind::Hinfs | SystemKind::HinfsNclfw | SystemKind::HinfsWb => {
            let mut hcfg = HinfsConfig::default().with_buffer_bytes(cfg.buffer_bytes);
            if kind == SystemKind::HinfsNclfw {
                hcfg = hcfg.nclfw();
            }
            if kind == SystemKind::HinfsWb {
                hcfg = hcfg.wb_only();
            }
            if cfg.obsv.audit {
                hcfg = hcfg.with_audit();
            }
            let h = Hinfs::mount(dev.clone(), hcfg)?;
            registry.register("", h.clone());
            registry.register("", h.pmfs().journal().stats().clone());
            let obs = h.obs().clone();
            (h.clone(), Some(h.clone()), Some(obs), Some(h as _))
        }
    };
    apply_obsv(&env, &dev, &registry, obs.as_deref(), cfg);
    Ok(System {
        kind,
        fs,
        dev,
        env,
        hinfs,
        registry,
        obs,
        introspect,
    })
}

/// Convenience: bytes-per-page constant used when sizing caches relative
/// to a dataset.
pub const PAGE_BYTES: usize = BLOCK_SIZE;

#[cfg(test)]
mod tests {
    use super::*;
    use fskit::OpenFlags;

    #[test]
    fn every_system_builds_and_works() {
        for kind in [
            SystemKind::Pmfs,
            SystemKind::Ext4Dax,
            SystemKind::Ext2Bd,
            SystemKind::Ext4Bd,
            SystemKind::Hinfs,
            SystemKind::HinfsNclfw,
            SystemKind::HinfsWb,
        ] {
            let sys = build(kind, &SystemConfig::small()).unwrap();
            let fd = sys
                .fs
                .open("/smoke", OpenFlags::RDWR | OpenFlags::CREATE)
                .unwrap();
            sys.fs.write(fd, 0, b"hello world").unwrap();
            let mut buf = [0u8; 11];
            sys.fs.read(fd, 0, &mut buf).unwrap();
            assert_eq!(&buf, b"hello world", "{}", kind.label());
            sys.fs.fsync(fd).unwrap();
            sys.fs.close(fd).unwrap();
            sys.fs.unmount().unwrap();
            assert_eq!(
                sys.hinfs.is_some(),
                matches!(
                    kind,
                    SystemKind::Hinfs | SystemKind::HinfsNclfw | SystemKind::HinfsWb
                )
            );
            let snap = sys.registry.snapshot();
            assert!(
                snap.counter("nvmm_bytes_written") > 0,
                "{}: device source registered",
                kind.label()
            );
            if sys.hinfs.is_some() {
                assert!(
                    snap.counters.contains_key("hinfs_buffer_hits"),
                    "{}: hinfs source registered",
                    kind.label()
                );
            }
        }
    }

    #[test]
    fn obsv_flags_enable_histograms_and_trace() {
        let cfg = SystemConfig {
            obsv: ObsvOptions::none().with_timing().with_trace(),
            ..SystemConfig::small()
        };
        let sys = build(SystemKind::Hinfs, &cfg).unwrap();
        let obs = sys.obs.as_ref().unwrap();
        assert!(obs.timing_enabled());
        assert!(obs.trace.enabled());
        let fd = sys
            .fs
            .open("/t", OpenFlags::RDWR | OpenFlags::CREATE)
            .unwrap();
        sys.fs.write(fd, 0, &[7u8; 4096]).unwrap();
        sys.fs.fsync(fd).unwrap();
        sys.fs.close(fd).unwrap();
        assert!(obs.op_histo(obsv::OpKind::Write).snapshot().count() > 0);
        let snap = sys.registry.snapshot();
        assert!(
            snap.histo("obsv_op_write_ns").is_some(),
            "{:?}",
            snap.histos
        );
    }

    /// `write_vectored` must land a gather list exactly like the
    /// equivalent contiguous write, on every system: natively on the
    /// NVMM-aware systems (one syscall / one journal transaction for the
    /// whole vector) and through the default per-slice loop on ext.
    #[test]
    fn write_vectored_matches_contiguous_write_everywhere() {
        for kind in [
            SystemKind::Pmfs,
            SystemKind::Ext4Dax,
            SystemKind::Ext2Bd,
            SystemKind::Ext4Bd,
            SystemKind::Hinfs,
        ] {
            let sys = build(kind, &SystemConfig::small()).unwrap();
            let slices: [&[u8]; 3] = [&[0xA1; 1000], &[0xB2; 5000], &[0xC3; 300]];
            let flat: Vec<u8> = slices.concat();

            let fd = sys
                .fs
                .open("/v", OpenFlags::RDWR | OpenFlags::CREATE)
                .unwrap();
            let n = sys.fs.write_vectored(fd, 7, &slices).unwrap();
            assert_eq!(n, flat.len(), "{}", kind.label());
            let mut back = vec![0u8; flat.len()];
            sys.fs.read(fd, 7, &mut back).unwrap();
            assert_eq!(back, flat, "{}: vectored bytes", kind.label());
            assert_eq!(sys.fs.fstat(fd).unwrap().size, 7 + flat.len() as u64);
            sys.fs.fsync(fd).unwrap();
            sys.fs.close(fd).unwrap();

            // On an APPEND descriptor the vector lands at EOF regardless
            // of the offset argument.
            let fd = sys
                .fs
                .open("/v", OpenFlags::RDWR | OpenFlags::APPEND)
                .unwrap();
            let end = sys.fs.fstat(fd).unwrap().size;
            sys.fs
                .write_vectored(fd, 0, &[&[0xD4; 64], &[0xE5; 64]])
                .unwrap();
            let mut tail = vec![0u8; 128];
            sys.fs.read(fd, end, &mut tail).unwrap();
            assert_eq!(&tail[..64], &[0xD4; 64], "{}: append gather", kind.label());
            assert_eq!(&tail[64..], &[0xE5; 64], "{}", kind.label());
            sys.fs.close(fd).unwrap();
            sys.fs.unmount().unwrap();
        }
    }

    /// The native gather paths pay the fixed costs once: on PMFS the whole
    /// vector commits as one journal transaction, so simulated time for a
    /// 4-slice gather is strictly cheaper than four separate writes.
    #[test]
    fn native_vectored_write_is_cheaper_than_split_writes() {
        let slices: [&[u8]; 4] = [&[1; 4096], &[2; 4096], &[3; 4096], &[4; 4096]];
        let vectored = {
            let sys = build(SystemKind::Pmfs, &SystemConfig::small()).unwrap();
            let fd = sys
                .fs
                .open("/v", OpenFlags::RDWR | OpenFlags::CREATE)
                .unwrap();
            sys.env.rebase();
            sys.fs.write_vectored(fd, 0, &slices).unwrap();
            sys.env.now()
        };
        let split = {
            let sys = build(SystemKind::Pmfs, &SystemConfig::small()).unwrap();
            let fd = sys
                .fs
                .open("/v", OpenFlags::RDWR | OpenFlags::CREATE)
                .unwrap();
            sys.env.rebase();
            for (i, s) in slices.iter().enumerate() {
                sys.fs.write(fd, (i * 4096) as u64, s).unwrap();
            }
            sys.env.now()
        };
        assert!(
            vectored < split,
            "gather ({vectored} ns) should beat 4 writes ({split} ns)"
        );
    }

    #[test]
    fn audit_flag_runs_auditor_on_fsync() {
        let cfg = SystemConfig {
            obsv: ObsvOptions::none().with_audit(),
            ..SystemConfig::small()
        };
        let sys = build(SystemKind::Hinfs, &cfg).unwrap();
        let fd = sys
            .fs
            .open("/a", OpenFlags::RDWR | OpenFlags::CREATE)
            .unwrap();
        sys.fs.write(fd, 0, &[3u8; 8192]).unwrap();
        sys.fs.fsync(fd).unwrap();
        sys.fs.close(fd).unwrap();
        let obs = sys.obs.as_ref().unwrap();
        assert!(obs.audit_checks() > 0, "fsync ran the auditor");
        assert_eq!(obs.audit_violations(), 0, "auditor is clean");
        let rep = sys.introspect.as_ref().unwrap().audit();
        assert!(rep.is_clean(), "{rep:?}");
    }

    #[test]
    fn contention_flag_profiles_lock_sites() {
        let cfg = SystemConfig {
            obsv: ObsvOptions::none().with_contention(),
            ..SystemConfig::small()
        };
        let sys = build(SystemKind::Hinfs, &cfg).unwrap();
        assert_eq!(sys.env.contention().level(), Level::Full);
        let fd = sys
            .fs
            .open("/c", OpenFlags::RDWR | OpenFlags::CREATE)
            .unwrap();
        sys.fs.write(fd, 0, &[9u8; 4096]).unwrap();
        sys.fs.fsync(fd).unwrap();
        sys.fs.close(fd).unwrap();
        let snap = sys.env.contention().snapshot();
        // The written file lands in one buffer shard (keyed by its ino);
        // summed over every shard site the lock traffic must show up.
        let shard_acqs: u64 = (0..obsv::NSHARDS)
            .map(|i| snap.site(obsv::Site::hinfs_shard(i)).acquisitions)
            .sum();
        assert!(shard_acqs > 0, "buffer-shard locks were profiled");
        let reg = sys.registry.snapshot();
        let reg_acqs: u64 = (0..obsv::NSHARDS)
            .map(|i| reg.counter(&format!("obsv_site_hinfs_shard{i}_acquisitions")))
            .sum();
        assert!(
            reg_acqs > 0,
            "contention table feeds the registry: {:?}",
            reg.counters
                .keys()
                .filter(|k| k.starts_with("obsv_site"))
                .collect::<Vec<_>>()
        );
        // Off by default: a plain build records nothing.
        let quiet = build(SystemKind::Hinfs, &SystemConfig::small()).unwrap();
        assert_eq!(quiet.env.contention().level(), Level::Off);
    }

    /// A `threads=1` workload run stays bit-identical with contention
    /// tracking at [`Level::Full`]: the profiler only reads the virtual
    /// clock (it never advances it), collection lands in shard 0, and the
    /// site books come out the same on every run.
    #[test]
    fn threads1_contention_run_is_bit_identical() {
        use crate::filebench::{FilebenchParams, Fileserver};
        use crate::fileset::{Fileset, FilesetSpec};
        use crate::runner::{RunLimit, Runner};

        // elapsed_ns plus (acquisitions, contended, wait sum/count,
        // hold sum/count) per site.
        type Books = Vec<[u64; 6]>;
        fn run_once() -> (u64, Books) {
            let cfg = SystemConfig {
                obsv: ObsvOptions::none().with_contention(),
                ..SystemConfig::small()
            };
            let sys = build(SystemKind::Hinfs, &cfg).unwrap();
            let set =
                Fileset::populate(&*sys.fs, FilesetSpec::new("/data", 20, 4, 8 << 10), 11).unwrap();
            sys.env.rebase();
            let actor = Fileserver::new(
                set,
                FilebenchParams {
                    iosize: 16 << 10,
                    append_size: 4 << 10,
                },
            );
            let runner = Runner::new(sys.env.clone(), sys.fs.clone()).with_device(sys.dev.clone());
            let r = runner.run(vec![Box::new(actor)], RunLimit::steps(40), 7);
            let books = sys
                .env
                .contention()
                .snapshot()
                .sites
                .iter()
                .map(|s| {
                    [
                        s.acquisitions,
                        s.contended,
                        s.wait.sum(),
                        s.wait.count(),
                        s.hold.sum(),
                        s.hold.count(),
                    ]
                })
                .collect();
            (r.elapsed_ns, books)
        }

        let (e1, b1) = run_once();
        let (e2, b2) = run_once();
        assert_eq!(e1, e2, "virtual time unchanged by the profiler");
        assert_eq!(b1, b2, "per-site books are bit-identical");
        assert!(
            b1.iter().any(|b| b[0] > 0),
            "the run actually exercised tracked locks"
        );
    }

    /// Every registry metric name is snake_case and carries one of the
    /// known subsystem prefixes, across fully-enabled builds of every
    /// system kind.
    #[test]
    fn metric_names_are_prefixed_snake_case() {
        const PREFIXES: [&str; 6] = ["hinfs_", "pmfs_", "extfs_", "nvmm_", "faultfs_", "obsv_"];
        let cfg = SystemConfig {
            obsv: ObsvOptions::all(),
            ..SystemConfig::small()
        };
        for kind in [
            SystemKind::Pmfs,
            SystemKind::Ext4Dax,
            SystemKind::Ext2Bd,
            SystemKind::Ext4Bd,
            SystemKind::Hinfs,
        ] {
            let sys = build(kind, &cfg).unwrap();
            let fd = sys
                .fs
                .open("/n", OpenFlags::RDWR | OpenFlags::CREATE)
                .unwrap();
            sys.fs.write(fd, 0, &[1u8; 4096]).unwrap();
            sys.fs.fsync(fd).unwrap();
            sys.fs.close(fd).unwrap();
            let snap = sys.registry.snapshot();
            let names = snap
                .counters
                .keys()
                .chain(snap.gauges.keys())
                .chain(snap.histos.keys());
            for name in names {
                assert!(
                    PREFIXES.iter().any(|p| name.starts_with(p)),
                    "{}: metric `{name}` lacks a subsystem prefix",
                    kind.label()
                );
                assert!(
                    name.chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                    "{}: metric `{name}` is not snake_case",
                    kind.label()
                );
            }
            // `ObsvOptions::all()` arms the flight recorder, so the ops
            // above must have produced records and the derived counter
            // must surface through the same conformance-checked path
            // (bench documents turn these into the `tail::` key family).
            assert!(
                snap.counters
                    .get("obsv_flight_records")
                    .copied()
                    .unwrap_or(0)
                    > 0,
                "{}: flight recorder armed but obsv_flight_records missing",
                kind.label()
            );
            // `ObsvOptions::all()` also arms lineage tracking: the write
            // above is a logical byte source on every system, so the
            // per-layer ledger must surface its counters through the
            // same conformance-checked namespace.
            assert!(
                snap.counters
                    .get("obsv_lineage_logical_bytes")
                    .copied()
                    .unwrap_or(0)
                    > 0,
                "{}: lineage armed but obsv_lineage_logical_bytes missing",
                kind.label()
            );
        }
    }
}
