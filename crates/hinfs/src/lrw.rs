//! The global LRW (Least Recently Written) list (paper §3.2).
//!
//! All buffered DRAM blocks sit on one recency list ordered by last written
//! time; writing a block moves it to the MRW (most recently written) end
//! and the background writeback threads pick victims from the LRW end. The
//! structure itself is the shared intrusive list from
//! [`fskit::lrulist`] — the same machinery the page-cache baselines use
//! for plain LRU — parameterized here by *write* recency: only writes call
//! [`LrwList::touch`], never reads.

pub use fskit::lrulist::{RecencyList as LrwList, NIL};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lrw_semantics_track_write_recency() {
        let mut l = LrwList::new(4);
        l.push_head(0); // first write
        l.push_head(1);
        l.push_head(2);
        // A write to 0 makes it MRW; reads would NOT touch.
        l.touch(0);
        assert_eq!(l.tail(), Some(1), "LRW victim is the oldest written");
        assert_eq!(l.head(), Some(0));
    }
}
