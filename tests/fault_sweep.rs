//! Crash-point enumeration and fault-injection sweeps (tier 1).
//!
//! Property side: random small op scripts, crash at every recorded
//! persistence boundary (plus torn-store variants), remount, and check
//! the durability oracle — across HiNFS, PMFS and EXT4.
//!
//! Deterministic side: each injectable fault (journal-full backpressure,
//! ENOSPC, writeback stall) must surface as a *clean* `FsError` on the
//! right operations — never a panic, never an oracle violation after the
//! fault is lifted and the image is crashed and recovered.

use faultfs::{FsKind, Harness, InjectedFault, Op, Script, SweepConfig};
use proptest::prelude::*;

fn sweep_cfg() -> SweepConfig {
    SweepConfig {
        max_points: 16,
        torn_every: 4,
        ..SweepConfig::default()
    }
}

fn sweep_clean(kind: FsKind, seed: u64, n_ops: usize) {
    let h = Harness::new();
    let script = Script::random(seed, n_ops);
    let out = h.sweep(kind, &script, sweep_cfg());
    assert!(
        out.violations.is_empty(),
        "{} seed {seed}: {:#?}",
        kind.label(),
        out.violations
    );
    assert!(out.runs > 0 && out.checks > 0);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

    #[test]
    fn crash_every_point_hinfs((seed, n) in (0u64..1 << 32, 6usize..10)) {
        sweep_clean(FsKind::Hinfs, seed, n);
    }

    #[test]
    fn crash_every_point_pmfs((seed, n) in (0u64..1 << 32, 6usize..10)) {
        sweep_clean(FsKind::Pmfs, seed, n);
    }

    #[test]
    fn crash_every_point_ext4((seed, n) in (0u64..1 << 32, 6usize..10)) {
        sweep_clean(FsKind::Ext4, seed, n);
    }
}

/// A script whose tail (inside the fault window) exercises journaled
/// namespace and data paths on a file created before the window opens.
fn faultable_script() -> Script {
    Script {
        ops: vec![
            Op::Create { file: 0 },
            Op::Append {
                file: 0,
                len: 4096,
                fill: 0x5a,
            },
            Op::Fsync { file: 0 },
            // -- fault window starts at index 3 --
            Op::Append {
                file: 0,
                len: 8192,
                fill: 0x6b,
            },
            Op::Fsync { file: 0 },
            Op::Mkdir { dir: 0 },
            Op::Unlink { file: 0 },
            Op::Create { file: 1 },
        ],
    }
}

/// Runs `fault` over the script tail and asserts graceful degradation:
/// no panics, no oracle violations, and (when `expect_errors`) at least
/// one clean error mentioning `needle`.
fn fault_round(kind: FsKind, fault: InjectedFault, expect_errors: bool, needle: &str) {
    let h = Harness::new();
    let script = faultable_script();
    let out = h.fault_run(kind, &script, fault, 3..script.ops.len());
    assert!(
        out.violations.is_empty(),
        "{} under {}: {:#?}",
        kind.label(),
        fault.label(),
        out.violations
    );
    if expect_errors {
        assert!(
            out.clean_errors.iter().any(|(_, e)| e.contains(needle)),
            "{} under {}: expected a clean {needle} error, got {:?}",
            kind.label(),
            fault.label(),
            out.clean_errors
        );
    }
    assert!(h.stats.snapshot().faults_injected > 0 || !expect_errors);
}

#[test]
fn journal_full_is_a_clean_error_on_pmfs() {
    fault_round(
        FsKind::Pmfs,
        InjectedFault::JournalFull,
        true,
        "JournalFull",
    );
}

#[test]
fn journal_full_is_a_clean_error_on_hinfs() {
    fault_round(
        FsKind::Hinfs,
        InjectedFault::JournalFull,
        true,
        "JournalFull",
    );
}

#[test]
fn journal_full_is_a_clean_error_on_ext4() {
    fault_round(
        FsKind::Ext4,
        InjectedFault::JournalFull,
        true,
        "JournalFull",
    );
}

#[test]
fn enospc_is_a_clean_error_everywhere() {
    for kind in FsKind::ALL {
        fault_round(kind, InjectedFault::Enospc, true, "NoSpace");
    }
}

#[test]
fn writeback_stall_degrades_gracefully_on_hinfs() {
    // A stalled writeback actor makes no progress but must not fail
    // foreground operations or break recovery once lifted.
    fault_round(FsKind::Hinfs, InjectedFault::WritebackStall, false, "");
}

/// Heavy sweep for manual soak runs: `cargo test --test fault_sweep -- --ignored`.
#[test]
#[ignore]
fn stress_many_seeds_all_kinds() {
    let h = Harness::new();
    for seed in 0..40u64 {
        for kind in FsKind::ALL {
            let script = Script::random(seed * 7 + 1, 14);
            let cfg = SweepConfig {
                max_points: 48,
                torn_every: 2,
                ..SweepConfig::default()
            };
            let out = h.sweep(kind, &script, cfg);
            assert!(
                out.violations.is_empty(),
                "{} seed {seed}: {:#?}",
                kind.label(),
                out.violations
            );
        }
    }
}

#[test]
fn harness_counters_flow_into_obsv() {
    let h = Harness::new();
    let script = Script::random(11, 8);
    let out = h.sweep(FsKind::Pmfs, &script, sweep_cfg());
    assert!(out.violations.is_empty(), "{:#?}", out.violations);
    let snap = h.stats.snapshot();
    assert!(snap.crashes_injected > 0);
    assert!(snap.recoveries > 0);
    assert!(snap.oracle_checks > 0);
    assert_eq!(snap.oracle_violations, 0);
    // The sweep's recovery events landed in the trace ring.
    let tail = h.trace.tail(64);
    assert!(tail
        .iter()
        .any(|r| matches!(r.ev, obsv::TraceEvent::RecoveryBegin { .. })));
}
