//! Live file-system state inspector (`fs_top` for the suite).
//!
//! Runs a quick-scale fileserver-style workload on a chosen system and
//! emits the schema-versioned [`obsv::FsSnapshot`] JSON — buffer-pool
//! occupancy against the `Low_f`/`High_f` watermarks, LRW age and
//! dirty-cacheline histograms, Eager/Lazy population, ghost-buffer size,
//! journal fill and reservations, and the NVMM ledger — then verifies
//! that the snapshot agrees with the registry gauges and counters the
//! rest of the suite exports (they are the same collection, so any
//! disagreement is a bug and exits non-zero).
//!
//! ```text
//! cargo run --example fs_inspect                      # one-shot snapshot
//! cargo run --example fs_inspect -- --top             # periodic snapshots over the run
//! cargo run --example fs_inspect -- --audit           # + online invariant audit
//! cargo run --example fs_inspect -- --system pmfs     # pmfs | ext4-dax | ext2 | ext4 | hinfs
//! cargo run --example fs_inspect -- --contention      # + top lock/stall sites by wait time
//! cargo run --example fs_inspect -- --tail            # + p99 tail anatomy and exemplars
//! cargo run --example fs_inspect -- --lag             # + durability lag and per-layer WAF
//! ```
//!
//! Exit status is non-zero when `--audit` finds a violation or when the
//! snapshot and the registry disagree.

use workloads::filebench::{FilebenchParams, Fileserver};
use workloads::fileset::{Fileset, FilesetSpec};
use workloads::runner::{Actor, RunLimit, Runner};
use workloads::setups::{build, SystemConfig, SystemKind};

/// Rounds of the periodic (`--top`) mode.
const TOP_ROUNDS: u32 = 6;
/// Simulated duration of one workload round.
const ROUND_MS: u64 = 10;

fn parse_kind(label: &str) -> SystemKind {
    match label {
        "hinfs" => SystemKind::Hinfs,
        "pmfs" => SystemKind::Pmfs,
        "ext4-dax" => SystemKind::Ext4Dax,
        "ext2" => SystemKind::Ext2Bd,
        "ext4" => SystemKind::Ext4Bd,
        other => {
            eprintln!("unknown --system `{other}` (hinfs|pmfs|ext4-dax|ext2|ext4)");
            std::process::exit(2);
        }
    }
}

/// Registry gauge prefix of the system family (the same prefixes the
/// metric-naming test enforces).
fn prefix(kind: SystemKind) -> &'static str {
    match kind {
        SystemKind::Pmfs => "pmfs_",
        SystemKind::Ext4Dax | SystemKind::Ext2Bd | SystemKind::Ext4Bd => "extfs_",
        _ => "hinfs_",
    }
}

/// Cross-checks the snapshot against the registry exposition; any
/// disagreement between the two views of the same state is returned.
fn agreement_failures(
    snap: &obsv::FsSnapshot,
    reg: &obsv::RegistrySnapshot,
    pre: &str,
) -> Vec<String> {
    let mut fails = Vec::new();
    let mut check = |name: String, snap_v: u64, reg_v: u64| {
        if snap_v != reg_v {
            fails.push(format!("{name}: snapshot {snap_v} != registry {reg_v}"));
        }
    };
    if let Some(b) = &snap.buffer {
        let occupied = b.capacity_blocks - b.free_blocks;
        check(
            format!("{pre}buffer occupancy"),
            occupied,
            reg.gauge(&format!("{pre}buffer_capacity_blocks"))
                - reg.gauge(&format!("{pre}buffer_free_blocks")),
        );
        check(
            format!("{pre}buffer_dirty_blocks"),
            b.dirty_blocks,
            reg.gauge(&format!("{pre}buffer_dirty_blocks")),
        );
        check(
            format!("{pre}buffer_eager_blocks"),
            b.eager_blocks,
            reg.gauge(&format!("{pre}buffer_eager_blocks")),
        );
        check(
            format!("{pre}buffer_lazy_blocks"),
            b.lazy_buffered_blocks,
            reg.gauge(&format!("{pre}buffer_lazy_blocks")),
        );
        check(
            "bbm_evals vs hinfs_bbm_evals counter".into(),
            b.bbm_evals,
            reg.counter("hinfs_bbm_evals"),
        );
    }
    if let Some(j) = &snap.journal {
        check(
            format!("{pre}journal_fill_entries"),
            j.fill_entries,
            reg.gauge(&format!("{pre}journal_fill_entries")),
        );
        check(
            format!("{pre}journal_open_txs"),
            j.open_txs,
            reg.gauge(&format!("{pre}journal_open_txs")),
        );
    }
    if let Some(c) = &snap.cache {
        check(
            format!("{pre}cache_dirty_pages"),
            c.dirty_pages,
            reg.gauge(&format!("{pre}cache_dirty_pages")),
        );
    }
    if let Some(d) = &snap.device {
        check(
            "device bytes_written vs nvmm_bytes_written".into(),
            d.bytes_written,
            reg.counter("nvmm_bytes_written"),
        );
    }
    // The lineage ledger is exported under the shared `obsv_` family (it
    // spans systems), so the snapshot section must agree with those
    // counters regardless of the mount's own prefix.
    if let Some(l) = &snap.lineage {
        for layer in obsv::ALL_LAYERS {
            check(
                format!("obsv_lineage_{}_bytes", layer.label()),
                l.layer(layer),
                reg.counter(&format!("obsv_lineage_{}_bytes", layer.label())),
            );
        }
        check(
            "obsv_lineage_fences".into(),
            l.fences,
            reg.counter("obsv_lineage_fences"),
        );
        check(
            "obsv_lineage_stamps".into(),
            l.stamps,
            reg.counter("obsv_lineage_stamps"),
        );
        check(
            "obsv_lineage_drains_sync".into(),
            l.drains_sync,
            reg.counter("obsv_lineage_drains_sync"),
        );
        check(
            "obsv_lineage_drains_lazy".into(),
            l.drains_lazy,
            reg.counter("obsv_lineage_drains_lazy"),
        );
        check(
            "obsv_lineage_max_lag_ns".into(),
            l.max_lag_ns,
            reg.gauge("obsv_lineage_max_lag_ns"),
        );
    }
    fails
}

/// The system's snapshot merged with the backing device's section.
fn full_snapshot(sys: &workloads::setups::System) -> obsv::FsSnapshot {
    let mut snap = sys
        .introspect
        .as_ref()
        .map(|i| i.snapshot())
        .unwrap_or_default();
    snap.merge(obsv::Introspect::snapshot(&*sys.dev));
    snap
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let top = args.iter().any(|a| a == "--top");
    let audit = args.iter().any(|a| a == "--audit");
    let contention = args.iter().any(|a| a == "--contention");
    let tail = args.iter().any(|a| a == "--tail");
    let lag = args.iter().any(|a| a == "--lag");
    let kind = args
        .iter()
        .position(|a| a == "--system")
        .and_then(|i| args.get(i + 1))
        .map(|s| parse_kind(s))
        .unwrap_or(SystemKind::Hinfs);

    let mut obsv = if tail {
        workloads::ObsvOptions::flight()
    } else {
        workloads::ObsvOptions::none()
    };
    obsv.audit = audit;
    obsv.contention = contention || tail;
    obsv.lineage = obsv.lineage || lag;
    let cfg = SystemConfig {
        obsv,
        ..SystemConfig::small()
    };
    let sys = build(kind, &cfg).expect("build system");
    let set = Fileset::populate(&*sys.fs, FilesetSpec::new("/files", 200, 16, 8 << 10), 7)
        .expect("populate");

    let rounds = if top { TOP_ROUNDS } else { 1 };
    for round in 0..rounds {
        let actors: Vec<Box<dyn Actor>> = vec![Box::new(Fileserver::new(
            set.clone(),
            FilebenchParams::default(),
        ))];
        Runner::new(sys.env.clone(), sys.fs.clone())
            .with_device(sys.dev.clone())
            .run(
                actors,
                RunLimit::duration_ms(ROUND_MS),
                0x1A5 + round as u64,
            );
        if top {
            // fs_top mode: one snapshot line per round, newest state last.
            println!("{}", full_snapshot(&sys).to_json());
        }
    }
    let snap = full_snapshot(&sys);
    if !top {
        println!("{}", snap.to_json());
    }

    if contention {
        let csnap = sys.env.contention().snapshot();
        eprintln!("contention: top sites by wait time");
        for site in csnap.top_by_wait(8) {
            eprintln!(
                "  {:<20} acquisitions={} contended={} wait_ns={} hold_ns={}",
                site.site.label(),
                site.acquisitions,
                site.contended,
                site.wait.sum(),
                site.hold.sum()
            );
        }
    }

    if tail {
        if let Some(obs) = &sys.obs {
            // p99 over every op histogram merged, then the anatomy of
            // the flight-recorder exemplars at or above that bucket.
            let mut merged: Option<obsv::HistoSnapshot> = None;
            for op in obsv::ALL_OPS {
                let s = obs.op_histo(op).snapshot();
                if s.count() == 0 {
                    continue;
                }
                match &mut merged {
                    Some(m) => m.merge(&s),
                    None => merged = Some(s),
                }
            }
            let p99 = merged.map(|m| m.quantile(0.99)).unwrap_or(0);
            let fsnap = obs.flight().snapshot();
            let cohort: Vec<obsv::FlightRecord> = fsnap.cohort(p99).into_iter().copied().collect();
            let anatomy = obsv::TailAnatomy::aggregate(&cohort);
            eprintln!(
                "tail: p99={}ns cohort={} exemplars (of {} recorded ops), seq [{}, {}]",
                p99,
                anatomy.count,
                fsnap.recorded(),
                anatomy.seq_lo,
                anatomy.seq_hi
            );
            for (phase, ns) in anatomy.top_phases(4) {
                eprintln!(
                    "tail:   phase {:<18} {:>10}ns total ({}ns/exemplar)",
                    phase.label(),
                    ns,
                    ns / anatomy.count.max(1)
                );
            }
            for (site, ns) in anatomy.top_waits(4) {
                eprintln!(
                    "tail:   wait  {:<18} {:>10}ns total ({}ns/exemplar)",
                    site.label(),
                    ns,
                    ns / anatomy.count.max(1)
                );
            }
            let mut slowest = cohort.clone();
            slowest.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
            for r in slowest.iter().take(3) {
                eprintln!(
                    "tail:   exemplar {} {}ns at t={}ns shard={} batch={} fences={} stalls={} seq [{}, {}]",
                    r.op.label(),
                    r.total_ns,
                    r.at_ns,
                    if r.shard == obsv::NO_SHARD {
                        "-".to_string()
                    } else {
                        r.shard.to_string()
                    },
                    r.batch,
                    r.fences,
                    r.stall_events,
                    r.seq_start,
                    r.seq_end
                );
            }
        }
    }

    if lag {
        if let Some(obs) = &sys.obs {
            // Durability-lag cohort: how far behind the ack each byte's
            // persistence ran, and which layer multiplied the traffic.
            let l = obs.lineage().snap();
            eprintln!(
                "lag: {} stamps, drains sync={} lazy={}, max_lag={}ns (p50={}ns p99={}ns over {} drains)",
                l.stamps,
                l.drains_sync,
                l.drains_lazy,
                l.max_lag_ns,
                l.lag.quantile(0.50),
                l.lag.quantile(0.99),
                l.lag.count()
            );
            for layer in obsv::ALL_LAYERS {
                eprintln!(
                    "lag:   layer {:<18} {:>12} bytes ({:.2}x logical)",
                    layer.label(),
                    l.layer(layer),
                    l.amplification(layer)
                );
            }
            eprintln!("lag:   fences per logical KiB: {}", l.fences_per_kib());
            for (row, bytes) in l.top_amplifiers(4) {
                eprintln!(
                    "lag:   top persister {:<10} {:>12} persisted+drained bytes",
                    obsv::row_label(row),
                    bytes
                );
            }
        }
    }

    let mut failed = false;
    let reg = sys.registry.snapshot();
    let fails = agreement_failures(&snap, &reg, prefix(kind));
    if fails.is_empty() {
        eprintln!("agreement: snapshot matches registry exposition");
    } else {
        failed = true;
        for f in &fails {
            eprintln!("agreement FAILED: {f}");
        }
    }

    if audit {
        // Exercise the online (fsync-path) auditor too: one write + fsync
        // goes through the fsync core, which self-audits when the mount
        // was built with `ObsvOptions::with_audit()`.
        let fd = sys
            .fs
            .open(
                "/inspect.probe",
                fskit::OpenFlags::RDWR | fskit::OpenFlags::CREATE,
            )
            .expect("open probe");
        sys.fs.write(fd, 0, &[0x5A; 4096]).expect("write probe");
        sys.fs.fsync(fd).expect("fsync probe");
        sys.fs.close(fd).expect("close probe");
        let rep = sys
            .introspect
            .as_ref()
            .expect("system provides introspection")
            .audit();
        eprintln!("audit: {}", rep.to_json());
        if !rep.is_clean() {
            failed = true;
            for v in &rep.violations {
                eprintln!("audit VIOLATION: {v}");
            }
        }
        // The HiNFS mount also self-audits at every fsync/writeback pass
        // when built with `ObsvOptions::with_audit()`; surface those counters too.
        if let Some(obs) = &sys.obs {
            eprintln!(
                "audit: {} online checks, {} violations",
                obs.audit_checks(),
                obs.audit_violations()
            );
            if obs.audit_violations() > 0 {
                failed = true;
            }
        }
    }

    sys.fs.unmount().expect("unmount");
    if failed {
        std::process::exit(1);
    }
}
