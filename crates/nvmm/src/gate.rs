//! The NVMM write-bandwidth gate.
//!
//! The paper emulates NVMM's limited write bandwidth by capping the number
//! of concurrently writing threads at `N_w` and queueing the rest (§5.1).
//! This gate implements the same cap for both time modes:
//!
//! - In **virtual** time it is a *utilization calendar*: time is split
//!   into 1 µs buckets, each with room for `bandwidth × 1 µs` worth of
//!   cachelines. A line written at time `t` occupies the first bucket at
//!   or after `t` with spare room; when demand exceeds the device
//!   bandwidth the next free bucket moves into the future and the writer's
//!   clock is pushed along — exactly the queueing the paper's `N_w` model
//!   produces, but fair at cacheline granularity and insensitive to the
//!   discrete-event scheduler's actor-clock skew (an actor whose clock
//!   lags may fill a past bucket that genuinely had bandwidth to spare).
//! - In **spin** mode it is a counting semaphore of `N_w` permits taken
//!   per cacheline; the caller blocks for a permit and busy-waits the line
//!   latency, just like the paper's emulator.

use std::collections::HashMap;
use std::sync::Arc;

use obsv::{ContentionTable, Site, TrackedCondvar, TrackedMutex};

/// Width of one calendar bucket, ns.
const BUCKET_NS: u64 = 1_000;

/// Keep at most this many µs of calendar history behind the newest bucket.
const PRUNE_WINDOW: u64 = 100_000;

#[derive(Debug)]
struct Calendar {
    /// Lines booked per bucket index.
    used: HashMap<u64, u32>,
    /// Buckets below this are forgotten (always considered full).
    floor: u64,
    /// Lowest bucket *requested* since the last prune. Pruning follows the
    /// slowest admitter, never the fastest: a lagging actor must not queue
    /// behind forgotten history just because another actor's clock runs
    /// far ahead.
    low: u64,
    admits: u64,
}

impl Default for Calendar {
    fn default() -> Self {
        Calendar {
            used: HashMap::new(),
            floor: 0,
            low: u64::MAX,
            admits: 0,
        }
    }
}

/// An `N_w`-writer bandwidth gate.
#[derive(Debug)]
pub struct BandwidthGate {
    /// Virtual mode calendar.
    cal: TrackedMutex<Calendar>,
    /// Lines that fit in one bucket (device bandwidth × bucket width).
    lines_per_bucket: u32,
    /// Spin mode: available permits.
    permits: TrackedMutex<usize>,
    cv: TrackedCondvar,
    n: usize,
}

impl BandwidthGate {
    /// Creates a gate with `n` writer slots sustaining
    /// `bandwidth_bytes_per_sec` in total.
    pub fn new(n: usize, bandwidth_bytes_per_sec: u64) -> Self {
        let n = n.max(1);
        let bytes_per_bucket = bandwidth_bytes_per_sec as u128 * BUCKET_NS as u128 / 1_000_000_000;
        let lines_per_bucket = (bytes_per_bucket / crate::CACHELINE as u128).max(1) as u32;
        BandwidthGate {
            cal: TrackedMutex::new(Site::NvmmGate, Calendar::default()),
            lines_per_bucket,
            permits: TrackedMutex::new(Site::NvmmGate, n),
            cv: TrackedCondvar::new(),
            n,
        }
    }

    /// Connects the gate's locks to a contention table (first caller
    /// wins). `SimEnv::new` calls this right after construction.
    pub fn attach_contention(&self, table: &Arc<ContentionTable>) {
        self.cal.attach(table);
        self.permits.attach(table);
    }

    /// Number of writer slots (spin mode).
    pub fn slots(&self) -> usize {
        self.n
    }

    /// Cacheline capacity of one 1 µs calendar bucket (virtual mode).
    pub fn lines_per_bucket(&self) -> u32 {
        self.lines_per_bucket
    }

    /// Virtual mode: admits one cacheline write issued at `now` with
    /// service time `line_ns`; returns its completion time.
    pub fn admit(&self, now: u64, line_ns: u64) -> u64 {
        let mut cal = self.cal.lock();
        let want = now / BUCKET_NS;
        cal.low = cal.low.min(want);
        let mut b = want.max(cal.floor);
        loop {
            let used = cal.used.entry(b).or_insert(0);
            if *used < self.lines_per_bucket {
                *used += 1;
                break;
            }
            b += 1;
        }
        cal.admits += 1;
        if cal.admits.is_multiple_of(8192) {
            let cutoff = cal.low.saturating_sub(PRUNE_WINDOW);
            if cutoff > cal.floor {
                cal.used.retain(|&k, _| k >= cutoff);
                cal.floor = cutoff;
            }
            cal.low = u64::MAX;
        }
        now.max(b * BUCKET_NS) + line_ns
    }

    /// Spin mode: blocks until a writer slot is available.
    pub fn acquire(&self) {
        let mut p = self.permits.lock();
        while *p == 0 {
            self.cv.wait(&mut p);
        }
        *p -= 1;
    }

    /// Spin mode: returns a writer slot.
    pub fn release(&self) {
        let mut p = self.permits.lock();
        *p += 1;
        drop(p);
        self.cv.notify_one();
    }

    /// Resets the virtual calendar to empty (used when re-basing a
    /// timeline).
    pub fn reset(&self) {
        let mut cal = self.cal.lock();
        *cal = Calendar::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate() -> BandwidthGate {
        // 1 GiB/s: 16 lines per µs bucket.
        BandwidthGate::new(4, 1 << 30)
    }

    #[test]
    fn bucket_capacity_matches_bandwidth() {
        let g = gate();
        // (1 GiB/s × 1 µs) / 64 B = 16.7 -> 16 lines.
        assert_eq!(g.lines_per_bucket(), 16);
        // A tiny-bandwidth device still admits at least one line.
        let tiny = BandwidthGate::new(1, 1);
        assert_eq!(tiny.lines_per_bucket(), 1);
    }

    #[test]
    fn sequential_writer_never_queues() {
        let g = gate();
        // One line per 200 ns = 5 per bucket, below the 16-line capacity.
        let mut now = 0;
        for _ in 0..100 {
            now = g.admit(now, 200);
        }
        assert_eq!(now, 100 * 200);
    }

    #[test]
    fn saturation_pushes_completions_out() {
        let g = gate();
        // 64 lines all issued at t=0 (e.g. four threads writing a block
        // each): 16 fit in bucket 0, the rest spill into later buckets.
        let mut last = 0;
        for _ in 0..64 {
            last = last.max(g.admit(0, 200));
        }
        // The 64th line lands in bucket 3: starts at 3 µs.
        assert_eq!(last, 3_000 + 200);
    }

    #[test]
    fn lagging_clock_backfills_idle_buckets() {
        let g = gate();
        // A fast actor books far in the future.
        let mut now = 1_000_000;
        for _ in 0..32 {
            now = g.admit(now, 200);
        }
        // A lagging actor at t=0 does not wait behind those bookings: the
        // early buckets were idle.
        assert_eq!(g.admit(0, 200), 200);
    }

    #[test]
    fn reset_clears_the_calendar() {
        let g = gate();
        for _ in 0..64 {
            g.admit(0, 200);
        }
        g.reset();
        assert_eq!(g.admit(0, 200), 200);
    }

    #[test]
    fn spin_semaphore_roundtrip() {
        let g = gate();
        g.acquire();
        g.acquire();
        g.release();
        g.acquire();
        g.release();
        g.release();
    }

    #[test]
    fn throughput_is_capped_at_bandwidth() {
        let g = gate();
        // Hammer 10,000 lines from t=0: total span must reflect ~16
        // lines/us.
        let mut last = 0u64;
        for _ in 0..10_000 {
            last = last.max(g.admit(0, 200));
        }
        let expect_us = 10_000 / 16;
        let got_us = last / 1_000;
        assert!(
            (got_us as i64 - expect_us as i64).abs() <= 2,
            "span {got_us} us vs expected {expect_us} us"
        );
    }
}
