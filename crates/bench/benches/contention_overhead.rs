//! Measures the real-time cost of the lock-contention profiler.
//!
//! Three angles: an uncontended tracked lock against its untracked
//! baseline (the fast path is one relaxed level load, so off/uncontended
//! must sit within noise), the same lock with a contender thread
//! hammering it (the slow path pays two clock reads plus histogram
//! bookkeeping, but only on acquisitions that already blocked), and a
//! full 4 KiB write path through HiNFS in spin mode with the profiler
//! off vs on.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use fskit::OpenFlags;
use nvmm::TimeMode;
use obsv::{ContentionTable, Level, Site, TrackedMutex};
use workloads::setups::{build, ObsvOptions, SystemConfig, SystemKind};

fn table(level: Level) -> Arc<ContentionTable> {
    let t0 = std::time::Instant::now();
    let t = Arc::new(ContentionTable::new(move || t0.elapsed().as_nanos() as u64));
    t.set_level(level);
    t
}

/// Uncontended lock/unlock. A detached [`TrackedMutex`] behaves as a
/// bare lock and is the untracked baseline. Attached-but-Off (the
/// production default) adds only the relaxed level load and must sit
/// within noise of it; attached-Full pays two clock reads per
/// acquisition (hold-time bookkeeping) even when nothing blocks.
fn uncontended(c: &mut Criterion) {
    let mut g = c.benchmark_group("contention_lock_uncontended");
    g.sample_size(20);
    let untracked = TrackedMutex::new(Site::FskitFdtable, 0u64);
    let off = TrackedMutex::new(Site::FskitFdtable, 0u64);
    off.attach(&table(Level::Off));
    let full = TrackedMutex::new(Site::FskitFdtable, 0u64);
    full.attach(&table(Level::Full));
    for (label, m) in [
        ("untracked", &untracked),
        ("attached_off", &off),
        ("attached_full", &full),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                *m.lock() += 1;
            })
        });
    }
    g.finish();
}

/// The same acquisition with one contender thread keeping the lock hot.
/// Full tracking pays its clock reads only on the already-blocked path,
/// so the tracked/untracked gap stays small next to the blocking itself.
fn contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("contention_lock_contended");
    g.sample_size(20);
    for (label, level) in [("untracked", None), ("attached_full", Some(Level::Full))] {
        let m = Arc::new(TrackedMutex::new(Site::FskitFdtable, 0u64));
        if let Some(level) = level {
            m.attach(&table(level));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let contender = {
            let (m, stop) = (m.clone(), stop.clone());
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    *m.lock() += 1;
                    std::hint::spin_loop();
                }
            })
        };
        g.bench_function(label, |b| {
            b.iter(|| {
                *m.lock() += 1;
            })
        });
        stop.store(true, Ordering::Relaxed);
        contender.join().unwrap();
    }
    g.finish();
}

fn cfg(contention: bool) -> SystemConfig {
    SystemConfig {
        device_bytes: 64 << 20,
        mode: TimeMode::Spin,
        buffer_bytes: 8 << 20,
        cache_pages: 2048,
        journal_blocks: 256,
        inode_count: 8192,
        obsv: if contention {
            ObsvOptions::none().with_contention()
        } else {
            ObsvOptions::none()
        },
        ..SystemConfig::default()
    }
}

/// End-to-end: a 4 KiB HiNFS write in spin mode, profiler off vs on.
/// Every tracked lock on the path (fd table, buffer pool, namespace)
/// fires, so this is the realistic amplification of the per-lock cost.
fn write_4k(c: &mut Criterion) {
    let mut g = c.benchmark_group("contention_write_4k");
    g.sample_size(20);
    for (label, on) in [("contention_off", false), ("contention_on", true)] {
        let sys = build(SystemKind::Hinfs, &cfg(on)).expect("build");
        let fd = sys
            .fs
            .open("/f", OpenFlags::RDWR | OpenFlags::CREATE)
            .expect("open");
        let data = vec![0xcdu8; 4096];
        let mut i = 0u64;
        g.bench_function(label, |b| {
            b.iter(|| {
                sys.fs.write(fd, (i % 1024) * 4096, &data).expect("write");
                i += 1;
            })
        });
        sys.fs.close(fd).expect("close");
        sys.fs.unmount().expect("unmount");
    }
    g.finish();
}

criterion_group!(contention_overhead, uncontended, contended, write_4k);
criterion_main!(contention_overhead);
