//! Crash-point enumeration and fault-injection sweeps (tier 1).
//!
//! Property side: random small op scripts, crash at every recorded
//! persistence boundary (plus torn-store variants), remount, and check
//! the durability oracle — across HiNFS, PMFS and EXT4.
//!
//! Deterministic side: each injectable fault (journal-full backpressure,
//! ENOSPC, writeback stall) must surface as a *clean* `FsError` on the
//! right operations — never a panic, never an oracle violation after the
//! fault is lifted and the image is crashed and recovered.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use faultfs::{FsKind, Harness, InjectedFault, Op, Script, SweepConfig};
use fskit::{FileSystem, FsError, OpenFlags};
use nvmm::{CostModel, FaultPlan, NvmmDevice, SimEnv};
use pmfs::{Pmfs, PmfsOptions};
use proptest::prelude::*;

fn sweep_cfg() -> SweepConfig {
    SweepConfig {
        max_points: 16,
        torn_every: 4,
        ..SweepConfig::default()
    }
}

fn sweep_clean(kind: FsKind, seed: u64, n_ops: usize) {
    let h = Harness::new();
    let script = Script::random(seed, n_ops);
    let out = h.sweep(kind, &script, sweep_cfg());
    assert!(
        out.violations.is_empty(),
        "{} seed {seed}: {:#?}",
        kind.label(),
        out.violations
    );
    assert!(out.runs > 0 && out.checks > 0);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

    #[test]
    fn crash_every_point_hinfs((seed, n) in (0u64..1 << 32, 6usize..10)) {
        sweep_clean(FsKind::Hinfs, seed, n);
    }

    #[test]
    fn crash_every_point_pmfs((seed, n) in (0u64..1 << 32, 6usize..10)) {
        sweep_clean(FsKind::Pmfs, seed, n);
    }

    #[test]
    fn crash_every_point_ext4((seed, n) in (0u64..1 << 32, 6usize..10)) {
        sweep_clean(FsKind::Ext4, seed, n);
    }
}

/// A script whose tail (inside the fault window) exercises journaled
/// namespace and data paths on a file created before the window opens.
fn faultable_script() -> Script {
    Script {
        ops: vec![
            Op::Create { file: 0 },
            Op::Append {
                file: 0,
                len: 4096,
                fill: 0x5a,
            },
            Op::Fsync { file: 0 },
            // -- fault window starts at index 3 --
            Op::Append {
                file: 0,
                len: 8192,
                fill: 0x6b,
            },
            Op::Fsync { file: 0 },
            Op::Mkdir { dir: 0 },
            Op::Unlink { file: 0 },
            Op::Create { file: 1 },
        ],
    }
}

/// Runs `fault` over the script tail and asserts graceful degradation:
/// no panics, no oracle violations, and (when `expect_errors`) at least
/// one clean error mentioning `needle`.
fn fault_round(kind: FsKind, fault: InjectedFault, expect_errors: bool, needle: &str) {
    let h = Harness::new();
    let script = faultable_script();
    let out = h.fault_run(kind, &script, fault, 3..script.ops.len());
    assert!(
        out.violations.is_empty(),
        "{} under {}: {:#?}",
        kind.label(),
        fault.label(),
        out.violations
    );
    if expect_errors {
        assert!(
            out.clean_errors.iter().any(|(_, e)| e.contains(needle)),
            "{} under {}: expected a clean {needle} error, got {:?}",
            kind.label(),
            fault.label(),
            out.clean_errors
        );
    }
    assert!(h.stats.snapshot().faults_injected > 0 || !expect_errors);
}

#[test]
fn journal_full_is_a_clean_error_on_pmfs() {
    fault_round(
        FsKind::Pmfs,
        InjectedFault::JournalFull,
        true,
        "JournalFull",
    );
}

#[test]
fn journal_full_is_a_clean_error_on_hinfs() {
    fault_round(
        FsKind::Hinfs,
        InjectedFault::JournalFull,
        true,
        "JournalFull",
    );
}

#[test]
fn journal_full_is_a_clean_error_on_ext4() {
    fault_round(
        FsKind::Ext4,
        InjectedFault::JournalFull,
        true,
        "JournalFull",
    );
}

#[test]
fn enospc_is_a_clean_error_everywhere() {
    for kind in FsKind::ALL {
        fault_round(kind, InjectedFault::Enospc, true, "NoSpace");
    }
}

#[test]
fn writeback_stall_degrades_gracefully_on_hinfs() {
    // A stalled writeback actor makes no progress but must not fail
    // foreground operations or break recovery once lifted.
    fault_round(FsKind::Hinfs, InjectedFault::WritebackStall, false, "");
}

/// Heavy sweep for manual soak runs: `cargo test --test fault_sweep -- --ignored`.
#[test]
#[ignore]
fn stress_many_seeds_all_kinds() {
    let h = Harness::new();
    for seed in 0..40u64 {
        for kind in FsKind::ALL {
            let script = Script::random(seed * 7 + 1, 14);
            let cfg = SweepConfig {
                max_points: 48,
                torn_every: 2,
                ..SweepConfig::default()
            };
            let out = h.sweep(kind, &script, cfg);
            assert!(
                out.violations.is_empty(),
                "{} seed {seed}: {:#?}",
                kind.label(),
                out.violations
            );
        }
    }
}

/// Mounts a small PMFS and appends to one file until at least one
/// allocator shard is completely drained: from here on every further
/// allocation runs the PR-7 steal-on-empty path. Returns the device, the
/// mounted fs and the open fd.
fn pmfs_in_steal_regime() -> (Arc<NvmmDevice>, Arc<Pmfs>, fskit::Fd) {
    let env = SimEnv::new_virtual(CostModel::default());
    let dev = NvmmDevice::new_tracked(env.clone(), 8 << 20);
    let fs = Pmfs::mkfs(
        dev.clone(),
        PmfsOptions {
            journal_blocks: 64,
            inode_count: 128,
        },
    )
    .unwrap();
    let fd = fs
        .open("/big", OpenFlags::RDWR | OpenFlags::CREATE)
        .unwrap();
    let mut guard = 0u32;
    while fs.allocator().free_blocks_by_shard().iter().all(|&f| f > 0) {
        fs.append(fd, &[0x42u8; 4096]).unwrap();
        guard += 1;
        assert!(guard < 4096, "filled the device without draining a shard");
    }
    assert!(
        fs.free_blocks() > 8,
        "no headroom left for the steal phase (free {})",
        fs.free_blocks()
    );
    (dev, fs, fd)
}

/// Exact block accounting after a remount: draining the rebuilt allocator
/// yields exactly `free_blocks()` distinct data-area blocks and then a
/// clean NoSpace — so free + reachable == data_blocks, with nothing
/// leaked, nothing double-counted. Freeing the drained blocks restores
/// the count (free panics on double free, proving ownership).
fn assert_exact_accounting(fs: &Pmfs) {
    let free = fs.free_blocks();
    let data = fs.layout().data_blocks();
    assert!(free < data, "the recovered tree must reach some blocks");
    let alloc = fs.allocator();
    let mut got = HashSet::new();
    let mut n = 0u64;
    while let Ok(b) = alloc.alloc() {
        assert!(got.insert(b), "block {b} handed out twice");
        n += 1;
        assert!(n <= free, "allocator over-delivered: {n} > free {free}");
    }
    assert_eq!(n, free, "allocator under-delivered against its own books");
    assert_eq!(alloc.alloc().unwrap_err(), FsError::NoSpace);
    for &b in &got {
        alloc.free(b);
    }
    assert_eq!(fs.free_blocks(), free, "drain+refill must be lossless");
}

/// ENOSPC injected while the allocator is in the steal regime: the append
/// fails with a clean NoSpace (no panic, no leaked reservation); lifting
/// the fault lets the same append succeed *through a steal*; and after a
/// crash + remount the rebuilt bitmap accounts for every block exactly.
#[test]
fn enospc_during_steal_is_clean_and_books_stay_exact() {
    let (dev, fs, fd) = pmfs_in_steal_regime();
    let plan = FaultPlan::new();
    dev.fault_hook().install(plan.clone());
    plan.set_fail_alloc(true);
    let free_before = fs.free_blocks();
    let res = catch_unwind(AssertUnwindSafe(|| fs.append(fd, &[0x77u8; 4096])))
        .expect("injected ENOSPC during steal must not panic");
    assert_eq!(res.unwrap_err(), FsError::NoSpace);
    assert_eq!(
        fs.free_blocks(),
        free_before,
        "a failed allocation must not leak blocks"
    );
    // Lifted: the very same append now succeeds, served by steal-on-empty
    // (the preferred shard may be one of the drained ones).
    plan.set_fail_alloc(false);
    fs.append(fd, &[0x88u8; 4096]).unwrap();
    dev.fault_hook().clear();
    let size = fs.stat("/big").unwrap().size;

    // Power-fail and remount: PMFS acks are durable, and the recovery
    // walk must rebuild exact accounting.
    drop(fs);
    dev.crash();
    let fs2 = Pmfs::mount(dev.clone()).unwrap();
    assert_eq!(fs2.stat("/big").unwrap().size, size);
    assert!(obsv::Introspect::audit(&*fs2).is_clean());
    assert_exact_accounting(&fs2);
}

/// Power failure in the middle of an append whose allocation steals from
/// a neighbour shard: recovery must roll the open transaction back (the
/// acknowledged size survives, the in-flight append does not), the
/// rebuilt bitmap must account for every block exactly, and a second
/// clean remount must agree with the first.
#[test]
fn crash_during_steal_rebuilds_exact_accounting() {
    let _quiet = Harness::new(); // installs the quiet CrashSignal panic hook

    // Pass 1 (record): count the persistence boundaries one steal-path
    // append crosses. The whole setup runs on the virtual clock, so the
    // schedule is identical across builds.
    let n_boundaries = {
        let (dev, fs, fd) = pmfs_in_steal_regime();
        let plan = FaultPlan::new();
        dev.fault_hook().install(plan.clone());
        plan.start_recording();
        fs.append(fd, &[0x99u8; 4096]).unwrap();
        let n = plan.stop_recording().iter().filter(|b| b.index > 0).count() as u64;
        assert!(n >= 3, "a steal-path append crossed only {n} boundaries");
        n
    };

    // Pass 2 (crash): rebuild the identical regime and power-fail at the
    // second-to-last boundary — inside the append's undo transaction,
    // after its journal entries persisted but before the commit record.
    let (dev, fs, fd) = pmfs_in_steal_regime();
    let size_acked = fs.stat("/big").unwrap().size;
    let plan = FaultPlan::new();
    dev.fault_hook().install(plan.clone());
    plan.arm_crash(n_boundaries - 1);
    let res = catch_unwind(AssertUnwindSafe(|| fs.append(fd, &[0x99u8; 4096])));
    match res {
        Err(payload) => assert!(
            payload.downcast_ref::<nvmm::CrashSignal>().is_some(),
            "foreign panic during steal-path append"
        ),
        Ok(_) => panic!("the armed crash must fire inside the append"),
    }
    dev.fault_hook().clear();
    drop(fs);
    dev.crash();

    let fs2 = Pmfs::mount(dev.clone()).unwrap();
    assert!(
        fs2.recovery_stats().txs_undone > 0,
        "the mid-steal append must have left an open transaction to undo"
    );
    assert_eq!(
        fs2.stat("/big").unwrap().size,
        size_acked,
        "acknowledged size must survive, the crashed append must not"
    );
    assert!(obsv::Introspect::audit(&*fs2).is_clean());
    assert_exact_accounting(&fs2);

    // Clean unmount persists the bitmap; the next mount loads it and must
    // agree with the rebuild to the block.
    let free = fs2.free_blocks();
    fs2.unmount().unwrap();
    let fs3 = Pmfs::mount(dev).unwrap();
    assert_eq!(
        fs3.free_blocks(),
        free,
        "persisted bitmap disagrees with rebuild"
    );
}

#[test]
fn harness_counters_flow_into_obsv() {
    let h = Harness::new();
    let script = Script::random(11, 8);
    let out = h.sweep(FsKind::Pmfs, &script, sweep_cfg());
    assert!(out.violations.is_empty(), "{:#?}", out.violations);
    let snap = h.stats.snapshot();
    assert!(snap.crashes_injected > 0);
    assert!(snap.recoveries > 0);
    assert!(snap.oracle_checks > 0);
    assert_eq!(snap.oracle_violations, 0);
    // The sweep's recovery events landed in the trace ring.
    let tail = h.trace.tail(64);
    assert!(tail
        .iter()
        .any(|r| matches!(r.ev, obsv::TraceEvent::RecoveryBegin { .. })));
}
