//! CLI wrapper around [`hinfs_bench::diff`]: diff two BENCH_*.json
//! documents and print a ranked blame table.
//!
//! Usage: `bench_diff <baseline.json> <candidate.json>`
//!
//! Exit status is 0 whenever both files parse — this tool explains a
//! regression, it does not gate one (`bench_check.sh` is the gate).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [base_path, cand_path] = args.as_slice() else {
        eprintln!("usage: bench_diff <baseline.json> <candidate.json>");
        return ExitCode::from(2);
    };
    let read = |p: &str| match std::fs::read_to_string(p) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("bench_diff: cannot read {p}: {e}");
            None
        }
    };
    let (Some(base), Some(cand)) = (read(base_path), read(cand_path)) else {
        return ExitCode::from(2);
    };
    print!(
        "{}",
        hinfs_bench::diff::diff_docs(&base, &cand, base_path, cand_path)
    );
    ExitCode::SUCCESS
}
