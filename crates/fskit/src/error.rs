//! The common error type of every file system in the workspace.

use std::fmt;

/// Result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, FsError>;

/// Errors a file system call can return.
///
/// Modeled on the POSIX errno values the paper's workloads would see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsError {
    /// A path component does not exist (`ENOENT`).
    NotFound,
    /// The target already exists (`EEXIST`).
    AlreadyExists,
    /// A non-final path component is not a directory (`ENOTDIR`).
    NotADirectory,
    /// The operation needs a regular file but found a directory (`EISDIR`).
    IsADirectory,
    /// Directory removal on a non-empty directory (`ENOTEMPTY`).
    DirectoryNotEmpty,
    /// The device ran out of data blocks (`ENOSPC`).
    NoSpace,
    /// The inode table is full (`ENOSPC` flavour).
    NoInodes,
    /// The journal ran out of space and could not be freed.
    JournalFull,
    /// An argument is invalid (`EINVAL`).
    InvalidArgument(&'static str),
    /// The file descriptor is not open (`EBADF`).
    BadFd,
    /// Write beyond the maximum supported file size (`EFBIG`).
    FileTooLarge,
    /// A name component exceeds the limit (`ENAMETOOLONG`).
    NameTooLong,
    /// The file or file system is read-only (`EROFS`/`EBADF`).
    ReadOnly,
    /// The file system does not support this operation.
    Unsupported,
    /// On-media state failed a validity check.
    Corrupted(&'static str),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound => write!(f, "no such file or directory"),
            FsError::AlreadyExists => write!(f, "file exists"),
            FsError::NotADirectory => write!(f, "not a directory"),
            FsError::IsADirectory => write!(f, "is a directory"),
            FsError::DirectoryNotEmpty => write!(f, "directory not empty"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::NoInodes => write!(f, "no free inodes"),
            FsError::JournalFull => write!(f, "journal full"),
            FsError::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
            FsError::BadFd => write!(f, "bad file descriptor"),
            FsError::FileTooLarge => write!(f, "file too large"),
            FsError::NameTooLong => write!(f, "file name too long"),
            FsError::ReadOnly => write!(f, "read-only"),
            FsError::Unsupported => write!(f, "operation not supported"),
            FsError::Corrupted(what) => write!(f, "corrupted on-media state: {what}"),
        }
    }
}

impl std::error::Error for FsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(FsError::NotFound.to_string(), "no such file or directory");
        assert!(FsError::Corrupted("superblock magic")
            .to_string()
            .contains("superblock magic"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(FsError::NoSpace, FsError::NoSpace);
        assert_ne!(FsError::NoSpace, FsError::NoInodes);
    }
}
