//! Structured state introspection: live, serializable snapshots of a
//! mounted file system plus the online invariant auditor's report types.
//!
//! PR 1 and PR 3 made *time* observable (metrics, trace ring, spans); this
//! module makes *state* observable. A [`FsSnapshot`] answers "what is in
//! the write buffer, how full is the journal, where did device time go"
//! at one instant, in a schema-versioned shape that serializes to JSON by
//! hand (no serde in the workspace) and is deterministic under the virtual
//! clock: every collection is a fixed-order struct, so two identical runs
//! produce byte-identical snapshots.
//!
//! The [`Introspect`] trait is implemented by each file system (`hinfs`,
//! `pmfs`, `extfs`) and by the NVMM device; a concrete system fills only
//! the sections it owns and callers [`FsSnapshot::merge`] the rest in.
//! [`AuditReport`] carries the result of an `audit()` pass — every checked
//! invariant has a stable code into [`AUDIT_INVARIANTS`], so violations
//! are machine-readable both here and as `audit.violation` trace events.

use crate::trace::TraceEvent;

/// Version of the snapshot JSON schema. Bump on any field change.
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 1;

/// Upper bounds (exclusive, in ns) of the LRW age histogram buckets; the
/// final bucket collects everything older. The 5 s / 30 s edges line up
/// with the paper's periodic-writeback and dirty-age parameters.
pub const LRW_AGE_BOUNDS_NS: [u64; 6] = [
    1_000_000,      // 1 ms
    10_000_000,     // 10 ms
    100_000_000,    // 100 ms
    1_000_000_000,  // 1 s
    5_000_000_000,  // 5 s
    30_000_000_000, // 30 s
];

/// Number of LRW age buckets (one per bound plus the overflow bucket).
pub const LRW_AGE_BUCKETS: usize = LRW_AGE_BOUNDS_NS.len() + 1;

/// Buckets of the per-block dirty-cacheline population histogram: bucket 0
/// holds occupied-but-clean blocks, then 8-line-wide bands up to the full
/// 64-line block.
pub const DIRTY_LINE_BUCKETS: usize = 9;

/// Bucket index for a buffered block's age.
pub fn lrw_age_bucket(age_ns: u64) -> usize {
    LRW_AGE_BOUNDS_NS
        .iter()
        .position(|&b| age_ns < b)
        .unwrap_or(LRW_AGE_BOUNDS_NS.len())
}

/// Bucket index for a block's dirty-cacheline population (0..=64).
pub fn dirty_line_bucket(dirty_lines: u32) -> usize {
    if dirty_lines == 0 {
        0
    } else {
        (1 + (dirty_lines as usize - 1) / 8).min(DIRTY_LINE_BUCKETS - 1)
    }
}

/// State of the HiNFS NVMM-aware write buffer (paper §3.2/§3.3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BufferSnap {
    /// DRAM buffer slots configured.
    pub capacity_blocks: u64,
    /// Free slots right now.
    pub free_blocks: u64,
    /// Occupied slots (LRW-linked).
    pub occupied_blocks: u64,
    /// Occupied slots holding unflushed lines.
    pub dirty_blocks: u64,
    /// `Low_f` reclaim trigger, in blocks.
    pub low_blocks: u64,
    /// `High_f` reclaim target, in blocks.
    pub high_blocks: u64,
    /// Blocks the Buffer Benefit Model currently holds Eager-Persistent.
    pub eager_blocks: u64,
    /// Occupied slots not marked eager (the lazy-buffered population).
    pub lazy_buffered_blocks: u64,
    /// Ghost-buffer entries: BBM-tracked blocks with no resident slot.
    pub ghost_blocks: u64,
    /// Total blocks with Buffer Benefit Model history.
    pub bbm_tracked_blocks: u64,
    /// Model evaluations so far (mirror of `hinfs_bbm_evals`).
    pub bbm_evals: u64,
    /// Evaluations that confirmed the previous prediction (`hinfs_bbm_accurate`).
    pub bbm_accurate: u64,
    /// Files with buffer state tracked.
    pub files_tracked: u64,
    /// Open (deferred-commit) transactions across every file.
    pub open_txs: u64,
    /// Per-block dirty-cacheline population histogram from the Cacheline
    /// Bitmaps (see [`dirty_line_bucket`]).
    pub dirty_line_histo: [u64; DIRTY_LINE_BUCKETS],
    /// Ages of buffered blocks since their last write (see
    /// [`lrw_age_bucket`]).
    pub lrw_age_histo: [u64; LRW_AGE_BUCKETS],
    /// Age of the LRW victim candidate (tail), ns.
    pub lrw_oldest_age_ns: u64,
}

/// State of the PMFS undo journal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalSnap {
    /// Total undo-entry slots in the journal area.
    pub capacity_entries: u64,
    /// Entries logged in the current generation (the log tail).
    pub fill_entries: u64,
    /// Entries reserved by uncommitted transactions.
    pub reserved_entries: u64,
    /// Entries still available to `begin`/`log_range`.
    pub free_entries: u64,
    /// Transactions begun and not yet resolved.
    pub open_txs: u64,
    /// Journal generation counter.
    pub generation: u64,
}

/// State of the ext-family DRAM page cache.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheSnap {
    /// Page slots configured.
    pub capacity_pages: u64,
    /// Pages currently cached.
    pub cached_pages: u64,
    /// Cached pages holding unwritten data.
    pub dirty_pages: u64,
    /// Lookup hits so far.
    pub hits: u64,
    /// Lookup misses so far.
    pub misses: u64,
}

/// Traffic totals of the emulated NVMM device plus the calling thread's
/// latency-ledger breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceSnap {
    /// Device size in bytes.
    pub capacity_bytes: u64,
    /// Bytes persisted to the media (cacheline granularity).
    pub bytes_written: u64,
    /// Bytes read from the media.
    pub bytes_read: u64,
    /// Cachelines persisted via `clflush`.
    pub flush_lines: u64,
    /// Store fences issued.
    pub fences: u64,
    /// Bytes stored into the volatile domain.
    pub cached_store_bytes: u64,
    /// `(category label, ns)` pairs of the calling thread's analytic time
    /// ledger, in category order.
    pub ledger_ns: Vec<(String, u64)>,
    /// Sum of the ledger categories.
    pub ledger_total_ns: u64,
}

/// One schema-versioned, point-in-time state snapshot. Sections a system
/// does not own stay `None` and are omitted from the JSON.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsSnapshot {
    /// Label of the system that produced the snapshot.
    pub system: String,
    /// Simulated time of collection.
    pub at_ns: u64,
    /// HiNFS write-buffer state.
    pub buffer: Option<BufferSnap>,
    /// PMFS journal state.
    pub journal: Option<JournalSnap>,
    /// ext page-cache state.
    pub cache: Option<CacheSnap>,
    /// NVMM device traffic and ledger.
    pub device: Option<DeviceSnap>,
    /// Data-lifecycle provenance ledger (present when lineage tracking
    /// was enabled on the mount).
    pub lineage: Option<crate::LineageSnap>,
}

fn push_u64s(out: &mut String, fields: &[(&str, u64)]) {
    for (k, v) in fields {
        out.push_str(&format!("\"{k}\":{v},"));
    }
}

fn push_array(out: &mut String, name: &str, vals: &[u64]) {
    out.push_str(&format!("\"{name}\":["));
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push_str("],");
}

fn close_obj(out: &mut String) {
    if out.ends_with(',') {
        out.pop();
    }
    out.push('}');
}

impl FsSnapshot {
    /// Compact single-object JSON form of the snapshot. Field order is
    /// fixed, so identical state serializes byte-identically.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":{},\"system\":\"{}\",\"at_ns\":{},",
            SNAPSHOT_SCHEMA_VERSION,
            self.system.replace(['"', '\\'], "_"),
            self.at_ns
        );
        if let Some(b) = &self.buffer {
            out.push_str("\"buffer\":{");
            push_u64s(
                &mut out,
                &[
                    ("capacity_blocks", b.capacity_blocks),
                    ("free_blocks", b.free_blocks),
                    ("occupied_blocks", b.occupied_blocks),
                    ("dirty_blocks", b.dirty_blocks),
                    ("low_blocks", b.low_blocks),
                    ("high_blocks", b.high_blocks),
                    ("eager_blocks", b.eager_blocks),
                    ("lazy_buffered_blocks", b.lazy_buffered_blocks),
                    ("ghost_blocks", b.ghost_blocks),
                    ("bbm_tracked_blocks", b.bbm_tracked_blocks),
                    ("bbm_evals", b.bbm_evals),
                    ("bbm_accurate", b.bbm_accurate),
                    ("files_tracked", b.files_tracked),
                    ("open_txs", b.open_txs),
                    ("lrw_oldest_age_ns", b.lrw_oldest_age_ns),
                ],
            );
            push_array(&mut out, "dirty_line_histo", &b.dirty_line_histo);
            push_array(&mut out, "lrw_age_bounds_ns", &LRW_AGE_BOUNDS_NS);
            push_array(&mut out, "lrw_age_histo", &b.lrw_age_histo);
            close_obj(&mut out);
            out.push(',');
        }
        if let Some(j) = &self.journal {
            out.push_str("\"journal\":{");
            push_u64s(
                &mut out,
                &[
                    ("capacity_entries", j.capacity_entries),
                    ("fill_entries", j.fill_entries),
                    ("reserved_entries", j.reserved_entries),
                    ("free_entries", j.free_entries),
                    ("open_txs", j.open_txs),
                    ("generation", j.generation),
                ],
            );
            close_obj(&mut out);
            out.push(',');
        }
        if let Some(c) = &self.cache {
            out.push_str("\"cache\":{");
            push_u64s(
                &mut out,
                &[
                    ("capacity_pages", c.capacity_pages),
                    ("cached_pages", c.cached_pages),
                    ("dirty_pages", c.dirty_pages),
                    ("hits", c.hits),
                    ("misses", c.misses),
                ],
            );
            close_obj(&mut out);
            out.push(',');
        }
        if let Some(d) = &self.device {
            out.push_str("\"device\":{");
            push_u64s(
                &mut out,
                &[
                    ("capacity_bytes", d.capacity_bytes),
                    ("bytes_written", d.bytes_written),
                    ("bytes_read", d.bytes_read),
                    ("flush_lines", d.flush_lines),
                    ("fences", d.fences),
                    ("cached_store_bytes", d.cached_store_bytes),
                    ("ledger_total_ns", d.ledger_total_ns),
                ],
            );
            out.push_str("\"ledger_ns\":{");
            for (i, (k, v)) in d.ledger_ns.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{k}\":{v}"));
            }
            out.push_str("},");
            close_obj(&mut out);
            out.push(',');
        }
        if let Some(l) = &self.lineage {
            out.push_str("\"lineage\":{\"layers\":{");
            for (i, layer) in crate::ALL_LAYERS.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", layer.label(), l.layer(*layer)));
            }
            out.push_str("},");
            push_u64s(
                &mut out,
                &[
                    ("fences", l.fences),
                    ("fences_per_kib", l.fences_per_kib()),
                    ("stamps", l.stamps),
                    ("drains_sync", l.drains_sync),
                    ("drains_lazy", l.drains_lazy),
                    ("max_lag_ns", l.max_lag_ns),
                ],
            );
            out.push_str(&format!(
                "\"lag\":{{\"count\":{},\"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
                l.lag.count(),
                l.lag.quantile(0.50),
                l.lag.quantile(0.99),
                l.lag.max()
            ));
            close_obj(&mut out);
            out.push(',');
        }
        close_obj(&mut out);
        out
    }

    /// Fills this snapshot's empty sections from `other` (a snapshot of
    /// another layer of the same system, e.g. the backing device).
    pub fn merge(&mut self, other: FsSnapshot) {
        if self.buffer.is_none() {
            self.buffer = other.buffer;
        }
        if self.journal.is_none() {
            self.journal = other.journal;
        }
        if self.cache.is_none() {
            self.cache = other.cache;
        }
        if self.device.is_none() {
            self.device = other.device;
        }
        if self.lineage.is_none() {
            self.lineage = other.lineage;
        }
    }

    /// Pushes every section's headline numbers as registry gauges under
    /// `prefix` (e.g. `hinfs_`), so the snapshot and the exposition can
    /// never disagree — they are the same collection.
    pub fn visit_gauges(&self, prefix: &str, out: &mut dyn crate::Visitor) {
        let g = |out: &mut dyn crate::Visitor, name: &str, v: u64| {
            out.gauge(&format!("{prefix}{name}"), v);
        };
        if let Some(b) = &self.buffer {
            g(out, "buffer_capacity_blocks", b.capacity_blocks);
            g(out, "buffer_free_blocks", b.free_blocks);
            g(out, "buffer_dirty_blocks", b.dirty_blocks);
            g(out, "buffer_low_blocks", b.low_blocks);
            g(out, "buffer_high_blocks", b.high_blocks);
            g(out, "buffer_eager_blocks", b.eager_blocks);
            g(out, "buffer_lazy_blocks", b.lazy_buffered_blocks);
            g(out, "buffer_ghost_blocks", b.ghost_blocks);
            g(out, "buffer_open_txs", b.open_txs);
            g(out, "buffer_files_tracked", b.files_tracked);
        }
        if let Some(j) = &self.journal {
            g(out, "journal_capacity_entries", j.capacity_entries);
            g(out, "journal_fill_entries", j.fill_entries);
            g(out, "journal_reserved_entries", j.reserved_entries);
            g(out, "journal_free_entries", j.free_entries);
            g(out, "journal_open_txs", j.open_txs);
            g(out, "journal_generation", j.generation);
        }
        if let Some(c) = &self.cache {
            g(out, "cache_capacity_pages", c.capacity_pages);
            g(out, "cache_cached_pages", c.cached_pages);
            g(out, "cache_dirty_pages", c.dirty_pages);
        }
        if let Some(l) = &self.lineage {
            for layer in crate::ALL_LAYERS {
                g(
                    out,
                    &format!("lineage_{}_bytes", layer.label()),
                    l.layer(layer),
                );
            }
            g(out, "lineage_fences", l.fences);
            g(out, "lineage_stamps", l.stamps);
            g(out, "lineage_drains_sync", l.drains_sync);
            g(out, "lineage_drains_lazy", l.drains_lazy);
            g(out, "lineage_max_lag_ns", l.max_lag_ns);
        }
    }
}

/// Stable labels of the audited invariants; a violation's `code` indexes
/// this table. Appending is fine, reordering is a schema break.
pub const AUDIT_INVARIANTS: &[&str] = &[
    "index.slot_owner",          // 0: index entry -> slot with matching (ino, iblk)
    "index.coverage",            // 1: occupied slots and index entries are a bijection
    "lrw.accounting",            // 2: lrw.len + free == capacity
    "lrw.order",                 // 3: LRW tail-to-head chain complete and ends at head
    "bitmap.dirty_subset_valid", // 4: dirty cachelines are a subset of valid ones
    "buffer.dirty_count",        // 5: dirty-block gauge == count of dirty slots
    "config.watermarks",         // 6: low < high <= capacity
    "tx.pending_buffered",       // 7: pending blocks of open txs are buffered dirty
    "tx.accounting",             // 8: txs_opened - txs_committed == open txs
    "journal.reserved",          // 9: journal reservations == open transactions
    "journal.capacity",          // 10: fill + reserved <= capacity
    "journal.stats",             // 11: begins - commits - aborts == open txs
    "cache.accounting",          // 12: dirty <= cached <= capacity
    "device.accounting",         // 13: persisted bytes are cacheline-granular
    "lineage.sync_decay_bound",  // 14: max durability lag <= the mount's sync-decay bound
];

/// Label of an invariant code (`"unknown"` for out-of-range codes).
pub fn invariant_label(code: u64) -> &'static str {
    AUDIT_INVARIANTS
        .get(code as usize)
        .copied()
        .unwrap_or("unknown")
}

/// One broken invariant found by an audit pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditViolation {
    /// Index into [`AUDIT_INVARIANTS`].
    pub code: u64,
    /// Offending inode for per-block invariants, 0 otherwise.
    pub ino: u64,
    /// Offending block for per-block invariants, 0 otherwise.
    pub iblk: u64,
    /// Observed value.
    pub got: u64,
    /// Expected value (or bound).
    pub want: u64,
}

impl AuditViolation {
    /// The violated invariant's label.
    pub fn invariant(&self) -> &'static str {
        invariant_label(self.code)
    }

    /// The trace-ring form of this violation.
    pub fn event(&self) -> TraceEvent {
        TraceEvent::AuditViolation {
            code: self.code,
            ino: self.ino,
            iblk: self.iblk,
            got: self.got,
            want: self.want,
        }
    }
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ino={} iblk={} got={} want={}",
            self.invariant(),
            self.ino,
            self.iblk,
            self.got,
            self.want
        )
    }
}

/// Result of one `audit()` pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Simulated time the pass ran at.
    pub at_ns: u64,
    /// Individual relations checked.
    pub checks: u64,
    /// The invariants that did not hold.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// An empty report stamped at `at_ns`.
    pub fn new(at_ns: u64) -> AuditReport {
        AuditReport {
            at_ns,
            ..AuditReport::default()
        }
    }

    /// Checks `got == want` for invariant `code`.
    pub fn check_eq(&mut self, code: u64, ino: u64, iblk: u64, got: u64, want: u64) {
        self.record(code, ino, iblk, got, want, got == want);
    }

    /// Checks `got <= want` for invariant `code`.
    pub fn check_le(&mut self, code: u64, ino: u64, iblk: u64, got: u64, want: u64) {
        self.record(code, ino, iblk, got, want, got <= want);
    }

    /// Checks `got < want` for invariant `code`.
    pub fn check_lt(&mut self, code: u64, ino: u64, iblk: u64, got: u64, want: u64) {
        self.record(code, ino, iblk, got, want, got < want);
    }

    fn record(&mut self, code: u64, ino: u64, iblk: u64, got: u64, want: u64, ok: bool) {
        self.checks += 1;
        if !ok {
            self.violations.push(AuditViolation {
                code,
                ino,
                iblk,
                got,
                want,
            });
        }
    }

    /// Whether every checked invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Folds another pass (e.g. a lower layer's) into this report.
    pub fn merge(&mut self, other: AuditReport) {
        self.checks += other.checks;
        self.violations.extend(other.violations);
    }

    /// Compact JSON form: `{"at_ns":..,"checks":..,"violations":[..]}`.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"at_ns\":{},\"checks\":{},", self.at_ns, self.checks);
        out.push_str("\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"invariant\":\"{}\",\"ino\":{},\"iblk\":{},\"got\":{},\"want\":{}}}",
                v.invariant(),
                v.ino,
                v.iblk,
                v.got,
                v.want
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Live state introspection: a point-in-time [`FsSnapshot`] plus an online
/// invariant [`AuditReport`]. Implemented by every mounted file system and
/// by the NVMM device; both calls must be safe at any instant (they take
/// the subsystem's own locks) and must not change any observable result.
pub trait Introspect: Send + Sync {
    /// Collects the sections this layer owns.
    fn snapshot(&self) -> FsSnapshot;

    /// Checks this layer's structural invariants.
    fn audit(&self) -> AuditReport;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_their_domains() {
        assert_eq!(lrw_age_bucket(0), 0);
        assert_eq!(lrw_age_bucket(999_999), 0);
        assert_eq!(lrw_age_bucket(1_000_000), 1);
        assert_eq!(lrw_age_bucket(4_999_999_999), 4);
        assert_eq!(lrw_age_bucket(u64::MAX), LRW_AGE_BUCKETS - 1);
        assert_eq!(dirty_line_bucket(0), 0);
        assert_eq!(dirty_line_bucket(1), 1);
        assert_eq!(dirty_line_bucket(8), 1);
        assert_eq!(dirty_line_bucket(9), 2);
        assert_eq!(dirty_line_bucket(64), DIRTY_LINE_BUCKETS - 1);
    }

    #[test]
    fn json_is_flat_per_section_and_deterministic() {
        let snap = FsSnapshot {
            system: "hinfs".into(),
            at_ns: 42,
            buffer: Some(BufferSnap {
                capacity_blocks: 256,
                free_blocks: 200,
                occupied_blocks: 56,
                dirty_blocks: 10,
                low_blocks: 12,
                high_blocks: 51,
                ..BufferSnap::default()
            }),
            journal: Some(JournalSnap {
                capacity_entries: 100,
                fill_entries: 5,
                reserved_entries: 2,
                free_entries: 93,
                open_txs: 2,
                generation: 1,
            }),
            cache: None,
            device: Some(DeviceSnap {
                capacity_bytes: 1 << 20,
                ledger_ns: vec![("persist".into(), 9)],
                ledger_total_ns: 9,
                ..DeviceSnap::default()
            }),
            lineage: None,
        };
        let j = snap.to_json();
        assert_eq!(j, snap.to_json(), "serialization is deterministic");
        assert!(j.starts_with(&format!("{{\"schema\":{SNAPSHOT_SCHEMA_VERSION},")));
        assert!(j.contains("\"system\":\"hinfs\""));
        assert!(j.contains("\"buffer\":{\"capacity_blocks\":256"));
        assert!(j.contains("\"journal\":{\"capacity_entries\":100"));
        assert!(j.contains("\"ledger_ns\":{\"persist\":9}"));
        assert!(!j.contains("\"cache\""), "absent sections are omitted");
        assert!(j.ends_with('}'));
        // Balanced braces: a paste-into-jq smoke check.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn merge_fills_only_missing_sections() {
        let mut fs_snap = FsSnapshot {
            system: "pmfs".into(),
            journal: Some(JournalSnap::default()),
            ..FsSnapshot::default()
        };
        let dev_snap = FsSnapshot {
            system: "nvmm".into(),
            journal: Some(JournalSnap {
                capacity_entries: 7,
                ..JournalSnap::default()
            }),
            device: Some(DeviceSnap::default()),
            ..FsSnapshot::default()
        };
        fs_snap.merge(dev_snap);
        assert!(fs_snap.device.is_some());
        assert_eq!(
            fs_snap.journal.as_ref().unwrap().capacity_entries,
            0,
            "existing sections win"
        );
    }

    #[test]
    fn audit_report_records_checks_and_violations() {
        let mut rep = AuditReport::new(5);
        rep.check_eq(2, 0, 0, 10, 10);
        rep.check_le(10, 0, 0, 4, 8);
        assert!(rep.is_clean());
        rep.check_eq(4, 3, 9, 0b111, 0b101);
        assert_eq!(rep.checks, 3);
        assert!(!rep.is_clean());
        let v = rep.violations[0];
        assert_eq!(v.invariant(), "bitmap.dirty_subset_valid");
        assert_eq!((v.ino, v.iblk), (3, 9));
        let ev = v.event();
        assert_eq!(ev.kind(), "audit.violation");
        let s = format!("{v}");
        assert!(s.contains("bitmap.dirty_subset_valid"), "{s}");
        let j = rep.to_json();
        assert!(j.contains("\"checks\":3"));
        assert!(j.contains("\"invariant\":\"bitmap.dirty_subset_valid\""));
    }

    #[test]
    fn invariant_codes_are_stable_and_labeled() {
        assert_eq!(invariant_label(0), "index.slot_owner");
        assert_eq!(invariant_label(9), "journal.reserved");
        assert_eq!(invariant_label(10_000), "unknown");
        let mut seen = std::collections::HashSet::new();
        for l in AUDIT_INVARIANTS {
            assert!(seen.insert(*l), "duplicate invariant label {l}");
        }
    }
}
