//! Directories for the ext baselines: the shared dirent format
//! ([`fskit::dirent`]) stored in the directory's data blocks and accessed
//! through the buffer cache; every modified block joins the running journal
//! transaction.

use fskit::dirent::{encode_header, entry_len, parse_block, HDR};
use fskit::{DirEntry, FileType, FsError, Result};
use nvmm::{Cat, BLOCK_SIZE};

use crate::alloc::DiskBitmap;
use crate::blkmap;
use crate::cache::BufferCache;
use crate::inode::ExtInodeMem;
use crate::jbd::Jbd;

fn dir_blocks(mem: &ExtInodeMem) -> u64 {
    mem.size / BLOCK_SIZE as u64
}

fn read_dir_block(
    cache: &BufferCache,
    mem: &ExtInodeMem,
    iblk: u64,
    buf: &mut [u8],
) -> Result<u64> {
    let blk = blkmap::lookup(cache, mem, iblk).ok_or(FsError::Corrupted("ext dir hole"))?;
    cache.read(Cat::Meta, blk, 0, buf);
    Ok(blk)
}

/// Looks up `name`, returning its inode number and type.
pub fn lookup(
    cache: &BufferCache,
    mem: &ExtInodeMem,
    name: &str,
) -> Result<Option<(u64, FileType)>> {
    let mut buf = vec![0u8; BLOCK_SIZE];
    for iblk in 0..dir_blocks(mem) {
        read_dir_block(cache, mem, iblk, &mut buf)?;
        for (_, e) in parse_block(&buf)? {
            if e.ino != 0 && e.name == name.as_bytes() {
                let ftype = FileType::from_u8(e.ftype).ok_or(FsError::Corrupted("dirent type"))?;
                return Ok(Some((e.ino, ftype)));
            }
        }
    }
    Ok(None)
}

/// Lists every live entry.
pub fn list(cache: &BufferCache, mem: &ExtInodeMem) -> Result<Vec<DirEntry>> {
    let mut out = Vec::new();
    let mut buf = vec![0u8; BLOCK_SIZE];
    for iblk in 0..dir_blocks(mem) {
        read_dir_block(cache, mem, iblk, &mut buf)?;
        for (_, e) in parse_block(&buf)? {
            if e.ino != 0 {
                out.push(DirEntry {
                    name: String::from_utf8(e.name.clone())
                        .map_err(|_| FsError::Corrupted("dirent name utf8"))?,
                    ino: e.ino,
                    ftype: FileType::from_u8(e.ftype).ok_or(FsError::Corrupted("dirent type"))?,
                });
            }
        }
    }
    Ok(out)
}

/// Whether the directory has no live entries.
pub fn is_empty(cache: &BufferCache, mem: &ExtInodeMem) -> Result<bool> {
    Ok(list(cache, mem)?.is_empty())
}

/// Adds `name -> ino` (caller verified absence and holds the dir lock).
#[allow(clippy::too_many_arguments)]
pub fn add(
    cache: &BufferCache,
    jbd: &Jbd,
    balloc: &DiskBitmap,
    mem: &mut ExtInodeMem,
    name: &str,
    ino: u64,
    ftype: FileType,
    now: u64,
) -> Result<()> {
    debug_assert!(!name.is_empty() && name.len() <= 255);
    let need = entry_len(name.len());
    let mut buf = vec![0u8; BLOCK_SIZE];
    for iblk in 0..dir_blocks(mem) {
        let blk = read_dir_block(cache, mem, iblk, &mut buf)?;
        for (off, e) in parse_block(&buf)? {
            let (free_off, free_len, split_used) = if e.ino == 0 {
                (off, e.rec_len, false)
            } else {
                let used = entry_len(e.name.len());
                (off + used, e.rec_len - used, true)
            };
            if free_len < need {
                continue;
            }
            if split_used {
                let host = encode_header(e.ino, entry_len(e.name.len()), e.name.len(), e.ftype);
                let mut new = Vec::with_capacity(free_len);
                new.extend_from_slice(&encode_header(ino, free_len, name.len(), ftype.as_u8()));
                new.extend_from_slice(name.as_bytes());
                new.resize(free_len, 0);
                cache.write(Cat::Meta, blk, free_off, &new, now);
                cache.write(Cat::Meta, blk, off, &host, now);
            } else {
                let (claim_len, rest) = if free_len - need >= HDR {
                    (need, free_len - need)
                } else {
                    (free_len, 0)
                };
                if rest > 0 {
                    let rest_hdr = encode_header(0, rest, 0, 0);
                    cache.write(Cat::Meta, blk, free_off + claim_len, &rest_hdr, now);
                }
                let mut new = Vec::with_capacity(claim_len);
                new.extend_from_slice(&encode_header(ino, claim_len, name.len(), ftype.as_u8()));
                new.extend_from_slice(name.as_bytes());
                new.resize(claim_len, 0);
                cache.write(Cat::Meta, blk, free_off, &new, now);
            }
            jbd.add(cache, blk);
            return Ok(());
        }
    }
    // Grow by one block.
    let iblk = dir_blocks(mem);
    let (blk, _fresh) = blkmap::ensure(cache, jbd, balloc, mem, iblk, now)?;
    let block = fskit::dirent::init_block(BLOCK_SIZE, ino, name, ftype.as_u8());
    cache.write(Cat::Meta, blk, 0, &block, now);
    jbd.add(cache, blk);
    mem.size += BLOCK_SIZE as u64;
    Ok(())
}

/// Removes `name`, returning the inode number and type it pointed at.
pub fn remove(
    cache: &BufferCache,
    jbd: &Jbd,
    mem: &ExtInodeMem,
    name: &str,
    now: u64,
) -> Result<(u64, FileType)> {
    let mut buf = vec![0u8; BLOCK_SIZE];
    for iblk in 0..dir_blocks(mem) {
        let blk = read_dir_block(cache, mem, iblk, &mut buf)?;
        let entries = parse_block(&buf)?;
        for (i, (off, e)) in entries.iter().enumerate() {
            if e.ino == 0 || e.name != name.as_bytes() {
                continue;
            }
            let ftype = FileType::from_u8(e.ftype).ok_or(FsError::Corrupted("dirent type"))?;
            if i > 0 {
                let (poff, p) = &entries[i - 1];
                let hdr = encode_header(p.ino, p.rec_len + e.rec_len, p.name.len(), p.ftype);
                cache.write(Cat::Meta, blk, *poff, &hdr, now);
            } else {
                let hdr = encode_header(0, e.rec_len, 0, 0);
                cache.write(Cat::Meta, blk, *off, &hdr, now);
            }
            jbd.add(cache, blk);
            return Ok((e.ino, ftype));
        }
    }
    Err(FsError::NotFound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::Nvmmbd;
    use nvmm::{CostModel, NvmmDevice, SimEnv};
    use std::sync::Arc;

    struct Fx {
        cache: BufferCache,
        jbd: Jbd,
        balloc: DiskBitmap,
        mem: ExtInodeMem,
    }

    fn setup() -> Fx {
        let env = SimEnv::new_virtual(CostModel::default());
        let dev = NvmmDevice::new(env, 4096 * BLOCK_SIZE);
        let bd = Arc::new(Nvmmbd::new(dev));
        let cache = BufferCache::new(bd.clone(), 128);
        let jbd = Jbd::open(bd, 1, 32, true);
        let balloc = DiskBitmap::load(&cache, 40, 4096);
        for b in 0..64 {
            balloc.set(&cache, &jbd, b, 0);
        }
        Fx {
            cache,
            jbd,
            balloc,
            mem: ExtInodeMem::new(FileType::Dir, 0),
        }
    }

    #[test]
    fn add_lookup_remove_list() {
        let mut fx = setup();
        add(
            &fx.cache,
            &fx.jbd,
            &fx.balloc,
            &mut fx.mem,
            "a.txt",
            10,
            FileType::File,
            0,
        )
        .unwrap();
        add(
            &fx.cache,
            &fx.jbd,
            &fx.balloc,
            &mut fx.mem,
            "sub",
            11,
            FileType::Dir,
            0,
        )
        .unwrap();
        assert_eq!(
            lookup(&fx.cache, &fx.mem, "a.txt").unwrap(),
            Some((10, FileType::File))
        );
        assert_eq!(lookup(&fx.cache, &fx.mem, "nope").unwrap(), None);
        assert_eq!(list(&fx.cache, &fx.mem).unwrap().len(), 2);
        assert_eq!(
            remove(&fx.cache, &fx.jbd, &fx.mem, "a.txt", 0).unwrap(),
            (10, FileType::File)
        );
        assert_eq!(lookup(&fx.cache, &fx.mem, "a.txt").unwrap(), None);
        assert!(!is_empty(&fx.cache, &fx.mem).unwrap());
        remove(&fx.cache, &fx.jbd, &fx.mem, "sub", 0).unwrap();
        assert!(is_empty(&fx.cache, &fx.mem).unwrap());
    }

    #[test]
    fn grows_and_reuses_space() {
        let mut fx = setup();
        for i in 0..100u64 {
            add(
                &fx.cache,
                &fx.jbd,
                &fx.balloc,
                &mut fx.mem,
                &format!("file-{i:04}"),
                i + 1,
                FileType::File,
                0,
            )
            .unwrap();
        }
        let blocks = fx.mem.blocks;
        for i in 0..100u64 {
            remove(&fx.cache, &fx.jbd, &fx.mem, &format!("file-{i:04}"), 0).unwrap();
        }
        for i in 0..100u64 {
            add(
                &fx.cache,
                &fx.jbd,
                &fx.balloc,
                &mut fx.mem,
                &format!("file2-{i:04}"),
                i + 200,
                FileType::File,
                0,
            )
            .unwrap();
        }
        assert_eq!(fx.mem.blocks, blocks, "space reused, no growth");
        assert_eq!(list(&fx.cache, &fx.mem).unwrap().len(), 100);
    }

    #[test]
    fn dir_edits_are_journaled() {
        let mut fx = setup();
        add(
            &fx.cache,
            &fx.jbd,
            &fx.balloc,
            &mut fx.mem,
            "j",
            5,
            FileType::File,
            0,
        )
        .unwrap();
        assert!(fx.jbd.running_len() > 0, "dir block joined the running tx");
    }
}
