//! Measures the real-time cost of the per-op flight recorder.
//!
//! Three angles: the raw `begin`/`finish` pair in isolation (disabled vs
//! enabled, with the disabled side being the one-relaxed-load contract
//! every obsv hook shares), the disabled `SpanTable::scope` hook as the
//! reference off-path baseline the acceptance criterion compares
//! against, and a full 4 KiB write path through HiNFS in spin mode with
//! flight off vs on (the on path also arms timing + spans + contention,
//! since `ObsvOptions::flight()` composes them).

use criterion::{criterion_group, criterion_main, Criterion};
use fskit::OpenFlags;
use nvmm::TimeMode;
use obsv::{FlightRecorder, OpKind, Phase, SpanTable};
use workloads::setups::{build, ObsvOptions, SystemConfig, SystemKind};

fn cfg(flight: bool) -> SystemConfig {
    SystemConfig {
        device_bytes: 64 << 20,
        mode: TimeMode::Spin,
        buffer_bytes: 8 << 20,
        cache_pages: 2048,
        journal_blocks: 256,
        inode_count: 8192,
        obsv: if flight {
            ObsvOptions::flight()
        } else {
            ObsvOptions::none()
        },
        ..SystemConfig::default()
    }
}

/// The bare hook pair: `begin` + `finish` around a trivial op, with the
/// recorder disabled (the production-default state — one relaxed load
/// per call) and enabled (TLS frame arm + retire into the reservoir).
fn raw_begin_finish(c: &mut Criterion) {
    let mut g = c.benchmark_group("flight_raw");
    g.sample_size(20);
    for (label, enabled) in [("disabled", false), ("enabled", true)] {
        let rec = FlightRecorder::default();
        rec.set_enabled(enabled);
        let mut clock = 0u64;
        g.bench_function(label, |b| {
            b.iter(|| {
                clock += 1;
                rec.begin(OpKind::Write, clock, clock);
                rec.finish(std::hint::black_box(17), clock);
            })
        });
    }
    // The acceptance baseline: a disabled span scope is the cheapest
    // existing hook; disabled flight begin/finish must land in the same
    // regime (two relaxed loads vs one).
    let table = SpanTable::default();
    let mut clock = 0u64;
    g.bench_function("span_scope_disabled_baseline", |b| {
        b.iter(|| {
            clock += 1;
            table.scope(Phase::Persist, || clock, || std::hint::black_box(clock))
        })
    });
    g.finish();
}

/// End-to-end: a 4 KiB HiNFS write in spin mode, flight off vs on. The
/// on side pays for the whole `ObsvOptions::flight()` preset (timing +
/// trace + spans + contention + recorder), which is the honest cost of
/// turning tail anatomy on for a run.
fn write_4k(c: &mut Criterion) {
    let mut g = c.benchmark_group("flight_write_4k");
    g.sample_size(20);
    for (label, flight) in [("flight_off", false), ("flight_on", true)] {
        let sys = build(SystemKind::Hinfs, &cfg(flight)).expect("build");
        let fd = sys
            .fs
            .open("/f", OpenFlags::RDWR | OpenFlags::CREATE)
            .expect("open");
        let data = vec![0xabu8; 4096];
        let mut i = 0u64;
        g.bench_function(label, |b| {
            b.iter(|| {
                sys.fs.write(fd, (i % 1024) * 4096, &data).expect("write");
                i += 1;
            })
        });
        sys.fs.close(fd).expect("close");
        sys.fs.unmount().expect("unmount");
    }
    g.finish();
}

criterion_group!(flight_overhead, raw_begin_finish, write_4k);
criterion_main!(flight_overhead);
