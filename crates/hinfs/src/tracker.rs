//! Ordered-mode transaction tracking (paper §4.1).
//!
//! A lazy-persistent write journals and applies its metadata immediately
//! but must not write the commit record "until the related DRAM data
//! blocks are persisted to NVMM". Each file keeps its open transactions in
//! a FIFO ([`FileBuf::txs`]); a transaction commits only when
//!
//! 1. every data block it covers has been flushed (its `pending` set is
//!    empty), **and**
//! 2. it is the oldest open transaction of the file.
//!
//! Rule 2 is essential for undo-log correctness: transactions of one file
//! all journal the same inode core, and undo records are only safe to leave
//! behind if commits happen in logging order — otherwise recovery of an
//! older open transaction would roll back a newer committed one.
//!
//! Each open transaction carries a lineage [`obsv::Stamp`]: the deferred
//! commit record is the moment the journaled metadata becomes durable, so
//! a drain is recorded against the stamp when the commit happens — lag 0
//! when the commit runs inside the synchronization the caller asked for
//! ([`obsv::DrainKind::Sync`]), the real ack-to-commit age when the
//! writeback machinery commits it behind the caller's back.

use std::collections::HashSet;

use obsv::{DrainKind, LineageTable};
use pmfs::{Journal, TxHandle};

use crate::buffer::{FileBuf, LocalTx};
use crate::stats::HinfsStats;

/// Enqueues a transaction with the blocks whose flush it awaits and the
/// lineage stamp of the journaling op. Pass an empty set for transactions
/// with no buffered data (they still wait their FIFO turn).
pub fn enqueue(
    file: &mut FileBuf,
    tx: TxHandle,
    pending: HashSet<u64>,
    stamp: obsv::Stamp,
    stats: &HinfsStats,
) {
    HinfsStats::bump(&stats.txs_opened, 1);
    file.txs.push_back(LocalTx { tx, pending, stamp });
}

/// Records that `(file, iblk)` reached NVMM: clears it from every open
/// transaction and commits the ready prefix. The commit drains inherit
/// the flush's drain kind (a flush inside fsync commits synchronously; a
/// writeback-pass flush commits behind the caller's back).
pub fn note_flushed(
    file: &mut FileBuf,
    journal: &Journal,
    iblk: u64,
    lin: &LineageTable,
    kind: DrainKind,
    now: u64,
    stats: &HinfsStats,
) {
    for t in &mut file.txs {
        t.pending.remove(&iblk);
    }
    drain_ready(file, journal, lin, kind, now, stats);
}

/// Commits transactions from the front of the FIFO while they are ready —
/// as one group commit, so a drain of N transactions costs one journal
/// lock hold and two fences instead of two fences per transaction.
pub fn drain_ready(
    file: &mut FileBuf,
    journal: &Journal,
    lin: &LineageTable,
    kind: DrainKind,
    now: u64,
    stats: &HinfsStats,
) {
    let ready = file.txs.iter().take_while(|t| t.pending.is_empty()).count();
    if ready == 0 {
        return;
    }
    let mut batch = Vec::with_capacity(ready);
    for t in file.txs.drain(..ready) {
        // Metadata commit: durability lag only, no data bytes drain.
        lin.record_drain(&t.stamp, kind, now, 0);
        batch.push(t.tx);
    }
    HinfsStats::bump(&stats.txs_committed, ready as u64);
    journal.commit_group(batch);
}

/// Force-commits every open transaction of the file, dropping pending-block
/// requirements. Used when the file's buffered data is discarded (unlink of
/// a file whose writes will never be performed — with allocate-on-flush the
/// unflushed blocks are holes, so committing early exposes zeroes at worst,
/// never garbage). The data never needed durability, so the commits record
/// sync (lag-0) drains.
pub fn force_commit_all(
    file: &mut FileBuf,
    journal: &Journal,
    lin: &LineageTable,
    stats: &HinfsStats,
) {
    let mut batch = Vec::with_capacity(file.txs.len());
    for t in file.txs.drain(..) {
        lin.record_drain(&t.stamp, DrainKind::Sync, 0, 0);
        batch.push(t.tx);
    }
    HinfsStats::bump(&stats.txs_committed, batch.len() as u64);
    journal.commit_group(batch);
}

/// Number of open transactions across every file (diagnostics).
pub fn open_count(file: &FileBuf) -> usize {
    file.txs.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmm::{CostModel, NvmmDevice, SimEnv, BLOCK_SIZE};
    use pmfs::{Journal, Layout};
    use std::sync::Arc;

    fn journal() -> (Arc<NvmmDevice>, Journal, Layout) {
        let dev = NvmmDevice::new(SimEnv::new_virtual(CostModel::default()), 1024 * BLOCK_SIZE);
        let layout = Layout::compute(1024, 32, 64).unwrap();
        Journal::format(&dev, &layout);
        let j = Journal::open(dev.clone(), &layout).unwrap();
        (dev, j, layout)
    }

    fn pending(iblks: &[u64]) -> HashSet<u64> {
        iblks.iter().copied().collect()
    }

    fn no_stamp() -> obsv::Stamp {
        obsv::Stamp::default()
    }

    #[test]
    fn fifo_commit_order_is_preserved() {
        let (_d, j, _l) = journal();
        let stats = HinfsStats::new();
        let lin = LineageTable::new();
        let mut f = FileBuf::new();
        let t1 = j.begin().unwrap();
        let t2 = j.begin().unwrap();
        enqueue(&mut f, t1, pending(&[1]), no_stamp(), &stats);
        enqueue(&mut f, t2, pending(&[2]), no_stamp(), &stats);
        // Block 2 flushes first: t2 is ready but t1 blocks the FIFO.
        note_flushed(&mut f, &j, 2, &lin, DrainKind::Sync, 0, &stats);
        assert_eq!(f.txs.len(), 2, "t2 must wait for t1");
        assert_eq!(j.open_txs(), 2);
        // Block 1 flushes: both drain in order.
        note_flushed(&mut f, &j, 1, &lin, DrainKind::Sync, 0, &stats);
        assert!(f.txs.is_empty());
        assert_eq!(j.open_txs(), 0);
        assert_eq!(stats.snapshot().txs_committed, 2);
    }

    #[test]
    fn shared_block_across_transactions() {
        let (_d, j, _l) = journal();
        let stats = HinfsStats::new();
        let lin = LineageTable::new();
        let mut f = FileBuf::new();
        let t1 = j.begin().unwrap();
        let t2 = j.begin().unwrap();
        enqueue(&mut f, t1, pending(&[5]), no_stamp(), &stats);
        enqueue(&mut f, t2, pending(&[5, 6]), no_stamp(), &stats);
        note_flushed(&mut f, &j, 5, &lin, DrainKind::Sync, 0, &stats);
        assert_eq!(f.txs.len(), 1, "t1 committed, t2 still waits on 6");
        note_flushed(&mut f, &j, 6, &lin, DrainKind::Sync, 0, &stats);
        assert!(f.txs.is_empty());
    }

    #[test]
    fn empty_pending_still_waits_its_turn() {
        let (_d, j, _l) = journal();
        let stats = HinfsStats::new();
        let lin = LineageTable::new();
        let mut f = FileBuf::new();
        let t1 = j.begin().unwrap();
        let t2 = j.begin().unwrap();
        enqueue(&mut f, t1, pending(&[9]), no_stamp(), &stats);
        enqueue(&mut f, t2, HashSet::new(), no_stamp(), &stats);
        drain_ready(&mut f, &j, &lin, DrainKind::Sync, 0, &stats);
        assert_eq!(f.txs.len(), 2, "ready t2 must not jump over t1");
        note_flushed(&mut f, &j, 9, &lin, DrainKind::Sync, 0, &stats);
        assert!(f.txs.is_empty());
    }

    #[test]
    fn force_commit_clears_everything() {
        let (_d, j, _l) = journal();
        let stats = HinfsStats::new();
        let lin = LineageTable::new();
        let mut f = FileBuf::new();
        for i in 0..5u64 {
            let t = j.begin().unwrap();
            enqueue(&mut f, t, pending(&[i]), no_stamp(), &stats);
        }
        force_commit_all(&mut f, &j, &lin, &stats);
        assert!(f.txs.is_empty());
        assert_eq!(j.open_txs(), 0);
        assert_eq!(stats.snapshot().txs_committed, 5);
    }

    #[test]
    fn deferred_commits_record_lag_against_the_stamp() {
        let (_d, j, _l) = journal();
        let stats = HinfsStats::new();
        let lin = LineageTable::new();
        lin.set_enabled(true);
        let mut f = FileBuf::new();
        let t1 = j.begin().unwrap();
        let stamp = lin.stamp(1_000, 3);
        enqueue(&mut f, t1, pending(&[1]), stamp, &stats);
        // A writeback-pass flush 4 µs later commits the deferred tx with
        // real lag; a sync commit would have asserted 0.
        note_flushed(&mut f, &j, 1, &lin, DrainKind::Lazy, 5_000, &stats);
        let s = lin.snap();
        assert_eq!(s.drains_lazy, 1);
        assert_eq!(s.max_lag_ns, 4_000);
    }
}
