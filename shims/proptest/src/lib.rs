//! A minimal, API-compatible stand-in for the `proptest` crate, vendored so
//! the workspace's property tests run in a sandboxed (offline) build.
//!
//! It keeps proptest's *surface* — `proptest!`, strategies over integer
//! ranges and tuples, `prop_map`, `prop_oneof!`, `Just`, `any`,
//! `prop::collection::vec`, `prop_assert_eq!` — but not its engine: cases
//! are generated from a deterministic per-test seed and failures are plain
//! panics with **no shrinking**. That trades minimal counter-examples for
//! zero external dependencies; the generation distribution is uniform like
//! proptest's default for these strategy kinds.

use rand::{Rng, SeedableRng};

/// The RNG driving case generation (deterministic per test name).
pub type TestRng = rand::rngs::SmallRng;

/// Run-time configuration. Only `cases` has an effect here;
/// `max_shrink_iters` is accepted for source compatibility with real
/// proptest configs but ignored (this shim never shrinks).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
    /// Ignored (no shrinking engine).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256 cases; 64 keeps the suite's heavier
        // model-checking properties fast while still exploring broadly.
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// FNV-1a, used to derive a stable per-test seed from its name.
pub fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Creates the deterministic RNG for one property test.
pub fn new_test_rng(name: &str) -> TestRng {
    TestRng::seed_from_u64(fnv(name))
}

/// A value generator. Unlike real proptest there is no value tree and no
/// shrinking: `generate` directly produces a value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { s: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy (what `prop_oneof!` arms become).
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// `.prop_map` combinator.
pub struct Map<S, F> {
    s: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.s.generate(rng))
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Full-domain strategy for an [`Arbitrary`] type.
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Weighted union of strategies (what `prop_oneof!` builds).
pub struct OneOf<V> {
    pub arms: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        let mut pick = rng.gen_range(0..total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick within total")
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing `Vec`s with a length drawn from `lo..hi`.
    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    /// `prop::collection::vec(element_strategy, length_range)`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy {
            elem,
            lo: len.start,
            hi: len.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.lo..self.hi);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The `proptest!` block: expands each `#[test] fn name(pat in strategy)`
/// into a plain test that runs `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( config = $cfg:expr; ) => {};
    (
        config = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($arg:pat_param in $strat:expr) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::new_test_rng(concat!(module_path!(), "::", stringify!($name)));
            let __strat = $strat;
            for __case in 0..__cfg.cases {
                let $arg = $crate::Strategy::generate(&__strat, &mut __rng);
                $body
            }
        }
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
}

/// `prop_assert_eq!` — a plain `assert_eq!` here (failures panic; there is
/// no shrinking pass to report to).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($t:tt)+) => { assert_eq!($a, $b, $($t)+) };
}

/// `prop_assert!` — a plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($c:expr $(,)?) => { assert!($c) };
    ($c:expr, $($t:tt)+) => { assert!($c, $($t)+) };
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $w:expr => $s:expr ),+ $(,)? ) => {
        $crate::OneOf { arms: vec![ $( ($w as u32, $crate::Strategy::boxed($s)) ),+ ] }
    };
    ( $( $s:expr ),+ $(,)? ) => {
        $crate::OneOf { arms: vec![ $( (1u32, $crate::Strategy::boxed($s)) ),+ ] }
    };
}

/// The glob-import surface tests use (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };

    /// The `prop::` path exposed by proptest's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum E {
        A(u8),
        B,
    }

    #[test]
    fn ranges_tuples_map_oneof() {
        let mut rng = crate::new_test_rng("shim-selftest");
        let s = prop_oneof![
            3 => (0u8..4, 1u16..10).prop_map(|(a, _b)| E::A(a)),
            1 => Just(E::B),
        ];
        let mut saw_a = false;
        let mut saw_b = false;
        for _ in 0..200 {
            match s.generate(&mut rng) {
                E::A(v) => {
                    assert!(v < 4);
                    saw_a = true;
                }
                E::B => saw_b = true,
            }
        }
        assert!(saw_a && saw_b, "both arms reachable");
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = crate::new_test_rng("vec-len");
        let s = prop::collection::vec(any::<u8>(), 1..60);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..60).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

        #[test]
        fn macro_respects_bounds(x in 10u64..20) {
            prop_assert!(x >= 10);
            prop_assert_eq!(x / 20, 0);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(v in prop::collection::vec(0u32..5, 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }
}
