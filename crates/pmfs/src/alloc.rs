//! Block allocator.
//!
//! Like PMFS, the allocator's bitmap lives in DRAM and is only *persisted*
//! on clean unmount (into the layout's bitmap region). After a crash the
//! bitmap is rebuilt at mount by walking the inode table and every file's
//! block tree, so block allocation never needs journaling — an allocated
//! but unreachable block simply returns to the free pool on recovery.

use fskit::{FsError, Result};
use nvmm::{Cat, NvmmDevice, BLOCK_SIZE};
use obsv::{Site, TrackedMutex};

use crate::layout::Layout;

#[derive(Debug)]
struct Inner {
    /// One bit per device block; set = in use.
    bitmap: Vec<u64>,
    free: u64,
    hint: u64,
    data_start: u64,
    total_blocks: u64,
}

/// DRAM-resident block allocator over the data area.
#[derive(Debug)]
pub struct Allocator {
    inner: TrackedMutex<Inner>,
    /// Device whose fault-injection hook is consulted on `alloc` (attached
    /// at mount; absent in unit tests that build the allocator bare).
    fault_dev: std::sync::OnceLock<std::sync::Arc<NvmmDevice>>,
}

impl Allocator {
    /// Creates an allocator with every data block free and every metadata
    /// block (superblock, journal, inode table, bitmap image) in use.
    pub fn new_empty(layout: &Layout) -> Allocator {
        let words = (layout.total_blocks as usize).div_ceil(64);
        let mut inner = Inner {
            bitmap: vec![0u64; words],
            free: 0,
            hint: layout.data_start,
            data_start: layout.data_start,
            total_blocks: layout.total_blocks,
        };
        for b in 0..layout.data_start {
            inner.set(b);
        }
        inner.free = layout.data_blocks();
        Allocator {
            inner: TrackedMutex::new(Site::PmfsAlloc, inner),
            fault_dev: std::sync::OnceLock::new(),
        }
    }

    /// Attaches the device whose fault-injection plan `alloc` consults
    /// (ENOSPC injection), and wires the allocator's lock to the device's
    /// contention profiler. Later calls are ignored.
    pub fn attach_fault_device(&self, dev: std::sync::Arc<NvmmDevice>) {
        self.inner.attach(dev.contention());
        let _ = self.fault_dev.set(dev);
    }

    /// Allocates one block, returning its absolute block number.
    pub fn alloc(&self) -> Result<u64> {
        if let Some(dev) = self.fault_dev.get() {
            if nvmm::fault::alloc_blocked(dev) {
                return Err(FsError::NoSpace);
            }
        }
        let mut inner = self.inner.lock();
        if inner.free == 0 {
            return Err(FsError::NoSpace);
        }
        let total = inner.total_blocks;
        let start = inner.hint.max(inner.data_start);
        let mut b = start;
        loop {
            if !inner.get(b) {
                inner.set(b);
                inner.free -= 1;
                inner.hint = if b + 1 < total {
                    b + 1
                } else {
                    inner.data_start
                };
                return Ok(b);
            }
            b += 1;
            if b >= total {
                b = inner.data_start;
            }
            if b == start {
                // `free` said there was space; the bitmap disagrees.
                return Err(FsError::Corrupted("allocator free count"));
            }
        }
    }

    /// Returns a block to the free pool.
    ///
    /// # Panics
    ///
    /// Panics if the block is not currently allocated or is a metadata
    /// block (double free / corruption bugs should fail loudly in tests).
    pub fn free(&self, blk: u64) {
        let mut inner = self.inner.lock();
        assert!(
            blk >= inner.data_start && blk < inner.total_blocks,
            "freeing non-data block {blk}"
        );
        assert!(inner.get(blk), "double free of block {blk}");
        inner.clear(blk);
        inner.free += 1;
        inner.hint = inner.hint.min(blk);
    }

    /// Marks a block as in use during the recovery walk.
    pub fn mark_used(&self, blk: u64) {
        let mut inner = self.inner.lock();
        assert!(blk < inner.total_blocks, "mark_used out of range: {blk}");
        if !inner.get(blk) {
            inner.set(blk);
            inner.free -= 1;
        }
    }

    /// Number of free data blocks.
    pub fn free_blocks(&self) -> u64 {
        self.inner.lock().free
    }

    /// Persists the bitmap image into the layout's bitmap region (clean
    /// unmount).
    pub fn persist(&self, dev: &NvmmDevice, layout: &Layout) {
        let inner = self.inner.lock();
        let mut bytes: Vec<u8> = Vec::with_capacity(inner.bitmap.len() * 8);
        for w in &inner.bitmap {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        bytes.resize(layout.bitmap_blocks as usize * BLOCK_SIZE, 0);
        dev.write_persist(Cat::Meta, Layout::block_off(layout.bitmap_start), &bytes);
        dev.sfence();
    }

    /// Loads the persisted bitmap image (mount after clean unmount).
    pub fn load(dev: &NvmmDevice, layout: &Layout) -> Allocator {
        let words = (layout.total_blocks as usize).div_ceil(64);
        let mut bytes = vec![0u8; words * 8];
        dev.read(
            Cat::Meta,
            Layout::block_off(layout.bitmap_start),
            &mut bytes,
        );
        let bitmap: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let mut used = 0u64;
        for (i, w) in bitmap.iter().enumerate() {
            let base = i as u64 * 64;
            for bit in 0..64 {
                let b = base + bit;
                if b >= layout.total_blocks {
                    break;
                }
                if w & (1 << bit) != 0 && b >= layout.data_start {
                    used += 1;
                }
            }
        }
        Allocator {
            inner: TrackedMutex::new(
                Site::PmfsAlloc,
                Inner {
                    bitmap,
                    free: layout.data_blocks() - used,
                    hint: layout.data_start,
                    data_start: layout.data_start,
                    total_blocks: layout.total_blocks,
                },
            ),
            fault_dev: std::sync::OnceLock::new(),
        }
    }
}

impl Inner {
    fn get(&self, b: u64) -> bool {
        self.bitmap[(b / 64) as usize] & (1 << (b % 64)) != 0
    }

    fn set(&mut self, b: u64) {
        self.bitmap[(b / 64) as usize] |= 1 << (b % 64);
    }

    fn clear(&mut self, b: u64) {
        self.bitmap[(b / 64) as usize] &= !(1 << (b % 64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmm::{CostModel, SimEnv};
    use std::sync::Arc;

    fn setup() -> (Arc<NvmmDevice>, Layout) {
        let dev = NvmmDevice::new(SimEnv::new_virtual(CostModel::default()), 1024 * BLOCK_SIZE);
        let layout = Layout::compute(1024, 16, 256).unwrap();
        (dev, layout)
    }

    #[test]
    fn alloc_free_roundtrip() {
        let (_, layout) = setup();
        let a = Allocator::new_empty(&layout);
        let initial = a.free_blocks();
        assert_eq!(initial, layout.data_blocks());
        let b1 = a.alloc().unwrap();
        let b2 = a.alloc().unwrap();
        assert!(b1 >= layout.data_start);
        assert_ne!(b1, b2);
        assert_eq!(a.free_blocks(), initial - 2);
        a.free(b1);
        assert_eq!(a.free_blocks(), initial - 1);
        // Freed block becomes allocatable again.
        let b3 = a.alloc().unwrap();
        assert_eq!(b3, b1);
    }

    #[test]
    fn exhaustion_returns_nospace() {
        let (_, layout) = setup();
        let a = Allocator::new_empty(&layout);
        for _ in 0..layout.data_blocks() {
            a.alloc().unwrap();
        }
        assert_eq!(a.alloc(), Err(FsError::NoSpace));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let (_, layout) = setup();
        let a = Allocator::new_empty(&layout);
        let b = a.alloc().unwrap();
        a.free(b);
        a.free(b);
    }

    #[test]
    #[should_panic(expected = "non-data block")]
    fn freeing_metadata_block_panics() {
        let (_, layout) = setup();
        let a = Allocator::new_empty(&layout);
        a.free(0);
    }

    #[test]
    fn persist_load_roundtrip() {
        let (dev, layout) = setup();
        let a = Allocator::new_empty(&layout);
        let b1 = a.alloc().unwrap();
        let _b2 = a.alloc().unwrap();
        let b3 = a.alloc().unwrap();
        a.free(b3);
        a.persist(&dev, &layout);
        let loaded = Allocator::load(&dev, &layout);
        assert_eq!(loaded.free_blocks(), a.free_blocks());
        // b1 still allocated in the loaded map: freeing works, re-freeing
        // would panic (checked indirectly by alloc not returning b1 first).
        loaded.free(b1);
        assert_eq!(loaded.free_blocks(), a.free_blocks() + 1);
    }

    #[test]
    fn mark_used_is_idempotent() {
        let (_, layout) = setup();
        let a = Allocator::new_empty(&layout);
        let before = a.free_blocks();
        a.mark_used(layout.data_start + 5);
        a.mark_used(layout.data_start + 5);
        assert_eq!(a.free_blocks(), before - 1);
    }
}
