//! Coverage-guided scenario fuzzing with differential model checking and
//! auto-shrinking crash reproducers.
//!
//! The scripted sweeps in `tests/` replay hand-picked op sequences; this
//! module evolves them. A [`Fuzzer`] keeps a corpus of op scripts and a
//! global [`CoverageMap`], and each iteration:
//!
//! 1. **mutates** a corpus script (insert/delete/splice/duplicate ops,
//!    perturb sizes/offsets/fills, toggle fsync placement, remap file
//!    slots so inodes collide on one shard, optionally vary the thread
//!    count);
//! 2. **differentially checks** the mutant on every [`FsKind`] against
//!    the shared [`RefModel`]: per-op outcome classes must agree, and the
//!    final files/directories must match byte-for-byte;
//! 3. **scores coverage** from what the repo already observes — trace-ring
//!    event kinds with bucketed payloads, contention-site first-hits,
//!    invariant-auditor state classes, per-op outcome classes — and, for
//!    mutants that earn new points, runs a **bounded crash-schedule
//!    sweep** whose boundary depths, mid-op crashes and recovery depths
//!    feed back as crash-domain coverage while the durability oracle
//!    judges every recovery;
//! 4. **shrinks** any violation with delta-debugging over ops, then over
//!    crash points, into a [`Repro`] — a small text script committed under
//!    `tests/repro/` and replayed verbatim by `tests/fuzz_regress.rs`.
//!
//! Everything runs on the virtual clock from one seeded [`SmallRng`], so
//! a fixed [`FuzzConfig`] replays bit-identically: same corpus, same
//! coverage digest, same shrunk reproducers. The one exception is
//! `threads > 1` cases (off by default), which record their persistence-
//! boundary schedule under real threads and then replay crashes at the
//! recorded boundary indices deterministically, single-threaded — the
//! same record-then-replay pattern as `tests/concurrency.rs`.

use std::collections::BTreeSet;

use fskit::{FileSystem, FsError};
use hinfs::Hinfs;
use nvmm::{CostModel, FaultPlan, NvmmDevice, SimEnv};
use obsv::{CoverageMap, Introspect, Level};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::harness::{exec_op, hinfs_cfg, pick_points, pmfs_opts, Harness, DEV_BYTES};
use crate::model::{ModelBug, RefModel};
use crate::script::{FsKind, Op, Script, MAX_DIRS, MAX_FILES, MAX_IO};

/// Knobs of one fuzzing campaign. A fixed config is a fixed run: every
/// field feeds the same seeded RNG and virtual clock.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Master seed for corpus generation and mutation.
    pub seed: u64,
    /// Mutation iterations after the seed corpus.
    pub iterations: usize,
    /// Seed scripts the corpus starts from (the "scripted corpus"
    /// baseline the campaign must out-cover).
    pub seed_scripts: usize,
    /// Op count of each seed script.
    pub script_len: usize,
    /// Hard cap on mutated script length.
    pub max_ops: usize,
    /// Crash points enumerated per kind when a case earns coverage.
    pub crash_points: usize,
    /// Maximum thread count the mutator may assign (1 keeps the whole
    /// campaign on the virtual clock and byte-reproducible).
    pub max_threads: u8,
    /// Cap on shrunk reproducers returned.
    pub max_repros: usize,
    /// Budget of predicate evaluations per shrink.
    pub shrink_budget: usize,
    /// Deliberate model defect for the negative self-test.
    pub bug: Option<ModelBug>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0xF022_5EED,
            iterations: 48,
            seed_scripts: 4,
            script_len: 12,
            max_ops: 48,
            crash_points: 4,
            max_threads: 1,
            max_repros: 4,
            shrink_budget: 400,
            bug: None,
        }
    }
}

/// One corpus entry: a script plus the thread count it runs under.
#[derive(Debug, Clone)]
struct FuzzCase {
    script: Script,
    threads: u8,
}

/// A violation the campaign surfaced, before shrinking.
#[derive(Debug)]
enum Found {
    /// The file system and the reference model disagreed.
    Differential { kind: FsKind, messages: Vec<String> },
    /// The durability oracle rejected a recovery.
    Crash {
        kind: FsKind,
        boundary: u64,
        torn: bool,
        threads: u8,
        messages: Vec<String>,
    },
}

/// A minimal, committed, deterministic reproducer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repro {
    /// Stable slug (also the suggested file stem).
    pub name: String,
    /// The kind that exhibited the violation; `None` replays all kinds.
    pub kind: Option<FsKind>,
    /// Thread count the violation was discovered under. Replay is always
    /// single-threaded: for `threads > 1` the `boundaries` below were
    /// recorded under real threads and replayed at those indices.
    pub threads: u8,
    /// Crash boundaries to arm on replay (empty: differential only).
    pub boundaries: Vec<u64>,
    /// One-line provenance note.
    pub note: String,
    /// The shrunk script.
    pub script: Script,
}

impl Repro {
    /// Serializes to the committed text form (see `tests/repro/`).
    pub fn to_text(&self) -> String {
        let mut s = String::from("# faultfs repro v1\n");
        s.push_str(&format!("name: {}\n", self.name));
        s.push_str(&format!(
            "kind: {}\n",
            self.kind.map_or("all", |k| k.label())
        ));
        s.push_str(&format!("threads: {}\n", self.threads));
        let bs: Vec<String> = self.boundaries.iter().map(|b| b.to_string()).collect();
        s.push_str(&format!("boundaries: {}\n", bs.join(",")));
        s.push_str(&format!("note: {}\n", self.note));
        s.push_str("ops:\n");
        for op in &self.script.ops {
            s.push_str(&op.to_text());
            s.push('\n');
        }
        s
    }

    /// Parses the [`Repro::to_text`] form.
    pub fn parse(text: &str) -> Result<Repro, String> {
        let mut name = String::new();
        let mut kind = None;
        let mut threads = 1u8;
        let mut boundaries = Vec::new();
        let mut note = String::new();
        let mut ops = Vec::new();
        let mut in_ops = false;
        for (lno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if in_ops {
                match Op::parse(line) {
                    Some(op) => ops.push(op),
                    None => return Err(format!("line {}: bad op {line:?}", lno + 1)),
                }
                continue;
            }
            let (key, val) = line
                .split_once(':')
                .ok_or_else(|| format!("line {}: expected `key: value`", lno + 1))?;
            let val = val.trim();
            match key.trim() {
                "name" => name = val.to_string(),
                "kind" => {
                    kind = match val {
                        "all" => None,
                        "hinfs" => Some(FsKind::Hinfs),
                        "pmfs" => Some(FsKind::Pmfs),
                        "ext4" => Some(FsKind::Ext4),
                        _ => return Err(format!("line {}: unknown kind {val:?}", lno + 1)),
                    }
                }
                "threads" => {
                    threads = val
                        .parse()
                        .map_err(|_| format!("line {}: bad threads", lno + 1))?
                }
                "boundaries" => {
                    for tok in val.split(',').filter(|t| !t.trim().is_empty()) {
                        boundaries.push(
                            tok.trim()
                                .parse()
                                .map_err(|_| format!("line {}: bad boundary {tok:?}", lno + 1))?,
                        );
                    }
                }
                "note" => note = val.to_string(),
                "ops" => in_ops = true,
                other => return Err(format!("line {}: unknown key {other:?}", lno + 1)),
            }
        }
        if ops.is_empty() {
            return Err("no ops".to_string());
        }
        Ok(Repro {
            name,
            kind,
            threads,
            boundaries,
            note,
            script: Script { ops },
        })
    }

    /// Replays the reproducer deterministically (single-threaded, virtual
    /// clock): the differential against the healthy model on the repro's
    /// kind(s), then a crash-recover-check at every recorded boundary.
    /// Returns every violation; empty means the regression stays fixed.
    pub fn replay(&self, h: &Harness) -> Vec<String> {
        let kinds: Vec<FsKind> = match self.kind {
            Some(k) => vec![k],
            None => FsKind::ALL.to_vec(),
        };
        let mut vs = Vec::new();
        for &kind in &kinds {
            vs.extend(differential(h, kind, &self.script.ops, None));
            for &k in &self.boundaries {
                let out = h.crash_run(kind, &self.script, k, None);
                for v in out.violations {
                    vs.push(format!("[{} k={k}] {v}", kind.label()));
                }
            }
        }
        vs
    }
}

/// Result of one fuzzing campaign.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// Coverage after replaying only the seed scripts (the scripted
    /// baseline the campaign must strictly beat).
    pub baseline: CoverageMap,
    /// Coverage at the end of the campaign.
    pub coverage: CoverageMap,
    /// Mutation iterations executed.
    pub iterations: usize,
    /// Corpus size at the end (seeds + coverage-earning mutants).
    pub corpus_size: usize,
    /// Differential legs executed (one per kind per evaluated case).
    pub diff_legs: u64,
    /// Crash-recover-check cycles executed.
    pub crash_runs: u64,
    /// Durability-oracle assertions evaluated across all crash runs.
    pub oracle_checks: u64,
    /// Shrunk reproducers for every violation found (empty = clean).
    pub repros: Vec<Repro>,
}

/// The coverage-guided fuzzing engine.
pub struct Fuzzer {
    cfg: FuzzConfig,
    h: Harness,
    rng: SmallRng,
    coverage: CoverageMap,
    corpus: Vec<FuzzCase>,
    diff_legs: u64,
    crash_runs: u64,
    oracle_checks: u64,
    repros: Vec<Repro>,
    seen_repros: BTreeSet<String>,
}

impl Fuzzer {
    /// A fresh campaign.
    pub fn new(cfg: FuzzConfig) -> Fuzzer {
        Fuzzer {
            cfg,
            h: Harness::new(),
            rng: SmallRng::seed_from_u64(cfg.seed),
            coverage: CoverageMap::new(),
            corpus: Vec::new(),
            diff_legs: 0,
            crash_runs: 0,
            oracle_checks: 0,
            repros: Vec::new(),
            seen_repros: BTreeSet::new(),
        }
    }

    /// Runs the campaign to completion.
    pub fn run(mut self) -> FuzzOutcome {
        // Seed corpus: the same shape the scripted tests replay. Every
        // seed gets the full evaluation (differential + crash sweep), so
        // the baseline is exactly "replay the scripted corpus".
        for i in 0..self.cfg.seed_scripts {
            let script = Script::random(
                self.cfg
                    .seed
                    .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)),
                self.cfg.script_len,
            );
            let case = FuzzCase { script, threads: 1 };
            let founds = self.evaluate(&case, true).1;
            self.absorb_founds(founds, &case);
            self.corpus.push(case);
        }
        let baseline = self.coverage.clone();

        for _ in 0..self.cfg.iterations {
            let parent = self.rng.gen_range(0..self.corpus.len());
            let case = self.mutate_case(parent);
            let (new_cov, founds) = self.evaluate(&case, false);
            self.absorb_founds(founds, &case);
            if new_cov > 0 {
                self.corpus.push(case);
            }
        }

        FuzzOutcome {
            baseline,
            coverage: self.coverage,
            iterations: self.cfg.iterations,
            corpus_size: self.corpus.len(),
            diff_legs: self.diff_legs,
            crash_runs: self.crash_runs,
            oracle_checks: self.oracle_checks,
            repros: self.repros,
        }
    }

    /// Shrinks and records every violation of one case, deduplicating by
    /// the shrunk reproducer's stable name.
    fn absorb_founds(&mut self, founds: Vec<Found>, case: &FuzzCase) {
        for f in founds {
            if self.repros.len() >= self.cfg.max_repros {
                return;
            }
            let repro = self.shrink(&f, &case.script.ops);
            if self.seen_repros.insert(repro.name.clone()) {
                self.repros.push(repro);
            }
        }
    }

    /// Full evaluation of one case: differential legs on every kind with
    /// coverage scoring, then (for coverage-earning or violating cases,
    /// or unconditionally when `force_crash`) the bounded crash sweep.
    /// Returns the number of new global coverage points and any
    /// violations.
    fn evaluate(&mut self, case: &FuzzCase, force_crash: bool) -> (usize, Vec<Found>) {
        if case.threads > 1 {
            return self.evaluate_threaded(case);
        }
        let mut cov = CoverageMap::new();
        let mut founds = Vec::new();
        for kind in FsKind::ALL {
            let messages = self.diff_leg(kind, &case.script, &mut cov);
            if !messages.is_empty() {
                founds.push(Found::Differential { kind, messages });
            }
        }
        let mut new = self.coverage.merge(&cov);
        if new > 0 || force_crash || !founds.is_empty() {
            let mut ccov = CoverageMap::new();
            for kind in FsKind::ALL {
                self.crash_leg(kind, &case.script, 1, &mut ccov, &mut founds);
            }
            new += self.coverage.merge(&ccov);
        }
        (new, founds)
    }

    /// One differential leg: replay on a fresh `kind` image with tracing,
    /// contention counting and the reference model in lockstep; fold
    /// trace/state/site/op coverage into `cov`.
    fn diff_leg(&mut self, kind: FsKind, script: &Script, cov: &mut CoverageMap) -> Vec<String> {
        self.diff_legs += 1;
        let ctx = kind_ctx(kind);
        let b = self.h.build(kind);
        b.obs.set_tracing(true);
        b.env.contention().set_level(Level::Counts);
        let mut model = match self.cfg.bug {
            Some(bug) => RefModel::with_bug(bug),
            None => RefModel::new(),
        };
        let mut vs = Vec::new();
        let mut capped = false;
        for (i, op) in script.ops.iter().enumerate() {
            let got = exec_op(&*b.fs, &b.env, op);
            let want = model.apply(op);
            cov.add_op_outcome(ctx, op_index(op), outcome_class(&got));
            match (&got, &want) {
                (Ok(()), Ok(())) | (Err(_), Err(_)) => {}
                (Ok(()), Err(e)) => {
                    vs.push(format!(
                        "{}: op {i} `{}` succeeded but the model expects {e:?}",
                        kind.label(),
                        op.to_text()
                    ));
                    break;
                }
                (Err(ge), Ok(())) => {
                    if resource_error(ge) {
                        // Resource exhaustion is capacity policy, not a
                        // semantic divergence; stop this leg cleanly.
                        capped = true;
                        break;
                    }
                    vs.push(format!(
                        "{}: op {i} `{}` failed {ge:?} but the model succeeds",
                        kind.label(),
                        op.to_text()
                    ));
                    break;
                }
            }
        }
        if vs.is_empty() && !capped {
            vs.extend(model.diff(&*b.fs, kind.label()));
        }
        for rec in b.obs.trace.tail(4096) {
            cov.add_trace(ctx, &rec.ev);
        }
        cov.add_state(ctx, &b.intro.snapshot());
        let rep = b.intro.audit();
        for v in &rep.violations {
            vs.push(format!("{}: live audit: {v}", kind.label()));
        }
        cov.add_contention(ctx, &b.env.contention().snapshot());
        let _ = b.fs.unmount();
        vs
    }

    /// Bounded crash-schedule sweep of one kind: record the schedule,
    /// crash at an evenly strided selection of boundaries (every third
    /// with a torn store buffer), oracle-check each recovery, and feed
    /// the crash shapes back as coverage.
    fn crash_leg(
        &mut self,
        kind: FsKind,
        script: &Script,
        threads: u8,
        cov: &mut CoverageMap,
        founds: &mut Vec<Found>,
    ) {
        let ctx = kind_ctx(kind);
        let schedule = self.h.record_schedule(kind, script);
        cov.add_schedule_depth(ctx, schedule.len() as u64);
        let points = pick_points(schedule.len() as u64, self.cfg.crash_points);
        for (i, &k) in points.iter().enumerate() {
            let torn_seed = (i % 3 == 2).then_some(self.cfg.seed ^ k);
            let out = self.h.crash_run(kind, script, k, torn_seed);
            self.crash_runs += 1;
            self.oracle_checks += out.checks;
            cov.add_crash_run(ctx, k, out.crashed_mid_op, out.torn, out.entries_undone);
            if !out.violations.is_empty() {
                founds.push(Found::Crash {
                    kind,
                    boundary: k,
                    torn: out.torn,
                    threads,
                    messages: out.violations,
                });
            }
        }
    }

    /// Threaded evaluation (the `tests/concurrency.rs` pattern): run the
    /// script's ops round-robin across real threads on a spin-mode HiNFS
    /// mount with the device recording persistence boundaries, audit the
    /// surviving mount, then replay crashes at the *recorded* boundary
    /// indices deterministically, single-threaded, through the harness.
    fn evaluate_threaded(&mut self, case: &FuzzCase) -> (usize, Vec<Found>) {
        let mut cov = CoverageMap::new();
        let mut founds = Vec::new();
        let ctx = kind_ctx(FsKind::Hinfs);
        let threads = case.threads as usize;

        let env = SimEnv::new_spin(CostModel::default());
        let dev = NvmmDevice::new_tracked(env.clone(), DEV_BYTES);
        let fs = Hinfs::mkfs(dev.clone(), pmfs_opts(), hinfs_cfg()).expect("hinfs mkfs");
        let plan = FaultPlan::new();
        dev.fault_hook().install(plan.clone());
        plan.start_recording();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let ops: Vec<Op> = case
                    .script
                    .ops
                    .iter()
                    .skip(t)
                    .step_by(threads)
                    .copied()
                    .collect();
                let fs = fs.clone();
                let env = env.clone();
                scope.spawn(move || {
                    for op in &ops {
                        // Clean errors (racing unlinks, missing files) are
                        // part of concurrent semantics; panics are not.
                        let _ = exec_op(&*fs, &env, op);
                    }
                });
            }
        });
        let schedule = plan.stop_recording();
        dev.fault_hook().clear();
        let rep = Introspect::audit(fs.as_ref());
        for v in &rep.violations {
            founds.push(Found::Crash {
                kind: FsKind::Hinfs,
                boundary: 0,
                torn: false,
                threads: case.threads,
                messages: vec![format!("post-run audit under {threads} threads: {v}")],
            });
        }
        let _ = fs.unmount();

        cov.add_schedule_depth(ctx, schedule.len() as u64);
        let crash_points: Vec<u64> = schedule
            .iter()
            .filter(|b| b.index > 0)
            .map(|b| b.index)
            .collect();
        // Quartile selection over the recorded schedule, like
        // tests/concurrency.rs, capped by the crash budget.
        if !crash_points.is_empty() {
            let quarts = self.cfg.crash_points.max(2);
            for q in 0..quarts {
                let k = crash_points[(crash_points.len() - 1) * q / (quarts - 1).max(1)];
                let out = self.h.crash_run(FsKind::Hinfs, &case.script, k, None);
                self.crash_runs += 1;
                self.oracle_checks += out.checks;
                cov.add_crash_run(ctx, k, out.crashed_mid_op, out.torn, out.entries_undone);
                if !out.violations.is_empty() {
                    founds.push(Found::Crash {
                        kind: FsKind::Hinfs,
                        boundary: k,
                        torn: false,
                        threads: case.threads,
                        messages: out.violations,
                    });
                }
            }
        }
        (self.coverage.merge(&cov), founds)
    }

    /// Shrinks one violation to a [`Repro`]: ddmin over the ops while the
    /// violation predicate still fails, then (for crash violations) over
    /// the crash points of the shrunk script.
    fn shrink(&mut self, found: &Found, ops: &[Op]) -> Repro {
        let mut budget = self.cfg.shrink_budget;
        match *found {
            Found::Differential { kind, ref messages } => {
                let bug = self.cfg.bug;
                let h = &self.h;
                let min = ddmin(ops.to_vec(), &mut |cand| {
                    if budget == 0 {
                        return false;
                    }
                    budget -= 1;
                    !differential(h, kind, cand, bug).is_empty()
                });
                let script = Script { ops: min };
                Repro {
                    name: format!("diff_{}_{:012x}", kind.label(), repro_hash(&script, &[])),
                    kind: Some(kind),
                    threads: 1,
                    boundaries: Vec::new(),
                    note: messages.first().cloned().unwrap_or_default(),
                    script,
                }
            }
            Found::Crash {
                kind,
                boundary,
                torn,
                threads,
                ref messages,
            } => {
                let seed = self.cfg.seed;
                let h = &self.h;
                let cap = self.cfg.crash_points.max(4);
                let fails = |cand: &[Op], budget: &mut usize| -> Option<u64> {
                    if *budget == 0 {
                        return None;
                    }
                    *budget -= 1;
                    let s = Script { ops: cand.to_vec() };
                    let sched = h.record_schedule(kind, &s).len() as u64;
                    pick_points(sched, cap).into_iter().find(|&k| {
                        let ts = torn.then_some(seed ^ k);
                        !h.crash_run(kind, &s, k, ts).violations.is_empty()
                    })
                };
                // A threaded discovery may not reproduce single-threaded;
                // keep the recorded script + boundary verbatim then.
                if threads > 1 && fails(ops, &mut budget).is_none() {
                    let script = Script { ops: ops.to_vec() };
                    return Repro {
                        name: format!(
                            "crash_{}_t{}_{:012x}",
                            kind.label(),
                            threads,
                            repro_hash(&script, &[boundary])
                        ),
                        kind: Some(kind),
                        threads,
                        boundaries: vec![boundary],
                        note: format!(
                            "recorded under {threads} threads; {}",
                            messages.first().cloned().unwrap_or_default()
                        ),
                        script,
                    };
                }
                let min = ddmin(ops.to_vec(), &mut |cand| fails(cand, &mut budget).is_some());
                // Minimize the crash point over the shrunk script.
                let k = fails(&min, &mut budget).unwrap_or(boundary);
                let script = Script { ops: min };
                Repro {
                    name: format!(
                        "crash_{}_{}{:012x}",
                        kind.label(),
                        if torn { "torn_" } else { "" },
                        repro_hash(&script, &[k])
                    ),
                    kind: Some(kind),
                    threads,
                    boundaries: vec![k],
                    note: messages.first().cloned().unwrap_or_default(),
                    script,
                }
            }
        }
    }

    /// Mutates corpus entry `parent` into a new case: one to three
    /// mutation steps drawn from the full operator set.
    fn mutate_case(&mut self, parent: usize) -> FuzzCase {
        let mut ops = self.corpus[parent].script.ops.clone();
        let mut threads = self.corpus[parent].threads;
        let steps = 1 + self.rng.gen_range(0u32..3);
        for _ in 0..steps {
            match self.rng.gen_range(0u32..24) {
                0..=5 => {
                    let at = self.rng.gen_range(0..=ops.len());
                    let op = Op::random(&mut self.rng);
                    ops.insert(at, op);
                }
                6..=8 => {
                    if ops.len() > 1 {
                        let at = self.rng.gen_range(0..ops.len());
                        ops.remove(at);
                    }
                }
                9..=10 => {
                    let at = self.rng.gen_range(0..ops.len());
                    let op = ops[at];
                    ops.insert(at, op);
                }
                11..=13 => {
                    // Splice a slice from another corpus member.
                    let donor_i = self.rng.gen_range(0..self.corpus.len());
                    let donor = &self.corpus[donor_i].script.ops;
                    if !donor.is_empty() {
                        let s = self.rng.gen_range(0..donor.len());
                        let e = (s + 1 + self.rng.gen_range(0..4usize)).min(donor.len());
                        let slice: Vec<Op> = donor[s..e].to_vec();
                        let at = self.rng.gen_range(0..=ops.len());
                        for (j, op) in slice.into_iter().enumerate() {
                            ops.insert(at + j, op);
                        }
                    }
                }
                14..=18 => {
                    let at = self.rng.gen_range(0..ops.len());
                    ops[at] = self.perturb(ops[at]);
                }
                19..=20 => {
                    // Toggle fsync placement.
                    let fsyncs: Vec<usize> = ops
                        .iter()
                        .enumerate()
                        .filter(|(_, o)| matches!(o, Op::Fsync { .. }))
                        .map(|(i, _)| i)
                        .collect();
                    if !fsyncs.is_empty() && self.rng.gen_range(0u32..2) == 0 {
                        ops.remove(fsyncs[self.rng.gen_range(0..fsyncs.len())]);
                    } else {
                        let at = self.rng.gen_range(0..=ops.len());
                        let file = self.rng.gen_range(0..MAX_FILES);
                        ops.insert(at, Op::Fsync { file });
                    }
                }
                21..=22 => {
                    // Remap one file slot onto another: with inode-keyed
                    // sharding this is the shard-collision mutator.
                    let a = self.rng.gen_range(0..MAX_FILES);
                    let to = self.rng.gen_range(0..MAX_FILES);
                    for op in ops.iter_mut() {
                        remap_file(op, a, to);
                    }
                }
                _ => {
                    if self.cfg.max_threads > 1 {
                        threads = 1 + self.rng.gen_range(0..self.cfg.max_threads);
                    }
                }
            }
        }
        ops.truncate(self.cfg.max_ops);
        if ops.is_empty() {
            ops.push(Op::Create { file: 0 });
        }
        FuzzCase {
            script: Script { ops },
            threads,
        }
    }

    /// Rewrites one op's parameters in place.
    fn perturb(&mut self, op: Op) -> Op {
        let rng = &mut self.rng;
        let file = rng.gen_range(0..MAX_FILES);
        match op {
            Op::Write {
                file: f,
                off,
                len,
                fill,
            } => match rng.gen_range(0u32..4) {
                0 => Op::Write {
                    file,
                    off,
                    len,
                    fill,
                },
                1 => Op::Write {
                    file: f,
                    off: rng.gen_range(0u64..40 * 1024),
                    len,
                    fill,
                },
                2 => Op::Write {
                    file: f,
                    off,
                    len: rng.gen_range(1..=MAX_IO),
                    fill,
                },
                _ => Op::Write {
                    file: f,
                    off,
                    len,
                    fill: rng.gen_range(1u8..=255),
                },
            },
            Op::Append { file: f, len, fill } => match rng.gen_range(0u32..3) {
                0 => Op::Append { file, len, fill },
                1 => Op::Append {
                    file: f,
                    len: rng.gen_range(1..=MAX_IO),
                    fill,
                },
                _ => Op::Append {
                    file: f,
                    len,
                    fill: rng.gen_range(1u8..=255),
                },
            },
            Op::Truncate { file: f, .. } => match rng.gen_range(0u32..2) {
                0 => Op::Truncate {
                    file,
                    size: rng.gen_range(0u64..40 * 1024),
                },
                _ => Op::Truncate {
                    file: f,
                    size: rng.gen_range(0u64..40 * 1024),
                },
            },
            Op::Create { .. } => Op::Create { file },
            Op::Fsync { .. } => Op::Fsync { file },
            Op::Unlink { .. } => Op::Unlink { file },
            Op::Rename { from, .. } => Op::Rename {
                from,
                to: rng.gen_range(0..MAX_FILES),
            },
            Op::Mkdir { .. } => Op::Mkdir {
                dir: rng.gen_range(0..MAX_DIRS),
            },
            Op::Rmdir { .. } => Op::Rmdir {
                dir: rng.gen_range(0..MAX_DIRS),
            },
            Op::Sync | Op::Tick => Op::random(rng),
        }
    }
}

/// Rewrites every reference to file slot `a` in `op` to `to`.
fn remap_file(op: &mut Op, a: u8, to: u8) {
    match op {
        Op::Create { file }
        | Op::Write { file, .. }
        | Op::Append { file, .. }
        | Op::Fsync { file }
        | Op::Truncate { file, .. }
        | Op::Unlink { file } => {
            if *file == a {
                *file = to;
            }
        }
        Op::Rename { from, to: t } => {
            if *from == a {
                *from = to;
            }
            if *t == a {
                *t = to;
            }
        }
        Op::Mkdir { .. } | Op::Rmdir { .. } | Op::Sync | Op::Tick => {}
    }
}

/// Replays `ops` on a fresh `kind` image in lockstep with the reference
/// model (with optional planted bug): per-op outcome classes must agree,
/// and the final state must match. The shared core of the fuzzer's
/// differential leg, the shrinker's predicate, and [`Repro::replay`].
pub fn differential(h: &Harness, kind: FsKind, ops: &[Op], bug: Option<ModelBug>) -> Vec<String> {
    let b = h.build(kind);
    let mut model = match bug {
        Some(bug) => RefModel::with_bug(bug),
        None => RefModel::new(),
    };
    let mut vs = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let got = exec_op(&*b.fs, &b.env, op);
        let want = model.apply(op);
        match (&got, &want) {
            (Ok(()), Ok(())) | (Err(_), Err(_)) => {}
            (Ok(()), Err(e)) => {
                vs.push(format!(
                    "{}: op {i} `{}` succeeded but the model expects {e:?}",
                    kind.label(),
                    op.to_text()
                ));
                break;
            }
            (Err(ge), Ok(())) => {
                if !resource_error(ge) {
                    vs.push(format!(
                        "{}: op {i} `{}` failed {ge:?} but the model succeeds",
                        kind.label(),
                        op.to_text()
                    ));
                }
                break;
            }
        }
    }
    if vs.is_empty() {
        vs.extend(model.diff(&*b.fs, kind.label()));
    }
    let _ = b.fs.unmount();
    vs
}

/// The seeded known-bad script of the shrinker self-test: a fixed random
/// prefix with one extending truncate buried mid-script, which trips
/// [`ModelBug::TruncateExtendLost`] at the default threshold of 16384.
/// Shared by `fuzz_fs --self-test` and `tests/fuzz_regress.rs`, both of
/// which demand it shrink to the same byte-identical two-op fixed point
/// (the committed `tests/repro/selftest_truncate_extend.repro`).
pub fn known_bad_script() -> Vec<Op> {
    let mut ops = Script::random(0xBAD, 10).ops;
    ops.insert(
        6,
        Op::Truncate {
            file: 0,
            size: 30_000,
        },
    );
    ops
}

/// Checks `ops` differentially on `kind` (optionally against a model with
/// a planted bug) and, when the check fails, ddmin-shrinks it into a
/// [`Repro`]. Deterministic: the same inputs always reach the same fixed
/// point, byte-identical across runs. `None` when the script is clean.
/// This is the shrinker self-test entry point (`fuzz_fs --self-test`,
/// `tests/fuzz_regress.rs`).
pub fn shrink_differential(
    h: &Harness,
    kind: FsKind,
    ops: &[Op],
    bug: Option<ModelBug>,
    budget: usize,
) -> Option<Repro> {
    let first = differential(h, kind, ops, bug);
    if first.is_empty() {
        return None;
    }
    let mut budget = budget;
    let min = ddmin(ops.to_vec(), &mut |cand| {
        if budget == 0 {
            return false;
        }
        budget -= 1;
        !differential(h, kind, cand, bug).is_empty()
    });
    let script = Script { ops: min };
    Some(Repro {
        name: format!("diff_{}_{:012x}", kind.label(), repro_hash(&script, &[])),
        kind: Some(kind),
        threads: 1,
        boundaries: Vec::new(),
        note: first.first().cloned().unwrap_or_default(),
        script,
    })
}

/// Whether an error reflects resource exhaustion (capacity policy) rather
/// than a semantic divergence from the model.
fn resource_error(e: &FsError) -> bool {
    matches!(
        e,
        FsError::NoSpace | FsError::NoInodes | FsError::JournalFull
    )
}

/// Classic ddmin over the op list: repeatedly drop chunks (halving chunk
/// size down to single ops) while `fails` still returns true. Fully
/// deterministic — no randomness, so a given failing script always
/// shrinks to the same fixed point.
fn ddmin(mut cur: Vec<Op>, fails: &mut dyn FnMut(&[Op]) -> bool) -> Vec<Op> {
    let mut n = 2usize;
    while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let mut cand = cur[..start].to_vec();
            cand.extend_from_slice(&cur[end..]);
            if !cand.is_empty() && fails(&cand) {
                cur = cand;
                reduced = true;
                break;
            }
            start = end;
        }
        if reduced {
            n = n.saturating_sub(1).max(2);
            continue;
        }
        if chunk <= 1 {
            break;
        }
        n = (n * 2).min(cur.len());
    }
    cur
}

/// Coverage context byte of one kind (position in [`FsKind::ALL`]).
fn kind_ctx(kind: FsKind) -> u8 {
    match kind {
        FsKind::Hinfs => 0,
        FsKind::Pmfs => 1,
        FsKind::Ext4 => 2,
    }
}

/// Stable index of one op class for op-outcome coverage.
fn op_index(op: &Op) -> u64 {
    match op {
        Op::Create { .. } => 0,
        Op::Write { .. } => 1,
        Op::Append { .. } => 2,
        Op::Fsync { .. } => 3,
        Op::Truncate { .. } => 4,
        Op::Unlink { .. } => 5,
        Op::Rename { .. } => 6,
        Op::Mkdir { .. } => 7,
        Op::Rmdir { .. } => 8,
        Op::Sync => 9,
        Op::Tick => 10,
    }
}

/// Small outcome class of one op result (0 = ok, else an error family).
fn outcome_class(res: &Result<(), FsError>) -> u64 {
    match res {
        Ok(()) => 0,
        Err(FsError::NotFound) => 1,
        Err(FsError::AlreadyExists) => 2,
        Err(FsError::NoSpace) | Err(FsError::NoInodes) => 3,
        Err(FsError::JournalFull) => 4,
        Err(_) => 5,
    }
}

/// FNV-1a over the repro's semantic content, for stable slug names.
fn repro_hash(script: &Script, boundaries: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for op in &script.ops {
        eat(op.to_text().as_bytes());
        eat(b"\n");
    }
    for &b in boundaries {
        eat(&b.to_le_bytes());
    }
    h & 0xFFFF_FFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddmin_reaches_one_minimal_op() {
        // Fails iff the list still contains Sync.
        let ops = Script::random(11, 30).ops;
        let mut with_sync = ops.clone();
        with_sync.insert(17, Op::Sync);
        let min = ddmin(with_sync, &mut |c| c.contains(&Op::Sync));
        assert_eq!(min, vec![Op::Sync]);
    }

    #[test]
    fn ddmin_keeps_pairs_that_fail_together() {
        // Fails iff both a Create f1 and an Unlink f1 survive, in order.
        let mut ops = Script::random(5, 24).ops;
        ops.retain(|o| !matches!(o, Op::Create { file: 1 } | Op::Unlink { file: 1 }));
        ops.insert(3, Op::Create { file: 1 });
        ops.push(Op::Unlink { file: 1 });
        let min = ddmin(ops, &mut |c| {
            let ci = c.iter().position(|o| *o == Op::Create { file: 1 });
            let ui = c.iter().position(|o| *o == Op::Unlink { file: 1 });
            matches!((ci, ui), (Some(a), Some(b)) if a < b)
        });
        assert_eq!(min, vec![Op::Create { file: 1 }, Op::Unlink { file: 1 }]);
    }

    #[test]
    fn repro_text_round_trips() {
        let r = Repro {
            name: "crash_pmfs_0000deadbeef".into(),
            kind: Some(FsKind::Pmfs),
            threads: 4,
            boundaries: vec![3, 17],
            note: "recorded under 4 threads".into(),
            script: Script {
                ops: vec![
                    Op::Create { file: 0 },
                    Op::Write {
                        file: 0,
                        off: 128,
                        len: 4096,
                        fill: 9,
                    },
                    Op::Fsync { file: 0 },
                ],
            },
        };
        let text = r.to_text();
        let back = Repro::parse(&text).expect("parse");
        assert_eq!(back, r);
        assert_eq!(back.to_text(), text, "serialization is a fixed point");
        assert!(Repro::parse("name: x\nops:\n").is_err(), "empty ops");
        assert!(Repro::parse("kind: zfs\nops:\ntick\n").is_err());
    }

    #[test]
    fn differential_is_clean_on_all_kinds_for_a_seed_script() {
        let h = Harness::new();
        let script = Script::random(0xD1FF, 14);
        for kind in FsKind::ALL {
            let vs = differential(&h, kind, &script.ops, None);
            assert!(vs.is_empty(), "{}: {vs:?}", kind.label());
        }
    }

    #[test]
    fn planted_bug_is_caught_and_shrinks_to_two_ops() {
        let bug = ModelBug::TruncateExtendLost { threshold: 16384 };
        let h = Harness::new();
        // A known-bad script: the extending truncate is buried mid-script.
        let mut ops = Script::random(0xBAD, 10).ops;
        ops.insert(
            6,
            Op::Truncate {
                file: 0,
                size: 30_000,
            },
        );
        assert!(
            !differential(&h, FsKind::Pmfs, &ops, Some(bug)).is_empty(),
            "the planted bug must be visible before shrinking"
        );
        let min = ddmin(ops, &mut |c| {
            !differential(&h, FsKind::Pmfs, c, Some(bug)).is_empty()
        });
        // Fixed point: a create (so truncate does not NotFound on both
        // sides) plus the extending truncate.
        assert!(min.len() <= 2, "shrunk to {min:?}");
        let again = ddmin(min.clone(), &mut |c| {
            !differential(&h, FsKind::Pmfs, c, Some(bug)).is_empty()
        });
        assert_eq!(again, min, "shrinking is a fixed point");
    }
}
