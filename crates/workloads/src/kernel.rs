//! Kernel-tree macrobenchmarks: `grep` over the source tree (read-only
//! scan) and `make` (read sources, write objects; no fsync — the compile
//! writes are all lazy-persistent, which is why HiNFS wins Kernel-Make by
//! ~64 % in Fig 13).

use std::sync::Arc;

use fskit::{FileSystem, OpenFlags, Result};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::runner::{Actor, Ctx};

/// A synthetic source tree.
#[derive(Debug)]
pub struct SourceTree {
    /// All source file paths.
    pub files: Vec<String>,
    /// Cursor shared by the workers.
    next: Mutex<usize>,
}

/// Parameters of the synthetic kernel tree.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Number of directories.
    pub dirs: usize,
    /// Source files per directory.
    pub files_per_dir: usize,
    /// Mean source file size.
    pub mean_size: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            dirs: 24,
            files_per_dir: 16,
            mean_size: 12 << 10,
        }
    }
}

impl SourceTree {
    /// Builds the tree under `root` and fills the files with content.
    pub fn build(
        fs: &dyn FileSystem,
        root: &str,
        p: TreeParams,
        seed: u64,
    ) -> Result<Arc<SourceTree>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        if fs.stat(root).is_err() {
            fs.mkdir(root)?;
        }
        let mut files = Vec::new();
        let payload = vec![0x2au8; p.mean_size * 2];
        for d in 0..p.dirs {
            let dir = format!("{root}/src{d:03}");
            fs.mkdir(&dir)?;
            for f in 0..p.files_per_dir {
                let path = format!("{dir}/file{f:03}.c");
                let fd = fs.open(&path, OpenFlags::RDWR | OpenFlags::CREATE)?;
                let size = crate::fileset::draw_size(&mut rng, p.mean_size).max(64);
                fs.write(fd, 0, &payload[..size])?;
                fs.close(fd)?;
                files.push(path);
            }
        }
        Ok(Arc::new(SourceTree {
            files,
            next: Mutex::new(0),
        }))
    }

    fn take_next(&self) -> Option<usize> {
        let mut n = self.next.lock();
        if *n >= self.files.len() {
            return None;
        }
        let i = *n;
        *n += 1;
        Some(i)
    }

    /// Resets the work cursor (to run the pass again).
    pub fn reset(&self) {
        *self.next.lock() = 0;
    }
}

/// Kernel-Grep: reads every file of the tree, searching for a pattern that
/// never matches.
pub struct KernelGrep {
    tree: Arc<SourceTree>,
    buf: Vec<u8>,
}

impl KernelGrep {
    /// Creates a grep worker.
    pub fn new(tree: Arc<SourceTree>) -> KernelGrep {
        KernelGrep {
            tree,
            buf: Vec::new(),
        }
    }
}

impl Actor for KernelGrep {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        let Some(i) = self.tree.take_next() else {
            return Ok(false);
        };
        let path = self.tree.files[i].clone();
        let fd = ctx.open(&path, OpenFlags::READ)?;
        let size = ctx.fstat(fd)?.size;
        self.buf.resize(64 << 10, 0);
        let mut off = 0u64;
        while off < size {
            let n = {
                let buf = &mut self.buf;
                ctx.read(fd, off, buf)?
            };
            if n == 0 {
                break;
            }
            // "Search" the buffer for an absent pattern.
            debug_assert!(!self.buf[..n].windows(7).any(|w| w == b"@@MISS@"));
            off += n as u64;
        }
        ctx.close(fd)?;
        Ok(true)
    }
}

/// Kernel-Make: per source file, read it (and a couple of "headers"),
/// then write a `.o` object of comparable size. No synchronization.
pub struct KernelMake {
    tree: Arc<SourceTree>,
    buf: Vec<u8>,
}

impl KernelMake {
    /// Creates a compile worker.
    pub fn new(tree: Arc<SourceTree>) -> KernelMake {
        KernelMake {
            tree,
            buf: Vec::new(),
        }
    }
}

impl Actor for KernelMake {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        let Some(i) = self.tree.take_next() else {
            return Ok(false);
        };
        let src = self.tree.files[i].clone();
        let fd = ctx.open(&src, OpenFlags::READ)?;
        let size = ctx.fstat(fd)?.size;
        self.buf.resize(64 << 10, 0);
        let mut off = 0u64;
        while off < size {
            let n = ctx.read(fd, off, &mut self.buf.clone())?;
            if n == 0 {
                break;
            }
            off += n as u64;
        }
        ctx.close(fd)?;
        // Include two random "headers".
        for _ in 0..2 {
            let j = ctx.rng.gen_range(0..self.tree.files.len());
            let hdr = self.tree.files[j].clone();
            if let Ok(fd) = ctx.open(&hdr, OpenFlags::READ) {
                ctx.read(fd, 0, &mut self.buf.clone())?;
                ctx.close(fd)?;
            }
        }
        // Emit the object file (~80 % of the source size).
        let obj = format!("{src}.o");
        let out = ctx.open(&obj, OpenFlags::RDWR | OpenFlags::CREATE | OpenFlags::TRUNC)?;
        let osize = (size as usize * 4 / 5).max(64);
        self.buf.resize(osize, 0x4f);
        ctx.write(out, 0, &self.buf[..osize])?;
        ctx.close(out)?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{RunLimit, Runner};
    use crate::OpKind;
    use nvmm::{CostModel, NvmmDevice, SimEnv, BLOCK_SIZE};
    use pmfs::{Pmfs, PmfsOptions};

    fn setup() -> (Arc<SimEnv>, Arc<Pmfs>, Arc<SourceTree>) {
        let env = SimEnv::new_virtual(CostModel::default());
        let dev = NvmmDevice::new(env.clone(), 32768 * BLOCK_SIZE);
        let fs = Pmfs::mkfs(
            dev,
            PmfsOptions {
                journal_blocks: 128,
                inode_count: 4096,
            },
        )
        .unwrap();
        let tree = SourceTree::build(
            &*fs,
            "/linux",
            TreeParams {
                dirs: 4,
                files_per_dir: 8,
                mean_size: 8 << 10,
            },
            5,
        )
        .unwrap();
        env.rebase();
        (env, fs, tree)
    }

    #[test]
    fn grep_reads_everything_and_finishes() {
        let (env, fs, tree) = setup();
        let runner = Runner::new(env, fs);
        let r = runner.run(
            vec![Box::new(KernelGrep::new(tree.clone()))],
            RunLimit::default(),
            2,
        );
        assert_eq!(r.metrics.steps, 32 + 1, "one step per file + final empty");
        assert_eq!(r.metrics.bytes_written, 0, "grep is read-only");
        assert!(r.metrics.bytes_read > 32 * 4096);
    }

    #[test]
    fn make_emits_objects_without_fsync() {
        let (env, fs, tree) = setup();
        let runner = Runner::new(env, fs.clone());
        let r = runner.run(
            vec![Box::new(KernelMake::new(tree.clone()))],
            RunLimit::default(),
            2,
        );
        assert_eq!(r.op_count(OpKind::Fsync), 0);
        assert!(r.metrics.bytes_written > 0);
        // Objects exist.
        let obj = format!("{}.o", tree.files[0]);
        assert!(fs.stat(&obj).is_ok());
    }

    #[test]
    fn two_workers_split_the_tree() {
        let (env, fs, tree) = setup();
        let runner = Runner::new(env, fs);
        let r = runner.run(
            vec![
                Box::new(KernelGrep::new(tree.clone())) as Box<dyn crate::Actor>,
                Box::new(KernelGrep::new(tree)),
            ],
            RunLimit::default(),
            2,
        );
        // 32 files + 2 final empty steps.
        assert_eq!(r.metrics.steps, 34);
    }
}
