//! A jbd2-style physical redo journal (ordered data mode) for the ext4
//! baselines.
//!
//! A *running transaction* accumulates the metadata blocks dirtied since
//! the last commit; those pages are pinned in the cache so they cannot
//! reach the device in place early. [`Jbd::commit`] (triggered by fsync,
//! the periodic 5 s flush, or unmount) writes, through the block layer:
//!
//! 1. a descriptor block listing the target block numbers,
//! 2. a copy of each metadata block,
//! 3. a commit block,
//!
//! then unpins the pages, leaving them dirty for later checkpoint
//! writeback. *Ordered data mode* is the caller's job: file data pages are
//! flushed before `commit` is called. Recovery replays committed
//! transactions in sequence order (redo).

use std::collections::BTreeSet;
use std::sync::Arc;

use blockdev::Nvmmbd;
use nvmm::{Cat, BLOCK_SIZE};
use obsv::{DrainKind, Site, TrackedMutex};

use crate::cache::BufferCache;

const DESC_MAGIC: u64 = 0x4a42_4444_4553_4331; // "JBDDESC1"
const COMMIT_MAGIC: u64 = 0x4a42_4443_4f4d_5431; // "JBDCOMT1"
const REVOKE_MAGIC: u64 = 0x4a42_4452_4556_4b31; // "JBDREVK1"

/// Targets per descriptor block: header (magic, seq, count) + blknos.
const DESC_CAPACITY: usize = BLOCK_SIZE / 8 - 3;

#[derive(Debug)]
struct JbdInner {
    /// Metadata blocks of the running transaction.
    running: BTreeSet<u64>,
    /// Blocks freed since the last commit: the next commit writes a revoke
    /// record for them so replay never resurrects a stale image over their
    /// reallocated contents (jbd2's revoke mechanism).
    revoked: BTreeSet<u64>,
    /// Next transaction sequence number.
    seq: u64,
    /// Next free journal block (ring offset from the area start).
    write_ptr: u64,
    commits: u64,
}

/// The redo journal.
#[derive(Debug)]
pub struct Jbd {
    bd: Arc<Nvmmbd>,
    start: u64,
    blocks: u64,
    enabled: bool,
    inner: TrackedMutex<JbdInner>,
}

impl Jbd {
    /// Opens the journal over `[start, start+blocks)`. A disabled journal
    /// (ext2 mode) turns every operation into a no-op.
    pub fn open(bd: Arc<Nvmmbd>, start: u64, blocks: u64, enabled: bool) -> Jbd {
        assert!(blocks >= 8, "journal area too small");
        let inner = TrackedMutex::attached(
            bd.byte_device().contention(),
            Site::ExtfsJbd,
            JbdInner {
                running: BTreeSet::new(),
                revoked: BTreeSet::new(),
                seq: 1,
                write_ptr: 0,
                commits: 0,
            },
        );
        Jbd {
            bd,
            start,
            blocks,
            enabled,
            inner,
        }
    }

    /// Whether journaling is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Zeroes the journal head so replay finds an empty log.
    pub fn format(bd: &Nvmmbd, start: u64) {
        bd.write_block(Cat::Journal, start, &vec![0u8; BLOCK_SIZE]);
        bd.flush();
    }

    /// Adds a dirtied metadata block to the running transaction, pinning
    /// its cache page.
    pub fn add(&self, cache: &BufferCache, blk: u64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.running.insert(blk) {
            cache.pin(blk);
        }
    }

    /// Number of blocks in the running transaction.
    pub fn running_len(&self) -> usize {
        self.inner.lock().running.len()
    }

    /// Drops a block from the running transaction (it was freed). Without
    /// this, a freed-and-reallocated block would be journaled with stale
    /// content and replay could clobber its new life as a data block.
    pub fn forget(&self, cache: &BufferCache, blk: u64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.running.remove(&blk) {
            cache.unpin(blk);
        }
        inner.revoked.insert(blk);
    }

    /// Total commits so far.
    pub fn commits(&self) -> u64 {
        self.inner.lock().commits
    }

    /// Commits the running transaction, draining the journaled pages'
    /// lineage stamps as `kind` (the commit makes them recoverable). The
    /// caller has already flushed the related *data* pages (ordered mode).
    pub fn commit(&self, cache: &BufferCache, kind: DrainKind) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.running.is_empty() && inner.revoked.is_empty() {
            return;
        }
        let blks: Vec<u64> = std::mem::take(&mut inner.running).into_iter().collect();
        let revoked: Vec<u64> = std::mem::take(&mut inner.revoked).into_iter().collect();
        // Space: descriptors + copies + revokes + commit, with
        // ring-overflow checkpointing first if needed.
        let descs = blks.len().div_ceil(DESC_CAPACITY) as u64;
        let revs = revoked.len().div_ceil(DESC_CAPACITY) as u64;
        let needed = descs + blks.len() as u64 + revs + 1;
        if inner.write_ptr + needed > self.blocks {
            // Checkpoint: push all dirty pages in place and restart the
            // ring. Unpin first so the flush may write them.
            for &b in &blks {
                cache.unpin(b);
            }
            cache.flush_all(kind);
            self.bd.flush();
            inner.write_ptr = 0;
            self.bd
                .write_block(Cat::Journal, self.start, &vec![0u8; BLOCK_SIZE]);
            obsv::note_journaled(BLOCK_SIZE as u64);
            self.bd.flush();
            // Everything of this transaction is already in place; no
            // journal records needed.
            inner.seq += 1;
            inner.commits += 1;
            return;
        }
        let ring_before = inner.write_ptr;
        for group in revoked.chunks(DESC_CAPACITY) {
            let mut rev = vec![0u8; BLOCK_SIZE];
            rev[0..8].copy_from_slice(&REVOKE_MAGIC.to_le_bytes());
            rev[8..16].copy_from_slice(&inner.seq.to_le_bytes());
            rev[16..24].copy_from_slice(&(group.len() as u64).to_le_bytes());
            for (i, blk) in group.iter().enumerate() {
                let o = 24 + i * 8;
                rev[o..o + 8].copy_from_slice(&blk.to_le_bytes());
            }
            self.bd
                .write_block(Cat::Journal, self.start + inner.write_ptr, &rev);
            inner.write_ptr += 1;
        }
        for group in blks.chunks(DESC_CAPACITY) {
            let mut desc = vec![0u8; BLOCK_SIZE];
            desc[0..8].copy_from_slice(&DESC_MAGIC.to_le_bytes());
            desc[8..16].copy_from_slice(&inner.seq.to_le_bytes());
            desc[16..24].copy_from_slice(&(group.len() as u64).to_le_bytes());
            for (i, blk) in group.iter().enumerate() {
                let o = 24 + i * 8;
                desc[o..o + 8].copy_from_slice(&blk.to_le_bytes());
            }
            self.bd
                .write_block(Cat::Journal, self.start + inner.write_ptr, &desc);
            inner.write_ptr += 1;
            let mut page = vec![0u8; BLOCK_SIZE];
            for &blk in group {
                cache.read(Cat::Journal, blk, 0, &mut page);
                self.bd
                    .write_block(Cat::Journal, self.start + inner.write_ptr, &page);
                inner.write_ptr += 1;
            }
        }
        self.bd.flush();
        let mut commit = vec![0u8; BLOCK_SIZE];
        commit[0..8].copy_from_slice(&COMMIT_MAGIC.to_le_bytes());
        commit[8..16].copy_from_slice(&inner.seq.to_le_bytes());
        self.bd
            .write_block(Cat::Journal, self.start + inner.write_ptr, &commit);
        inner.write_ptr += 1;
        obsv::note_journaled((inner.write_ptr - ring_before) * BLOCK_SIZE as u64);
        self.bd.flush();
        inner.seq += 1;
        inner.commits += 1;
        drop(inner);
        // The commit record is durable: the journaled pages' acked
        // content is now recoverable, so their stamps retire here.
        cache.note_committed(&blks, kind);
        for &blk in &blks {
            cache.unpin(blk);
        }
    }

    /// Replays committed transactions after a crash, writing their block
    /// images in place. Returns the number of transactions replayed.
    ///
    /// Two passes, like jbd2: the first collects every committed
    /// transaction and the revoke records; the second applies the images
    /// in sequence order, skipping any block revoked at an equal or later
    /// sequence (its journal copies are stale images of a freed block).
    pub fn replay(bd: &Nvmmbd, start: u64, blocks: u64) -> u64 {
        use std::collections::HashMap;
        struct Tx {
            seq: u64,
            targets: Vec<(u64, u64)>, // (journal block, target block)
        }
        let mut txs: Vec<Tx> = Vec::new();
        let mut revoke_at: HashMap<u64, u64> = HashMap::new(); // blk -> max seq
        let mut block = vec![0u8; BLOCK_SIZE];

        // Pass 1: walk the chain and collect.
        let mut ptr = 0u64;
        let mut expect: Option<u64> = None;
        'outer: loop {
            if ptr >= blocks {
                break;
            }
            bd.read_block(Cat::Journal, start + ptr, &mut block);
            let magic = u64::from_le_bytes(block[0..8].try_into().unwrap());
            if magic != DESC_MAGIC && magic != REVOKE_MAGIC {
                break;
            }
            let seq = u64::from_le_bytes(block[8..16].try_into().unwrap());
            if let Some(e) = expect {
                if seq != e {
                    // Stale record from an earlier lap of the ring.
                    break;
                }
            }
            let mut targets: Vec<(u64, u64)> = Vec::new();
            let mut revokes: Vec<u64> = Vec::new();
            let mut p = ptr;
            loop {
                if p >= blocks {
                    break 'outer;
                }
                bd.read_block(Cat::Journal, start + p, &mut block);
                let magic = u64::from_le_bytes(block[0..8].try_into().unwrap());
                let bseq = u64::from_le_bytes(block[8..16].try_into().unwrap());
                if magic == COMMIT_MAGIC && bseq == seq {
                    // Committed: record it.
                    for blk in revokes {
                        let e = revoke_at.entry(blk).or_insert(seq);
                        *e = (*e).max(seq);
                    }
                    txs.push(Tx { seq, targets });
                    expect = Some(seq + 1);
                    ptr = p + 1;
                    continue 'outer;
                }
                if (magic != DESC_MAGIC && magic != REVOKE_MAGIC) || bseq != seq {
                    // Torn transaction: stop replay entirely.
                    break 'outer;
                }
                let count = u64::from_le_bytes(block[16..24].try_into().unwrap());
                if count as usize > DESC_CAPACITY {
                    break 'outer;
                }
                if magic == REVOKE_MAGIC {
                    for i in 0..count as usize {
                        let o = 24 + i * 8;
                        revokes.push(u64::from_le_bytes(block[o..o + 8].try_into().unwrap()));
                    }
                    p += 1;
                } else {
                    if p + count + 1 > blocks {
                        break 'outer;
                    }
                    for i in 0..count as usize {
                        let o = 24 + i * 8;
                        let tblk = u64::from_le_bytes(block[o..o + 8].try_into().unwrap());
                        targets.push((p + 1 + i as u64, tblk));
                    }
                    p += count + 1;
                }
            }
        }

        // Pass 2: apply in order, honoring revokes.
        let mut img = vec![0u8; BLOCK_SIZE];
        let replayed = txs.len() as u64;
        for tx in txs {
            for (jblk, tblk) in tx.targets {
                if revoke_at.get(&tblk).is_some_and(|&rseq| rseq >= tx.seq) {
                    continue;
                }
                bd.read_block(Cat::Journal, start + jblk, &mut img);
                bd.write_block(Cat::Journal, tblk, &img);
            }
        }
        bd.flush();
        replayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmm::{CostModel, NvmmDevice, SimEnv};

    fn setup() -> (Arc<Nvmmbd>, BufferCache, Jbd) {
        let env = SimEnv::new_virtual(CostModel::default());
        let dev = NvmmDevice::new_tracked(env, 1024 * BLOCK_SIZE);
        let bd = Arc::new(Nvmmbd::new(dev));
        let cache = BufferCache::new(bd.clone(), 64);
        Jbd::format(&bd, 1);
        let jbd = Jbd::open(bd.clone(), 1, 64, true);
        (bd, cache, jbd)
    }

    #[test]
    fn committed_metadata_replays_after_crash() {
        let (bd, cache, jbd) = setup();
        // Dirty a metadata block, journal it, commit — but never checkpoint.
        cache.write(Cat::Meta, 200, 0, &[7u8; 64], 0);
        jbd.add(&cache, 200);
        jbd.commit(&cache, DrainKind::Sync);
        // Crash: the in-place block was never written (page still dirty).
        bd.byte_device().crash();
        let replayed = Jbd::replay(&bd, 1, 64);
        assert_eq!(replayed, 1);
        let mut buf = vec![0u8; BLOCK_SIZE];
        bd.read_block(Cat::Meta, 200, &mut buf);
        assert_eq!(&buf[0..64], &[7u8; 64]);
    }

    #[test]
    fn uncommitted_transaction_is_not_replayed() {
        let (bd, cache, jbd) = setup();
        cache.write(Cat::Meta, 201, 0, &[9u8; 64], 0);
        jbd.add(&cache, 201);
        // No commit; pinned page cannot be flushed in place either.
        cache.flush_all(DrainKind::Sync);
        bd.byte_device().crash();
        assert_eq!(Jbd::replay(&bd, 1, 64), 0);
        let mut buf = vec![0u8; BLOCK_SIZE];
        bd.read_block(Cat::Meta, 201, &mut buf);
        assert_eq!(&buf[0..64], &[0u8; 64], "uncommitted change lost cleanly");
    }

    #[test]
    fn pinned_pages_resist_eviction_until_commit() {
        let (bd, cache, jbd) = setup();
        cache.write(Cat::Meta, 300, 0, &[1u8; 64], 0);
        jbd.add(&cache, 300);
        // Fill the cache to force evictions; block 300 must survive.
        for blk in 0..100u64 {
            cache.write(Cat::UserWrite, 400 + blk, 0, &[2u8; BLOCK_SIZE], 0);
        }
        let mut direct = vec![0u8; BLOCK_SIZE];
        bd.byte_device().peek(300 * BLOCK_SIZE as u64, &mut direct);
        assert_eq!(
            &direct[0..64],
            &[0u8; 64],
            "pinned page never written in place"
        );
        jbd.commit(&cache, DrainKind::Sync);
        cache.flush_all(DrainKind::Sync);
        bd.byte_device().peek(300 * BLOCK_SIZE as u64, &mut direct);
        assert_eq!(&direct[0..64], &[1u8; 64]);
    }

    #[test]
    fn multiple_transactions_replay_in_order() {
        let (bd, cache, jbd) = setup();
        for round in 1..=3u8 {
            cache.write(Cat::Meta, 210, 0, &[round; 64], 0);
            jbd.add(&cache, 210);
            jbd.commit(&cache, DrainKind::Sync);
        }
        bd.byte_device().crash();
        assert_eq!(Jbd::replay(&bd, 1, 64), 3);
        let mut buf = vec![0u8; BLOCK_SIZE];
        bd.read_block(Cat::Meta, 210, &mut buf);
        assert_eq!(&buf[0..64], &[3u8; 64], "latest committed image wins");
    }

    #[test]
    fn ring_overflow_checkpoints_and_restarts() {
        let (bd, cache, jbd) = setup();
        // 64-block ring; each commit here uses 3 blocks. Push beyond.
        for i in 0..40u64 {
            cache.write(Cat::Meta, 220 + (i % 5), 0, &[i as u8; 64], 0);
            jbd.add(&cache, 220 + (i % 5));
            jbd.commit(&cache, DrainKind::Sync);
        }
        assert_eq!(jbd.commits(), 40);
        // After crash, replay must still leave a consistent image: whatever
        // was checkpointed is in place; replayed txs apply on top.
        bd.byte_device().crash();
        Jbd::replay(&bd, 1, 64);
        let mut buf = vec![0u8; BLOCK_SIZE];
        bd.read_block(Cat::Meta, 220 + 4, &mut buf);
        assert_eq!(&buf[0..64], &[39u8; 64]);
    }

    #[test]
    fn revoked_blocks_are_not_resurrected() {
        // Journal block X in a committed tx, then free it (forget) and
        // reuse it as a plain data block. Replay must not clobber the new
        // data with the stale journaled image.
        let (bd, cache, jbd) = setup();
        cache.write(Cat::Meta, 400, 0, &[0xEE; 64], 0);
        jbd.add(&cache, 400);
        jbd.commit(&cache, DrainKind::Sync);
        // Free + revoke, then the block gets a new life as data.
        jbd.forget(&cache, 400);
        cache.invalidate(400);
        bd.write_block(Cat::UserWrite, 400, &vec![0xDD; BLOCK_SIZE]);
        // The revoke must be committed (it rides the next commit).
        cache.write(Cat::Meta, 401, 0, &[1; 8], 0);
        jbd.add(&cache, 401);
        jbd.commit(&cache, DrainKind::Sync);
        bd.byte_device().crash();
        Jbd::replay(&bd, 1, 64);
        let mut buf = vec![0u8; BLOCK_SIZE];
        bd.read_block(Cat::UserRead, 400, &mut buf);
        assert!(
            buf.iter().all(|&b| b == 0xDD),
            "replay resurrected a revoked block"
        );
    }

    #[test]
    fn disabled_journal_is_noop() {
        let env = SimEnv::new_virtual(CostModel::default());
        let dev = NvmmDevice::new(env, 256 * BLOCK_SIZE);
        let bd = Arc::new(Nvmmbd::new(dev));
        let cache = BufferCache::new(bd.clone(), 16);
        let jbd = Jbd::open(bd.clone(), 1, 16, false);
        cache.write(Cat::Meta, 100, 0, &[1u8; 64], 0);
        jbd.add(&cache, 100);
        let (_, w0, _) = bd.request_counts();
        jbd.commit(&cache, DrainKind::Sync);
        let (_, w1, _) = bd.request_counts();
        assert_eq!(w0, w1, "ext2 mode journals nothing");
        // And the page is not pinned: flush_all writes it.
        cache.flush_all(DrainKind::Sync);
        let (_, w2, _) = bd.request_counts();
        assert_eq!(w2, w1 + 1);
    }
}
