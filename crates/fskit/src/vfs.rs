//! The virtual file system interface.
//!
//! [`FileSystem`] is the syscall surface the paper's workloads exercise:
//! `open`/`close`, positional `read`/`write`, `append`, `fsync`, namespace
//! operations, and direct memory-mapped I/O for the NVMM-aware file
//! systems. Implementations charge their own model costs (including the
//! fixed per-call "syscall" overhead) so callers simply invoke the methods.

use std::sync::Arc;

use crate::error::{FsError, Result};
use crate::flags::OpenFlags;
use crate::types::{DirEntry, Fd, Stat};

/// A mounted file system instance.
///
/// All methods take `&self`; implementations do their own locking, as a
/// kernel file system would.
pub trait FileSystem: Send + Sync {
    /// A short stable name for reports ("pmfs", "hinfs", "ext4-nvmmbd", ...).
    fn name(&self) -> &'static str;

    /// Opens (and with [`OpenFlags::CREATE`] possibly creates) a file.
    fn open(&self, path: &str, flags: OpenFlags) -> Result<Fd>;

    /// Closes a descriptor.
    fn close(&self, fd: Fd) -> Result<()>;

    /// Reads up to `buf.len()` bytes at byte offset `off`. Returns the
    /// number of bytes read (short at end of file).
    fn read(&self, fd: Fd, off: u64, buf: &mut [u8]) -> Result<usize>;

    /// Writes `data` at byte offset `off`, extending the file if needed.
    /// Returns the number of bytes written.
    fn write(&self, fd: Fd, off: u64, data: &[u8]) -> Result<usize>;

    /// Writes a gather list of slices as one contiguous run starting at
    /// byte offset `off` (`pwritev(2)`). Returns the total number of
    /// bytes written.
    ///
    /// The default forwards slice-by-slice through [`FileSystem::write`],
    /// paying the full per-call cost for each slice. NVMM-aware
    /// implementations override this to take their per-file locks and
    /// open their journal transaction once for the whole vector.
    fn write_vectored(&self, fd: Fd, off: u64, iovs: &[&[u8]]) -> Result<usize> {
        let mut cur = off;
        for iov in iovs {
            let n = self.write(fd, cur, iov)?;
            cur += n as u64;
            if n < iov.len() {
                break;
            }
        }
        Ok((cur - off) as usize)
    }

    /// Appends `data` at the end of the file, returning the offset the data
    /// landed at.
    fn append(&self, fd: Fd, data: &[u8]) -> Result<u64>;

    /// Makes all data of `fd` durable before returning.
    fn fsync(&self, fd: Fd) -> Result<()>;

    /// Truncates (or extends with zeroes) the file to `size` bytes.
    fn truncate(&self, fd: Fd, size: u64) -> Result<()>;

    /// Removes a name; the file is freed when the link count drops to zero.
    fn unlink(&self, path: &str) -> Result<()>;

    /// Creates a directory.
    fn mkdir(&self, path: &str) -> Result<()>;

    /// Removes an empty directory.
    fn rmdir(&self, path: &str) -> Result<()>;

    /// Lists a directory.
    fn readdir(&self, path: &str) -> Result<Vec<DirEntry>>;

    /// Metadata by path.
    fn stat(&self, path: &str) -> Result<Stat>;

    /// Metadata by descriptor.
    fn fstat(&self, fd: Fd) -> Result<Stat>;

    /// Renames `from` to `to` (same-directory and cross-directory).
    fn rename(&self, from: &str, to: &str) -> Result<()>;

    /// Makes every dirty buffer durable (like `sync(2)`).
    fn sync(&self) -> Result<()>;

    /// Flushes everything and quiesces background work. The file system
    /// must be fully durable when this returns (the paper: "HiNFS flushes
    /// all the DRAM blocks to the NVMM when unmounting").
    fn unmount(&self) -> Result<()>;

    /// Maps `len` bytes of the file at offset `off` directly into the
    /// caller's address space. Only the NVMM-aware file systems support
    /// this (PMFS-style direct mmap).
    fn mmap(&self, _fd: Fd, _off: u64, _len: usize) -> Result<Arc<dyn MmapHandle>> {
        Err(FsError::Unsupported)
    }

    /// Virtual-time hook: gives background machinery (writeback threads,
    /// journal checkpointing) a chance to run at simulated time `now_ns`.
    /// Real-thread (spin mode) deployments may ignore it.
    fn tick(&self, _now_ns: u64) {}
}

/// A direct memory mapping of file data.
///
/// Loads and stores go straight to the mapped NVMM region; stores are *not*
/// durable until [`MmapHandle::msync`], mirroring CPU-cache semantics.
pub trait MmapHandle: Send + Sync {
    /// Length of the mapping in bytes.
    fn len(&self) -> usize;

    /// Whether the mapping is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Loads bytes at `off` within the mapping.
    fn load(&self, off: usize, buf: &mut [u8]) -> Result<()>;

    /// Stores bytes at `off` within the mapping (volatile until `msync`).
    fn store(&self, off: usize, data: &[u8]) -> Result<()>;

    /// Persists the given range of the mapping.
    fn msync(&self, off: usize, len: usize) -> Result<()>;
}
