//! Regenerates the paper's evaluation figures.
//!
//! ```text
//! experiments [--fig N]... [--quick] [--md PATH]
//! ```
//!
//! Without `--fig`, every experiment runs (Figs 1, 2, 6–13). `--quick`
//! uses the smoke-test scale; `--md PATH` appends markdown tables to a
//! file (used to produce `EXPERIMENTS.md`).

use std::io::Write as _;

use hinfs_bench::figs;
use hinfs_bench::Scale;

fn main() {
    let mut figs_wanted: Vec<u32> = Vec::new();
    let mut quick = false;
    let mut md_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fig" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--fig needs a number");
                figs_wanted.push(n);
            }
            "--quick" => quick = true,
            "--md" => md_path = args.next(),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: experiments [--fig N]... [--quick] [--md PATH]");
                std::process::exit(2);
            }
        }
    }
    if figs_wanted.is_empty() {
        figs_wanted = figs::ALL_FIGS.to_vec();
    }
    let scale = if quick {
        Scale::quick()
    } else {
        Scale::default()
    };
    let mut md = String::new();
    for n in figs_wanted {
        let Some(table) = figs::fig(n, &scale) else {
            eprintln!("figure {n} has no experiment (figures 3-5 are architecture diagrams)");
            continue;
        };
        println!("{}", table.render_text());
        md.push_str(&table.render_markdown());
    }
    if let Some(path) = md_path {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("open markdown output");
        f.write_all(md.as_bytes()).expect("write markdown");
        eprintln!("appended markdown tables to {path}");
    }
}
