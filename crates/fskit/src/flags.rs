//! Open flags, modeled on the POSIX `open(2)` flags the paper's policies
//! depend on (most importantly `O_SYNC`, which makes every write on the
//! descriptor an *eager-persistent* write in HiNFS).

use std::ops::BitOr;

/// A set of open flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenFlags(u32);

impl OpenFlags {
    /// Open for reading.
    pub const READ: OpenFlags = OpenFlags(1 << 0);
    /// Open for writing.
    pub const WRITE: OpenFlags = OpenFlags(1 << 1);
    /// Create the file if it does not exist.
    pub const CREATE: OpenFlags = OpenFlags(1 << 2);
    /// Truncate to zero length on open.
    pub const TRUNC: OpenFlags = OpenFlags(1 << 3);
    /// All writes append to the end of the file.
    pub const APPEND: OpenFlags = OpenFlags(1 << 4);
    /// Fail if `CREATE` and the file exists.
    pub const EXCL: OpenFlags = OpenFlags(1 << 5);
    /// Every write is synchronous (`O_SYNC`): in HiNFS these are
    /// eager-persistent writes, case (1) of §3.3.2.
    pub const SYNC: OpenFlags = OpenFlags(1 << 6);

    /// Open for reading and writing.
    pub const RDWR: OpenFlags = OpenFlags(Self::READ.0 | Self::WRITE.0);

    /// The empty flag set.
    pub fn empty() -> OpenFlags {
        OpenFlags(0)
    }

    /// Whether every flag in `other` is set in `self`.
    pub fn contains(self, other: OpenFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether the descriptor permits reads.
    pub fn readable(self) -> bool {
        self.contains(Self::READ)
    }

    /// Whether the descriptor permits writes.
    pub fn writable(self) -> bool {
        self.contains(Self::WRITE)
    }
}

impl BitOr for OpenFlags {
    type Output = OpenFlags;

    fn bitor(self, rhs: OpenFlags) -> OpenFlags {
        OpenFlags(self.0 | rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_contains() {
        let f = OpenFlags::RDWR | OpenFlags::CREATE | OpenFlags::SYNC;
        assert!(f.contains(OpenFlags::READ));
        assert!(f.contains(OpenFlags::WRITE));
        assert!(f.contains(OpenFlags::SYNC));
        assert!(!f.contains(OpenFlags::APPEND));
        assert!(f.readable() && f.writable());
    }

    #[test]
    fn empty_contains_nothing_but_empty() {
        let e = OpenFlags::empty();
        assert!(e.contains(OpenFlags::empty()));
        assert!(!e.contains(OpenFlags::READ));
        assert!(!e.readable());
        assert!(!e.writable());
    }
}
