//! Machine-readable benchmark pipeline (`experiments --bench-json PATH`).
//!
//! Serializes a benchmark run into a stable, diffable JSON document:
//!
//! - `schema_version`, `git_rev`, and the [`Scale`] parameters;
//! - flat `"headline::<workload>::<system>::<metric>"` keys, one per
//!   line, so `scripts/bench_check.sh` can gate regressions with plain
//!   `grep`/`awk` (no JSON parser required);
//! - a `threads={1,2,4,8}` scaling sweep per headline cell
//!   (`...::threads=<n>::ops_per_s` / `::p99_ns` keys);
//! - flat `tail::<cell>::{p99,p999}::…` keys (schema v3): the anatomy of
//!   the quantile's flight-recorder exemplar cohort — per-phase ns,
//!   per-site wait ns, fence/stall/persisted counts, trace seq range —
//!   plus a nested `tail_exemplars` section with the top individual
//!   anatomies;
//! - flat `span::<cell>::phase=<p>::…`, `lock::<cell>::site=<s>::…` and
//!   `fence::<cell>::…` totals, the inputs `bench_diff` decomposes a
//!   regression into;
//! - flat `waf::<cell>::<layer>::bytes` per-layer write-amplification
//!   ledgers plus `waf::<cell>::fences_per_kib`, and flat
//!   `lag::<cell>::{p50,p99,max}_ns` durability-lag quantiles from the
//!   lineage tracker (schema v4);
//! - per-op latency quantiles (p50/p95/p99/mean) from the [`FsObs`]
//!   histograms of the headline runs;
//! - the OpKind × Phase span matrix of each headline run;
//! - the Site × OpKind lock-contention matrix of each headline run
//!   (wait/hold time per site, top sites by wait);
//! - every figure table produced by the invocation.
//!
//! Everything runs on the deterministic virtual clock, so two runs of the
//! same binary produce byte-identical documents except for `git_rev`.

use std::fmt::Write as _;
use std::sync::Arc;

use obsv::{
    row_label, HistoSnapshot, SpanSnapshot, TailAnatomy, ALL_OPS, ALL_PHASES, NPHASES, NSITES,
    SPAN_ROWS,
};
use workloads::fileset::Fileset;
use workloads::runner::{RunLimit, Runner};
use workloads::setups::{build, remount_with, System, SystemKind};
use workloads::RunReport;

use crate::common::{Personality, Scale};
use crate::table::Table;

/// Bumped whenever the document layout changes incompatibly.
pub const SCHEMA_VERSION: u32 = 4;

/// Thread counts of the per-cell scaling sweep.
pub const THREADS_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// The current git revision, or `"unknown"` outside a work tree.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Escapes a string for a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One headline measurement: a workload × system pair run with per-op
/// timing and span attribution enabled.
struct Headline {
    workload: &'static str,
    system: &'static str,
    report: RunReport,
    obs: Option<Arc<obsv::FsObs>>,
    spans: SpanSnapshot,
    /// End-of-run state snapshot (FS sections merged with the device
    /// section), captured just before unmount.
    snapshot: obsv::FsSnapshot,
    /// Lock-contention and stall profile of the run.
    contention: obsv::ContentionSnapshot,
    /// Flight-recorder reservoirs: the slowest per-op anatomies, the
    /// exemplars behind the `tail::` keys.
    flight: obsv::FlightSnapshot,
    /// Data-lifecycle ledger of the run: per-layer bytes, fences and
    /// durability-lag quantiles behind the `waf::`/`lag::` keys.
    lineage: obsv::LineageSnap,
    /// The threads={1,2,4,8} scaling sweep of this cell (empty until
    /// [`run_cell`] attaches it).
    sweep: Vec<SweepPoint>,
}

/// One point of a cell's thread-scaling sweep.
struct SweepPoint {
    threads: usize,
    ops_per_s: f64,
    p99_ns: u64,
}

/// Every op histogram of a run merged into one distribution (the
/// denominator of the overall tail quantiles).
fn merged_histo(obs: &Option<Arc<obsv::FsObs>>) -> Option<HistoSnapshot> {
    let obs = obs.as_ref()?;
    let mut merged: Option<HistoSnapshot> = None;
    for op in ALL_OPS {
        let snap = obs.op_histo(op).snapshot();
        if snap.count() == 0 {
            continue;
        }
        match &mut merged {
            Some(m) => m.merge(&snap),
            None => merged = Some(snap),
        }
    }
    merged
}

/// p99 across every op kind of a run (all op histograms merged).
fn overall_p99(obs: &Option<Arc<obsv::FsObs>>) -> u64 {
    merged_histo(obs).map(|m| m.quantile(0.99)).unwrap_or(0)
}

/// The headline grid gated by `bench_check.sh`: the paper's central
/// comparison (buffered HiNFS vs direct-access PMFS) on a write-heavy and
/// a read-heavy personality.
const HEADLINES: [(Personality, SystemKind); 4] = [
    (Personality::Fileserver, SystemKind::Pmfs),
    (Personality::Fileserver, SystemKind::Hinfs),
    (Personality::Webproxy, SystemKind::Pmfs),
    (Personality::Webproxy, SystemKind::Hinfs),
];

/// Builds, populates, remounts (cold caches) and runs one headline cell
/// with timing + spans + contention profiling on.
fn run_headline(p: Personality, kind: SystemKind, scale: &Scale) -> Headline {
    // The analytic time ledger is thread-local and survives across cells;
    // start each cell from zero so the end-of-run snapshot (and thus the
    // whole document) only reflects this cell's run.
    nvmm::ledger::reset();
    let mut cfg = scale.system_config(nvmm::CostModel::default());
    cfg.obsv = workloads::ObsvOptions::flight().with_lineage();
    let sys = build(kind, &cfg).expect("build system");
    let set = Fileset::populate(&*sys.fs, scale.fileset_spec(), 0xF11E).expect("populate fileset");
    sys.fs.unmount().expect("unmount after populate");
    let System { kind, dev, env, .. } = sys;
    let sys = remount_with(kind, dev, env, &cfg).expect("remount");
    sys.env.rebase();
    let s0 = sys.dev.spans().snapshot();
    let actors = p.actors(&set, scale.filebench_params(), scale.threads);
    let report = Runner::new(sys.env.clone(), sys.fs.clone())
        .with_device(sys.dev.clone())
        .run(actors, RunLimit::duration_ms(scale.duration_ms), 0xBEEF);
    let spans = sys.dev.spans().snapshot().since(&s0);
    let contention = sys.env.contention().snapshot();
    let obs = sys.obs.clone();
    let flight = obs
        .as_ref()
        .map(|o| o.flight().snapshot())
        .unwrap_or_default();
    let lineage = obs.as_ref().map(|o| o.lineage().snap()).unwrap_or_default();
    let mut snapshot = sys
        .introspect
        .as_ref()
        .map(|i| i.snapshot())
        .unwrap_or_default();
    snapshot.merge(obsv::Introspect::snapshot(&*sys.dev));
    let _ = sys.fs.unmount();
    Headline {
        workload: p.label(),
        system: kind.label(),
        report,
        obs,
        spans,
        snapshot,
        contention,
        flight,
        lineage,
        sweep: Vec::new(),
    }
}

/// Runs one headline cell at every [`THREADS_SWEEP`] count and returns the
/// base cell (the run at `scale.threads`) with the sweep attached. The
/// base run doubles as its own sweep point, so the legacy headline keys
/// and the matching `threads=<n>` keys come from the same run.
fn run_cell(p: Personality, kind: SystemKind, scale: &Scale) -> Headline {
    let mut base = run_headline(p, kind, scale);
    let sweep = THREADS_SWEEP
        .iter()
        .map(|&n| {
            if n == scale.threads {
                SweepPoint {
                    threads: n,
                    ops_per_s: base.report.throughput(),
                    p99_ns: overall_p99(&base.obs),
                }
            } else {
                let s = Scale {
                    threads: n,
                    ..scale.clone()
                };
                let h = run_headline(p, kind, &s);
                SweepPoint {
                    threads: n,
                    ops_per_s: h.report.throughput(),
                    p99_ns: overall_p99(&h.obs),
                }
            }
        })
        .collect();
    base.sweep = sweep;
    base
}

fn push_scale(out: &mut String, scale: &Scale, name: &str) {
    let _ = writeln!(
        out,
        "  \"scale\": {{\"name\": \"{}\", \"nfiles\": {}, \"mean_file\": {}, \"duration_ms\": {}, \
         \"device_bytes\": {}, \"threads\": {}, \"iosize\": {}, \"append\": {}}},",
        esc(name),
        scale.nfiles,
        scale.mean_file,
        scale.duration_ms,
        scale.device_bytes,
        scale.threads,
        scale.iosize,
        scale.append
    );
}

fn push_headline_keys(out: &mut String, cells: &[Headline]) {
    for h in cells {
        let base = format!("headline::{}::{}", h.workload, h.system);
        let _ = writeln!(
            out,
            "  \"{base}::ops_per_s\": {:.3},",
            h.report.throughput()
        );
        let _ = writeln!(out, "  \"{base}::total_ops\": {},", h.report.total_ops());
        let _ = writeln!(out, "  \"{base}::elapsed_ns\": {},", h.report.elapsed_ns);
        let _ = writeln!(
            out,
            "  \"{base}::nvmm_write_bytes\": {},",
            h.report.device.nvmm_bytes_written
        );
        for pt in &h.sweep {
            let _ = writeln!(
                out,
                "  \"{base}::threads={}::ops_per_s\": {:.3},",
                pt.threads, pt.ops_per_s
            );
            let _ = writeln!(
                out,
                "  \"{base}::threads={}::p99_ns\": {},",
                pt.threads, pt.p99_ns
            );
        }
    }
}

/// Flat `tail::` keys (schema v3): for each cell and each of p99/p999,
/// the quantile itself and the summed anatomy of its flight-recorder
/// exemplar cohort — every record whose latency bucket is at or above
/// the quantile's bucket. One key per line, greppable like `headline::`.
fn push_tail_keys(out: &mut String, cells: &[Headline]) {
    for h in cells {
        let Some(merged) = merged_histo(&h.obs) else {
            continue;
        };
        for (ql, q) in [("p99", 0.99), ("p999", 0.999)] {
            let qns = merged.quantile(q);
            let cohort = h.flight.cohort(qns);
            let a = TailAnatomy::aggregate(cohort.iter().copied());
            let base = format!("tail::{}::{}::{ql}", h.workload, h.system);
            let _ = writeln!(out, "  \"{base}::ns\": {qns},");
            let _ = writeln!(out, "  \"{base}::count\": {},", a.count);
            let _ = writeln!(out, "  \"{base}::fences\": {},", a.fences);
            let _ = writeln!(
                out,
                "  \"{base}::fences_coalesced\": {},",
                a.fences_coalesced
            );
            let _ = writeln!(out, "  \"{base}::stall_events\": {},", a.stall_events);
            let _ = writeln!(out, "  \"{base}::persisted_bytes\": {},", a.persisted_bytes);
            let _ = writeln!(out, "  \"{base}::max_batch\": {},", a.max_batch);
            let _ = writeln!(out, "  \"{base}::seq_lo\": {},", a.seq_lo);
            let _ = writeln!(out, "  \"{base}::seq_hi\": {},", a.seq_hi);
            for (p, ns) in a.top_phases(NPHASES) {
                let _ = writeln!(out, "  \"{base}::phase={}::ns\": {ns},", p.label());
            }
            for (s, ns) in a.top_waits(NSITES) {
                let _ = writeln!(out, "  \"{base}::wait::site={}::ns\": {ns},", s.label());
            }
        }
    }
}

/// Flat per-cell totals for regression attribution: span time per phase
/// (all rows, background included — interference is part of where the
/// run's time went), lock wait per site, and fence counts. These are the
/// columns `bench_diff` ranks a Δops_per_s blame table from.
fn push_perf_keys(out: &mut String, cells: &[Headline]) {
    for h in cells {
        let cell = format!("{}::{}", h.workload, h.system);
        for (p, ph) in ALL_PHASES.iter().enumerate() {
            let ns: u64 = (0..SPAN_ROWS).map(|r| h.spans.ns[r][p]).sum();
            let calls: u64 = (0..SPAN_ROWS).map(|r| h.spans.calls[r][p]).sum();
            if ns == 0 && calls == 0 {
                continue;
            }
            let _ = writeln!(out, "  \"span::{cell}::phase={}::ns\": {ns},", ph.label());
            let _ = writeln!(
                out,
                "  \"span::{cell}::phase={}::calls\": {calls},",
                ph.label()
            );
        }
        for site in h.contention.touched() {
            let w = site.wait.sum();
            if w == 0 && site.contended == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  \"lock::{cell}::site={}::wait_ns\": {w},",
                site.site.label()
            );
            let _ = writeln!(
                out,
                "  \"lock::{cell}::site={}::contended\": {},",
                site.site.label(),
                site.contended
            );
        }
        let _ = writeln!(
            out,
            "  \"fence::{cell}::count\": {},",
            h.report.device.fences
        );
        let _ = writeln!(
            out,
            "  \"fence::{cell}::coalesced\": {},",
            h.report.device.fences_coalesced
        );
    }
}

/// Flat `waf::` / `lag::` keys (schema v4): the per-layer
/// write-amplification ledger and the durability-lag quantiles of each
/// cell. `waf::<cell>::<layer>::bytes` carries the raw per-layer byte
/// totals (amplification ratios fall out as `<layer>/logical` in the
/// consumer, so the document stays integer-exact); `lag::<cell>` carries
/// p50/p99 from the lag histogram and the exact max gauge.
fn push_lineage_keys(out: &mut String, cells: &[Headline]) {
    for h in cells {
        let cell = format!("{}::{}", h.workload, h.system);
        if h.lineage.is_empty() {
            continue;
        }
        for layer in obsv::ALL_LAYERS {
            let _ = writeln!(
                out,
                "  \"waf::{cell}::{}::bytes\": {},",
                layer.label(),
                h.lineage.layer(layer)
            );
        }
        let _ = writeln!(
            out,
            "  \"waf::{cell}::fences_per_kib\": {},",
            h.lineage.fences_per_kib()
        );
        let _ = writeln!(out, "  \"lag::{cell}::count\": {},", h.lineage.lag.count());
        let _ = writeln!(
            out,
            "  \"lag::{cell}::p50_ns\": {},",
            h.lineage.lag.quantile(0.50)
        );
        let _ = writeln!(
            out,
            "  \"lag::{cell}::p99_ns\": {},",
            h.lineage.lag.quantile(0.99)
        );
        let _ = writeln!(out, "  \"lag::{cell}::max_ns\": {},", h.lineage.max_lag_ns);
    }
}

/// The nested `tail_exemplars` section: the top individual anatomies of
/// each cell's p99 cohort — what a human reads after the flat `tail::`
/// keys named the guilty phase.
fn push_tail_exemplars(out: &mut String, cells: &[Headline]) {
    let _ = writeln!(out, "  \"tail_exemplars\": {{");
    let mut first_cell = true;
    for h in cells {
        if !first_cell {
            let _ = writeln!(out, ",");
        }
        first_cell = false;
        let qns = merged_histo(&h.obs).map(|m| m.quantile(0.99)).unwrap_or(0);
        let exemplars: Vec<String> = h
            .flight
            .cohort(qns)
            .iter()
            .take(3)
            .map(|r| {
                let phases = r
                    .top_phases(3)
                    .iter()
                    .map(|(p, ns)| format!("\"{}\": {ns}", p.label()))
                    .collect::<Vec<_>>()
                    .join(", ");
                let waits = r
                    .top_waits(3)
                    .iter()
                    .map(|(s, ns)| format!("\"{}\": {ns}", s.label()))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "      {{\"op\": \"{}\", \"total_ns\": {}, \"at_ns\": {}, \
                     \"seq\": [{}, {}], \"shard\": {}, \"batch\": {}, \"fences\": {}, \
                     \"persisted_bytes\": {}, \"stall_events\": {}, \
                     \"phases\": {{{phases}}}, \"waits\": {{{waits}}}}}",
                    r.op.label(),
                    r.total_ns,
                    r.at_ns,
                    r.seq_start,
                    r.seq_end,
                    if r.shard == obsv::NO_SHARD {
                        -1
                    } else {
                        r.shard as i64
                    },
                    r.batch,
                    r.fences,
                    r.persisted_bytes,
                    r.stall_events,
                )
            })
            .collect();
        let _ = writeln!(out, "    \"{}::{}\": [", h.workload, h.system);
        let _ = write!(out, "{}", exemplars.join(",\n"));
        let _ = writeln!(out);
        let _ = write!(out, "    ]");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "  }},");
}

/// The per-cell contention section: per-site acquisition/wait/hold totals,
/// the Site × OpKind wait matrix, and the top sites by wait time.
fn push_contention(out: &mut String, cells: &[Headline]) {
    let _ = writeln!(out, "  \"contention\": {{");
    let mut first_cell = true;
    for h in cells {
        if !first_cell {
            let _ = writeln!(out, ",");
        }
        first_cell = false;
        let _ = writeln!(out, "    \"{}::{}\": {{", h.workload, h.system);
        let sites: Vec<String> = h
            .contention
            .touched()
            .map(|site| {
                format!(
                    "        \"{}\": {{\"acquisitions\": {}, \"contended\": {}, \"wait_ns\": {}, \"hold_ns\": {}}}",
                    site.site.label(),
                    site.acquisitions,
                    site.contended,
                    site.wait.sum(),
                    site.hold.sum()
                )
            })
            .collect();
        let _ = writeln!(out, "      \"sites\": {{");
        let _ = writeln!(out, "{}", sites.join(",\n"));
        let _ = writeln!(out, "      }},");
        let top: Vec<String> = h
            .contention
            .top_by_wait(5)
            .iter()
            .map(|site| format!("\"{}\"", site.site.label()))
            .collect();
        let _ = writeln!(out, "      \"top_by_wait\": [{}],", top.join(", "));
        // Site × OpKind matrix: wait then hold ns per op row, nonzero only.
        let mut mat = Vec::new();
        for site in h.contention.touched() {
            let mut ops = Vec::new();
            for row in 0..SPAN_ROWS {
                let (w, hold) = (site.wait_by_op[row], site.hold_by_op[row]);
                if w > 0 || hold > 0 {
                    ops.push(format!(
                        "\"{}\": {{\"wait_ns\": {w}, \"hold_ns\": {hold}}}",
                        row_label(row)
                    ));
                }
            }
            if !ops.is_empty() {
                mat.push(format!(
                    "        \"{}\": {{{}}}",
                    site.site.label(),
                    ops.join(", ")
                ));
            }
        }
        let _ = writeln!(out, "      \"by_op\": {{");
        let _ = writeln!(out, "{}", mat.join(",\n"));
        let _ = writeln!(out, "      }}");
        let _ = write!(out, "    }}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "  }},");
}

fn push_op_latency(out: &mut String, cells: &[Headline]) {
    let _ = writeln!(out, "  \"op_latency\": {{");
    let mut first_cell = true;
    for h in cells {
        if !first_cell {
            let _ = writeln!(out, ",");
        }
        first_cell = false;
        let _ = write!(out, "    \"{}::{}\": {{", h.workload, h.system);
        let mut first_op = true;
        if let Some(obs) = &h.obs {
            for op in ALL_OPS {
                let s = obs.op_histo(op).snapshot();
                if s.count() == 0 {
                    continue;
                }
                if !first_op {
                    let _ = write!(out, ", ");
                }
                first_op = false;
                let _ = write!(
                    out,
                    "\"{}\": {{\"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"mean\": {:.1}}}",
                    op.label(),
                    s.count(),
                    s.quantile(0.50),
                    s.quantile(0.95),
                    s.quantile(0.99),
                    s.mean()
                );
            }
        }
        let _ = write!(out, "}}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "  }},");
}

fn push_spans(out: &mut String, cells: &[Headline]) {
    let _ = writeln!(out, "  \"spans\": {{");
    let mut first_cell = true;
    for h in cells {
        if !first_cell {
            let _ = writeln!(out, ",");
        }
        first_cell = false;
        let _ = writeln!(out, "    \"{}::{}\": {{", h.workload, h.system);
        let mut rows = Vec::new();
        for row in 0..SPAN_ROWS {
            let mut phases = Vec::new();
            for (p, ph) in ALL_PHASES.iter().enumerate() {
                let (ns, calls) = (h.spans.ns[row][p], h.spans.calls[row][p]);
                if calls > 0 {
                    phases.push(format!(
                        "\"{}\": {{\"ns\": {ns}, \"calls\": {calls}}}",
                        ph.label()
                    ));
                }
            }
            if !phases.is_empty() {
                rows.push(format!(
                    "      \"{}\": {{{}}}",
                    row_label(row),
                    phases.join(", ")
                ));
            }
        }
        let _ = write!(out, "{}", rows.join(",\n"));
        let _ = writeln!(out);
        let _ = write!(out, "    }}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "  }},");
}

fn push_snapshot(out: &mut String, cells: &[Headline]) {
    let _ = writeln!(out, "  \"snapshot\": {{");
    let mut first = true;
    for h in cells {
        if !first {
            let _ = writeln!(out, ",");
        }
        first = false;
        let _ = write!(
            out,
            "    \"{}::{}\": {}",
            h.workload,
            h.system,
            h.snapshot.to_json()
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "  }},");
}

fn push_figures(out: &mut String, tables: &[Table]) {
    let _ = writeln!(out, "  \"figures\": {{");
    let mut first = true;
    for t in tables {
        if !first {
            let _ = writeln!(out, ",");
        }
        first = false;
        let headers = t
            .headers
            .iter()
            .map(|h| format!("\"{}\"", esc(h)))
            .collect::<Vec<_>>()
            .join(", ");
        let rows = t
            .rows
            .iter()
            .map(|r| {
                let cells = r
                    .iter()
                    .map(|c| format!("\"{}\"", esc(c)))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("        [{cells}]")
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let notes = t
            .notes
            .iter()
            .map(|n| format!("\"{}\"", esc(n)))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "    \"{}\": {{", esc(t.id));
        let _ = writeln!(out, "      \"title\": \"{}\",", esc(&t.title));
        let _ = writeln!(out, "      \"headers\": [{headers}],");
        let _ = writeln!(out, "      \"rows\": [");
        let _ = writeln!(out, "{rows}");
        let _ = writeln!(out, "      ],");
        let _ = writeln!(out, "      \"notes\": [{notes}]");
        let _ = write!(out, "    }}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "  }}");
}

/// Runs the headline grid and serializes the whole invocation — figure
/// tables included — into the BENCH document.
pub fn emit(scale: &Scale, scale_name: &str, tables: &[Table]) -> String {
    let cells: Vec<Headline> = HEADLINES
        .iter()
        .map(|&(p, kind)| run_cell(p, kind, scale))
        .collect();
    render(scale, scale_name, tables, &cells, &git_rev())
}

/// Pure serialization of already-collected results (unit-testable).
fn render(
    scale: &Scale,
    scale_name: &str,
    tables: &[Table],
    cells: &[Headline],
    rev: &str,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"git_rev\": \"{}\",", esc(rev));
    push_scale(&mut out, scale, scale_name);
    push_headline_keys(&mut out, cells);
    push_tail_keys(&mut out, cells);
    push_perf_keys(&mut out, cells);
    push_lineage_keys(&mut out, cells);
    push_op_latency(&mut out, cells);
    push_contention(&mut out, cells);
    push_spans(&mut out, cells);
    push_tail_exemplars(&mut out, cells);
    push_snapshot(&mut out, cells);
    push_figures(&mut out, tables);
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale {
            nfiles: 24,
            mean_file: 8 << 10,
            duration_ms: 40,
            device_bytes: 64 << 20,
            threads: 1,
            iosize: 16 << 10,
            append: 4 << 10,
            ..Scale::default()
        }
    }

    #[test]
    fn document_is_deterministic_and_carries_every_section() {
        let scale = tiny_scale();
        let mut t = Table::new("fig99", "demo \"quoted\"", &["a", "b"]);
        t.row(vec!["1".into(), "x\ny".into()]);
        t.note("shape");
        let cells: Vec<Headline> = [(Personality::Fileserver, SystemKind::Hinfs)]
            .iter()
            .map(|&(p, k)| run_headline(p, k, &scale))
            .collect();
        let doc = render(&scale, "tiny", &[t.clone()], &cells, "deadbeef");
        for needle in [
            "\"schema_version\": 4",
            "\"git_rev\": \"deadbeef\"",
            "\"headline::fileserver::hinfs::ops_per_s\"",
            "\"tail::fileserver::hinfs::p99::ns\"",
            "\"tail::fileserver::hinfs::p999::ns\"",
            "\"span::fileserver::hinfs::phase=",
            "\"fence::fileserver::hinfs::count\"",
            "\"waf::fileserver::hinfs::logical::bytes\"",
            "\"waf::fileserver::hinfs::nvmm_persisted::bytes\"",
            "\"waf::fileserver::hinfs::fences_per_kib\"",
            "\"lag::fileserver::hinfs::p50_ns\"",
            "\"lag::fileserver::hinfs::p99_ns\"",
            "\"lag::fileserver::hinfs::max_ns\"",
            "\"tail_exemplars\"",
            "\"op_latency\"",
            "\"contention\"",
            "\"hinfs.shard0\"",
            "\"top_by_wait\"",
            "\"spans\"",
            "\"snapshot\"",
            "\"schema\":1",
            "\"fig99\"",
            "\\\"quoted\\\"",
            "x\\ny",
        ] {
            assert!(doc.contains(needle), "missing {needle} in:\n{doc}");
        }
        // Re-running the same workload yields the identical document: the
        // virtual clock makes the whole pipeline deterministic, with
        // contention profiling on included.
        let cells2: Vec<Headline> = [(Personality::Fileserver, SystemKind::Hinfs)]
            .iter()
            .map(|&(p, k)| run_headline(p, k, &scale))
            .collect();
        let doc2 = render(&scale, "tiny", &[t], &cells2, "deadbeef");
        assert_eq!(doc, doc2);
    }

    #[test]
    fn headline_keys_are_one_per_line_and_greppable() {
        let scale = tiny_scale();
        let cells: Vec<Headline> = [(Personality::Webproxy, SystemKind::Pmfs)]
            .iter()
            .map(|&(p, k)| run_cell(p, k, &scale))
            .collect();
        let doc = render(&scale, "tiny", &[], &cells, "r");
        let lines: Vec<&str> = doc.lines().filter(|l| l.contains("\"headline::")).collect();
        // 4 legacy keys + (ops_per_s, p99_ns) per sweep point.
        assert_eq!(lines.len(), 4 + 2 * THREADS_SWEEP.len(), "{doc}");
        for &n in &THREADS_SWEEP {
            assert!(
                lines
                    .iter()
                    .any(|l| l.contains(&format!("::threads={n}::ops_per_s"))),
                "sweep point threads={n} missing:\n{doc}"
            );
        }
        for l in &lines {
            // key and numeric value on one line, trailing comma: the shape
            // scripts/bench_check.sh greps for.
            assert!(l.trim_start().starts_with("\"headline::"));
            assert!(l.trim_end().ends_with(','));
        }
        let tput = lines
            .iter()
            .find(|l| l.contains("::ops_per_s\""))
            .expect("throughput key");
        let v: f64 = tput
            .split(':')
            .next_back()
            .unwrap()
            .trim()
            .trim_end_matches(',')
            .parse()
            .expect("numeric value");
        assert!(v > 0.0);
    }

    /// Conformance of the schema-v3 key families (the `tail::` extension
    /// of the metric-name rules): flat, one per line, lowercase
    /// snake-case segments split by `::`, numeric value, trailing comma
    /// — and the `tail::` cohort must be non-empty with its phase sums
    /// equal to `count × p99-ish` totals (internally consistent).
    #[test]
    fn tail_and_perf_keys_are_conformant_and_greppable() {
        let scale = tiny_scale();
        let cells: Vec<Headline> = [(Personality::Fileserver, SystemKind::Hinfs)]
            .iter()
            .map(|&(p, k)| run_headline(p, k, &scale))
            .collect();
        let doc = render(&scale, "tiny", &[], &cells, "r");
        let flat: Vec<&str> = doc
            .lines()
            .filter(|l| {
                let t = l.trim_start();
                [
                    "\"tail::",
                    "\"span::",
                    "\"lock::",
                    "\"fence::",
                    "\"waf::",
                    "\"lag::",
                ]
                .iter()
                .any(|p| t.starts_with(p))
            })
            .collect();
        assert!(!flat.is_empty(), "no v3/v4 flat keys emitted:\n{doc}");
        assert!(
            flat.iter().any(|l| l.contains("\"tail::")),
            "no tail:: keys:\n{doc}"
        );
        assert!(
            flat.iter().any(|l| l.contains("\"waf::")),
            "no waf:: keys:\n{doc}"
        );
        assert!(
            flat.iter().any(|l| l.contains("\"lag::")),
            "no lag:: keys:\n{doc}"
        );
        for l in &flat {
            let t = l.trim();
            assert!(t.ends_with(','), "missing trailing comma: {l}");
            let (key, val) = t
                .trim_start_matches('"')
                .split_once("\": ")
                .unwrap_or_else(|| panic!("not a flat key line: {l}"));
            val.trim_end_matches(',')
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("non-numeric value: {l}"));
            for seg in key.split("::") {
                assert!(!seg.is_empty(), "empty segment in {key}");
                assert!(
                    seg.chars().all(|c| c.is_ascii_lowercase()
                        || c.is_ascii_digit()
                        || matches!(c, '_' | '=' | '.')),
                    "non-conformant segment {seg:?} in {key}"
                );
            }
            // No collision with the bench_check-gated headline family.
            assert!(!key.starts_with("headline::"), "family collision: {key}");
        }
        // The p99 cohort is populated and its phase keys sum to the
        // cohort's total latency (exclusive-time accounting carries
        // through to the tail section).
        let get = |k: &str| -> Option<u64> {
            doc.lines()
                .find(|l| l.contains(&format!("\"{k}\"")))
                .map(|l| {
                    l.split(':')
                        .next_back()
                        .unwrap()
                        .trim()
                        .trim_end_matches(',')
                        .parse()
                        .unwrap()
                })
        };
        let count = get("tail::fileserver::hinfs::p99::count").expect("cohort count key");
        assert!(count > 0, "empty p99 cohort:\n{doc}");
        let phase_sum: u64 = doc
            .lines()
            .filter(|l| l.contains("\"tail::fileserver::hinfs::p99::phase="))
            .map(|l| {
                l.split(':')
                    .next_back()
                    .unwrap()
                    .trim()
                    .trim_end_matches(',')
                    .parse::<u64>()
                    .unwrap()
            })
            .sum();
        assert!(phase_sum > 0, "p99 cohort has no phase attribution");
        // The v4 lineage ledger is populated and ordered: logical bytes
        // flowed, drains were recorded, and p50 ≤ p99 ≤ max.
        let logical = get("waf::fileserver::hinfs::logical::bytes").expect("waf logical key");
        assert!(logical > 0, "no logical bytes in the waf ledger");
        let lag_count = get("lag::fileserver::hinfs::count").expect("lag count key");
        assert!(lag_count > 0, "no durability drains recorded");
        let p50 = get("lag::fileserver::hinfs::p50_ns").unwrap();
        let p99 = get("lag::fileserver::hinfs::p99_ns").unwrap();
        let max = get("lag::fileserver::hinfs::max_ns").unwrap();
        assert!(p50 <= p99 && p99 <= max, "lag quantiles out of order");
    }
}
