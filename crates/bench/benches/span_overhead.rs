//! Measures the real-time cost of the span attribution layer.
//!
//! Two angles: the raw `SpanTable::scope` call in isolation (disabled vs
//! enabled), and a full 4 KiB write path through HiNFS in spin mode with
//! spans off vs on. The disabled path is a single relaxed load, so the
//! off/on delta on the raw scope is the whole story; the fs-level groups
//! show it vanishing into the noise of an actual operation.

use criterion::{criterion_group, criterion_main, Criterion};
use fskit::OpenFlags;
use nvmm::TimeMode;
use obsv::{Phase, SpanTable};
use workloads::setups::{build, ObsvOptions, SystemConfig, SystemKind};

fn cfg(spans: bool) -> SystemConfig {
    SystemConfig {
        device_bytes: 64 << 20,
        mode: TimeMode::Spin,
        buffer_bytes: 8 << 20,
        cache_pages: 2048,
        journal_blocks: 256,
        inode_count: 8192,
        obsv: if spans {
            ObsvOptions::none().with_spans()
        } else {
            ObsvOptions::none()
        },
        ..SystemConfig::default()
    }
}

/// The bare hook: `scope` around a trivial closure, with the table
/// disabled (the state every hook sees in production runs) and enabled.
fn raw_scope(c: &mut Criterion) {
    let mut g = c.benchmark_group("span_scope_raw");
    g.sample_size(20);
    for (label, enabled) in [("disabled", false), ("enabled", true)] {
        let table = SpanTable::default();
        table.set_enabled(enabled);
        let mut clock = 0u64;
        g.bench_function(label, |b| {
            b.iter(|| {
                clock += 1;
                table.scope(Phase::Persist, || clock, || std::hint::black_box(clock))
            })
        });
    }
    g.finish();
}

/// End-to-end: a 4 KiB HiNFS write in spin mode, spans off vs on. Every
/// hook on the path (buffer lookup, copies, persists, fences) fires, so
/// this is the worst realistic amplification of the raw-scope cost.
fn write_4k(c: &mut Criterion) {
    let mut g = c.benchmark_group("span_write_4k");
    g.sample_size(20);
    for (label, spans) in [("spans_off", false), ("spans_on", true)] {
        let sys = build(SystemKind::Hinfs, &cfg(spans)).expect("build");
        let fd = sys
            .fs
            .open("/f", OpenFlags::RDWR | OpenFlags::CREATE)
            .expect("open");
        let data = vec![0xabu8; 4096];
        let mut i = 0u64;
        g.bench_function(label, |b| {
            b.iter(|| {
                sys.fs.write(fd, (i % 1024) * 4096, &data).expect("write");
                i += 1;
            })
        });
        sys.fs.close(fd).expect("close");
        sys.fs.unmount().expect("unmount");
    }
    g.finish();
}

criterion_group!(span_overhead, raw_scope, write_4k);
criterion_main!(span_overhead);
