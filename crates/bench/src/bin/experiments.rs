//! Regenerates the paper's evaluation figures.
//!
//! ```text
//! experiments [--fig N]... [--quick] [--md PATH] [--bench-json PATH]
//! ```
//!
//! Without `--fig`, every experiment runs (Figs 1, 2, 6–13; the
//! span-recomputed variants are `--fig 101` and `--fig 112`). `--quick`
//! uses the smoke-test scale; `--md PATH` appends markdown tables to a
//! file (used to produce `EXPERIMENTS.md`); `--bench-json PATH` runs the
//! headline grid with spans + timing enabled and writes the
//! machine-readable BENCH document (see `scripts/bench_check.sh`).

use std::io::Write as _;

use hinfs_bench::{benchjson, figs, Scale};

fn main() {
    let mut figs_wanted: Vec<u32> = Vec::new();
    let mut quick = false;
    let mut md_path: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fig" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--fig needs a number");
                figs_wanted.push(n);
            }
            "--quick" => quick = true,
            "--md" => md_path = args.next(),
            "--bench-json" => json_path = args.next(),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: experiments [--fig N]... [--quick] [--md PATH] [--bench-json PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    if figs_wanted.is_empty() && json_path.is_none() {
        figs_wanted = figs::ALL_FIGS.to_vec();
    }
    let scale = if quick {
        Scale::quick()
    } else {
        Scale::default()
    };
    let scale_name = if quick { "quick" } else { "default" };
    let mut md = String::new();
    let mut tables = Vec::new();
    for n in figs_wanted {
        let Some(table) = figs::fig(n, &scale) else {
            eprintln!("figure {n} has no experiment (figures 3-5 are architecture diagrams)");
            continue;
        };
        println!("{}", table.render_text());
        md.push_str(&table.render_markdown());
        tables.push(table);
    }
    if let Some(path) = md_path {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("open markdown output");
        f.write_all(md.as_bytes()).expect("write markdown");
        eprintln!("appended markdown tables to {path}");
    }
    if let Some(path) = json_path {
        let doc = benchjson::emit(&scale, scale_name, &tables);
        std::fs::write(&path, doc).expect("write bench json");
        eprintln!("wrote bench document to {path}");
    }
}
