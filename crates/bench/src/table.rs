//! Result tables: the rows/series each figure reports.

use std::fmt::Write as _;

/// One experiment's output table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Figure id, e.g. "fig07".
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (expected shape, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &'static str, title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            id,
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Appends a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders as an aligned text table.
    pub fn render_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        for n in &self.notes {
            let _ = writeln!(out, "\n*{n}*");
        }
        let _ = writeln!(out);
        out
    }
}

/// Formats a ratio with two decimals.
pub fn fmt2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats bytes as MiB with one decimal.
pub fn mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1 << 20) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_both_formats() {
        let mut t = Table::new("figXX", "demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("shape holds");
        let text = t.render_text();
        assert!(text.contains("figXX"));
        assert!(text.contains("shape holds"));
        let md = t.render_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt2(1.234), "1.23");
        assert_eq!(pct(0.905), "90.5%");
        assert_eq!(mib(3 << 20), "3.0");
    }
}
