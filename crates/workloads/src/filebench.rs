//! The four Filebench personalities of Table 1, reimplemented as actors:
//!
//! - **Fileserver** — creates, deletes, appends, whole-file reads and
//!   writes (no fsync: almost all writes are lazy-persistent).
//! - **Webserver** — whole-file reads (×10) plus a log append
//!   (read-intensive).
//! - **Webproxy** — delete, create-write-close, open-read-close ×5, log
//!   append (strong locality, many short-lived files).
//! - **Varmail** — delete, create-append-fsync, read-append-fsync, read
//!   (append-heavy with frequent fsync: eager-persistent writes).
//!
//! Defaults follow the personalities' documented op mixes; sizes are
//! parameters so experiments can scale the dataset (the paper used 5 GB
//! sets, a 2 GB buffer and 1 MB mean I/O size).

use std::sync::Arc;

use fskit::{Fd, OpenFlags, Result};

use crate::fileset::Fileset;
use crate::runner::{Actor, Ctx};

/// Shared knobs of the personalities.
#[derive(Debug, Clone, Copy)]
pub struct FilebenchParams {
    /// Mean I/O (transfer chunk) size; the paper's default is 1 MiB.
    pub iosize: usize,
    /// Mean append size (filebench default 16 KiB).
    pub append_size: usize,
}

impl Default for FilebenchParams {
    fn default() -> Self {
        FilebenchParams {
            iosize: 1 << 20,
            append_size: 16 << 10,
        }
    }
}

fn rw_create() -> OpenFlags {
    OpenFlags::RDWR | OpenFlags::CREATE
}

/// Reads the whole file in `iosize` chunks.
fn read_whole(ctx: &mut Ctx<'_>, fd: Fd, iosize: usize, buf: &mut Vec<u8>) -> Result<()> {
    buf.resize(iosize.max(1), 0);
    let size = ctx.fstat(fd)?.size;
    let mut off = 0;
    while off < size {
        let n = ctx.read(fd, off, buf)?;
        if n == 0 {
            break;
        }
        off += n as u64;
    }
    Ok(())
}

/// Writes `total` bytes at offset 0 in `iosize` chunks.
fn write_whole(
    ctx: &mut Ctx<'_>,
    fd: Fd,
    total: usize,
    iosize: usize,
    buf: &mut Vec<u8>,
) -> Result<()> {
    buf.resize(iosize.max(1), 0x5a);
    let mut off = 0usize;
    while off < total {
        let n = (total - off).min(iosize);
        ctx.write(fd, off as u64, &buf[..n])?;
        off += n;
    }
    Ok(())
}

/// Issues a log-append burst as one gather (`pwritev`) call: the data is
/// sliced block-wise and lands at EOF in a single vectored write, so the
/// NVMM-aware systems pay their per-call costs (syscall, per-file locks,
/// journal transaction) once for the whole burst. The descriptor must be
/// `APPEND`-flagged — the offset argument is ignored by every backend.
fn append_burst(ctx: &mut Ctx<'_>, fd: Fd, data: &[u8]) -> Result<()> {
    let iovs: Vec<&[u8]> = data.chunks(nvmm::BLOCK_SIZE).collect();
    ctx.write_vectored(fd, 0, &iovs)?;
    Ok(())
}

/// The fileserver personality.
pub struct Fileserver {
    set: Arc<Fileset>,
    params: FilebenchParams,
    buf: Vec<u8>,
}

impl Fileserver {
    /// Creates one fileserver thread over a shared set.
    pub fn new(set: Arc<Fileset>, params: FilebenchParams) -> Fileserver {
        Fileserver {
            set,
            params,
            buf: Vec::new(),
        }
    }
}

impl Actor for Fileserver {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        // createfile + writewholefile + close
        let path = self.set.fresh(&mut ctx.rng);
        let size = self.set.draw_size(&mut ctx.rng);
        let fd = ctx.open(&path, rw_create())?;
        write_whole(ctx, fd, size, self.params.iosize, &mut self.buf)?;
        ctx.close(fd)?;
        // open + append + close
        if let Some(p) = self.set.pick(&mut ctx.rng) {
            if let Ok(fd) = ctx.open(&p, OpenFlags::RDWR | OpenFlags::APPEND) {
                let n = crate::fileset::draw_size(&mut ctx.rng, self.params.append_size);
                self.buf.resize(n.max(1), 0x11);
                ctx.append(fd, &self.buf[..n])?;
                ctx.close(fd)?;
            }
        }
        // open + readwholefile + close
        if let Some(p) = self.set.pick(&mut ctx.rng) {
            if let Ok(fd) = ctx.open(&p, OpenFlags::READ) {
                read_whole(ctx, fd, self.params.iosize, &mut self.buf)?;
                ctx.close(fd)?;
            }
        }
        // deletefile
        if self.set.len() > 2 {
            if let Some(p) = self.set.take(&mut ctx.rng) {
                let _ = ctx.unlink(&p);
            }
        }
        // statfile
        if let Some(p) = self.set.pick(&mut ctx.rng) {
            let _ = ctx.stat(&p);
        }
        Ok(true)
    }
}

/// The webserver personality.
pub struct Webserver {
    set: Arc<Fileset>,
    params: FilebenchParams,
    log: String,
    log_fd: Option<Fd>,
    buf: Vec<u8>,
}

impl Webserver {
    /// Creates one webserver thread; `id` selects its log file.
    pub fn new(set: Arc<Fileset>, params: FilebenchParams, id: usize) -> Webserver {
        Webserver {
            set,
            params,
            log: format!("/weblog-{id}"),
            log_fd: None,
            buf: Vec::new(),
        }
    }
}

impl Actor for Webserver {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        for _ in 0..10 {
            if let Some(p) = self.set.pick(&mut ctx.rng) {
                if let Ok(fd) = ctx.open(&p, OpenFlags::READ) {
                    read_whole(ctx, fd, self.params.iosize, &mut self.buf)?;
                    ctx.close(fd)?;
                }
            }
        }
        if self.log_fd.is_none() {
            self.log_fd = Some(ctx.open(&self.log, rw_create() | OpenFlags::APPEND)?);
        }
        self.buf.resize(self.params.append_size.max(1), 0x22);
        let n = self.params.append_size;
        append_burst(ctx, self.log_fd.unwrap(), &self.buf[..n])?;
        rotate_log(ctx, self.log_fd.unwrap())?;
        Ok(true)
    }
}

/// Rotates (truncates) a log descriptor once it exceeds 4 MiB, bounding
/// device growth over long runs.
fn rotate_log(ctx: &mut Ctx<'_>, fd: Fd) -> Result<()> {
    if ctx.fstat(fd)?.size > 4 << 20 {
        ctx.truncate(fd, 0)?;
    }
    Ok(())
}

/// The webproxy personality.
pub struct Webproxy {
    set: Arc<Fileset>,
    params: FilebenchParams,
    log: String,
    log_fd: Option<Fd>,
    buf: Vec<u8>,
}

impl Webproxy {
    /// Creates one webproxy thread.
    pub fn new(set: Arc<Fileset>, params: FilebenchParams, id: usize) -> Webproxy {
        Webproxy {
            set,
            params,
            log: format!("/proxylog-{id}"),
            log_fd: None,
            buf: Vec::new(),
        }
    }
}

impl Actor for Webproxy {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        // delete + create-write-close: webproxy's files are short-lived, so
        // deletion targets the recently created tail of the set.
        if self.set.len() > 2 {
            if let Some(p) = self.set.take_recent(&mut ctx.rng, 0.2) {
                let _ = ctx.unlink(&p);
            }
        }
        let path = self.set.fresh(&mut ctx.rng);
        let size = self.set.draw_size(&mut ctx.rng);
        let fd = ctx.open(&path, rw_create())?;
        write_whole(ctx, fd, size, self.params.iosize, &mut self.buf)?;
        ctx.close(fd)?;
        // open-read-close ×5, over the hot (recently created) tail of the
        // set: the paper attributes webproxy's behaviour to its "strong
        // access locality".
        for _ in 0..5 {
            if let Some(p) = self.set.pick_recent(&mut ctx.rng, 0.2) {
                if let Ok(fd) = ctx.open(&p, OpenFlags::READ) {
                    read_whole(ctx, fd, self.params.iosize, &mut self.buf)?;
                    ctx.close(fd)?;
                }
            }
        }
        // log append
        if self.log_fd.is_none() {
            self.log_fd = Some(ctx.open(&self.log, rw_create() | OpenFlags::APPEND)?);
        }
        self.buf.resize(self.params.append_size.max(1), 0x33);
        let n = self.params.append_size;
        append_burst(ctx, self.log_fd.unwrap(), &self.buf[..n])?;
        rotate_log(ctx, self.log_fd.unwrap())?;
        Ok(true)
    }
}

/// The varmail personality.
pub struct Varmail {
    set: Arc<Fileset>,
    params: FilebenchParams,
    buf: Vec<u8>,
}

impl Varmail {
    /// Creates one varmail thread.
    pub fn new(set: Arc<Fileset>, params: FilebenchParams) -> Varmail {
        Varmail {
            set,
            params,
            buf: Vec::new(),
        }
    }

    fn draw_append(&mut self, ctx: &mut Ctx<'_>) -> usize {
        crate::fileset::draw_size(&mut ctx.rng, self.params.append_size).max(1)
    }
}

impl Actor for Varmail {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        // deletefile
        if self.set.len() > 2 {
            if let Some(p) = self.set.take(&mut ctx.rng) {
                let _ = ctx.unlink(&p);
            }
        }
        // createfile + appendfilerand + fsync + close
        let path = self.set.fresh(&mut ctx.rng);
        let fd = ctx.open(&path, rw_create())?;
        let n = self.draw_append(ctx);
        self.buf.resize(n, 0x44);
        ctx.append(fd, &self.buf[..n])?;
        ctx.fsync(fd)?;
        ctx.close(fd)?;
        // openfile + readwholefile + appendfilerand + fsync + close
        if let Some(p) = self.set.pick(&mut ctx.rng) {
            if let Ok(fd) = ctx.open(&p, OpenFlags::RDWR) {
                read_whole(ctx, fd, self.params.iosize, &mut self.buf)?;
                let n = self.draw_append(ctx);
                self.buf.resize(n.max(1), 0x55);
                ctx.append(fd, &self.buf[..n])?;
                ctx.fsync(fd)?;
                ctx.close(fd)?;
            }
        }
        // openfile + readwholefile + close
        if let Some(p) = self.set.pick(&mut ctx.rng) {
            if let Ok(fd) = ctx.open(&p, OpenFlags::READ) {
                read_whole(ctx, fd, self.params.iosize, &mut self.buf)?;
                ctx.close(fd)?;
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fileset::FilesetSpec;
    use crate::runner::{RunLimit, Runner};
    use nvmm::{CostModel, NvmmDevice, SimEnv, BLOCK_SIZE};
    use pmfs::{Pmfs, PmfsOptions};
    use std::sync::Arc;

    fn setup() -> (Arc<SimEnv>, Arc<Pmfs>, Arc<Fileset>) {
        let env = SimEnv::new_virtual(CostModel::default());
        let dev = NvmmDevice::new(env.clone(), 32768 * BLOCK_SIZE);
        let fs = Pmfs::mkfs(
            dev,
            PmfsOptions {
                journal_blocks: 128,
                inode_count: 4096,
            },
        )
        .unwrap();
        let set = Fileset::populate(&*fs, FilesetSpec::new("/data", 60, 10, 16 << 10), 11).unwrap();
        env.rebase();
        (env, fs, set)
    }

    fn params() -> FilebenchParams {
        FilebenchParams {
            iosize: 64 << 10,
            append_size: 4 << 10,
        }
    }

    #[test]
    fn fileserver_runs_and_writes_without_fsync() {
        let (env, fs, set) = setup();
        let runner = Runner::new(env, fs);
        let actor = Fileserver::new(set, params());
        let r = runner.run(vec![Box::new(actor)], RunLimit::steps(30), 5);
        assert_eq!(r.metrics.steps, 30);
        assert!(r.metrics.bytes_written > 0);
        assert!(r.metrics.bytes_read > 0);
        assert_eq!(r.metrics.fsync_bytes, 0, "fileserver never fsyncs");
        assert!(r.op_count(crate::OpKind::Unlink) > 0);
    }

    #[test]
    fn webserver_is_read_dominated() {
        let (env, fs, set) = setup();
        let runner = Runner::new(env, fs);
        let actor = Webserver::new(set, params(), 0);
        let r = runner.run(vec![Box::new(actor)], RunLimit::steps(20), 5);
        assert!(
            r.metrics.bytes_read > 5 * r.metrics.bytes_written,
            "10 whole-file reads per 16 KiB log append (read {} written {})",
            r.metrics.bytes_read,
            r.metrics.bytes_written
        );
    }

    #[test]
    fn webproxy_creates_short_lived_files() {
        let (env, fs, set) = setup();
        let before = set.len();
        let runner = Runner::new(env, fs);
        let actor = Webproxy::new(set.clone(), params(), 0);
        let r = runner.run(vec![Box::new(actor)], RunLimit::steps(25), 5);
        assert!(r.op_count(crate::OpKind::Unlink) >= 20);
        // Population stays roughly stable: one delete + one create per loop.
        assert!((set.len() as i64 - before as i64).abs() <= 2);
    }

    #[test]
    fn varmail_syncs_every_append() {
        let (env, fs, set) = setup();
        let runner = Runner::new(env, fs);
        let actor = Varmail::new(set, params());
        let r = runner.run(vec![Box::new(actor)], RunLimit::steps(25), 5);
        assert!(
            r.op_count(crate::OpKind::Fsync) >= 40,
            "two fsyncs per loop"
        );
        assert!(
            r.fsync_byte_fraction() > 0.9,
            "almost all written bytes are synced ({:.2})",
            r.fsync_byte_fraction()
        );
    }

    #[test]
    fn personalities_work_on_hinfs_too() {
        let env = SimEnv::new_virtual(CostModel::default());
        let dev = NvmmDevice::new(env.clone(), 32768 * BLOCK_SIZE);
        let fs = hinfs::Hinfs::mkfs(
            dev,
            PmfsOptions {
                journal_blocks: 128,
                inode_count: 4096,
            },
            hinfs::HinfsConfig::default().with_buffer_bytes(256 * BLOCK_SIZE),
        )
        .unwrap();
        let set = Fileset::populate(&**fs.pmfs(), FilesetSpec::new("/data", 40, 10, 16 << 10), 3)
            .unwrap();
        env.rebase();
        let runner = Runner::new(env, fs.clone());
        let r = runner.run(
            vec![
                Box::new(Fileserver::new(set.clone(), params())) as Box<dyn crate::Actor>,
                Box::new(Varmail::new(set, params())),
            ],
            RunLimit::steps(15),
            9,
        );
        assert_eq!(r.metrics.steps, 30);
        fskit::FileSystem::unmount(&*fs).unwrap();
    }
}
