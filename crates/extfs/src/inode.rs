//! Ext inodes: on-disk format, in-memory handles, and the inode cache.
//!
//! Each inode is a 256 B slot in the inode table. The block map uses the
//! classic ext2 pointer scheme: 12 direct pointers, one single-indirect and
//! one double-indirect (each indirect block holds 512 eight-byte pointers).

use std::collections::HashMap;
use std::sync::Arc;

use fskit::{FileType, FsError, Result};
use nvmm::Cat;
use obsv::{ContentionTable, Site, TrackedMutex};
use parking_lot::{Mutex, RwLock};

use crate::cache::BufferCache;
use crate::jbd::Jbd;
use crate::layout::{ExtLayout, INODE_SLOT};

/// Direct pointers per inode.
pub const NDIRECT: usize = 12;
/// Total pointer slots: direct + single indirect + double indirect.
pub const NPTRS: usize = NDIRECT + 2;
/// Index of the single-indirect pointer.
pub const SINGLE: usize = NDIRECT;
/// Index of the double-indirect pointer.
pub const DOUBLE: usize = NDIRECT + 1;

/// In-memory mirror of an inode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtInodeMem {
    pub ftype: FileType,
    pub nlink: u32,
    pub size: u64,
    /// Allocated data blocks (excluding indirect blocks).
    pub blocks: u64,
    pub mtime: u64,
    /// Block pointers (absolute device block numbers; 0 = absent).
    pub ptrs: [u64; NPTRS],
}

impl ExtInodeMem {
    /// A fresh inode.
    pub fn new(ftype: FileType, now: u64) -> ExtInodeMem {
        ExtInodeMem {
            ftype,
            nlink: 1,
            size: 0,
            blocks: 0,
            mtime: now,
            ptrs: [0; NPTRS],
        }
    }

    /// Encodes the 256 B slot (valid flag set).
    pub fn encode(&self) -> [u8; INODE_SLOT] {
        let mut b = [0u8; INODE_SLOT];
        b[0] = 1;
        b[1] = self.ftype.as_u8();
        b[4..8].copy_from_slice(&self.nlink.to_le_bytes());
        b[8..16].copy_from_slice(&self.size.to_le_bytes());
        b[16..24].copy_from_slice(&self.blocks.to_le_bytes());
        b[24..32].copy_from_slice(&self.mtime.to_le_bytes());
        for (i, p) in self.ptrs.iter().enumerate() {
            let o = 32 + i * 8;
            b[o..o + 8].copy_from_slice(&p.to_le_bytes());
        }
        b
    }

    /// Decodes a slot; `Ok(None)` for a free slot.
    pub fn decode(b: &[u8; INODE_SLOT]) -> Result<Option<ExtInodeMem>> {
        if b[0] == 0 {
            return Ok(None);
        }
        if b[0] != 1 {
            return Err(FsError::Corrupted("ext inode valid flag"));
        }
        let ftype = FileType::from_u8(b[1]).ok_or(FsError::Corrupted("ext inode type"))?;
        let mut ptrs = [0u64; NPTRS];
        for (i, p) in ptrs.iter_mut().enumerate() {
            let o = 32 + i * 8;
            *p = u64::from_le_bytes(b[o..o + 8].try_into().unwrap());
        }
        Ok(Some(ExtInodeMem {
            ftype,
            nlink: u32::from_le_bytes(b[4..8].try_into().unwrap()),
            size: u64::from_le_bytes(b[8..16].try_into().unwrap()),
            blocks: u64::from_le_bytes(b[16..24].try_into().unwrap()),
            mtime: u64::from_le_bytes(b[24..32].try_into().unwrap()),
            ptrs,
        }))
    }
}

/// Shared in-memory inode state.
#[derive(Debug)]
pub struct ExtInodeHandle {
    pub ino: u64,
    pub state: RwLock<ExtInodeMem>,
    pub opens: Mutex<u32>,
}

/// Cache of in-memory inode handles.
#[derive(Debug)]
pub struct ExtInodeCache {
    map: TrackedMutex<HashMap<u64, Arc<ExtInodeHandle>>>,
}

impl Default for ExtInodeCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ExtInodeCache {
    /// An empty handle cache.
    pub fn new() -> ExtInodeCache {
        ExtInodeCache {
            map: TrackedMutex::new(Site::ExtfsInodeMap, HashMap::new()),
        }
    }

    /// Wires the handle-map lock to a contention profiler (first caller
    /// wins). The file system calls this at mount.
    pub fn attach_contention(&self, table: &Arc<ContentionTable>) {
        self.map.attach(table);
    }

    /// Loads (or returns the cached) handle for a used inode.
    pub fn get(
        &self,
        cache: &BufferCache,
        layout: &ExtLayout,
        ino: u64,
    ) -> Result<Arc<ExtInodeHandle>> {
        if ino == 0 || ino >= layout.inode_count {
            return Err(FsError::Corrupted("ext inode number out of range"));
        }
        let mut map = self.map.lock();
        if let Some(h) = map.get(&ino) {
            return Ok(h.clone());
        }
        let (blk, off) = layout.inode_loc(ino);
        let mut buf = [0u8; INODE_SLOT];
        cache.read(Cat::Meta, blk, off, &mut buf);
        let mem =
            ExtInodeMem::decode(&buf)?.ok_or(FsError::Corrupted("reference to free ext inode"))?;
        let h = Arc::new(ExtInodeHandle {
            ino,
            state: RwLock::new(mem),
            opens: Mutex::new(0),
        });
        map.insert(ino, h.clone());
        Ok(h)
    }

    /// Installs a handle for a just-created inode.
    pub fn install(&self, ino: u64, mem: ExtInodeMem) -> Arc<ExtInodeHandle> {
        let h = Arc::new(ExtInodeHandle {
            ino,
            state: RwLock::new(mem),
            opens: Mutex::new(0),
        });
        self.map.lock().insert(ino, h.clone());
        h
    }

    /// Drops the cached handle (inode freed).
    pub fn forget(&self, ino: u64) {
        self.map.lock().remove(&ino);
    }
}

/// Writes an inode slot through the buffer cache and journals its table
/// block.
pub fn write_inode(
    cache: &BufferCache,
    jbd: &Jbd,
    layout: &ExtLayout,
    ino: u64,
    mem: &ExtInodeMem,
    now: u64,
) {
    let (blk, off) = layout.inode_loc(ino);
    cache.write(Cat::Meta, blk, off, &mem.encode(), now);
    jbd.add(cache, blk);
}

/// Clears an inode slot (free).
pub fn clear_inode(cache: &BufferCache, jbd: &Jbd, layout: &ExtLayout, ino: u64, now: u64) {
    let (blk, off) = layout.inode_loc(ino);
    cache.write(Cat::Meta, blk, off, &[0u8; INODE_SLOT], now);
    jbd.add(cache, blk);
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::Nvmmbd;
    use nvmm::{CostModel, NvmmDevice, SimEnv, BLOCK_SIZE};

    fn setup() -> (BufferCache, Jbd, ExtLayout) {
        let env = SimEnv::new_virtual(CostModel::default());
        let dev = NvmmDevice::new(env, 2048 * BLOCK_SIZE);
        let bd = Arc::new(Nvmmbd::new(dev));
        let cache = BufferCache::new(bd.clone(), 64);
        let jbd = Jbd::open(bd, 1, 16, false);
        let layout = ExtLayout::compute(2048, 16, 256).unwrap();
        (cache, jbd, layout)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut m = ExtInodeMem::new(FileType::File, 42);
        m.size = 123_456;
        m.blocks = 31;
        m.ptrs[0] = 99;
        m.ptrs[SINGLE] = 500;
        m.ptrs[DOUBLE] = 501;
        assert_eq!(ExtInodeMem::decode(&m.encode()).unwrap(), Some(m));
        assert_eq!(ExtInodeMem::decode(&[0u8; INODE_SLOT]).unwrap(), None);
    }

    #[test]
    fn write_read_through_table() {
        let (cache, jbd, layout) = setup();
        let m = ExtInodeMem::new(FileType::Dir, 7);
        write_inode(&cache, &jbd, &layout, 5, &m, 0);
        let icache = ExtInodeCache::new();
        let h = icache.get(&cache, &layout, 5).unwrap();
        assert_eq!(*h.state.read(), m);
        // Same handle on repeat.
        let h2 = icache.get(&cache, &layout, 5).unwrap();
        assert!(Arc::ptr_eq(&h, &h2));
    }

    #[test]
    fn clear_makes_slot_free() {
        let (cache, jbd, layout) = setup();
        write_inode(
            &cache,
            &jbd,
            &layout,
            9,
            &ExtInodeMem::new(FileType::File, 0),
            0,
        );
        clear_inode(&cache, &jbd, &layout, 9, 1);
        let icache = ExtInodeCache::new();
        assert!(icache.get(&cache, &layout, 9).is_err());
    }

    #[test]
    fn out_of_range_rejected() {
        let (cache, _jbd, layout) = setup();
        let icache = ExtInodeCache::new();
        assert!(icache.get(&cache, &layout, 0).is_err());
        assert!(icache.get(&cache, &layout, layout.inode_count).is_err());
    }
}
