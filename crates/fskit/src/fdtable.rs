//! A file descriptor table shared by every file system implementation.

use std::sync::Arc;

use obsv::{ContentionTable, Site, TrackedMutex};

use crate::error::{FsError, Result};
use crate::types::Fd;

/// Maps descriptors to per-open state of type `T`.
///
/// Descriptors are reused lowest-first like POSIX. The table is sharded
/// behind a single mutex; descriptor operations are rare compared to I/O.
#[derive(Debug)]
pub struct FdTable<T> {
    inner: TrackedMutex<Inner<T>>,
}

#[derive(Debug)]
struct Inner<T> {
    slots: Vec<Option<Arc<T>>>,
    free: Vec<usize>,
}

impl<T> Default for FdTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FdTable<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        FdTable {
            inner: TrackedMutex::new(
                Site::FskitFdtable,
                Inner {
                    slots: Vec::new(),
                    free: Vec::new(),
                },
            ),
        }
    }

    /// Connects the table's lock to a contention profiler (first caller
    /// wins). File systems call this at mount.
    pub fn attach_contention(&self, table: &Arc<ContentionTable>) {
        self.inner.attach(table);
    }

    /// Inserts per-open state and returns its descriptor.
    pub fn insert(&self, state: T) -> Fd {
        let mut inner = self.inner.lock();
        let state = Arc::new(state);
        match inner.free.pop() {
            Some(idx) => {
                inner.slots[idx] = Some(state);
                idx as Fd
            }
            None => {
                inner.slots.push(Some(state));
                (inner.slots.len() - 1) as Fd
            }
        }
    }

    /// Looks up an open descriptor.
    pub fn get(&self, fd: Fd) -> Result<Arc<T>> {
        let inner = self.inner.lock();
        inner
            .slots
            .get(fd as usize)
            .and_then(|s| s.clone())
            .ok_or(FsError::BadFd)
    }

    /// Closes a descriptor, returning its state (other clones may survive).
    pub fn remove(&self, fd: Fd) -> Result<Arc<T>> {
        let mut inner = self.inner.lock();
        let slot = inner.slots.get_mut(fd as usize).ok_or(FsError::BadFd)?;
        let state = slot.take().ok_or(FsError::BadFd)?;
        inner.free.push(fd as usize);
        Ok(state)
    }

    /// Number of currently open descriptors.
    pub fn open_count(&self) -> usize {
        let inner = self.inner.lock();
        inner.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Snapshot of all open states (used by `sync`/`unmount`).
    pub fn all(&self) -> Vec<Arc<T>> {
        let inner = self.inner.lock();
        inner.slots.iter().filter_map(|s| s.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let t: FdTable<String> = FdTable::new();
        let fd = t.insert("hello".into());
        assert_eq!(*t.get(fd).unwrap(), "hello");
        t.remove(fd).unwrap();
        assert_eq!(t.get(fd), Err(FsError::BadFd));
        assert_eq!(t.remove(fd), Err(FsError::BadFd));
    }

    #[test]
    fn descriptors_are_reused() {
        let t: FdTable<u32> = FdTable::new();
        let a = t.insert(1);
        let b = t.insert(2);
        t.remove(a).unwrap();
        let c = t.insert(3);
        assert_eq!(c, a, "lowest freed descriptor is reused");
        assert_eq!(*t.get(b).unwrap(), 2);
        assert_eq!(*t.get(c).unwrap(), 3);
    }

    #[test]
    fn open_count_and_all() {
        let t: FdTable<u32> = FdTable::new();
        let a = t.insert(1);
        let _b = t.insert(2);
        assert_eq!(t.open_count(), 2);
        t.remove(a).unwrap();
        assert_eq!(t.open_count(), 1);
        let all: Vec<u32> = t.all().iter().map(|x| **x).collect();
        assert_eq!(all, vec![2]);
    }

    #[test]
    fn unknown_fd_is_badfd() {
        let t: FdTable<u32> = FdTable::new();
        assert_eq!(t.get(42), Err(FsError::BadFd));
    }
}
