#!/usr/bin/env bash
# Tier-1 verification gate: formatting, lints, build, tests.
#
# The workspace builds fully offline — every external-looking dependency
# (rand, proptest, criterion, parking_lot) resolves to an in-tree shim
# under shims/ via [workspace.dependencies] path entries, and Cargo.lock
# is committed. When a network registry is unreachable we pass --offline
# explicitly so cargo never stalls trying to reach crates.io.
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=""
if [[ "${1:-}" == "--offline" ]]; then
    OFFLINE="--offline"
elif ! cargo fetch --quiet 2>/dev/null; then
    echo "verify: registry unreachable, falling back to --offline" >&2
    OFFLINE="--offline"
fi

run() {
    echo "verify: $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets $OFFLINE -- -D warnings
run cargo build --release $OFFLINE
run cargo test -q $OFFLINE
# faultfs smoke sweep: crash-point enumeration + durability oracle +
# fault injection across hinfs/pmfs/ext4 (fixed seed, capped points;
# exits non-zero on any oracle violation or panic).
run cargo run --release $OFFLINE --example crash_recovery
echo "verify: OK"
