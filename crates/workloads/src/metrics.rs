//! Run metrics: per-op-type time and byte accounting.

use nvmm::ledger::Ledger;
use nvmm::stats::StatsSnapshot;

/// Syscall categories tracked by the runner (the Fig 12 breakdown uses
/// `Read`, `Write`, `Unlink` and `Fsync`). Re-exported from `obsv` so the
/// runner's accounting and the observability layer's histograms share one
/// enum.
pub use obsv::{OpKind, ALL_OPS, NOPS};

/// Metrics collected by one actor (merged into a [`RunReport`]).
#[derive(Debug, Clone, Default)]
pub struct ActorMetrics {
    /// Count per op kind.
    pub ops: [u64; NOPS],
    /// Simulated nanoseconds per op kind.
    pub ns: [u64; NOPS],
    /// Bytes read / written through the VFS.
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// Bytes whose durability was explicitly requested: written bytes later
    /// covered by an fsync on the same descriptor (the Fig 2 metric).
    pub fsync_bytes: u64,
    /// Logical workload operations completed (one `step` = one op).
    pub steps: u64,
}

impl ActorMetrics {
    /// Records one syscall.
    pub fn record(&mut self, kind: OpKind, ns: u64) {
        self.ops[kind as usize] += 1;
        self.ns[kind as usize] += ns;
    }

    /// Merges `other` into `self`.
    pub fn merge(&mut self, other: &ActorMetrics) {
        for i in 0..NOPS {
            self.ops[i] += other.ops[i];
            self.ns[i] += other.ns[i];
        }
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.fsync_bytes += other.fsync_bytes;
        self.steps += other.steps;
    }
}

/// The aggregated result of one run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Per-op metrics across all actors.
    pub metrics: ActorMetrics,
    /// Elapsed simulated time (max actor clock; wall time in spin mode).
    pub elapsed_ns: u64,
    /// Ledger delta over the run (model-cost categories for Fig 1).
    pub ledger: Ledger,
    /// Device counter delta over the run (NVMM write bytes for Fig 9b).
    pub device: StatsSnapshot,
    /// Metrics-registry delta over the run, when a registry was attached
    /// via [`crate::runner::Runner::with_registry`].
    pub registry: Option<obsv::RegistrySnapshot>,
    /// Number of actors (threads).
    pub actors: usize,
}

impl RunReport {
    /// Total syscalls issued.
    pub fn total_ops(&self) -> u64 {
        self.metrics.ops.iter().sum()
    }

    /// Workload throughput in logical operations per simulated second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.metrics.steps as f64 * 1e9 / self.elapsed_ns as f64
    }

    /// Time spent in one op kind, ns.
    pub fn op_ns(&self, kind: OpKind) -> u64 {
        self.metrics.ns[kind as usize]
    }

    /// Count of one op kind.
    pub fn op_count(&self, kind: OpKind) -> u64 {
        self.metrics.ops[kind as usize]
    }

    /// Total simulated time spent inside syscalls.
    pub fn syscall_ns(&self) -> u64 {
        self.metrics.ns.iter().sum()
    }

    /// Fraction of written bytes that were explicitly synchronized
    /// (Fig 2).
    pub fn fsync_byte_fraction(&self) -> f64 {
        if self.metrics.bytes_written == 0 {
            return 0.0;
        }
        self.metrics.fsync_bytes as f64 / self.metrics.bytes_written as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge() {
        let mut a = ActorMetrics::default();
        a.record(OpKind::Read, 100);
        a.record(OpKind::Read, 50);
        a.record(OpKind::Fsync, 10);
        let mut b = ActorMetrics::default();
        b.record(OpKind::Read, 1);
        b.merge(&a);
        assert_eq!(b.ops[OpKind::Read as usize], 3);
        assert_eq!(b.ns[OpKind::Read as usize], 151);
        assert_eq!(b.ops[OpKind::Fsync as usize], 1);
    }

    #[test]
    fn report_ratios() {
        let mut r = RunReport::default();
        r.metrics.bytes_written = 1000;
        r.metrics.fsync_bytes = 900;
        r.metrics.steps = 500;
        r.elapsed_ns = 1_000_000_000;
        assert!((r.fsync_byte_fraction() - 0.9).abs() < 1e-9);
        assert!((r.throughput() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn labels_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in ALL_OPS {
            assert!(seen.insert(op.label()));
        }
    }
}
